#include "memory/arena_allocator.h"

#include "simgpu/fault.h"

namespace ls2::mem {

namespace {
constexpr size_t kAlign = 256;  // match cudaMalloc alignment
size_t align_up(size_t n) { return (n + kAlign - 1) / kAlign * kAlign; }
}  // namespace

ArenaAllocator::ArenaAllocator(simgpu::Device& device, size_t capacity_bytes, Backing backing)
    : DeviceAllocator(device, backing), capacity_(align_up(capacity_bytes)) {
  base_ = static_cast<char*>(device_malloc(capacity_));
  free_blocks_[0] = capacity_;
  // The whole arena counts as "in use" for the lifetime of training — that
  // is the deliberate trade of §IV-D and what Fig. 20 plots for LightSeq2.
  note_usage(static_cast<int64_t>(capacity_));
}

ArenaAllocator::~ArenaAllocator() {
  note_usage(-static_cast<int64_t>(capacity_));
  device_free(base_, capacity_);
}

void* ArenaAllocator::allocate(size_t bytes) {
  const size_t want = align_up(bytes);
  // Injected transient failure: the request is well within capacity, the
  // allocator just hiccups (driver retry, momentary fragmentation) — typed
  // distinctly from OutOfMemory so callers retry instead of resizing.
  if (simgpu::FaultInjector* fault = device_.fault_injector();
      fault != nullptr && fault->should_fail_alloc(device_.current_range())) {
    throw TransientAllocFailure(static_cast<int64_t>(want),
                                static_cast<int64_t>(used_),
                                static_cast<int64_t>(capacity_),
                                device_.current_range());
  }
  // First fit. The free map is keyed by offset, so this also prefers low
  // addresses, which keeps fragmentation down for the LIFO-ish lifetimes of
  // a training step.
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second < want) continue;
    const size_t offset = it->first;
    const size_t remaining = it->second - want;
    free_blocks_.erase(it);
    if (remaining > 0) free_blocks_[offset + want] = remaining;
    used_ += want;
    if (used_ > high_water_) high_water_ = used_;
    ++outstanding_;
    return base_ + offset;
  }
  throw OutOfMemory(static_cast<int64_t>(want), static_cast<int64_t>(used_),
                    static_cast<int64_t>(capacity_));
}

void ArenaAllocator::deallocate(void* ptr, size_t bytes) {
  const size_t want = align_up(bytes);
  const size_t offset = static_cast<size_t>(static_cast<char*>(ptr) - base_);
  LS2_CHECK_LE(offset + want, capacity_) << "foreign pointer returned to arena";
  used_ -= want;
  --outstanding_;
  // Insert and coalesce with neighbours.
  auto [it, inserted] = free_blocks_.emplace(offset, want);
  LS2_CHECK(inserted) << "double free in arena";
  if (it != free_blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == offset) {
      prev->second += it->second;
      free_blocks_.erase(it);
      it = prev;
    }
  }
  auto next = std::next(it);
  if (next != free_blocks_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_blocks_.erase(next);
  }
}

void ArenaAllocator::reset() {
  LS2_CHECK_EQ(outstanding_, 0) << "arena reset with live tensors";
  free_blocks_.clear();
  free_blocks_[0] = capacity_;
  used_ = 0;
}

}  // namespace ls2::mem
