// Peak-tracking heap allocator with no simulated-device cost. Used for the
// capacity scan (§IV-D): run one probe step over the largest batch through a
// MeasuringAllocator, read `peak_bytes()`, and size the real arena from it.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "common/check.h"
#include "tensor/tensor.h"

namespace ls2::mem {

class MeasuringAllocator final : public BufferAllocator {
 public:
  void* allocate(size_t bytes) override {
    void* p = std::malloc(bytes == 0 ? 1 : bytes);
    LS2_CHECK(p != nullptr);
    in_use_ += static_cast<int64_t>(bytes);
    if (in_use_ > peak_) peak_ = in_use_;
    return p;
  }
  void deallocate(void* ptr, size_t bytes) override {
    in_use_ -= static_cast<int64_t>(bytes);
    std::free(ptr);
  }
  const char* name() const override { return "measuring"; }

  int64_t peak_bytes() const { return peak_; }
  int64_t bytes_in_use() const { return in_use_; }

 private:
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
};

}  // namespace ls2::mem
