#include "memory/caching_allocator.h"

namespace ls2::mem {

CachingAllocator::~CachingAllocator() {
  for (auto& [size, ptr] : free_blocks_) device_free(ptr, size);
  free_blocks_.clear();
}

size_t CachingAllocator::round_bucket(size_t bytes) {
  // PyTorch rounds small allocations to 512B and large ones to 2MB granules.
  constexpr size_t kSmallGranule = 512;
  constexpr size_t kLargeGranule = 2u << 20;
  if (bytes == 0) return kSmallGranule;
  if (bytes < (1u << 20)) return (bytes + kSmallGranule - 1) / kSmallGranule * kSmallGranule;
  return (bytes + kLargeGranule - 1) / kLargeGranule * kLargeGranule;
}

void* CachingAllocator::allocate(size_t bytes) {
  const size_t bucket = round_bucket(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = free_blocks_.lower_bound(bucket);
  // Reuse a cached block if it's not wastefully large (PyTorch splits; we
  // approximate with a 2x waste cap).
  if (it != free_blocks_.end() && it->first <= bucket * 2) {
    void* ptr = it->second;
    const size_t got = it->first;
    free_blocks_.erase(it);
    cached_bytes_ -= static_cast<int64_t>(got);
    ++hits_;
    device_.charge_alloc(/*cache_hit=*/true);
    note_usage(static_cast<int64_t>(got));
    return ptr;
  }
  ++misses_;
  void* ptr = device_malloc(bucket);
  note_usage(static_cast<int64_t>(bucket));
  return ptr;
}

void CachingAllocator::deallocate(void* ptr, size_t bytes) {
  const size_t bucket = round_bucket(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  free_blocks_.emplace(bucket, ptr);
  cached_bytes_ += static_cast<int64_t>(bucket);
  note_usage(-static_cast<int64_t>(bucket));
}

void CachingAllocator::release_cached() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [size, ptr] : free_blocks_) device_free(ptr, size);
  free_blocks_.clear();
  cached_bytes_ = 0;
}

}  // namespace ls2::mem
