#include "memory/block_plan.h"

#include <algorithm>
#include <limits>

namespace ls2::mem {

namespace {
constexpr size_t kAlign = 256;
size_t align_up(size_t n) { return (n + kAlign - 1) / kAlign * kAlign; }
}  // namespace

BlockPlan::BlockPlan(std::vector<PlanTensor> tensors) {
  std::stable_sort(tensors.begin(), tensors.end(),
                   [](const PlanTensor& a, const PlanTensor& b) { return a.birth < b.birth; });

  struct Block {
    size_t size = 0;
    int free_at = 0;  ///< first step at which the block may be reused
  };
  std::vector<Block> blocks;

  for (const PlanTensor& t : tensors) {
    LS2_CHECK_LE(t.birth, t.death) << "tensor '" << t.name << "' dies before birth";
    LS2_CHECK(placements_.find(t.name) == placements_.end())
        << "duplicate plan tensor '" << t.name << "'";
    naive_bytes_ += align_up(t.bytes);

    // Pick the free block that needs the least growth; ties -> smaller block.
    int best = -1;
    size_t best_growth = std::numeric_limits<size_t>::max();
    for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
      if (blocks[static_cast<size_t>(b)].free_at > t.birth) continue;
      const size_t grown = std::max(blocks[static_cast<size_t>(b)].size, align_up(t.bytes));
      const size_t growth = grown - blocks[static_cast<size_t>(b)].size;
      if (growth < best_growth ||
          (growth == best_growth && best >= 0 &&
           blocks[static_cast<size_t>(b)].size < blocks[static_cast<size_t>(best)].size)) {
        best = b;
        best_growth = growth;
      }
    }
    if (best < 0) {
      blocks.push_back({align_up(t.bytes), t.death + 1});
      best = static_cast<int>(blocks.size()) - 1;
    } else {
      Block& blk = blocks[static_cast<size_t>(best)];
      blk.size = std::max(blk.size, align_up(t.bytes));
      blk.free_at = t.death + 1;
    }
    placements_[t.name] = {best, t.bytes};
  }

  block_sizes_.reserve(blocks.size());
  block_offsets_.reserve(blocks.size());
  for (const Block& b : blocks) {
    block_offsets_.push_back(total_bytes_);
    block_sizes_.push_back(b.size);
    total_bytes_ += b.size;
  }
}

int BlockPlan::block_of(const std::string& name) const {
  auto it = placements_.find(name);
  LS2_CHECK(it != placements_.end()) << "no plan tensor '" << name << "'";
  return it->second.block;
}

void BlockPlan::materialize(BufferAllocator* alloc) {
  LS2_CHECK(!storage_.defined()) << "plan already materialized";
  storage_ = Tensor::empty(Shape{static_cast<int64_t>(total_bytes_)}, DType::kU8, alloc);
}

Tensor BlockPlan::tensor(const std::string& name, Shape shape, DType dtype) const {
  LS2_CHECK(storage_.defined()) << "plan not materialized";
  auto it = placements_.find(name);
  LS2_CHECK(it != placements_.end()) << "no plan tensor '" << name << "'";
  const Placement& p = it->second;
  const size_t want = static_cast<size_t>(shape.numel()) * dtype_size(dtype);
  LS2_CHECK_LE(want, block_sizes_[static_cast<size_t>(p.block)])
      << "view of '" << name << "' exceeds its block";
  // Shares ownership of the backing storage so views outlive the plan.
  return storage_.byte_view(block_offsets_[static_cast<size_t>(p.block)], std::move(shape),
                            dtype);
}

std::vector<PlanTensor> attention_backward_plan(int64_t B, int64_t L, int64_t H, int64_t N,
                                                size_t elem) {
  const size_t blh = static_cast<size_t>(B * L * H) * elem;
  const size_t bl2n = static_cast<size_t>(B * L * L * N) * elem;
  // Steps follow Fig. 8 top-to-bottom (1-indexed). The reshape of dZ to the
  // per-head layout is a strided view consumed directly by the batched
  // GEMM, so it owns no storage; that gives the paper's naive count of
  // exactly 9 BLH-sized tensors plus one BL²N tensor.
  //  1 dY1 = dDropout(dout)           2 dZ = dY1 * Wout^T (viewed per-head)
  //  4 dS = dZ V^T ; dV = S^T dZ      5 dS = dDropout(dS)
  //  6 dS = dSoftmax(dS)              7 dK = Q^T dS ; dQ = dS K
  //  8 dQKV = reshape(dQ,dK,dV)       9 dY3 = dQKV * W_{Q,K,V}
  // 10 din = dLayerNorm(dY3) + dout
  return {
      {"dY1", blh, 1, 4},   {"dZ", blh, 2, 4},   {"dS", bl2n, 4, 7},
      {"dV", blh, 4, 8},    {"dK", blh, 7, 8},   {"dQ", blh, 7, 8},
      {"dQKV", 3 * blh, 8, 9}, {"dY3", blh, 9, 10},
  };
}

}  // namespace ls2::mem
