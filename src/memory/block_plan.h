// Shared-block planning for temporary tensors (§IV-D, Fig. 8).
//
// Each temporary tensor declares a lifetime [birth step, death step]. The
// planner assigns tensors with disjoint lifetimes to the same memory block
// (a "column" in the paper's figure), growing a block to the largest tensor
// it ever hosts. For the self-attention backward pass this yields exactly
// the paper's bound: 3·BLH + max(BL²N, 3·BLH) bytes instead of the naive
// 9·BLH + BL²N.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ls2::mem {

struct PlanTensor {
  std::string name;
  size_t bytes = 0;
  int birth = 0;  ///< first step in which the tensor is written
  int death = 0;  ///< last step in which the tensor is read
};

class BlockPlan {
 public:
  /// Plans placements greedily in birth order: a dying block becomes free at
  /// `death + 1`; a new tensor picks the free block needing the least
  /// growth, or opens a new block.
  explicit BlockPlan(std::vector<PlanTensor> tensors);

  /// Total bytes of all shared blocks (what must be allocated).
  size_t total_bytes() const { return total_bytes_; }
  /// What per-tensor allocation would have cost.
  size_t naive_bytes() const { return naive_bytes_; }
  int block_count() const { return static_cast<int>(block_sizes_.size()); }
  size_t block_size(int block) const { return block_sizes_[static_cast<size_t>(block)]; }
  int block_of(const std::string& name) const;

  /// Allocate the backing buffer; after this, tensor() serves views.
  void materialize(BufferAllocator* alloc = nullptr);
  bool materialized() const { return storage_.defined(); }

  /// View of `name`'s block with the requested shape/dtype (must fit the
  /// tensor's declared bytes).
  Tensor tensor(const std::string& name, Shape shape, DType dtype) const;

 private:
  struct Placement {
    int block = -1;
    size_t bytes = 0;
  };

  std::map<std::string, Placement> placements_;
  std::vector<size_t> block_sizes_;
  std::vector<size_t> block_offsets_;
  size_t total_bytes_ = 0;
  size_t naive_bytes_ = 0;
  Tensor storage_;
};

/// The lifetime table of Fig. 8 (self-attention backward) for batch B,
/// sequence length L, hidden size H, N heads, element size `elem` bytes.
/// Tensor names: dY1, dZ, dY2, dS, dV, dK, dQ, dQKV, dY3.
std::vector<PlanTensor> attention_backward_plan(int64_t B, int64_t L, int64_t H,
                                                int64_t N, size_t elem);

}  // namespace ls2::mem
