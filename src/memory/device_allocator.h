// Base class for simulated-device allocators.
//
// Tracks bytes in use / peak, charges the device clock for cudaMalloc-style
// calls, reports watermarks to the device timeline (Fig. 20), and raises a
// simulated OOM when the device's memory capacity is exceeded (the paper's
// Fig. 10 notes Fairseq OOMs at batch sizes LightSeq2 still trains).
#pragma once

#include <cstdint>

#include "simgpu/device.h"
#include "tensor/tensor.h"

namespace ls2::mem {

/// Thrown when a simulated allocation exceeds the device's capacity.
class OutOfMemory : public Error {
 public:
  OutOfMemory(int64_t requested, int64_t in_use, int64_t capacity);
  int64_t requested = 0;
  int64_t in_use = 0;
  int64_t capacity = 0;

 protected:
  /// Subclass hook: same shape, custom message.
  OutOfMemory(const std::string& what, int64_t requested_, int64_t in_use_,
              int64_t capacity_)
      : Error(what), requested(requested_), in_use(in_use_), capacity(capacity_) {}
};

/// An allocation that failed TRANSIENTLY (injected fault or momentary
/// pressure), as opposed to a genuine capacity overflow: retrying the same
/// request later is expected to succeed. Serving retries these with backoff;
/// training treats them like any other step-loss and rolls back.
class TransientAllocFailure : public OutOfMemory {
 public:
  TransientAllocFailure(int64_t requested, int64_t in_use, int64_t capacity,
                        const std::string& site);
};

class DeviceAllocator : public BufferAllocator {
 public:
  /// kMalloc backs simulated device memory with real host heap (execute
  /// mode). kVirtual backs it with never-committed anonymous mappings
  /// (MAP_NORESERVE) so model-only sweeps can "allocate" paper-scale
  /// tensors: all byte/time accounting is identical, but initialisation
  /// writes are skipped (Tensor honours backs_real_memory()).
  enum class Backing { kMalloc, kVirtual };

  explicit DeviceAllocator(simgpu::Device& device, Backing backing = Backing::kMalloc)
      : device_(device), backing_(backing) {}

  bool backs_real_memory() const override { return backing_ == Backing::kMalloc; }

  /// Certified safe to allocate from inside a device step-graph capture:
  /// every per-step request is served from pre-reserved, address-stable
  /// memory with zero device malloc/free traffic. Capture-unsafe allocators
  /// poison an in-progress capture the moment they stall on a device malloc
  /// (simgpu::Device::charge_alloc) — the CUDA-Graphs constraint.
  virtual bool capture_safe() const { return false; }

  int64_t bytes_in_use() const { return bytes_in_use_; }
  int64_t peak_bytes() const { return peak_bytes_; }
  simgpu::Device& device() { return device_; }

  /// Number of real (uncached) device mallocs performed.
  int64_t device_malloc_count() const { return device_mallocs_; }
  int64_t device_free_count() const { return device_frees_; }

 protected:
  /// Backing "device" allocation: charges the clock, checks capacity,
  /// updates watermarks. Returns host memory standing in for device memory.
  void* device_malloc(size_t bytes);
  void device_free(void* ptr, size_t bytes);
  /// Bookkeeping-only adjustments for sub-allocators handing out slices.
  void note_usage(int64_t delta);

  simgpu::Device& device_;

 private:
  Backing backing_;
  int64_t bytes_in_use_ = 0;
  int64_t peak_bytes_ = 0;
  int64_t reserved_bytes_ = 0;  ///< physical (cudaMalloc'ed) bytes
  int64_t device_mallocs_ = 0;
  int64_t device_frees_ = 0;
};

}  // namespace ls2::mem
