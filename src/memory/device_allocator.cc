#include "memory/device_allocator.h"

#include <sys/mman.h>

#include <cstdlib>
#include <sstream>

namespace ls2::mem {

namespace {
std::string oom_message(int64_t requested, int64_t in_use, int64_t capacity) {
  std::ostringstream os;
  os << "simulated device OOM: requested " << requested << " B with " << in_use
     << " B in use of " << capacity << " B capacity";
  return os.str();
}
}  // namespace

OutOfMemory::OutOfMemory(int64_t requested_, int64_t in_use_, int64_t capacity_)
    : Error(oom_message(requested_, in_use_, capacity_)),
      requested(requested_),
      in_use(in_use_),
      capacity(capacity_) {}

TransientAllocFailure::TransientAllocFailure(int64_t requested_, int64_t in_use_,
                                             int64_t capacity_,
                                             const std::string& site)
    : OutOfMemory("transient device allocation failure (injected) for " +
                      std::to_string(requested_) + " B" +
                      (site.empty() ? std::string() : " in '" + site + "'") +
                      " — retry is expected to succeed",
                  requested_, in_use_, capacity_) {}

void* DeviceAllocator::device_malloc(size_t bytes) {
  const int64_t capacity =
      static_cast<int64_t>(device_.profile().memory_gb * 1024.0 * 1024.0 * 1024.0);
  if (reserved_bytes_ + static_cast<int64_t>(bytes) > capacity) {
    throw OutOfMemory(static_cast<int64_t>(bytes), reserved_bytes_, capacity);
  }
  device_.charge_alloc(/*cache_hit=*/false);
  ++device_mallocs_;
  reserved_bytes_ += static_cast<int64_t>(bytes);
  if (backs_real_memory()) {
    void* p = std::malloc(bytes == 0 ? 1 : bytes);
    LS2_CHECK(p != nullptr) << "host backing allocation failed (" << bytes << " B)";
    return p;
  }
  // Timing-only backing: reserve address space without committing pages.
  void* p = mmap(nullptr, bytes == 0 ? 4096 : bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  LS2_CHECK(p != MAP_FAILED) << "virtual backing mmap failed (" << bytes << " B)";
  return p;
}

void DeviceAllocator::device_free(void* ptr, size_t bytes) {
  device_.charge_free();
  ++device_frees_;
  reserved_bytes_ -= static_cast<int64_t>(bytes);
  if (backs_real_memory()) {
    std::free(ptr);
  } else {
    munmap(ptr, bytes == 0 ? 4096 : bytes);
  }
}

void DeviceAllocator::note_usage(int64_t delta) {
  bytes_in_use_ += delta;
  if (bytes_in_use_ > peak_bytes_) peak_bytes_ = bytes_in_use_;
  device_.on_memory_change(bytes_in_use_);
}

}  // namespace ls2::mem
