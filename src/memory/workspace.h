// Symbolic tensor linking (§IV-C, Fig. 6/7).
//
// All parameters (and, separately, all gradients) are laid out back-to-back
// in one contiguous buffer; each named parameter is a *view* ("symbolic
// link") into it. The fused trainer then updates the whole model with a
// single kernel over the workspace instead of one kernel per parameter.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ls2::mem {

class Workspace {
 public:
  /// Declare a tensor; returns its slot index. Must happen before freeze().
  int add(const std::string& name, Shape shape, DType dtype);

  /// Allocate the single backing buffer and materialise all views.
  void freeze(BufferAllocator* alloc = nullptr);
  bool frozen() const { return frozen_; }

  /// Look up a linked tensor view by name (valid after freeze()).
  Tensor get(const std::string& name) const;
  Tensor get(int index) const;
  bool contains(const std::string& name) const;

  /// The whole workspace as one flat tensor — what the fused trainer kernel
  /// iterates over. Only meaningful when every slot shares one dtype.
  Tensor flat() const;

  int64_t total_elements() const { return total_elements_; }
  size_t total_bytes() const { return total_bytes_; }
  int size() const { return static_cast<int>(slots_.size()); }
  const std::string& name_of(int index) const;

  /// End (exclusive) of one slot's byte span inside the flat buffer,
  /// including the slot's trailing alignment padding: slot i occupies
  /// [byte_end(i-1), byte_end(i)) with byte_end(-1) == 0, so consecutive
  /// slots' spans tile the buffer exactly — the invariant the gradient
  /// bucketer (src/dist/bucket.h) relies on.
  size_t byte_end(int index) const;

  /// Reinterpreting view of the byte range [begin, end) as `dtype` elements
  /// (valid after freeze(); the range must be dtype-aligned).
  Tensor byte_range_view(size_t begin, size_t end, DType dtype) const;

 private:
  struct Slot {
    std::string name;
    Shape shape;
    DType dtype;
    size_t byte_offset = 0;
  };

  std::vector<Slot> slots_;
  std::map<std::string, int> by_name_;
  Tensor storage_;  // u8 buffer holding everything
  int64_t total_elements_ = 0;
  size_t total_bytes_ = 0;
  bool frozen_ = false;
  bool uniform_dtype_ = true;
  DType dtype_ = DType::kF32;
};

}  // namespace ls2::mem
