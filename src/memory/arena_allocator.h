// LightSeq2's memory strategy (§IV-D): reserve the maximal temporary
// capacity once before training (sized by a capacity scan over the training
// set), then serve every intermediate tensor from inside that region with a
// zero-cost first-fit free list — tensors whose lifetimes ended are recycled
// immediately (the generalisation of Fig. 8's shared blocks). Zero
// cudaMalloc/cudaFree traffic during training => flat memory profile
// (Fig. 20) and no allocator stalls (Fig. 21).
#pragma once

#include <cstdint>
#include <map>

#include "memory/device_allocator.h"

namespace ls2::mem {

class ArenaAllocator final : public DeviceAllocator {
 public:
  /// Reserves `capacity_bytes` up front with a single device malloc.
  ArenaAllocator(simgpu::Device& device, size_t capacity_bytes,
                 Backing backing = Backing::kMalloc);
  ~ArenaAllocator() override;

  void* allocate(size_t bytes) override;
  void deallocate(void* ptr, size_t bytes) override;
  const char* name() const override { return "arena"; }
  /// One up-front reservation, stable addresses, zero device traffic per
  /// step — the arena is what makes a LightSeq2 step graph-capturable.
  bool capture_safe() const override { return true; }

  /// Sanity hook between steps: verifies everything was released and resets
  /// fragmentation to a single free block.
  void reset();

  size_t capacity() const { return capacity_; }
  /// Largest concurrently-live byte count — how tight the capacity scan was.
  size_t high_water() const { return high_water_; }
  int64_t outstanding() const { return outstanding_; }

 private:
  char* base_ = nullptr;
  size_t capacity_ = 0;
  std::map<size_t, size_t> free_blocks_;  // offset -> size, coalesced
  size_t used_ = 0;
  size_t high_water_ = 0;
  int64_t outstanding_ = 0;
};

}  // namespace ls2::mem
