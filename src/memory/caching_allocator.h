// PyTorch/Fairseq-style caching allocator (the baseline memory strategy).
//
// Requests are rounded up to size buckets. A freed block goes back to a free
// list instead of cudaFree; a request is served from the free list when a
// large-enough cached block exists (cheap), otherwise by a real cudaMalloc
// (expensive). Because variable-length batches keep arriving with new high
// watermarks, physical memory grows in steps over training — exactly the
// Fairseq behaviour in Fig. 20 — and the malloc stalls depress utilisation
// (Fig. 21).
#pragma once

#include <map>
#include <mutex>

#include "memory/device_allocator.h"

namespace ls2::mem {

class CachingAllocator final : public DeviceAllocator {
 public:
  explicit CachingAllocator(simgpu::Device& device, Backing backing = Backing::kMalloc)
      : DeviceAllocator(device, backing) {}
  ~CachingAllocator() override;

  void* allocate(size_t bytes) override;
  void deallocate(void* ptr, size_t bytes) override;
  const char* name() const override { return "caching"; }
  /// Never certified: a cold request (or a free-list re-bucketing) calls
  /// device malloc mid-step, which poisons any in-progress graph capture.
  bool capture_safe() const override { return false; }

  /// cudaFree everything in the cache (PyTorch's empty_cache()).
  void release_cached();

  int64_t cached_bytes() const { return cached_bytes_; }
  int64_t cache_hits() const { return hits_; }
  int64_t cache_misses() const { return misses_; }

 private:
  static size_t round_bucket(size_t bytes);

  // bucket size -> free blocks of exactly that size
  std::multimap<size_t, void*> free_blocks_;
  int64_t cached_bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  std::mutex mu_;
};

}  // namespace ls2::mem
