#include "memory/workspace.h"

namespace ls2::mem {

namespace {
constexpr size_t kAlign = 16;  // vectorised kernel access
size_t align_up(size_t n) { return (n + kAlign - 1) / kAlign * kAlign; }
}  // namespace

int Workspace::add(const std::string& name, Shape shape, DType dtype) {
  LS2_CHECK(!frozen_) << "workspace already frozen";
  LS2_CHECK(by_name_.find(name) == by_name_.end()) << "duplicate slot '" << name << "'";
  Slot slot;
  slot.name = name;
  slot.shape = std::move(shape);
  slot.dtype = dtype;
  slot.byte_offset = total_bytes_;
  if (slots_.empty()) {
    dtype_ = dtype;
  } else if (dtype != dtype_) {
    uniform_dtype_ = false;
  }
  total_elements_ += slot.shape.numel();
  total_bytes_ += align_up(static_cast<size_t>(slot.shape.numel()) * dtype_size(dtype));
  const int index = static_cast<int>(slots_.size());
  by_name_[name] = index;
  slots_.push_back(std::move(slot));
  return index;
}

void Workspace::freeze(BufferAllocator* alloc) {
  LS2_CHECK(!frozen_) << "double freeze";
  storage_ = Tensor::zeros(Shape{static_cast<int64_t>(total_bytes_)}, DType::kU8, alloc);
  frozen_ = true;
}

Tensor Workspace::get(const std::string& name) const {
  auto it = by_name_.find(name);
  LS2_CHECK(it != by_name_.end()) << "no workspace slot '" << name << "'";
  return get(it->second);
}

Tensor Workspace::get(int index) const {
  LS2_CHECK(frozen_) << "workspace not frozen";
  LS2_CHECK(index >= 0 && index < size());
  const Slot& s = slots_[static_cast<size_t>(index)];
  return storage_.byte_view(s.byte_offset, s.shape, s.dtype);
}

bool Workspace::contains(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

Tensor Workspace::flat() const {
  LS2_CHECK(frozen_) << "workspace not frozen";
  LS2_CHECK(uniform_dtype_) << "flat() requires a uniform dtype workspace";
  // Slots are padded to 16B, which is a multiple of every dtype size, so the
  // flat view covers all slots plus inert padding elements.
  const int64_t elems = static_cast<int64_t>(total_bytes_ / dtype_size(dtype_));
  return storage_.byte_view(0, Shape{elems}, dtype_);
}

size_t Workspace::byte_end(int index) const {
  LS2_CHECK(index >= 0 && index < size());
  return index + 1 < size() ? slots_[static_cast<size_t>(index) + 1].byte_offset
                            : total_bytes_;
}

Tensor Workspace::byte_range_view(size_t begin, size_t end, DType dtype) const {
  LS2_CHECK(frozen_) << "workspace not frozen";
  LS2_CHECK(begin <= end && end <= total_bytes_)
      << "[" << begin << ", " << end << ") of " << total_bytes_;
  LS2_CHECK(begin % dtype_size(dtype) == 0)
      << "offset " << begin << "B not aligned to " << dtype_name(dtype);
  LS2_CHECK((end - begin) % dtype_size(dtype) == 0)
      << "range " << (end - begin) << "B not aligned to " << dtype_name(dtype);
  const int64_t elems = static_cast<int64_t>((end - begin) / dtype_size(dtype));
  return storage_.byte_view(begin, Shape{elems}, dtype);
}

const std::string& Workspace::name_of(int index) const {
  LS2_CHECK(index >= 0 && index < size());
  return slots_[static_cast<size_t>(index)].name;
}

}  // namespace ls2::mem
