#include "simgpu/fault.h"

#include "tensor/random.h"

namespace ls2::simgpu {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceLoss: return "device_loss";
    case FaultKind::kStragglerLink: return "straggler_link";
    case FaultKind::kKernelSpike: return "kernel_spike";
    case FaultKind::kAllocFail: return "alloc_fail";
    case FaultKind::kGradCorrupt: return "grad_corrupt";
  }
  return "unknown";
}

FaultEvent FaultPlan::device_loss(int64_t step, int rank, std::string site) {
  FaultEvent e;
  e.kind = FaultKind::kDeviceLoss;
  e.step = step;
  e.rank = rank;
  e.site = std::move(site);
  return e;
}

FaultEvent FaultPlan::straggler(int64_t step, double factor) {
  FaultEvent e;
  e.kind = FaultKind::kStragglerLink;
  e.step = step;
  e.factor = factor;
  return e;
}

FaultEvent FaultPlan::kernel_spike(int64_t step, std::string site, double factor,
                                   int count) {
  FaultEvent e;
  e.kind = FaultKind::kKernelSpike;
  e.step = step;
  e.site = std::move(site);
  e.factor = factor;
  e.count = count;
  return e;
}

FaultEvent FaultPlan::alloc_fail(int64_t step, int count, std::string site) {
  FaultEvent e;
  e.kind = FaultKind::kAllocFail;
  e.step = step;
  e.count = count;
  e.site = std::move(site);
  return e;
}

FaultEvent FaultPlan::grad_corrupt(int64_t step, size_t byte_lo, size_t byte_hi) {
  LS2_CHECK(byte_hi > byte_lo) << "grad_corrupt: empty byte range";
  FaultEvent e;
  e.kind = FaultKind::kGradCorrupt;
  e.step = step;
  e.byte_lo = byte_lo;
  e.byte_hi = byte_hi;
  return e;
}

FaultPlan& FaultPlan::kernel_spike_window(int64_t step_lo, int64_t step_hi,
                                          std::string site, double factor) {
  LS2_CHECK(step_hi > step_lo) << "kernel_spike_window: empty step range";
  for (int64_t step = step_lo; step < step_hi; ++step)
    add(kernel_spike(step, site, factor, /*count=*/-1));
  return *this;
}

FaultPlan FaultPlan::random_device_loss(uint64_t seed, double rate, int64_t steps,
                                        int ranks) {
  LS2_CHECK(rate >= 0.0 && rate <= 1.0) << "failure rate must be in [0,1], got " << rate;
  LS2_CHECK_GE(ranks, 1) << "random_device_loss needs at least one rank";
  const Rng rng(seed);
  FaultPlan plan;
  // Step 0 is spared: there is no checkpoint to recover to before the first
  // completed step, so a loss there models provisioning failure, not MTBF.
  for (int64_t step = 1; step < steps; ++step) {
    if (static_cast<double>(rng.uniform(/*stream=*/1, static_cast<uint64_t>(step))) >= rate)
      continue;
    const int rank = static_cast<int>(
        rng.randint(/*stream=*/2, static_cast<uint64_t>(step), ranks));
    plan.add(device_loss(step, rank));
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, double collective_timeout_us)
    : timeout_us_(collective_timeout_us) {
  LS2_CHECK(timeout_us_ > 0) << "collective timeout must be positive";
  slots_.reserve(plan.events.size());
  for (auto& e : plan.events) {
    Slot s;
    s.remaining = e.count;
    s.e = std::move(e);
    slots_.push_back(std::move(s));
  }
}

void FaultInjector::arm(int64_t global_step) {
  armed_step_ = global_step;
  // Occurrence budgets are per-arm: a replayed step gets the same number of
  // chances as the original (one-shot `fired` flags are what prevent refire).
  for (auto& s : slots_)
    if (armed(s)) s.remaining = s.e.count;
}

namespace {
bool site_matches(const std::string& site, const std::string& name) {
  return site.empty() || name.find(site) != std::string::npos;
}
}  // namespace

double FaultInjector::on_kernel(const std::string& kernel_name) {
  double mult = 1.0;
  for (auto& s : slots_) {
    if (!armed(s) || !site_matches(s.e.site, kernel_name)) continue;
    if (s.e.kind == FaultKind::kKernelSpike) {
      if (s.remaining == 0) continue;
      if (s.remaining > 0) --s.remaining;
      if (s.remaining == 0) s.fired = true;
      mult *= s.e.factor;
      ++kernel_spikes_;
    } else if (s.e.kind == FaultKind::kDeviceLoss && s.e.rank == 0) {
      s.fired = true;
      throw DeviceLostError("simgpu: device lost at step " +
                            std::to_string(armed_step_) + " in kernel '" +
                            kernel_name + "' (injected)");
    }
  }
  return mult;
}

double FaultInjector::comm_factor() const {
  double mult = 1.0;
  for (const auto& s : slots_)
    if (armed(s) && s.e.kind == FaultKind::kStragglerLink) mult *= s.e.factor;
  return mult;
}

bool FaultInjector::should_fail_alloc(const std::string& active_range) {
  for (auto& s : slots_) {
    if (!armed(s) || s.e.kind != FaultKind::kAllocFail) continue;
    if (!site_matches(s.e.site, active_range) || s.remaining == 0) continue;
    if (s.remaining > 0) --s.remaining;
    if (s.remaining == 0) s.fired = true;
    return true;
  }
  return false;
}

void FaultInjector::fire_sync_faults() {
  for (auto& s : slots_) {
    if (!armed(s) || s.e.kind != FaultKind::kGradCorrupt) continue;
    s.fired = true;
    if (sync_sink_) sync_sink_(s.e);
  }
}

const FaultEvent* FaultInjector::take_peer_loss() {
  for (auto& s : slots_) {
    if (!armed(s) || s.e.kind != FaultKind::kDeviceLoss || s.e.rank == 0) continue;
    s.fired = true;
    return &s.e;
  }
  return nullptr;
}

void FaultInjector::note_exposed_wait(double exposed_us, double clock_us) {
  if (exposed_us <= timeout_us_) return;
  ++timeout_exceedances_;
  for (const auto& s : slots_) {
    if (s.e.kind != FaultKind::kStragglerLink || s.e.step != armed_step_) continue;
    if (!straggler_steps_.empty() && straggler_steps_.back() == armed_step_) return;
    straggler_steps_.push_back(armed_step_);
    straggler_detect_clock_us_.push_back(clock_us);
    return;
  }
}

void FaultInjector::note_detection(double clock_us) {
  peer_detect_clock_us_.push_back(clock_us);
}

int FaultInjector::fired(FaultKind kind) const {
  int n = 0;
  for (const auto& s : slots_)
    if (s.fired && s.e.kind == kind) ++n;
  return n;
}

}  // namespace ls2::simgpu
