#include "simgpu/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace ls2::simgpu {

void Timeline::record_memory(double t_us, int64_t bytes_in_use) {
  memory_.push_back({t_us, bytes_in_use});
}

namespace {

// Merge with the previous span when contiguous to keep the vector small.
void append_span(std::vector<BusySpan>& spans, double begin_us, double end_us) {
  if (end_us <= begin_us) return;
  if (!spans.empty() && std::abs(spans.back().end_us - begin_us) < 1e-9) {
    spans.back().end_us = end_us;
    return;
  }
  spans.push_back({begin_us, end_us});
}

}  // namespace

void Timeline::record_busy(double begin_us, double end_us) {
  append_span(busy_, begin_us, end_us);
}

void Timeline::record_comm(double begin_us, double end_us) {
  append_span(comm_, begin_us, end_us);
}

void Timeline::record_span(int pid, int tid, std::string name, double begin_us,
                           double end_us) {
  if (end_us <= begin_us) return;
  named_.push_back({pid, tid, std::move(name), begin_us, end_us});
}

void Timeline::record_instant(int pid, int tid, std::string name, double t_us) {
  instants_.push_back({pid, tid, std::move(name), t_us});
}

void Timeline::name_process(int pid, std::string name) {
  process_names_.emplace_back(pid, std::move(name));
}

std::vector<int64_t> Timeline::memory_series(double bucket_us, double horizon_us) const {
  const size_t buckets = static_cast<size_t>(std::ceil(horizon_us / bucket_us));
  std::vector<int64_t> series(buckets, 0);
  int64_t current = 0;
  size_t si = 0;
  for (size_t b = 0; b < buckets; ++b) {
    const double bucket_end = (static_cast<double>(b) + 1.0) * bucket_us;
    int64_t peak_in_bucket = current;
    while (si < memory_.size() && memory_[si].t_us <= bucket_end) {
      current = memory_[si].bytes;
      peak_in_bucket = std::max(peak_in_bucket, current);
      ++si;
    }
    series[b] = peak_in_bucket;
  }
  return series;
}

std::vector<double> Timeline::utilization_series(double bucket_us, double horizon_us) const {
  const size_t buckets = static_cast<size_t>(std::ceil(horizon_us / bucket_us));
  std::vector<double> series(buckets, 0.0);
  for (const BusySpan& span : busy_) {
    double t = span.begin_us;
    while (t < span.end_us) {
      const size_t b = static_cast<size_t>(t / bucket_us);
      if (b >= buckets) break;
      const double bucket_end = (static_cast<double>(b) + 1.0) * bucket_us;
      const double covered = std::min(span.end_us, bucket_end) - t;
      series[b] += covered;
      t += covered;
    }
  }
  for (double& v : series) v = std::min(1.0, v / bucket_us);
  return series;
}

int64_t Timeline::peak_memory_bytes() const {
  int64_t peak = 0;
  for (const MemorySample& s : memory_) peak = std::max(peak, s.bytes);
  return peak;
}

void Timeline::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  LS2_CHECK(out.good()) << "cannot open " << path;
  out << "{\"traceEvents\":[\n";
  char buf[256];
  bool first = true;
  auto emit = [&](const char* text) {
    if (!first) out << ",\n";
    first = false;
    out << text;
  };
  // Track names (one fake process, one thread per stream).
  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
       "\"args\":{\"name\":\"compute stream\"}}");
  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
       "\"args\":{\"name\":\"comm stream\"}}");
  // Per-rank process lanes (pipeline runs) plus their stream thread names.
  std::vector<int> named_pids;
  for (const auto& [pid, name] : process_names_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, name.c_str());
    emit(buf);
    named_pids.push_back(pid);
  }
  for (const NamedSpan& s : named_) {
    if (std::find(named_pids.begin(), named_pids.end(), s.pid) != named_pids.end()) {
      continue;
    }
    named_pids.push_back(s.pid);
  }
  for (int pid : named_pids) {
    if (pid == 0) continue;  // pid 0's thread names were emitted above
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"compute stream\"}}",
                  pid);
    emit(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"comm stream\"}}",
                  pid);
    emit(buf);
  }
  // Complete ("X") events per busy/comm span; ts/dur are microseconds,
  // which is exactly the simulated clock's unit.
  for (const BusySpan& s : busy_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"busy\","
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  s.begin_us, s.end_us - s.begin_us);
    emit(buf);
  }
  for (const BusySpan& s : comm_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"comm\","
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  s.begin_us, s.end_us - s.begin_us);
    emit(buf);
  }
  // Labelled stage/microbatch/span chunks on their rank's lanes, as
  // balanced duration-begin/-end ("B"/"E") pairs so nested telemetry spans
  // (step > stage > bucket > kernel-range) stack in the viewer. Events are
  // sorted by timestamp; at equal timestamps ends precede begins (adjacent
  // spans don't overlap), outer begins precede inner ones (longer first)
  // and inner ends precede outer ones (shorter first), which keeps every
  // lane's B/E sequence properly nested.
  struct SpanEvent {
    bool is_begin;
    double ts;
    double dur;
    const NamedSpan* span;
  };
  std::vector<SpanEvent> events;
  events.reserve(named_.size() * 2);
  for (const NamedSpan& s : named_) {
    events.push_back({true, s.begin_us, s.end_us - s.begin_us, &s});
    events.push_back({false, s.end_us, s.end_us - s.begin_us, &s});
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.is_begin != b.is_begin) return !a.is_begin;  // E before B
              if (a.dur != b.dur)
                return a.is_begin ? a.dur > b.dur : a.dur < b.dur;
              // Identical-extent spans: close in reverse open order (LIFO).
              return a.is_begin ? a.span->name < b.span->name
                                : a.span->name > b.span->name;
            });
  for (const SpanEvent& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
                  "\"ts\":%.3f}",
                  e.is_begin ? 'B' : 'E', e.span->pid, e.span->tid,
                  e.span->name.c_str(), e.ts);
    emit(buf);
  }
  // Fault/retry markers as thread-scoped instant events (rendered as small
  // arrows at their moment on the lane).
  for (const InstantEvent& e : instants_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
                  "\"ts\":%.3f,\"s\":\"t\"}",
                  e.pid, e.tid, e.name.c_str(), e.t_us);
    emit(buf);
  }
  // Memory watermark as a counter series (renders as an area chart).
  for (const MemorySample& m : memory_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"C\",\"pid\":0,\"name\":\"memory\",\"ts\":%.3f,"
                  "\"args\":{\"bytes_in_use\":%lld}}",
                  m.t_us, static_cast<long long>(m.bytes));
    emit(buf);
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Timeline::clear() {
  memory_.clear();
  busy_.clear();
  comm_.clear();
  named_.clear();
  instants_.clear();
  process_names_.clear();
}

}  // namespace ls2::simgpu
