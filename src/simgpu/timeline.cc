#include "simgpu/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace ls2::simgpu {

void Timeline::record_memory(double t_us, int64_t bytes_in_use) {
  memory_.push_back({t_us, bytes_in_use});
}

namespace {

// Merge with the previous span when contiguous to keep the vector small.
void append_span(std::vector<BusySpan>& spans, double begin_us, double end_us) {
  if (end_us <= begin_us) return;
  if (!spans.empty() && std::abs(spans.back().end_us - begin_us) < 1e-9) {
    spans.back().end_us = end_us;
    return;
  }
  spans.push_back({begin_us, end_us});
}

}  // namespace

void Timeline::record_busy(double begin_us, double end_us) {
  append_span(busy_, begin_us, end_us);
}

void Timeline::record_comm(double begin_us, double end_us) {
  append_span(comm_, begin_us, end_us);
}

std::vector<int64_t> Timeline::memory_series(double bucket_us, double horizon_us) const {
  const size_t buckets = static_cast<size_t>(std::ceil(horizon_us / bucket_us));
  std::vector<int64_t> series(buckets, 0);
  int64_t current = 0;
  size_t si = 0;
  for (size_t b = 0; b < buckets; ++b) {
    const double bucket_end = (static_cast<double>(b) + 1.0) * bucket_us;
    int64_t peak_in_bucket = current;
    while (si < memory_.size() && memory_[si].t_us <= bucket_end) {
      current = memory_[si].bytes;
      peak_in_bucket = std::max(peak_in_bucket, current);
      ++si;
    }
    series[b] = peak_in_bucket;
  }
  return series;
}

std::vector<double> Timeline::utilization_series(double bucket_us, double horizon_us) const {
  const size_t buckets = static_cast<size_t>(std::ceil(horizon_us / bucket_us));
  std::vector<double> series(buckets, 0.0);
  for (const BusySpan& span : busy_) {
    double t = span.begin_us;
    while (t < span.end_us) {
      const size_t b = static_cast<size_t>(t / bucket_us);
      if (b >= buckets) break;
      const double bucket_end = (static_cast<double>(b) + 1.0) * bucket_us;
      const double covered = std::min(span.end_us, bucket_end) - t;
      series[b] += covered;
      t += covered;
    }
  }
  for (double& v : series) v = std::min(1.0, v / bucket_us);
  return series;
}

int64_t Timeline::peak_memory_bytes() const {
  int64_t peak = 0;
  for (const MemorySample& s : memory_) peak = std::max(peak, s.bytes);
  return peak;
}

void Timeline::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  LS2_CHECK(out.good()) << "cannot open " << path;
  out << "{\"traceEvents\":[\n";
  char buf[256];
  bool first = true;
  auto emit = [&](const char* text) {
    if (!first) out << ",\n";
    first = false;
    out << text;
  };
  // Track names (one fake process, one thread per stream).
  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
       "\"args\":{\"name\":\"compute stream\"}}");
  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
       "\"args\":{\"name\":\"comm stream\"}}");
  // Complete ("X") events per busy/comm span; ts/dur are microseconds,
  // which is exactly the simulated clock's unit.
  for (const BusySpan& s : busy_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"busy\","
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  s.begin_us, s.end_us - s.begin_us);
    emit(buf);
  }
  for (const BusySpan& s : comm_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"comm\","
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  s.begin_us, s.end_us - s.begin_us);
    emit(buf);
  }
  // Memory watermark as a counter series (renders as an area chart).
  for (const MemorySample& m : memory_) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"C\",\"pid\":0,\"name\":\"memory\",\"ts\":%.3f,"
                  "\"args\":{\"bytes_in_use\":%lld}}",
                  m.t_us, static_cast<long long>(m.bytes));
    emit(buf);
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Timeline::clear() {
  memory_.clear();
  busy_.clear();
  comm_.clear();
}

}  // namespace ls2::simgpu
