// Analytical device profiles.
//
// We cannot measure CUDA wall-clock in this environment, so device time is
// *modeled*: each kernel launch is charged
//
//     t = launch_overhead + max(bytes_moved / achieved_bandwidth,
//                               flops / achieved_throughput)
//
// with peak numbers taken from NVIDIA's published V100/A100 specifications.
// The achieved fractions come from the kernel implementations themselves
// (a naive two-pass LayerNorm both moves more bytes *and* sustains a lower
// fraction of peak bandwidth than the fused single-pass rewrite). This keeps
// the comparisons honest: LightSeq2 wins in the model for exactly the
// reasons the paper gives — fewer launches, fewer bytes, better reductions —
// not because results are hard-coded.
#pragma once

#include <string>

namespace ls2::simgpu {

struct DeviceProfile {
  std::string name;

  // Kernel launch.
  double launch_overhead_us = 4.5;  ///< host->device launch latency per kernel
  /// Launching a whole captured step graph costs one (bigger) dispatch
  /// instead of one per kernel — the CUDA-Graphs amortization a replayed
  /// step pays once per `Device::begin_replay`.
  double graph_launch_overhead_us = 10.0;

  /// Thread-residency capacity (SMs x max threads/SM). The Softmax kernels
  /// and their auto-tuner key their occupancy model (and the tuner cache)
  /// off this, so tuning decisions are per-profile; the other reduction
  /// kernels still assume V100-class residency.
  double resident_threads = 163840;

  // Memory system.
  double mem_bw_gb_s = 900.0;  ///< peak HBM bandwidth

  // Compute.
  double fp32_tflops = 15.7;   ///< peak FP32 (CUDA cores)
  double fp16_tflops = 125.0;  ///< peak FP16 (tensor cores), used by GEMM

  // Allocator costs (paper §II-A / Fig. 20: dynamic allocation slows and
  // destabilises training; LightSeq2 allocates once up front).
  double malloc_us = 120.0;  ///< cudaMalloc
  double free_us = 60.0;     ///< cudaFree
  double cached_alloc_us = 2.0;  ///< cache-hit in a caching allocator

  // Interconnect, for the data-parallel simulator (Fig. 3 "Synchronize",
  // Fig. 22 scalability).
  double nvlink_bus_gb_s = 130.0;  ///< intra-node all-reduce bus bandwidth
  double ib_bus_gb_s = 12.0;       ///< inter-node bus bandwidth
  double allreduce_latency_us = 30.0;  ///< per-ring-step latency

  /// Host link (PCIe) bandwidth, for the device-to-host drain of an
  /// asynchronous checkpoint snapshot (DESIGN.md §10).
  double pcie_gb_s = 12.0;

  // Device memory capacity, for OOM modelling (Fig. 10: Fairseq OOMs at
  // batch sizes LightSeq2 still trains).
  double memory_gb = 32.0;
};

/// Tesla V100-SXM2-32GB.
DeviceProfile v100();
/// Tesla A100-SXM4-40GB.
DeviceProfile a100();
/// Conservative generic profile used by unit tests.
DeviceProfile generic();

/// Look up by case-insensitive name ("v100", "a100", "generic").
DeviceProfile profile_by_name(const std::string& name);

}  // namespace ls2::simgpu
