// Simulated GPU device: executes kernels on the host while advancing an
// analytical device clock.
//
// Two modes (see DESIGN.md §2):
//  * kExecute   — the kernel body runs for real (tests, examples, op benches);
//  * kModelOnly — only the cost model runs, so paper-scale configurations
//                 (24e24d, 15k batch tokens) can be swept in milliseconds.
//
// Every kernel launch declares what it touches (bytes read/written, flops,
// achieved efficiencies); the device charges
//     launch_overhead + max(bytes/BW_eff, flops/TP_eff)
// and attributes the time to the innermost active ScopedRange, which is how
// per-stage breakdowns (Fig. 3) and layer-wise timings (Fig. 19) fall out.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "simgpu/profile.h"
#include "simgpu/timeline.h"

namespace ls2::simgpu {

enum class ExecMode {
  kExecute,    ///< run kernel bodies (real math) + cost model
  kModelOnly,  ///< cost model only; bodies skipped
};

/// Static description of one kernel launch, from which its simulated
/// duration is computed.
struct KernelDesc {
  std::string name;           ///< e.g. "ls2.layernorm_fw" / "torch.add"
  int64_t bytes_read = 0;     ///< global-memory bytes read
  int64_t bytes_written = 0;  ///< global-memory bytes written
  double flops = 0;           ///< floating point operations
  double mem_efficiency = 0.80;      ///< achieved fraction of peak bandwidth
  double compute_efficiency = 0.70;  ///< achieved fraction of peak FLOPs
  bool tensor_core = false;  ///< true => use fp16 tensor-core peak (GEMM)
};

struct KernelStats {
  int64_t launches = 0;
  int64_t bytes = 0;
  double flops = 0;
  double time_us = 0;
};

struct DeviceStats {
  int64_t launches = 0;
  int64_t bytes_moved = 0;
  double flops = 0;
  double busy_us = 0;        ///< kernel execution time
  double overhead_us = 0;    ///< launch gaps + allocator stalls (GPU idle)
  double alloc_events = 0;   ///< number of device malloc/free calls
  int64_t comm_transfers = 0;   ///< transfers enqueued on the comm stream
  double comm_us = 0;           ///< total comm-stream busy time
  double exposed_comm_us = 0;   ///< comm time the compute stream waited on
};

class Device {
 public:
  explicit Device(DeviceProfile profile, ExecMode mode = ExecMode::kExecute);

  const DeviceProfile& profile() const { return profile_; }
  ExecMode mode() const { return mode_; }
  void set_mode(ExecMode m) { mode_ = m; }

  /// Launch one kernel: advances the clock by the modeled duration and (in
  /// execute mode) runs `body`.
  void launch(const KernelDesc& desc, const std::function<void()>& body);

  /// Modeled duration of a kernel without launching it.
  double kernel_time_us(const KernelDesc& desc) const;

  /// Advance the clock without a kernel (allocator stalls, comm waits...).
  /// `busy` selects whether the span counts toward utilisation.
  void advance(double us, bool busy, const std::string& attribution);

  // --- Communication stream (overlapped data-parallel sync) ---
  //
  // The device models TWO streams: the compute stream (`clock_us`, which
  // every kernel launch advances) and a communication stream on which
  // gradient all-reduces run concurrently with compute. A transfer enqueued
  // at compute time t starts at max(t, previous transfer's end) — it can
  // overlap later compute but transfers serialize among themselves, like
  // NCCL calls on one comm stream.

  /// Enqueue `us` microseconds of communication; returns the transfer's
  /// modeled completion time. Does NOT advance the compute clock.
  double enqueue_comm(double us, const std::string& attribution);
  /// Block the compute stream until the comm stream drains (stream sync).
  /// The wait — comm time NOT hidden behind compute — is charged to
  /// `attribution` and returned ("exposed" synchronization time).
  double sync_comm(const std::string& attribution);
  /// Block the compute stream until the comm stream has reached `t_us` —
  /// a stream-wait-event on one transfer's completion rather than a full
  /// drain. Later transfers keep running; the wait (charged to
  /// `attribution`, counted as exposed comm) is returned. No-op when the
  /// compute clock is already past `t_us`.
  double wait_comm_until(double t_us, const std::string& attribution);
  double comm_clock_us() const { return comm_clock_us_; }

  /// Allocator hooks: charge allocation latency and record the watermark.
  void charge_alloc(bool cache_hit);
  void charge_free();
  void on_memory_change(int64_t bytes_in_use);

  double clock_us() const { return clock_us_; }
  const DeviceStats& stats() const { return stats_; }
  const std::map<std::string, KernelStats>& per_kernel() const { return per_kernel_; }

  /// Time attributed to a named range across all launches so far.
  double range_time_us(const std::string& range) const;
  const std::map<std::string, double>& range_times() const { return range_times_; }

  /// GPU utilisation so far: busy / (busy + idle overhead).
  double utilization() const;

  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  void set_record_timeline(bool on) { record_timeline_ = on; }

  /// Reset clock/stats/timeline (memory watermark is kept by the allocator).
  void reset();

  // --- Scoped range API (see ScopedRange below) ---
  void push_range(const std::string& name);
  void pop_range();

 private:
  void attribute(double us);

  DeviceProfile profile_;
  ExecMode mode_;
  double clock_us_ = 0;
  double comm_clock_us_ = 0;  ///< completion time of the last comm transfer
  DeviceStats stats_;
  std::map<std::string, KernelStats> per_kernel_;
  std::map<std::string, double> range_times_;
  std::vector<std::string> range_stack_;
  Timeline timeline_;
  bool record_timeline_ = false;
};

/// RAII stage marker: time advanced while alive is attributed to `name`
/// (innermost wins). Mirrors nvtx ranges.
class ScopedRange {
 public:
  ScopedRange(Device& device, std::string name) : device_(device) {
    device_.push_range(std::move(name));
  }
  ~ScopedRange() { device_.pop_range(); }
  ScopedRange(const ScopedRange&) = delete;
  ScopedRange& operator=(const ScopedRange&) = delete;

 private:
  Device& device_;
};

}  // namespace ls2::simgpu
