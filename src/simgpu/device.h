// Simulated GPU device: executes kernels on the host while advancing an
// analytical device clock.
//
// Two modes (see DESIGN.md §2):
//  * kExecute   — the kernel body runs for real (tests, examples, op benches);
//  * kModelOnly — only the cost model runs, so paper-scale configurations
//                 (24e24d, 15k batch tokens) can be swept in milliseconds.
//
// Every kernel launch declares what it touches (bytes read/written, flops,
// achieved efficiencies); the device charges
//     launch_overhead + max(bytes/BW_eff, flops/TP_eff)
// and attributes the time to the innermost active ScopedRange, which is how
// per-stage breakdowns (Fig. 3) and layer-wise timings (Fig. 19) fall out.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "simgpu/profile.h"
#include "simgpu/timeline.h"

namespace ls2::simgpu {

class FaultInjector;

/// A graph-discipline violation surfaced at runtime: replay divergence from
/// the captured step, device malloc/free or full-stream sync under replay,
/// or replaying a poisoned graph. Typed (rather than a bare ls2::Error) so
/// the recovery layer and bench mains can catch graph trouble specifically,
/// fall back to eager execution, and keep going instead of aborting.
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error(what) {}
};

enum class ExecMode {
  kExecute,    ///< run kernel bodies (real math) + cost model
  kModelOnly,  ///< cost model only; bodies skipped
};

/// Static description of one kernel launch, from which its simulated
/// duration is computed.
struct KernelDesc {
  std::string name;           ///< e.g. "ls2.layernorm_fw" / "torch.add"
  int64_t bytes_read = 0;     ///< global-memory bytes read
  int64_t bytes_written = 0;  ///< global-memory bytes written
  double flops = 0;           ///< floating point operations
  double mem_efficiency = 0.80;      ///< achieved fraction of peak bandwidth
  double compute_efficiency = 0.70;  ///< achieved fraction of peak FLOPs
  bool tensor_core = false;  ///< true => use fp16 tensor-core peak (GEMM)
};

struct KernelStats {
  int64_t launches = 0;
  int64_t bytes = 0;
  double flops = 0;
  double time_us = 0;  ///< execution + launch gaps (what the family cost the clock)
  /// Pure execution time (no launch gaps / graph dispatch) — the roofline
  /// profiler's numerator: summed over families it equals the kernel share
  /// of DeviceStats::busy_us exactly, replayed or eager.
  double exec_us = 0;
  bool tensor_core = false;  ///< family ran on the tensor-core peak (GEMM)
};

struct DeviceStats {
  int64_t launches = 0;      ///< kernel executions (eager-launched or replayed)
  int64_t bytes_moved = 0;
  double flops = 0;
  double busy_us = 0;        ///< kernel execution time
  /// Total GPU-idle overhead. At least launch_gap_us + alloc_stall_us +
  /// graph_launch_us; `advance(us, busy=false, ...)` also lands here.
  double overhead_us = 0;
  double launch_gap_us = 0;   ///< per-kernel host-dispatch gaps (eager launches)
  double alloc_stall_us = 0;  ///< cudaMalloc/cudaFree/cached-alloc stalls
  double alloc_events = 0;   ///< number of device malloc/free calls
  int64_t comm_transfers = 0;   ///< transfers enqueued on the comm stream
  double comm_us = 0;           ///< total comm-stream busy time
  double exposed_comm_us = 0;   ///< comm time the compute stream waited on
  // --- step-graph replay (see StepGraph below) ---
  int64_t graph_replays = 0;       ///< begin_replay calls
  int64_t replayed_launches = 0;   ///< kernel executions issued via replay
  double graph_launch_us = 0;      ///< whole-graph dispatch overhead charged
};

/// One recorded operation of a captured step graph.
struct GraphNode {
  enum class Kind { kKernel, kCommEnqueue, kCommWait };
  Kind kind = Kind::kKernel;
  KernelDesc desc;     ///< kKernel: validated against the replayed launch
  /// kKernel: execution time baked in at capture — what each replay charges
  /// (a replay runs the captured launch parameters, not fresh ones).
  double exec_us = 0;
  double comm_us = 0;  ///< kCommEnqueue: modeled transfer duration
};

/// An immutable recording of one steady-state step's device work, produced
/// by Device::begin_capture/end_capture and replayed with begin_replay:
/// the replay charges ONE graph-launch overhead plus the kernels'
/// back-to-back execution times — no per-launch gaps. Comm transfers and
/// stream-wait edges are recorded as graph nodes, but their *completion
/// times* are recomputed at each replay from the live comm clock (they are
/// replay-time parameters, which is what lets the pipelined per-bucket
/// update compose with replay).
struct StepGraph {
  std::vector<GraphNode> nodes;
  int64_t kernel_launches = 0;  ///< number of kKernel nodes
  double kernel_exec_us = 0;    ///< sum of their execution times
  bool valid = false;           ///< false until end_capture, or when poisoned
  std::string poison_reason;    ///< why capture failed (first offense)
};

class Device {
 public:
  explicit Device(DeviceProfile profile, ExecMode mode = ExecMode::kExecute);

  const DeviceProfile& profile() const { return profile_; }
  ExecMode mode() const { return mode_; }
  void set_mode(ExecMode m) { mode_ = m; }

  /// Launch one kernel: advances the clock by the modeled duration and (in
  /// execute mode) runs `body`.
  void launch(const KernelDesc& desc, const std::function<void()>& body);

  /// Modeled duration of a kernel without launching it.
  double kernel_time_us(const KernelDesc& desc) const;

  // --- charge scaling (tensor parallelism) ---
  //
  // While a scale s is pushed, every launch's modeled bytes and flops are
  // multiplied by s before costing/recording — how TP layers charge their
  // row-wise kernels at 1/k shard size without duplicating call sites
  // (bandwidth-bound kernels scale linearly in bytes; GEMMs instead pass
  // explicit shard descriptors so their occupancy model sees real shard
  // shapes). The scaled descriptor is what a capture records, so replay
  // validation stays consistent as long as the regions are deterministic.
  void push_charge_scale(double s);
  void pop_charge_scale();
  double charge_scale() const { return charge_scale_; }

  /// Advance the clock without a kernel (allocator stalls, comm waits...).
  /// `busy` selects whether the span counts toward utilisation.
  void advance(double us, bool busy, const std::string& attribution);

  // --- Communication stream (overlapped data-parallel sync) ---
  //
  // The device models TWO streams: the compute stream (`clock_us`, which
  // every kernel launch advances) and a communication stream on which
  // gradient all-reduces run concurrently with compute. A transfer enqueued
  // at compute time t starts at max(t, previous transfer's end) — it can
  // overlap later compute but transfers serialize among themselves, like
  // NCCL calls on one comm stream.

  /// Enqueue `us` microseconds of communication; returns the transfer's
  /// modeled completion time. Does NOT advance the compute clock.
  double enqueue_comm(double us, const std::string& attribution);
  /// Block the compute stream until the comm stream drains (stream sync).
  /// The wait — comm time NOT hidden behind compute — is charged to
  /// `attribution` and returned ("exposed" synchronization time).
  double sync_comm(const std::string& attribution);
  /// Block the compute stream until the comm stream has reached `t_us` —
  /// a stream-wait-event on one transfer's completion rather than a full
  /// drain. Later transfers keep running; the wait (charged to
  /// `attribution`, counted as exposed comm) is returned. No-op when the
  /// compute clock is already past `t_us`.
  double wait_comm_until(double t_us, const std::string& attribution);
  double comm_clock_us() const { return comm_clock_us_; }

  // --- Step-graph capture & replay (CUDA-Graphs discipline) ---
  //
  // Capture is CONCURRENT with eager execution: between begin_capture and
  // end_capture every launch / comm enqueue / stream-wait is charged exactly
  // as usual AND recorded as a graph node, so the capture step stays
  // bitwise- and time-identical to an eager step. Capture is POISONED (the
  // returned graph is invalid, with a reason) by operations that are illegal
  // inside a real CUDA stream capture: device malloc/free (an allocator
  // stall means addresses are not stable — the arena never stalls, which is
  // what certifies it capture-safe) and full-stream syncs.
  //
  // Replay consumes the graph's nodes in order: begin_replay charges one
  // graph-launch overhead, each launch is validated against its node (name,
  // bytes, flops — a mismatch means the step is not actually static) and
  // charged only its execution time, back to back. Kernel bodies still run
  // in kExecute mode — replay changes the cost model, never the numerics.

  void begin_capture();
  /// Finish capture; the result is valid unless capture was poisoned.
  StepGraph end_capture();
  /// Invalidate an in-progress capture (no-op otherwise). The remainder of
  /// the step keeps charging eagerly; end_capture returns the reason.
  void poison_capture(const std::string& reason);
  /// Start replaying `graph` (must outlive the replay and be valid).
  void begin_replay(const StepGraph& graph);
  /// Finish replay; checks every node was consumed.
  void end_replay();
  /// Abandon any capture/replay in progress without validation — for
  /// unwinding after an exception mid-step. Never throws.
  void abort_graph() noexcept;
  bool capturing() const { return graph_phase_ == GraphPhase::kCapture; }
  bool replaying() const { return graph_phase_ == GraphPhase::kReplay; }

  // --- Fault injection (src/simgpu/fault.h) ---
  //
  // With an injector installed, every launch consults it for latency spikes
  // and rank-0 device loss, comm transfers are stretched by the straggler
  // factor, and sync points double as failure-detection points. A null
  // injector (the default) costs one pointer test per hook — the fault-free
  // paths are otherwise untouched.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  FaultInjector* fault_injector() const { return fault_; }
  /// Innermost active ScopedRange name ("" when none) — the site key for
  /// range-gated fault events (e.g. alloc failure inside "serve.decode").
  const std::string& current_range() const;
  /// Collective sync point: fires pending sync-scoped faults and, when a
  /// peer loss is armed, charges the detection timeout as idle wait
  /// ("fault.detect") and throws PeerLostError. sync_comm/wait_comm_until
  /// call this internally; step paths whose DP sync is modeled analytically
  /// (the 1F1B engine) call it explicitly at their sync boundary.
  void at_sync_point(const std::string& attribution);

  /// Allocator hooks: charge allocation latency and record the watermark.
  void charge_alloc(bool cache_hit);
  void charge_free();
  void on_memory_change(int64_t bytes_in_use);

  double clock_us() const { return clock_us_; }
  const DeviceStats& stats() const { return stats_; }
  const std::map<std::string, KernelStats>& per_kernel() const { return per_kernel_; }

  /// Time attributed to a named range across all launches so far.
  double range_time_us(const std::string& range) const;
  const std::map<std::string, double>& range_times() const { return range_times_; }

  /// GPU utilisation so far: busy / (busy + idle overhead).
  double utilization() const;

  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  void set_record_timeline(bool on) { record_timeline_ = on; }
  bool record_timeline() const { return record_timeline_; }

  /// Drop a named instant marker at the current clock on the timeline
  /// (no-op unless the timeline is recording) — how fault/retry/hedge
  /// events become visible in the exported Chrome trace.
  void mark(const std::string& name) {
    if (record_timeline_) timeline_.record_instant(0, 0, name, clock_us_);
  }

  /// Reset clock/stats/timeline (memory watermark is kept by the allocator).
  void reset();

  // --- Scoped range API (see ScopedRange below) ---
  void push_range(const std::string& name);
  void pop_range();

 private:
  enum class GraphPhase { kNone, kCapture, kReplay };

  void attribute(double us);
  /// Replay-side node matching: checks the next node has `kind` (and, for
  /// kernels, an equal descriptor) and advances the cursor.
  const GraphNode& consume_node(GraphNode::Kind kind, const KernelDesc* desc);

  DeviceProfile profile_;
  ExecMode mode_;
  double clock_us_ = 0;
  double comm_clock_us_ = 0;  ///< completion time of the last comm transfer
  GraphPhase graph_phase_ = GraphPhase::kNone;
  StepGraph capture_;                  ///< graph being built (kCapture)
  bool capture_poisoned_ = false;
  const StepGraph* replay_ = nullptr;  ///< graph being consumed (kReplay)
  size_t replay_cursor_ = 0;
  double charge_scale_ = 1.0;
  std::vector<double> charge_scale_stack_;
  DeviceStats stats_;
  std::map<std::string, KernelStats> per_kernel_;
  std::map<std::string, double> range_times_;
  std::vector<std::string> range_stack_;
  Timeline timeline_;
  bool record_timeline_ = false;
  FaultInjector* fault_ = nullptr;  ///< not owned; null = fault-free
};

/// RAII stage marker: time advanced while alive is attributed to `name`
/// (innermost wins). Mirrors nvtx ranges.
class ScopedRange {
 public:
  ScopedRange(Device& device, std::string name) : device_(device) {
    device_.push_range(std::move(name));
  }
  ~ScopedRange() { device_.pop_range(); }
  ScopedRange(const ScopedRange&) = delete;
  ScopedRange& operator=(const ScopedRange&) = delete;

 private:
  Device& device_;
};

}  // namespace ls2::simgpu
