#include "simgpu/device.h"

#include <algorithm>

#include "common/check.h"

namespace ls2::simgpu {

Device::Device(DeviceProfile profile, ExecMode mode)
    : profile_(std::move(profile)), mode_(mode) {}

double Device::kernel_time_us(const KernelDesc& desc) const {
  const double bytes = static_cast<double>(desc.bytes_read + desc.bytes_written);
  // GB/s == bytes/ns, so us = bytes / (BW * 1e3).
  const double mem_us = bytes / (profile_.mem_bw_gb_s * desc.mem_efficiency * 1e3);
  const double peak_tflops = desc.tensor_core ? profile_.fp16_tflops : profile_.fp32_tflops;
  const double compute_us = desc.flops / (peak_tflops * desc.compute_efficiency * 1e6);
  return std::max(mem_us, compute_us);
}

void Device::launch(const KernelDesc& desc, const std::function<void()>& body) {
  LS2_CHECK(desc.mem_efficiency > 0 && desc.mem_efficiency <= 1.0)
      << desc.name << " mem_efficiency " << desc.mem_efficiency;
  LS2_CHECK(desc.compute_efficiency > 0 && desc.compute_efficiency <= 1.0)
      << desc.name << " compute_efficiency " << desc.compute_efficiency;

  // Launch gap: the GPU is idle while the host dispatches the kernel.
  const double overhead = profile_.launch_overhead_us;
  const double exec = kernel_time_us(desc);

  stats_.launches += 1;
  stats_.bytes_moved += desc.bytes_read + desc.bytes_written;
  stats_.flops += desc.flops;
  stats_.overhead_us += overhead;
  stats_.busy_us += exec;

  KernelStats& ks = per_kernel_[desc.name];
  ks.launches += 1;
  ks.bytes += desc.bytes_read + desc.bytes_written;
  ks.flops += desc.flops;
  ks.time_us += overhead + exec;

  clock_us_ += overhead;
  const double busy_begin = clock_us_;
  clock_us_ += exec;
  if (record_timeline_) timeline_.record_busy(busy_begin, clock_us_);
  attribute(overhead + exec);

  if (mode_ == ExecMode::kExecute && body) body();
}

void Device::advance(double us, bool busy, const std::string& attribution) {
  if (us <= 0) return;
  if (busy) {
    const double begin = clock_us_;
    stats_.busy_us += us;
    clock_us_ += us;
    if (record_timeline_) timeline_.record_busy(begin, clock_us_);
  } else {
    stats_.overhead_us += us;
    clock_us_ += us;
  }
  if (!attribution.empty()) {
    range_times_[attribution] += us;
  } else {
    attribute(us);
  }
}

double Device::enqueue_comm(double us, const std::string& attribution) {
  LS2_CHECK(us >= 0) << "negative comm time";
  if (us == 0) return std::max(comm_clock_us_, clock_us_);
  // The transfer starts once its payload exists (now, on the compute clock)
  // and the comm stream is free; transfers serialize among themselves.
  const double begin = std::max(comm_clock_us_, clock_us_);
  comm_clock_us_ = begin + us;
  stats_.comm_transfers += 1;
  stats_.comm_us += us;
  if (record_timeline_) timeline_.record_comm(begin, comm_clock_us_);
  // Overlapped time is deliberately NOT attributed to the active compute
  // range; only the exposed wait (sync_comm) lands in a range.
  (void)attribution;
  return comm_clock_us_;
}

double Device::sync_comm(const std::string& attribution) {
  const double exposed = std::max(0.0, comm_clock_us_ - clock_us_);
  if (exposed > 0) {
    // The compute stream stalls while the fabric finishes: idle SMs, busy
    // links. Counted as busy so utilisation matches the blocking path.
    advance(exposed, /*busy=*/true, attribution);
    stats_.exposed_comm_us += exposed;
  }
  return exposed;
}

double Device::wait_comm_until(double t_us, const std::string& attribution) {
  // A transfer's completion time can never exceed the comm clock; waiting
  // past it would be waiting on nothing.
  const double target = std::min(t_us, comm_clock_us_);
  const double exposed = std::max(0.0, target - clock_us_);
  if (exposed > 0) {
    advance(exposed, /*busy=*/true, attribution);
    stats_.exposed_comm_us += exposed;
  }
  return exposed;
}

void Device::charge_alloc(bool cache_hit) {
  stats_.alloc_events += 1;
  const double us = cache_hit ? profile_.cached_alloc_us : profile_.malloc_us;
  stats_.overhead_us += us;
  clock_us_ += us;
  attribute(us);
}

void Device::charge_free() {
  stats_.alloc_events += 1;
  const double us = profile_.free_us;
  stats_.overhead_us += us;
  clock_us_ += us;
  attribute(us);
}

void Device::on_memory_change(int64_t bytes_in_use) {
  if (record_timeline_) timeline_.record_memory(clock_us_, bytes_in_use);
}

double Device::range_time_us(const std::string& range) const {
  auto it = range_times_.find(range);
  return it == range_times_.end() ? 0.0 : it->second;
}

double Device::utilization() const {
  const double total = stats_.busy_us + stats_.overhead_us;
  return total <= 0 ? 1.0 : stats_.busy_us / total;
}

void Device::reset() {
  clock_us_ = 0;
  comm_clock_us_ = 0;
  stats_ = DeviceStats{};
  per_kernel_.clear();
  range_times_.clear();
  timeline_.clear();
}

void Device::push_range(const std::string& name) { range_stack_.push_back(name); }

void Device::pop_range() {
  LS2_CHECK(!range_stack_.empty()) << "pop_range with empty stack";
  range_stack_.pop_back();
}

void Device::attribute(double us) {
  if (!range_stack_.empty()) range_times_[range_stack_.back()] += us;
}

}  // namespace ls2::simgpu
