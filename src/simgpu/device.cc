#include "simgpu/device.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "simgpu/fault.h"

namespace ls2::simgpu {

Device::Device(DeviceProfile profile, ExecMode mode)
    : profile_(std::move(profile)), mode_(mode) {}

double Device::kernel_time_us(const KernelDesc& desc) const {
  const double bytes = static_cast<double>(desc.bytes_read + desc.bytes_written);
  // GB/s == bytes/ns, so us = bytes / (BW * 1e3).
  const double mem_us = bytes / (profile_.mem_bw_gb_s * desc.mem_efficiency * 1e3);
  const double peak_tflops = desc.tensor_core ? profile_.fp16_tflops : profile_.fp32_tflops;
  const double compute_us = desc.flops / (peak_tflops * desc.compute_efficiency * 1e6);
  return std::max(mem_us, compute_us);
}

void Device::push_charge_scale(double s) {
  LS2_CHECK(s > 0 && s <= 1.0) << "charge scale " << s;
  charge_scale_stack_.push_back(charge_scale_);
  charge_scale_ *= s;
}

void Device::pop_charge_scale() {
  LS2_CHECK(!charge_scale_stack_.empty()) << "pop_charge_scale with empty stack";
  charge_scale_ = charge_scale_stack_.back();
  charge_scale_stack_.pop_back();
}

void Device::launch(const KernelDesc& launch_desc, const std::function<void()>& body) {
  KernelDesc scaled;
  const KernelDesc& desc = [&]() -> const KernelDesc& {
    if (charge_scale_ == 1.0) return launch_desc;
    scaled = launch_desc;
    scaled.bytes_read = static_cast<int64_t>(
        static_cast<double>(launch_desc.bytes_read) * charge_scale_);
    scaled.bytes_written = static_cast<int64_t>(
        static_cast<double>(launch_desc.bytes_written) * charge_scale_);
    scaled.flops = launch_desc.flops * charge_scale_;
    return scaled;
  }();
  LS2_CHECK(desc.mem_efficiency > 0 && desc.mem_efficiency <= 1.0)
      << desc.name << " mem_efficiency " << desc.mem_efficiency;
  LS2_CHECK(desc.compute_efficiency > 0 && desc.compute_efficiency <= 1.0)
      << desc.name << " compute_efficiency " << desc.compute_efficiency;

  stats_.launches += 1;
  stats_.bytes_moved += desc.bytes_read + desc.bytes_written;
  stats_.flops += desc.flops;

  KernelStats& ks = per_kernel_[desc.name];
  ks.launches += 1;
  ks.bytes += desc.bytes_read + desc.bytes_written;
  ks.flops += desc.flops;

  if (graph_phase_ == GraphPhase::kReplay) {
    // Replayed kernels run back to back: the graph was dispatched as one
    // unit (charged in begin_replay), so there is no per-launch gap. The
    // execution time is the one BAKED INTO the graph node at capture — a
    // replay runs the captured launch parameters, not freshly-derived ones.
    // Faults still apply: replay fixes the launch sequence, not the silicon.
    double exec = consume_node(GraphNode::Kind::kKernel, &desc).exec_us;
    if (fault_ != nullptr) exec *= fault_->on_kernel(desc.name);
    stats_.replayed_launches += 1;
    stats_.busy_us += exec;
    ks.time_us += exec;
    ks.exec_us += exec;
    ks.tensor_core = desc.tensor_core;
    const double busy_begin = clock_us_;
    clock_us_ += exec;
    if (record_timeline_) timeline_.record_busy(busy_begin, clock_us_);
    attribute(exec);
  } else {
    // The spike multiplier is charged live but the CAPTURE records the clean
    // execution time: a transient stall on the capture step must not get
    // baked into every future replay.
    const double base_exec = kernel_time_us(desc);
    const double exec =
        fault_ != nullptr ? base_exec * fault_->on_kernel(desc.name) : base_exec;
    stats_.busy_us += exec;
    // Launch gap: the GPU is idle while the host dispatches the kernel.
    const double overhead = profile_.launch_overhead_us;
    stats_.overhead_us += overhead;
    stats_.launch_gap_us += overhead;
    ks.time_us += overhead + exec;
    ks.exec_us += exec;
    ks.tensor_core = desc.tensor_core;
    clock_us_ += overhead;
    const double busy_begin = clock_us_;
    clock_us_ += exec;
    if (record_timeline_) timeline_.record_busy(busy_begin, clock_us_);
    attribute(overhead + exec);
    if (graph_phase_ == GraphPhase::kCapture) {
      GraphNode node;
      node.kind = GraphNode::Kind::kKernel;
      node.desc = desc;
      node.exec_us = base_exec;
      capture_.nodes.push_back(std::move(node));
      capture_.kernel_launches += 1;
      capture_.kernel_exec_us += base_exec;
    }
  }

  if (mode_ == ExecMode::kExecute && body) body();
}

void Device::advance(double us, bool busy, const std::string& attribution) {
  if (us <= 0) return;
  if (busy) {
    const double begin = clock_us_;
    stats_.busy_us += us;
    clock_us_ += us;
    if (record_timeline_) timeline_.record_busy(begin, clock_us_);
  } else {
    stats_.overhead_us += us;
    clock_us_ += us;
  }
  if (!attribution.empty()) {
    range_times_[attribution] += us;
  } else {
    attribute(us);
  }
}

double Device::enqueue_comm(double us, const std::string& attribution) {
  LS2_CHECK(us >= 0) << "negative comm time";
  if (us == 0) return std::max(comm_clock_us_, clock_us_);
  if (graph_phase_ == GraphPhase::kCapture) {
    GraphNode node;
    node.kind = GraphNode::Kind::kCommEnqueue;
    node.comm_us = us;
    capture_.nodes.push_back(std::move(node));
  } else if (graph_phase_ == GraphPhase::kReplay) {
    // The transfer is a graph node, but its begin/completion times are
    // recomputed below from the live clocks (replay-time parameters).
    const GraphNode& node = consume_node(GraphNode::Kind::kCommEnqueue, nullptr);
    if (node.comm_us != us)
      throw GraphError("replayed comm transfer duration " + std::to_string(us) +
                       " us != captured " + std::to_string(node.comm_us) +
                       " us — gradient payload changed under replay");
  }
  // A degraded link stretches the transfer ON THE WIRE: the graph node keeps
  // (and replay validates) the clean payload duration — the link, not the
  // payload, is what changed — while the clocks charge the stretched time.
  const double wire_us = fault_ != nullptr ? us * fault_->comm_factor() : us;
  // The transfer starts once its payload exists (now, on the compute clock)
  // and the comm stream is free; transfers serialize among themselves.
  const double begin = std::max(comm_clock_us_, clock_us_);
  comm_clock_us_ = begin + wire_us;
  stats_.comm_transfers += 1;
  stats_.comm_us += wire_us;
  if (record_timeline_) timeline_.record_comm(begin, comm_clock_us_);
  // Overlapped time is deliberately NOT attributed to the active compute
  // range; only the exposed wait (sync_comm) lands in a range.
  (void)attribution;
  return comm_clock_us_;
}

double Device::sync_comm(const std::string& attribution) {
  at_sync_point(attribution);
  if (graph_phase_ == GraphPhase::kCapture) {
    // cudaStreamSynchronize is illegal inside a stream capture.
    poison_capture("full comm-stream sync during capture (" + attribution + ")");
  }
  // A valid graph can never contain a sync (it would have poisoned its own
  // capture), so a sync inside a replay is a divergence from the captured
  // step — reject it like every other graph-illegal operation.
  if (graph_phase_ == GraphPhase::kReplay)
    throw GraphError("full comm-stream sync during graph replay (" + attribution +
                     ") — the replayed step diverged from the capture");
  const double exposed = std::max(0.0, comm_clock_us_ - clock_us_);
  if (exposed > 0) {
    // The compute stream stalls while the fabric finishes: idle SMs, busy
    // links. Counted as busy so utilisation matches the blocking path.
    advance(exposed, /*busy=*/true, attribution);
    stats_.exposed_comm_us += exposed;
  }
  if (fault_ != nullptr) fault_->note_exposed_wait(exposed, clock_us_);
  return exposed;
}

double Device::wait_comm_until(double t_us, const std::string& attribution) {
  at_sync_point(attribution);
  if (graph_phase_ == GraphPhase::kCapture) {
    GraphNode node;
    node.kind = GraphNode::Kind::kCommWait;
    capture_.nodes.push_back(std::move(node));
  } else if (graph_phase_ == GraphPhase::kReplay) {
    // A stream-wait edge: the edge is part of the graph, the timestamp it
    // resolves to is not — the exposed wait is recomputed every replay.
    (void)consume_node(GraphNode::Kind::kCommWait, nullptr);
  }
  // A transfer's completion time can never exceed the comm clock; waiting
  // past it would be waiting on nothing.
  const double target = std::min(t_us, comm_clock_us_);
  const double exposed = std::max(0.0, target - clock_us_);
  if (exposed > 0) {
    advance(exposed, /*busy=*/true, attribution);
    stats_.exposed_comm_us += exposed;
  }
  if (fault_ != nullptr) fault_->note_exposed_wait(exposed, clock_us_);
  return exposed;
}

void Device::at_sync_point(const std::string& attribution) {
  if (fault_ == nullptr) return;
  fault_->fire_sync_faults();
  if (const FaultEvent* e = fault_->take_peer_loss()) {
    // Detection is never free and never early: the collective blocks for its
    // full timeout before the stack can conclude the peer is gone (NCCL
    // watchdog semantics), and that stall is charged on the timeline.
    advance(fault_->collective_timeout_us(), /*busy=*/false, "fault.detect");
    fault_->note_detection(clock_us_);
    throw PeerLostError("simgpu: peer rank " + std::to_string(e->rank) +
                            " lost — collective timed out after " +
                            std::to_string(fault_->collective_timeout_us()) +
                            " us at '" + attribution + "'",
                        e->rank);
  }
}

const std::string& Device::current_range() const {
  static const std::string kNoRange;
  return range_stack_.empty() ? kNoRange : range_stack_.back();
}

void Device::charge_alloc(bool cache_hit) {
  stats_.alloc_events += 1;
  if (graph_phase_ == GraphPhase::kReplay) {
    // A replayed graph has its addresses baked in: a cache-hit is pure host
    // bookkeeping (free — the device never sees it), and an actual device
    // malloc means the address set changed under the graph.
    if (!cache_hit)
      throw GraphError(
          "device malloc during graph replay — the captured step is not "
          "address-stable; capture is only safe over a pre-reserved arena");
    return;
  }
  if (graph_phase_ == GraphPhase::kCapture && !cache_hit) {
    // cudaMalloc inside a stream capture is illegal — this is the allocator
    // stall that makes the dynamic caching allocator capture-unsafe.
    poison_capture("allocator stall (device malloc) during capture");
  }
  const double us = cache_hit ? profile_.cached_alloc_us : profile_.malloc_us;
  stats_.overhead_us += us;
  stats_.alloc_stall_us += us;
  clock_us_ += us;
  attribute(us);
}

void Device::charge_free() {
  stats_.alloc_events += 1;
  if (graph_phase_ == GraphPhase::kReplay) {
    throw GraphError(
        "device free during graph replay — the captured step is not "
        "address-stable");
  }
  if (graph_phase_ == GraphPhase::kCapture) {
    poison_capture("allocator stall (device free) during capture");
  }
  const double us = profile_.free_us;
  stats_.overhead_us += us;
  stats_.alloc_stall_us += us;
  clock_us_ += us;
  attribute(us);
}

void Device::on_memory_change(int64_t bytes_in_use) {
  if (record_timeline_) timeline_.record_memory(clock_us_, bytes_in_use);
}

void Device::begin_capture() {
  LS2_CHECK(graph_phase_ == GraphPhase::kNone)
      << "begin_capture while a capture or replay is in progress";
  capture_ = StepGraph{};
  capture_poisoned_ = false;
  graph_phase_ = GraphPhase::kCapture;
}

StepGraph Device::end_capture() {
  LS2_CHECK(graph_phase_ == GraphPhase::kCapture) << "end_capture without capture";
  graph_phase_ = GraphPhase::kNone;
  capture_.valid = !capture_poisoned_;
  return std::move(capture_);
}

void Device::poison_capture(const std::string& reason) {
  if (graph_phase_ != GraphPhase::kCapture || capture_poisoned_) return;
  capture_poisoned_ = true;
  capture_.poison_reason = reason;
}

void Device::begin_replay(const StepGraph& graph) {
  LS2_CHECK(graph_phase_ == GraphPhase::kNone)
      << "begin_replay while a capture or replay is in progress";
  if (!graph.valid)
    throw GraphError("begin_replay on an invalid (poisoned) graph: " +
                     graph.poison_reason);
  graph_phase_ = GraphPhase::kReplay;
  replay_ = &graph;
  replay_cursor_ = 0;
  // One dispatch for the whole step, instead of one per kernel.
  const double overhead = profile_.graph_launch_overhead_us;
  stats_.graph_replays += 1;
  stats_.graph_launch_us += overhead;
  stats_.overhead_us += overhead;
  clock_us_ += overhead;
  attribute(overhead);
}

void Device::end_replay() {
  LS2_CHECK(graph_phase_ == GraphPhase::kReplay) << "end_replay without replay";
  if (replay_cursor_ != replay_->nodes.size())
    throw GraphError("replay consumed " + std::to_string(replay_cursor_) +
                     " of " + std::to_string(replay_->nodes.size()) +
                     " graph nodes — the replayed step diverged from the capture");
  graph_phase_ = GraphPhase::kNone;
  replay_ = nullptr;
  replay_cursor_ = 0;
}

void Device::abort_graph() noexcept {
  graph_phase_ = GraphPhase::kNone;
  replay_ = nullptr;
  replay_cursor_ = 0;
  capture_ = StepGraph{};
  capture_poisoned_ = false;
}

const GraphNode& Device::consume_node(GraphNode::Kind kind, const KernelDesc* desc) {
  if (replay_cursor_ >= replay_->nodes.size())
    throw GraphError("replayed step issued more operations than the captured graph (" +
                     std::to_string(replay_->nodes.size()) + " nodes)");
  const GraphNode& node = replay_->nodes[replay_cursor_++];
  if (node.kind != kind)
    throw GraphError("graph node " + std::to_string(replay_cursor_ - 1) +
                     " kind mismatch under replay");
  if (desc != nullptr) {
    if (!(node.desc.name == desc->name &&
          node.desc.bytes_read == desc->bytes_read &&
          node.desc.bytes_written == desc->bytes_written &&
          node.desc.flops == desc->flops))
      throw GraphError("graph node " + std::to_string(replay_cursor_ - 1) + " ('" +
                       node.desc.name + "') does not match replayed launch '" +
                       desc->name +
                       "' — the step is not static (did the batch shape "
                       "change?); graph capture requires fixed shapes, like "
                       "real CUDA Graphs");
  }
  return node;
}

double Device::range_time_us(const std::string& range) const {
  auto it = range_times_.find(range);
  return it == range_times_.end() ? 0.0 : it->second;
}

double Device::utilization() const {
  const double total = stats_.busy_us + stats_.overhead_us;
  return total <= 0 ? 1.0 : stats_.busy_us / total;
}

void Device::reset() {
  clock_us_ = 0;
  comm_clock_us_ = 0;
  charge_scale_ = 1.0;
  charge_scale_stack_.clear();
  stats_ = DeviceStats{};
  per_kernel_.clear();
  range_times_.clear();
  timeline_.clear();
  abort_graph();
}

void Device::push_range(const std::string& name) { range_stack_.push_back(name); }

void Device::pop_range() {
  LS2_CHECK(!range_stack_.empty()) << "pop_range with empty stack";
  range_stack_.pop_back();
}

void Device::attribute(double us) {
  if (!range_stack_.empty()) range_times_[range_stack_.back()] += us;
}

}  // namespace ls2::simgpu
