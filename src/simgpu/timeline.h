// Recording of device activity over simulated time.
//
// Produces the data behind the paper's Fig. 20 (GPU memory over wall time)
// and Fig. 21 (GPU utilisation over wall time): the device reports busy/idle
// intervals and the allocator reports memory watermarks, and the timeline
// buckets them into series.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ls2::simgpu {

struct MemorySample {
  double t_us = 0;       ///< simulated time of the event
  int64_t bytes = 0;     ///< bytes in use after the event
};

struct BusySpan {
  double begin_us = 0;
  double end_us = 0;
};

/// A labelled interval on an arbitrary (pid, tid) trace lane — used by the
/// pipeline engine to plot per-rank stage/microbatch chunks ("s1.mb3.F")
/// with one trace process per simulated rank and one thread per stream.
struct NamedSpan {
  int pid = 0;  ///< trace process (simulated rank)
  int tid = 0;  ///< trace thread (0 = compute, 1 = comm)
  std::string name;
  double begin_us = 0;
  double end_us = 0;
};

/// A point event on a (pid, tid) lane — fault/retry markers (device loss,
/// decode retries, hedge fires/cancels) that have a moment but no duration.
/// Rendered as Chrome trace "instant" events, so failures are visible on
/// the same timeline as the work they interrupted.
struct InstantEvent {
  int pid = 0;
  int tid = 0;
  std::string name;
  double t_us = 0;
};

class Timeline {
 public:
  void record_memory(double t_us, int64_t bytes_in_use);
  void record_busy(double begin_us, double end_us);
  /// Activity on the second (communication) stream — overlapped all-reduces.
  void record_comm(double begin_us, double end_us);
  /// Labelled span on rank `pid`'s lane `tid` (see NamedSpan).
  void record_span(int pid, int tid, std::string name, double begin_us, double end_us);
  /// Point event on rank `pid`'s lane `tid` (see InstantEvent).
  void record_instant(int pid, int tid, std::string name, double t_us);
  /// Display name for rank `pid`'s trace process (e.g. "rank 1 (stage 1)").
  void name_process(int pid, std::string name);

  const std::vector<MemorySample>& memory_samples() const { return memory_; }
  const std::vector<BusySpan>& busy_spans() const { return busy_; }
  const std::vector<BusySpan>& comm_spans() const { return comm_; }
  const std::vector<NamedSpan>& named_spans() const { return named_; }
  const std::vector<InstantEvent>& instants() const { return instants_; }
  const std::vector<std::pair<int, std::string>>& process_names() const {
    return process_names_;
  }

  /// Export the recording as a Chrome trace_event JSON (open in
  /// chrome://tracing or Perfetto): compute-stream busy spans on one track,
  /// comm-stream transfers on a second, memory-in-use as a counter series.
  /// Timestamps are the simulated-device microseconds recorded here.
  void write_chrome_trace(const std::string& path) const;

  /// Memory in use at the end of each fixed-width bucket (carry-forward).
  std::vector<int64_t> memory_series(double bucket_us, double horizon_us) const;

  /// Fraction of each bucket spent busy, in [0,1].
  std::vector<double> utilization_series(double bucket_us, double horizon_us) const;

  /// Peak memory over all samples.
  int64_t peak_memory_bytes() const;

  void clear();

 private:
  std::vector<MemorySample> memory_;
  std::vector<BusySpan> busy_;
  std::vector<BusySpan> comm_;
  std::vector<NamedSpan> named_;
  std::vector<InstantEvent> instants_;
  std::vector<std::pair<int, std::string>> process_names_;
};

}  // namespace ls2::simgpu
