// Deterministic fault injection for the simulated device (DESIGN.md §10).
//
// At fleet scale failures are the steady state, not the exception: ranks
// die mid-step, links degrade, kernels straggle, allocators hiccup, and
// gradients arrive corrupted. A `FaultPlan` schedules such events by
// (step, rank, site) — seeded and fully deterministic, so every recovery
// test replays bitwise — and a `FaultInjector` installed on a Device arms
// one step's events at a time and fires them from the device's own hook
// points, charging their cost honestly on the timeline:
//
//  * kDeviceLoss rank 0   — this device dies: the matching kernel launch
//    throws DeviceLostError mid-step (work already charged stays charged).
//  * kDeviceLoss rank > 0 — a PEER dies. Locally nothing happens until the
//    next sync point (sync_comm / wait_comm_until / an explicit
//    Device::at_sync_point), where the collective times out: the timeout is
//    charged as idle wait, then PeerLostError is thrown — detection is
//    never free and never earlier than a real NCCL timeout would be.
//  * kStragglerLink       — every comm transfer enqueued this step is
//    stretched by `factor`; the grown exposed wait at the sync point is how
//    the straggler becomes *detectable* (exposed > collective timeout).
//  * kKernelSpike         — a matching kernel's modeled latency is
//    multiplied by `factor` (transient thermal/ECC stall).
//  * kAllocFail           — the next `count` arena allocations (optionally
//    gated on an active device range, e.g. "serve.decode") throw
//    mem::TransientAllocFailure instead of succeeding.
//  * kGradCorrupt         — a NaN burst lands in gradient bytes
//    [byte_lo, byte_hi) at the step's first sync point (the moment averaged
//    gradients would materialize); the injector only keeps the schedule,
//    the recovery harness supplies the sink that writes the NaNs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"

namespace ls2::simgpu {

/// This simulated rank died mid-step (thrown from a kernel launch).
class DeviceLostError : public Error {
 public:
  explicit DeviceLostError(const std::string& what) : Error(what) {}
};

/// A remote rank died; detected locally when a collective timed out.
class PeerLostError : public Error {
 public:
  PeerLostError(const std::string& what, int rank) : Error(what), lost_rank(rank) {}
  int lost_rank = 0;
};

enum class FaultKind {
  kDeviceLoss,     ///< kill a rank (0 = this device, >0 = a peer)
  kStragglerLink,  ///< multiply comm-transfer durations by `factor`
  kKernelSpike,    ///< multiply a matching kernel's latency by `factor`
  kAllocFail,      ///< fail the next `count` arena allocations
  kGradCorrupt,    ///< NaN burst into gradient bytes [byte_lo, byte_hi)
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceLoss;
  int64_t step = 0;  ///< global training (or serving) step the event arms at
  int rank = 0;      ///< kDeviceLoss: which rank dies (0 = this device)
  /// Site filter: kernel-name substring (kKernelSpike / rank-0 kDeviceLoss)
  /// or active device-range substring (kAllocFail). Empty matches anything.
  std::string site;
  double factor = 4.0;  ///< latency multiplier (straggler / spike)
  /// How many matching occurrences fire (allocations for kAllocFail,
  /// launches for kKernelSpike). -1 = every occurrence of the armed step.
  int count = 1;
  size_t byte_lo = 0, byte_hi = 0;  ///< kGradCorrupt: flat-grad byte range
};

/// A deterministic schedule of fault events. Build one by hand with the
/// factory helpers, or draw a seeded random failure schedule for MTBF
/// sweeps — either way the plan is a pure function of its inputs.
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& add(FaultEvent e) {
    events.push_back(std::move(e));
    return *this;
  }

  static FaultEvent device_loss(int64_t step, int rank, std::string site = "");
  static FaultEvent straggler(int64_t step, double factor);
  static FaultEvent kernel_spike(int64_t step, std::string site, double factor,
                                 int count = 1);
  static FaultEvent alloc_fail(int64_t step, int count = 1, std::string site = "");
  static FaultEvent grad_corrupt(int64_t step, size_t byte_lo, size_t byte_hi);

  /// A sustained straggler: every matching kernel launch of every step in
  /// [step_lo, step_hi) is stretched by `factor` (count=-1 per step). The
  /// fleet bench pins this on one replica to measure hedging's p99 rescue.
  FaultPlan& kernel_spike_window(int64_t step_lo, int64_t step_hi, std::string site,
                                 double factor);

  /// Seeded random device-loss schedule: each step in [1, steps) loses one
  /// of `ranks` ranks with probability `rate` — the MTBF knob of the
  /// fig_fault recovery sweep. Deterministic from `seed`.
  static FaultPlan random_device_loss(uint64_t seed, double rate, int64_t steps,
                                      int ranks);
};

/// Runtime driver of a FaultPlan. The recovery harness arms it once per
/// global step (`arm`), the Device consults it from launch / comm / sync /
/// alloc hook points, and after the run it doubles as the fault ledger
/// (what fired, what was detected, and when).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, double collective_timeout_us = 5000.0);

  /// Arm `global_step`'s events. Fired one-shot events stay fired across
  /// re-arms, so a rolled-back-and-replayed step does not refail.
  void arm(int64_t global_step);
  int64_t armed_step() const { return armed_step_; }
  double collective_timeout_us() const { return timeout_us_; }

  /// Sink invoked (from the device's sync point) for each pending
  /// kGradCorrupt event — the harness supplies the NaN writer, since only
  /// it can reach the parameter registry. Layering: simgpu schedules, the
  /// training layer mutates.
  using SyncSink = std::function<void(const FaultEvent&)>;
  void set_sync_sink(SyncSink sink) { sync_sink_ = std::move(sink); }

  // --- Device hook points ---
  /// Latency multiplier for this launch; throws DeviceLostError when an
  /// armed rank-0 kDeviceLoss matches the kernel name.
  double on_kernel(const std::string& kernel_name);
  /// Multiplier applied to comm-transfer durations enqueued this step.
  double comm_factor() const;
  /// True when an armed kAllocFail matches `active_range` and has
  /// occurrences left (consumes one).
  bool should_fail_alloc(const std::string& active_range);
  /// Fire pending sync-scoped faults (grad corruption) — called by the
  /// device at each sync point, before the wait.
  void fire_sync_faults();
  /// The armed peer-loss event, marking it fired — or nullptr. The device
  /// charges the collective timeout and throws PeerLostError.
  const FaultEvent* take_peer_loss();
  /// Detection bookkeeping: the device reports each sync point's exposed
  /// wait; an exposed wait beyond the collective timeout on a stragglered
  /// step is a straggler DETECTION (recorded once per step).
  void note_exposed_wait(double exposed_us, double clock_us);
  /// Timestamp bookkeeping for a peer-loss detection (after the timeout
  /// charge, at the throw site).
  void note_detection(double clock_us);

  // --- ledger ---
  int fired(FaultKind kind) const;
  /// Total kernel launches a kKernelSpike stretched (count=-1 windows never
  /// mark `fired`, so this is the honest occurrence ledger for them).
  int64_t kernel_spikes() const { return kernel_spikes_; }
  int64_t timeout_exceedances() const { return timeout_exceedances_; }
  int stragglers_detected() const { return static_cast<int>(straggler_steps_.size()); }
  const std::vector<int64_t>& straggler_steps() const { return straggler_steps_; }
  const std::vector<double>& straggler_detect_clock_us() const {
    return straggler_detect_clock_us_;
  }
  const std::vector<double>& peer_detect_clock_us() const {
    return peer_detect_clock_us_;
  }

 private:
  struct Slot {
    FaultEvent e;
    bool fired = false;
    int remaining = 1;  ///< occurrences left (< 0 = unlimited this step)
  };

  bool armed(const Slot& s) const { return !s.fired && s.e.step == armed_step_; }

  std::vector<Slot> slots_;
  double timeout_us_;
  int64_t armed_step_ = -1;
  SyncSink sync_sink_;
  std::vector<int64_t> straggler_steps_;
  std::vector<double> straggler_detect_clock_us_;
  std::vector<double> peer_detect_clock_us_;
  int64_t timeout_exceedances_ = 0;
  int64_t kernel_spikes_ = 0;
};

}  // namespace ls2::simgpu
