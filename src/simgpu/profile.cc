#include "simgpu/profile.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace ls2::simgpu {

DeviceProfile v100() {
  DeviceProfile p;
  p.name = "V100";
  p.launch_overhead_us = 4.5;
  p.graph_launch_overhead_us = 10.0;
  p.resident_threads = 80 * 2048;  // 80 SMs x 2048 threads
  p.mem_bw_gb_s = 900.0;
  p.fp32_tflops = 15.7;
  p.fp16_tflops = 125.0;
  p.malloc_us = 120.0;
  p.free_us = 60.0;
  p.cached_alloc_us = 2.0;
  p.nvlink_bus_gb_s = 130.0;
  p.ib_bus_gb_s = 12.0;
  p.pcie_gb_s = 12.0;  // PCIe gen3 x16 effective
  p.memory_gb = 32.0;
  return p;
}

DeviceProfile a100() {
  DeviceProfile p;
  p.name = "A100";
  // Launch overhead is essentially constant across generations, while
  // bandwidth and tensor throughput grew ~1.7x / 2.5x — which is why the
  // paper observes *larger* LightSeq2 speedups on A100: fixed overheads are
  // a bigger fraction of the (shorter) kernel times.
  p.launch_overhead_us = 4.2;
  p.graph_launch_overhead_us = 9.0;
  p.resident_threads = 108 * 2048;  // 108 SMs x 2048 threads
  p.mem_bw_gb_s = 1555.0;
  p.fp32_tflops = 19.5;
  p.fp16_tflops = 312.0;
  p.malloc_us = 110.0;
  p.free_us = 55.0;
  p.cached_alloc_us = 2.0;
  p.nvlink_bus_gb_s = 300.0;
  p.ib_bus_gb_s = 24.0;
  p.pcie_gb_s = 24.0;  // PCIe gen4 x16 effective
  p.memory_gb = 40.0;
  return p;
}

DeviceProfile generic() {
  DeviceProfile p;
  p.name = "GENERIC";
  p.launch_overhead_us = 5.0;
  p.mem_bw_gb_s = 500.0;
  p.fp32_tflops = 10.0;
  p.fp16_tflops = 80.0;
  p.memory_gb = 16.0;
  return p;
}

DeviceProfile profile_by_name(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (n == "v100") return v100();
  if (n == "a100") return a100();
  if (n == "generic") return generic();
  LS2_CHECK(false) << "unknown device profile '" << name << "'";
  return generic();
}

}  // namespace ls2::simgpu
