#include "optim/grad_scaler.h"

#include <algorithm>

#include "common/check.h"

namespace ls2::optim {

GradScaler::GradScaler(GradScalerConfig cfg) : cfg_(cfg), scale_(cfg.init_scale) {
  LS2_CHECK(cfg.init_scale > 0 && cfg.growth_factor > 1.0f &&
            cfg.backoff_factor > 0.0f && cfg.backoff_factor < 1.0f &&
            cfg.growth_interval > 0)
      << "invalid GradScalerConfig";
}

float GradScaler::update(bool overflowed) {
  if (overflowed) {
    ++overflow_steps_;
    clean_streak_ = 0;
    scale_ = std::max(cfg_.min_scale, scale_ * cfg_.backoff_factor);
  } else if (++clean_streak_ >= cfg_.growth_interval) {
    clean_streak_ = 0;
    scale_ = std::min(cfg_.max_scale, scale_ * cfg_.growth_factor);
  }
  return scale_;
}

}  // namespace ls2::optim
