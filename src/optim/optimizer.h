// Trainer strategies (§IV-C, Fig. 6).
//
// Three systems, one arithmetic (kernels/trainer_kernels.h):
//
//  * TorchTrainer — the Fig. 6(a) baseline. For FP16 models it keeps FP32
//    master parameters and, per tensor per step, launches: gradient
//    FP16->FP32 copy, update on the FP32 master, master->FP16 parameter
//    copy. Hundreds of small launches and 8 bytes/param of extra state.
//  * ApexTrainer — fused multi-tensor updates over flattened FP32 masters:
//    a handful of launches regardless of tensor count, but the FP32
//    master copies (and the gradient up-cast traffic) remain.
//  * LightSeq2Trainer — Fig. 6(b): parameters/gradients already live in one
//    contiguous FP16 workspace (symbolic tensor linking), so the whole
//    model updates in ONE kernel with on-the-fly FP16<->FP32 conversion.
//    Extra state is only the FP32 Adam moments.
//
// All trainers also implement SGD with momentum (Fig. 18b).
//
// The update is RANGE-GRANULAR: `step_range(kc, byte_lo, byte_hi)` updates
// only the parameters whose gradients occupy [byte_lo, byte_hi) of the flat
// gradient buffer (real for LightSeq2's workspace, conceptual for the
// per-tensor baselines, see ParamRegistry::grad_byte_span). A full step is
//
//     begin_step();                        // step counter / bias correction
//     step_range(kc, 0, flat_grad_bytes);  // any partition works
//     end_step();                          // loss-scaler bookkeeping
//
// and is bitwise identical to the sum of any disjoint cover of bucket
// updates in any order — the invariant that lets core::train_step apply the
// optimizer per communication bucket as each all-reduce lands, instead of
// serially after the full gradient sync. `step()` wraps the sequence above.
//
// Dynamic loss scaling (optim/grad_scaler.h): with
// `OptimConfig::dynamic_loss_scale`, every step_range first runs a
// check_overflow kernel on its gradient range and skips that range's update
// when it finds Inf/NaN; end_step feeds the verdict to the GradScaler.
// Through `step()` this is the classic whole-step skip; through per-bucket
// step_range the skip is bucket-granular — every replica sees the same
// averaged gradients, so every replica makes the same per-bucket decision
// and parameters stay replica-identical either way.
#pragma once

#include <memory>
#include <vector>

#include "kernels/trainer_kernels.h"
#include "layers/layer_context.h"
#include "layers/params.h"
#include "optim/grad_scaler.h"

namespace ls2::optim {

enum class Algo { kAdam, kSgd };

struct OptimConfig {
  Algo algo = Algo::kAdam;
  float lr = 5e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.98f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float momentum = 0.9f;       ///< SGD
  float loss_scale = 1.0f;     ///< static loss scale for FP16 gradients
  /// Replace the static loss scale with a GradScaler (growth/backoff on
  /// overflow) and run check_overflow before every range update.
  bool dynamic_loss_scale = false;
  GradScalerConfig scaler;     ///< used when dynamic_loss_scale
};

class Optimizer {
 public:
  explicit Optimizer(layers::ParamRegistry& params, OptimConfig cfg)
      : params_(&params), cfg_(cfg) {}
  virtual ~Optimizer() = default;

  /// Consume gradients and update parameters: one full-extent step.
  void step(kern::KernelContext& kc);

  /// Per-step prologue: advances the step counter (Adam bias correction).
  /// Call exactly once per step, before any step_range.
  virtual void begin_step();
  /// Update only the parameters whose gradient bytes lie in
  /// [byte_lo, byte_hi) of the flat gradient buffer. Ranges of one step must
  /// be disjoint and are order-independent; their union over a step must
  /// cover every parameter exactly once for the step to equal `step()`.
  virtual void step_range(kern::KernelContext& kc, size_t byte_lo, size_t byte_hi) = 0;
  /// Per-step epilogue: dynamic loss-scaler update (growth/backoff).
  virtual void end_step();

  virtual const char* name() const = 0;
  /// The scale gradients are expected to carry INTO the update — what
  /// core::train_step sets as LayerContext::loss_scale so the criterion
  /// seeds backward with scaled loss, and what step_range divides back out.
  /// Static cfg.loss_scale, or the GradScaler's current scale under dynamic
  /// scaling.
  virtual float loss_scale() const { return cfg_.loss_scale; }
  /// Adjust the learning rate (driven by an LR schedule between steps).
  void set_lr(float lr) { cfg_.lr = lr; }
  /// Current configuration (lr reflects set_lr updates) — what a TP model's
  /// peer-shard trainer copies so peers march in lockstep with rank 0.
  const OptimConfig& config() const { return cfg_; }
  /// Bytes of trainer-owned state (masters, moments, scratch) — the §IV-C
  /// memory claim ("reduces memory usage by 2 GB on Transformer-Big").
  virtual int64_t state_bytes() const = 0;

  /// The dynamic scaler, when cfg.dynamic_loss_scale — nullptr otherwise.
  virtual const GradScaler* scaler() const { return nullptr; }
  /// Mutable scaler access, for checkpoint restore (DESIGN.md §10) —
  /// nullptr under the same condition as scaler().
  virtual GradScaler* mutable_scaler() { return nullptr; }

  /// Trainer-owned state that must survive a failure for a resumed run to be
  /// bitwise identical: FP32 masters and Adam/SGD moments, in a stable
  /// per-trainer order (snapshot by index, restore by index). Per-step
  /// scratch — gradient staging buffers, overflow flags — is deliberately
  /// excluded: it is rebuilt from live gradients every step.
  virtual std::vector<Tensor> state_tensors() const = 0;

  int64_t steps_taken() const { return steps_; }
  /// Rewind/advance the step counter on checkpoint restore (Adam bias
  /// correction must resume from the snapshot's step, not the crash's).
  void restore_steps(int64_t steps) { steps_ = steps; }

 protected:
  layers::ParamRegistry* params_;
  OptimConfig cfg_;
  int64_t steps_ = 0;
};

/// PyTorch-style per-tensor trainer.
class TorchTrainer final : public Optimizer {
 public:
  TorchTrainer(layers::ParamRegistry& params, OptimConfig cfg,
               BufferAllocator* state_alloc = nullptr);
  void step_range(kern::KernelContext& kc, size_t byte_lo, size_t byte_hi) override;
  const char* name() const override { return "torch"; }
  int64_t state_bytes() const override { return state_bytes_; }
  std::vector<Tensor> state_tensors() const override;

 private:
  // Per-tensor FP32 masters/grads (FP16 models only) + moments, indexed by
  // parameter declaration order.
  std::vector<Tensor> master_, master_grad_, m_, v_;
  int64_t state_bytes_ = 0;
  bool fp16_model_ = false;
};

/// Apex-style fused multi-tensor trainer with FP32 masters.
class ApexTrainer final : public Optimizer {
 public:
  ApexTrainer(layers::ParamRegistry& params, OptimConfig cfg,
              BufferAllocator* state_alloc = nullptr);
  void step_range(kern::KernelContext& kc, size_t byte_lo, size_t byte_hi) override;
  void end_step() override;
  const char* name() const override { return "apex"; }
  int64_t state_bytes() const override { return state_bytes_; }
  float loss_scale() const override {
    return cfg_.dynamic_loss_scale ? scaler_.scale() : cfg_.loss_scale;
  }
  const GradScaler* scaler() const override {
    return cfg_.dynamic_loss_scale ? &scaler_ : nullptr;
  }
  GradScaler* mutable_scaler() override {
    return cfg_.dynamic_loss_scale ? &scaler_ : nullptr;
  }
  std::vector<Tensor> state_tensors() const override;

 private:
  Tensor master_, master_grad_, m_, v_, overflow_flag_;
  GradScaler scaler_;
  bool overflowed_ = false;
  // Cumulative element offsets per declaration index (n+1 entries): where
  // each parameter lives inside the flat FP32 masters. The
  // tensor-intersection fallback maps a gradient byte range to the master
  // element range [elem_offset_[p0], elem_offset_[p1]).
  std::vector<int64_t> elem_offset_;
  int64_t state_bytes_ = 0;
  bool fp16_model_ = false;
};

/// LightSeq2 trainer: one launch over the linked workspace (or over one
/// bucket's byte range of it — step_range slices the workspace views and the
/// FP32 moments directly, no per-tensor iteration).
class LightSeq2Trainer final : public Optimizer {
 public:
  LightSeq2Trainer(layers::ParamRegistry& params, OptimConfig cfg,
                   BufferAllocator* state_alloc = nullptr);
  void step_range(kern::KernelContext& kc, size_t byte_lo, size_t byte_hi) override;
  void end_step() override;
  const char* name() const override { return "lightseq2"; }
  int64_t state_bytes() const override { return state_bytes_; }
  float loss_scale() const override {
    return cfg_.dynamic_loss_scale ? scaler_.scale() : cfg_.loss_scale;
  }
  const GradScaler* scaler() const override {
    return cfg_.dynamic_loss_scale ? &scaler_ : nullptr;
  }
  GradScaler* mutable_scaler() override {
    return cfg_.dynamic_loss_scale ? &scaler_ : nullptr;
  }
  std::vector<Tensor> state_tensors() const override;

 private:
  Tensor m_, v_;  // FP32 moments over the flat workspace
  Tensor overflow_flag_;
  GradScaler scaler_;
  bool overflowed_ = false;  // any range of the current step overflowed
  int64_t state_bytes_ = 0;
};

/// Factory matching the layer System to its trainer.
std::unique_ptr<Optimizer> make_trainer(layers::System system,
                                        layers::ParamRegistry& params, OptimConfig cfg,
                                        BufferAllocator* state_alloc = nullptr);

}  // namespace ls2::optim
