// Trainer strategies (§IV-C, Fig. 6).
//
// Three systems, one arithmetic (kernels/trainer_kernels.h):
//
//  * TorchTrainer — the Fig. 6(a) baseline. For FP16 models it keeps FP32
//    master parameters and, per tensor per step, launches: gradient
//    FP16->FP32 copy, update on the FP32 master, master->FP16 parameter
//    copy. Hundreds of small launches and 8 bytes/param of extra state.
//  * ApexTrainer — fused multi-tensor updates over flattened FP32 masters:
//    a handful of launches regardless of tensor count, but the FP32
//    master copies (and the gradient up-cast traffic) remain.
//  * LightSeq2Trainer — Fig. 6(b): parameters/gradients already live in one
//    contiguous FP16 workspace (symbolic tensor linking), so the whole
//    model updates in ONE kernel with on-the-fly FP16<->FP32 conversion.
//    Extra state is only the FP32 Adam moments.
//
// All trainers also implement SGD with momentum (Fig. 18b).
#pragma once

#include <memory>
#include <vector>

#include "kernels/trainer_kernels.h"
#include "layers/layer_context.h"
#include "layers/params.h"

namespace ls2::optim {

enum class Algo { kAdam, kSgd };

struct OptimConfig {
  Algo algo = Algo::kAdam;
  float lr = 5e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.98f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float momentum = 0.9f;       ///< SGD
  float loss_scale = 1.0f;     ///< static loss scale for FP16 gradients
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Consume gradients in the registry and update parameter values.
  virtual void step(kern::KernelContext& kc) = 0;
  virtual const char* name() const = 0;
  /// Adjust the learning rate (driven by an LR schedule between steps).
  virtual void set_lr(float lr) = 0;
  /// Bytes of trainer-owned state (masters, moments, scratch) — the §IV-C
  /// memory claim ("reduces memory usage by 2 GB on Transformer-Big").
  virtual int64_t state_bytes() const = 0;

  int64_t steps_taken() const { return steps_; }

 protected:
  int64_t steps_ = 0;
};

/// PyTorch-style per-tensor trainer.
class TorchTrainer final : public Optimizer {
 public:
  TorchTrainer(layers::ParamRegistry& params, OptimConfig cfg,
               BufferAllocator* state_alloc = nullptr);
  void step(kern::KernelContext& kc) override;
  const char* name() const override { return "torch"; }
  void set_lr(float lr) override { cfg_.lr = lr; }
  int64_t state_bytes() const override { return state_bytes_; }

 private:
  layers::ParamRegistry* params_;
  OptimConfig cfg_;
  // Per-tensor FP32 masters/grads (FP16 models only) + moments.
  std::vector<Tensor> master_, master_grad_, m_, v_;
  int64_t state_bytes_ = 0;
  bool fp16_model_ = false;
};

/// Apex-style fused multi-tensor trainer with FP32 masters.
class ApexTrainer final : public Optimizer {
 public:
  ApexTrainer(layers::ParamRegistry& params, OptimConfig cfg,
              BufferAllocator* state_alloc = nullptr);
  void step(kern::KernelContext& kc) override;
  const char* name() const override { return "apex"; }
  void set_lr(float lr) override { cfg_.lr = lr; }
  int64_t state_bytes() const override { return state_bytes_; }

 private:
  layers::ParamRegistry* params_;
  OptimConfig cfg_;
  Tensor master_, master_grad_, m_, v_, overflow_flag_;
  Tensor model_flat_;  // fp16 workspace view (contiguous mode) or staging
  int64_t state_bytes_ = 0;
  bool fp16_model_ = false;
};

/// LightSeq2 trainer: one launch over the linked workspace.
class LightSeq2Trainer final : public Optimizer {
 public:
  LightSeq2Trainer(layers::ParamRegistry& params, OptimConfig cfg,
                   BufferAllocator* state_alloc = nullptr);
  void step(kern::KernelContext& kc) override;
  const char* name() const override { return "lightseq2"; }
  void set_lr(float lr) override { cfg_.lr = lr; }
  int64_t state_bytes() const override { return state_bytes_; }

 private:
  layers::ParamRegistry* params_;
  OptimConfig cfg_;
  Tensor m_, v_;  // FP32 moments over the flat workspace
  int64_t state_bytes_ = 0;
};

/// Factory matching the layer System to its trainer.
std::unique_ptr<Optimizer> make_trainer(layers::System system,
                                        layers::ParamRegistry& params, OptimConfig cfg,
                                        BufferAllocator* state_alloc = nullptr);

}  // namespace ls2::optim
