// Learning-rate schedules. Transformer training uses inverse-sqrt with
// linear warmup (Vaswani et al.); provided so examples train with the same
// recipe the paper's experiments use.
#pragma once

#include <cstdint>

namespace ls2::optim {

class InverseSqrtSchedule {
 public:
  InverseSqrtSchedule(float peak_lr, int64_t warmup_steps)
      : peak_lr_(peak_lr), warmup_(warmup_steps) {}

  /// LR for a 1-based step.
  float lr(int64_t step) const;

 private:
  float peak_lr_;
  int64_t warmup_;
};

class ConstantSchedule {
 public:
  explicit ConstantSchedule(float lr) : lr_(lr) {}
  float lr(int64_t) const { return lr_; }

 private:
  float lr_;
};

}  // namespace ls2::optim
