#include "optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ls2::optim {

float InverseSqrtSchedule::lr(int64_t step) const {
  LS2_CHECK_GE(step, 1);
  if (warmup_ <= 0) {
    return peak_lr_ / std::sqrt(static_cast<float>(step));
  }
  if (step < warmup_) {
    return peak_lr_ * static_cast<float>(step) / static_cast<float>(warmup_);
  }
  return peak_lr_ * std::sqrt(static_cast<float>(warmup_) / static_cast<float>(step));
}

}  // namespace ls2::optim
