#include "optim/optimizer.h"

#include "kernels/elementwise.h"

namespace ls2::optim {

namespace {

kern::AdamHyper adam_hyper(const OptimConfig& cfg, int64_t step) {
  kern::AdamHyper h;
  h.lr = cfg.lr;
  h.beta1 = cfg.beta1;
  h.beta2 = cfg.beta2;
  h.eps = cfg.eps;
  h.weight_decay = cfg.weight_decay;
  h.step = step;
  return h;
}

kern::SgdHyper sgd_hyper(const OptimConfig& cfg) {
  kern::SgdHyper h;
  h.lr = cfg.lr;
  h.momentum = cfg.momentum;
  h.weight_decay = cfg.weight_decay;
  return h;
}

}  // namespace

// ----------------------------------------------------------------- base ----

void Optimizer::step(kern::KernelContext& kc) {
  begin_step();
  step_range(kc, 0, params_->flat_grad_bytes());
  end_step();
}

void Optimizer::begin_step() { ++steps_; }

void Optimizer::end_step() {}

// ---------------------------------------------------------------- Torch ----

TorchTrainer::TorchTrainer(layers::ParamRegistry& params, OptimConfig cfg,
                           BufferAllocator* state_alloc)
    : Optimizer(params, cfg), fp16_model_(params.dtype() == DType::kF16) {
  LS2_CHECK(!cfg.dynamic_loss_scale)
      << "dynamic loss scaling is implemented for the Apex and LightSeq2 trainers; "
         "the per-tensor Torch baseline models the unchecked Fig. 6(a) path";
  params.for_each([&](const std::string&, Tensor value, Tensor) {
    const Shape shape = value.shape();
    if (fp16_model_) {
      Tensor master = Tensor::empty(shape, DType::kF32, state_alloc);
      if (value.backs_real_memory() && master.backs_real_memory()) {
        master.copy_from(value.to_vector());
      }
      master_.push_back(master);
      master_grad_.push_back(Tensor::zeros(shape, DType::kF32, state_alloc));
      state_bytes_ += static_cast<int64_t>(master.bytes()) * 2;
    }
    m_.push_back(Tensor::zeros(shape, DType::kF32, state_alloc));
    if (cfg_.algo == Algo::kAdam) {
      v_.push_back(Tensor::zeros(shape, DType::kF32, state_alloc));
      state_bytes_ += static_cast<int64_t>(shape.numel()) * 8;
    } else {
      state_bytes_ += static_cast<int64_t>(shape.numel()) * 4;
    }
  });
}

void TorchTrainer::step_range(kern::KernelContext& kc, size_t byte_lo, size_t byte_hi) {
  const float grad_scale = 1.0f / loss_scale();
  const layers::ParamRange r = params_->params_in_byte_range(byte_lo, byte_hi);
  for (int i = r.begin; i < r.end; ++i) {
    const size_t idx = static_cast<size_t>(i);
    const Tensor value = params_->value({i});
    Tensor p = value, g = params_->grad({i});
    if (fp16_model_) {
      // Per-tensor copy kernels (Fig. 6a): grad fp16 -> fp32 master grad.
      kern::baseline::cast(kc, g, master_grad_[idx]);
      p = master_[idx];
      g = master_grad_[idx];
    }
    if (cfg_.algo == Algo::kAdam) {
      kern::adam_update(kc, kern::TrainerImpl::kTorch, p, g, m_[idx], v_[idx],
                        adam_hyper(cfg_, steps_), grad_scale);
    } else {
      kern::sgd_update(kc, kern::TrainerImpl::kTorch, p, g, m_[idx], sgd_hyper(cfg_),
                       grad_scale);
    }
    if (fp16_model_) {
      // Master fp32 -> model fp16, another launch per tensor.
      kern::baseline::cast(kc, p, value);
    }
  }
}

std::vector<Tensor> TorchTrainer::state_tensors() const {
  // master_grad_ is per-step scratch (recomputed from live grads) — the
  // masters and moments are the state a resume must restore bitwise.
  std::vector<Tensor> out;
  for (const auto& t : master_) out.push_back(t);
  for (const auto& t : m_) out.push_back(t);
  for (const auto& t : v_) out.push_back(t);
  return out;
}

// ----------------------------------------------------------------- Apex ----

ApexTrainer::ApexTrainer(layers::ParamRegistry& params, OptimConfig cfg,
                         BufferAllocator* state_alloc)
    : Optimizer(params, cfg),
      scaler_(cfg.scaler),
      fp16_model_(params.dtype() == DType::kF16) {
  const int64_t n = params.total_elements();
  master_ = Tensor::empty({n}, DType::kF32, state_alloc);
  master_grad_ = Tensor::zeros({n}, DType::kF32, state_alloc);
  m_ = Tensor::zeros({n}, DType::kF32, state_alloc);
  overflow_flag_ = Tensor::zeros({1}, DType::kF32, state_alloc);
  state_bytes_ = n * 12;
  if (cfg_.algo == Algo::kAdam) {
    v_ = Tensor::zeros({n}, DType::kF32, state_alloc);
    state_bytes_ += n * 4;
  }
  elem_offset_.resize(static_cast<size_t>(params.size()) + 1);
  elem_offset_[0] = 0;
  for (int i = 0; i < params.size(); ++i) {
    elem_offset_[static_cast<size_t>(i) + 1] =
        elem_offset_[static_cast<size_t>(i)] + params.shape({i}).numel();
  }
  // Initialise masters from the model (skipped for timing-only tensors).
  if (params.size() > 0 && params.value({0}).backs_real_memory() &&
      master_.backs_real_memory()) {
    std::vector<float> host(static_cast<size_t>(n));
    int64_t off = 0;
    params.for_each([&](const std::string&, Tensor value, Tensor) {
      const auto v = value.to_vector();
      std::copy(v.begin(), v.end(), host.begin() + off);
      off += value.numel();
    });
    master_.copy_from(host);
  }
}

void ApexTrainer::step_range(kern::KernelContext& kc, size_t byte_lo, size_t byte_hi) {
  const float grad_scale = 1.0f / loss_scale();
  const layers::ParamRange r = params_->params_in_byte_range(byte_lo, byte_hi);
  if (r.empty()) return;
  const int64_t e0 = elem_offset_[static_cast<size_t>(r.begin)];
  const int64_t e1 = elem_offset_[static_cast<size_t>(r.end)];
  Tensor master = master_.slice(e0, e1);
  Tensor master_grad = master_grad_.slice(e0, e1);
  Tensor m = m_.slice(e0, e1);

  // Multi-tensor gather: the range's model grads -> flat fp32, one launch.
  {
    simgpu::KernelDesc d;
    d.name = "apex.multi_tensor_l2_copy";
    int64_t in_bytes = 0;
    for (int i = r.begin; i < r.end; ++i) {
      in_bytes += static_cast<int64_t>(params_->grad({i}).bytes());
    }
    d.bytes_read = in_bytes;
    d.bytes_written = (e1 - e0) * 4;
    d.mem_efficiency = 0.80;
    kc.dev.launch(d, [&] {
      float* dst = master_grad.data<float>();
      int64_t off = 0;
      for (int i = r.begin; i < r.end; ++i) {
        const auto v = params_->grad({i}).to_vector();
        std::copy(v.begin(), v.end(), dst + off);
        off += static_cast<int64_t>(v.size());
      }
    });
  }
  // Mixed-precision overflow check (fairseq FP16Optimizer does this). Range
  // granularity: through step() this is the classic whole-step skip; through
  // per-bucket calls each bucket checks (and skips) itself.
  kern::check_overflow(kc, master_grad, overflow_flag_, kern::TrainerImpl::kApex);
  if (kc.dev.mode() == simgpu::ExecMode::kExecute && overflow_flag_.item() != 0.0f) {
    overflowed_ = true;
    return;  // skip this range's update on overflow
  }

  // Fused multi-tensor update on the FP32 masters.
  if (cfg_.algo == Algo::kAdam) {
    kern::adam_update(kc, kern::TrainerImpl::kApex, master, master_grad, m,
                      v_.slice(e0, e1), adam_hyper(cfg_, steps_), grad_scale);
  } else {
    kern::sgd_update(kc, kern::TrainerImpl::kApex, master, master_grad, m,
                     sgd_hyper(cfg_), grad_scale);
  }

  // Multi-tensor scatter: masters -> model parameters, one launch.
  {
    simgpu::KernelDesc d;
    d.name = "apex.multi_tensor_sync";
    int64_t out_bytes = 0;
    for (int i = r.begin; i < r.end; ++i) {
      out_bytes += static_cast<int64_t>(params_->value({i}).bytes());
    }
    d.bytes_read = (e1 - e0) * 4;
    d.bytes_written = out_bytes;
    d.mem_efficiency = 0.80;
    kc.dev.launch(d, [&] {
      const auto host = master.to_vector();
      int64_t off = 0;
      for (int i = r.begin; i < r.end; ++i) {
        const Tensor value = params_->value({i});
        std::vector<float> piece(host.begin() + off, host.begin() + off + value.numel());
        value.copy_from(piece);
        off += value.numel();
      }
    });
  }
}

void ApexTrainer::end_step() {
  if (cfg_.dynamic_loss_scale) scaler_.update(overflowed_);
  overflowed_ = false;
}

std::vector<Tensor> ApexTrainer::state_tensors() const {
  std::vector<Tensor> out{master_, m_};
  if (v_.defined()) out.push_back(v_);
  return out;
}

// ------------------------------------------------------------ LightSeq2 ----

LightSeq2Trainer::LightSeq2Trainer(layers::ParamRegistry& params, OptimConfig cfg,
                                   BufferAllocator* state_alloc)
    : Optimizer(params, cfg), scaler_(cfg.scaler) {
  LS2_CHECK(params.contiguous())
      << "LightSeq2 trainer requires symbolic tensor linking (contiguous workspace)";
  const int64_t n = params.flat_values().numel();
  m_ = Tensor::zeros({n}, DType::kF32, state_alloc);
  state_bytes_ = n * 4;
  if (cfg_.algo == Algo::kAdam) {
    v_ = Tensor::zeros({n}, DType::kF32, state_alloc);
    state_bytes_ += n * 4;
  }
  overflow_flag_ = Tensor::zeros({1}, DType::kF32, state_alloc);
}

void LightSeq2Trainer::step_range(kern::KernelContext& kc, size_t byte_lo,
                                  size_t byte_hi) {
  if (byte_lo >= byte_hi) return;
  const size_t esz = dtype_size(params_->dtype());
  LS2_CHECK(byte_lo % esz == 0 && byte_hi % esz == 0)
      << "range [" << byte_lo << ", " << byte_hi << ") not element-aligned";
  // ONE launch over the range of the workspace, FP16 loads/stores with
  // on-the-fly conversion; the moments are the matching FP32 slice.
  Tensor p = params_->value_byte_view(byte_lo, byte_hi);
  Tensor g = params_->grad_byte_view(byte_lo, byte_hi);
  if (cfg_.dynamic_loss_scale) {
    kern::check_overflow(kc, g, overflow_flag_, kern::TrainerImpl::kLS2);
    if (kc.dev.mode() == simgpu::ExecMode::kExecute && overflow_flag_.item() != 0.0f) {
      overflowed_ = true;
      return;  // this range's grads are Inf/NaN — skip its update
    }
  }
  const float grad_scale = 1.0f / loss_scale();
  const int64_t e0 = static_cast<int64_t>(byte_lo / esz);
  const int64_t e1 = static_cast<int64_t>(byte_hi / esz);
  if (cfg_.algo == Algo::kAdam) {
    kern::adam_update(kc, kern::TrainerImpl::kLS2, p, g, m_.slice(e0, e1),
                      v_.slice(e0, e1), adam_hyper(cfg_, steps_), grad_scale);
  } else {
    kern::sgd_update(kc, kern::TrainerImpl::kLS2, p, g, m_.slice(e0, e1),
                     sgd_hyper(cfg_), grad_scale);
  }
}

void LightSeq2Trainer::end_step() {
  if (cfg_.dynamic_loss_scale) {
    scaler_.update(overflowed_);
    overflowed_ = false;
  }
}

std::vector<Tensor> LightSeq2Trainer::state_tensors() const {
  // No masters: the workspace params ARE the model (snapshotted separately
  // via the ParamRegistry); only the FP32 moments are trainer-owned.
  std::vector<Tensor> out{m_};
  if (v_.defined()) out.push_back(v_);
  return out;
}

std::unique_ptr<Optimizer> make_trainer(layers::System system,
                                        layers::ParamRegistry& params, OptimConfig cfg,
                                        BufferAllocator* state_alloc) {
  switch (system) {
    case layers::System::kFairseq:
      return std::make_unique<TorchTrainer>(params, cfg, state_alloc);
    case layers::System::kFairseqApex:
    case layers::System::kDeepSpeed:  // DeepSpeed ships an Apex-style fused trainer
      return std::make_unique<ApexTrainer>(params, cfg, state_alloc);
    case layers::System::kLightSeq2:
      return std::make_unique<LightSeq2Trainer>(params, cfg, state_alloc);
  }
  return nullptr;
}

}  // namespace ls2::optim
