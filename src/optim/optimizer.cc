#include "optim/optimizer.h"

#include "kernels/elementwise.h"

namespace ls2::optim {

namespace {

kern::AdamHyper adam_hyper(const OptimConfig& cfg, int64_t step) {
  kern::AdamHyper h;
  h.lr = cfg.lr;
  h.beta1 = cfg.beta1;
  h.beta2 = cfg.beta2;
  h.eps = cfg.eps;
  h.weight_decay = cfg.weight_decay;
  h.step = step;
  return h;
}

kern::SgdHyper sgd_hyper(const OptimConfig& cfg) {
  kern::SgdHyper h;
  h.lr = cfg.lr;
  h.momentum = cfg.momentum;
  h.weight_decay = cfg.weight_decay;
  return h;
}

}  // namespace

// ---------------------------------------------------------------- Torch ----

TorchTrainer::TorchTrainer(layers::ParamRegistry& params, OptimConfig cfg,
                           BufferAllocator* state_alloc)
    : params_(&params), cfg_(cfg), fp16_model_(params.dtype() == DType::kF16) {
  params.for_each([&](const std::string&, Tensor value, Tensor) {
    const Shape shape = value.shape();
    if (fp16_model_) {
      Tensor master = Tensor::empty(shape, DType::kF32, state_alloc);
      if (value.backs_real_memory() && master.backs_real_memory()) {
        master.copy_from(value.to_vector());
      }
      master_.push_back(master);
      master_grad_.push_back(Tensor::zeros(shape, DType::kF32, state_alloc));
      state_bytes_ += static_cast<int64_t>(master.bytes()) * 2;
    }
    m_.push_back(Tensor::zeros(shape, DType::kF32, state_alloc));
    if (cfg_.algo == Algo::kAdam) {
      v_.push_back(Tensor::zeros(shape, DType::kF32, state_alloc));
      state_bytes_ += static_cast<int64_t>(shape.numel()) * 8;
    } else {
      state_bytes_ += static_cast<int64_t>(shape.numel()) * 4;
    }
  });
}

void TorchTrainer::step(kern::KernelContext& kc) {
  ++steps_;
  const float grad_scale = 1.0f / cfg_.loss_scale;
  int i = 0;
  params_->for_each([&](const std::string&, Tensor value, Tensor grad) {
    const size_t idx = static_cast<size_t>(i++);
    Tensor p = value, g = grad;
    if (fp16_model_) {
      // Per-tensor copy kernels (Fig. 6a): grad fp16 -> fp32 master grad.
      kern::baseline::cast(kc, grad, master_grad_[idx]);
      p = master_[idx];
      g = master_grad_[idx];
    }
    if (cfg_.algo == Algo::kAdam) {
      kern::adam_update(kc, kern::TrainerImpl::kTorch, p, g, m_[idx], v_[idx],
                        adam_hyper(cfg_, steps_), grad_scale);
    } else {
      kern::sgd_update(kc, kern::TrainerImpl::kTorch, p, g, m_[idx], sgd_hyper(cfg_),
                       grad_scale);
    }
    if (fp16_model_) {
      // Master fp32 -> model fp16, another launch per tensor.
      kern::baseline::cast(kc, p, value);
    }
  });
}

// ----------------------------------------------------------------- Apex ----

ApexTrainer::ApexTrainer(layers::ParamRegistry& params, OptimConfig cfg,
                         BufferAllocator* state_alloc)
    : params_(&params), cfg_(cfg), fp16_model_(params.dtype() == DType::kF16) {
  const int64_t n = params.total_elements();
  master_ = Tensor::empty({n}, DType::kF32, state_alloc);
  master_grad_ = Tensor::zeros({n}, DType::kF32, state_alloc);
  m_ = Tensor::zeros({n}, DType::kF32, state_alloc);
  overflow_flag_ = Tensor::zeros({1}, DType::kF32, state_alloc);
  state_bytes_ = n * 12;
  if (cfg_.algo == Algo::kAdam) {
    v_ = Tensor::zeros({n}, DType::kF32, state_alloc);
    state_bytes_ += n * 4;
  }
  // Initialise masters from the model (skipped for timing-only tensors).
  if (params.size() > 0 && params.value({0}).backs_real_memory() &&
      master_.backs_real_memory()) {
    std::vector<float> host(static_cast<size_t>(n));
    int64_t off = 0;
    params.for_each([&](const std::string&, Tensor value, Tensor) {
      const auto v = value.to_vector();
      std::copy(v.begin(), v.end(), host.begin() + off);
      off += value.numel();
    });
    master_.copy_from(host);
  }
}

void ApexTrainer::step(kern::KernelContext& kc) {
  ++steps_;
  const float grad_scale = 1.0f / cfg_.loss_scale;
  const int64_t n = params_->total_elements();

  // Multi-tensor gather: all model grads -> flat fp32 buffer, one launch.
  {
    simgpu::KernelDesc d;
    d.name = "apex.multi_tensor_l2_copy";
    int64_t in_bytes = 0;
    params_->for_each(
        [&](const std::string&, Tensor, Tensor g) { in_bytes += static_cast<int64_t>(g.bytes()); });
    d.bytes_read = in_bytes;
    d.bytes_written = n * 4;
    d.mem_efficiency = 0.80;
    kc.dev.launch(d, [&] {
      float* dst = master_grad_.data<float>();
      int64_t off = 0;
      params_->for_each([&](const std::string&, Tensor, Tensor g) {
        const auto v = g.to_vector();
        std::copy(v.begin(), v.end(), dst + off);
        off += g.numel();
      });
    });
  }
  // Mixed-precision overflow check (fairseq FP16Optimizer does this).
  kern::check_overflow(kc, master_grad_, overflow_flag_);
  if (kc.dev.mode() == simgpu::ExecMode::kExecute && overflow_flag_.item() != 0.0f) {
    return;  // skip step on overflow
  }

  // Fused multi-tensor update on the FP32 masters.
  if (cfg_.algo == Algo::kAdam) {
    kern::adam_update(kc, kern::TrainerImpl::kApex, master_, master_grad_, m_, v_,
                      adam_hyper(cfg_, steps_), grad_scale);
  } else {
    kern::sgd_update(kc, kern::TrainerImpl::kApex, master_, master_grad_, m_,
                     sgd_hyper(cfg_), grad_scale);
  }

  // Multi-tensor scatter: masters -> model parameters, one launch.
  {
    simgpu::KernelDesc d;
    d.name = "apex.multi_tensor_sync";
    int64_t out_bytes = 0;
    params_->for_each([&](const std::string&, Tensor value, Tensor) {
      out_bytes += static_cast<int64_t>(value.bytes());
    });
    d.bytes_read = n * 4;
    d.bytes_written = out_bytes;
    d.mem_efficiency = 0.80;
    kc.dev.launch(d, [&] {
      const auto host = master_.to_vector();
      int64_t off = 0;
      params_->for_each([&](const std::string&, Tensor value, Tensor) {
        std::vector<float> piece(host.begin() + off, host.begin() + off + value.numel());
        value.copy_from(piece);
        off += value.numel();
      });
    });
  }
}

// ------------------------------------------------------------ LightSeq2 ----

LightSeq2Trainer::LightSeq2Trainer(layers::ParamRegistry& params, OptimConfig cfg,
                                   BufferAllocator* state_alloc)
    : params_(&params), cfg_(cfg) {
  LS2_CHECK(params.contiguous())
      << "LightSeq2 trainer requires symbolic tensor linking (contiguous workspace)";
  const int64_t n = params.flat_values().numel();
  m_ = Tensor::zeros({n}, DType::kF32, state_alloc);
  state_bytes_ = n * 4;
  if (cfg_.algo == Algo::kAdam) {
    v_ = Tensor::zeros({n}, DType::kF32, state_alloc);
    state_bytes_ += n * 4;
  }
}

void LightSeq2Trainer::step(kern::KernelContext& kc) {
  ++steps_;
  const float grad_scale = 1.0f / cfg_.loss_scale;
  // ONE launch over the whole workspace, FP16 loads/stores with on-the-fly
  // conversion; overflow handling is inline (NaN/Inf grads produce NaN
  // params which the loss-scaler would catch — modeled as free).
  Tensor p = params_->flat_values();
  Tensor g = params_->flat_grads();
  if (cfg_.algo == Algo::kAdam) {
    kern::adam_update(kc, kern::TrainerImpl::kLS2, p, g, m_, v_, adam_hyper(cfg_, steps_),
                      grad_scale);
  } else {
    kern::sgd_update(kc, kern::TrainerImpl::kLS2, p, g, m_, sgd_hyper(cfg_), grad_scale);
  }
}

std::unique_ptr<Optimizer> make_trainer(layers::System system,
                                        layers::ParamRegistry& params, OptimConfig cfg,
                                        BufferAllocator* state_alloc) {
  switch (system) {
    case layers::System::kFairseq:
      return std::make_unique<TorchTrainer>(params, cfg, state_alloc);
    case layers::System::kFairseqApex:
    case layers::System::kDeepSpeed:  // DeepSpeed ships an Apex-style fused trainer
      return std::make_unique<ApexTrainer>(params, cfg, state_alloc);
    case layers::System::kLightSeq2:
      return std::make_unique<LightSeq2Trainer>(params, cfg, state_alloc);
  }
  return nullptr;
}

}  // namespace ls2::optim
