// Dynamic loss scaling (the mixed-precision discipline fairseq's
// FP16Optimizer and torch.cuda.amp.GradScaler implement).
//
// FP16 gradients underflow when the loss scale is too small and overflow
// (Inf/NaN) when it is too large. The scaler keeps the scale as high as the
// gradients allow: every step that observes an overflow multiplies the scale
// by `backoff_factor` and the step is (wholly or per-bucket, see
// optimizer.h) skipped; after `growth_interval` consecutive clean steps the
// scale is multiplied by `growth_factor`. This matters doubly once gradients
// travel the ring as FP16 payloads (ClusterConfig::wire_dtype == kF16):
// the wire narrows the representable range exactly where overflows appear
// first, so compressed communication is only safe behind these checks.
#pragma once

#include <cstdint>

namespace ls2::optim {

struct GradScalerConfig {
  float init_scale = 65536.0f;   ///< 2^16, torch.cuda.amp default
  float growth_factor = 2.0f;
  float backoff_factor = 0.5f;
  int growth_interval = 2000;    ///< clean steps before growing
  float min_scale = 1.0f;        ///< never un-scale by less than 1
  float max_scale = 16777216.0f; ///< 2^24; beyond this fp16 grads are all Inf
};

class GradScaler {
 public:
  GradScaler() = default;
  explicit GradScaler(GradScalerConfig cfg);

  float scale() const { return scale_; }
  /// End-of-step notification: backoff on overflow, growth bookkeeping
  /// otherwise. Returns the (possibly changed) scale.
  float update(bool overflowed);

  int64_t overflow_steps() const { return overflow_steps_; }
  int growth_countdown() const { return cfg_.growth_interval - clean_streak_; }

  /// Checkpointable dynamics (DESIGN.md §10): the scale trajectory is state,
  /// not configuration — a resume that reset the clean streak would grow the
  /// scale at different steps than the fault-free run and diverge bitwise.
  struct State {
    float scale = GradScalerConfig{}.init_scale;
    int clean_streak = 0;
    int64_t overflow_steps = 0;
  };
  State state() const { return {scale_, clean_streak_, overflow_steps_}; }
  void restore(const State& s) {
    scale_ = s.scale;
    clean_streak_ = s.clean_streak;
    overflow_steps_ = s.overflow_steps;
  }

 private:
  GradScalerConfig cfg_;
  float scale_ = GradScalerConfig{}.init_scale;
  int clean_streak_ = 0;
  int64_t overflow_steps_ = 0;
};

}  // namespace ls2::optim
