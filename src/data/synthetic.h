// Synthetic workload generators standing in for the paper's datasets
// (DESIGN.md §2). Each reproduces the *shape statistics* that drive the
// optimisations under test — variable sentence lengths, token-based
// batching, fixed ViT patch grids — plus a learnable deterministic mapping
// so convergence tests and examples have a real signal to fit.
//
//   WMT14 En-De        -> MtDataset (log-normal lengths, token batching)
//   WikiText LM        -> LmDataset (contiguous token stream, fixed chunks)
//   GLUE/MRPC          -> ClsDataset (sentence pairs, parity-style label)
//   CIFAR-10 at 224^2  -> ImageDataset (class-dependent patch statistics)
#pragma once

#include <vector>

#include "models/bert.h"
#include "models/gpt2.h"
#include "models/transformer.h"
#include "models/vit.h"
#include "tensor/random.h"

namespace ls2::data {

/// Special token ids shared by all text generators.
constexpr int32_t kPad = 0;
constexpr int32_t kBos = 1;
constexpr int32_t kEos = 2;
constexpr int32_t kFirstWord = 3;

/// Variable-length translation pairs. Target is a deterministic per-token
/// mapping of the source (a cyclic shift in vocabulary space), so a model
/// must learn token identity + alignment — enough signal for loss curves.
class MtDataset {
 public:
  MtDataset(int64_t vocab, int64_t size, int64_t min_len, int64_t max_len, uint64_t seed);

  int64_t size() const { return size_; }
  int64_t max_len() const { return max_len_; }
  int64_t vocab() const { return vocab_; }

  int64_t length(int64_t i) const;  ///< source length of sentence i
  std::vector<int32_t> source(int64_t i) const;
  std::vector<int32_t> target(int64_t i) const;  ///< same length, shifted vocab

 private:
  int64_t vocab_, size_, min_len_, max_len_;
  Rng rng_;
};

/// Fairseq-style token batching: sentences sorted by length and packed until
/// the batch holds ~max_tokens target tokens; sequences padded to the batch
/// max (rounded up to `seq_multiple` — DeepSpeed's ×16 restriction).
std::vector<models::MtBatch> make_mt_batches(const MtDataset& ds, int64_t max_tokens,
                                             DType dtype_unused, int seq_multiple = 1);

/// Largest batch (by padded token count) — the capacity-scan probe (§IV-D).
const models::MtBatch& largest_batch(const std::vector<models::MtBatch>& batches);

/// Language-model stream chopped into fixed [B, L] blocks; target is the
/// next token.
class LmDataset {
 public:
  LmDataset(int64_t vocab, int64_t tokens, uint64_t seed);
  models::LmBatch batch(int64_t index, int64_t batch_size, int64_t seq_len) const;

 private:
  int64_t vocab_;
  std::vector<int32_t> stream_;
};

/// MRPC-like sentence-pair classification: [CLS] a [SEP] b, label = whether
/// the second sentence is the (shifted) paraphrase of the first.
class ClsDataset {
 public:
  ClsDataset(int64_t vocab, int64_t size, int64_t max_len, uint64_t seed);
  models::ClsBatch batch(int64_t index, int64_t batch_size, int64_t seq_len) const;

 private:
  int64_t vocab_, size_, max_len_;
  Rng rng_;
};

/// CIFAR-like images resized to `image`², served as patch vectors with
/// class-dependent means so a classifier has signal.
class ImageDataset {
 public:
  ImageDataset(int64_t classes, int64_t size, uint64_t seed);
  models::ImageBatch batch(int64_t index, int64_t batch_size, const models::VitConfig& cfg,
                           DType dtype) const;

 private:
  int64_t classes_, size_;
  Rng rng_;
};

}  // namespace ls2::data
