#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ls2::data {

// ------------------------------------------------------------- MtDataset ---

MtDataset::MtDataset(int64_t vocab, int64_t size, int64_t min_len, int64_t max_len,
                     uint64_t seed)
    : vocab_(vocab), size_(size), min_len_(min_len), max_len_(max_len), rng_(seed) {
  LS2_CHECK_GT(vocab, kFirstWord + 1);
  LS2_CHECK(min_len >= 1 && min_len <= max_len);
}

int64_t MtDataset::length(int64_t i) const {
  // Log-normal-ish sentence lengths (WMT has median ~20, long tail).
  const float z = rng_.normal(/*stream=*/1, static_cast<uint64_t>(i));
  const double len = std::exp(std::log(static_cast<double>(min_len_ + max_len_) / 3.0) +
                              0.45 * static_cast<double>(z));
  return std::clamp<int64_t>(static_cast<int64_t>(len), min_len_, max_len_);
}

std::vector<int32_t> MtDataset::source(int64_t i) const {
  const int64_t len = length(i);
  std::vector<int32_t> s(static_cast<size_t>(len));
  const int64_t words = vocab_ - kFirstWord;
  for (int64_t j = 0; j < len; ++j) {
    s[static_cast<size_t>(j)] = static_cast<int32_t>(
        kFirstWord + rng_.randint(/*stream=*/2, static_cast<uint64_t>(i * 8192 + j), words));
  }
  return s;
}

std::vector<int32_t> MtDataset::target(int64_t i) const {
  // Deterministic learnable mapping: cyclic vocabulary shift by 7.
  std::vector<int32_t> t = source(i);
  const int64_t words = vocab_ - kFirstWord;
  for (int32_t& w : t) {
    w = static_cast<int32_t>(kFirstWord + ((w - kFirstWord) + 7) % words);
  }
  return t;
}

std::vector<models::MtBatch> make_mt_batches(const MtDataset& ds, int64_t max_tokens,
                                             DType /*dtype_unused*/, int seq_multiple) {
  std::vector<int64_t> order(static_cast<size_t>(ds.size()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) { return ds.length(a) < ds.length(b); });

  auto round_up = [&](int64_t len) {
    const int64_t m = std::max(1, seq_multiple);
    return (len + m - 1) / m * m;
  };

  std::vector<models::MtBatch> batches;
  size_t i = 0;
  while (i < order.size()) {
    // Greedy pack: padded target length is set by the longest (last) member.
    size_t j = i;
    int64_t max_len = 0;
    while (j < order.size()) {
      const int64_t cand_len = round_up(ds.length(order[j]) + 1);  // +1 for BOS/EOS shift
      const int64_t rows = static_cast<int64_t>(j - i + 1);
      if (rows * std::max(max_len, cand_len) > max_tokens && j > i) break;
      max_len = std::max(max_len, cand_len);
      ++j;
    }
    const int64_t B = static_cast<int64_t>(j - i);
    const int64_t L = max_len;

    std::vector<float> src(static_cast<size_t>(B * L), static_cast<float>(kPad));
    std::vector<float> tin(static_cast<size_t>(B * L), static_cast<float>(kPad));
    std::vector<float> tout(static_cast<size_t>(B * L), static_cast<float>(kPad));
    std::vector<float> slens(static_cast<size_t>(B)), tlens(static_cast<size_t>(B));
    int64_t tokens = 0;
    for (int64_t b = 0; b < B; ++b) {
      const int64_t idx = order[i + static_cast<size_t>(b)];
      const auto s = ds.source(idx);
      const auto t = ds.target(idx);
      const int64_t sl = static_cast<int64_t>(s.size());
      for (int64_t k = 0; k < sl; ++k)
        src[static_cast<size_t>(b * L + k)] = static_cast<float>(s[static_cast<size_t>(k)]);
      // Teacher forcing: tgt_in = [BOS, t...], tgt_out = [t..., EOS].
      tin[static_cast<size_t>(b * L)] = static_cast<float>(kBos);
      for (int64_t k = 0; k < sl; ++k) {
        tin[static_cast<size_t>(b * L + k + 1)] =
            static_cast<float>(t[static_cast<size_t>(k)]);
        tout[static_cast<size_t>(b * L + k)] = static_cast<float>(t[static_cast<size_t>(k)]);
      }
      tout[static_cast<size_t>(b * L + sl)] = static_cast<float>(kEos);
      slens[static_cast<size_t>(b)] = static_cast<float>(sl);
      tlens[static_cast<size_t>(b)] = static_cast<float>(sl + 1);
      tokens += sl + 1;
    }
    models::MtBatch batch;
    batch.src_ids = Tensor::from_vector(src, {B, L}, DType::kI32);
    batch.tgt_in = Tensor::from_vector(tin, {B, L}, DType::kI32);
    batch.tgt_out = Tensor::from_vector(tout, {B, L}, DType::kI32);
    batch.src_lens = Tensor::from_vector(slens, {B}, DType::kI32);
    batch.tgt_lens = Tensor::from_vector(tlens, {B}, DType::kI32);
    batch.tokens = tokens;
    batches.push_back(std::move(batch));
    i = j;
  }
  return batches;
}

const models::MtBatch& largest_batch(const std::vector<models::MtBatch>& batches) {
  LS2_CHECK(!batches.empty());
  size_t best = 0;
  int64_t best_elems = 0;
  for (size_t i = 0; i < batches.size(); ++i) {
    const int64_t elems = batches[i].src_ids.numel() + batches[i].tgt_in.numel();
    if (elems > best_elems) {
      best_elems = elems;
      best = i;
    }
  }
  return batches[best];
}

// ------------------------------------------------------------- LmDataset ---

LmDataset::LmDataset(int64_t vocab, int64_t tokens, uint64_t seed) : vocab_(vocab) {
  Rng rng(seed);
  stream_.resize(static_cast<size_t>(tokens));
  // Markov-ish stream: next token depends on the previous (learnable).
  int32_t prev = kFirstWord;
  const int64_t words = vocab - kFirstWord;
  for (int64_t i = 0; i < tokens; ++i) {
    const int64_t noise = rng.randint(1, static_cast<uint64_t>(i), 4);
    prev = static_cast<int32_t>(kFirstWord + ((prev - kFirstWord) * 3 + 1 + noise) % words);
    stream_[static_cast<size_t>(i)] = prev;
  }
}

models::LmBatch LmDataset::batch(int64_t index, int64_t batch_size, int64_t seq_len) const {
  const int64_t need = batch_size * (seq_len + 1);
  const int64_t start =
      (index * need) % std::max<int64_t>(1, static_cast<int64_t>(stream_.size()) - need - 1);
  std::vector<float> ids(static_cast<size_t>(batch_size * seq_len));
  std::vector<float> tgt(static_cast<size_t>(batch_size * seq_len));
  for (int64_t b = 0; b < batch_size; ++b) {
    for (int64_t l = 0; l < seq_len; ++l) {
      const size_t pos = static_cast<size_t>(start + b * (seq_len + 1) + l);
      ids[static_cast<size_t>(b * seq_len + l)] = static_cast<float>(stream_[pos]);
      tgt[static_cast<size_t>(b * seq_len + l)] = static_cast<float>(stream_[pos + 1]);
    }
  }
  models::LmBatch batch;
  batch.ids = Tensor::from_vector(ids, {batch_size, seq_len}, DType::kI32);
  batch.targets = Tensor::from_vector(tgt, {batch_size, seq_len}, DType::kI32);
  return batch;
}

// ------------------------------------------------------------ ClsDataset ---

ClsDataset::ClsDataset(int64_t vocab, int64_t size, int64_t max_len, uint64_t seed)
    : vocab_(vocab), size_(size), max_len_(max_len), rng_(seed) {}

models::ClsBatch ClsDataset::batch(int64_t index, int64_t batch_size, int64_t seq_len) const {
  LS2_CHECK_LE(seq_len, max_len_);
  std::vector<float> ids(static_cast<size_t>(batch_size * seq_len),
                         static_cast<float>(kPad));
  std::vector<float> lens(static_cast<size_t>(batch_size));
  std::vector<float> labels(static_cast<size_t>(batch_size));
  const int64_t words = vocab_ - kFirstWord;
  const int64_t half = (seq_len - 2) / 2;
  for (int64_t b = 0; b < batch_size; ++b) {
    const uint64_t ex = static_cast<uint64_t>(index * batch_size + b);
    const bool positive = rng_.bits(7, ex) & 1;
    ids[static_cast<size_t>(b * seq_len)] = static_cast<float>(kBos);  // [CLS]
    for (int64_t k = 0; k < half; ++k) {
      int32_t w = static_cast<int32_t>(
          kFirstWord + rng_.randint(8, ex * 512 + static_cast<uint64_t>(k), words));
      if (k == 0) {
        // Make the label linearly recoverable from the lead token's parity
        // (keeps tiny test models learnable) while the pair structure below
        // still follows the label as in MRPC.
        const int64_t off = (w - kFirstWord) & ~int64_t{1};
        w = static_cast<int32_t>(kFirstWord + (off + (positive ? 1 : 0)) % words);
      }
      ids[static_cast<size_t>(b * seq_len + 1 + k)] = static_cast<float>(w);
      // Second sentence: paraphrase (shift by 5) if positive, random else.
      const int32_t w2 =
          positive ? static_cast<int32_t>(kFirstWord + ((w - kFirstWord) + 5) % words)
                   : static_cast<int32_t>(kFirstWord +
                                          rng_.randint(9, ex * 512 + static_cast<uint64_t>(k),
                                                       words));
      ids[static_cast<size_t>(b * seq_len + 1 + half + k)] = static_cast<float>(w2);
    }
    lens[static_cast<size_t>(b)] = static_cast<float>(1 + 2 * half);
    labels[static_cast<size_t>(b)] = positive ? 1.0f : 0.0f;
  }
  models::ClsBatch batch;
  batch.ids = Tensor::from_vector(ids, {batch_size, seq_len}, DType::kI32);
  batch.lens = Tensor::from_vector(lens, {batch_size}, DType::kI32);
  batch.labels = Tensor::from_vector(labels, {batch_size}, DType::kI32);
  return batch;
}

// ---------------------------------------------------------- ImageDataset ---

ImageDataset::ImageDataset(int64_t classes, int64_t size, uint64_t seed)
    : classes_(classes), size_(size), rng_(seed) {}

models::ImageBatch ImageDataset::batch(int64_t index, int64_t batch_size,
                                       const models::VitConfig& cfg, DType dtype) const {
  const int64_t P = cfg.patches(), PD = cfg.patch_dim();
  std::vector<float> patches(static_cast<size_t>(batch_size * P * PD));
  std::vector<float> labels(static_cast<size_t>(batch_size));
  for (int64_t b = 0; b < batch_size; ++b) {
    const uint64_t ex = static_cast<uint64_t>(index * batch_size + b);
    const int64_t cls = rng_.randint(1, ex, classes_);
    labels[static_cast<size_t>(b)] = static_cast<float>(cls);
    // Class-dependent low-frequency structure + noise.
    for (int64_t p = 0; p < P; ++p) {
      const float mean = 0.3f * std::sin(0.7f * static_cast<float>(cls + 1) *
                                         static_cast<float>(p + 1));
      for (int64_t d = 0; d < PD; ++d) {
        patches[static_cast<size_t>((b * P + p) * PD + d)] =
            mean + 0.1f * rng_.normal(20, ex * 131072 + static_cast<uint64_t>(p * PD + d));
      }
    }
  }
  models::ImageBatch batch;
  batch.patches = Tensor::from_vector(
      patches, {batch_size, P, PD}, dtype == DType::kF16 ? DType::kF16 : DType::kF32);
  batch.labels = Tensor::from_vector(labels, {batch_size}, DType::kI32);
  return batch;
}

}  // namespace ls2::data
