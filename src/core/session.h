// Session: one simulated device + its memory strategy + the policy of the
// system under test. The owning scope for everything a training run needs.
#pragma once

#include <memory>

#include "layers/layer_context.h"
#include "memory/arena_allocator.h"
#include "memory/caching_allocator.h"
#include "simgpu/device.h"
#include "simgpu/profile.h"

namespace ls2::core {

struct SessionConfig {
  layers::System system = layers::System::kLightSeq2;
  simgpu::DeviceProfile profile = simgpu::v100();
  simgpu::ExecMode mode = simgpu::ExecMode::kExecute;
  DType dtype = DType::kF32;
  uint64_t seed = 42;
  /// >0 with kLightSeq2: pre-allocate this activation arena (from a capacity
  /// scan). 0: dynamic caching allocator (the baseline behaviour; LightSeq2
  /// sessions may also use 0 in tests where memory strategy is irrelevant).
  size_t arena_bytes = 0;
  bool record_timeline = false;
};

class Session {
 public:
  explicit Session(SessionConfig cfg);

  simgpu::Device& device() { return device_; }
  layers::LayerContext& ctx() { return *ctx_; }
  const SessionConfig& config() const { return cfg_; }

  /// Permanent memory (parameters, gradients, optimizer state).
  BufferAllocator* param_alloc() { return param_alloc_.get(); }
  /// Temporary memory (activations, backward scratch).
  mem::DeviceAllocator& activations() { return *act_alloc_; }

  int64_t permanent_bytes() const { return param_alloc_->bytes_in_use(); }
  int64_t activation_peak_bytes() const { return act_alloc_->peak_bytes(); }

  /// Called at the end of each training step: rewinds the arena (LightSeq2)
  /// so the next step reuses the same memory.
  void end_step();

 private:
  SessionConfig cfg_;
  simgpu::Device device_;
  std::unique_ptr<mem::DeviceAllocator> param_alloc_;
  std::unique_ptr<mem::DeviceAllocator> act_alloc_;
  mem::ArenaAllocator* arena_ = nullptr;  // non-null when arena strategy active
  std::unique_ptr<layers::LayerContext> ctx_;
};

}  // namespace ls2::core
