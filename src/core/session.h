// Session: one simulated device + its memory strategy + the policy of the
// system under test. The owning scope for everything a training run needs.
#pragma once

#include <memory>

#include "layers/layer_context.h"
#include "memory/arena_allocator.h"
#include "memory/caching_allocator.h"
#include "obs/metrics.h"
#include "simgpu/device.h"
#include "simgpu/profile.h"

namespace ls2::core {

struct SessionConfig {
  layers::System system = layers::System::kLightSeq2;
  simgpu::DeviceProfile profile = simgpu::v100();
  simgpu::ExecMode mode = simgpu::ExecMode::kExecute;
  DType dtype = DType::kF32;
  uint64_t seed = 42;
  /// >0 with kLightSeq2: pre-allocate this activation arena (from a capacity
  /// scan). 0: dynamic caching allocator (the baseline behaviour; LightSeq2
  /// sessions may also use 0 in tests where memory strategy is irrelevant).
  size_t arena_bytes = 0;
  bool record_timeline = false;
  /// Capture the steady-state train step as a device StepGraph and replay it
  /// (CUDA-Graphs discipline): after `graph_warmup_steps` eager steps the
  /// next step is captured-while-executing, and every later step replays the
  /// graph — one graph-launch overhead, no per-kernel launch gaps, bitwise
  /// identical numerics. Capture is poisoned (with a logged diagnostic, and
  /// the session stays eager) if the step is not capture-safe — e.g. the
  /// dynamic caching allocator stalls on a device malloc mid-step. Like
  /// real CUDA Graphs, replay requires STATIC batch shapes: feed the same
  /// (padded) shape every step — a shape change after capture makes the
  /// replayed launch sequence diverge from the graph, which throws with a
  /// diagnostic rather than mis-charging silently.
  bool graph_capture = false;
  /// Eager steps before capture (allocator warm-up; default: capture the
  /// second step).
  int graph_warmup_steps = 1;
  /// >0: take an asynchronous checkpoint snapshot every this many steps
  /// (DESIGN.md §10). The fault-tolerant harness (core/fault_tolerant.h)
  /// reads this cadence; a bare train_step loop ignores it. 0 = never.
  int64_t checkpoint_every = 0;
  /// Collective timeout for failure detection, threaded into the
  /// FaultInjector by the fault-tolerant harness (README knob).
  double collective_timeout_us = 5000.0;
  /// Wall-clock heartbeat detector cadence (dist::HeartbeatMonitor): how
  /// often the watcher thread scans for silent ranks. Consumers build the
  /// monitor via dist::HeartbeatConfig::from_millis(ranks, interval, timeout).
  double heartbeat_interval_ms = 2.0;
  /// A rank whose last beat is older than this is SUSPECTED. Keep it a
  /// multiple of the slowest healthy beat cadence — a slow-but-alive rank
  /// must never be evicted (tests/fleet_test.cc holds this).
  double heartbeat_timeout_ms = 20.0;
  /// Telemetry sink (DESIGN.md §12), NOT owned; null (the default) disables
  /// all metrics recording — every instrumentation site is one pointer test
  /// and the simulated step time is identical either way (host-side only).
  obs::MetricsRegistry* metrics = nullptr;
};

/// What core::train_step should do with the device graph on this step.
enum class GraphAction { kEager, kCapture, kReplay };

class Session {
 public:
  explicit Session(SessionConfig cfg);

  simgpu::Device& device() { return device_; }
  layers::LayerContext& ctx() { return *ctx_; }
  const SessionConfig& config() const { return cfg_; }

  /// The telemetry registry, or null when metrics are disabled. Defined
  /// with LS2_DISABLE_METRICS: always null, and the compiler deletes every
  /// `if (metrics())` instrumentation block — the compiled-out path.
#ifdef LS2_DISABLE_METRICS
  constexpr obs::MetricsRegistry* metrics() const { return nullptr; }
#else
  obs::MetricsRegistry* metrics() const { return cfg_.metrics; }
#endif

  /// Permanent memory (parameters, gradients, optimizer state).
  BufferAllocator* param_alloc() { return param_alloc_.get(); }
  /// Temporary memory (activations, backward scratch).
  mem::DeviceAllocator& activations() { return *act_alloc_; }

  int64_t permanent_bytes() const { return param_alloc_->bytes_in_use(); }
  int64_t activation_peak_bytes() const { return act_alloc_->peak_bytes(); }

  /// Called by train_step at the start of each step: advances the per-step
  /// RNG offset (the graph parameter that keeps dropout masks bitwise
  /// reproducible under replay) and decides whether this step runs eager,
  /// is captured, or replays the stored graph.
  GraphAction begin_step();

  /// Inference twin of begin_step for the serving engine (src/infer/): the
  /// steady-state DECODE step is the static region — prefills and
  /// admissions run eager in between, so the engine (not the step index)
  /// decides which steps are graph candidates by calling this only for
  /// them. Advances the per-step RNG offset (token sampling stays a pure
  /// function of (seed, step, slot) under replay) and returns eager /
  /// capture / replay for the decode region. Warm-up counts DECODE steps
  /// only; an engine step may also run admission prefills before the
  /// captured region — they stay outside the graph.
  GraphAction begin_decode_step();

  /// Called at the end of each training step: rewinds the arena (LightSeq2)
  /// so the next step reuses the same memory, and advances the step index.
  void end_step();

  // --- step-graph state (driven by core::train_step) ---
  /// Deposit the graph end_capture returned. An invalid (poisoned) graph
  /// logs a loud diagnostic and pins the session to eager execution.
  void store_graph(simgpu::StepGraph graph);
  /// The captured graph, or nullptr before capture / after poisoning.
  const simgpu::StepGraph* step_graph() const {
    return graph_.valid ? &graph_ : nullptr;
  }
  bool graph_poisoned() const { return graph_poisoned_; }
  const std::string& graph_poison_reason() const { return graph_.poison_reason; }
  /// Certified capture-safe memory strategy: the pre-reserved arena serves
  /// every per-step tensor from stable addresses with zero device
  /// malloc/free traffic (Table-1 feature row; the caching allocator is
  /// capture-unsafe and poisons at its first mid-step stall).
  bool graph_capture_supported() const { return act_alloc_->capture_safe(); }
  int64_t step_index() const { return step_index_; }

  /// Checkpoint-restore support (DESIGN.md §10): rewind the session's step
  /// index to `step` so the next begin_step re-derives that step's RNG
  /// offset — with the (seed, step, site) counter-RNG discipline this alone
  /// makes a replayed step draw bitwise the dropout masks and samples of
  /// the original. Also clears any abandoned capture/replay left by a
  /// mid-step failure and drains per-step state the unwound step leaked.
  void rewind_to_step(int64_t step);

  /// Cross-step state of the pipeline-parallel engine (core/pp_step.h):
  /// the remote-stage device/allocator pair and the trace time base. Owned
  /// here (type-erased) so the engine — a header template — keeps its
  /// warm allocator cache across steps. Null until the first PP step.
  std::shared_ptr<void> pp_state;

 private:
  SessionConfig cfg_;
  simgpu::Device device_;
  std::unique_ptr<mem::DeviceAllocator> param_alloc_;
  std::unique_ptr<mem::DeviceAllocator> act_alloc_;
  mem::ArenaAllocator* arena_ = nullptr;  // non-null when arena strategy active
  std::unique_ptr<layers::LayerContext> ctx_;
  int64_t step_index_ = 0;
  int64_t decode_warmups_ = 0;    // eager decode steps before capture
  simgpu::StepGraph graph_;       // valid once captured (train OR decode —
                                  // a session runs one workload, not both)
  bool graph_poisoned_ = false;   // capture failed; stay eager forever
};

}  // namespace ls2::core
