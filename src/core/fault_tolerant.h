// Fault-tolerant training driver (DESIGN.md §10).
//
// Wraps the train_step loop with detection and recovery, TorchElastic-style:
// a FaultInjector armed per step turns scheduled FaultPlan events into real
// thrown failures (DeviceLostError / PeerLostError / TransientAllocFailure),
// and on each failure the driver restores the last USABLE asynchronous
// checkpoint onto a rebuilt world and continues under one of two policies:
//
//  * kRollbackReplay — the lost rank respawns (cfg.respawn_delay_us of wall
//    clock), the world keeps its provisioned DP width, and the steps since
//    the checkpoint replay. With raw-byte snapshots and the (seed, step,
//    site) counter-RNG, the replayed trajectory — and therefore the final
//    parameters — is BITWISE identical to a fault-free run.
//  * kElasticShrink — a lost DP rank is NOT waited for: the DP communicator
//    re-forms over the survivors immediately (cluster.dp_lost += 1, so
//    dp_size() shrinks and every downstream ring/averaging denominator
//    rescales), trading throughput (and exact batch-size semantics) for
//    availability. Non-rank failures (transient allocation) still recover
//    by rollback under this policy — there is nothing to shrink.
//
// Both policies rebuild the world from scratch before restoring: a step that
// unwound mid-flight leaves layer-held activations, arena bookkeeping, and
// graph state in undefined shape, and production elastic runtimes likewise
// restart the worker process rather than trusting a poisoned address space.
//
// The World contract: make_world(cluster) returns a movable handle (e.g.
// std::unique_ptr<W>) whose pointee exposes
//     core::Session session;                  // constructed first
//     ModelT model;
//     std::unique_ptr<optim::Optimizer> trainer;
// and builds the model DETERMINISTICALLY from the session's seed — rebuilds
// must reproduce the original initialisation bitwise (restores overwrite the
// parameters anyway, but a run with no usable checkpoint restarts from
// init). batch_for(step) returns the step's batch, also deterministically.
#pragma once

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/train_step.h"
#include "memory/device_allocator.h"
#include "simgpu/fault.h"

namespace ls2::core {

enum class RecoveryPolicy {
  kRollbackReplay,  ///< respawn the rank, keep DP width, replay bitwise
  kElasticShrink,   ///< continue degraded on the surviving DP ranks
};

inline const char* recovery_policy_name(RecoveryPolicy p) {
  return p == RecoveryPolicy::kRollbackReplay ? "rollback" : "elastic";
}

struct FtConfig {
  dist::ClusterConfig cluster;
  RecoveryPolicy policy = RecoveryPolicy::kRollbackReplay;
  int64_t steps = 8;  ///< global steps the run must complete
  /// Rollback policy: modeled wall-clock until a replacement rank is up
  /// (scheduler + container + NCCL re-init). Elastic shrink skips this —
  /// that is the availability win it buys.
  double respawn_delay_us = 50'000.0;
  /// Terminal backstop: rethrow after this many failures.
  int max_failures = 8;
};

struct FtFailure {
  int64_t fail_step = 0;     ///< step being executed when the failure hit
  int64_t restart_step = 0;  ///< first step re-executed after restore
  const char* kind = "";     ///< device_lost / peer_lost / alloc / error
  bool shrunk = false;       ///< this recovery took a DP rank away
  /// Global us from the failure instant until the run completed fail_step
  /// again — detection timeout + (respawn) + restore + replayed steps.
  double recover_us = 0;
};

struct FtReport {
  int64_t steps_completed = 0;
  int failures = 0;
  double total_us = 0;  ///< global wall clock, summed across worlds
  std::vector<FtFailure> events;
  dist::ClusterConfig final_cluster;  ///< dp_lost reflects elastic shrinks
  // --- checkpointing ---
  int64_t snapshots = 0;
  int64_t snapshot_bytes = 0;
  double checkpoint_stage_us = 0;  ///< compute-stream staging (the overhead)
  // --- detection ledger (from the injector) ---
  int stragglers_detected = 0;
  std::vector<int64_t> straggler_steps;
  int64_t timeout_exceedances = 0;
};

/// Drive `cfg.steps` training steps to completion under `plan`, recovering
/// from every injected failure. Returns the report AND the final world (so
/// callers can inspect the trained parameters).
template <typename MakeWorld, typename BatchFor>
auto run_fault_tolerant(const FtConfig& cfg, simgpu::FaultPlan plan,
                        MakeWorld&& make_world, BatchFor&& batch_for)
    -> std::pair<FtReport, decltype(make_world(cfg.cluster))> {
  dist::ClusterConfig cluster = cfg.cluster;
  cluster.validate();

  auto world = make_world(cluster);
  simgpu::FaultInjector injector(std::move(plan),
                                 world->session.config().collective_timeout_us);
  AsyncCheckpointer ckpt(world->session.config().checkpoint_every);

  // The grad-corruption sink writes a NaN burst into the CURRENT world's
  // flat gradient bytes at the sync point — the moment averaged gradients
  // materialize. (Workspace registries only; with dynamic loss scaling the
  // next check_overflow sees the burst and the scaler backs off.)
  auto install = [&injector](decltype(world)& w) {
    w->session.device().set_fault_injector(&injector);
    injector.set_sync_sink([&w](const simgpu::FaultEvent& e) {
      layers::ParamRegistry& params = w->model.params();
      if (!params.contiguous()) return;
      const size_t hi = std::min(e.byte_hi, params.flat_grad_bytes());
      if (e.byte_lo >= hi) return;
      Tensor g = params.grad_byte_view(e.byte_lo, hi);
      if (g.backs_real_memory()) g.fill_(std::numeric_limits<float>::quiet_NaN());
    });
  };
  install(world);

  FtReport report;
  struct Pending {
    int64_t fail_step;
    double global_fail_us;
    size_t event_index;
  };
  std::vector<Pending> pending;
  double base_us = 0;  // wall clock burned in already-dead worlds
  int64_t step = 0;

  auto recover = [&](const char* kind, bool rank_loss) {
    simgpu::Device& dead = world->session.device();
    const double fail_clock = dead.clock_us();
    base_us += fail_clock;
    report.checkpoint_stage_us += dead.range_time_us("checkpoint");

    ++report.failures;
    if (report.failures > cfg.max_failures) {
      throw Error("fault-tolerant run exceeded max_failures=" +
                  std::to_string(cfg.max_failures) + " (last: " + kind + ")");
    }

    // Snapshots whose host drain was still in flight died with the device.
    ckpt.on_failure(fail_clock);
    const CheckpointSnapshot* snap = ckpt.latest_ready(0.0);
    const int64_t restart_step = snap != nullptr ? snap->step + 1 : 0;

    FtFailure ev;
    ev.fail_step = step;
    ev.restart_step = restart_step;
    ev.kind = kind;
    // The failure instant — BEFORE any respawn wait, so recover_us charges
    // the respawn to the rollback policy (that wait is exactly what elastic
    // shrink buys its availability by skipping).
    const double global_fail_us = base_us;
    const bool shrink = cfg.policy == RecoveryPolicy::kElasticShrink &&
                        rank_loss && cluster.dp_size() > 1;
    if (shrink) {
      cluster.dp_lost += 1;  // survivors re-form the ring NOW — no respawn wait
      ev.shrunk = true;
    } else {
      base_us += cfg.respawn_delay_us;
    }
    pending.push_back({step, global_fail_us, report.events.size()});
    report.events.push_back(ev);

    world = make_world(cluster);
    install(world);
    if (snap != nullptr) {
      AsyncCheckpointer::restore(*snap, world->session, world->model.params(),
                                 *world->trainer);
    }
    world->session.rewind_to_step(restart_step);
    step = restart_step;
  };

  while (step < cfg.steps) {
    injector.arm(step);
    try {
      (void)train_step(world->session, world->model, batch_for(step),
                       *world->trainer, cluster);
      if (ckpt.due(step)) {
        ckpt.snapshot(world->session, world->model.params(), *world->trainer, step);
      }
      ++step;
      // A failure is RECOVERED once the run has completed the step it died
      // on — that span is the time-to-recover the bench sweeps.
      while (!pending.empty() && step > pending.back().fail_step) {
        const Pending p = pending.back();
        pending.pop_back();
        report.events[p.event_index].recover_us =
            (base_us + world->session.device().clock_us()) - p.global_fail_us;
      }
    } catch (const simgpu::DeviceLostError&) {
      recover("device_lost", /*rank_loss=*/true);
    } catch (const simgpu::PeerLostError&) {
      recover("peer_lost", /*rank_loss=*/true);
    } catch (const mem::TransientAllocFailure&) {
      recover("alloc", /*rank_loss=*/false);
    }
  }

  report.steps_completed = step;
  report.total_us = base_us + world->session.device().clock_us();
  report.checkpoint_stage_us +=
      world->session.device().range_time_us("checkpoint");
  report.snapshots = ckpt.snapshots_taken();
  report.snapshot_bytes = ckpt.snapshot_bytes();
  report.final_cluster = cluster;
  report.stragglers_detected = injector.stragglers_detected();
  report.straggler_steps = injector.straggler_steps();
  report.timeout_exceedances = injector.timeout_exceedances();
  world->session.device().set_fault_injector(nullptr);
  return {std::move(report), std::move(world)};
}

}  // namespace ls2::core
