#include "core/checkpoint.h"

#include <cstring>

namespace ls2::core {

namespace {

/// Snapshot one device tensor into a host blob (bitwise; no-op on
/// timing-only virtual backing, where only the charge matters).
void stage_tensor(const Tensor& t, std::vector<unsigned char>& blob) {
  if (!t.defined()) {
    blob.clear();
    return;
  }
  if (!t.backs_real_memory()) {
    blob.clear();
    return;
  }
  blob.resize(t.bytes());
  std::memcpy(blob.data(), t.raw(), t.bytes());
}

void unstage_tensor(const std::vector<unsigned char>& blob, const Tensor& t) {
  if (!t.defined() || !t.backs_real_memory()) return;
  LS2_CHECK_EQ(blob.size(), t.bytes())
      << "checkpoint blob size does not match its tensor — the rebuilt "
         "world's model/trainer shape differs from the snapshot's";
  std::memcpy(t.raw(), blob.data(), t.bytes());
}

int64_t tensor_bytes(const Tensor& t) {
  return t.defined() ? static_cast<int64_t>(t.bytes()) : 0;
}

}  // namespace

void AsyncCheckpointer::snapshot(Session& session,
                                 const layers::ParamRegistry& params,
                                 const optim::Optimizer& trainer,
                                 int64_t completed_step) {
  simgpu::Device& dev = session.device();
  simgpu::ScopedRange range(dev, "checkpoint");

  CheckpointSnapshot snap;
  snap.step = completed_step;
  snap.trainer_steps = trainer.steps_taken();
  if (const optim::GradScaler* s = trainer.scaler()) {
    snap.scaler = s->state();
    snap.has_scaler = true;
  }

  const std::vector<Tensor> opt_state = trainer.state_tensors();
  int64_t total_bytes = 0;
  params.for_each([&](const std::string&, Tensor value, Tensor) {
    total_bytes += tensor_bytes(value);
  });
  for (const Tensor& t : opt_state) total_bytes += tensor_bytes(t);
  snapshot_bytes_ = total_bytes;

  // 1) Device-side staging copy on the compute stream: the step blocks only
  // on this D2D pass; the params may be overwritten the moment it returns.
  simgpu::KernelDesc desc;
  desc.name = "ls2.checkpoint_stage";
  desc.bytes_read = total_bytes;
  desc.bytes_written = total_bytes;
  desc.mem_efficiency = 0.85;
  snap.params.reserve(static_cast<size_t>(params.size()));
  snap.opt_state.resize(opt_state.size());
  dev.launch(desc, [&] {
    params.for_each([&](const std::string&, Tensor value, Tensor) {
      snap.params.emplace_back();
      stage_tensor(value, snap.params.back());
    });
    for (size_t i = 0; i < opt_state.size(); ++i)
      stage_tensor(opt_state[i], snap.opt_state[i]);
  });
  if (session.config().mode == simgpu::ExecMode::kModelOnly) {
    // The launch skipped its body (timing-only execution) — stage on the
    // host instead. Parameters back real memory in every mode, and a
    // restore must round-trip bitwise regardless of how the run is timed.
    snap.params.clear();
    params.for_each([&](const std::string&, Tensor value, Tensor) {
      snap.params.emplace_back();
      stage_tensor(value, snap.params.back());
    });
    for (size_t i = 0; i < opt_state.size(); ++i)
      stage_tensor(opt_state[i], snap.opt_state[i]);
  }

  // 2) Host drain on the comm stream, overlapping the next steps' compute —
  // the checkpoint is only USABLE once this completes.
  const double d2h_us = static_cast<double>(total_bytes) /
                        (dev.profile().pcie_gb_s * 1e3);
  snap.ready_us = dev.enqueue_comm(d2h_us, "checkpoint.d2h");

  if (ring_.size() == 2) ring_.erase(ring_.begin());
  ring_.push_back(std::move(snap));
  ++snapshots_taken_;
}

const CheckpointSnapshot* AsyncCheckpointer::latest_ready(double clock_us) const {
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->valid() && it->ready_us <= clock_us) return &*it;
  }
  return nullptr;
}

void AsyncCheckpointer::on_failure(double fail_clock_us) {
  std::vector<CheckpointSnapshot> survivors;
  for (auto& snap : ring_) {
    if (!snap.valid() || snap.ready_us > fail_clock_us) continue;  // in flight: lost
    snap.ready_us = 0;  // the rebuilt world's clock restarts at zero
    survivors.push_back(std::move(snap));
  }
  ring_ = std::move(survivors);
}

CheckpointSnapshot AsyncCheckpointer::snapshot_params(
    Session& session, const layers::ParamRegistry& params) {
  simgpu::Device& dev = session.device();
  simgpu::ScopedRange range(dev, "checkpoint");

  CheckpointSnapshot snap;
  snap.step = session.step_index();

  int64_t total_bytes = 0;
  params.for_each([&](const std::string&, Tensor value, Tensor) {
    total_bytes += tensor_bytes(value);
  });

  simgpu::KernelDesc desc;
  desc.name = "ls2.checkpoint_stage";
  desc.bytes_read = total_bytes;
  desc.bytes_written = total_bytes;
  desc.mem_efficiency = 0.85;
  snap.params.reserve(static_cast<size_t>(params.size()));
  dev.launch(desc, [&] {
    params.for_each([&](const std::string&, Tensor value, Tensor) {
      snap.params.emplace_back();
      stage_tensor(value, snap.params.back());
    });
  });
  if (session.config().mode == simgpu::ExecMode::kModelOnly) {
    // Parameters back real memory in every mode; stage host-side when the
    // launch body was skipped so the blobs round-trip bitwise regardless.
    snap.params.clear();
    params.for_each([&](const std::string&, Tensor value, Tensor) {
      snap.params.emplace_back();
      stage_tensor(value, snap.params.back());
    });
  }

  const double d2h_us = static_cast<double>(total_bytes) /
                        (dev.profile().pcie_gb_s * 1e3);
  snap.ready_us = dev.enqueue_comm(d2h_us, "checkpoint.d2h");
  return snap;
}

void AsyncCheckpointer::restore_params(const CheckpointSnapshot& snap,
                                       Session& session,
                                       const layers::ParamRegistry& params) {
  LS2_CHECK(snap.valid()) << "restore from an invalid snapshot";
  simgpu::Device& dev = session.device();

  int64_t total_bytes = 0;
  size_t i = 0;
  params.for_each([&](const std::string&, Tensor value, Tensor) {
    LS2_CHECK(i < snap.params.size())
        << "snapshot has fewer parameter blobs than the live registry";
    unstage_tensor(snap.params[i++], value);
    total_bytes += tensor_bytes(value);
  });

  // The reload is never free: charge the host-to-device upload as idle.
  const double h2d_us = static_cast<double>(total_bytes) /
                        (dev.profile().pcie_gb_s * 1e3);
  dev.advance(h2d_us, /*busy=*/false, "fleet.reload");
}

void AsyncCheckpointer::restore(const CheckpointSnapshot& snap, Session& session,
                                const layers::ParamRegistry& params,
                                optim::Optimizer& trainer) {
  LS2_CHECK(snap.valid()) << "restore from an invalid snapshot";
  simgpu::Device& dev = session.device();

  int64_t total_bytes = 0;
  size_t i = 0;
  params.for_each([&](const std::string&, Tensor value, Tensor) {
    LS2_CHECK(i < snap.params.size())
        << "snapshot has fewer parameter blobs than the rebuilt registry";
    unstage_tensor(snap.params[i++], value);
    total_bytes += tensor_bytes(value);
  });
  const std::vector<Tensor> opt_state = trainer.state_tensors();
  LS2_CHECK_EQ(opt_state.size(), snap.opt_state.size())
      << "trainer state tensor count changed between snapshot and restore";
  for (size_t j = 0; j < opt_state.size(); ++j) {
    unstage_tensor(snap.opt_state[j], opt_state[j]);
    total_bytes += tensor_bytes(opt_state[j]);
  }
  trainer.restore_steps(snap.trainer_steps);
  if (snap.has_scaler) {
    optim::GradScaler* s = trainer.mutable_scaler();
    LS2_CHECK(s != nullptr)
        << "snapshot carries GradScaler state but the rebuilt trainer has no "
           "dynamic scaler";
    s->restore(snap.scaler);
  }

  // Charge the host-to-device upload: recovery is never free.
  const double h2d_us = static_cast<double>(total_bytes) /
                        (dev.profile().pcie_gb_s * 1e3);
  dev.advance(h2d_us, /*busy=*/false, "fault.restore");
}

}  // namespace ls2::core
