#include "core/session.h"

namespace ls2::core {

Session::Session(SessionConfig cfg) : cfg_(cfg), device_(cfg.profile, cfg.mode) {
  device_.set_record_timeline(cfg.record_timeline);
  // Model-only sessions back "device memory" with never-committed virtual
  // pages: identical time/byte accounting, no host RAM at paper scale.
  const auto backing = cfg.mode == simgpu::ExecMode::kModelOnly
                           ? mem::DeviceAllocator::Backing::kVirtual
                           : mem::DeviceAllocator::Backing::kMalloc;
  param_alloc_ = std::make_unique<mem::CachingAllocator>(device_, backing);
  if (cfg.system == layers::System::kLightSeq2 && cfg.arena_bytes > 0) {
    auto arena = std::make_unique<mem::ArenaAllocator>(device_, cfg.arena_bytes, backing);
    arena_ = arena.get();
    act_alloc_ = std::move(arena);
  } else {
    act_alloc_ = std::make_unique<mem::CachingAllocator>(device_, backing);
  }
  ctx_ = std::make_unique<layers::LayerContext>(device_, act_alloc_.get(),
                                                layers::policy_for(cfg.system), cfg.seed);
}

void Session::end_step() {
  if (arena_ != nullptr) arena_->reset();
}

}  // namespace ls2::core
