#include "core/session.h"

#include "common/logging.h"

namespace ls2::core {

Session::Session(SessionConfig cfg) : cfg_(cfg), device_(cfg.profile, cfg.mode) {
  device_.set_record_timeline(cfg.record_timeline);
  // Model-only sessions back "device memory" with never-committed virtual
  // pages: identical time/byte accounting, no host RAM at paper scale.
  const auto backing = cfg.mode == simgpu::ExecMode::kModelOnly
                           ? mem::DeviceAllocator::Backing::kVirtual
                           : mem::DeviceAllocator::Backing::kMalloc;
  param_alloc_ = std::make_unique<mem::CachingAllocator>(device_, backing);
  if (cfg.system == layers::System::kLightSeq2 && cfg.arena_bytes > 0) {
    auto arena = std::make_unique<mem::ArenaAllocator>(device_, cfg.arena_bytes, backing);
    arena_ = arena.get();
    act_alloc_ = std::move(arena);
  } else {
    act_alloc_ = std::make_unique<mem::CachingAllocator>(device_, backing);
  }
  ctx_ = std::make_unique<layers::LayerContext>(device_, act_alloc_.get(),
                                                layers::policy_for(cfg.system), cfg.seed);
}

GraphAction Session::begin_step() {
  // The per-step RNG offset is the graph parameter of §"graph capture":
  // dropout masks become a pure function of (seed, step, site), so a
  // replayed step draws bitwise the masks its eager twin would.
  ctx_->kern.begin_step_rng(static_cast<uint64_t>(step_index_));
  if (!cfg_.graph_capture || graph_poisoned_) return GraphAction::kEager;
  if (graph_.valid) return GraphAction::kReplay;
  if (step_index_ < cfg_.graph_warmup_steps) return GraphAction::kEager;
  return GraphAction::kCapture;
}

GraphAction Session::begin_decode_step() {
  // Same RNG discipline as training: the per-step offset advances OUTSIDE
  // the graph, so a replayed decode step samples bitwise the tokens its
  // eager twin would.
  ctx_->kern.begin_step_rng(static_cast<uint64_t>(step_index_));
  if (!cfg_.graph_capture || graph_poisoned_) return GraphAction::kEager;
  if (graph_.valid) return GraphAction::kReplay;
  if (decode_warmups_ < cfg_.graph_warmup_steps) {
    ++decode_warmups_;
    return GraphAction::kEager;
  }
  return GraphAction::kCapture;
}

void Session::store_graph(simgpu::StepGraph graph) {
  if (!graph.valid) {
    graph_poisoned_ = true;
    graph_ = std::move(graph);  // keep the reason readable
    LS2_LOG(kWarn) << "step-graph capture POISONED — training stays eager: "
                   << graph_.poison_reason
                   << (graph_capture_supported()
                           ? ""
                           : " (session has no activation arena; the caching "
                             "allocator is capture-unsafe)");
    return;
  }
  graph_ = std::move(graph);
}

void Session::rewind_to_step(int64_t step) {
  LS2_CHECK(step >= 0) << "rewind_to_step(" << step << ")";
  // A failure can unwind mid-capture or mid-replay; the abandoned graph
  // state must not leak into the replayed step. The captured graph itself
  // stays stored — a rebuilt world recaptures, a rewound one may replay.
  device_.abort_graph();
  ctx_->release_tp_reservations();
  step_index_ = step;
}

void Session::end_step() {
  // TP shard reservations (LayerContext::alloc_shard) are per-step device
  // allocations; drop them before the arena's everything-returned check.
  ctx_->release_tp_reservations();
  if (arena_ != nullptr) arena_->reset();
  ++step_index_;
}

}  // namespace ls2::core
