// Capacity scan (§IV-D): LightSeq2 sizes its activation arena BEFORE
// training by probing one forward+backward over the largest batch with a
// peak-tracking allocator. This is the one shared implementation of that
// probe — benches and tests size `SessionConfig::arena_bytes` through it,
// so "arena-sized-by-capacity-scan" means the same thing everywhere.
#pragma once

#include "dist/process_group.h"
#include "layers/layer_context.h"
#include "memory/caching_allocator.h"
#include "memory/measuring_allocator.h"
#include "simgpu/device.h"
#include "simgpu/profile.h"

namespace ls2::core {

struct CapacityScanOptions {
  /// kModelOnly probes byte-identically to an execute-mode run (all tensor
  /// allocation happens outside kernel bodies) but skips the math, so even
  /// paper-scale configs probe in milliseconds. The probe's parameters get
  /// virtual (never-committed) backing in this mode.
  simgpu::ExecMode mode = simgpu::ExecMode::kModelOnly;
  /// Device the sized session will run on — the probe's OOM ceiling
  /// (DeviceProfile::memory_gb) comes from here.
  simgpu::DeviceProfile profile = simgpu::v100();
  uint64_t seed = 17;
  /// Fractional slack added on top of the measured peak.
  double headroom = 1.0 / 16.0;
  /// Tensor-parallel communicator for probing a TP-sharded model (the probe
  /// context needs it so shard-accounted activations size like a real rank).
  dist::ProcessGroup* tp_group = nullptr;
};

/// Probe `make(param_alloc)`'s forward+backward over `batch` and return a
/// capacity for `SessionConfig::arena_bytes`. `make` builds the model
/// behind a (smart) pointer against the probe's parameter allocator.
template <typename MakeModel, typename Batch>
size_t capacity_scan(MakeModel&& make, const Batch& batch,
                     CapacityScanOptions opt = {}) {
  simgpu::Device dev(opt.profile, opt.mode);
  mem::CachingAllocator param_alloc(dev, opt.mode == simgpu::ExecMode::kModelOnly
                                             ? mem::DeviceAllocator::Backing::kVirtual
                                             : mem::DeviceAllocator::Backing::kMalloc);
  mem::MeasuringAllocator probe;
  layers::LayerContext ctx(dev, &probe,
                           layers::policy_for(layers::System::kLightSeq2), opt.seed);
  ctx.tp_group = opt.tp_group;
  auto model = make(&param_alloc);
  model->params().zero_grads();
  model->forward(ctx, batch);
  model->backward(ctx);
  const size_t peak = static_cast<size_t>(probe.peak_bytes());
  return peak + static_cast<size_t>(static_cast<double>(peak) * opt.headroom);
}

}  // namespace ls2::core
