// Pipeline-parallel training step: 1F1B microbatch scheduling (DESIGN.md §9).
//
// The simulator executes the FULL model on the session device — that is
// what keeps the numerics bitwise-checkable against the single-device run —
// while the pipeline is reconstructed analytically. Per step:
//
//   1. The global batch is sliced into `cluster.microbatches` equal
//      microbatches along dim 0. Each runs a complete forward + backward on
//      the session context with kc.microbatch = j, so every RNG-drawing
//      kernel offsets into exactly the mask slice the full-batch launch
//      would have drawn, and gradients ACCUMULATE across microbatches in
//      ascending order — bitwise the full-batch reduction (the kernels
//      accumulate float-from-destination in ascending element order).
//   2. Models mark every stage boundary via LayerContext::pp_enter; the
//      engine closes the previous (stage, microbatch, direction) chunk at
//      the device clock, giving measured per-chunk durations. The boundary
//      hook also swaps the activation allocator: stage-0 chunks allocate
//      from the session arena (the simulated rank-0 memory), later stages
//      from a private remote-stage allocator on a throwaway device — so
//      rank 0's footprint holds only what it would actually host, plus
//      min(pp, m) - 1 reserved stand-ins for the extra in-flight
//      microbatch activations a real 1F1B stage 0 retains.
//   3. dist::solve_1f1b reconstructs when each chunk would run on a real
//      pp-deep pipeline, with boundary p2p sends from the ProcessGroup's
//      point-to-point cost model. StepTimes reports the RANK-0 lane:
//      stage-0 compute in forward/backward_us, schedule idle in
//      pp_bubble_us, exposed p2p in pp_exposed_us.
//   4. Data-parallel sync composes per stage: grad-ready notifications
//      during the LAST microbatch's backward are recorded with their
//      offsets into each stage's final backward chunk, chopped into
//      size-capped buckets, and each stage's bucket rings are laid on that
//      stage's own comm lane. A tied embedding table (GPT-2, tied
//      Transformer) is final on the LAST stage but lives on stage 0, so
//      one extra p2p hop gates its stage-0 bucket. Optimizer updates run
//      for real (range-granular, order-independent — the step_range
//      contract), with stage-0's waits/updates pipelined per bucket into
//      sync_us / update_us exactly like the non-PP pipelined path.
//
// Graph capture/replay wraps the whole m-microbatch region: remote-stage
// allocations charge the remote device, so the session capture sees only
// arena traffic and stays capture-safe; microbatch RNG offsets are baked
// into launch closures by value, so a replayed step re-executes each
// microbatch's own mask slice bitwise.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/train_step.h"
#include "dist/bucket.h"
#include "dist/pipeline.h"
#include "dist/process_group.h"
#include "layers/pp.h"
#include "memory/caching_allocator.h"
#include "simgpu/fault.h"

namespace ls2::core::pp_detail {

/// Cross-step engine state, owned (type-erased) by Session::pp_state.
struct PpState {
  /// Throwaway device + allocator backing stages >= 1's activations: their
  /// alloc traffic must neither count against rank-0 memory nor poison a
  /// session graph capture. kVirtual backing in model-only mode lets
  /// paper-scale stages "allocate" without committing host memory.
  std::unique_ptr<simgpu::Device> remote_dev;
  std::unique_ptr<mem::CachingAllocator> remote_alloc;
  double trace_base_us = 0;  ///< virtual time base for per-step trace spans
  bool trace_named = false;  ///< per-rank trace processes named once
};

// --- batch plumbing -------------------------------------------------------
// The four batch structs are plain bags of dim-0-major tensors; slicing a
// microbatch is a set of dim-0 views (no copies). Distinguishing fields:
// MtBatch has src_ids, ImageBatch has patches, LmBatch has targets,
// ClsBatch has lens+labels.

template <typename BatchT>
int64_t pp_batch_rows(const BatchT& b) {
  if constexpr (requires { b.src_ids; }) {
    return b.src_ids.shape()[0];
  } else if constexpr (requires { b.patches; }) {
    return b.patches.shape()[0];
  } else {
    return b.ids.shape()[0];
  }
}

template <typename BatchT>
BatchT pp_slice_batch(const BatchT& b, int64_t lo, int64_t hi) {
  BatchT s = b;
  if constexpr (requires { b.src_ids; }) {  // models::MtBatch
    s.src_ids = b.src_ids.slice(lo, hi);
    s.tgt_in = b.tgt_in.slice(lo, hi);
    s.tgt_out = b.tgt_out.slice(lo, hi);
    s.src_lens = b.src_lens.slice(lo, hi);
    s.tgt_lens = b.tgt_lens.slice(lo, hi);
  } else if constexpr (requires { b.patches; }) {  // models::ImageBatch
    s.patches = b.patches.slice(lo, hi);
    s.labels = b.labels.slice(lo, hi);
  } else if constexpr (requires { b.targets; }) {  // models::LmBatch
    s.ids = b.ids.slice(lo, hi);
    s.targets = b.targets.slice(lo, hi);
  } else {  // models::ClsBatch
    s.ids = b.ids.slice(lo, hi);
    s.lens = b.lens.slice(lo, hi);
    s.labels = b.labels.slice(lo, hi);
  }
  return s;
}

/// The GLOBAL loss denominator a microbatch's criterion backward must use:
/// non-pad target tokens for token criteria (counted exactly as
/// CriterionLayer::forward counts them), the batch size for classification.
template <typename BatchT>
int64_t pp_global_denominator(const BatchT& b, int32_t pad_id, bool execute) {
  auto count_valid = [&](const Tensor& t) -> int64_t {
    if (!execute) return t.numel();  // timing-only mode: shape bookkeeping
    int64_t valid = 0;
    for (float v : t.to_vector()) {
      if (static_cast<int32_t>(v) != pad_id) ++valid;
    }
    return valid;
  };
  if constexpr (requires { b.tgt_out; }) {
    return count_valid(b.tgt_out);
  } else if constexpr (requires { b.targets; }) {
    return count_valid(b.targets);
  } else {
    return pp_batch_rows(b);
  }
}

template <typename ModelT, typename BatchT>
auto train_step_pp(Session& session, ModelT& model, const BatchT& batch,
                   optim::Optimizer& trainer, const dist::ClusterConfig& cluster)
    -> std::pair<StepTimes,
                 decltype(std::declval<ModelT&>().forward(
                     std::declval<Session&>().ctx(), std::declval<const BatchT&>()))> {
  using ResultT = decltype(model.forward(session.ctx(), batch));
  if constexpr (!requires { model.pp_configure(1); }) {
    LS2_CHECK(false) << "model does not implement pp_configure — pipeline "
                        "parallelism needs a stage partition";
    return {StepTimes{}, ResultT{}};
  } else {
    auto& dev = session.device();
    auto& ctx = session.ctx();
    kern::KernelContext& kc = ctx.kern;
    StepTimes times;
    cluster.validate();
    const int pp = cluster.pipeline_parallel;
    const int m = cluster.microbatches;
    const int64_t rows = pp_batch_rows(batch);
    LS2_CHECK(rows % m == 0 && rows >= m)
        << "batch size " << rows << " must split into " << m << " equal microbatches";

    // Hybrid composition wiring checks — same contract as train_step.
    dist::ProcessGroup* tp_group = ctx.tp_group;
    LS2_CHECK((tp_group != nullptr ? tp_group->tp_size() : 1) == cluster.tensor_parallel)
        << "cluster.tensor_parallel = " << cluster.tensor_parallel
        << " but the session's ProcessGroup is "
        << (tp_group ? std::to_string(tp_group->tp_size()) : std::string("absent"))
        << " — install a matching group as session.ctx().tp_group";
    if constexpr (requires { model.config().tp.size; }) {
      LS2_CHECK(model.config().tp.size == cluster.tensor_parallel)
          << "model was built with tp.size = " << model.config().tp.size
          << " but cluster.tensor_parallel = " << cluster.tensor_parallel;
    }
    const dist::ProcessGroup::Stats tp0 =
        tp_group ? tp_group->stats() : dist::ProcessGroup::Stats{};
    // Rank math / p2p costs are pure functions of the cluster, so a local
    // group serves even when the caller installed none (pp without tp).
    dist::ProcessGroup pgroup(cluster);

    const layers::PpPlan& plan = model.pp_configure(pp);
    LS2_CHECK(plan.stages == pp) << "plan stages " << plan.stages << " vs pp " << pp;
    auto& params = model.params();
    const auto spans = layers::stage_byte_spans(plan, params);
    {
      size_t covered = 0;
      for (const auto& stage_spans : spans) {
        for (const auto& [lo, hi] : stage_spans) covered += hi - lo;
      }
      LS2_CHECK(covered == params.flat_grad_bytes())
          << "stage partition covers " << covered << " of "
          << params.flat_grad_bytes() << " gradient bytes";
    }

    auto state = std::static_pointer_cast<PpState>(session.pp_state);
    if (!state) {
      state = std::make_shared<PpState>();
      state->remote_dev = std::make_unique<simgpu::Device>(dev.profile(), dev.mode());
      state->remote_alloc = std::make_unique<mem::CachingAllocator>(
          *state->remote_dev, dev.mode() == simgpu::ExecMode::kExecute
                                  ? mem::DeviceAllocator::Backing::kMalloc
                                  : mem::DeviceAllocator::Backing::kVirtual);
      session.pp_state = state;
    }

    const GraphAction graph_action = session.begin_step();
    struct GraphRegionGuard {
      simgpu::Device& dev;
      bool active = false;
      ~GraphRegionGuard() {
        if (active) dev.abort_graph();
      }
    } graph_guard{dev};

    // Zero gradients ONCE: microbatch gradients accumulate on top.
    const double tz = dev.clock_us();
    {
      simgpu::ScopedRange r(dev, "zero_grad");
      if (graph_action == GraphAction::kCapture) {
        dev.begin_capture();
        graph_guard.active = true;
      } else if (graph_action == GraphAction::kReplay) {
        dev.begin_replay(*session.step_graph());
        graph_guard.active = true;
        times.replayed = true;
      }
      zero_grads_charged(session, params);
    }
    const double t0 = dev.clock_us();
    times.zero_grad_us = t0 - tz;

    // --- measured chunk durations + boundary payloads ---
    auto su = [](int x) { return static_cast<size_t>(x); };
    std::vector<std::vector<double>> fdur(su(pp), std::vector<double>(su(m), 0.0));
    std::vector<std::vector<double>> bdur = fdur;
    std::vector<int64_t> fwd_bytes(su(pp - 1), 0), bwd_bytes(su(pp - 1), 0);
    struct NotifyEvent {
      int stage;
      size_t lo, hi;
      double offset;  ///< into the stage's last backward chunk
    };
    std::vector<NotifyEvent> notified;

    int cur_stage = 0, cur_mb = 0;
    bool cur_fwd = true, chunk_open = false;
    double chunk_begin = 0.0;
    BufferAllocator* const local_act = ctx.activation_allocator();
    std::vector<Tensor> residency;  // stand-ins for in-flight 1F1B activations
    const int64_t act_base = session.activations().bytes_in_use();

    struct CtxRestore {
      layers::LayerContext& ctx;
      BufferAllocator* act;
      ~CtxRestore() {
        ctx.pp = nullptr;
        ctx.pp_loss_carry = nullptr;
        ctx.pp_metric_carry = nullptr;
        ctx.pp_denominator = 0;
        ctx.pp_flush = false;
        ctx.kern.microbatch = 0;
        ctx.set_activation_allocator(act);
      }
    } ctx_restore{ctx, local_act};

    layers::PpHooks hooks;
    hooks.enter = [&](int stage, bool forward, int64_t payload) {
      LS2_CHECK(stage >= 0 && stage < pp) << "pp_enter stage " << stage;
      const double now = dev.clock_us();
      if (chunk_open) {
        (cur_fwd ? fdur : bdur)[su(cur_stage)][su(cur_mb)] += now - chunk_begin;
      }
      if (cur_mb == 0) {  // microbatches are equal-sized: record payloads once
        if (forward && stage > 0) {
          fwd_bytes[su(stage - 1)] = payload;
        } else if (!forward && stage + 1 < pp) {
          bwd_bytes[su(stage)] = payload;
        }
      }
      // Leaving stage 0 for the first time: one microbatch's stage-0
      // activation footprint is now live; a real 1F1B stage 0 holds
      // min(pp, m) such sets at its steady-state peak, so reserve the
      // difference for honest arena/capacity accounting.
      if (forward && stage == 1 && cur_mb == 0 && residency.empty()) {
        const int64_t live = session.activations().bytes_in_use() - act_base;
        for (int i = std::min(pp, m) - 1; i > 0 && live > 0; --i) {
          residency.push_back(Tensor::empty({live}, DType::kU8, local_act));
        }
      }
      ctx.set_activation_allocator(stage == 0 ? local_act : state->remote_alloc.get());
      cur_stage = stage;
      cur_fwd = forward;
      chunk_begin = now;
      chunk_open = true;
    };
    ctx.pp = &hooks;

    int32_t pad_id = 0;
    if constexpr (requires { model.config().pad_id; }) pad_id = model.config().pad_id;
    const int64_t denom = pp_global_denominator(
        batch, pad_id, dev.mode() == simgpu::ExecMode::kExecute);
    double loss_carry = 0.0, metric_carry = 0.0;
    ctx.pp_loss_carry = &loss_carry;
    ctx.pp_metric_carry = &metric_carry;
    ctx.pp_denominator = denom;
    ctx.loss_scale = trainer.loss_scale();

    // --- run the m microbatches (ascending: the accumulation order that is
    // bitwise the full-batch reduction) ---
    ResultT result{};
    const int64_t mb_rows = rows / m;
    for (int j = 0; j < m; ++j) {
      cur_mb = j;
      kc.microbatch = static_cast<uint64_t>(j);
      kc.dropout_site = 1;  // every microbatch walks the full batch's site order
      ctx.pp_flush = (j == m - 1);  // layers flush deferred tied-table work
      const BatchT mb = pp_slice_batch(batch, j * mb_rows, (j + 1) * mb_rows);
      if (j == m - 1) {
        // Gradients are FINAL only on the last microbatch: record each
        // notification's stage + offset into that stage's backward chunk,
        // the inputs of the per-stage DP bucket schedule below.
        params.set_grad_ready_callback([&](const layers::ParamRange& range) {
          if (range.empty()) return;
          const size_t lo = params.grad_byte_span(range.begin).first;
          const size_t hi = params.grad_byte_span(range.end - 1).second;
          const int stage = layers::stage_of_byte(spans, lo);
          LS2_CHECK(stage >= 0) << "grad-ready range outside the stage plan";
          notified.push_back({stage, lo, hi, dev.clock_us() - chunk_begin});
        });
      }
      {
        simgpu::ScopedRange r(dev, "forward");
        chunk_open = false;  // the model's pp_enter(0, true) opens stage 0
        result = model.forward(ctx, mb);
        if (chunk_open) {
          fdur[su(cur_stage)][su(j)] += dev.clock_us() - chunk_begin;
        }
        chunk_open = false;
      }
      {
        simgpu::ScopedRange r(dev, "backward");
        model.backward(ctx);
        if (chunk_open) {
          bdur[su(cur_stage)][su(j)] += dev.clock_us() - chunk_begin;
        }
        chunk_open = false;
      }
    }
    params.clear_grad_ready_callback();
    if constexpr (requires { result.tokens; }) {
      result.tokens = denom;  // the last microbatch's carry holds the global sum
    }

    // Close the static region (same discipline as the non-PP step).
    if (graph_action == GraphAction::kCapture) {
      session.store_graph(dev.end_capture());
      graph_guard.active = false;
    } else if (graph_action == GraphAction::kReplay) {
      dev.end_replay();
      graph_guard.active = false;
    }

    // --- reconstruct the 1F1B schedule from the measured chunks ---
    dist::PipelineScheduleInput sin;
    sin.stages = pp;
    sin.microbatches = m;
    sin.f = fdur;
    sin.b = bdur;
    for (int s = 0; s + 1 < pp; ++s) {
      sin.fwd_p2p_us.push_back(pgroup.stage_send_us(fwd_bytes[su(s)], s, dev.profile()));
      sin.bwd_p2p_us.push_back(pgroup.stage_send_us(bwd_bytes[su(s)], s, dev.profile()));
    }
    const dist::PipelineSchedule sched = dist::solve_1f1b(sin);
    for (int j = 0; j < m; ++j) {
      times.forward_us += fdur[0][su(j)];
      times.backward_us += bdur[0][su(j)];
    }
    times.pp_bubble_us = sched.lanes[0].bubble_us;
    times.pp_exposed_us = sched.lanes[0].comm_idle_us;
    times.pp_comm_us = m * (sin.fwd_p2p_us[0] + sin.bwd_p2p_us[0]);

    std::vector<double> bstart_last(su(pp), 0.0), bend_last(su(pp), 0.0);
    for (int s = 0; s < pp; ++s) {
      for (const dist::PipelineChunk& c : sched.lanes[su(s)].chunks) {
        if (!c.forward && c.microbatch == m - 1) {
          bstart_last[su(s)] = c.begin_us;
          bend_last[su(s)] = c.end_us;
        }
      }
    }

    // Tied embedding table: declared on stage 0, last written by the final
    // stage's criterion backward — its accumulated gradient rides one extra
    // p2p hop home before stage 0's bucket can ring.
    double tied_arrival = -1.0;
    size_t tied_lo = 0, tied_hi = 0;
    if (plan.tied_table_bytes > 0) {
      const double hop =
          pgroup.send_us(plan.tied_table_bytes, pgroup.rank_of(0, pp - 1, 0),
                         pgroup.rank_of(0, 0, 0), dev.profile());
      tied_arrival = bend_last[su(pp - 1)] + hop;
      times.pp_comm_us += hop;
      std::tie(tied_lo, tied_hi) = params.grad_byte_span(plan.tied_param.index);
    }

    // --- per-stage DP sync + pipelined range-granular update ---
    const bool sync_needed = cluster.dp_size() > 1;
    struct PpBucket {
      int stage;
      size_t lo, hi;
      double ready_us;
      double done_us = 0;  ///< ring completion on the stage's comm lane
    };
    std::vector<PpBucket> buckets;
    if (sync_needed) {
      const int64_t cap = dist::effective_bucket_bytes(cluster, dev.profile());
      for (const NotifyEvent& e : notified) {
        const double ready = bstart_last[su(e.stage)] + e.offset;
        PpBucket* back = buckets.empty() ? nullptr : &buckets.back();
        const bool adjacent =
            back && back->stage == e.stage && (e.hi == back->lo || e.lo == back->hi);
        if (adjacent && static_cast<int64_t>(std::max(back->hi, e.hi) -
                                             std::min(back->lo, e.lo)) <= cap) {
          back->lo = std::min(back->lo, e.lo);
          back->hi = std::max(back->hi, e.hi);
          back->ready_us = std::max(back->ready_us, ready);
        } else {
          buckets.push_back({e.stage, e.lo, e.hi, ready});
        }
      }
      for (PpBucket& bk : buckets) {
        if (tied_arrival >= 0 && bk.stage == 0 && bk.lo < tied_hi && tied_lo < bk.hi) {
          bk.ready_us = std::max(bk.ready_us, tied_arrival);
        }
      }
      size_t covered = 0;
      for (const PpBucket& bk : buckets) covered += bk.hi - bk.lo;
      LS2_CHECK(covered == params.flat_grad_bytes())
          << "grad-ready notifications tile " << covered << " of "
          << params.flat_grad_bytes() << " gradient bytes";
    } else {
      for (int s = 0; s < pp; ++s) {
        for (const auto& [lo, hi] : spans[su(s)]) buckets.push_back({s, lo, hi, 0.0});
      }
    }

    // Each stage is a different rank: its bucket rings serialize on its OWN
    // comm lane, independent of the other stages'.
    std::vector<double> comm_clock(su(pp), 0.0);
    double ring0_us = 0;
    int64_t stage0_bytes = 0;
    for (const auto& [lo, hi] : spans[0]) stage0_bytes += static_cast<int64_t>(hi - lo);
    // A stragglered link stretches every analytic DP ring this step, exactly
    // as Device::enqueue_comm stretches real comm-stream transfers.
    const double link_factor =
        dev.fault_injector() != nullptr ? dev.fault_injector()->comm_factor() : 1.0;
    if (sync_needed) {
      for (PpBucket& bk : buckets) {
        const int64_t wire = dist::wire_payload_bytes(
            static_cast<int64_t>(bk.hi - bk.lo), params.dtype(), cluster.wire_dtype);
        const double ring =
            dist::ring_allreduce_us(wire, cluster, dev.profile()) * link_factor;
        double& lane = comm_clock[su(bk.stage)];
        lane = std::max(lane, bk.ready_us) + ring;
        bk.done_us = lane;
        if (bk.stage == 0) {
          ring0_us += ring;
          times.wire_bytes += wire;
        }
      }
      times.sync_blocking_us = dist::ring_allreduce_us(
          dist::wire_payload_bytes(stage0_bytes, params.dtype(), cluster.wire_dtype),
          cluster, dev.profile());
    }

    // The PP engine's DP sync is analytic (comm_clock lanes above, no device
    // comm-stream calls), so the failure-detection sync point fires
    // explicitly here — the boundary where averaged gradients materialize.
    dev.at_sync_point("synchronize");

    // Updates execute for real over every stage's ranges (the numerics need
    // the whole model updated; step_range is order-independent), while the
    // StepTimes lane tracks only stage 0: wait for each stage-0 bucket's
    // ring, then its update — pipelined exactly like the non-PP path.
    trainer.begin_step();
    double cursor = bend_last[0];  // stage 0's compute lane ends its 1F1B step
    const double comm_drain0 = comm_clock[0];
    double update0_us = 0;
    {
      simgpu::ScopedRange r(dev, "update");
      for (const PpBucket& bk : buckets) {
        const double u0 = dev.clock_us();
        trainer.step_range(kc, bk.lo, bk.hi);
        const double dur = dev.clock_us() - u0;
        if (bk.stage != 0) continue;
        if (sync_needed) {
          times.sync_us += std::max(0.0, bk.done_us - cursor);
          cursor = std::max(cursor, bk.done_us);
        }
        times.update_overlapped_us +=
            std::max(0.0, std::min(cursor + dur, comm_drain0) - cursor);
        cursor += dur;
        update0_us += dur;
      }
    }
    trainer.end_step();
    times.update_us = update0_us + times.zero_grad_us;
    times.sync_overlapped_us = std::max(0.0, ring0_us - times.sync_us);
    // Detection bookkeeping for the analytic lanes: stage 0's exposed DP
    // wait is what a watchdog would observe at this sync boundary.
    if (dev.fault_injector() != nullptr) {
      dev.fault_injector()->note_exposed_wait(times.sync_us, dev.clock_us());
    }

    if constexpr (requires { model.tp_finish_step(trainer); }) {
      model.tp_finish_step(trainer);
    }

    // --- named trace spans: the reconstructed per-rank 1F1B lanes ---
    if (session.config().record_timeline) {
      simgpu::Timeline& tl = dev.timeline();
      const double base = state->trace_base_us;
      char name[64];
      for (int s = 0; s < pp; ++s) {
        const int pid = pgroup.rank_of(0, s, 0);
        if (!state->trace_named) {
          tl.name_process(pid, "rank " + std::to_string(pid) + " (stage " +
                                   std::to_string(s) + ")");
        }
        for (const dist::PipelineChunk& c : sched.lanes[su(s)].chunks) {
          std::snprintf(name, sizeof(name), "s%d.mb%d.%s", s, c.microbatch,
                        c.forward ? "F" : "B");
          tl.record_span(pid, 0, name, base + c.begin_us, base + c.end_us);
          if (c.forward && s + 1 < pp) {
            std::snprintf(name, sizeof(name), "s%d>s%d.mb%d.act", s, s + 1,
                          c.microbatch);
            tl.record_span(pid, 1, name, base + c.end_us,
                           base + c.end_us + sin.fwd_p2p_us[su(s)]);
          } else if (!c.forward && s > 0) {
            std::snprintf(name, sizeof(name), "s%d>s%d.mb%d.grad", s, s - 1,
                          c.microbatch);
            tl.record_span(pid, 1, name, base + c.end_us,
                           base + c.end_us + sin.bwd_p2p_us[su(s - 1)]);
          }
        }
      }
      state->trace_named = true;
      double extent = std::max(sched.makespan_us, cursor);
      for (double lane : comm_clock) extent = std::max(extent, lane);
      state->trace_base_us = base + extent + 100.0;
    }

    residency.clear();  // before the arena's end-of-step reset
    session.end_step();

    if (tp_group != nullptr) {
      const dist::ProcessGroup::Stats tp1 = tp_group->stats();
      times.tp_comm_us = tp1.comm_us - tp0.comm_us;
      times.tp_exposed_us = tp1.exposed_us - tp0.exposed_us;
      times.tp_bytes = tp1.bytes - tp0.bytes;
    }
    if (obs::MetricsRegistry* mreg = session.metrics()) {
      mreg->counter("train.pp.steps") += 1;
      mreg->histogram("train.step_us").record(times.total_us());
      mreg->histogram("train.forward_us").record(times.forward_us);
      mreg->histogram("train.backward_us").record(times.backward_us);
      mreg->histogram("train.sync_us").record(times.sync_us);
      mreg->histogram("train.update_us").record(times.update_us);
      mreg->histogram("train.pp.bubble_us").record(times.pp_bubble_us);
      mreg->gauge("train.pp.comm_us") = times.pp_comm_us;
      mreg->gauge("train.pp.exposed_us") = times.pp_exposed_us;
    }
    return {times, result};
  }
}

}  // namespace ls2::core::pp_detail
