// LightSeq2 — accelerated Transformer training, reproduced in C++20 on a
// simulated GPU. Umbrella header: include this to use the public API.
//
//   core::Session      — device + memory strategy + system policy
//   core::train_step   — one timed four-stage training step
//   models::*          — Transformer / BERT / GPT-2 / ViT model zoo
//   optim::*           — Torch / Apex / LightSeq2 trainers, LR schedules
//   data::*            — synthetic WMT / WikiText / MRPC / CIFAR workloads
//   dist::*            — all-reduce (real + modeled), data-parallel helpers
//   infer::*           — serving: KV cache, generator, continuous batching
//   obs::*             — telemetry: metrics registry, spans, roofline, SLOs
//
// See README.md for a quickstart and DESIGN.md for the architecture map.
#pragma once

#include "core/capacity_scan.h" // IWYU pragma: export
#include "core/checkpoint.h"    // IWYU pragma: export
#include "core/fault_tolerant.h" // IWYU pragma: export
#include "core/session.h"       // IWYU pragma: export
#include "core/train_step.h"    // IWYU pragma: export
#include "data/synthetic.h"     // IWYU pragma: export
#include "dist/allreduce.h"     // IWYU pragma: export
#include "dist/bucket.h"        // IWYU pragma: export
#include "dist/data_parallel.h" // IWYU pragma: export
#include "dist/failure.h"       // IWYU pragma: export
#include "dist/pipeline.h"      // IWYU pragma: export
#include "dist/process_group.h"    // IWYU pragma: export
#include "dist/tensor_parallel.h"  // IWYU pragma: export
#include "infer/batcher.h"      // IWYU pragma: export
#include "infer/fleet.h"        // IWYU pragma: export
#include "infer/generator.h"    // IWYU pragma: export
#include "infer/kv_cache.h"     // IWYU pragma: export
#include "memory/measuring_allocator.h"  // IWYU pragma: export
#include "models/bert.h"        // IWYU pragma: export
#include "models/checkpoint.h"  // IWYU pragma: export
#include "models/gpt2.h"        // IWYU pragma: export
#include "models/transformer.h" // IWYU pragma: export
#include "models/vit.h"         // IWYU pragma: export
#include "obs/metrics.h"        // IWYU pragma: export
#include "obs/roofline.h"       // IWYU pragma: export
#include "obs/slo.h"            // IWYU pragma: export
#include "obs/span.h"           // IWYU pragma: export
#include "optim/lr_schedule.h"  // IWYU pragma: export
#include "optim/optimizer.h"    // IWYU pragma: export
