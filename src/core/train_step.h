// One timed training step: the four stages of §II-B (forward, backward,
// synchronize, update), each attributed via device ranges — this is what
// regenerates Fig. 3 and every end-to-end speedup figure.
#pragma once

#include <utility>

#include "core/session.h"
#include "dist/allreduce.h"
#include "optim/optimizer.h"

namespace ls2::core {

struct StepTimes {
  double forward_us = 0;
  double backward_us = 0;
  double sync_us = 0;
  double update_us = 0;
  double total_us() const { return forward_us + backward_us + sync_us + update_us; }
};

/// Zero all gradients with charged device kernels: one launch over the flat
/// workspace under LightSeq2, one per tensor for the baselines.
inline void zero_grads_charged(Session& session, layers::ParamRegistry& params) {
  auto& dev = session.device();
  if (params.contiguous()) {
    Tensor flat = params.flat_grads();
    simgpu::KernelDesc d;
    d.name = "ls2.zero_grad";
    d.bytes_written = static_cast<int64_t>(flat.bytes());
    d.mem_efficiency = 0.9;
    dev.launch(d, [&] { flat.zero_(); });
    return;
  }
  for (int i = 0; i < params.size(); ++i) {
    Tensor g = params.grad({i});
    simgpu::KernelDesc d;
    d.name = "torch.zero_grad";
    d.bytes_written = static_cast<int64_t>(g.bytes());
    d.mem_efficiency = 0.7;
    dev.launch(d, [&] { g.zero_(); });
  }
}

/// Run one data-parallel training step on this device; other replicas are
/// assumed identical (their compute time equals ours; the all-reduce time
/// comes from the ring model). Returns per-stage times and the forward
/// result (loss/accuracy struct of the model).
template <typename ModelT, typename BatchT>
auto train_step(Session& session, ModelT& model, const BatchT& batch,
                optim::Optimizer& trainer, const dist::ClusterConfig& cluster = {})
    -> std::pair<StepTimes, decltype(model.forward(session.ctx(), batch))> {
  auto& dev = session.device();
  StepTimes times;

  const double t0 = dev.clock_us();
  zero_grads_charged(session, model.params());
  decltype(model.forward(session.ctx(), batch)) result;
  {
    simgpu::ScopedRange r(dev, "forward");
    result = model.forward(session.ctx(), batch);
  }
  const double t1 = dev.clock_us();
  {
    simgpu::ScopedRange r(dev, "backward");
    model.backward(session.ctx());
  }
  const double t2 = dev.clock_us();
  {
    simgpu::ScopedRange r(dev, "synchronize");
    if (cluster.total_gpus() > 1) {
      const int64_t grad_bytes = model.params().total_elements() *
                                 static_cast<int64_t>(dtype_size(model.params().dtype()));
      dev.advance(dist::ring_allreduce_us(grad_bytes, cluster, dev.profile()),
                  /*busy=*/true, "synchronize");
    }
  }
  const double t3 = dev.clock_us();
  {
    simgpu::ScopedRange r(dev, "update");
    trainer.step(session.ctx().kern);
  }
  const double t4 = dev.clock_us();
  session.end_step();

  times.forward_us = t1 - t0;  // includes the zero-grad kernels
  times.backward_us = t2 - t1;
  times.sync_us = t3 - t2;
  times.update_us = t4 - t3;
  return {times, result};
}

}  // namespace ls2::core
