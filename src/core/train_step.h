// One timed training step: the four stages of §II-B (forward, backward,
// synchronize, update), each attributed via device ranges — this is what
// regenerates Fig. 3 and every end-to-end speedup figure.
//
// The step is a three-lane pipeline. Compute (zero-grad, forward, backward,
// update) runs on the compute stream; gradient synchronization runs on the
// communication stream. With `cluster.overlap` (the default), the flat
// gradient buffer is partitioned into size-capped buckets in grad-ready
// order (dist/bucket.h) and each bucket's ring all-reduce is enqueued as
// soon as the layers owning it finish their backward — so most of the
// communication is hidden under backward. With `cluster.pipeline_update`
// (also the default), the third lane kicks in: as each bucket's all-reduce
// lands, that bucket's optimizer update (`Optimizer::step_range`) is
// launched on the compute stream immediately — update work that used to sit
// serially after the full comm drain now overlaps the remaining transfers,
// and only the tail bucket's wait + update stay fully exposed.
// `StepTimes::sync_us` is the exposed, critical-path wait; hidden comm is
// `sync_overlapped_us`, and the update time that ran while the comm stream
// was still draining is `update_overlapped_us` (informational — it is
// contained in `update_us`; the four stages always sum to the step total).
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "dist/allreduce.h"
#include "dist/bucket.h"
#include "obs/span.h"
#include "optim/optimizer.h"

namespace ls2::core {

struct StepTimes {
  double forward_us = 0;
  double backward_us = 0;
  double sync_us = 0;    ///< EXPOSED synchronize time (critical path)
  double update_us = 0;  ///< trainer step + gradient zeroing
  /// Informational sub-component of update_us: zeroing the gradient buffers
  /// (its own "zero_grad" device range; charged to the update stage so the
  /// four stages still sum to the step total).
  double zero_grad_us = 0;
  /// Comm time hidden under backward or under per-bucket updates (runs
  /// concurrently; not in total_us).
  double sync_overlapped_us = 0;
  /// Informational sub-component of update_us: optimizer time that ran while
  /// the comm stream was still draining later buckets (the pipelined-update
  /// lane; 0 without cluster.pipeline_update).
  double update_overlapped_us = 0;
  /// What one blocking ring over all gradients would have cost.
  double sync_blocking_us = 0;
  /// Modeled gradient payload this rank put on the ring, at the wire dtype
  /// (ClusterConfig::wire_dtype; kF16 halves the FP32-wire default).
  int64_t wire_bytes = 0;
  /// This step replayed the session's captured StepGraph: the
  /// zero-grad/forward/backward region ran as ONE graph launch with no
  /// per-kernel launch gaps (SessionConfig::graph_capture).
  bool replayed = false;
  // --- tensor parallelism (DESIGN §7; 0 when cluster.tensor_parallel == 1).
  // TP collectives run inside forward/backward on the comm stream; their
  // exposed waits are already contained in forward_us/backward_us.
  double tp_comm_us = 0;     ///< TP collective time enqueued this step
  double tp_exposed_us = 0;  ///< portion the compute stream waited on
  int64_t tp_bytes = 0;      ///< logical TP payload bytes this step
  // --- pipeline parallelism (DESIGN §9; 0 when cluster.pipeline_parallel
  // == 1). All three describe rank 0's (stage 0's) 1F1B lane: forward_us /
  // backward_us above hold only stage 0's compute chunks, so the lane's
  // idle time is reported separately and total_us() stays rank 0's wall
  // clock.
  double pp_bubble_us = 0;   ///< 1F1B schedule idle on the rank-0 lane
  double pp_comm_us = 0;     ///< boundary p2p time touching rank 0
  double pp_exposed_us = 0;  ///< p2p waits on the rank-0 critical path
  double total_us() const {
    return forward_us + backward_us + sync_us + update_us + pp_bubble_us +
           pp_exposed_us;
  }
};

/// Zero all gradients with charged device kernels: one launch over the flat
/// workspace under LightSeq2, one per tensor for the baselines.
inline void zero_grads_charged(Session& session, layers::ParamRegistry& params) {
  LS2_CHECK(params.materialized()) << "zero_grads_charged before materialize";
  auto& dev = session.device();
  if (params.contiguous()) {
    Tensor flat = params.flat_grads();
    simgpu::KernelDesc d;
    d.name = "ls2.zero_grad";
    d.bytes_written = static_cast<int64_t>(flat.bytes());
    d.mem_efficiency = 0.9;
    dev.launch(d, [&] { flat.zero_(); });
    return;
  }
  for (int i = 0; i < params.size(); ++i) {
    Tensor g = params.grad({i});
    simgpu::KernelDesc d;
    d.name = "torch.zero_grad";
    d.bytes_written = static_cast<int64_t>(g.bytes());
    d.mem_efficiency = 0.7;
    dev.launch(d, [&] { g.zero_(); });
  }
}

namespace pp_detail {
/// 1F1B pipeline-parallel step (core/pp_step.h, included at the bottom of
/// this header): slices the batch into cluster.microbatches microbatches,
/// drives each through the full model with per-stage boundary accounting,
/// and reconstructs the 1F1B schedule for StepTimes.
template <typename ModelT, typename BatchT>
auto train_step_pp(Session& session, ModelT& model, const BatchT& batch,
                   optim::Optimizer& trainer, const dist::ClusterConfig& cluster)
    -> std::pair<StepTimes,
                 decltype(std::declval<ModelT&>().forward(
                     std::declval<Session&>().ctx(), std::declval<const BatchT&>()))>;
}  // namespace pp_detail

/// Run one data-parallel training step on this device; other replicas are
/// assumed identical (their compute time equals ours; the all-reduce time
/// comes from the ring model). Returns per-stage times and the forward
/// result (loss/accuracy struct of the model).
template <typename ModelT, typename BatchT>
auto train_step(Session& session, ModelT& model, const BatchT& batch,
                optim::Optimizer& trainer, const dist::ClusterConfig& cluster = {})
    -> std::pair<StepTimes, decltype(model.forward(session.ctx(), batch))> {
  if (cluster.pipeline_parallel > 1) {
    return pp_detail::train_step_pp(session, model, batch, trainer, cluster);
  }
  auto& dev = session.device();
  StepTimes times;
  // Telemetry envelope: the whole-step trace span. attribute=false — it
  // must NOT become a device range, or it would absorb the attribution of
  // the stage ranges below (innermost wins) and change the Fig. 3 sums.
  obs::SpanScope step_span(dev, "step", /*pid=*/0, /*tid=*/0,
                           /*attribute=*/false);
  // Hybrid data x model parallel composition: the model's TP collectives
  // charge through the session context's ProcessGroup, and the gradient
  // ring below runs over the dp_size() replicas of this shard. The three
  // TP settings (cluster, session ProcessGroup, model config) must agree
  // in BOTH directions — a half-wired setup would silently mis-account
  // the very numbers this step reports.
  dist::ProcessGroup* tp_group = session.ctx().tp_group;
  LS2_CHECK((tp_group != nullptr ? tp_group->tp_size() : 1) == cluster.tensor_parallel)
      << "cluster.tensor_parallel = " << cluster.tensor_parallel
      << " but the session's ProcessGroup is "
      << (tp_group ? std::to_string(tp_group->tp_size()) : std::string("absent"))
      << " — install a matching group as session.ctx().tp_group";
  if constexpr (requires { model.config().tp.size; }) {
    LS2_CHECK(model.config().tp.size == cluster.tensor_parallel)
        << "model was built with tp.size = " << model.config().tp.size
        << " but cluster.tensor_parallel = " << cluster.tensor_parallel;
  }
  const dist::ProcessGroup::Stats tp0 =
      tp_group ? tp_group->stats() : dist::ProcessGroup::Stats{};
  // Per-step prologue: advances the RNG step offset (the per-step graph
  // parameter) and picks eager / capture / replay for the static region.
  const GraphAction graph_action = session.begin_step();
  const bool sync_needed = cluster.dp_size() > 1;
  const bool overlap = sync_needed && cluster.overlap;
  const bool pipeline = overlap && cluster.pipeline_update;
  const int64_t grad_bytes = static_cast<int64_t>(model.params().flat_grad_bytes());
  const int64_t ring_bytes =
      sync_needed ? dist::wire_payload_bytes(grad_bytes, model.params().dtype(),
                                             cluster.wire_dtype)
                  : 0;
  times.wire_bytes = ring_bytes;
  times.sync_blocking_us =
      sync_needed ? dist::ring_allreduce_us(ring_bytes, cluster, dev.profile()) : 0.0;

  // The static region — zero-grad, forward, backward, and the comm enqueues
  // fired from backward — is what gets captured into / replayed from the
  // step graph. Everything after backward (bucket waits, optimizer ranges,
  // scaler decisions) is dynamic and stays outside the graph. The guard
  // abandons a half-open capture/replay if the step unwinds (e.g. OOM).
  struct GraphRegionGuard {
    simgpu::Device& dev;
    bool active = false;
    ~GraphRegionGuard() {
      if (active) dev.abort_graph();
    }
  } graph_guard{dev};

  // Stage 0 — zero gradients (own device range; charged to update below).
  // The graph region opens INSIDE the zero_grad range so the one-time
  // graph-launch overhead of a replay is attributed there — both the
  // StepTimes stage windows and the per-range (Fig. 3) sums still cover
  // the whole step.
  const double tz = dev.clock_us();
  {
    obs::SpanScope r(dev, "zero_grad");
    if (graph_action == GraphAction::kCapture) {
      dev.begin_capture();
      graph_guard.active = true;
    } else if (graph_action == GraphAction::kReplay) {
      dev.begin_replay(*session.step_graph());
      graph_guard.active = true;
      times.replayed = true;
    }
    zero_grads_charged(session, model.params());
  }
  const double t0 = dev.clock_us();
  times.zero_grad_us = t0 - tz;

  // The scheduler owns the registry's grad-ready callback for this step and
  // enqueues each completed bucket's all-reduce on the comm stream. With
  // pipelining it also reports each bucket's completion time, so the update
  // lane below can start that bucket's optimizer work the moment it lands.
  struct LandedBucket {
    size_t byte_begin, byte_end;
    double done_us;
  };
  std::vector<LandedBucket> landed;
  std::optional<dist::OverlapScheduler> scheduler;
  if (overlap) {
    scheduler.emplace(model.params(), dev, cluster, session.metrics());
    if (pipeline) {
      scheduler->set_bucket_done_callback(
          [&landed](const dist::GradBucket& b, double done_us) {
            landed.push_back({b.byte_begin, b.byte_end, done_us});
          });
    }
  }

  // Stage 1 — forward. The criterion multiplies the trainer's expected loss
  // scale into the backward seed (mixed-precision discipline); the trainer
  // divides it back out in the update.
  session.ctx().loss_scale = trainer.loss_scale();
  decltype(model.forward(session.ctx(), batch)) result;
  {
    obs::SpanScope r(dev, "forward");
    result = model.forward(session.ctx(), batch);
  }
  const double t1 = dev.clock_us();

  // Stage 2 — backward; bucket all-reduces launch concurrently as layers
  // report their gradients final.
  {
    obs::SpanScope r(dev, "backward");
    model.backward(session.ctx());
  }
  const double t2 = dev.clock_us();

  // Close the static region: deposit the captured graph (or its poison
  // diagnostic) with the session, or finish consuming the replayed one. The
  // guard is deactivated only AFTER the close succeeds — end_replay throws
  // on a node-count mismatch, and the device must not be left mid-replay.
  if (graph_action == GraphAction::kCapture) {
    session.store_graph(dev.end_capture());
    graph_guard.active = false;
  } else if (graph_action == GraphAction::kReplay) {
    dev.end_replay();
    graph_guard.active = false;
  }

  if (pipeline) {
    // Stages 3+4 interleaved — per-bucket: wait for the bucket's transfer
    // (exposed sync), then run its optimizer range update (update lane,
    // overlapping the comm stream's later transfers).
    trainer.begin_step();
    {
      obs::SpanScope r(dev, "synchronize");
      scheduler->finish();  // tail buckets: ready only now that backward ended
    }
    const double comm_drain_us = dev.comm_clock_us();
    double update_work_us = 0;
    for (const LandedBucket& b : landed) {
      dev.wait_comm_until(b.done_us, "synchronize");
      obs::SpanScope r(dev, "update");
      const double u0 = dev.clock_us();
      trainer.step_range(session.ctx().kern, b.byte_begin, b.byte_end);
      const double u1 = dev.clock_us();
      update_work_us += u1 - u0;
      times.update_overlapped_us += std::max(0.0, std::min(u1, comm_drain_us) - u0);
    }
    dev.sync_comm("synchronize");  // residual drain (normally zero)
    trainer.end_step();
    const double enqueued_us = scheduler->enqueued_us();
    scheduler.reset();
    const double t4 = dev.clock_us();
    times.sync_us = (t4 - t2) - update_work_us;
    times.sync_overlapped_us = std::max(0.0, enqueued_us - times.sync_us);
    times.update_us = update_work_us + times.zero_grad_us;
  } else {
    // Stage 3 — synchronize: drain the comm stream (overlapped) or run one
    // blocking ring over the whole gradient buffer.
    {
      obs::SpanScope r(dev, "synchronize");
      if (overlap) {
        scheduler->finish();  // tail buckets: ready only now that backward ended
        const double exposed = dev.sync_comm("synchronize");
        times.sync_overlapped_us = std::max(0.0, scheduler->enqueued_us() - exposed);
      } else {
        // The blocking ring (and the DP=1 no-op) never touches the comm
        // stream, so the failure-detection sync point must fire explicitly.
        dev.at_sync_point("synchronize");
        if (sync_needed) {
          dev.advance(times.sync_blocking_us, /*busy=*/true, "synchronize");
        }
      }
    }
    scheduler.reset();
    const double t3 = dev.clock_us();

    // Stage 4 — update.
    {
      obs::SpanScope r(dev, "update");
      trainer.step(session.ctx().kern);
    }
    const double t4 = dev.clock_us();
    times.sync_us = t3 - t2;
    times.update_us = (t4 - t3) + times.zero_grad_us;
  }
  // TP epilogue: mirror the update onto the simulated peer shards (host
  // bookkeeping on a private device — charges nothing here; a no-op when
  // TP is off or peers are not simulated).
  if constexpr (requires { model.tp_finish_step(trainer); }) {
    model.tp_finish_step(trainer);
  }
  session.end_step();

  if (tp_group != nullptr) {
    const dist::ProcessGroup::Stats tp1 = tp_group->stats();
    times.tp_comm_us = tp1.comm_us - tp0.comm_us;
    times.tp_exposed_us = tp1.exposed_us - tp0.exposed_us;
    times.tp_bytes = tp1.bytes - tp0.bytes;
  }
  times.forward_us = t1 - t0;
  times.backward_us = t2 - t1;
  if (obs::MetricsRegistry* m = session.metrics()) {
    m->counter("train.steps") += 1;
    if (times.replayed) m->counter("train.replayed_steps") += 1;
    m->counter("train.wire_bytes") += times.wire_bytes;
    m->histogram("train.step_us").record(times.total_us());
    m->histogram("train.forward_us").record(times.forward_us);
    m->histogram("train.backward_us").record(times.backward_us);
    m->histogram("train.sync_us").record(times.sync_us);
    m->histogram("train.update_us").record(times.update_us);
    m->gauge("train.sync_overlapped_us") = times.sync_overlapped_us;
    m->gauge("train.sync_blocking_us") = times.sync_blocking_us;
  }
  return {times, result};
}

}  // namespace ls2::core

// The pipeline-parallel engine needs StepTimes/Session/zero_grads_charged
// from above; including it here (instead of the other way round) keeps
// train_step the single entry point.
#include "core/pp_step.h"  // IWYU pragma: keep
