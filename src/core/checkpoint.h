// Asynchronous in-memory checkpointing (DESIGN.md §10).
//
// Every `checkpoint_every` steps the trainer's recovery-critical state —
// parameter values (via the ParamRegistry), trainer-owned masters/moments
// (Optimizer::state_tensors), the GradScaler dynamics, and the step counter
// that seeds the (seed, step, site) counter-RNG — is snapshotted:
//
//   1. a device-side STAGING copy ("ls2.checkpoint_stage") runs on the
//      compute stream — brief, bandwidth-bound, the only part the step
//      blocks on (real async checkpointers stage into a pinned buffer so
//      the optimizer may overwrite params immediately);
//   2. the drain to host rides the COMM stream (enqueue_comm at PCIe
//      bandwidth), overlapping the next steps' compute exactly like
//      gradient all-reduce does. The snapshot is only USABLE once that
//      transfer's completion time has passed — a failure that lands before
//      the drain finishes falls back to the previous snapshot, which is why
//      the checkpointer double-buffers.
//
// Snapshots are raw byte blobs (bitwise, dtype-opaque), so a restore into a
// rebuilt world reproduces the exact FP16/FP32 bit patterns — combined with
// the counter-RNG discipline this is what makes rollback-and-replay
// bitwise-identical to the fault-free run (tests/fault_tolerance_test.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "core/session.h"
#include "layers/params.h"
#include "optim/optimizer.h"

namespace ls2::core {

struct CheckpointSnapshot {
  int64_t step = -1;   ///< global step index this snapshot was taken AFTER
  double ready_us = 0; ///< comm-stream time the host drain completes
  std::vector<std::vector<unsigned char>> params;     ///< per registry tensor
  std::vector<std::vector<unsigned char>> opt_state;  ///< per trainer state tensor
  optim::GradScaler::State scaler;
  bool has_scaler = false;
  int64_t trainer_steps = 0;
  bool valid() const { return step >= 0; }
};

class AsyncCheckpointer {
 public:
  explicit AsyncCheckpointer(int64_t every) : every_(every) {}

  int64_t every() const { return every_; }
  /// True when `completed_step` (0-based, just finished) is on the cadence.
  bool due(int64_t completed_step) const {
    return every_ > 0 && (completed_step + 1) % every_ == 0;
  }

  /// Take a snapshot of the world after `completed_step`: charges the
  /// staging kernel on the compute stream and the host drain on the comm
  /// stream; copies the bytes host-side (skipped in kModelOnly, where the
  /// timing is the product). Call after Session::end_step.
  void snapshot(Session& session, const layers::ParamRegistry& params,
                const optim::Optimizer& trainer, int64_t completed_step);

  /// Latest snapshot whose host drain completed by `clock_us` — nullptr when
  /// no snapshot is usable yet. `clock_us` should be the failing device's
  /// comm-or-compute clock at failure time: an in-flight drain is NOT usable.
  const CheckpointSnapshot* latest_ready(double clock_us) const;

  /// Failure bookkeeping: drop snapshots whose drain had not completed at
  /// `fail_clock_us` (their device-side staging died with the device) and
  /// mark survivors immediately ready — the rebuilt world's clock restarts,
  /// so stale ready times must not gate them.
  void on_failure(double fail_clock_us);

  /// Restore `snap` into a (typically rebuilt) world: parameter bytes,
  /// trainer state tensors, scaler dynamics, and step counters; charges the
  /// host-to-device upload as idle time ("fault.restore"). The caller
  /// rewinds the session (Session::rewind_to_step) to snap.step.
  static void restore(const CheckpointSnapshot& snap, Session& session,
                      const layers::ParamRegistry& params, optim::Optimizer& trainer);

  // --- serving-side (params-only) snapshots -------------------------------
  //
  // A serving replica has no trainer: its recovery-critical state is the
  // parameter bytes alone (KV contents are per-request and regenerable from
  // the counter-RNG + prompt prefix). These are what the fleet's rolling
  // reload drains from / restores into (src/infer/fleet.cc).

  /// Snapshot just the parameter registry: same two-phase cost model as
  /// snapshot() — D2D stage on the compute stream, host drain on the comm
  /// stream (ready_us gates usability exactly like the trainer-side path).
  static CheckpointSnapshot snapshot_params(Session& session,
                                           const layers::ParamRegistry& params);

  /// Restore parameter bytes into a LIVE replica (no trainer, no session
  /// rewind): bitwise unstage + the honest host-to-device upload charge
  /// ("fleet.reload"). The replica must be drained of residents first —
  /// in-flight sequences would straddle two model versions.
  static void restore_params(const CheckpointSnapshot& snap, Session& session,
                             const layers::ParamRegistry& params);

  int64_t snapshots_taken() const { return snapshots_taken_; }
  int64_t snapshot_bytes() const { return snapshot_bytes_; }

 private:
  int64_t every_ = 0;
  // Double buffer: [0] = previous (always drained), [1] = latest (possibly
  // still in flight on the comm stream).
  std::vector<CheckpointSnapshot> ring_;
  int64_t snapshots_taken_ = 0;
  int64_t snapshot_bytes_ = 0;  ///< bytes per snapshot (set on first take)
};

}  // namespace ls2::core
