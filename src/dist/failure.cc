#include "dist/failure.h"

#include <algorithm>

#include "common/check.h"

namespace ls2::dist {

HeartbeatConfig HeartbeatConfig::from_millis(int ranks, double interval_ms,
                                             double timeout_ms) {
  LS2_CHECK(interval_ms > 0 && timeout_ms > 0)
      << "heartbeat interval/timeout must be positive";
  LS2_CHECK(timeout_ms >= interval_ms)
      << "a timeout shorter than the scan interval suspects every rank";
  HeartbeatConfig hc;
  hc.ranks = ranks;
  hc.interval = std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(interval_ms)));
  hc.timeout = std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(timeout_ms)));
  return hc;
}

HeartbeatMonitor::HeartbeatMonitor(HeartbeatConfig cfg) : cfg_(cfg) {
  LS2_CHECK(cfg_.ranks >= 1) << "heartbeat monitor needs at least one rank";
  LS2_CHECK(cfg_.timeout.count() > 0 && cfg_.interval.count() > 0);
}

HeartbeatMonitor::~HeartbeatMonitor() { stop(); }

void HeartbeatMonitor::start() {
  std::unique_lock<std::mutex> lock(mu_);
  LS2_CHECK(!running_) << "heartbeat monitor already running";
  running_ = true;
  const auto now = Clock::now();
  last_beat_.assign(static_cast<size_t>(cfg_.ranks), now);
  suspected_.assign(static_cast<size_t>(cfg_.ranks), false);
  suspect_events_ = 0;
  scans_ = 0;
  lock.unlock();
  watcher_ = std::thread([this] { watch(); });
}

void HeartbeatMonitor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
}

void HeartbeatMonitor::beat(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  LS2_CHECK(rank >= 0 && rank < cfg_.ranks) << "beat from unknown rank " << rank;
  last_beat_[static_cast<size_t>(rank)] = Clock::now();
  // A late beat clears the suspicion: the rank was stalled, not dead.
  suspected_[static_cast<size_t>(rank)] = false;
}

std::vector<int> HeartbeatMonitor::suspected() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (int r = 0; r < cfg_.ranks; ++r)
    if (suspected_[static_cast<size_t>(r)]) out.push_back(r);
  return out;
}

bool HeartbeatMonitor::any_suspected() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (bool s : suspected_)
    if (s) return true;
  return false;
}

int64_t HeartbeatMonitor::suspect_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suspect_events_;
}

int64_t HeartbeatMonitor::scans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scans_;
}

void HeartbeatMonitor::watch() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    cv_.wait_for(lock, cfg_.interval, [this] { return !running_; });
    if (!running_) break;
    ++scans_;
    const auto now = Clock::now();
    std::vector<int> newly;
    for (int r = 0; r < cfg_.ranks; ++r) {
      const size_t i = static_cast<size_t>(r);
      if (!suspected_[i] && now - last_beat_[i] > cfg_.timeout) {
        suspected_[i] = true;
        ++suspect_events_;
        newly.push_back(r);
      }
    }
    if (on_suspect_ && !newly.empty()) {
      // Callback runs unlocked: it may call back into suspected()/beat().
      lock.unlock();
      for (int r : newly) on_suspect_(r);
      lock.lock();
    }
  }
}

}  // namespace ls2::dist
