// All-reduce: the arithmetic (real, host-executed — used by the replica
// tests) and the analytical ring cost model (used by the simulated device
// for Fig. 3's synchronize stage and Fig. 22's scaling study).
//
// The cost model is the standard ring all-reduce: each of the N participants
// sends 2*(N-1) chunks of size bytes/N, so the wire time is
//     2 * (N-1)/N * bytes / bus_bandwidth  +  2*(N-1) * step_latency.
// Within one node the ring runs over NVLink; as soon as a second node is
// involved the inter-node fabric (InfiniBand) is the bottleneck link and the
// whole ring is paced by it — which is why Fig. 22's speedups shrink as
// nodes are added.
#pragma once

#include <cstdint>
#include <vector>

#include "simgpu/profile.h"
#include "tensor/tensor.h"

namespace ls2::dist {

/// Data-parallel cluster shape: `nodes` machines of `gpus_per_node` GPUs.
/// This device simulates rank 0; the other replicas are assumed identical
/// (same compute time), so only the all-reduce cost is added.
struct ClusterConfig {
  int gpus_per_node = 1;
  int nodes = 1;
  /// Overlap bucketed gradient all-reduce with the backward pass (the DDP
  /// strategy). false => one blocking ring after backward completes.
  bool overlap = true;
  /// Apply the optimizer per communication bucket as each all-reduce lands
  /// (Optimizer::step_range on the compute stream), instead of one
  /// monolithic update after the comm stream drains. Only takes effect with
  /// `overlap`; false reproduces the serial synchronize-then-update schedule.
  bool pipeline_update = true;
  /// Gradient bucket size cap for the overlapped path (bytes). 25 MB is the
  /// PyTorch-DDP default; smaller buckets start communicating earlier but
  /// pay the per-ring latency more often.
  int64_t bucket_bytes = 25 * 1024 * 1024;
  /// Dtype of the gradient payload ON THE WIRE. The numerically safe default
  /// is FP32 (gradients are up-cast before transmission, matching
  /// allreduce_average's FP32-accumulation contract); kF16 sends half the
  /// bytes — the Fig. 6(b) on-the-fly-conversion trick applied to the ring —
  /// with reduction accumulators still FP32, at the cost of one FP16
  /// rounding per hop. Pair FP16 wire with dynamic loss scaling
  /// (OptimConfig::dynamic_loss_scale) so overflows are caught per bucket.
  DType wire_dtype = DType::kF32;
  /// Tensor-parallel degree (DESIGN.md §7): each replica's layers are
  /// sharded Megatron-style across this many GPUs of one node, and the
  /// remaining factor total_gpus()/tensor_parallel is the data-parallel
  /// replica count. Must divide gpus_per_node — a TP group's collectives
  /// stay on the intra-node NVLink ring and never cross the fabric.
  int tensor_parallel = 1;
  /// Pipeline-parallel degree (DESIGN.md §9): the model's layers are
  /// partitioned across this many consecutive stages driven by a 1F1B
  /// microbatch schedule, the third orthogonal axis of the 3D layout
  /// rank = ((dp * pp) + pp_rank) * tp + tp_rank. PP neighbors are
  /// adjacent ranks (stride tensor_parallel) so the large activation
  /// sends ride the cheapest links available.
  int pipeline_parallel = 1;
  /// Microbatches per step under pipeline parallelism (the global batch
  /// is sliced along dim 0; B % microbatches must be 0). More microbatches
  /// shrink the 1F1B bubble fraction (pp-1)/(m+pp-1). Ignored when
  /// pipeline_parallel == 1.
  int microbatches = 1;
  /// Data-parallel replicas LOST to failures and elastically shrunk away
  /// (DESIGN.md §10): the DP ring re-forms over the survivors, the
  /// gradient-averaging denominator becomes the surviving dp_size(), and
  /// training continues degraded instead of aborting. Provisioned shape
  /// knobs above stay untouched — dp_lost is runtime state, set by the
  /// recovery layer, never by hand-written configs.
  int dp_lost = 0;

  int total_gpus() const { return gpus_per_node * nodes; }
  /// Data-parallel replica count of the hybrid 3D layout (survivors only
  /// after an elastic shrink).
  int dp_size() const {
    return total_gpus() / (tensor_parallel * pipeline_parallel) - dp_lost;
  }

  /// Reject inconsistent shapes with a clear message at configuration time
  /// (instead of deep inside a group split): dp x tp x pp must exactly
  /// cover world_size, TP must stay within one node, and the microbatch
  /// count must be sane. Called by ProcessGroup's constructor and
  /// core::train_step; callers building configs by hand can call it early.
  void validate() const;
};

/// Bytes `storage_bytes` of `storage_dtype` gradients occupy on the wire
/// once converted to the cluster's wire dtype: the payload the ring model
/// should be charged for. Halves the ring bytes of an FP16-wire cluster
/// relative to the FP32-wire default.
int64_t wire_payload_bytes(int64_t storage_bytes, DType storage_dtype,
                           DType wire_dtype);

/// The ring's bottleneck bus bandwidth: NVLink within one node, the
/// inter-node fabric as soon as the ring crosses machines. Shared by the
/// ring time model and the bucket-size amortization bound so the two can
/// never disagree about which link paces the ring.
double bottleneck_bus_gb_s(const ClusterConfig& cluster,
                           const simgpu::DeviceProfile& profile);

/// Modeled microseconds for one ring all-reduce of `bytes` gradient bytes
/// over the cluster. Zero when the cluster is a single GPU.
double ring_allreduce_us(int64_t bytes, const ClusterConfig& cluster,
                         const simgpu::DeviceProfile& profile);

/// Average the replica tensors element-wise IN PLACE (every tensor ends up
/// holding the mean). Accumulation is always FP32, so FP16 gradients do not
/// lose low-magnitude contributions (§IV-C's mixed-precision discipline).
/// `wire_dtype` models the payload dtype: kF16 rounds every replica's
/// contribution — and the reduced result — through FP16 on its way across
/// the ring (accumulators stay FP32), exactly what the compressed-comm path
/// does; the default FP32 wire is lossless.
void allreduce_average(const std::vector<Tensor>& replicas,
                       DType wire_dtype = DType::kF32);

/// Element-wise in-place sum across replicas (FP32 accumulation).
void allreduce_sum(const std::vector<Tensor>& replicas,
                   DType wire_dtype = DType::kF32);

}  // namespace ls2::dist
