#include "dist/allreduce.h"

#include "common/check.h"

namespace ls2::dist {

void ClusterConfig::validate() const {
  LS2_CHECK(gpus_per_node >= 1 && nodes >= 1)
      << "cluster shape " << gpus_per_node << "x" << nodes;
  LS2_CHECK(tensor_parallel >= 1) << "tensor_parallel must be positive";
  LS2_CHECK(pipeline_parallel >= 1) << "pipeline_parallel must be positive";
  LS2_CHECK(microbatches >= 1) << "microbatches must be positive";
  LS2_CHECK(gpus_per_node % tensor_parallel == 0)
      << "tensor_parallel " << tensor_parallel << " must divide gpus_per_node "
      << gpus_per_node << " — a TP group never crosses the node boundary";
  const int model = tensor_parallel * pipeline_parallel;
  LS2_CHECK(total_gpus() % model == 0 && total_gpus() >= model)
      << "dp x tp x pp must equal world_size: tp " << tensor_parallel << " x pp "
      << pipeline_parallel << " does not tile the " << total_gpus() << "-GPU cluster ("
      << gpus_per_node << " GPUs x " << nodes << " nodes) — "
      << total_gpus() % model << " ranks would be left over";
  LS2_CHECK(pipeline_parallel == 1 || microbatches >= pipeline_parallel)
      << "pipeline_parallel " << pipeline_parallel << " needs at least that many "
      << "microbatches to fill the pipe (got " << microbatches
      << "); the 1F1B bubble fraction (pp-1)/(m+pp-1) only shrinks with m";
  LS2_CHECK(dp_lost >= 0) << "dp_lost " << dp_lost << " cannot be negative";
  LS2_CHECK(dp_size() >= 1)
      << "elastic shrink lost " << dp_lost << " of "
      << total_gpus() / (tensor_parallel * pipeline_parallel)
      << " data-parallel replicas — no survivors left to train on";
}

double bottleneck_bus_gb_s(const ClusterConfig& cluster,
                           const simgpu::DeviceProfile& profile) {
  return cluster.nodes > 1 ? profile.ib_bus_gb_s : profile.nvlink_bus_gb_s;
}

double ring_allreduce_us(int64_t bytes, const ClusterConfig& cluster,
                         const simgpu::DeviceProfile& profile) {
  LS2_CHECK(bytes >= 0) << "negative all-reduce size";
  LS2_CHECK(cluster.gpus_per_node >= 1 && cluster.nodes >= 1)
      << cluster.gpus_per_node << "x" << cluster.nodes;
  LS2_CHECK(cluster.tensor_parallel >= 1 &&
            cluster.gpus_per_node % cluster.tensor_parallel == 0)
      << "tensor_parallel " << cluster.tensor_parallel << " must divide gpus_per_node "
      << cluster.gpus_per_node;
  // The gradient ring runs over the DATA-parallel group: with hybrid
  // data x model parallelism each rank only syncs its own shard with the
  // dp_size() replicas holding the same shard.
  const int n = cluster.dp_size();
  if (n <= 1 || bytes == 0) return 0.0;
  const double bus_gb_s = bottleneck_bus_gb_s(cluster, profile);
  const double steps = 2.0 * (n - 1);
  const double chunk_bytes = static_cast<double>(bytes) / n;
  // GB/s == bytes/ns => us = bytes / (GB/s * 1e3).
  const double wire_us = steps * chunk_bytes / (bus_gb_s * 1e3);
  return wire_us + steps * profile.allreduce_latency_us;
}

int64_t wire_payload_bytes(int64_t storage_bytes, DType storage_dtype,
                           DType wire_dtype) {
  LS2_CHECK(storage_bytes >= 0) << "negative payload";
  const int64_t selem = static_cast<int64_t>(dtype_size(storage_dtype));
  const int64_t welem = static_cast<int64_t>(dtype_size(wire_dtype));
  LS2_CHECK(storage_bytes % selem == 0)
      << storage_bytes << " bytes not a multiple of " << dtype_name(storage_dtype);
  return storage_bytes / selem * welem;
}

namespace {

/// Round `v` the way the wire would: FP16 payloads lose precision per hop,
/// FP32 payloads are exact.
inline float wire_round(float v, DType wire_dtype) {
  return wire_dtype == DType::kF16 ? static_cast<float>(Half(v)) : v;
}

void accumulate_and_store(const std::vector<Tensor>& replicas, float scale,
                          DType wire_dtype) {
  LS2_CHECK(wire_dtype == DType::kF32 || wire_dtype == DType::kF16)
      << "unsupported wire dtype " << dtype_name(wire_dtype);
  LS2_CHECK(!replicas.empty()) << "allreduce over zero replicas";
  const Tensor& first = replicas.front();
  for (const Tensor& t : replicas) {
    LS2_CHECK(t.defined()) << "allreduce over undefined tensor";
    LS2_CHECK_EQ(t.numel(), first.numel());
    LS2_CHECK(t.dtype() == first.dtype())
        << dtype_name(t.dtype()) << " vs " << dtype_name(first.dtype());
  }
  // Model-only sweeps back tensors with never-committed virtual pages; the
  // arithmetic is skipped there just like every other kernel body.
  for (const Tensor& t : replicas) {
    if (!t.backs_real_memory()) return;
  }
  // to_vector() up-converts FP16 to FP32, so the sum below accumulates in
  // FP32 regardless of the storage dtype; copy_from() converts back. Each
  // replica's contribution is first rounded to the wire dtype (what the
  // hop's payload carries); the accumulator itself stays FP32.
  std::vector<float> acc = first.to_vector();
  for (float& x : acc) x = wire_round(x, wire_dtype);
  for (size_t r = 1; r < replicas.size(); ++r) {
    const std::vector<float> v = replicas[r].to_vector();
    for (size_t i = 0; i < acc.size(); ++i) acc[i] += wire_round(v[i], wire_dtype);
  }
  if (scale != 1.0f) {
    for (float& x : acc) x *= scale;
  }
  // The reduced chunk travels the all-gather phase in the wire dtype too.
  for (float& x : acc) x = wire_round(x, wire_dtype);
  for (const Tensor& t : replicas) t.copy_from(acc);
}

}  // namespace

void allreduce_average(const std::vector<Tensor>& replicas, DType wire_dtype) {
  accumulate_and_store(replicas, 1.0f / static_cast<float>(replicas.size()),
                       wire_dtype);
}

void allreduce_sum(const std::vector<Tensor>& replicas, DType wire_dtype) {
  accumulate_and_store(replicas, 1.0f, wire_dtype);
}

}  // namespace ls2::dist
