// Liveness detection for the process group (DESIGN.md §10).
//
// Two complementary detectors, mirroring production trainers:
//
//  * COLLECTIVE TIMEOUT (modeled time): a rank that stops participating is
//    noticed at the next synchronization point when the wait exceeds
//    SessionConfig::collective_timeout_us — simgpu::FaultInjector charges
//    and reports that path on the simulated clocks.
//  * HEARTBEAT (wall clock, real threads): the elastic agent's side channel.
//    Worker threads beat(rank) on their own cadence; a watcher thread wakes
//    every `interval` and SUSPECTS any rank whose last beat is older than
//    `timeout`. This is the host-side component — it runs on std::thread +
//    mutex + condition_variable for real, which is exactly why the TSan CI
//    lane exercises it (ci.sh --preset tsan).
//
// A suspected rank that beats again is un-suspected (transient stall — the
// collective may still complete); the `suspect_events` counter keeps the
// history so tests can assert a stall was noticed at all.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ls2::dist {

struct HeartbeatConfig {
  int ranks = 1;
  /// Watcher wake-up cadence.
  std::chrono::milliseconds interval{2};
  /// A rank is suspected when its last beat is older than this.
  std::chrono::milliseconds timeout{20};

  /// Build from the SessionConfig knobs (heartbeat_interval_ms /
  /// heartbeat_timeout_ms) — fractional milliseconds round up to 1 ms so a
  /// sub-millisecond knob never degenerates to a zero interval.
  static HeartbeatConfig from_millis(int ranks, double interval_ms, double timeout_ms);
};

class HeartbeatMonitor {
 public:
  explicit HeartbeatMonitor(HeartbeatConfig cfg);
  ~HeartbeatMonitor();

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  /// Spawn the watcher thread. Every rank starts fresh (beat implied now).
  void start();
  /// Stop and join the watcher; idempotent, called by the destructor.
  void stop();

  /// Rank `rank` is alive — callable from any thread, any number of
  /// threads concurrently.
  void beat(int rank);

  /// Ranks currently suspected dead (last beat older than cfg.timeout).
  std::vector<int> suspected() const;
  bool any_suspected() const;
  /// Total rank-enters-suspected transitions observed by the watcher.
  int64_t suspect_events() const;
  /// Watcher wake-ups so far (tests use this to await a scan).
  int64_t scans() const;

  /// Optional notification, invoked FROM THE WATCHER THREAD each time a
  /// rank transitions into the suspected state. Set before start().
  void on_suspect(std::function<void(int rank)> cb) { on_suspect_ = std::move(cb); }

 private:
  using Clock = std::chrono::steady_clock;
  void watch();

  HeartbeatConfig cfg_;
  std::function<void(int)> on_suspect_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  std::vector<Clock::time_point> last_beat_;
  std::vector<bool> suspected_;
  int64_t suspect_events_ = 0;
  int64_t scans_ = 0;
  std::thread watcher_;
};

}  // namespace ls2::dist
