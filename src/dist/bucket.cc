#include "dist/bucket.h"

#include <algorithm>

#include "common/check.h"

namespace ls2::dist {

int64_t effective_bucket_bytes(const ClusterConfig& cluster,
                               const simgpu::DeviceProfile& profile) {
  // Wire time of B bucket bytes is 2(N-1)/N * B / bus; its latency term is
  // 2(N-1) * step_latency. Requiring wire >= 4x latency gives
  //     B >= 4 * step_latency * N * bus,
  // which bounds bucketing's total latency overhead at 25% of the wire time
  // no matter how many buckets the model splits into. N is the ring the
  // gradients actually travel: the DATA-parallel group (under hybrid
  // data x model parallelism the TP peers are not on this ring).
  const double min_bytes = 4.0 * profile.allreduce_latency_us *
                           cluster.dp_size() *
                           bottleneck_bus_gb_s(cluster, profile) * 1e3;
  return std::max(cluster.bucket_bytes, static_cast<int64_t>(min_bytes));
}

BucketPlan::BucketPlan(const layers::ParamRegistry& params, int64_t cap_bytes) {
  LS2_CHECK(params.materialized()) << "bucket plan before materialize";
  LS2_CHECK(cap_bytes > 0) << "bucket cap must be positive";
  const int n = params.size();
  bucket_of_param_.assign(static_cast<size_t>(n), -1);
  total_bytes_ = static_cast<int64_t>(params.flat_grad_bytes());

  // Walk params from last declared to first, closing a bucket once it holds
  // at least one param and would exceed the cap with the next. Each bucket
  // is a contiguous byte range because declaration order is layout order.
  int end = n;  // param_end of the bucket being built (exclusive)
  int64_t acc = 0;
  for (int i = n - 1; i >= 0; --i) {
    const auto [b, e] = params.grad_byte_span(i);
    const int64_t bytes = static_cast<int64_t>(e - b);
    if (acc > 0 && acc + bytes > cap_bytes) {
      GradBucket bucket;
      bucket.index = static_cast<int>(buckets_.size());
      bucket.param_begin = i + 1;
      bucket.param_end = end;
      bucket.byte_begin = params.grad_byte_span(i + 1).first;
      bucket.byte_end = params.grad_byte_span(end - 1).second;
      buckets_.push_back(bucket);
      end = i + 1;
      acc = 0;
    }
    acc += bytes;
  }
  if (end > 0) {
    GradBucket bucket;
    bucket.index = static_cast<int>(buckets_.size());
    bucket.param_begin = 0;
    bucket.param_end = end;
    bucket.byte_begin = 0;
    bucket.byte_end = params.grad_byte_span(end - 1).second;
    buckets_.push_back(bucket);
  }
  for (const GradBucket& b : buckets_) {
    for (int i = b.param_begin; i < b.param_end; ++i) {
      bucket_of_param_[static_cast<size_t>(i)] = b.index;
    }
  }
}

int BucketPlan::bucket_of(int param_index) const {
  LS2_CHECK(param_index >= 0 &&
            param_index < static_cast<int>(bucket_of_param_.size()));
  return bucket_of_param_[static_cast<size_t>(param_index)];
}

Tensor BucketPlan::grad_view(const layers::ParamRegistry& params,
                             const GradBucket& b) const {
  return params.grad_byte_view(b.byte_begin, b.byte_end);
}

OverlapScheduler::OverlapScheduler(layers::ParamRegistry& params,
                                   simgpu::Device& device,
                                   const ClusterConfig& cluster,
                                   obs::MetricsRegistry* metrics)
    : params_(params),
      device_(device),
      metrics_(metrics),
      cluster_(cluster),
      plan_(params, effective_bucket_bytes(cluster, device.profile())) {
  LS2_CHECK(!params_.has_grad_ready_callback())
      << "another grad-ready listener is already installed";
  param_ready_.assign(static_cast<size_t>(params_.size()), 0);
  pending_in_bucket_.resize(static_cast<size_t>(plan_.size()));
  for (const GradBucket& b : plan_.buckets()) {
    pending_in_bucket_[static_cast<size_t>(b.index)] = b.params();
  }
  params_.set_grad_ready_callback(
      [this](const layers::ParamRange& r) { on_grads_ready(r); });
}

OverlapScheduler::~OverlapScheduler() { params_.clear_grad_ready_callback(); }

void OverlapScheduler::on_grads_ready(const layers::ParamRange& range) {
  if (finished_) return;
  for (int i = range.begin; i < range.end; ++i) {
    if (param_ready_[static_cast<size_t>(i)]) continue;  // shared params fire once
    param_ready_[static_cast<size_t>(i)] = 1;
    const int b = plan_.bucket_of(i);
    if (--pending_in_bucket_[static_cast<size_t>(b)] == 0) {
      flush(plan_.buckets()[static_cast<size_t>(b)]);
    }
  }
}

void OverlapScheduler::finish() {
  if (finished_) return;
  on_grads_ready({0, params_.size()});
  finished_ = true;
}

void OverlapScheduler::flush(const GradBucket& bucket) {
  const int64_t payload =
      wire_payload_bytes(bucket.bytes(), params_.dtype(), cluster_.wire_dtype);
  const double us = ring_allreduce_us(payload, cluster_, device_.profile());
  if (us <= 0) return;
  const double done = device_.enqueue_comm(us, "synchronize");
  enqueued_us_ += us;
  wire_bytes_ += payload;
  ++buckets_flushed_;
  if (device_.record_timeline()) {
    // The bucket's ring transfer as a named span on the comm lane (tid 1):
    // visible overlap in the trace, one span per bucket per step.
    device_.timeline().record_span(
        /*pid=*/0, /*tid=*/1, "allreduce.b" + std::to_string(bucket.index),
        done - us, done);
  }
  if (metrics_ != nullptr) {
    metrics_->counter("dist.bucket.flushes") += 1;
    metrics_->counter("dist.bucket.wire_bytes") += payload;
    metrics_->histogram("dist.bucket.allreduce_us").record(us);
  }
  if (bucket_done_) bucket_done_(bucket, done);
}

}  // namespace ls2::dist
