// Data-parallel replica management (§II-B stage "synchronize").
//
// This repo simulates rank 0 of a cluster for *timing*; for *numerics* the
// replica tests construct several real model instances and use the helpers
// here: sync_gradients averages gradients across registries exactly like an
// all-reduce would, and find_divergence proves the invariant that makes data
// parallelism correct — identically initialised replicas that apply the same
// averaged gradients stay bitwise identical forever.
#pragma once

#include <string>
#include <vector>

#include "dist/allreduce.h"
#include "dist/bucket.h"
#include "layers/params.h"

namespace ls2::dist {

/// Average every parameter's gradient across the replica registries in
/// place (FP32 accumulation, see allreduce_average). The registries must
/// have identical declarations. `wire_dtype` models the on-the-wire payload
/// (kF16 rounds each hop's contribution; the FP32 default is lossless).
void sync_gradients(const std::vector<layers::ParamRegistry*>& replicas,
                    DType wire_dtype = DType::kF32);

/// Bucketed variant: averages one bucket at a time following `plan` — the
/// payload granularity the overlapped scheduler communicates at. Numerically
/// identical to sync_gradients (workspace registries only).
void sync_gradients_bucketed(const std::vector<layers::ParamRegistry*>& replicas,
                             const BucketPlan& plan,
                             DType wire_dtype = DType::kF32);

/// "" when all replicas hold bitwise-identical parameter values; otherwise a
/// human-readable description of the first divergent parameter.
std::string find_divergence(const std::vector<const layers::ParamRegistry*>& replicas);

/// Convenience owner for a set of replica registries participating in
/// gradient synchronization, with the cluster's ring time model attached.
class ReplicaGroup {
 public:
  explicit ReplicaGroup(ClusterConfig cluster) : cluster_(cluster) {}

  void add_replica(layers::ParamRegistry* params) { replicas_.push_back(params); }
  int size() const { return static_cast<int>(replicas_.size()); }
  const ClusterConfig& cluster() const { return cluster_; }

  /// All-reduce-average all gradients across the registered replicas, over
  /// the cluster's configured wire dtype.
  void sync() { sync_gradients(replicas_, cluster_.wire_dtype); }
  /// Modeled ring time for one full gradient sync of `registry`.
  double modeled_sync_us(const layers::ParamRegistry& params,
                         const simgpu::DeviceProfile& profile) const;

 private:
  ClusterConfig cluster_;
  std::vector<layers::ParamRegistry*> replicas_;
};

}  // namespace ls2::dist
