#include "dist/data_parallel.h"

#include <cstring>
#include <sstream>

#include "common/check.h"

namespace ls2::dist {

namespace {

void check_same_layout(const std::vector<layers::ParamRegistry*>& replicas) {
  LS2_CHECK(!replicas.empty()) << "no replicas";
  const layers::ParamRegistry* first = replicas.front();
  for (const layers::ParamRegistry* r : replicas) {
    LS2_CHECK(r != nullptr) << "null replica";
    LS2_CHECK(r->materialized()) << "replica not materialized";
    LS2_CHECK_EQ(r->size(), first->size());
    LS2_CHECK(r->dtype() == first->dtype());
  }
}

}  // namespace

void sync_gradients(const std::vector<layers::ParamRegistry*>& replicas,
                    DType wire_dtype) {
  check_same_layout(replicas);
  if (replicas.size() < 2) return;
  std::vector<Tensor> grads(replicas.size());
  for (int i = 0; i < replicas.front()->size(); ++i) {
    for (size_t r = 0; r < replicas.size(); ++r) {
      grads[r] = replicas[r]->grad({i});
    }
    allreduce_average(grads, wire_dtype);
  }
}

void sync_gradients_bucketed(const std::vector<layers::ParamRegistry*>& replicas,
                             const BucketPlan& plan, DType wire_dtype) {
  check_same_layout(replicas);
  if (replicas.size() < 2) return;
  std::vector<Tensor> payloads(replicas.size());
  for (const GradBucket& b : plan.buckets()) {
    for (size_t r = 0; r < replicas.size(); ++r) {
      payloads[r] = plan.grad_view(*replicas[r], b);
    }
    allreduce_average(payloads, wire_dtype);
  }
}

std::string find_divergence(
    const std::vector<const layers::ParamRegistry*>& replicas) {
  LS2_CHECK(!replicas.empty()) << "no replicas";
  const layers::ParamRegistry* first = replicas.front();
  for (size_t r = 1; r < replicas.size(); ++r) {
    const layers::ParamRegistry* other = replicas[r];
    LS2_CHECK(other != nullptr) << "null replica";
    if (other->size() != first->size()) {
      std::ostringstream os;
      os << "replica " << r << " has " << other->size() << " params, replica 0 has "
         << first->size();
      return os.str();
    }
    for (int i = 0; i < first->size(); ++i) {
      const Tensor a = first->value({i});
      const Tensor b = other->value({i});
      if (a.numel() != b.numel() || a.dtype() != b.dtype()) {
        std::ostringstream os;
        os << "param '" << first->name({i}) << "' shape/dtype mismatch on replica " << r;
        return os.str();
      }
      if (!a.backs_real_memory() || !b.backs_real_memory()) continue;
      if (std::memcmp(a.raw(), b.raw(), a.bytes()) != 0) {
        std::ostringstream os;
        os << "param '" << first->name({i}) << "' diverges between replica 0 and "
           << r;
        return os.str();
      }
    }
  }
  return "";
}

double ReplicaGroup::modeled_sync_us(const layers::ParamRegistry& params,
                                     const simgpu::DeviceProfile& profile) const {
  const int64_t payload = wire_payload_bytes(
      static_cast<int64_t>(params.flat_grad_bytes()), params.dtype(),
      cluster_.wire_dtype);
  return ring_allreduce_us(payload, cluster_, profile);
}

}  // namespace ls2::dist
