// Process groups for hybrid data x model parallelism (DESIGN.md §7, §9).
//
// A ClusterConfig with tensor_parallel = t and pipeline_parallel = p splits
// its ranks into THREE orthogonal communicators, Megatron-style:
//
//   * the TENSOR-parallel group — t consecutive ranks of one node, sharing
//     one stage's sharded layers. Its collectives (all_gather /
//     reduce_scatter / all_reduce) ride the intra-node NVLink ring and are
//     charged on the device's communication stream, so they can overlap
//     compute up to the stream-wait that consumes their result;
//   * the PIPELINE-parallel group — the p stages of one replica, connected
//     by point-to-point activation/gradient sends (send_us below). PP
//     neighbors are ADJACENT rank blocks (stride t): the largest tensors a
//     cluster moves — boundary activations — ride the cheapest link
//     available, NVLink while the neighbor shares the node, the fabric
//     only when the pipeline itself crosses machines;
//   * the DATA-parallel group — the total_gpus()/(t*p) ranks holding the
//     SAME shard of the SAME stage, over which the bucketed gradient
//     all-reduce runs (dist/allreduce.h charges that ring at dp_size()).
//
// Rank layout: rank = ((dp_rank * p) + pp_rank) * t + tp_rank — TP
// innermost (never crossing a node: the ctor enforces t | gpus_per_node),
// PP next (adjacent-node-first neighbors), DP outermost (striding across
// whole model replicas, and across nodes as soon as one replica fills a
// node).
//
// The simulated collectives REDUCE IN RANK ORDER (an in-order ring): that
// deterministic order is what makes the row-parallel partial sums land
// bitwise identical to the unsharded GEMM's ascending-k accumulation — the
// foundation of the TP parity guarantee (tests/tensor_parallel_test.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/allreduce.h"
#include "simgpu/device.h"

namespace ls2::dist {

class ProcessGroup {
 public:
  explicit ProcessGroup(ClusterConfig cluster);

  const ClusterConfig& cluster() const { return cluster_; }
  int tp_size() const { return cluster_.tensor_parallel; }
  int pp_size() const { return cluster_.pipeline_parallel; }
  int dp_size() const { return cluster_.dp_size(); }
  int world_size() const { return cluster_.total_gpus(); }

  // --- rank math (ranks are 0..world_size) ---
  int tp_rank(int rank) const;  ///< position within the rank's TP group
  int pp_rank(int rank) const;  ///< which pipeline stage the rank runs
  int dp_rank(int rank) const;  ///< which replica the rank belongs to
  /// The rank with the given 3D coordinates.
  int rank_of(int dp, int pp, int tp) const;
  /// The ranks of `rank`'s tensor-parallel group, ascending (contains rank).
  std::vector<int> tp_group_ranks(int rank) const;
  /// The p stages of `rank`'s pipeline, ascending by stage (contains rank).
  std::vector<int> pp_group_ranks(int rank) const;
  /// The ranks holding the same shard as `rank` (its data-parallel group).
  std::vector<int> dp_group_ranks(int rank) const;
  /// Node a rank lives on.
  int node_of(int rank) const { return rank / cluster_.gpus_per_node; }

  // --- analytic TP-group collective times (NVLink ring) ---
  /// Ring all-reduce of `bytes` over the TP group:
  /// 2(k-1)/k * bytes / bw + 2(k-1) * latency.
  double all_reduce_us(int64_t bytes, const simgpu::DeviceProfile& profile) const;
  /// Ring all-gather assembling `full_bytes` on every rank (each rank
  /// contributes full_bytes/k): (k-1)/k * full_bytes / bw + (k-1) * latency.
  double all_gather_us(int64_t full_bytes, const simgpu::DeviceProfile& profile) const;
  /// Ring reduce-scatter of `full_bytes` down to one shard per rank — the
  /// all-gather's mirror phase, same wire cost.
  double reduce_scatter_us(int64_t full_bytes, const simgpu::DeviceProfile& profile) const;

  // --- point-to-point cost model (pipeline-parallel boundary sends) ---
  /// One p2p send of `bytes` between two ranks: latency + bytes/bw, over
  /// NVLink when both ranks share a node, the inter-node fabric otherwise.
  /// The ring models above stay untouched — a boundary send is a single
  /// transfer, not a collective.
  double send_us(int64_t bytes, int from_rank, int to_rank,
                 const simgpu::DeviceProfile& profile) const;
  /// The send between pipeline stages `stage` and `stage + 1` of replica
  /// (dp_rank 0, tp_rank 0) — the lane fig_3d and StepTimes report.
  double stage_send_us(int64_t bytes, int stage,
                       const simgpu::DeviceProfile& profile) const;

  // --- charging (on the device's comm stream) ---
  //
  // begin_* enqueues the transfer and returns its modeled completion time;
  // wait() stream-waits on that timestamp (the exposed time is charged to
  // the device's active range and counted in stats). The split lets callers
  // overlap independent compute between the enqueue and the consuming wait,
  // exactly like the gradient buckets. The combined forms block immediately.
  double all_reduce_begin(simgpu::Device& dev, int64_t bytes, const std::string& what);
  double all_gather_begin(simgpu::Device& dev, int64_t full_bytes, const std::string& what);
  double reduce_scatter_begin(simgpu::Device& dev, int64_t full_bytes,
                              const std::string& what);
  /// Enqueue a stage-boundary send on the comm stream (pp stats).
  double send_begin(simgpu::Device& dev, int64_t bytes, int stage,
                    const std::string& what);
  double wait(simgpu::Device& dev, double t_done_us, const std::string& what);
  double all_reduce(simgpu::Device& dev, int64_t bytes, const std::string& what);
  double all_gather(simgpu::Device& dev, int64_t full_bytes, const std::string& what);

  /// Cumulative TP-communication accounting (fig_tp's "exposed TP comm").
  struct Stats {
    int64_t collectives = 0;
    int64_t bytes = 0;        ///< logical payload bytes (full tensors)
    double comm_us = 0;       ///< comm-stream time enqueued
    double exposed_us = 0;    ///< compute-stream time spent waiting on it
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  double charge(simgpu::Device& dev, double us, int64_t bytes,
                const std::string& op, const std::string& what);

  ClusterConfig cluster_;
  Stats stats_;
};

}  // namespace ls2::dist
