#include "dist/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ls2::dist {

double PipelineSchedule::analytic_bubble_fraction(int stages, int microbatches) {
  if (stages <= 1) return 0.0;
  return static_cast<double>(stages - 1) /
         static_cast<double>(microbatches + stages - 1);
}

namespace {

struct Slot {
  bool forward;
  int microbatch;
};

// 1F1B slot order for one stage: w = min(m, pp-1-s) warm-up forwards, then
// steady-state F/B pairs, then the backward drain.
std::vector<Slot> slot_order(int stages, int m, int s) {
  std::vector<Slot> slots;
  slots.reserve(static_cast<size_t>(2 * m));
  const int w = std::min(m, stages - 1 - s);
  for (int j = 0; j < w; ++j) slots.push_back({true, j});
  for (int k = 0; k + w < m; ++k) {
    slots.push_back({true, w + k});
    slots.push_back({false, k});
  }
  for (int j = m - w; j < m; ++j) slots.push_back({false, j});
  return slots;
}

}  // namespace

PipelineSchedule solve_1f1b(const PipelineScheduleInput& in) {
  const int S = in.stages, m = in.microbatches;
  LS2_CHECK(S >= 1 && m >= 1) << "stages " << S << " microbatches " << m;
  LS2_CHECK(m >= S || S == 1) << "1F1B needs microbatches >= stages";
  LS2_CHECK_EQ(static_cast<int>(in.f.size()), S);
  LS2_CHECK_EQ(static_cast<int>(in.b.size()), S);
  auto su = [](int x) { return static_cast<size_t>(x); };
  for (int s = 0; s < S; ++s) {
    LS2_CHECK_EQ(static_cast<int>(in.f[su(s)].size()), m);
    LS2_CHECK_EQ(static_cast<int>(in.b[su(s)].size()), m);
  }
  LS2_CHECK_EQ(static_cast<int>(in.fwd_p2p_us.size()), S - 1);
  LS2_CHECK_EQ(static_cast<int>(in.bwd_p2p_us.size()), S - 1);

  std::vector<std::vector<Slot>> slots(su(S));
  for (int s = 0; s < S; ++s) slots[su(s)] = slot_order(S, m, s);

  // Relax chunk times until stable. Forward deps point down-stage and
  // backward deps up-stage while each lane serialises its own slots, so a
  // bounded number of alternating sweeps reaches the fixpoint.
  std::vector<std::vector<double>> fend(su(S), std::vector<double>(su(m), 0.0));
  std::vector<std::vector<double>> bend(su(S), std::vector<double>(su(m), 0.0));
  std::vector<std::vector<double>> fbeg = fend, bbeg = bend;
  bool changed = true;
  int rounds = 0;
  while (changed) {
    changed = false;
    LS2_CHECK(++rounds <= 2 * (S + m) + 4) << "1F1B relaxation diverged";
    for (int s = 0; s < S; ++s) {
      double cursor = 0.0;
      for (const Slot& slot : slots[su(s)]) {
        const int j = slot.microbatch;
        double ready = cursor;
        if (slot.forward && s > 0) {
          ready = std::max(ready, fend[su(s - 1)][su(j)] + in.fwd_p2p_us[su(s - 1)]);
        }
        if (!slot.forward && s + 1 < S) {
          ready = std::max(ready, bend[su(s + 1)][su(j)] + in.bwd_p2p_us[su(s)]);
        }
        const double dur =
            slot.forward ? in.f[su(s)][su(j)] : in.b[su(s)][su(j)];
        auto& beg = slot.forward ? fbeg : bbeg;
        auto& end = slot.forward ? fend : bend;
        if (beg[su(s)][su(j)] != ready || end[su(s)][su(j)] != ready + dur) {
          beg[su(s)][su(j)] = ready;
          end[su(s)][su(j)] = ready + dur;
          changed = true;
        }
        cursor = ready + dur;
      }
    }
  }

  PipelineSchedule out;
  out.lanes.resize(su(S));
  for (int s = 0; s < S; ++s) {
    PipelineLane& lane = out.lanes[su(s)];
    double prev_end = 0.0;
    for (const Slot& slot : slots[su(s)]) {
      const int j = slot.microbatch;
      PipelineChunk c;
      c.forward = slot.forward;
      c.microbatch = j;
      c.begin_us = (slot.forward ? fbeg : bbeg)[su(s)][su(j)];
      c.end_us = (slot.forward ? fend : bend)[su(s)][su(j)];
      lane.busy_us += c.end_us - c.begin_us;
      const double gap = c.begin_us - prev_end;
      if (gap > 0) {
        // If a cross-stage dependency is what pinned this start, up to one
        // p2p cost of the gap is exposed communication; the rest is bubble.
        double p2p = 0.0;
        if (slot.forward && s > 0 &&
            fend[su(s - 1)][su(j)] + in.fwd_p2p_us[su(s - 1)] >= c.begin_us) {
          p2p = in.fwd_p2p_us[su(s - 1)];
        } else if (!slot.forward && s + 1 < S &&
                   bend[su(s + 1)][su(j)] + in.bwd_p2p_us[su(s)] >= c.begin_us) {
          p2p = in.bwd_p2p_us[su(s)];
        }
        const double comm = std::min(gap, p2p);
        lane.comm_idle_us += comm;
        lane.bubble_us += gap - comm;
      }
      prev_end = c.end_us;
      lane.chunks.push_back(c);
      out.makespan_us = std::max(out.makespan_us, c.end_us);
    }
  }
  return out;
}

}  // namespace ls2::dist
