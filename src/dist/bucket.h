// Gradient bucketing for overlapped data-parallel synchronization (§II-B
// stage 3, Fig. 22).
//
// The flat gradient workspace is partitioned into size-capped buckets in
// REVERSE declaration order: backward produces gradients roughly from the
// last declared parameter (criterion / top layers) to the first (embeddings),
// so bucket 0 — the byte range at the END of the flat buffer — fills first
// and its all-reduce can be launched on the communication stream while the
// backward pass is still running. Each bucket is one contiguous byte range;
// together the buckets tile the flat buffer exactly (no gap, no overlap,
// every parameter covered once).
//
// BucketPlan is the static partition; OverlapScheduler is the per-step
// driver that listens to ParamRegistry's grad-ready callback and enqueues
// each completed bucket's ring all-reduce on the device's comm stream.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dist/allreduce.h"
#include "layers/params.h"
#include "obs/metrics.h"
#include "simgpu/device.h"

namespace ls2::dist {

/// One communication bucket: params [param_begin, param_end) occupying
/// gradient bytes [byte_begin, byte_end). Bucket 0 holds the LAST declared
/// params (first ready during backward) and the highest byte range.
struct GradBucket {
  int index = 0;
  int param_begin = 0;
  int param_end = 0;
  size_t byte_begin = 0;
  size_t byte_end = 0;
  int64_t bytes() const { return static_cast<int64_t>(byte_end - byte_begin); }
  int params() const { return param_end - param_begin; }
};

/// Effective bucket cap for a cluster: at least `cluster.bucket_bytes`, but
/// grown until one bucket's wire time is >= 4x its per-ring latency term —
/// otherwise on large rings (many nodes, high per-step latency) the
/// repeated ring setup would cost more than bucketing saves, and the
/// "overlapped" path could end up slower than one blocking all-reduce.
int64_t effective_bucket_bytes(const ClusterConfig& cluster,
                               const simgpu::DeviceProfile& profile);

/// Size-capped partition of a registry's flat gradient buffer.
class BucketPlan {
 public:
  BucketPlan() = default;
  explicit BucketPlan(const layers::ParamRegistry& params,
                      int64_t cap_bytes = ClusterConfig{}.bucket_bytes);

  const std::vector<GradBucket>& buckets() const { return buckets_; }
  int size() const { return static_cast<int>(buckets_.size()); }
  /// Which bucket holds a given parameter declaration index.
  int bucket_of(int param_index) const;
  int64_t total_bytes() const { return total_bytes_; }

  /// The bucket's gradient payload as one tensor view (workspace registries
  /// only) — what a real implementation would hand to NCCL.
  Tensor grad_view(const layers::ParamRegistry& params, const GradBucket& b) const;

 private:
  std::vector<GradBucket> buckets_;
  std::vector<int> bucket_of_param_;
  int64_t total_bytes_ = 0;
};

/// Per-step overlap driver. While alive it owns the registry's grad-ready
/// callback; as each bucket's parameters all become ready it charges that
/// bucket's ring all-reduce (at the cluster's WIRE dtype — FP16 wire halves
/// the payload of an FP32 wire) to the device's communication stream, where
/// it runs concurrently with the (compute-stream) backward kernels.
/// finish() flushes buckets whose params were never notified — they are
/// implicitly ready once backward has returned.
class OverlapScheduler {
 public:
  /// Invoked right after a bucket's ring time has been charged to the comm
  /// stream: the bucket plus the comm-stream clock at which its all-reduce
  /// completes (its gradients are replica-averaged from then on). The
  /// pipelined train_step uses this to launch the bucket's optimizer update
  /// as soon as the transfer lands. Buckets fire in flush order, so the
  /// completion times a listener observes are non-decreasing.
  using BucketDoneFn = std::function<void(const GradBucket&, double comm_done_us)>;

  /// `metrics` (optional, not owned): each flushed bucket records its wire
  /// bytes and ring time under "dist.bucket.*", and lands a named
  /// "allreduce.b<i>" span on the comm lane of the device trace.
  OverlapScheduler(layers::ParamRegistry& params, simgpu::Device& device,
                   const ClusterConfig& cluster,
                   obs::MetricsRegistry* metrics = nullptr);
  ~OverlapScheduler();
  OverlapScheduler(const OverlapScheduler&) = delete;
  OverlapScheduler& operator=(const OverlapScheduler&) = delete;

  /// Install the bucket-complete listener (before backward starts).
  void set_bucket_done_callback(BucketDoneFn fn) { bucket_done_ = std::move(fn); }

  /// Mark params [range.begin, range.end) final; flush any completed bucket.
  void on_grads_ready(const layers::ParamRange& range);
  /// Mark everything still pending as ready and flush remaining buckets.
  void finish();

  const BucketPlan& plan() const { return plan_; }
  /// Total comm-stream microseconds enqueued so far.
  double enqueued_us() const { return enqueued_us_; }
  /// Total modeled gradient bytes this rank put on the ring so far (at the
  /// wire dtype, not the storage dtype).
  int64_t wire_bytes() const { return wire_bytes_; }
  int buckets_flushed() const { return buckets_flushed_; }

 private:
  void flush(const GradBucket& bucket);

  layers::ParamRegistry& params_;
  simgpu::Device& device_;
  obs::MetricsRegistry* metrics_ = nullptr;
  ClusterConfig cluster_;
  BucketPlan plan_;
  BucketDoneFn bucket_done_;
  std::vector<int> pending_in_bucket_;  // params not yet ready, per bucket
  std::vector<char> param_ready_;
  double enqueued_us_ = 0;
  int64_t wire_bytes_ = 0;
  int buckets_flushed_ = 0;
  bool finished_ = false;
};

}  // namespace ls2::dist
