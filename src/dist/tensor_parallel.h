// Tensor-parallel model runtime (DESIGN.md §7).
//
// A model built with TpConfig{size = k} stores rank 0's shards in its
// normal (device) registry — so bucketing, the flat trainer, checkpoints
// and memory accounting all see exactly one rank — and, when
// `simulate_peers` is on, carries ranks 1..k-1's shards in a heap-side peer
// registry so the full-tensor emulation (layers/tp.h) can assemble weights
// and scatter gradients. TpRuntime owns that peer state:
//
//   * the peer ParamRegistry (per-tensor, heap, initialised from the same
//     seed with rank-0-pinned RNG streams — shards reassemble bitwise);
//   * the peer trainer: after the rank-0 trainer's step, finish_step()
//     applies the SAME elementwise update to the peer shards on a private
//     throwaway device, so no peer bookkeeping pollutes the simulated
//     rank-0 clock, stats, or a captured step graph.
//
// Timing/bench runs (kModelOnly) set simulate_peers = false: only rank 0's
// shards exist, which is the honest per-device memory footprint; kernel
// bodies never run, so nothing ever reads the missing peers.
#pragma once

#include <memory>
#include <string>

#include "kernels/kernel_context.h"
#include "layers/params.h"
#include "optim/optimizer.h"
#include "simgpu/device.h"

namespace ls2::dist {

/// Per-model tensor-parallel configuration (carried in the model configs).
struct TpConfig {
  int size = 1;
  /// Carry ranks 1..size-1's shards so kernel bodies can execute (numeric
  /// runs). false: rank-0 only — model-only timing/bench runs.
  bool simulate_peers = true;
  bool enabled() const { return size > 1; }
};

class TpRuntime {
 public:
  explicit TpRuntime(int tp_size);

  layers::ParamRegistry& peers() { return peers_; }
  int tp_size() const { return tp_size_; }

  /// Materialise the peer registry (per-tensor mode on the heap) from the
  /// same seed the model used — call right after the model's materialize.
  void materialize(DType dtype, uint64_t seed);

  /// Zero the peer gradients (host bookkeeping; rank 0's zeroing is the
  /// charged kernel). Models call this at the top of forward.
  void zero_grads();

  /// Apply the rank-0 trainer's update to the peer shards: a config-copied
  /// per-tensor trainer stepping on a private device. Elementwise-identical
  /// arithmetic keeps gathered parameters bitwise equal to the unsharded
  /// run (the trainer-equivalence property of optim/optimizer.h).
  void finish_step(const optim::Optimizer& main_trainer);

 private:
  int tp_size_;
  layers::ParamRegistry peers_;
  simgpu::Device device_;  ///< throwaway: peer updates must not charge rank 0
  std::unique_ptr<kern::KernelContext> kc_;
  std::unique_ptr<optim::Optimizer> trainer_;
};

/// Reassemble one logical parameter from its shards: `ref` names the rank-0
/// declaration in `rank0`; peer shards (named "<name>.tp<r>") come from
/// `peers` (may be null when unsharded). Returns the full tensor.
Tensor gather_full_param(const layers::ParamRegistry& rank0,
                         const layers::ParamRegistry* peers, layers::ParamRef ref);

/// "" when every parameter of `sharded` (+ its peers), gathered, is bitwise
/// the same-named parameter of the unsharded `reference` registry —
/// otherwise a description of the first mismatch. The TP=k acceptance
/// check: sharded training must reassemble to the unsharded trajectory.
std::string compare_gathered_params(const layers::ParamRegistry& sharded,
                                    const layers::ParamRegistry* peers,
                                    const layers::ParamRegistry& reference);

}  // namespace ls2::dist
