#include "dist/tensor_parallel.h"

#include <cstring>

#include "common/check.h"
#include "simgpu/profile.h"

namespace ls2::dist {

TpRuntime::TpRuntime(int tp_size)
    : tp_size_(tp_size), device_(simgpu::generic(), simgpu::ExecMode::kExecute) {
  LS2_CHECK(tp_size >= 2) << "TpRuntime is for sharded models";
}

void TpRuntime::materialize(DType dtype, uint64_t seed) {
  peers_.materialize(dtype, /*contiguous=*/false, Rng(seed), /*alloc=*/nullptr);
}

void TpRuntime::zero_grads() { peers_.zero_grads(); }

void TpRuntime::finish_step(const optim::Optimizer& main_trainer) {
  if (!trainer_) {
    optim::OptimConfig cfg = main_trainer.config();
    LS2_CHECK(!cfg.dynamic_loss_scale)
        << "TP peer simulation needs a static loss scale: the per-range "
           "overflow checks of a dynamic scaler see different shards per rank";
    kc_ = std::make_unique<kern::KernelContext>(device_, nullptr, /*seed=*/0);
    trainer_ = std::make_unique<optim::TorchTrainer>(peers_, cfg);
  }
  trainer_->set_lr(main_trainer.config().lr);
  trainer_->step(*kc_);
}

namespace {

Tensor find_peer_shard(const layers::ParamRegistry& peers, const std::string& name) {
  for (int i = 0; i < peers.size(); ++i) {
    if (peers.name({i}) == name) return peers.value({i});
  }
  LS2_CHECK(false) << "peer shard '" << name << "' not declared";
  return {};
}

}  // namespace

Tensor gather_full_param(const layers::ParamRegistry& rank0,
                         const layers::ParamRegistry* peers, layers::ParamRef ref) {
  const layers::ShardSpec& spec = rank0.shard_spec(ref);
  if (!spec.sharded()) return rank0.value(ref);
  LS2_CHECK(peers != nullptr) << "gathering '" << rank0.name(ref)
                              << "' needs the peer registry";
  Tensor full = Tensor::empty(rank0.full_shape(ref), rank0.dtype());
  layers::copy_full_from_shard(rank0.value(ref), full, spec);
  for (int r = 1; r < spec.count; ++r) {
    const std::string peer_name = rank0.name(ref) + ".tp" + std::to_string(r);
    Tensor shard = find_peer_shard(*peers, peer_name);
    layers::ShardSpec peer_spec = spec;
    peer_spec.index = r;
    layers::copy_full_from_shard(shard, full, peer_spec);
  }
  return full;
}

std::string compare_gathered_params(const layers::ParamRegistry& sharded,
                                    const layers::ParamRegistry* peers,
                                    const layers::ParamRegistry& reference) {
  if (sharded.size() != reference.size()) {
    return "registry size mismatch: " + std::to_string(sharded.size()) + " vs " +
           std::to_string(reference.size());
  }
  for (int i = 0; i < sharded.size(); ++i) {
    const layers::ParamRef ref{i};
    if (sharded.name(ref) != reference.name(ref)) {
      return "declaration order diverged at #" + std::to_string(i) + ": '" +
             sharded.name(ref) + "' vs '" + reference.name(ref) + "'";
    }
    Tensor gathered = gather_full_param(sharded, peers, ref);
    Tensor expect = reference.value(ref);
    if (gathered.numel() != expect.numel() || gathered.dtype() != expect.dtype()) {
      return "'" + sharded.name(ref) + "': gathered shape/dtype mismatch";
    }
    if (std::memcmp(gathered.raw(), expect.raw(), expect.bytes()) != 0) {
      return "'" + sharded.name(ref) + "': gathered values differ from the unsharded run";
    }
  }
  return "";
}

}  // namespace ls2::dist
