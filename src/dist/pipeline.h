// 1F1B pipeline-parallel schedule solver (DESIGN.md §9).
//
// Given measured per-(stage, microbatch) forward/backward durations and
// inter-stage p2p send costs, reconstructs the 1F1B ("one forward, one
// backward") schedule of Narayanan et al. / Megatron-LM: each stage runs
// min(m, pp-1-s) warm-up forwards, then alternates forward/backward in
// steady state, then drains the remaining backwards. The solver is a pure
// host-side computation — stage work is executed (and timed) elsewhere;
// this module answers "when would each chunk run on a real pp-deep
// pipeline, and how much of each lane is bubble vs. exposed p2p?"
#pragma once

#include <vector>

namespace ls2::dist {

struct PipelineScheduleInput {
  int stages = 1;
  int microbatches = 1;
  // f[s][j] / b[s][j]: forward / backward compute microseconds of
  // microbatch j's chunk on stage s.
  std::vector<std::vector<double>> f, b;
  // fwd_p2p_us[s]: activation send stage s -> s+1 (size stages-1);
  // bwd_p2p_us[s]: gradient send stage s+1 -> s (size stages-1).
  std::vector<double> fwd_p2p_us, bwd_p2p_us;
};

struct PipelineChunk {
  bool forward = true;
  int microbatch = 0;
  double begin_us = 0, end_us = 0;
};

struct PipelineLane {
  std::vector<PipelineChunk> chunks;  ///< in 1F1B slot order
  double busy_us = 0;       ///< sum of chunk durations
  double comm_idle_us = 0;  ///< lane gaps attributable to a binding p2p send
  double bubble_us = 0;     ///< remaining lane idle inside [0, lane end]
};

struct PipelineSchedule {
  std::vector<PipelineLane> lanes;  ///< one per stage
  double makespan_us = 0;
  /// Steady-state bubble fraction of the reference analytic model with
  /// uniform chunks and free communication: (pp-1) / (m + pp-1).
  static double analytic_bubble_fraction(int stages, int microbatches);
};

/// Solve the 1F1B schedule. Chunk begin/end times satisfy, for every
/// stage s and microbatch j:
///   F(s,j) starts after F(s-1,j) ends + fwd_p2p[s-1],
///   B(s,j) starts after B(s+1,j) ends + bwd_p2p[s],
/// and chunks on one stage run back-to-back in 1F1B slot order.
PipelineSchedule solve_1f1b(const PipelineScheduleInput& in);

}  // namespace ls2::dist
