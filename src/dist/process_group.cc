#include "dist/process_group.h"

#include "common/check.h"

namespace ls2::dist {

ProcessGroup::ProcessGroup(ClusterConfig cluster) : cluster_(cluster) {
  cluster_.validate();
}

int ProcessGroup::tp_rank(int rank) const {
  LS2_CHECK(rank >= 0 && rank < world_size()) << "rank " << rank;
  return rank % tp_size();
}

int ProcessGroup::pp_rank(int rank) const {
  LS2_CHECK(rank >= 0 && rank < world_size()) << "rank " << rank;
  return (rank / tp_size()) % pp_size();
}

int ProcessGroup::dp_rank(int rank) const {
  LS2_CHECK(rank >= 0 && rank < world_size()) << "rank " << rank;
  return rank / (tp_size() * pp_size());
}

int ProcessGroup::rank_of(int dp, int pp, int tp) const {
  LS2_CHECK(dp >= 0 && dp < dp_size() && pp >= 0 && pp < pp_size() && tp >= 0 &&
            tp < tp_size())
      << "(" << dp << "," << pp << "," << tp << ")";
  return (dp * pp_size() + pp) * tp_size() + tp;
}

std::vector<int> ProcessGroup::tp_group_ranks(int rank) const {
  const int base = rank - tp_rank(rank);
  std::vector<int> ranks;
  ranks.reserve(static_cast<size_t>(tp_size()));
  for (int i = 0; i < tp_size(); ++i) ranks.push_back(base + i);
  return ranks;
}

std::vector<int> ProcessGroup::pp_group_ranks(int rank) const {
  const int dp = dp_rank(rank), tp = tp_rank(rank);
  std::vector<int> ranks;
  ranks.reserve(static_cast<size_t>(pp_size()));
  for (int s = 0; s < pp_size(); ++s) ranks.push_back(rank_of(dp, s, tp));
  return ranks;
}

std::vector<int> ProcessGroup::dp_group_ranks(int rank) const {
  const int pp = pp_rank(rank), tp = tp_rank(rank);
  std::vector<int> ranks;
  ranks.reserve(static_cast<size_t>(dp_size()));
  for (int r = 0; r < dp_size(); ++r) ranks.push_back(rank_of(r, pp, tp));
  return ranks;
}

double ProcessGroup::all_reduce_us(int64_t bytes,
                                   const simgpu::DeviceProfile& profile) const {
  LS2_CHECK(bytes >= 0);
  const int k = tp_size();
  if (k <= 1 || bytes == 0) return 0.0;
  const double steps = 2.0 * (k - 1);
  const double chunk = static_cast<double>(bytes) / k;
  return steps * chunk / (profile.nvlink_bus_gb_s * 1e3) +
         steps * profile.allreduce_latency_us;
}

double ProcessGroup::all_gather_us(int64_t full_bytes,
                                   const simgpu::DeviceProfile& profile) const {
  LS2_CHECK(full_bytes >= 0);
  const int k = tp_size();
  if (k <= 1 || full_bytes == 0) return 0.0;
  const double steps = static_cast<double>(k - 1);
  const double chunk = static_cast<double>(full_bytes) / k;
  return steps * chunk / (profile.nvlink_bus_gb_s * 1e3) +
         steps * profile.allreduce_latency_us;
}

double ProcessGroup::reduce_scatter_us(int64_t full_bytes,
                                       const simgpu::DeviceProfile& profile) const {
  return all_gather_us(full_bytes, profile);  // the mirror ring phase
}

double ProcessGroup::send_us(int64_t bytes, int from_rank, int to_rank,
                             const simgpu::DeviceProfile& profile) const {
  LS2_CHECK(bytes >= 0);
  if (bytes == 0 || from_rank == to_rank) return 0.0;
  const double bus_gb_s = node_of(from_rank) == node_of(to_rank)
                              ? profile.nvlink_bus_gb_s
                              : profile.ib_bus_gb_s;
  return profile.allreduce_latency_us + static_cast<double>(bytes) / (bus_gb_s * 1e3);
}

double ProcessGroup::stage_send_us(int64_t bytes, int stage,
                                   const simgpu::DeviceProfile& profile) const {
  LS2_CHECK(stage >= 0 && stage + 1 < pp_size()) << "boundary " << stage;
  return send_us(bytes, rank_of(0, stage, 0), rank_of(0, stage + 1, 0), profile);
}

double ProcessGroup::charge(simgpu::Device& dev, double us, int64_t bytes,
                            const std::string& op, const std::string& what) {
  const double done = dev.enqueue_comm(us, "tp");
  if (us > 0) {
    stats_.collectives += 1;
    stats_.bytes += bytes;
    stats_.comm_us += us;
    if (dev.record_timeline()) {
      // The collective as a named span on the comm lane (tid 1), labelled
      // with what the caller was doing ("tp.attn_fw" etc.) — this is where
      // the previously-discarded `what` becomes rank-attributable trace.
      dev.timeline().record_span(/*pid=*/0, /*tid=*/1, op + ":" + what,
                                 done - us, done);
    }
  }
  return done;
}

double ProcessGroup::all_reduce_begin(simgpu::Device& dev, int64_t bytes,
                                      const std::string& what) {
  return charge(dev, all_reduce_us(bytes, dev.profile()), bytes, "allreduce", what);
}

double ProcessGroup::all_gather_begin(simgpu::Device& dev, int64_t full_bytes,
                                      const std::string& what) {
  return charge(dev, all_gather_us(full_bytes, dev.profile()), full_bytes,
                "allgather", what);
}

double ProcessGroup::reduce_scatter_begin(simgpu::Device& dev, int64_t full_bytes,
                                          const std::string& what) {
  return charge(dev, reduce_scatter_us(full_bytes, dev.profile()), full_bytes,
                "reducescatter", what);
}

double ProcessGroup::send_begin(simgpu::Device& dev, int64_t bytes, int stage,
                                const std::string& what) {
  return charge(dev, stage_send_us(bytes, stage, dev.profile()), bytes, "send",
                what);
}

double ProcessGroup::wait(simgpu::Device& dev, double t_done_us, const std::string& what) {
  const double exposed = dev.wait_comm_until(t_done_us, what);
  stats_.exposed_us += exposed;
  return exposed;
}

double ProcessGroup::all_reduce(simgpu::Device& dev, int64_t bytes,
                                const std::string& what) {
  return wait(dev, all_reduce_begin(dev, bytes, what), what);
}

double ProcessGroup::all_gather(simgpu::Device& dev, int64_t full_bytes,
                                const std::string& what) {
  return wait(dev, all_gather_begin(dev, full_bytes, what), what);
}

}  // namespace ls2::dist
