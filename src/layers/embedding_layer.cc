#include "layers/embedding_layer.h"

#include <cmath>

#include "kernels/embedding.h"

namespace ls2::layers {

EmbeddingLayer::EmbeddingLayer(ParamRegistry& params, const std::string& prefix,
                               EmbeddingConfig cfg, ParamRef tied_table)
    : cfg_(cfg), params_(&params) {
  if (tied_table.valid()) {
    table_ = tied_table;
    LS2_CHECK(params.shape(table_) == (Shape{cfg.vocab, cfg.hidden}))
        << "tied embedding shape mismatch";
  } else {
    table_ = params.declare(prefix + ".token_embedding", Shape{cfg.vocab, cfg.hidden},
                            Init::kNormal);
  }
}

Tensor EmbeddingLayer::forward(LayerContext& ctx, const Tensor& ids) {
  LS2_CHECK(ids.dtype() == DType::kI32);
  const int64_t B = ids.shape()[0], L = ids.shape()[-1];
  LS2_CHECK_LE(L, cfg_.max_len);
  const Tensor table = params_->value(table_);
  if (!pos_.defined() || pos_.dtype() != table.dtype()) {
    Tensor pos_f32 = Tensor::empty({cfg_.max_len, cfg_.hidden}, DType::kF32);
    kern::init_sinusoidal_positions(pos_f32);
    pos_ = Tensor::empty({cfg_.max_len, cfg_.hidden}, table.dtype());
    pos_.copy_from(pos_f32.to_vector());
  }
  Tensor y = ctx.alloc({B, L, cfg_.hidden}, table.dtype());
  Tensor mask = ctx.alloc({B, L, cfg_.hidden}, DType::kU8);
  const float scale = std::sqrt(static_cast<float>(cfg_.hidden));
  kern::embedding_fw(ctx.kern, ctx.policy.embedding, ids, table,
                     pos_.slice(0, L), y, mask, scale, cfg_.dropout,
                     ctx.kern.next_dropout_stream(), cfg_.pad_id);
  saved_ = Saved{ids, mask};
  return y;
}

void EmbeddingLayer::backward(LayerContext& ctx, const Tensor& dy) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  const float scale = std::sqrt(static_cast<float>(cfg_.hidden));
  // Gradients were zeroed at step start; with tied embeddings the output
  // projection has already accumulated into this table's grad.
  kern::embedding_bw(ctx.kern, ctx.policy.embedding, dy, saved_->ids, saved_->mask,
                     params_->grad(table_), scale, cfg_.dropout, cfg_.pad_id,
                     /*zero_first=*/false);
  release();
}

void EmbeddingLayer::release() { saved_.reset(); }

}  // namespace ls2::layers
