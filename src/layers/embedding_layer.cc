#include "layers/embedding_layer.h"

#include <cmath>

#include "kernels/embedding.h"

namespace ls2::layers {

EmbeddingLayer::EmbeddingLayer(ParamRegistry& params, const std::string& prefix,
                               EmbeddingConfig cfg, TpParam tied_table)
    : cfg_(cfg), params_(&params) {
  if (tied_table.valid()) {
    table_ = tied_table;
    LS2_CHECK(table_.full_shape() == (Shape{cfg.vocab, cfg.hidden}))
        << "tied embedding shape mismatch";
  } else {
    LS2_CHECK(cfg.tp.size <= 1 || cfg.vocab % cfg.tp.size == 0)
        << "vocab " << cfg.vocab << " not divisible by tp " << cfg.tp.size
        << " — pad the vocab (Megatron discipline)";
    table_ = TpParam::declare(params, cfg.tp, prefix + ".token_embedding",
                              Shape{cfg.vocab, cfg.hidden}, Init::kNormal, /*dim=*/0);
  }
}

void EmbeddingLayer::ensure_positions(DType dtype) {
  if (pos_.defined() && pos_.dtype() == dtype) return;
  Tensor pos_f32 = Tensor::empty({cfg_.max_len, cfg_.hidden}, DType::kF32);
  kern::init_sinusoidal_positions(pos_f32);
  pos_ = Tensor::empty({cfg_.max_len, cfg_.hidden}, dtype);
  pos_.copy_from(pos_f32.to_vector());
}

Tensor EmbeddingLayer::forward(LayerContext& ctx, const Tensor& ids) {
  LS2_CHECK(ids.dtype() == DType::kI32);
  const int64_t B = ids.shape()[0], L = ids.shape()[-1];
  LS2_CHECK_LE(L, cfg_.max_len);
  // Under TP the lookup runs against the rank's vocab shard producing a
  // full-size partial (zero rows for foreign ids) that one TP all-reduce
  // completes — EXACT, since every row has a single owner. The emulation
  // assembles the full table and looks up directly: the same bits.
  const Tensor table = table_.value(ctx);
  ensure_positions(table.dtype());
  Tensor y = ctx.alloc({B, L, cfg_.hidden}, table.dtype());
  Tensor mask = ctx.alloc({B, L, cfg_.hidden}, DType::kU8);
  const float scale = std::sqrt(static_cast<float>(cfg_.hidden));
  kern::embedding_fw(ctx.kern, ctx.policy.embedding, ids, table,
                     pos_.slice(0, L), y, mask, scale, cfg_.dropout,
                     ctx.kern.next_dropout_stream(), cfg_.pad_id);
  if (ctx.tp_size() > 1) {
    ctx.tp_group->all_reduce(ctx.device(), static_cast<int64_t>(y.bytes()),
                             "tp.embed.allreduce");
  }
  saved_ = Saved{ids, mask};
  return y;
}

Tensor EmbeddingLayer::prefill(LayerContext& ctx, const Tensor& ids) {
  LS2_CHECK(ctx.tp_size() == 1) << "serving paths run unsharded (TP is a training feature)";
  LS2_CHECK(ids.dtype() == DType::kI32);
  const int64_t B = ids.shape()[0], L = ids.shape()[-1];
  LS2_CHECK_LE(L, cfg_.max_len);
  const Tensor table = table_.value(ctx);
  ensure_positions(table.dtype());
  Tensor y = ctx.alloc({B, L, cfg_.hidden}, table.dtype());
  Tensor mask = ctx.alloc({B, L, cfg_.hidden}, DType::kU8);
  const float scale = std::sqrt(static_cast<float>(cfg_.hidden));
  kern::embedding_fw(ctx.kern, ctx.policy.embedding, ids, table, pos_.slice(0, L), y, mask,
                     scale, /*p=*/0.0f, ctx.kern.next_dropout_stream(), cfg_.pad_id);
  return y;
}

Tensor EmbeddingLayer::decode_step(LayerContext& ctx, const Tensor& ids,
                                   const Tensor& positions) {
  LS2_CHECK(ctx.tp_size() == 1) << "serving paths run unsharded (TP is a training feature)";
  LS2_CHECK(ids.dtype() == DType::kI32);
  const int64_t S = ids.shape()[0];
  LS2_CHECK_EQ(ids.numel(), S) << "decode_step takes one token per slot";
  const Tensor table = table_.value(ctx);
  ensure_positions(table.dtype());
  Tensor y = ctx.alloc({S, 1, cfg_.hidden}, table.dtype());
  const float scale = std::sqrt(static_cast<float>(cfg_.hidden));
  kern::embedding_decode_fw(ctx.kern, ctx.policy.embedding, ids, table, pos_, positions, y,
                            scale, cfg_.pad_id);
  return y;
}

void EmbeddingLayer::backward(LayerContext& ctx, const Tensor& dy) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  const float scale = std::sqrt(static_cast<float>(cfg_.hidden));
  // Gradients were zeroed at step start; with tied embeddings the output
  // projection has already accumulated into this table's grad. Under TP the
  // scatter-add is LOCAL — each rank only owns its vocab rows — which the
  // gather->scatter grad scope reproduces slice-exactly.
  if (ctx.pp != nullptr) {
    // Microbatched execution: a tied table's grad has multiple writers (the
    // criterion's dW GEMM, and every embedding sharing it), and the
    // single-batch run orders them all-GEMM-then-scatter-by-scatter.
    // Running this scatter per microbatch would interleave the writers and
    // change the FP addition chain, so hold each microbatch's inputs back
    // and flush them in order on the step's last backward — from here, so
    // the model's grad-ready notification still follows the final write.
    deferred_.push_back({dy, saved_->ids, saved_->mask});
    if (ctx.pp_flush) {
      auto d_table = table_.grad(ctx);
      for (const Deferred& e : deferred_) {
        kern::embedding_bw(ctx.kern, ctx.policy.embedding, e.dy, e.ids, e.mask,
                           d_table.tensor(), scale, cfg_.dropout, cfg_.pad_id,
                           /*zero_first=*/false);
      }
      deferred_.clear();
    }
    release();
    return;
  }
  auto d_table = table_.grad(ctx);
  kern::embedding_bw(ctx.kern, ctx.policy.embedding, dy, saved_->ids, saved_->mask,
                     d_table.tensor(), scale, cfg_.dropout, cfg_.pad_id,
                     /*zero_first=*/false);
  release();
}

void EmbeddingLayer::release() { saved_.reset(); }

}  // namespace ls2::layers
