// Tensor-parallel parameter handles for layers (DESIGN.md §7).
//
// The repo simulates rank 0 of the TP group. Parameters are STORED sharded
// — rank 0's shard in the model's device registry (so bucketing, the flat
// trainer, memory accounting and checkpoints all see one rank's bytes),
// peer shards in a heap-side registry when numerics are simulated — and
// kernels are CHARGED at shard scale with TP collectives on the comm
// stream. The NUMERICS run on full tensors assembled from the shards:
// that is bitwise what real sharded arithmetic would produce, because
//
//   * column-parallel outputs / row-parallel inputs are plain slices, and
//   * the row-parallel partial-sum reduction is simulated as an IN-ORDER
//     ring: partials accumulate in ascending rank order, which is exactly
//     the host GEMM's ascending-k accumulation over the reassembled k dim
//     (proven bitwise by tensor_parallel_test's ShardedGemmTest.ColumnAndRowShardingMatchFullBitwise).
//
// TpParam is the per-layer handle: `value()` yields the full weight
// (assembled when sharded; the registry tensor otherwise), `grad()` opens a
// gather -> accumulate -> scatter scope so backward kernels accumulate into
// gradients exactly as in the unsharded model, with the results landing in
// the shards.
#pragma once

#include <string>
#include <vector>

#include "layers/layer_context.h"
#include "layers/params.h"

namespace ls2::layers {

class TpParam {
 public:
  TpParam() = default;

  /// Wrap an existing plain (replicated or tp==1) declaration.
  static TpParam plain(ParamRegistry& reg, ParamRef ref);

  /// Declare a logical parameter, sharded across `tp.size` ranks along
  /// `dim` (with `groups` packed row groups when dim == 0). With tp.size ==
  /// 1 this is exactly a plain declare — same name, same stream. Rank 0's
  /// shard lands in `reg` under the plain name; peers (when tp.peers is
  /// set) land in the peer registry as name.tp<r> with rank 0's RNG stream,
  /// so all shards reassemble bitwise into the unsharded initialisation.
  static TpParam declare(ParamRegistry& reg, const TpDecl& tp, const std::string& name,
                         Shape full_shape, Init init, int dim = 0, int64_t groups = 1);

  bool valid() const { return reg_ != nullptr; }
  bool sharded() const { return shard_count_ > 1; }
  int shard_count() const { return shard_count_; }
  /// Rank 0's declaration — the handle bucketing/checkpointing sees.
  ParamRef rank0() const { return ref_; }
  const Shape& full_shape() const;

  /// The FULL weight for this step's math: the registry tensor when
  /// unsharded; otherwise a heap scratch assembled from the shards (the
  /// assembly is emulation bookkeeping — a real rank GEMMs its shard
  /// directly — so it is uncharged, and skipped outside execute mode).
  Tensor value(LayerContext& ctx) const;

  /// RAII full-gradient scope: tensor() is the full gradient buffer,
  /// gathered from the shards on entry and scattered back on exit, so
  /// accumulate-in-place kernels (GEMM beta=1, bias_grad, embedding_bw) see
  /// exactly the unsharded buffer semantics. Direct registry view (no
  /// copies) when unsharded.
  class GradScope {
   public:
    GradScope(const TpParam& p, LayerContext& ctx);
    GradScope(GradScope&& o) noexcept;
    GradScope(const GradScope&) = delete;
    GradScope& operator=(const GradScope&) = delete;
    GradScope& operator=(GradScope&&) = delete;
    ~GradScope();
    const Tensor& tensor() const { return full_; }

   private:
    const TpParam* param_ = nullptr;
    bool scatter_ = false;
    Tensor full_;
  };
  GradScope grad(LayerContext& ctx) const { return GradScope(*this, ctx); }

 private:
  friend class GradScope;
  /// Every shard's (registry, ref) pair, rank-ascending; size shard_count_
  /// when peers are simulated, 1 otherwise.
  std::vector<std::pair<const ParamRegistry*, ParamRef>> all_shards() const;

  ParamRegistry* reg_ = nullptr;    ///< rank-0 / device registry
  ParamRegistry* peers_ = nullptr;  ///< peer registry (nullptr: rank 0 only)
  ParamRef ref_;                    ///< rank-0 shard
  std::vector<ParamRef> peer_refs_;
  int shard_count_ = 1;
};

/// RAII shard-scale charging for the row-wise kernels between a TP layer's
/// GEMMs (transforms, softmax, dropout, bias chains): while alive, launches
/// are charged at 1/k bytes and flops — exact for these bandwidth-bound
/// kernels. No-op when TP is off.
class TpChargeScale {
 public:
  explicit TpChargeScale(LayerContext& ctx) : dev_(&ctx.device()) {
    const int k = ctx.tp_size();
    if (k > 1) {
      dev_->push_charge_scale(1.0 / static_cast<double>(k));
      active_ = true;
    }
  }
  ~TpChargeScale() {
    if (active_) dev_->pop_charge_scale();
  }
  TpChargeScale(const TpChargeScale&) = delete;
  TpChargeScale& operator=(const TpChargeScale&) = delete;

 private:
  simgpu::Device* dev_;
  bool active_ = false;
};

}  // namespace ls2::layers
