#include "layers/linear.h"

#include "gemm/gemm_device.h"

namespace ls2::layers {

void linear_fw(LayerContext& ctx, const Tensor& x, const Tensor& w, const Tensor& y,
               const std::string& tag) {
  const Shape xf = x.shape().flatten_2d();
  const int64_t m = xf[0], in = xf[1];
  LS2_CHECK_EQ(w.shape().rank(), 2);
  const int64_t out = w.shape()[0];
  LS2_CHECK_EQ(w.shape()[1], in) << tag;
  LS2_CHECK_EQ(y.numel(), m * out) << tag;
  gemm::device_gemm(ctx.device(), /*trans_a=*/false, /*trans_b=*/true, m, out, in, 1.0f, x,
                    w, 0.0f, y, tag + ".fw");
}

void linear_bw(LayerContext& ctx, const Tensor& dy, const Tensor& x, const Tensor& w,
               const Tensor& dx, const Tensor& dw, const std::string& tag) {
  const Shape xf = x.shape().flatten_2d();
  const int64_t m = xf[0], in = xf[1];
  const int64_t out = w.shape()[0];
  LS2_CHECK_EQ(dy.numel(), m * out) << tag;
  if (dx.defined()) {
    LS2_CHECK_EQ(dx.numel(), m * in) << tag;
    gemm::device_gemm(ctx.device(), false, false, m, in, out, 1.0f, dy, w, 0.0f, dx,
                      tag + ".bw_dx");
  }
  // Accumulate so shared weights (e.g. tied embeddings) sum contributions.
  gemm::device_gemm(ctx.device(), /*trans_a=*/true, /*trans_b=*/false, out, in, m, 1.0f, dy,
                    x, 1.0f, dw, tag + ".bw_dw");
}

}  // namespace ls2::layers
