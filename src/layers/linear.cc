#include "layers/linear.h"

#include "gemm/gemm_device.h"

namespace ls2::layers {

void linear_fw(LayerContext& ctx, const Tensor& x, const Tensor& w, const Tensor& y,
               const std::string& tag) {
  const Shape xf = x.shape().flatten_2d();
  const int64_t m = xf[0], in = xf[1];
  LS2_CHECK_EQ(w.shape().rank(), 2);
  const int64_t out = w.shape()[0];
  LS2_CHECK_EQ(w.shape()[1], in) << tag;
  LS2_CHECK_EQ(y.numel(), m * out) << tag;
  gemm::device_gemm(ctx.device(), /*trans_a=*/false, /*trans_b=*/true, m, out, in, 1.0f, x,
                    w, 0.0f, y, tag + ".fw");
}

void linear_bw(LayerContext& ctx, const Tensor& dy, const Tensor& x, const Tensor& w,
               const Tensor& dx, const Tensor& dw, const std::string& tag) {
  const Shape xf = x.shape().flatten_2d();
  const int64_t m = xf[0], in = xf[1];
  const int64_t out = w.shape()[0];
  LS2_CHECK_EQ(dy.numel(), m * out) << tag;
  if (dx.defined()) {
    LS2_CHECK_EQ(dx.numel(), m * in) << tag;
    gemm::device_gemm(ctx.device(), false, false, m, in, out, 1.0f, dy, w, 0.0f, dx,
                      tag + ".bw_dx");
  }
  // Accumulate so shared weights (e.g. tied embeddings) sum contributions.
  gemm::device_gemm(ctx.device(), /*trans_a=*/true, /*trans_b=*/false, out, in, m, 1.0f, dy,
                    x, 1.0f, dw, tag + ".bw_dw");
}

void tp_linear_fw(LayerContext& ctx, const Tensor& x, const Tensor& w, const Tensor& y,
                  const std::string& tag, TpSplit split) {
  const int64_t k = ctx.tp_size();
  if (k <= 1) {
    linear_fw(ctx, x, w, y, tag);
    return;
  }
  const Shape xf = x.shape().flatten_2d();
  const int64_t m = xf[0], in = xf[1];
  const int64_t out = w.shape()[0];
  LS2_CHECK_EQ(w.shape()[1], in) << tag;
  LS2_CHECK_EQ(y.numel(), m * out) << tag;
  const bool col = split == TpSplit::kColumn;
  LS2_CHECK((col ? out : in) % k == 0) << tag << ": " << (col ? out : in) << " % " << k;
  const gemm::GemmCharge charge{m, col ? out / k : out, col ? in : in / k, 1};
  gemm::device_gemm(ctx.device(), false, /*trans_b=*/true, m, out, in, 1.0f, x, w, 0.0f, y,
                    tag + ".fw", &charge);
}

void tp_linear_bw(LayerContext& ctx, const Tensor& dy, const Tensor& x, const Tensor& w,
                  const Tensor& dx, const Tensor& dw, const std::string& tag,
                  TpSplit split) {
  const int64_t k = ctx.tp_size();
  if (k <= 1) {
    linear_bw(ctx, dy, x, w, dx, dw, tag);
    return;
  }
  const Shape xf = x.shape().flatten_2d();
  const int64_t m = xf[0], in = xf[1];
  const int64_t out = w.shape()[0];
  LS2_CHECK_EQ(dy.numel(), m * out) << tag;
  const bool col = split == TpSplit::kColumn;
  double ar_done = -1.0;
  if (dx.defined()) {
    LS2_CHECK_EQ(dx.numel(), m * in) << tag;
    // kColumn dx: partials over the sharded out dim, summed by the in-order
    // TP ring — bitwise the full GEMM's ascending-k accumulation.
    // kRow dx: the rank's own input slice, fully local.
    const gemm::GemmCharge charge{m, col ? in : in / k, col ? out / k : out, 1};
    gemm::device_gemm(ctx.device(), false, false, m, in, out, 1.0f, dy, w, 0.0f, dx,
                      tag + ".bw_dx", &charge);
    if (col) {
      ar_done = ctx.tp_group->all_reduce_begin(
          ctx.device(), static_cast<int64_t>(dx.bytes()), tag + ".bw_dx.allreduce");
    }
  }
  const gemm::GemmCharge wcharge{col ? out / k : out, col ? in : in / k, m, 1};
  gemm::device_gemm(ctx.device(), /*trans_a=*/true, false, out, in, m, 1.0f, dy, x, 1.0f,
                    dw, tag + ".bw_dw", &wcharge);
  if (ar_done >= 0) {
    ctx.tp_group->wait(ctx.device(), ar_done, tag + ".bw_dx.allreduce");
  }
}

}  // namespace ls2::layers
