#include "layers/criterion_layer.h"

#include "kernels/criterion.h"
#include "layers/linear.h"

namespace ls2::layers {

CriterionLayer::CriterionLayer(ParamRegistry& params, const std::string& prefix,
                               CriterionConfig cfg, TpParam tied_table)
    : cfg_(cfg), params_(&params) {
  if (tied_table.valid()) {
    proj_ = tied_table;
    LS2_CHECK(proj_.full_shape() == (Shape{cfg.vocab, cfg.hidden}))
        << "tied table shape mismatch";
  } else {
    LS2_CHECK(cfg.tp.size <= 1 || cfg.vocab % cfg.tp.size == 0)
        << "vocab " << cfg.vocab << " not divisible by tp " << cfg.tp.size
        << " — pad the vocab (Megatron discipline)";
    proj_ = TpParam::declare(params, cfg.tp, prefix + ".output_projection",
                             Shape{cfg.vocab, cfg.hidden}, Init::kNormal, /*dim=*/0);
  }
}

CriterionResult CriterionLayer::forward(LayerContext& ctx, const Tensor& x,
                                        const Tensor& targets) {
  const int64_t B = x.shape()[0], L = x.shape()[1];
  const int64_t rows = B * L;
  LS2_CHECK_EQ(targets.numel(), rows);
  const DType dt = x.dtype();

  // Vocab-sharded projection: each rank computes a [rows, vocab/tp] column
  // slice (exact), then a TP all-gather concatenates the full logits every
  // rank needs for the softmax/CE reduction — also exact, so parity holds.
  Tensor logits = ctx.alloc({rows, cfg_.vocab}, dt);
  tp_linear_fw(ctx, x, proj_.value(ctx), logits, "criterion.proj", TpSplit::kColumn);
  if (ctx.tp_size() > 1) {
    ctx.tp_group->all_gather(ctx.device(), static_cast<int64_t>(logits.bytes()),
                             "tp.criterion.gather");
  }

  Tensor loss = ctx.alloc({rows}, DType::kF32);
  Tensor stats = ctx.alloc({rows, 2}, DType::kF32);
  kern::ls_cross_entropy_fw(ctx.kern, ctx.policy.criterion, logits, targets, loss, stats,
                            cfg_.label_smoothing, cfg_.pad_id);

  // Under microbatched execution the carry continues the double accumulator
  // across slices, so the final microbatch's total is bitwise the
  // full-batch sum (kernels/criterion.h).
  Tensor total = ctx.alloc({1}, DType::kF32);
  kern::reduce_sum(ctx.kern, loss, total, ctx.pp_loss_carry);

  int64_t valid = 0;
  CriterionResult result;
  if (ctx.device().mode() == simgpu::ExecMode::kExecute) {
    const auto tv = targets.to_vector();
    for (float t : tv) {
      if (static_cast<int32_t>(t) != cfg_.pad_id) ++valid;
    }
    result.loss_sum = total.item();
  } else {
    valid = rows;  // timing-only mode: shape bookkeeping
  }
  result.tokens = valid;
  saved_ = Saved{x, targets, logits, stats, valid};
  return result;
}

Tensor CriterionLayer::backward(LayerContext& ctx) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.x.shape()[0], L = s.x.shape()[1], H = s.x.shape()[2];
  const int64_t rows = B * L;
  const DType dt = s.x.dtype();
  // Mean-per-token gradient, multiplied by the session's loss scale (the
  // mixed-precision discipline: scale the loss up here, un-scale in the
  // trainer's update — a power-of-two round trip that is exact in FP32).
  // Under microbatched execution (pipeline parallelism) the denominator is
  // the GLOBAL valid-token count — a microbatch's gradient contribution
  // must be scaled exactly as its rows were in the single-batch run.
  const int64_t denom = ctx.pp_denominator > 0 ? ctx.pp_denominator : s.valid_tokens;
  const float grad_scale =
      (denom > 0 ? 1.0f / static_cast<float>(denom) : 0.0f) * ctx.loss_scale;

  Tensor dlogits = ctx.alloc({rows, cfg_.vocab}, dt);
  kern::ls_cross_entropy_bw(ctx.kern, ctx.policy.criterion, s.logits, s.targets, s.stats,
                            dlogits, cfg_.label_smoothing, grad_scale, cfg_.pad_id);

  // Column-parallel backward: dx partials all-reduce over the TP group
  // (the criterion's backward collective), overlapped with the projection
  // gradient GEMM inside tp_linear_bw. With tied embeddings that GEMM
  // accumulates into the rank's vocab shard of the shared table.
  Tensor dx = ctx.alloc({B, L, H}, dt);
  {
    auto dproj = proj_.grad(ctx);
    tp_linear_bw(ctx, dlogits, s.x, proj_.value(ctx), dx, dproj.tensor(),
                 "criterion.proj", TpSplit::kColumn);
  }
  release();
  return dx;
}

Tensor CriterionLayer::infer_logits(LayerContext& ctx, const Tensor& x) {
  LS2_CHECK(ctx.tp_size() == 1) << "serving paths run unsharded (TP is a training feature)";
  const int64_t rows = x.shape()[0] * x.shape()[1];
  Tensor logits = ctx.alloc({rows, cfg_.vocab}, x.dtype());
  linear_fw(ctx, x, proj_.value(ctx), logits, "criterion.proj");
  return logits;
}

void CriterionLayer::release() { saved_.reset(); }

}  // namespace ls2::layers
