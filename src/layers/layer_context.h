// Execution policy and per-step context for layers.
//
// Every layer runs under a System policy that selects which kernel family
// implements each op — this is how the same layer code acts as Fairseq,
// Fairseq+Apex, DeepSpeed or LightSeq2 (Table I / Table II baselines):
//
//   kFairseq     — fine-grained kernels everywhere, dynamic allocations.
//                  (Also stands in for Hugging Face, which likewise runs
//                  native PyTorch ops.)
//   kFairseqApex — Apex adds fused LayerNorm/Softmax kernels and the fused
//                  FP32-master trainer, but no fused embedding/criterion/
//                  element-wise chains.
//   kDeepSpeed   — fully fused *encoder* kernels (its own LN/Softmax
//                  variants), baseline embedding/criterion, sequence
//                  lengths must be padded to multiples of 16, no decoder.
//   kLightSeq2   — all LightSeq2 fused kernels, arbitrary lengths, arena
//                  memory, fused FP16 trainer.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dist/process_group.h"
#include "kernels/dropout.h"
#include "kernels/kernel_context.h"

namespace ls2::layers {

enum class System { kFairseq, kFairseqApex, kDeepSpeed, kLightSeq2 };

const char* system_name(System s);

/// Which kernel implementation each op family uses under a system.
struct Policy {
  System system = System::kLightSeq2;
  kern::Impl elementwise = kern::Impl::kLS2;  ///< kTorch => unfused chains
  kern::Impl layernorm = kern::Impl::kLS2;
  kern::Impl softmax = kern::Impl::kLS2;
  kern::Impl embedding = kern::Impl::kLS2;
  kern::Impl criterion = kern::Impl::kLS2;
  kern::Impl transform = kern::Impl::kLS2;
  bool fused_elementwise = true;  ///< bias+act+dropout(+residual) in one launch
  bool layer_batched_cross_attn = true;  ///< Fig. 5(b) batched K/V projection
  int seq_multiple = 1;  ///< DeepSpeed: lengths padded up to a multiple of 16
  bool supports_decoder = true;
};

Policy policy_for(System system);

/// Pipeline-parallel runtime hooks (DESIGN.md §9), installed by the 1F1B
/// engine (core/pp_step.h) while it drives a microbatch through the model.
/// Models call pp_mark() / LayerContext::pp_enter at every stage boundary:
/// ascending stages during forward, descending during backward, `payload`
/// the bytes the boundary activation (or its gradient) puts on the wire.
struct PpHooks {
  std::function<void(int stage, bool forward, int64_t payload_bytes)> enter;
};

/// Per-run state threaded through all layers.
class LayerContext {
 public:
  LayerContext(simgpu::Device& device, BufferAllocator* activation_alloc, Policy policy,
               uint64_t seed)
      : kern(device, activation_alloc, seed),
        policy(policy),
        act_alloc_(activation_alloc ? activation_alloc : heap_allocator()) {}

  /// Allocate an activation / temporary for the current step.
  Tensor alloc(Shape shape, DType dtype) {
    return Tensor::empty(std::move(shape), dtype, act_alloc_);
  }

  /// Allocate an activation that tensor parallelism shards 1/k per device
  /// (DESIGN.md §7): the returned tensor is FULL-shape (the emulation runs
  /// the unsharded arithmetic, which is bitwise what the shards reassemble
  /// to) and heap-backed, while one shard's bytes are reserved from the
  /// device activation allocator so per-device memory accounting — arena
  /// sizing, capacity scans, OOM — sees what a real TP rank would allocate.
  /// Reservations live until release_tp_reservations() (Session::end_step).
  /// Identical to alloc() when TP is off.
  Tensor alloc_shard(Shape shape, DType dtype) {
    const int k = tp_size();
    if (k <= 1) return alloc(std::move(shape), dtype);
    const int64_t shard_bytes = static_cast<int64_t>(
        (shape.numel() * static_cast<int64_t>(dtype_size(dtype)) + k - 1) / k);
    tp_reservations_.push_back(
        Tensor::empty({shard_bytes}, DType::kU8, act_alloc_));
    return Tensor::empty(std::move(shape), dtype);
  }

  /// Drop the per-step shard reservations (before the arena's end-of-step
  /// reset, which asserts everything was returned).
  void release_tp_reservations() { tp_reservations_.clear(); }

  simgpu::Device& device() { return kern.dev; }
  BufferAllocator* activation_allocator() { return act_alloc_; }
  int tp_size() const { return tp_group ? tp_group->tp_size() : 1; }

  /// Swap the activation allocator (and the kernel scratch allocator, which
  /// aliases it). The 1F1B engine uses this at stage boundaries: stage 0's
  /// activations live in the session arena — the simulated rank-0 memory —
  /// while stages >= 1 charge a private remote-stage allocator, so rank 0's
  /// footprint reflects only the layers it would actually host.
  void set_activation_allocator(BufferAllocator* a) {
    act_alloc_ = a ? a : heap_allocator();
    kern.scratch = act_alloc_;
  }

  /// Notify the pipeline engine of a stage boundary (no-op without PP).
  void pp_enter(int stage, bool forward, int64_t payload_bytes = 0) {
    if (pp && pp->enter) pp->enter(stage, forward, payload_bytes);
  }

  kern::KernelContext kern;
  Policy policy;
  /// Tensor-parallel communicator (DESIGN.md §7), or nullptr when TP is
  /// off. Installed by the run's owner (bench/test) after session creation;
  /// TP-enabled layers charge their collectives through it.
  dist::ProcessGroup* tp_group = nullptr;
  /// Loss scale the criterion multiplies into the backward seed, so FP16
  /// gradients stay above the representable range's floor (and survive an
  /// FP16 wire). train_step sets it from the trainer's expected scale each
  /// step; the trainer divides it back out during the update.
  float loss_scale = 1.0f;
  /// Pipeline-parallel hooks, or nullptr when PP is off (core/pp_step.h
  /// installs them around each microbatch's forward/backward).
  PpHooks* pp = nullptr;
  /// Running double accumulators for the loss (and the secondary metric —
  /// BERT/ViT accuracy) under microbatched execution: when non-null the
  /// criterion continues these across microbatches so the final float cast
  /// is bitwise the full-batch reduction's. Null outside PP.
  double* pp_loss_carry = nullptr;
  double* pp_metric_carry = nullptr;
  /// Global loss denominator override (valid tokens for token criteria,
  /// batch size for classification) under microbatched execution: each
  /// microbatch sees only its slice, but the gradient scale 1/denominator
  /// must use the FULL batch's count to match the single-batch run. 0 = off.
  int64_t pp_denominator = 0;
  /// True while the step's LAST microbatch runs: layers that held work back
  /// across microbatches (EmbeddingLayer's deferred tied-table scatters)
  /// must flush it during this backward. Always false outside PP.
  bool pp_flush = false;

 private:
  BufferAllocator* act_alloc_;
  std::vector<Tensor> tp_reservations_;
};

/// Pad a sequence length up to the policy's required multiple (DeepSpeed's
/// ×16 restriction; identity for everyone else).
int64_t pad_length(const Policy& policy, int64_t len);

}  // namespace ls2::layers
