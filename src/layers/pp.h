// Pipeline-parallel stage partition (DESIGN.md §9).
//
// A model partitions its components across `stages` consecutive pipeline
// stages: the embedding on the first stage, a contiguous run of transformer
// blocks per stage, the criterion (and any head) on the last. pp_configure
// on each model records which declaration ranges live on which stage in a
// PpPlan; the 1F1B engine (core/pp_step.h) uses the plan to
//
//   * map grad-ready notifications to stages (per-stage DP buckets),
//   * size each stage's optimizer slice of the flat parameter buffer,
//   * account the tied-embedding gradient hop (last stage -> stage 0).
//
// The plan is pure bookkeeping — the simulation still executes the FULL
// model on the session device; stage boundaries are marked at runtime via
// LayerContext::pp (layer_context.h) so the engine can time each stage's
// chunk and swap the activation allocator per stage.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "layers/params.h"

namespace ls2::layers {

/// One model's layer-to-stage assignment.
struct PpPlan {
  int stages = 1;
  /// Parameter declaration ranges owned by each stage (size == stages).
  /// Ranges within a stage are ascending and non-overlapping across stages.
  std::vector<std::vector<ParamRange>> stage_params;
  /// Bytes of the tied embedding table (declared on stage 0, ALSO written
  /// by the last stage's criterion backward). 0 when untied: the engine
  /// must then charge one extra gradient send last-stage -> stage 0 before
  /// the table's DP bucket can launch.
  int64_t tied_table_bytes = 0;
  /// The tied table parameter itself (invalid when untied).
  ParamRef tied_param;
};

/// Merged, ascending gradient-byte spans [lo, hi) per stage. Consecutive
/// declaration ranges coalesce, so most stages come out as one span; the
/// spans of all stages tile the flat gradient buffer exactly (every param
/// belongs to exactly one stage).
inline std::vector<std::vector<std::pair<size_t, size_t>>> stage_byte_spans(
    const PpPlan& plan, const ParamRegistry& params) {
  std::vector<std::vector<std::pair<size_t, size_t>>> spans(
      static_cast<size_t>(plan.stages));
  for (int s = 0; s < plan.stages; ++s) {
    for (const ParamRange& r : plan.stage_params[static_cast<size_t>(s)]) {
      for (int i = r.begin; i < r.end; ++i) {
        const auto [lo, hi] = params.grad_byte_span(i);
        auto& out = spans[static_cast<size_t>(s)];
        if (!out.empty() && out.back().second == lo) {
          out.back().second = hi;  // coalesce adjacent params
        } else {
          out.emplace_back(lo, hi);
        }
      }
    }
  }
  return spans;
}

/// The stage owning gradient byte `b`, per the merged spans (-1 if none —
/// cannot happen for a well-formed plan).
inline int stage_of_byte(
    const std::vector<std::vector<std::pair<size_t, size_t>>>& spans, size_t b) {
  for (size_t s = 0; s < spans.size(); ++s) {
    for (const auto& [lo, hi] : spans[s]) {
      if (b >= lo && b < hi) return static_cast<int>(s);
    }
  }
  return -1;
}

/// Split `count` transformer blocks over `stages` stages as evenly as
/// possible, earlier stages taking the remainder (block b lives on stage
/// block_stage(b)). Shared by all four models so fig_3d's partitions match
/// the tests'.
inline int block_stage(int64_t block, int64_t count, int stages) {
  // Stage s owns blocks [ceil(s*count/stages), ceil((s+1)*count/stages)) —
  // contiguous runs whose sizes differ by at most one.
  return static_cast<int>(block * static_cast<int64_t>(stages) / count);
}

}  // namespace ls2::layers
