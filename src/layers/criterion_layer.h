// Criterion layer: output projection (optionally tied to the token
// embedding) followed by label-smoothed cross entropy (§IV-A.3).
#pragma once

#include <optional>
#include <string>

#include "layers/layer_context.h"
#include "layers/params.h"
#include "layers/tp.h"

namespace ls2::layers {

struct CriterionConfig {
  int64_t vocab = 32000;
  int64_t hidden = 512;
  float label_smoothing = 0.1f;
  int32_t pad_id = 0;  ///< targets equal to this contribute nothing
  /// Vocab-shards the (possibly tied) output projection: the logits GEMM is
  /// column-parallel — each rank computes a [rows, vocab/tp] slice — and a
  /// TP all-gather (exact concatenation) assembles the full logits every
  /// rank needs for the softmax/CE reduction. Backward's dx partial sum is
  /// the criterion's TP all-reduce. Note the gathered logits keep the
  /// full-vocab activation per rank; a fused vocab-parallel CE that never
  /// materialises them (Megatron's) is future work.
  TpDecl tp;
};

struct CriterionResult {
  float loss_sum = 0;    ///< total label-smoothed loss over valid tokens
  int64_t tokens = 0;    ///< number of valid (non-pad) tokens
  float loss_per_token() const { return tokens > 0 ? loss_sum / tokens : 0.0f; }
};

class CriterionLayer {
 public:
  /// `tied_table`: pass the embedding's table handle to share weights; an
  /// invalid handle declares a fresh projection matrix.
  CriterionLayer(ParamRegistry& params, const std::string& prefix, CriterionConfig cfg,
                 TpParam tied_table = {});

  /// x: [B, L, H] decoder output; targets: [B, L] i32.
  CriterionResult forward(LayerContext& ctx, const Tensor& x, const Tensor& targets);

  /// Gradient of mean-per-token loss w.r.t. x.
  Tensor backward(LayerContext& ctx);
  void release();

  /// Serving: just the output projection — logits [B*L, vocab] from
  /// x [B, L, H], no loss, nothing saved. Shares the (possibly tied)
  /// projection table with training, which is what makes a trained
  /// checkpoint servable as-is (§V-B).
  Tensor infer_logits(LayerContext& ctx, const Tensor& x);

 private:
  CriterionConfig cfg_;
  ParamRegistry* params_;
  TpParam proj_;

  struct Saved {
    Tensor x, targets, logits, stats;
    int64_t valid_tokens = 0;
  };
  std::optional<Saved> saved_;
};

}  // namespace ls2::layers
