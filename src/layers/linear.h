// Linear projection helpers over the device GEMM.
//
// Weights follow the [out_features, in_features] convention. Bias handling
// deliberately lives OUTSIDE these helpers: LightSeq2 fuses bias into the
// adjacent element-wise kernel (Fig. 4), so the GEMM never adds it.
#pragma once

#include "layers/layer_context.h"
#include "tensor/tensor.h"

namespace ls2::layers {

/// y[M, out] = x[M, in] @ W[out, in]^T.
void linear_fw(LayerContext& ctx, const Tensor& x, const Tensor& w, const Tensor& y,
               const std::string& tag);

/// dx[M, in] = dy[M, out] @ W[out, in];  dW[out, in] += dy^T @ x.
/// Pass an undefined dx to skip input gradients (first layer).
void linear_bw(LayerContext& ctx, const Tensor& dy, const Tensor& x, const Tensor& w,
               const Tensor& dx, const Tensor& dw, const std::string& tag);

}  // namespace ls2::layers
