// Linear projection helpers over the device GEMM.
//
// Weights follow the [out_features, in_features] convention. Bias handling
// deliberately lives OUTSIDE these helpers: LightSeq2 fuses bias into the
// adjacent element-wise kernel (Fig. 4), so the GEMM never adds it.
#pragma once

#include "layers/layer_context.h"
#include "tensor/tensor.h"

namespace ls2::layers {

/// y[M, out] = x[M, in] @ W[out, in]^T.
void linear_fw(LayerContext& ctx, const Tensor& x, const Tensor& w, const Tensor& y,
               const std::string& tag);

/// dx[M, in] = dy[M, out] @ W[out, in];  dW[out, in] += dy^T @ x.
/// Pass an undefined dx to skip input gradients (first layer).
void linear_bw(LayerContext& ctx, const Tensor& dy, const Tensor& x, const Tensor& w,
               const Tensor& dx, const Tensor& dw, const std::string& tag);

// --- tensor-parallel variants (DESIGN.md §7) ---
//
// Same math as linear_fw/linear_bw on the full tensors (the bitwise
// stand-in for the sharded arithmetic), but the device is charged for ONE
// rank's shard-shaped GEMM. kColumn shards the output features: no forward
// comm, and the backward dx is a cross-rank partial sum — tp_linear_bw
// enqueues its TP all-reduce right after the dx GEMM and stream-waits only
// after the dW GEMM, so weight-gradient work hides part of the transfer.
// kRow shards the input features: backward is fully local, and the FORWARD
// output is the partial sum — the caller charges that all-reduce (after
// tp_linear_fw, before anything consumes y). Identity when TP is off.

enum class TpSplit {
  kColumn,  ///< shard out-features; input replicated
  kRow,     ///< shard in-features; output is a partial sum
};

void tp_linear_fw(LayerContext& ctx, const Tensor& x, const Tensor& w, const Tensor& y,
                  const std::string& tag, TpSplit split);
void tp_linear_bw(LayerContext& ctx, const Tensor& dy, const Tensor& x, const Tensor& w,
                  const Tensor& dx, const Tensor& dw, const std::string& tag,
                  TpSplit split);

}  // namespace ls2::layers
