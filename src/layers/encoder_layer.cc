#include "layers/encoder_layer.h"

namespace ls2::layers {

TransformerEncoderLayer::TransformerEncoderLayer(ParamRegistry& params,
                                                 const std::string& prefix,
                                                 TransformerLayerConfig cfg)
    : attn_(params, prefix + ".self_attn", cfg.attention(cfg.causal)),
      ffn_(params, prefix + ".ffn", cfg.ffn()) {}

Tensor TransformerEncoderLayer::forward(LayerContext& ctx, const Tensor& x,
                                        const Tensor* key_lens) {
  Tensor h = attn_.forward(ctx, x, key_lens);
  return ffn_.forward(ctx, h);
}

Tensor TransformerEncoderLayer::prefill(LayerContext& ctx, const Tensor& x,
                                        const Tensor* key_lens, Tensor* k_out,
                                        Tensor* v_out) {
  Tensor h = attn_.prefill(ctx, x, key_lens, k_out, v_out);
  return ffn_.infer_forward(ctx, h);
}

Tensor TransformerEncoderLayer::decode_step(LayerContext& ctx, const Tensor& x,
                                            const Tensor& k_pool, const Tensor& v_pool,
                                            const Tensor& block_table,
                                            const Tensor& positions,
                                            const Tensor& attend_lens) {
  Tensor h = attn_.decode_step(ctx, x, k_pool, v_pool, block_table, positions, attend_lens);
  return ffn_.infer_forward(ctx, h);
}

Tensor TransformerEncoderLayer::backward(LayerContext& ctx, const Tensor& dy) {
  Tensor dh = ffn_.backward(ctx, dy);
  return attn_.backward(ctx, dh);
}

void TransformerEncoderLayer::release() {
  attn_.release();
  ffn_.release();
}

}  // namespace ls2::layers
