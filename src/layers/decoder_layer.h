// Transformer decoder layer (pre-LN): causal self-attention, cross-attention
// over the encoder output, feed-forward.
//
// Cross-attention keys/values arrive precomputed in head layout; under
// LightSeq2 the decoder *stack* computes them for all layers with one
// concatenated GEMM (layer-batched cross attention, Fig. 5b), while baseline
// policies compute each layer's K/V separately. Either way this layer only
// consumes them and accumulates their gradients.
#pragma once

#include <string>

#include "layers/encoder_layer.h"  // TransformerLayerConfig

namespace ls2::layers {

class TransformerDecoderLayer {
 public:
  TransformerDecoderLayer(ParamRegistry& params, const std::string& prefix,
                          TransformerLayerConfig cfg);

  /// x: [B, Lt, H]; k/v: [B, N, Ls, D]; src_lens masks encoder padding,
  /// tgt_lens masks decoder padding (on top of the causal mask).
  Tensor forward(LayerContext& ctx, const Tensor& x, const Tensor& k, const Tensor& v,
                 const Tensor* src_lens, const Tensor* tgt_lens);

  /// Returns dx; accumulates cross-attention K/V grads into dk/dv.
  Tensor backward(LayerContext& ctx, const Tensor& dy, const Tensor& dk, const Tensor& dv);
  void release();

  // --- serving (inference-only; see layers/attention.h) ---

  /// Prefill the target prefix: causal self-attention (K/V returned for the
  /// cache), cross attention over the per-slot cross K/V blocks
  /// (cross_k/cross_v [S, N, Ls_max, D], masked by src_lens), FFN.
  Tensor prefill(LayerContext& ctx, const Tensor& x, const Tensor* tgt_lens,
                 const Tensor& cross_k, const Tensor& cross_v, const Tensor* src_lens,
                 Tensor* k_out = nullptr, Tensor* v_out = nullptr);
  /// Single-token cached decode: self-attention through this layer's paged
  /// K/V pools, cross attention over the static per-lane cross K/V.
  Tensor decode_step(LayerContext& ctx, const Tensor& x, const Tensor& k_pool,
                     const Tensor& v_pool, const Tensor& block_table,
                     const Tensor& positions, const Tensor& attend_lens,
                     const Tensor& cross_k, const Tensor& cross_v,
                     const Tensor* src_lens);

 private:
  SelfAttention self_attn_;
  CrossAttention cross_attn_;
  FeedForward ffn_;
};

}  // namespace ls2::layers
