// Multi-head attention sublayers (pre-LayerNorm, residual inside).
//
//   SelfAttention:  y = x + Dropout(W_out · MHA(LN(x)) + b_out)
//   CrossAttention: queries come from the decoder stream; keys/values are
//     provided by the caller in head layout [B, N, Ls, D]. Under LightSeq2
//     the decoder stack computes them for ALL layers with one batched GEMM
//     (layer-batched cross attention, Fig. 5b); baselines compute them per
//     layer. Backward returns dx and accumulates into dk/dv.
//
// The backward pass draws its temporaries from the Fig. 8 shared-block plan
// under LightSeq2 (3·BLH + max(BL²N, 3·BLH) bytes in four blocks); baseline
// policies allocate each temporary individually from the dynamic allocator.
#pragma once

#include <optional>
#include <string>

#include "layers/layer_context.h"
#include "layers/params.h"
#include "layers/tp.h"

namespace ls2::layers {

struct AttentionConfig {
  int64_t hidden = 512;
  int64_t heads = 8;
  float attn_dropout = 0.1f;
  float out_dropout = 0.1f;
  bool causal = false;
  /// Megatron split (DESIGN.md §7): QKV/Q projections column-parallel by
  /// heads, the per-head attention core local to each rank, the output
  /// projection row-parallel — one TP all-reduce after it in forward and
  /// one after the QKV dx in backward. LN params and b_out replicated.
  TpDecl tp;
  int64_t head_dim() const { return hidden / heads; }
};

/// Shared core: scores -> masked softmax -> dropout -> context -> merge ->
/// output projection -> bias+dropout+residual. Owns W_out/b_out.
class AttentionCore {
 public:
  AttentionCore(ParamRegistry& params, const std::string& prefix, AttentionConfig cfg);

  /// q/k/v: [B, N, Lq|Lk, D]; residual: [B, Lq, H]. Returns y [B, Lq, H].
  Tensor forward(LayerContext& ctx, const Tensor& q, const Tensor& k, const Tensor& v,
                 const Tensor& residual, const Tensor* key_lens);

  /// Inference-only forward (serving): same math as forward at dropout p = 0,
  /// nothing saved for backward. `causal` is explicit because cached decode
  /// attends a single query over [0, len) — causal masking is encoded in
  /// key_lens there, while prefill keeps the config's causal mask. k/v may be
  /// gathered KV scratch [S, N, Lcap, D] whose tail rows key_lens masks off.
  Tensor infer_forward(LayerContext& ctx, const Tensor& q, const Tensor& k, const Tensor& v,
                       const Tensor& residual, const Tensor* key_lens, bool causal);

  /// Returns (dq, dk, dv) in head layout plus d_residual == dy contribution
  /// handled by the caller adding `dy` into its input gradient.
  struct CoreGrads {
    Tensor dq, dk, dv;
  };
  CoreGrads backward(LayerContext& ctx, const Tensor& dy);

  void release();

  const AttentionConfig& config() const { return cfg_; }

 private:
  AttentionConfig cfg_;
  ParamRegistry* params_;
  TpParam w_out_;
  ParamRef b_out_;

  struct Saved {
    Tensor q, k, v;          // head layout
    Tensor probs, probs_d;   // softmax output, after attention dropout
    Tensor attn_mask;        // u8
    Tensor merged;           // [B, Lq, H] context after head merge
    Tensor out_mask;         // u8, output dropout
    int64_t B = 0, Lq = 0, Lk = 0;
  };
  std::optional<Saved> saved_;
};

class SelfAttention {
 public:
  SelfAttention(ParamRegistry& params, const std::string& prefix, AttentionConfig cfg);

  Tensor forward(LayerContext& ctx, const Tensor& x, const Tensor* key_lens);
  Tensor backward(LayerContext& ctx, const Tensor& dy);
  void release();

  // --- serving (inference-only, no dropout, nothing saved) ---

  /// Full-prompt prefill: causal (per config) attention over x [B, Lp, H];
  /// `key_lens` masks right-padded prompts. The projected K/V (head layout
  /// [B, N, Lp, D]) are handed back through `k_out`/`v_out` for the caller
  /// to scatter into its KV cache (kern::kv_cache_store).
  Tensor prefill(LayerContext& ctx, const Tensor& x, const Tensor* key_lens,
                 Tensor* k_out = nullptr, Tensor* v_out = nullptr);

  /// Single-query cached decode: x [S, 1, H]. This step's K/V are appended
  /// into the paged pools (k_pool/v_pool [P, N, page, D]) through the
  /// lane-indexed `block_table` at logical row `positions[s]` BEFORE the
  /// scores GEMM; the cached rows [0, attend_lens[s]) are then gathered
  /// into contiguous zero-padded scratch the masked softmax reads — the
  /// causal structure reduces to the key-length bound at Lq = 1, and the
  /// zero padding keeps decode bitwise-identical to a contiguous cache.
  /// block_table/positions/attend_lens are host-written heap i32 read
  /// inside kernel bodies: replay-time graph parameters.
  Tensor decode_step(LayerContext& ctx, const Tensor& x, const Tensor& k_pool,
                     const Tensor& v_pool, const Tensor& block_table,
                     const Tensor& positions, const Tensor& attend_lens);

 private:
  AttentionConfig cfg_;
  ParamRegistry* params_;
  ParamRef ln_gamma_, ln_beta_;
  TpParam w_qkv_, b_qkv_;
  AttentionCore core_;

  struct Saved {
    Tensor x, ln, mean, rstd;
  };
  std::optional<Saved> saved_;
};

class CrossAttention {
 public:
  CrossAttention(ParamRegistry& params, const std::string& prefix, AttentionConfig cfg);

  /// k/v: [B, N, Ls, D] precomputed by the caller.
  Tensor forward(LayerContext& ctx, const Tensor& x, const Tensor& k, const Tensor& v,
                 const Tensor* src_lens);
  /// Returns dx; ACCUMULATES key/value grads into dk/dv (head layout).
  Tensor backward(LayerContext& ctx, const Tensor& dy, const Tensor& dk, const Tensor& dv);
  void release();

  /// Serving forward (no dropout, nothing saved): x [B, Lq, H] queries over
  /// precomputed k/v — at decode time the per-slot cross K/V cache blocks
  /// [S, N, Ls_max, D], masked by src_lens.
  Tensor infer_forward(LayerContext& ctx, const Tensor& x, const Tensor& k, const Tensor& v,
                       const Tensor* src_lens);

 private:
  AttentionConfig cfg_;
  ParamRegistry* params_;
  ParamRef ln_gamma_, ln_beta_;
  TpParam w_q_, b_q_;
  AttentionCore core_;

  struct Saved {
    Tensor x, ln, mean, rstd;
  };
  std::optional<Saved> saved_;
};

}  // namespace ls2::layers
