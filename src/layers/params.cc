#include "layers/params.h"

#include <algorithm>
#include <cmath>

namespace ls2::layers {

ParamRef ParamRegistry::declare(const std::string& name, Shape shape, Init init) {
  LS2_CHECK(!materialized_) << "declare after materialize";
  for (const Spec& s : specs_) {
    LS2_CHECK(s.name != name) << "duplicate parameter '" << name << "'";
  }
  specs_.push_back({name, std::move(shape), init});
  return ParamRef{static_cast<int>(specs_.size()) - 1};
}

void ParamRegistry::init_tensor(const Tensor& t, const Spec& spec, const Rng& rng,
                                uint64_t stream) const {
  switch (spec.init) {
    case Init::kZero:
      t.zero_();
      break;
    case Init::kOne:
      t.fill_(1.0f);
      break;
    case Init::kNormal:
      rng.fill_normal(t, stream, 0.0f, 0.02f);
      break;
    case Init::kXavier: {
      const int64_t fan_out = spec.shape.rank() >= 1 ? spec.shape[0] : 1;
      const int64_t fan_in = spec.shape.rank() >= 2 ? spec.shape[1] : fan_out;
      const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
      rng.fill_uniform(t, stream, -a, a);
      break;
    }
  }
}

void ParamRegistry::materialize(DType dtype, bool contiguous, const Rng& rng,
                                BufferAllocator* alloc) {
  LS2_CHECK(!materialized_) << "double materialize";
  LS2_CHECK(dtype == DType::kF32 || dtype == DType::kF16);
  dtype_ = dtype;
  contiguous_ = contiguous;
  if (contiguous) {
    for (const Spec& s : specs_) {
      value_ws_.add(s.name, s.shape, dtype);
      grad_ws_.add(s.name, s.shape, dtype);
    }
    value_ws_.freeze(alloc);
    grad_ws_.freeze(alloc);
    // Zero padding gaps so the flat trainer update sees no garbage.
    value_ws_.flat().zero_();
    grad_ws_.flat().zero_();
    for (int i = 0; i < size(); ++i) {
      init_tensor(value_ws_.get(i), specs_[static_cast<size_t>(i)], rng,
                  9000 + static_cast<uint64_t>(i));
    }
  } else {
    values_.reserve(specs_.size());
    grads_.reserve(specs_.size());
    for (size_t i = 0; i < specs_.size(); ++i) {
      values_.push_back(Tensor::empty(specs_[i].shape, dtype, alloc));
      grads_.push_back(Tensor::zeros(specs_[i].shape, dtype, alloc));
      init_tensor(values_.back(), specs_[i], rng, 9000 + static_cast<uint64_t>(i));
    }
  }
  // Cumulative gradient byte offsets (n+1 entries), so grad_byte_span is
  // O(1). Workspace mode uses the padded slot layout; per-tensor mode a
  // conceptual unpadded layout in declaration order.
  grad_offsets_.resize(specs_.size() + 1);
  grad_offsets_[0] = 0;
  for (size_t i = 0; i < specs_.size(); ++i) {
    grad_offsets_[i + 1] =
        contiguous_ ? grad_ws_.byte_end(static_cast<int>(i))
                    : grad_offsets_[i] + static_cast<size_t>(specs_[i].shape.numel()) *
                                             dtype_size(dtype_);
  }
  materialized_ = true;
}

Tensor ParamRegistry::value(ParamRef ref) const {
  LS2_CHECK(materialized_ && ref.valid() && ref.index < size());
  return contiguous_ ? value_ws_.get(ref.index)
                     : values_[static_cast<size_t>(ref.index)];
}

Tensor ParamRegistry::grad(ParamRef ref) const {
  LS2_CHECK(materialized_ && ref.valid() && ref.index < size());
  return contiguous_ ? grad_ws_.get(ref.index) : grads_[static_cast<size_t>(ref.index)];
}

const std::string& ParamRegistry::name(ParamRef ref) const {
  LS2_CHECK(ref.valid() && ref.index < size());
  return specs_[static_cast<size_t>(ref.index)].name;
}

Shape ParamRegistry::shape(ParamRef ref) const {
  LS2_CHECK(ref.valid() && ref.index < size());
  return specs_[static_cast<size_t>(ref.index)].shape;
}

int64_t ParamRegistry::total_elements() const {
  int64_t n = 0;
  for (const Spec& s : specs_) n += s.shape.numel();
  return n;
}

Tensor ParamRegistry::flat_values() const {
  LS2_CHECK(materialized_) << "flat view before materialize";
  LS2_CHECK(contiguous_) << "flat view requires workspace mode";
  return value_ws_.flat();
}

Tensor ParamRegistry::flat_grads() const {
  LS2_CHECK(materialized_) << "flat view before materialize";
  LS2_CHECK(contiguous_) << "flat view requires workspace mode";
  return grad_ws_.flat();
}

std::pair<size_t, size_t> ParamRegistry::grad_byte_span(int index) const {
  LS2_CHECK(materialized_) << "grad_byte_span before materialize";
  LS2_CHECK(index >= 0 && index < size());
  return {grad_offsets_[static_cast<size_t>(index)],
          grad_offsets_[static_cast<size_t>(index) + 1]};
}

size_t ParamRegistry::flat_grad_bytes() const {
  LS2_CHECK(materialized_) << "flat_grad_bytes before materialize";
  return grad_offsets_.back();
}

Tensor ParamRegistry::grad_byte_view(size_t begin, size_t end) const {
  LS2_CHECK(materialized_) << "grad view before materialize";
  LS2_CHECK(contiguous_) << "grad view requires workspace mode";
  return grad_ws_.byte_range_view(begin, end, dtype_);
}

Tensor ParamRegistry::value_byte_view(size_t begin, size_t end) const {
  LS2_CHECK(materialized_) << "value view before materialize";
  LS2_CHECK(contiguous_) << "value view requires workspace mode";
  return value_ws_.byte_range_view(begin, end, dtype_);
}

ParamRange ParamRegistry::params_in_byte_range(size_t begin, size_t end) const {
  LS2_CHECK(materialized_) << "params_in_byte_range before materialize";
  LS2_CHECK(begin <= end && end <= grad_offsets_.back())
      << "[" << begin << ", " << end << ") of " << grad_offsets_.back();
  if (begin == end) return {0, 0};
  // grad_offsets_ is strictly increasing over n+1 entries. First param whose
  // span END is past `begin`; one past the last whose span BEGIN is before
  // `end`.
  const auto lo = std::upper_bound(grad_offsets_.begin(), grad_offsets_.end(), begin);
  const auto hi = std::lower_bound(grad_offsets_.begin(), grad_offsets_.end(), end);
  return {static_cast<int>(lo - grad_offsets_.begin()) - 1,
          static_cast<int>(hi - grad_offsets_.begin())};
}

void ParamRegistry::notify_grad_ready(const ParamRange& range) const {
  if (!grad_ready_ || range.empty()) return;
  LS2_CHECK(range.begin >= 0 && range.end <= size())
      << "[" << range.begin << ", " << range.end << ") of " << size();
  grad_ready_(range);
}

void ParamRegistry::zero_grads() const {
  LS2_CHECK(materialized_) << "zero_grads before materialize";
  if (contiguous_) {
    grad_ws_.flat().zero_();
  } else {
    for (const Tensor& g : grads_) g.zero_();
  }
}

void ParamRegistry::for_each(
    const std::function<void(const std::string&, Tensor, Tensor)>& fn) const {
  LS2_CHECK(materialized_);
  for (int i = 0; i < size(); ++i) {
    fn(specs_[static_cast<size_t>(i)].name, value({i}), grad({i}));
  }
}

}  // namespace ls2::layers
