#include "layers/params.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace ls2::layers {

Shape shard_shape(const Shape& full_shape, const ShardSpec& spec) {
  if (!spec.sharded()) return full_shape;
  LS2_CHECK(spec.dim == 0 || spec.dim == 1) << "shard dim " << spec.dim;
  LS2_CHECK(spec.index >= 0 && spec.index < spec.count);
  LS2_CHECK(full_shape.rank() > spec.dim);
  std::vector<int64_t> dims;
  for (int i = 0; i < full_shape.rank(); ++i) dims.push_back(full_shape[i]);
  if (spec.dim == 0) {
    LS2_CHECK(spec.groups >= 1 && dims[0] % (spec.groups * spec.count) == 0)
        << dims[0] << " rows / " << spec.groups << " groups x " << spec.count
        << " shards";
    dims[0] /= spec.count;
  } else {
    LS2_CHECK_EQ(spec.groups, 1) << "grouped sharding is a dim-0 layout";
    LS2_CHECK(dims[1] % spec.count == 0) << dims[1] << " cols / " << spec.count;
    dims[1] /= spec.count;
  }
  return Shape(dims);
}

namespace {

/// Byte-level shard copy in either direction. Row-major layout means a dim-0
/// slice of one group is contiguous and a dim-1 slice is one span per row.
void shard_copy(const Tensor& full, const Tensor& shard, const ShardSpec& spec,
                bool to_shard) {
  LS2_CHECK(spec.sharded());
  LS2_CHECK(full.dtype() == shard.dtype());
  if (!full.backs_real_memory() || !shard.backs_real_memory()) return;
  const size_t esize = dtype_size(full.dtype());
  char* fp = static_cast<char*>(full.raw());
  char* sp = static_cast<char*>(shard.raw());
  const int64_t full_rows = full.shape()[0];
  const int64_t row_elems = full_rows > 0 ? full.numel() / full_rows : 0;
  if (spec.dim == 0) {
    const int64_t group_rows = full_rows / spec.groups;
    const int64_t rows_per_shard = group_rows / spec.count;
    const size_t row_bytes = static_cast<size_t>(row_elems) * esize;
    for (int64_t g = 0; g < spec.groups; ++g) {
      char* f = fp + static_cast<size_t>(g * group_rows + spec.index * rows_per_shard) *
                         row_bytes;
      char* s = sp + static_cast<size_t>(g * rows_per_shard) * row_bytes;
      const size_t n = static_cast<size_t>(rows_per_shard) * row_bytes;
      if (to_shard) {
        std::memcpy(s, f, n);
      } else {
        std::memcpy(f, s, n);
      }
    }
  } else {
    const int64_t cols = full.shape()[1];
    const int64_t rest = row_elems / cols;  // trailing dims folded into cols' row
    const int64_t shard_cols = cols / spec.count;
    const size_t span = static_cast<size_t>(shard_cols * rest) * esize;
    const size_t full_stride = static_cast<size_t>(cols * rest) * esize;
    for (int64_t r = 0; r < full_rows; ++r) {
      char* f = fp + static_cast<size_t>(r) * full_stride +
                static_cast<size_t>(spec.index) * span;
      char* s = sp + static_cast<size_t>(r) * span;
      if (to_shard) {
        std::memcpy(s, f, span);
      } else {
        std::memcpy(f, s, span);
      }
    }
  }
}

}  // namespace

void copy_shard_from_full(const Tensor& full, const Tensor& shard, const ShardSpec& spec) {
  shard_copy(full, shard, spec, /*to_shard=*/true);
}

void copy_full_from_shard(const Tensor& shard, const Tensor& full, const ShardSpec& spec) {
  shard_copy(full, shard, spec, /*to_shard=*/false);
}

ParamRef ParamRegistry::declare(const std::string& name, Shape shape, Init init) {
  LS2_CHECK(!materialized_) << "declare after materialize";
  for (const Spec& s : specs_) {
    LS2_CHECK(s.name != name) << "duplicate parameter '" << name << "'";
  }
  Shape full = shape;
  specs_.push_back({name, std::move(shape), init, std::move(full), ShardSpec{}, -1});
  return ParamRef{static_cast<int>(specs_.size()) - 1};
}

ParamRef ParamRegistry::declare_sharded(const std::string& name, Shape full_shape,
                                        Init init, const ShardSpec& spec,
                                        int64_t init_stream) {
  if (!spec.sharded()) return declare(name, std::move(full_shape), init);
  LS2_CHECK(!materialized_) << "declare after materialize";
  for (const Spec& s : specs_) {
    LS2_CHECK(s.name != name) << "duplicate parameter '" << name << "'";
  }
  Shape stored = shard_shape(full_shape, spec);
  specs_.push_back(
      {name, std::move(stored), init, std::move(full_shape), spec, init_stream});
  return ParamRef{static_cast<int>(specs_.size()) - 1};
}

void ParamRegistry::init_tensor(const Tensor& t, const Spec& spec, const Rng& rng,
                                uint64_t stream) const {
  if (spec.init_stream >= 0) stream = static_cast<uint64_t>(spec.init_stream);
  // Fan counts come from the FULL shape so a shard's values are bitwise the
  // corresponding slice of the unsharded initialisation.
  switch (spec.init) {
    case Init::kZero:
      t.zero_();
      return;
    case Init::kOne:
      t.fill_(1.0f);
      return;
    default:
      break;
  }
  const auto fill = [&](const Tensor& dst) {
    if (spec.init == Init::kNormal) {
      rng.fill_normal(dst, stream, 0.0f, 0.02f);
    } else {
      const int64_t fan_out = spec.full_shape.rank() >= 1 ? spec.full_shape[0] : 1;
      const int64_t fan_in = spec.full_shape.rank() >= 2 ? spec.full_shape[1] : fan_out;
      const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
      rng.fill_uniform(dst, stream, -a, a);
    }
  };
  if (!spec.shard.sharded()) {
    fill(t);
    return;
  }
  if (!t.backs_real_memory()) return;  // timing-only backing: skip like fill_*
  Tensor full = Tensor::empty(spec.full_shape, t.dtype());
  fill(full);
  copy_shard_from_full(full, t, spec.shard);
}

void ParamRegistry::materialize(DType dtype, bool contiguous, const Rng& rng,
                                BufferAllocator* alloc) {
  LS2_CHECK(!materialized_) << "double materialize";
  LS2_CHECK(dtype == DType::kF32 || dtype == DType::kF16);
  dtype_ = dtype;
  contiguous_ = contiguous;
  if (contiguous) {
    for (const Spec& s : specs_) {
      value_ws_.add(s.name, s.shape, dtype);
      grad_ws_.add(s.name, s.shape, dtype);
    }
    value_ws_.freeze(alloc);
    grad_ws_.freeze(alloc);
    // Zero padding gaps so the flat trainer update sees no garbage.
    value_ws_.flat().zero_();
    grad_ws_.flat().zero_();
    for (int i = 0; i < size(); ++i) {
      init_tensor(value_ws_.get(i), specs_[static_cast<size_t>(i)], rng,
                  9000 + static_cast<uint64_t>(i));
    }
  } else {
    values_.reserve(specs_.size());
    grads_.reserve(specs_.size());
    for (size_t i = 0; i < specs_.size(); ++i) {
      values_.push_back(Tensor::empty(specs_[i].shape, dtype, alloc));
      grads_.push_back(Tensor::zeros(specs_[i].shape, dtype, alloc));
      init_tensor(values_.back(), specs_[i], rng, 9000 + static_cast<uint64_t>(i));
    }
  }
  // Cumulative gradient byte offsets (n+1 entries), so grad_byte_span is
  // O(1). Workspace mode uses the padded slot layout; per-tensor mode a
  // conceptual unpadded layout in declaration order.
  grad_offsets_.resize(specs_.size() + 1);
  grad_offsets_[0] = 0;
  for (size_t i = 0; i < specs_.size(); ++i) {
    grad_offsets_[i + 1] =
        contiguous_ ? grad_ws_.byte_end(static_cast<int>(i))
                    : grad_offsets_[i] + static_cast<size_t>(specs_[i].shape.numel()) *
                                             dtype_size(dtype_);
  }
  materialized_ = true;
}

Tensor ParamRegistry::value(ParamRef ref) const {
  LS2_CHECK(materialized_ && ref.valid() && ref.index < size());
  return contiguous_ ? value_ws_.get(ref.index)
                     : values_[static_cast<size_t>(ref.index)];
}

Tensor ParamRegistry::grad(ParamRef ref) const {
  LS2_CHECK(materialized_ && ref.valid() && ref.index < size());
  return contiguous_ ? grad_ws_.get(ref.index) : grads_[static_cast<size_t>(ref.index)];
}

const std::string& ParamRegistry::name(ParamRef ref) const {
  LS2_CHECK(ref.valid() && ref.index < size());
  return specs_[static_cast<size_t>(ref.index)].name;
}

Shape ParamRegistry::shape(ParamRef ref) const {
  LS2_CHECK(ref.valid() && ref.index < size());
  return specs_[static_cast<size_t>(ref.index)].shape;
}

const ShardSpec& ParamRegistry::shard_spec(ParamRef ref) const {
  LS2_CHECK(ref.valid() && ref.index < size());
  return specs_[static_cast<size_t>(ref.index)].shard;
}

const Shape& ParamRegistry::full_shape(ParamRef ref) const {
  LS2_CHECK(ref.valid() && ref.index < size());
  return specs_[static_cast<size_t>(ref.index)].full_shape;
}

int64_t ParamRegistry::total_elements() const {
  int64_t n = 0;
  for (const Spec& s : specs_) n += s.shape.numel();
  return n;
}

Tensor ParamRegistry::flat_values() const {
  LS2_CHECK(materialized_) << "flat view before materialize";
  LS2_CHECK(contiguous_) << "flat view requires workspace mode";
  return value_ws_.flat();
}

Tensor ParamRegistry::flat_grads() const {
  LS2_CHECK(materialized_) << "flat view before materialize";
  LS2_CHECK(contiguous_) << "flat view requires workspace mode";
  return grad_ws_.flat();
}

std::pair<size_t, size_t> ParamRegistry::grad_byte_span(int index) const {
  LS2_CHECK(materialized_) << "grad_byte_span before materialize";
  LS2_CHECK(index >= 0 && index < size());
  return {grad_offsets_[static_cast<size_t>(index)],
          grad_offsets_[static_cast<size_t>(index) + 1]};
}

size_t ParamRegistry::flat_grad_bytes() const {
  LS2_CHECK(materialized_) << "flat_grad_bytes before materialize";
  return grad_offsets_.back();
}

Tensor ParamRegistry::grad_byte_view(size_t begin, size_t end) const {
  LS2_CHECK(materialized_) << "grad view before materialize";
  LS2_CHECK(contiguous_) << "grad view requires workspace mode";
  return grad_ws_.byte_range_view(begin, end, dtype_);
}

Tensor ParamRegistry::value_byte_view(size_t begin, size_t end) const {
  LS2_CHECK(materialized_) << "value view before materialize";
  LS2_CHECK(contiguous_) << "value view requires workspace mode";
  return value_ws_.byte_range_view(begin, end, dtype_);
}

ParamRange ParamRegistry::params_in_byte_range(size_t begin, size_t end) const {
  LS2_CHECK(materialized_) << "params_in_byte_range before materialize";
  LS2_CHECK(begin <= end && end <= grad_offsets_.back())
      << "[" << begin << ", " << end << ") of " << grad_offsets_.back();
  if (begin == end) return {0, 0};
  // grad_offsets_ is strictly increasing over n+1 entries. First param whose
  // span END is past `begin`; one past the last whose span BEGIN is before
  // `end`.
  const auto lo = std::upper_bound(grad_offsets_.begin(), grad_offsets_.end(), begin);
  const auto hi = std::lower_bound(grad_offsets_.begin(), grad_offsets_.end(), end);
  return {static_cast<int>(lo - grad_offsets_.begin()) - 1,
          static_cast<int>(hi - grad_offsets_.begin())};
}

void ParamRegistry::notify_grad_ready(const ParamRange& range) const {
  if (!grad_ready_ || range.empty()) return;
  LS2_CHECK(range.begin >= 0 && range.end <= size())
      << "[" << range.begin << ", " << range.end << ") of " << size();
  grad_ready_(range);
}

void ParamRegistry::zero_grads() const {
  LS2_CHECK(materialized_) << "zero_grads before materialize";
  if (contiguous_) {
    grad_ws_.flat().zero_();
  } else {
    for (const Tensor& g : grads_) g.zero_();
  }
}

void ParamRegistry::for_each(
    const std::function<void(const std::string&, Tensor, Tensor)>& fn) const {
  LS2_CHECK(materialized_);
  for (int i = 0; i < size(); ++i) {
    fn(specs_[static_cast<size_t>(i)].name, value({i}), grad({i}));
  }
}

}  // namespace ls2::layers
