#include "layers/tp.h"

namespace ls2::layers {

TpParam TpParam::plain(ParamRegistry& reg, ParamRef ref) {
  TpParam p;
  p.reg_ = &reg;
  p.ref_ = ref;
  p.shard_count_ = reg.shard_spec(ref).count;
  return p;
}

TpParam TpParam::declare(ParamRegistry& reg, const TpDecl& tp, const std::string& name,
                         Shape full_shape, Init init, int dim, int64_t groups) {
  TpParam p;
  p.reg_ = &reg;
  p.shard_count_ = tp.size;
  if (!tp.enabled()) {
    p.ref_ = reg.declare(name, std::move(full_shape), init);
    return p;
  }
  ShardSpec spec;
  spec.dim = dim;
  spec.groups = groups;
  spec.count = tp.size;
  spec.index = 0;
  p.ref_ = reg.declare_sharded(name, full_shape, init, spec);
  if (tp.peers != nullptr) {
    p.peers_ = tp.peers;
    const int64_t stream = 9000 + p.ref_.index;  // rank 0's init stream
    for (int r = 1; r < tp.size; ++r) {
      spec.index = r;
      p.peer_refs_.push_back(tp.peers->declare_sharded(
          name + ".tp" + std::to_string(r), full_shape, init, spec, stream));
    }
  }
  return p;
}

const Shape& TpParam::full_shape() const {
  LS2_CHECK(valid());
  return reg_->full_shape(ref_);
}

std::vector<std::pair<const ParamRegistry*, ParamRef>> TpParam::all_shards() const {
  std::vector<std::pair<const ParamRegistry*, ParamRef>> shards;
  shards.emplace_back(reg_, ref_);
  for (ParamRef r : peer_refs_) shards.emplace_back(peers_, r);
  return shards;
}

Tensor TpParam::value(LayerContext& ctx) const {
  LS2_CHECK(valid());
  if (!sharded()) return reg_->value(ref_);
  Tensor full = Tensor::empty(full_shape(), reg_->dtype());
  if (ctx.device().mode() != simgpu::ExecMode::kExecute) return full;
  LS2_CHECK(peers_ != nullptr)
      << "executing a TP model without simulated peer shards ('" << reg_->name(ref_)
      << "') — peer registries are required outside model-only runs";
  for (const auto& [reg, ref] : all_shards()) {
    copy_full_from_shard(reg->value(ref), full, reg->shard_spec(ref));
  }
  return full;
}

TpParam::GradScope::GradScope(const TpParam& p, LayerContext& ctx) : param_(&p) {
  LS2_CHECK(p.valid());
  if (!p.sharded()) {
    full_ = p.reg_->grad(p.ref_);
    return;
  }
  full_ = Tensor::empty(p.full_shape(), p.reg_->dtype());
  if (ctx.device().mode() != simgpu::ExecMode::kExecute) return;
  LS2_CHECK(p.peers_ != nullptr)
      << "executing a TP model without simulated peer shards ('"
      << p.reg_->name(p.ref_) << "')";
  for (const auto& [reg, ref] : p.all_shards()) {
    copy_full_from_shard(reg->grad(ref), full_, reg->shard_spec(ref));
  }
  scatter_ = true;
}

TpParam::GradScope::GradScope(GradScope&& o) noexcept
    : param_(o.param_), scatter_(o.scatter_), full_(o.full_) {
  o.scatter_ = false;
  o.param_ = nullptr;
}

TpParam::GradScope::~GradScope() {
  if (!scatter_) return;
  for (const auto& [reg, ref] : param_->all_shards()) {
    copy_shard_from_full(full_, reg->grad(ref), reg->shard_spec(ref));
  }
}

}  // namespace ls2::layers
