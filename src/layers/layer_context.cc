#include "layers/layer_context.h"

namespace ls2::layers {

const char* system_name(System s) {
  switch (s) {
    case System::kFairseq: return "Fairseq";
    case System::kFairseqApex: return "Fairseq+Apex";
    case System::kDeepSpeed: return "DeepSpeed";
    case System::kLightSeq2: return "LightSeq2";
  }
  return "?";
}

Policy policy_for(System system) {
  Policy p;
  p.system = system;
  switch (system) {
    case System::kFairseq:
      p.elementwise = kern::Impl::kTorch;
      p.layernorm = kern::Impl::kTorch;
      p.softmax = kern::Impl::kTorch;
      p.embedding = kern::Impl::kTorch;
      p.criterion = kern::Impl::kTorch;
      p.transform = kern::Impl::kTorch;
      p.fused_elementwise = false;
      p.layer_batched_cross_attn = false;
      break;
    case System::kFairseqApex:
      // Apex contributes fused LayerNorm/Softmax kernels; everything else
      // stays native PyTorch.
      p.elementwise = kern::Impl::kTorch;
      p.layernorm = kern::Impl::kLS2;
      p.softmax = kern::Impl::kLS2;
      p.embedding = kern::Impl::kTorch;
      p.criterion = kern::Impl::kTorch;
      p.transform = kern::Impl::kTorch;
      p.fused_elementwise = false;
      p.layer_batched_cross_attn = false;
      break;
    case System::kDeepSpeed:
      p.elementwise = kern::Impl::kLS2;  // fused encoder element-wise chains
      p.layernorm = kern::Impl::kDeepSpeed;
      p.softmax = kern::Impl::kDeepSpeed;
      p.embedding = kern::Impl::kTorch;   // not optimised by DeepSpeed
      p.criterion = kern::Impl::kTorch;   // not optimised by DeepSpeed
      p.transform = kern::Impl::kLS2;
      p.fused_elementwise = true;
      p.layer_batched_cross_attn = false;
      p.seq_multiple = 16;
      p.supports_decoder = false;
      break;
    case System::kLightSeq2:
      break;  // defaults
  }
  return p;
}

int64_t pad_length(const Policy& policy, int64_t len) {
  const int64_t m = policy.seq_multiple;
  return m <= 1 ? len : (len + m - 1) / m * m;
}

}  // namespace ls2::layers
