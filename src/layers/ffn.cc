#include "layers/ffn.h"

#include "kernels/elementwise.h"
#include "kernels/layernorm.h"
#include "layers/linear.h"

namespace ls2::layers {

FeedForward::FeedForward(ParamRegistry& params, const std::string& prefix, FfnConfig cfg)
    : cfg_(cfg),
      params_(&params),
      ln_gamma_(params.declare(prefix + ".ln.gamma", Shape{cfg.hidden}, Init::kOne)),
      ln_beta_(params.declare(prefix + ".ln.beta", Shape{cfg.hidden}, Init::kZero)) {
  LS2_CHECK(cfg.tp.size <= 1 || cfg.ffn_dim % cfg.tp.size == 0)
      << "ffn_dim " << cfg.ffn_dim << " not divisible by tp " << cfg.tp.size;
  // Registry order matches the unsharded layer declaration-for-declaration,
  // which is what keeps sharded initialisation streams aligned (DESIGN §7).
  w1_ = TpParam::declare(params, cfg.tp, prefix + ".fc1.weight",
                         Shape{cfg.ffn_dim, cfg.hidden}, Init::kXavier, /*dim=*/0);
  b1_ = TpParam::declare(params, cfg.tp, prefix + ".fc1.bias", Shape{cfg.ffn_dim},
                         Init::kZero, /*dim=*/0);
  w2_ = TpParam::declare(params, cfg.tp, prefix + ".fc2.weight",
                         Shape{cfg.hidden, cfg.ffn_dim}, Init::kXavier, /*dim=*/1);
  b2_ = params.declare(prefix + ".fc2.bias", Shape{cfg.hidden}, Init::kZero);
}

Tensor FeedForward::forward(LayerContext& ctx, const Tensor& x) {
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  const int64_t F = cfg_.ffn_dim;
  const DType dt = x.dtype();
  const Policy& pol = ctx.policy;

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, pol.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  // fc1 is column-parallel over ffn_dim: h1/a live sharded on a real TP
  // rank, and the bias+activation+dropout chain runs at shard width.
  Tensor h1 = ctx.alloc_shard({B, L, F}, dt);
  tp_linear_fw(ctx, ln, w1_.value(ctx), h1, "ffn.fc1", TpSplit::kColumn);

  Tensor a = ctx.alloc_shard({B, L, F}, dt);
  Tensor act_mask = ctx.alloc_shard({B, L, F}, DType::kU8);
  {
    TpChargeScale tp_scale(ctx);
    if (pol.fused_elementwise) {
      if (cfg_.activation == Activation::kRelu) {
        kern::fused::bias_relu_dropout_fw(ctx.kern, h1, b1_.value(ctx), a, act_mask,
                                          cfg_.act_dropout, ctx.kern.next_dropout_stream());
      } else {
        kern::fused::bias_gelu_dropout_fw(ctx.kern, h1, b1_.value(ctx), a, act_mask,
                                          cfg_.act_dropout, ctx.kern.next_dropout_stream());
      }
    } else {
      // Framework decomposition; h1 is overwritten with h1+b1 so the same
      // buffer feeds the activation backward (as PyTorch's autograd saves it).
      kern::baseline::add_bias(ctx.kern, h1, b1_.value(ctx), h1);
      Tensor t = ctx.alloc_shard({B, L, F}, dt);
      if (cfg_.activation == Activation::kRelu) {
        kern::baseline::relu_fw(ctx.kern, h1, t);
      } else {
        kern::baseline::gelu_fw(ctx.kern, h1, t);
      }
      kern::dropout_fw(ctx.kern, pol.elementwise, t, a, act_mask, cfg_.act_dropout,
                       ctx.kern.next_dropout_stream());
    }
  }

  // fc2 is row-parallel: every rank holds a full-size partial of h2 and the
  // TP all-reduce sums them (in rank order — bitwise the full GEMM).
  Tensor h2 = ctx.alloc({B, L, H}, dt);
  tp_linear_fw(ctx, a, w2_.value(ctx), h2, "ffn.fc2", TpSplit::kRow);
  if (ctx.tp_size() > 1) {
    ctx.tp_group->all_reduce(ctx.device(), static_cast<int64_t>(h2.bytes()),
                             "tp.ffn.allreduce");
  }

  Tensor y = ctx.alloc({B, L, H}, dt);
  Tensor out_mask = ctx.alloc({B, L, H}, DType::kU8);
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_fw(ctx.kern, h2, params_->value(b2_), x, y, out_mask,
                                          cfg_.out_dropout, ctx.kern.next_dropout_stream());
  } else {
    kern::baseline::add_bias(ctx.kern, h2, params_->value(b2_), h2);
    Tensor t = ctx.alloc({B, L, H}, dt);
    kern::dropout_fw(ctx.kern, pol.elementwise, h2, t, out_mask, cfg_.out_dropout,
                     ctx.kern.next_dropout_stream());
    kern::baseline::add(ctx.kern, t, x, y);
  }

  saved_ = Saved{x, ln, mean, rstd, h1, a, act_mask, out_mask};
  return y;
}

// (infer_forward below stays TP-free: serving sessions run unsharded.)

Tensor FeedForward::infer_forward(LayerContext& ctx, const Tensor& x) {
  LS2_CHECK(ctx.tp_size() == 1) << "serving paths run unsharded (TP is a training feature)";
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  const int64_t F = cfg_.ffn_dim;
  const DType dt = x.dtype();
  const Policy& pol = ctx.policy;

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, pol.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor h1 = ctx.alloc({B, L, F}, dt);
  linear_fw(ctx, ln, w1_.value(ctx), h1, "ffn.fc1");

  // Bias + activation; the dropout stage runs at p = 0 (identity) so the
  // serving path is bitwise the training forward under zero dropout.
  Tensor a = ctx.alloc({B, L, F}, dt);
  if (pol.fused_elementwise) {
    Tensor act_mask = ctx.alloc({B, L, F}, DType::kU8);
    if (cfg_.activation == Activation::kRelu) {
      kern::fused::bias_relu_dropout_fw(ctx.kern, h1, b1_.value(ctx), a, act_mask, 0.0f,
                                        ctx.kern.next_dropout_stream());
    } else {
      kern::fused::bias_gelu_dropout_fw(ctx.kern, h1, b1_.value(ctx), a, act_mask, 0.0f,
                                        ctx.kern.next_dropout_stream());
    }
  } else {
    kern::baseline::add_bias(ctx.kern, h1, b1_.value(ctx), h1);
    if (cfg_.activation == Activation::kRelu) {
      kern::baseline::relu_fw(ctx.kern, h1, a);
    } else {
      kern::baseline::gelu_fw(ctx.kern, h1, a);
    }
  }

  Tensor h2 = ctx.alloc({B, L, H}, dt);
  linear_fw(ctx, a, w2_.value(ctx), h2, "ffn.fc2");

  Tensor y = ctx.alloc({B, L, H}, dt);
  if (pol.fused_elementwise) {
    Tensor out_mask = ctx.alloc({B, L, H}, DType::kU8);
    kern::fused::bias_dropout_residual_fw(ctx.kern, h2, params_->value(b2_), x, y, out_mask,
                                          0.0f, ctx.kern.next_dropout_stream());
  } else {
    kern::baseline::add_bias(ctx.kern, h2, params_->value(b2_), h2);
    kern::baseline::add(ctx.kern, h2, x, y);
  }
  return y;
}

Tensor FeedForward::backward(LayerContext& ctx, const Tensor& dy) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.x.shape()[0], L = s.x.shape()[1], H = s.x.shape()[2];
  const int64_t F = cfg_.ffn_dim;
  const DType dt = dy.dtype();
  const Policy& pol = ctx.policy;

  // Through output bias+dropout(+residual grad handled at the LN step).
  Tensor dh2 = ctx.alloc({B, L, H}, dt);
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_bw(ctx.kern, dy, s.out_mask, dh2, cfg_.out_dropout);
  } else {
    kern::dropout_bw(ctx.kern, pol.elementwise, dy, s.out_mask, dh2, cfg_.out_dropout);
  }
  kern::bias_grad(ctx.kern, dh2, params_->grad(b2_));

  // fc2 (row-parallel) backward is fully local: da is the rank's ffn_dim
  // slice, dW2 its column shard.
  Tensor da = ctx.alloc_shard({B, L, F}, dt);
  {
    auto dw2 = w2_.grad(ctx);
    tp_linear_bw(ctx, dh2, s.a, w2_.value(ctx), da, dw2.tensor(), "ffn.fc2",
                 TpSplit::kRow);
  }

  // Through activation + dropout (shard width under TP).
  Tensor dh1 = ctx.alloc_shard({B, L, F}, dt);
  {
    TpChargeScale tp_scale(ctx);
    if (pol.fused_elementwise) {
      if (cfg_.activation == Activation::kRelu) {
        kern::fused::bias_relu_dropout_bw(ctx.kern, da, s.act_mask, s.h1, b1_.value(ctx),
                                          dh1, cfg_.act_dropout);
      } else {
        kern::fused::bias_gelu_dropout_bw(ctx.kern, da, s.act_mask, s.h1, b1_.value(ctx),
                                          dh1, cfg_.act_dropout);
      }
    } else {
      Tensor t = ctx.alloc_shard({B, L, F}, dt);
      kern::dropout_bw(ctx.kern, pol.elementwise, da, s.act_mask, t, cfg_.act_dropout);
      if (cfg_.activation == Activation::kRelu) {
        kern::baseline::relu_bw(ctx.kern, t, s.h1, dh1);  // s.h1 holds h1+b1 here
      } else {
        kern::baseline::gelu_bw(ctx.kern, t, s.h1, dh1);
      }
    }
    {
      auto db1 = b1_.grad(ctx);
      kern::bias_grad(ctx.kern, dh1, db1.tensor());
    }
  }

  // fc1 (column-parallel) backward: dln partials all-reduce over the TP
  // group; tp_linear_bw overlaps the transfer with the dW1 GEMM.
  Tensor dln = ctx.alloc({B, L, H}, dt);
  {
    auto dw1 = w1_.grad(ctx);
    tp_linear_bw(ctx, dh1, s.ln, w1_.value(ctx), dln, dw1.tensor(), "ffn.fc1",
                 TpSplit::kColumn);
  }

  Tensor dx = ctx.alloc({B, L, H}, dt);
  kern::layernorm_bw(ctx.kern, pol.layernorm, dln, s.x, params_->value(ln_gamma_), s.mean,
                     s.rstd, dx, params_->grad(ln_gamma_), params_->grad(ln_beta_),
                     /*residual_grad=*/&dy);
  release();
  return dx;
}

void FeedForward::release() { saved_.reset(); }

}  // namespace ls2::layers
