#include "layers/ffn.h"

#include "kernels/elementwise.h"
#include "kernels/layernorm.h"
#include "layers/linear.h"

namespace ls2::layers {

FeedForward::FeedForward(ParamRegistry& params, const std::string& prefix, FfnConfig cfg)
    : cfg_(cfg),
      params_(&params),
      ln_gamma_(params.declare(prefix + ".ln.gamma", Shape{cfg.hidden}, Init::kOne)),
      ln_beta_(params.declare(prefix + ".ln.beta", Shape{cfg.hidden}, Init::kZero)),
      w1_(params.declare(prefix + ".fc1.weight", Shape{cfg.ffn_dim, cfg.hidden},
                         Init::kXavier)),
      b1_(params.declare(prefix + ".fc1.bias", Shape{cfg.ffn_dim}, Init::kZero)),
      w2_(params.declare(prefix + ".fc2.weight", Shape{cfg.hidden, cfg.ffn_dim},
                         Init::kXavier)),
      b2_(params.declare(prefix + ".fc2.bias", Shape{cfg.hidden}, Init::kZero)) {}

Tensor FeedForward::forward(LayerContext& ctx, const Tensor& x) {
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  const int64_t F = cfg_.ffn_dim;
  const DType dt = x.dtype();
  const Policy& pol = ctx.policy;

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, pol.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor h1 = ctx.alloc({B, L, F}, dt);
  linear_fw(ctx, ln, params_->value(w1_), h1, "ffn.fc1");

  Tensor a = ctx.alloc({B, L, F}, dt);
  Tensor act_mask = ctx.alloc({B, L, F}, DType::kU8);
  if (pol.fused_elementwise) {
    if (cfg_.activation == Activation::kRelu) {
      kern::fused::bias_relu_dropout_fw(ctx.kern, h1, params_->value(b1_), a, act_mask,
                                        cfg_.act_dropout, ctx.kern.next_dropout_stream());
    } else {
      kern::fused::bias_gelu_dropout_fw(ctx.kern, h1, params_->value(b1_), a, act_mask,
                                        cfg_.act_dropout, ctx.kern.next_dropout_stream());
    }
  } else {
    // Framework decomposition; h1 is overwritten with h1+b1 so the same
    // buffer feeds the activation backward (as PyTorch's autograd saves it).
    kern::baseline::add_bias(ctx.kern, h1, params_->value(b1_), h1);
    Tensor t = ctx.alloc({B, L, F}, dt);
    if (cfg_.activation == Activation::kRelu) {
      kern::baseline::relu_fw(ctx.kern, h1, t);
    } else {
      kern::baseline::gelu_fw(ctx.kern, h1, t);
    }
    kern::dropout_fw(ctx.kern, pol.elementwise, t, a, act_mask, cfg_.act_dropout,
                     ctx.kern.next_dropout_stream());
  }

  Tensor h2 = ctx.alloc({B, L, H}, dt);
  linear_fw(ctx, a, params_->value(w2_), h2, "ffn.fc2");

  Tensor y = ctx.alloc({B, L, H}, dt);
  Tensor out_mask = ctx.alloc({B, L, H}, DType::kU8);
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_fw(ctx.kern, h2, params_->value(b2_), x, y, out_mask,
                                          cfg_.out_dropout, ctx.kern.next_dropout_stream());
  } else {
    kern::baseline::add_bias(ctx.kern, h2, params_->value(b2_), h2);
    Tensor t = ctx.alloc({B, L, H}, dt);
    kern::dropout_fw(ctx.kern, pol.elementwise, h2, t, out_mask, cfg_.out_dropout,
                     ctx.kern.next_dropout_stream());
    kern::baseline::add(ctx.kern, t, x, y);
  }

  saved_ = Saved{x, ln, mean, rstd, h1, a, act_mask, out_mask};
  return y;
}

Tensor FeedForward::infer_forward(LayerContext& ctx, const Tensor& x) {
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  const int64_t F = cfg_.ffn_dim;
  const DType dt = x.dtype();
  const Policy& pol = ctx.policy;

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, pol.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor h1 = ctx.alloc({B, L, F}, dt);
  linear_fw(ctx, ln, params_->value(w1_), h1, "ffn.fc1");

  // Bias + activation; the dropout stage runs at p = 0 (identity) so the
  // serving path is bitwise the training forward under zero dropout.
  Tensor a = ctx.alloc({B, L, F}, dt);
  if (pol.fused_elementwise) {
    Tensor act_mask = ctx.alloc({B, L, F}, DType::kU8);
    if (cfg_.activation == Activation::kRelu) {
      kern::fused::bias_relu_dropout_fw(ctx.kern, h1, params_->value(b1_), a, act_mask, 0.0f,
                                        ctx.kern.next_dropout_stream());
    } else {
      kern::fused::bias_gelu_dropout_fw(ctx.kern, h1, params_->value(b1_), a, act_mask, 0.0f,
                                        ctx.kern.next_dropout_stream());
    }
  } else {
    kern::baseline::add_bias(ctx.kern, h1, params_->value(b1_), h1);
    if (cfg_.activation == Activation::kRelu) {
      kern::baseline::relu_fw(ctx.kern, h1, a);
    } else {
      kern::baseline::gelu_fw(ctx.kern, h1, a);
    }
  }

  Tensor h2 = ctx.alloc({B, L, H}, dt);
  linear_fw(ctx, a, params_->value(w2_), h2, "ffn.fc2");

  Tensor y = ctx.alloc({B, L, H}, dt);
  if (pol.fused_elementwise) {
    Tensor out_mask = ctx.alloc({B, L, H}, DType::kU8);
    kern::fused::bias_dropout_residual_fw(ctx.kern, h2, params_->value(b2_), x, y, out_mask,
                                          0.0f, ctx.kern.next_dropout_stream());
  } else {
    kern::baseline::add_bias(ctx.kern, h2, params_->value(b2_), h2);
    kern::baseline::add(ctx.kern, h2, x, y);
  }
  return y;
}

Tensor FeedForward::backward(LayerContext& ctx, const Tensor& dy) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.x.shape()[0], L = s.x.shape()[1], H = s.x.shape()[2];
  const int64_t F = cfg_.ffn_dim;
  const DType dt = dy.dtype();
  const Policy& pol = ctx.policy;

  // Through output bias+dropout(+residual grad handled at the LN step).
  Tensor dh2 = ctx.alloc({B, L, H}, dt);
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_bw(ctx.kern, dy, s.out_mask, dh2, cfg_.out_dropout);
  } else {
    kern::dropout_bw(ctx.kern, pol.elementwise, dy, s.out_mask, dh2, cfg_.out_dropout);
  }
  kern::bias_grad(ctx.kern, dh2, params_->grad(b2_));

  Tensor da = ctx.alloc({B, L, F}, dt);
  linear_bw(ctx, dh2, s.a, params_->value(w2_), da, params_->grad(w2_), "ffn.fc2");

  // Through activation + dropout.
  Tensor dh1 = ctx.alloc({B, L, F}, dt);
  if (pol.fused_elementwise) {
    if (cfg_.activation == Activation::kRelu) {
      kern::fused::bias_relu_dropout_bw(ctx.kern, da, s.act_mask, s.h1, params_->value(b1_),
                                        dh1, cfg_.act_dropout);
    } else {
      kern::fused::bias_gelu_dropout_bw(ctx.kern, da, s.act_mask, s.h1, params_->value(b1_),
                                        dh1, cfg_.act_dropout);
    }
  } else {
    Tensor t = ctx.alloc({B, L, F}, dt);
    kern::dropout_bw(ctx.kern, pol.elementwise, da, s.act_mask, t, cfg_.act_dropout);
    if (cfg_.activation == Activation::kRelu) {
      kern::baseline::relu_bw(ctx.kern, t, s.h1, dh1);  // s.h1 holds h1+b1 here
    } else {
      kern::baseline::gelu_bw(ctx.kern, t, s.h1, dh1);
    }
  }
  kern::bias_grad(ctx.kern, dh1, params_->grad(b1_));

  Tensor dln = ctx.alloc({B, L, H}, dt);
  linear_bw(ctx, dh1, s.ln, params_->value(w1_), dln, params_->grad(w1_), "ffn.fc1");

  Tensor dx = ctx.alloc({B, L, H}, dt);
  kern::layernorm_bw(ctx.kern, pol.layernorm, dln, s.x, params_->value(ln_gamma_), s.mean,
                     s.rstd, dx, params_->grad(ln_gamma_), params_->grad(ln_beta_),
                     /*residual_grad=*/&dy);
  release();
  return dx;
}

void FeedForward::release() { saved_.reset(); }

}  // namespace ls2::layers
