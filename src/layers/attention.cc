#include "layers/attention.h"

#include <cmath>

#include "gemm/gemm_device.h"
#include "kernels/elementwise.h"
#include "kernels/layernorm.h"
#include "kernels/softmax.h"
#include "kernels/transform.h"
#include "layers/linear.h"
#include "memory/block_plan.h"

namespace ls2::layers {

namespace {

/// Temporary provider for the attention backward pass: a Fig. 8 shared-block
/// plan under LightSeq2, individual dynamic allocations for baselines.
class BackwardTemps {
 public:
  BackwardTemps(LayerContext& ctx, int64_t B, int64_t N, int64_t Lq, int64_t Lk, int64_t H,
                DType dtype, bool self_attn)
      : ctx_(ctx), dtype_(dtype) {
    if (ctx.policy.system == System::kLightSeq2) {
      const size_t e = dtype_size(dtype);
      const size_t blh_q = static_cast<size_t>(B * Lq * H) * e;
      const size_t blh_k = static_cast<size_t>(B * Lk * H) * e;
      const size_t bl2n = static_cast<size_t>(B * N * Lq * Lk) * e;
      // Lifetimes mirror Fig. 8; disjoint temporaries share blocks.
      std::vector<mem::PlanTensor> spec = {
          {"d_out", blh_q, 1, 2}, {"dmerged", blh_q, 2, 3}, {"dctx", blh_q, 3, 5},
          {"dS", bl2n, 4, 7},     {"dv", blh_k, 5, 8},      {"dq", blh_q, 7, 8},
          {"dk", blh_k, 7, 8},
      };
      (void)self_attn;
      plan_.emplace(std::move(spec));
      plan_->materialize(ctx.activation_allocator());
    }
  }

  Tensor get(const std::string& name, Shape shape) {
    if (plan_) return plan_->tensor(name, std::move(shape), dtype_);
    return ctx_.alloc(std::move(shape), dtype_);
  }

 private:
  LayerContext& ctx_;
  DType dtype_;
  std::optional<mem::BlockPlan> plan_;
};

}  // namespace

AttentionCore::AttentionCore(ParamRegistry& params, const std::string& prefix,
                             AttentionConfig cfg)
    : cfg_(cfg), params_(&params) {
  LS2_CHECK_EQ(cfg.hidden % cfg.heads, 0);
  w_out_ = params.declare(prefix + ".out_proj.weight", Shape{cfg.hidden, cfg.hidden},
                          Init::kXavier);
  b_out_ = params.declare(prefix + ".out_proj.bias", Shape{cfg.hidden}, Init::kZero);
}

Tensor AttentionCore::forward(LayerContext& ctx, const Tensor& q, const Tensor& k,
                              const Tensor& v, const Tensor& residual,
                              const Tensor* key_lens) {
  const int64_t B = q.shape()[0], N = q.shape()[1], Lq = q.shape()[2], D = q.shape()[3];
  const int64_t Lk = k.shape()[2];
  const int64_t H = N * D;
  const DType dt = q.dtype();
  const float scale = 1.0f / std::sqrt(static_cast<float>(D));
  const Policy& pol = ctx.policy;

  // Scores and masked softmax.
  Tensor scores = ctx.alloc({B, N, Lq, Lk}, dt);
  gemm::device_gemm_batched(ctx.device(), false, true, Lq, Lk, D, scale, q, Lq * D, k,
                            Lk * D, 0.0f, scores, Lq * Lk, B * N, "attn.scores");
  Tensor probs = ctx.alloc({B, N, Lq, Lk}, dt);
  kern::attn_softmax_fw(ctx.kern, pol.softmax, scores, probs, cfg_.causal, key_lens);

  // Attention dropout.
  Tensor probs_d = ctx.alloc({B, N, Lq, Lk}, dt);
  Tensor attn_mask = ctx.alloc({B, N, Lq, Lk}, DType::kU8);
  kern::dropout_fw(ctx.kern, pol.elementwise, probs, probs_d, attn_mask, cfg_.attn_dropout,
                   ctx.kern.next_dropout_stream());

  // Context and head merge.
  Tensor ctx_h = ctx.alloc({B, N, Lq, D}, dt);
  gemm::device_gemm_batched(ctx.device(), false, false, Lq, D, Lk, 1.0f, probs_d, Lq * Lk,
                            v, Lk * D, 0.0f, ctx_h, Lq * D, B * N, "attn.context");
  Tensor merged = ctx.alloc({B, Lq, H}, dt);
  kern::merge_heads_fw(ctx.kern, pol.transform, ctx_h, merged);

  // Output projection + bias/dropout/residual.
  Tensor out = ctx.alloc({B, Lq, H}, dt);
  linear_fw(ctx, merged, params_->value(w_out_), out, "attn.out_proj");
  Tensor y = ctx.alloc({B, Lq, H}, dt);
  Tensor out_mask = ctx.alloc({B, Lq, H}, DType::kU8);
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_fw(ctx.kern, out, params_->value(b_out_), residual, y,
                                          out_mask, cfg_.out_dropout,
                                          ctx.kern.next_dropout_stream());
  } else {
    kern::baseline::add_bias(ctx.kern, out, params_->value(b_out_), out);
    Tensor t = ctx.alloc({B, Lq, H}, dt);
    kern::dropout_fw(ctx.kern, pol.elementwise, out, t, out_mask, cfg_.out_dropout,
                     ctx.kern.next_dropout_stream());
    kern::baseline::add(ctx.kern, t, residual, y);
  }

  saved_ = Saved{q, k, v, probs, probs_d, attn_mask, merged, out_mask, B, Lq, Lk};
  return y;
}

Tensor AttentionCore::infer_forward(LayerContext& ctx, const Tensor& q, const Tensor& k,
                                    const Tensor& v, const Tensor& residual,
                                    const Tensor* key_lens, bool causal) {
  const int64_t B = q.shape()[0], N = q.shape()[1], Lq = q.shape()[2], D = q.shape()[3];
  const int64_t Lk = k.shape()[2];
  const int64_t H = N * D;
  const DType dt = q.dtype();
  const float scale = 1.0f / std::sqrt(static_cast<float>(D));
  const Policy& pol = ctx.policy;

  // Scores and masked softmax. With cache blocks Lk = Lmax and key_lens
  // bounds the valid prefix; masked tail rows contribute exact zeros.
  Tensor scores = ctx.alloc({B, N, Lq, Lk}, dt);
  gemm::device_gemm_batched(ctx.device(), false, true, Lq, Lk, D, scale, q, Lq * D, k,
                            Lk * D, 0.0f, scores, Lq * Lk, B * N, "attn.scores");
  Tensor probs = ctx.alloc({B, N, Lq, Lk}, dt);
  kern::attn_softmax_fw(ctx.kern, pol.softmax, scores, probs, causal, key_lens);

  // Context and head merge (no attention dropout at inference).
  Tensor ctx_h = ctx.alloc({B, N, Lq, D}, dt);
  gemm::device_gemm_batched(ctx.device(), false, false, Lq, D, Lk, 1.0f, probs, Lq * Lk, v,
                            Lk * D, 0.0f, ctx_h, Lq * D, B * N, "attn.context");
  Tensor merged = ctx.alloc({B, Lq, H}, dt);
  kern::merge_heads_fw(ctx.kern, pol.transform, ctx_h, merged);

  // Output projection + bias/residual. The dropout kernels run at p = 0
  // (identity, all-ones masks) so the serving path stays bitwise-identical
  // to the training forward under zero dropout — the parity contract
  // tests/infer_test.cc checks.
  Tensor out = ctx.alloc({B, Lq, H}, dt);
  linear_fw(ctx, merged, params_->value(w_out_), out, "attn.out_proj");
  Tensor y = ctx.alloc({B, Lq, H}, dt);
  Tensor out_mask = ctx.alloc({B, Lq, H}, DType::kU8);
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_fw(ctx.kern, out, params_->value(b_out_), residual, y,
                                          out_mask, 0.0f, ctx.kern.next_dropout_stream());
  } else {
    kern::baseline::add_bias(ctx.kern, out, params_->value(b_out_), out);
    kern::baseline::add(ctx.kern, out, residual, y);
  }
  return y;
}

AttentionCore::CoreGrads AttentionCore::backward(LayerContext& ctx, const Tensor& dy) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.B, Lq = s.Lq, Lk = s.Lk;
  const int64_t N = cfg_.heads, D = cfg_.head_dim(), H = cfg_.hidden;
  const DType dt = dy.dtype();
  const float scale = 1.0f / std::sqrt(static_cast<float>(D));
  const Policy& pol = ctx.policy;

  BackwardTemps temps(ctx, B, N, Lq, Lk, H, dt, /*self_attn=*/true);

  // Step 1: through output dropout (+ bias grad).
  Tensor d_out = temps.get("d_out", Shape{B, Lq, H});
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_bw(ctx.kern, dy, s.out_mask, d_out, cfg_.out_dropout);
  } else {
    kern::dropout_bw(ctx.kern, pol.elementwise, dy, s.out_mask, d_out, cfg_.out_dropout);
  }
  kern::bias_grad(ctx.kern, d_out, params_->grad(b_out_));

  // Step 2: output projection.
  Tensor dmerged = temps.get("dmerged", Shape{B, Lq, H});
  linear_bw(ctx, d_out, s.merged, params_->value(w_out_), dmerged, params_->grad(w_out_),
            "attn.out_proj");

  // Step 3: un-merge heads.
  Tensor dctx = temps.get("dctx", Shape{B, N, Lq, D});
  kern::merge_heads_bw(ctx.kern, pol.transform, dmerged, dctx);

  // Steps 4-5: dS = dctx @ V^T ; dV = P_d^T @ dctx.
  Tensor dS = temps.get("dS", Shape{B, N, Lq, Lk});
  gemm::device_gemm_batched(ctx.device(), false, true, Lq, Lk, D, 1.0f, dctx, Lq * D, s.v,
                            Lk * D, 0.0f, dS, Lq * Lk, B * N, "attn.bw_dS");
  Tensor dv = temps.get("dv", Shape{B, N, Lk, D});
  gemm::device_gemm_batched(ctx.device(), true, false, Lk, D, Lq, 1.0f, s.probs_d, Lq * Lk,
                            dctx, Lq * D, 0.0f, dv, Lk * D, B * N, "attn.bw_dV");

  // Steps 5-6: dropout and softmax backward, in place in the dS block.
  kern::dropout_bw(ctx.kern, pol.elementwise, dS, s.attn_mask, dS, cfg_.attn_dropout);
  kern::attn_softmax_bw(ctx.kern, pol.softmax, dS, s.probs, dS);

  // Step 7: dQ = dS @ K * scale ; dK = dS^T @ Q * scale.
  Tensor dq = temps.get("dq", Shape{B, N, Lq, D});
  gemm::device_gemm_batched(ctx.device(), false, false, Lq, D, Lk, scale, dS, Lq * Lk, s.k,
                            Lk * D, 0.0f, dq, Lq * D, B * N, "attn.bw_dQ");
  Tensor dk = temps.get("dk", Shape{B, N, Lk, D});
  gemm::device_gemm_batched(ctx.device(), true, false, Lk, D, Lq, scale, dS, Lq * Lk, s.q,
                            Lq * D, 0.0f, dk, Lk * D, B * N, "attn.bw_dK");

  return CoreGrads{dq, dk, dv};
}

void AttentionCore::release() { saved_.reset(); }

// ---------------------------------------------------------------------------

SelfAttention::SelfAttention(ParamRegistry& params, const std::string& prefix,
                             AttentionConfig cfg)
    : cfg_(cfg),
      params_(&params),
      ln_gamma_(params.declare(prefix + ".ln.gamma", Shape{cfg.hidden}, Init::kOne)),
      ln_beta_(params.declare(prefix + ".ln.beta", Shape{cfg.hidden}, Init::kZero)),
      w_qkv_(params.declare(prefix + ".qkv_proj.weight", Shape{3 * cfg.hidden, cfg.hidden},
                            Init::kXavier)),
      b_qkv_(params.declare(prefix + ".qkv_proj.bias", Shape{3 * cfg.hidden}, Init::kZero)),
      core_(params, prefix, cfg) {}

Tensor SelfAttention::forward(LayerContext& ctx, const Tensor& x, const Tensor* key_lens) {
  LS2_CHECK_EQ(x.shape().rank(), 3);
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  LS2_CHECK_EQ(H, cfg_.hidden);
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor qkv = ctx.alloc({B, L, 3 * H}, dt);
  linear_fw(ctx, ln, params_->value(w_qkv_), qkv, "attn.qkv_proj");

  Tensor q = ctx.alloc({B, N, L, D}, dt);
  Tensor k = ctx.alloc({B, N, L, D}, dt);
  Tensor v = ctx.alloc({B, N, L, D}, dt);
  kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, qkv, params_->value(b_qkv_),
                                {q, k, v});

  Tensor y = core_.forward(ctx, q, k, v, /*residual=*/x, key_lens);
  saved_ = Saved{x, ln, mean, rstd};
  return y;
}

Tensor SelfAttention::backward(LayerContext& ctx, const Tensor& dy) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.x.shape()[0], L = s.x.shape()[1], H = s.x.shape()[2];
  const DType dt = dy.dtype();

  AttentionCore::CoreGrads g = core_.backward(ctx, dy);

  // Step 8: merge dq/dk/dv back to [B, L, 3H].
  Tensor dqkv = ctx.alloc({B, L, 3 * H}, dt);
  kern::split_transpose_bw(ctx.kern, ctx.policy.transform, {g.dq, g.dk, g.dv}, dqkv);
  kern::bias_grad(ctx.kern, dqkv, params_->grad(b_qkv_));

  // Step 9: QKV projection.
  Tensor dln = ctx.alloc({B, L, H}, dt);
  linear_bw(ctx, dqkv, s.ln, params_->value(w_qkv_), dln, params_->grad(w_qkv_),
            "attn.qkv_proj");

  // Step 10: LayerNorm backward fused with the residual gradient.
  Tensor dx = ctx.alloc({B, L, H}, dt);
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, dln, s.x, params_->value(ln_gamma_),
                     s.mean, s.rstd, dx, params_->grad(ln_gamma_), params_->grad(ln_beta_),
                     /*residual_grad=*/&dy);
  release();
  return dx;
}

Tensor SelfAttention::prefill(LayerContext& ctx, const Tensor& x, const Tensor* key_lens,
                              Tensor* k_out, Tensor* v_out) {
  LS2_CHECK_EQ(x.shape().rank(), 3);
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  LS2_CHECK_EQ(H, cfg_.hidden);
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor qkv = ctx.alloc({B, L, 3 * H}, dt);
  linear_fw(ctx, ln, params_->value(w_qkv_), qkv, "attn.qkv_proj");

  Tensor q = ctx.alloc({B, N, L, D}, dt);
  Tensor k = ctx.alloc({B, N, L, D}, dt);
  Tensor v = ctx.alloc({B, N, L, D}, dt);
  kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, qkv, params_->value(b_qkv_),
                                {q, k, v});
  if (k_out) *k_out = k;
  if (v_out) *v_out = v;
  return core_.infer_forward(ctx, q, k, v, /*residual=*/x, key_lens, cfg_.causal);
}

Tensor SelfAttention::decode_step(LayerContext& ctx, const Tensor& x, const Tensor& k_cache,
                                  const Tensor& v_cache, const Tensor& positions,
                                  const Tensor& attend_lens) {
  const int64_t S = x.shape()[0], H = x.shape()[2];
  LS2_CHECK_EQ(x.shape()[1], 1) << "decode_step takes one token per slot";
  LS2_CHECK_EQ(H, cfg_.hidden);
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({S, 1, H}, dt);
  Tensor mean = ctx.alloc({S}, DType::kF32);
  Tensor rstd = ctx.alloc({S}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor qkv = ctx.alloc({S, 1, 3 * H}, dt);
  linear_fw(ctx, ln, params_->value(w_qkv_), qkv, "attn.qkv_proj");

  Tensor q = ctx.alloc({S, N, 1, D}, dt);
  Tensor k = ctx.alloc({S, N, 1, D}, dt);
  Tensor v = ctx.alloc({S, N, 1, D}, dt);
  kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, qkv, params_->value(b_qkv_),
                                {q, k, v});

  // The new token's K/V must be resident in the cache before the scores
  // GEMM — the single query then attends rows [0, attend_lens[s]).
  kern::kv_cache_append(ctx.kern, ctx.policy.transform, k, v, k_cache, v_cache, positions);
  return core_.infer_forward(ctx, q, k_cache, v_cache, /*residual=*/x, &attend_lens,
                             /*causal=*/false);
}

void SelfAttention::release() {
  saved_.reset();
  core_.release();
}

// ---------------------------------------------------------------------------

CrossAttention::CrossAttention(ParamRegistry& params, const std::string& prefix,
                               AttentionConfig cfg)
    : cfg_(cfg),
      params_(&params),
      ln_gamma_(params.declare(prefix + ".ln.gamma", Shape{cfg.hidden}, Init::kOne)),
      ln_beta_(params.declare(prefix + ".ln.beta", Shape{cfg.hidden}, Init::kZero)),
      w_q_(params.declare(prefix + ".q_proj.weight", Shape{cfg.hidden, cfg.hidden},
                          Init::kXavier)),
      b_q_(params.declare(prefix + ".q_proj.bias", Shape{cfg.hidden}, Init::kZero)),
      core_(params, prefix, cfg) {
  LS2_CHECK(!cfg.causal) << "cross attention is never causal";
}

Tensor CrossAttention::forward(LayerContext& ctx, const Tensor& x, const Tensor& k,
                               const Tensor& v, const Tensor* src_lens) {
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor q_gemm = ctx.alloc({B, L, H}, dt);
  linear_fw(ctx, ln, params_->value(w_q_), q_gemm, "attn.q_proj");
  Tensor q = ctx.alloc({B, N, L, D}, dt);
  kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, q_gemm,
                                params_->value(b_q_), {q});

  Tensor y = core_.forward(ctx, q, k, v, /*residual=*/x, src_lens);
  saved_ = Saved{x, ln, mean, rstd};
  return y;
}

Tensor CrossAttention::backward(LayerContext& ctx, const Tensor& dy, const Tensor& dk,
                                const Tensor& dv) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.x.shape()[0], L = s.x.shape()[1], H = s.x.shape()[2];
  const DType dt = dy.dtype();

  AttentionCore::CoreGrads g = core_.backward(ctx, dy);

  // Accumulate encoder-side grads (keys/values shared across queries) with
  // the policy-selected elementwise family, so the LightSeq2 policy pays the
  // vectorised kernel rather than a silent baseline launch.
  kern::add(ctx.kern, ctx.policy.elementwise, g.dk, dk, dk);
  kern::add(ctx.kern, ctx.policy.elementwise, g.dv, dv, dv);

  Tensor dq_gemm = ctx.alloc({B, L, H}, dt);
  kern::split_transpose_bw(ctx.kern, ctx.policy.transform, {g.dq}, dq_gemm);
  kern::bias_grad(ctx.kern, dq_gemm, params_->grad(b_q_));

  Tensor dln = ctx.alloc({B, L, H}, dt);
  linear_bw(ctx, dq_gemm, s.ln, params_->value(w_q_), dln, params_->grad(w_q_),
            "attn.q_proj");

  Tensor dx = ctx.alloc({B, L, H}, dt);
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, dln, s.x, params_->value(ln_gamma_),
                     s.mean, s.rstd, dx, params_->grad(ln_gamma_), params_->grad(ln_beta_),
                     /*residual_grad=*/&dy);
  release();
  return dx;
}

Tensor CrossAttention::infer_forward(LayerContext& ctx, const Tensor& x, const Tensor& k,
                                     const Tensor& v, const Tensor* src_lens) {
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor q_gemm = ctx.alloc({B, L, H}, dt);
  linear_fw(ctx, ln, params_->value(w_q_), q_gemm, "attn.q_proj");
  Tensor q = ctx.alloc({B, N, L, D}, dt);
  kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, q_gemm,
                                params_->value(b_q_), {q});
  return core_.infer_forward(ctx, q, k, v, /*residual=*/x, src_lens, /*causal=*/false);
}

void CrossAttention::release() {
  saved_.reset();
  core_.release();
}

}  // namespace ls2::layers
