#include "layers/attention.h"

#include <cmath>

#include "gemm/gemm_device.h"
#include "kernels/elementwise.h"
#include "kernels/layernorm.h"
#include "kernels/softmax.h"
#include "kernels/transform.h"
#include "layers/linear.h"
#include "memory/block_plan.h"

namespace ls2::layers {

namespace {

/// Temporary provider for the attention backward pass: a Fig. 8 shared-block
/// plan under LightSeq2, individual dynamic allocations for baselines.
class BackwardTemps {
 public:
  BackwardTemps(LayerContext& ctx, int64_t B, int64_t N, int64_t Lq, int64_t Lk, int64_t H,
                DType dtype, bool self_attn)
      : ctx_(ctx), dtype_(dtype), tp_(ctx.tp_size() > 1) {
    // Under TP the plan's fixed lifetimes no longer describe the sharded
    // temporaries, so each one goes through alloc_shard instead (d_out —
    // the full-width dropout gradient — excepted); accounting is slightly
    // conservative (no block sharing), never optimistic.
    if (ctx.policy.system == System::kLightSeq2 && !tp_) {
      const size_t e = dtype_size(dtype);
      const size_t blh_q = static_cast<size_t>(B * Lq * H) * e;
      const size_t blh_k = static_cast<size_t>(B * Lk * H) * e;
      const size_t bl2n = static_cast<size_t>(B * N * Lq * Lk) * e;
      // Lifetimes mirror Fig. 8; disjoint temporaries share blocks.
      std::vector<mem::PlanTensor> spec = {
          {"d_out", blh_q, 1, 2}, {"dmerged", blh_q, 2, 3}, {"dctx", blh_q, 3, 5},
          {"dS", bl2n, 4, 7},     {"dv", blh_k, 5, 8},      {"dq", blh_q, 7, 8},
          {"dk", blh_k, 7, 8},
      };
      (void)self_attn;
      plan_.emplace(std::move(spec));
      plan_->materialize(ctx.activation_allocator());
    }
  }

  Tensor get(const std::string& name, Shape shape) {
    if (plan_) return plan_->tensor(name, std::move(shape), dtype_);
    if (tp_ && name != "d_out") return ctx_.alloc_shard(std::move(shape), dtype_);
    return ctx_.alloc(std::move(shape), dtype_);
  }

 private:
  LayerContext& ctx_;
  DType dtype_;
  bool tp_;
  std::optional<mem::BlockPlan> plan_;
};

}  // namespace

AttentionCore::AttentionCore(ParamRegistry& params, const std::string& prefix,
                             AttentionConfig cfg)
    : cfg_(cfg), params_(&params) {
  LS2_CHECK_EQ(cfg.hidden % cfg.heads, 0);
  LS2_CHECK(cfg.tp.size <= 1 || cfg.heads % cfg.tp.size == 0)
      << cfg.heads << " heads not divisible by tp " << cfg.tp.size;
  // Row-parallel: the merged context is head-major, so a rank's head slice
  // is a contiguous column block of W_out.
  w_out_ = TpParam::declare(params, cfg.tp, prefix + ".out_proj.weight",
                            Shape{cfg.hidden, cfg.hidden}, Init::kXavier, /*dim=*/1);
  b_out_ = params.declare(prefix + ".out_proj.bias", Shape{cfg.hidden}, Init::kZero);
}

Tensor AttentionCore::forward(LayerContext& ctx, const Tensor& q, const Tensor& k,
                              const Tensor& v, const Tensor& residual,
                              const Tensor* key_lens) {
  const int64_t B = q.shape()[0], N = q.shape()[1], Lq = q.shape()[2], D = q.shape()[3];
  const int64_t Lk = k.shape()[2];
  const int64_t H = N * D;
  const DType dt = q.dtype();
  const float scale = 1.0f / std::sqrt(static_cast<float>(D));
  const Policy& pol = ctx.policy;
  const int64_t tp = ctx.tp_size();

  // Scores and masked softmax. Under TP the per-head work is sharded: a
  // rank runs the same batched kernels over N/tp heads.
  const gemm::GemmCharge score_charge{Lq, Lk, D, B * N / tp};
  Tensor scores = ctx.alloc_shard({B, N, Lq, Lk}, dt);
  gemm::device_gemm_batched(ctx.device(), false, true, Lq, Lk, D, scale, q, Lq * D, k,
                            Lk * D, 0.0f, scores, Lq * Lk, B * N, "attn.scores",
                            &score_charge);
  Tensor probs = ctx.alloc_shard({B, N, Lq, Lk}, dt);
  Tensor probs_d = ctx.alloc_shard({B, N, Lq, Lk}, dt);
  Tensor attn_mask = ctx.alloc_shard({B, N, Lq, Lk}, DType::kU8);
  Tensor ctx_h = ctx.alloc_shard({B, N, Lq, D}, dt);
  Tensor merged = ctx.alloc_shard({B, Lq, H}, dt);
  {
    TpChargeScale tp_scale(ctx);
    kern::attn_softmax_fw(ctx.kern, pol.softmax, scores, probs, cfg_.causal, key_lens);

    // Attention dropout.
    kern::dropout_fw(ctx.kern, pol.elementwise, probs, probs_d, attn_mask,
                     cfg_.attn_dropout, ctx.kern.next_dropout_stream());
  }

  // Context and head merge.
  const gemm::GemmCharge context_charge{Lq, D, Lk, B * N / tp};
  gemm::device_gemm_batched(ctx.device(), false, false, Lq, D, Lk, 1.0f, probs_d, Lq * Lk,
                            v, Lk * D, 0.0f, ctx_h, Lq * D, B * N, "attn.context",
                            &context_charge);
  {
    TpChargeScale tp_scale(ctx);
    kern::merge_heads_fw(ctx.kern, pol.transform, ctx_h, merged);
  }

  // Output projection (row-parallel by heads: every rank computes a
  // full-size partial, summed by the TP ring) + bias/dropout/residual.
  Tensor out = ctx.alloc({B, Lq, H}, dt);
  tp_linear_fw(ctx, merged, w_out_.value(ctx), out, "attn.out_proj", TpSplit::kRow);
  if (tp > 1) {
    ctx.tp_group->all_reduce(ctx.device(), static_cast<int64_t>(out.bytes()),
                             "tp.attn.allreduce");
  }
  Tensor y = ctx.alloc({B, Lq, H}, dt);
  Tensor out_mask = ctx.alloc({B, Lq, H}, DType::kU8);
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_fw(ctx.kern, out, params_->value(b_out_), residual, y,
                                          out_mask, cfg_.out_dropout,
                                          ctx.kern.next_dropout_stream());
  } else {
    kern::baseline::add_bias(ctx.kern, out, params_->value(b_out_), out);
    Tensor t = ctx.alloc({B, Lq, H}, dt);
    kern::dropout_fw(ctx.kern, pol.elementwise, out, t, out_mask, cfg_.out_dropout,
                     ctx.kern.next_dropout_stream());
    kern::baseline::add(ctx.kern, t, residual, y);
  }

  saved_ = Saved{q, k, v, probs, probs_d, attn_mask, merged, out_mask, B, Lq, Lk};
  return y;
}

Tensor AttentionCore::infer_forward(LayerContext& ctx, const Tensor& q, const Tensor& k,
                                    const Tensor& v, const Tensor& residual,
                                    const Tensor* key_lens, bool causal) {
  LS2_CHECK(ctx.tp_size() == 1) << "serving paths run unsharded (TP is a training feature)";
  const int64_t B = q.shape()[0], N = q.shape()[1], Lq = q.shape()[2], D = q.shape()[3];
  const int64_t Lk = k.shape()[2];
  const int64_t H = N * D;
  const DType dt = q.dtype();
  const float scale = 1.0f / std::sqrt(static_cast<float>(D));
  const Policy& pol = ctx.policy;

  // Scores and masked softmax. With cache blocks Lk = Lmax and key_lens
  // bounds the valid prefix; masked tail rows contribute exact zeros.
  Tensor scores = ctx.alloc({B, N, Lq, Lk}, dt);
  gemm::device_gemm_batched(ctx.device(), false, true, Lq, Lk, D, scale, q, Lq * D, k,
                            Lk * D, 0.0f, scores, Lq * Lk, B * N, "attn.scores");
  Tensor probs = ctx.alloc({B, N, Lq, Lk}, dt);
  kern::attn_softmax_fw(ctx.kern, pol.softmax, scores, probs, causal, key_lens);

  // Context and head merge (no attention dropout at inference).
  Tensor ctx_h = ctx.alloc({B, N, Lq, D}, dt);
  gemm::device_gemm_batched(ctx.device(), false, false, Lq, D, Lk, 1.0f, probs, Lq * Lk, v,
                            Lk * D, 0.0f, ctx_h, Lq * D, B * N, "attn.context");
  Tensor merged = ctx.alloc({B, Lq, H}, dt);
  kern::merge_heads_fw(ctx.kern, pol.transform, ctx_h, merged);

  // Output projection + bias/residual. The dropout kernels run at p = 0
  // (identity, all-ones masks) so the serving path stays bitwise-identical
  // to the training forward under zero dropout — the parity contract
  // tests/infer_test.cc checks.
  Tensor out = ctx.alloc({B, Lq, H}, dt);
  linear_fw(ctx, merged, w_out_.value(ctx), out, "attn.out_proj");
  Tensor y = ctx.alloc({B, Lq, H}, dt);
  Tensor out_mask = ctx.alloc({B, Lq, H}, DType::kU8);
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_fw(ctx.kern, out, params_->value(b_out_), residual, y,
                                          out_mask, 0.0f, ctx.kern.next_dropout_stream());
  } else {
    kern::baseline::add_bias(ctx.kern, out, params_->value(b_out_), out);
    kern::baseline::add(ctx.kern, out, residual, y);
  }
  return y;
}

AttentionCore::CoreGrads AttentionCore::backward(LayerContext& ctx, const Tensor& dy) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.B, Lq = s.Lq, Lk = s.Lk;
  const int64_t N = cfg_.heads, D = cfg_.head_dim(), H = cfg_.hidden;
  const DType dt = dy.dtype();
  const float scale = 1.0f / std::sqrt(static_cast<float>(D));
  const Policy& pol = ctx.policy;
  const int64_t tp = ctx.tp_size();
  const gemm::GemmCharge bw_charge_sk{Lq, Lk, D, B * N / tp};   // dS shape
  const gemm::GemmCharge bw_charge_kd{Lk, D, Lq, B * N / tp};   // dV/dK shape
  const gemm::GemmCharge bw_charge_qd{Lq, D, Lk, B * N / tp};   // dQ shape

  BackwardTemps temps(ctx, B, N, Lq, Lk, H, dt, /*self_attn=*/true);

  // Step 1: through output dropout (+ bias grad).
  Tensor d_out = temps.get("d_out", Shape{B, Lq, H});
  if (pol.fused_elementwise) {
    kern::fused::bias_dropout_residual_bw(ctx.kern, dy, s.out_mask, d_out, cfg_.out_dropout);
  } else {
    kern::dropout_bw(ctx.kern, pol.elementwise, dy, s.out_mask, d_out, cfg_.out_dropout);
  }
  kern::bias_grad(ctx.kern, d_out, params_->grad(b_out_));

  // Step 2: output projection (row-parallel: fully local backward — a
  // rank's dmerged is its own head slice, its dW its column shard).
  Tensor dmerged = temps.get("dmerged", Shape{B, Lq, H});
  {
    auto dw_out = w_out_.grad(ctx);
    tp_linear_bw(ctx, d_out, s.merged, w_out_.value(ctx), dmerged, dw_out.tensor(),
                 "attn.out_proj", TpSplit::kRow);
  }

  // Step 3: un-merge heads.
  Tensor dctx = temps.get("dctx", Shape{B, N, Lq, D});
  {
    TpChargeScale tp_scale(ctx);
    kern::merge_heads_bw(ctx.kern, pol.transform, dmerged, dctx);
  }

  // Steps 4-5: dS = dctx @ V^T ; dV = P_d^T @ dctx.
  Tensor dS = temps.get("dS", Shape{B, N, Lq, Lk});
  gemm::device_gemm_batched(ctx.device(), false, true, Lq, Lk, D, 1.0f, dctx, Lq * D, s.v,
                            Lk * D, 0.0f, dS, Lq * Lk, B * N, "attn.bw_dS", &bw_charge_sk);
  Tensor dv = temps.get("dv", Shape{B, N, Lk, D});
  gemm::device_gemm_batched(ctx.device(), true, false, Lk, D, Lq, 1.0f, s.probs_d, Lq * Lk,
                            dctx, Lq * D, 0.0f, dv, Lk * D, B * N, "attn.bw_dV",
                            &bw_charge_kd);

  // Steps 5-6: dropout and softmax backward, in place in the dS block.
  {
    TpChargeScale tp_scale(ctx);
    kern::dropout_bw(ctx.kern, pol.elementwise, dS, s.attn_mask, dS, cfg_.attn_dropout);
    kern::attn_softmax_bw(ctx.kern, pol.softmax, dS, s.probs, dS);
  }

  // Step 7: dQ = dS @ K * scale ; dK = dS^T @ Q * scale.
  Tensor dq = temps.get("dq", Shape{B, N, Lq, D});
  gemm::device_gemm_batched(ctx.device(), false, false, Lq, D, Lk, scale, dS, Lq * Lk, s.k,
                            Lk * D, 0.0f, dq, Lq * D, B * N, "attn.bw_dQ", &bw_charge_qd);
  Tensor dk = temps.get("dk", Shape{B, N, Lk, D});
  gemm::device_gemm_batched(ctx.device(), true, false, Lk, D, Lq, scale, dS, Lq * Lk, s.q,
                            Lq * D, 0.0f, dk, Lk * D, B * N, "attn.bw_dK", &bw_charge_kd);

  return CoreGrads{dq, dk, dv};
}

void AttentionCore::release() { saved_.reset(); }

// ---------------------------------------------------------------------------

SelfAttention::SelfAttention(ParamRegistry& params, const std::string& prefix,
                             AttentionConfig cfg)
    : cfg_(cfg),
      params_(&params),
      ln_gamma_(params.declare(prefix + ".ln.gamma", Shape{cfg.hidden}, Init::kOne)),
      ln_beta_(params.declare(prefix + ".ln.beta", Shape{cfg.hidden}, Init::kZero)),
      // Column-parallel by heads: the packed [q; k; v] rows are 3 groups,
      // each sharded by head slice (ShardSpec::groups).
      w_qkv_(TpParam::declare(params, cfg.tp, prefix + ".qkv_proj.weight",
                              Shape{3 * cfg.hidden, cfg.hidden}, Init::kXavier,
                              /*dim=*/0, /*groups=*/3)),
      b_qkv_(TpParam::declare(params, cfg.tp, prefix + ".qkv_proj.bias",
                              Shape{3 * cfg.hidden}, Init::kZero, /*dim=*/0,
                              /*groups=*/3)),
      core_(params, prefix, cfg) {}

Tensor SelfAttention::forward(LayerContext& ctx, const Tensor& x, const Tensor* key_lens) {
  LS2_CHECK_EQ(x.shape().rank(), 3);
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  LS2_CHECK_EQ(H, cfg_.hidden);
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor qkv = ctx.alloc_shard({B, L, 3 * H}, dt);
  tp_linear_fw(ctx, ln, w_qkv_.value(ctx), qkv, "attn.qkv_proj", TpSplit::kColumn);

  Tensor q = ctx.alloc_shard({B, N, L, D}, dt);
  Tensor k = ctx.alloc_shard({B, N, L, D}, dt);
  Tensor v = ctx.alloc_shard({B, N, L, D}, dt);
  {
    TpChargeScale tp_scale(ctx);
    kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, qkv, b_qkv_.value(ctx),
                                  {q, k, v});
  }

  Tensor y = core_.forward(ctx, q, k, v, /*residual=*/x, key_lens);
  saved_ = Saved{x, ln, mean, rstd};
  return y;
}

Tensor SelfAttention::backward(LayerContext& ctx, const Tensor& dy) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.x.shape()[0], L = s.x.shape()[1], H = s.x.shape()[2];
  const DType dt = dy.dtype();

  AttentionCore::CoreGrads g = core_.backward(ctx, dy);

  // Step 8: merge dq/dk/dv back to [B, L, 3H].
  Tensor dqkv = ctx.alloc_shard({B, L, 3 * H}, dt);
  {
    TpChargeScale tp_scale(ctx);
    kern::split_transpose_bw(ctx.kern, ctx.policy.transform, {g.dq, g.dk, g.dv}, dqkv);
    auto db_qkv = b_qkv_.grad(ctx);
    kern::bias_grad(ctx.kern, dqkv, db_qkv.tensor());
  }

  // Step 9: QKV projection (column-parallel: dln partials all-reduce over
  // the TP group, overlapped with the dW GEMM inside tp_linear_bw).
  Tensor dln = ctx.alloc({B, L, H}, dt);
  {
    auto dw_qkv = w_qkv_.grad(ctx);
    tp_linear_bw(ctx, dqkv, s.ln, w_qkv_.value(ctx), dln, dw_qkv.tensor(),
                 "attn.qkv_proj", TpSplit::kColumn);
  }

  // Step 10: LayerNorm backward fused with the residual gradient.
  Tensor dx = ctx.alloc({B, L, H}, dt);
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, dln, s.x, params_->value(ln_gamma_),
                     s.mean, s.rstd, dx, params_->grad(ln_gamma_), params_->grad(ln_beta_),
                     /*residual_grad=*/&dy);
  release();
  return dx;
}

Tensor SelfAttention::prefill(LayerContext& ctx, const Tensor& x, const Tensor* key_lens,
                              Tensor* k_out, Tensor* v_out) {
  LS2_CHECK_EQ(x.shape().rank(), 3);
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  LS2_CHECK_EQ(H, cfg_.hidden);
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor qkv = ctx.alloc({B, L, 3 * H}, dt);
  linear_fw(ctx, ln, w_qkv_.value(ctx), qkv, "attn.qkv_proj");

  Tensor q = ctx.alloc({B, N, L, D}, dt);
  Tensor k = ctx.alloc({B, N, L, D}, dt);
  Tensor v = ctx.alloc({B, N, L, D}, dt);
  kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, qkv, b_qkv_.value(ctx),
                                {q, k, v});
  if (k_out) *k_out = k;
  if (v_out) *v_out = v;
  return core_.infer_forward(ctx, q, k, v, /*residual=*/x, key_lens, cfg_.causal);
}

Tensor SelfAttention::decode_step(LayerContext& ctx, const Tensor& x, const Tensor& k_pool,
                                  const Tensor& v_pool, const Tensor& block_table,
                                  const Tensor& positions, const Tensor& attend_lens) {
  const int64_t S = x.shape()[0], H = x.shape()[2];
  LS2_CHECK_EQ(x.shape()[1], 1) << "decode_step takes one token per slot";
  LS2_CHECK_EQ(H, cfg_.hidden);
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({S, 1, H}, dt);
  Tensor mean = ctx.alloc({S}, DType::kF32);
  Tensor rstd = ctx.alloc({S}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor qkv = ctx.alloc({S, 1, 3 * H}, dt);
  linear_fw(ctx, ln, w_qkv_.value(ctx), qkv, "attn.qkv_proj");

  Tensor q = ctx.alloc({S, N, 1, D}, dt);
  Tensor k = ctx.alloc({S, N, 1, D}, dt);
  Tensor v = ctx.alloc({S, N, 1, D}, dt);
  kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, qkv, b_qkv_.value(ctx),
                                {q, k, v});

  // The new token's K/V must be resident in the pool before the scores
  // GEMM — the single query then attends rows [0, attend_lens[s]).
  kern::kv_cache_append_paged(ctx.kern, ctx.policy.transform, k, v, k_pool, v_pool,
                              block_table, positions);

  // Gather each lane's cached rows into contiguous scratch for the batched
  // scores GEMM. Scratch spans the table's full reach (shape-static for
  // graph replay); rows past attend_lens are exact zeros, so the masked
  // softmax output — and every decoded token — is bitwise-identical to a
  // contiguous cache of any capacity ≥ attend_len.
  const int64_t Lcap = block_table.shape()[1] * k_pool.shape()[2];
  Tensor kg = ctx.alloc({S, N, Lcap, D}, dt);
  Tensor vg = ctx.alloc({S, N, Lcap, D}, dt);
  kern::kv_cache_gather(ctx.kern, ctx.policy.transform, k_pool, v_pool, block_table,
                        attend_lens, kg, vg);
  return core_.infer_forward(ctx, q, kg, vg, /*residual=*/x, &attend_lens,
                             /*causal=*/false);
}

void SelfAttention::release() {
  saved_.reset();
  core_.release();
}

// ---------------------------------------------------------------------------

CrossAttention::CrossAttention(ParamRegistry& params, const std::string& prefix,
                               AttentionConfig cfg)
    : cfg_(cfg),
      params_(&params),
      ln_gamma_(params.declare(prefix + ".ln.gamma", Shape{cfg.hidden}, Init::kOne)),
      ln_beta_(params.declare(prefix + ".ln.beta", Shape{cfg.hidden}, Init::kZero)),
      w_q_(TpParam::declare(params, cfg.tp, prefix + ".q_proj.weight",
                            Shape{cfg.hidden, cfg.hidden}, Init::kXavier, /*dim=*/0)),
      b_q_(TpParam::declare(params, cfg.tp, prefix + ".q_proj.bias", Shape{cfg.hidden},
                            Init::kZero, /*dim=*/0)),
      core_(params, prefix, cfg) {
  LS2_CHECK(!cfg.causal) << "cross attention is never causal";
}

Tensor CrossAttention::forward(LayerContext& ctx, const Tensor& x, const Tensor& k,
                               const Tensor& v, const Tensor* src_lens) {
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  // Column-parallel by heads; k/v arrive head-sharded the same way.
  Tensor q_gemm = ctx.alloc_shard({B, L, H}, dt);
  tp_linear_fw(ctx, ln, w_q_.value(ctx), q_gemm, "attn.q_proj", TpSplit::kColumn);
  Tensor q = ctx.alloc_shard({B, N, L, D}, dt);
  {
    TpChargeScale tp_scale(ctx);
    kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, q_gemm,
                                  b_q_.value(ctx), {q});
  }

  Tensor y = core_.forward(ctx, q, k, v, /*residual=*/x, src_lens);
  saved_ = Saved{x, ln, mean, rstd};
  return y;
}

Tensor CrossAttention::backward(LayerContext& ctx, const Tensor& dy, const Tensor& dk,
                                const Tensor& dv) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.x.shape()[0], L = s.x.shape()[1], H = s.x.shape()[2];
  const DType dt = dy.dtype();

  AttentionCore::CoreGrads g = core_.backward(ctx, dy);

  // Accumulate encoder-side grads (keys/values shared across queries) with
  // the policy-selected elementwise family, so the LightSeq2 policy pays the
  // vectorised kernel rather than a silent baseline launch. Head-sharded
  // under TP, like every per-head tensor.
  Tensor dq_gemm = ctx.alloc_shard({B, L, H}, dt);
  {
    TpChargeScale tp_scale(ctx);
    kern::add(ctx.kern, ctx.policy.elementwise, g.dk, dk, dk);
    kern::add(ctx.kern, ctx.policy.elementwise, g.dv, dv, dv);

    kern::split_transpose_bw(ctx.kern, ctx.policy.transform, {g.dq}, dq_gemm);
    auto db_q = b_q_.grad(ctx);
    kern::bias_grad(ctx.kern, dq_gemm, db_q.tensor());
  }

  // Column-parallel q_proj backward: the dln partial-sum all-reduce,
  // overlapped with the dW GEMM inside tp_linear_bw.
  Tensor dln = ctx.alloc({B, L, H}, dt);
  {
    auto dw_q = w_q_.grad(ctx);
    tp_linear_bw(ctx, dq_gemm, s.ln, w_q_.value(ctx), dln, dw_q.tensor(), "attn.q_proj",
                 TpSplit::kColumn);
  }

  Tensor dx = ctx.alloc({B, L, H}, dt);
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, dln, s.x, params_->value(ln_gamma_),
                     s.mean, s.rstd, dx, params_->grad(ln_gamma_), params_->grad(ln_beta_),
                     /*residual_grad=*/&dy);
  release();
  return dx;
}

Tensor CrossAttention::infer_forward(LayerContext& ctx, const Tensor& x, const Tensor& k,
                                     const Tensor& v, const Tensor* src_lens) {
  const int64_t B = x.shape()[0], L = x.shape()[1], H = x.shape()[2];
  const int64_t N = cfg_.heads, D = cfg_.head_dim();
  const DType dt = x.dtype();

  Tensor ln = ctx.alloc({B, L, H}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_->value(ln_gamma_),
                     params_->value(ln_beta_), ln, mean, rstd);

  Tensor q_gemm = ctx.alloc({B, L, H}, dt);
  linear_fw(ctx, ln, w_q_.value(ctx), q_gemm, "attn.q_proj");
  Tensor q = ctx.alloc({B, N, L, D}, dt);
  kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, q_gemm,
                                b_q_.value(ctx), {q});
  return core_.infer_forward(ctx, q, k, v, /*residual=*/x, src_lens, /*causal=*/false);
}

void CrossAttention::release() {
  saved_.reset();
  core_.release();
}

}  // namespace ls2::layers
