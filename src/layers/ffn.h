// Position-wise feed-forward sublayer (pre-LN, residual inside):
//   y = x + Dropout(W2 · Dropout(Act(W1 · LN(x) + b1)) + b2)
// LightSeq2 fuses {bias, activation, dropout} after the first GEMM and
// {bias, dropout, residual} after the second into single kernels (Fig. 4).
#pragma once

#include <optional>
#include <string>

#include "layers/layer_context.h"
#include "layers/params.h"
#include "layers/tp.h"

namespace ls2::layers {

enum class Activation { kRelu, kGelu };

struct FfnConfig {
  int64_t hidden = 512;
  int64_t ffn_dim = 2048;
  float act_dropout = 0.1f;
  float out_dropout = 0.1f;
  Activation activation = Activation::kRelu;
  /// Megatron split (DESIGN.md §7): W1 column-parallel over ffn_dim, W2
  /// row-parallel — one TP all-reduce after W2 in forward, one after W1's
  /// dx in backward. LN params and the output bias stay replicated.
  TpDecl tp;
};

class FeedForward {
 public:
  FeedForward(ParamRegistry& params, const std::string& prefix, FfnConfig cfg);

  Tensor forward(LayerContext& ctx, const Tensor& x);
  Tensor backward(LayerContext& ctx, const Tensor& dy);
  void release();

  /// Serving forward: same math at dropout p = 0, nothing saved.
  Tensor infer_forward(LayerContext& ctx, const Tensor& x);

 private:
  FfnConfig cfg_;
  ParamRegistry* params_;
  ParamRef ln_gamma_, ln_beta_, b2_;
  TpParam w1_, b1_, w2_;

  struct Saved {
    Tensor x, ln, mean, rstd;
    Tensor h1;        // first GEMM output (pre-bias) — input to fused act bw
    Tensor a;         // after activation+dropout — input to second GEMM
    Tensor act_mask;  // u8
    Tensor out_mask;  // u8
  };
  std::optional<Saved> saved_;
};

}  // namespace ls2::layers
