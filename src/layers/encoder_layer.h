// Transformer encoder layer (pre-LN): self-attention + feed-forward, each
// with its own LayerNorm, dropout, and residual (Fig. 4).
#pragma once

#include <string>

#include "layers/attention.h"
#include "layers/ffn.h"

namespace ls2::layers {

struct TransformerLayerConfig {
  int64_t hidden = 512;
  int64_t heads = 8;
  int64_t ffn_dim = 2048;
  float dropout = 0.1f;          ///< residual/output dropout
  float attn_dropout = 0.1f;     ///< attention-probability dropout
  float act_dropout = 0.1f;      ///< FFN activation dropout
  Activation activation = Activation::kRelu;
  bool causal = false;  ///< causal self-attention (GPT-style decoder-only stacks)
  TpDecl tp;            ///< tensor-parallel sharding of attention + FFN (DESIGN §7)

  AttentionConfig attention(bool causal) const {
    AttentionConfig a;
    a.hidden = hidden;
    a.heads = heads;
    a.attn_dropout = attn_dropout;
    a.out_dropout = dropout;
    a.causal = causal;
    a.tp = tp;
    return a;
  }
  FfnConfig ffn() const {
    FfnConfig f;
    f.hidden = hidden;
    f.ffn_dim = ffn_dim;
    f.act_dropout = act_dropout;
    f.out_dropout = dropout;
    f.activation = activation;
    f.tp = tp;
    return f;
  }
};

class TransformerEncoderLayer {
 public:
  TransformerEncoderLayer(ParamRegistry& params, const std::string& prefix,
                          TransformerLayerConfig cfg);

  /// x: [B, L, H]; key_lens (i32 [B], optional) masks padded positions.
  Tensor forward(LayerContext& ctx, const Tensor& x, const Tensor* key_lens);
  Tensor backward(LayerContext& ctx, const Tensor& dy);
  void release();

  // --- serving (inference-only; see layers/attention.h) ---

  /// Prefill: dropout-free forward; this layer's projected K/V come back
  /// through k_out/v_out for the caller's cache.
  Tensor prefill(LayerContext& ctx, const Tensor& x, const Tensor* key_lens,
                 Tensor* k_out = nullptr, Tensor* v_out = nullptr);
  /// Single-token cached decode through this layer's paged K/V pools.
  Tensor decode_step(LayerContext& ctx, const Tensor& x, const Tensor& k_pool,
                     const Tensor& v_pool, const Tensor& block_table,
                     const Tensor& positions, const Tensor& attend_lens);

 private:
  SelfAttention attn_;
  FeedForward ffn_;
};

}  // namespace ls2::layers
