// Parameter registry.
//
// Layers declare named parameters during construction; the registry then
// materialises them either as one contiguous workspace (LightSeq2's
// "symbolic tensor linking": every parameter/gradient is a view into a
// single buffer, enabling the one-launch trainer of §IV-C) or as individual
// tensors (the baseline frameworks). Initialisation is policy-independent
// so different systems start from identical weights.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "memory/workspace.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ls2::layers {

enum class Init {
  kZero,
  kXavier,   ///< uniform(-a, a), a = sqrt(6/(fan_in+fan_out)) for matrices
  kNormal,   ///< N(0, 0.02) — embedding tables
  kOne,      ///< LayerNorm gain
};

/// How one shard of a tensor-parallel parameter relates to the full tensor
/// (DESIGN.md §7). `dim` 0 slices rows (column-parallel layers), `dim` 1
/// slices columns (row-parallel layers). `groups` handles packed row
/// layouts: the full rows are `groups` equal blocks (QKV projections pack
/// G=3, the layer-batched cross-K/V weight packs G=2·layers) and the shard
/// takes its slice WITHIN each block, so "shard by heads" stays one spec.
struct ShardSpec {
  int dim = 0;
  int64_t groups = 1;
  int index = 0;
  int count = 1;
  bool sharded() const { return count > 1; }
};

class ParamRegistry;

/// Tensor-parallel declaration context threaded through layer configs.
/// `size` is the TP degree; `peers` (when non-null) is the heap-side
/// registry holding the shards of ranks 1..size-1 — null means only rank
/// 0's shard exists (timing/bench runs, which never execute kernel bodies).
struct TpDecl {
  int size = 1;
  ParamRegistry* peers = nullptr;
  bool enabled() const { return size > 1; }
};

/// Copy the `spec` shard of `full` into `shard` (both dense, same dtype).
void copy_shard_from_full(const Tensor& full, const Tensor& shard, const ShardSpec& spec);
/// Scatter `shard` back into its slice of `full`.
void copy_full_from_shard(const Tensor& shard, const Tensor& full, const ShardSpec& spec);
/// The shard's own shape: `full_shape` with dimension `spec.dim` divided by
/// `spec.count` (checked for divisibility, per group along dim 0).
Shape shard_shape(const Shape& full_shape, const ShardSpec& spec);

/// Opaque handle to a registered parameter.
struct ParamRef {
  int index = -1;
  bool valid() const { return index >= 0; }
};

/// Half-open range [begin, end) of parameter declaration indices — the unit
/// in which models report gradient readiness during backward.
struct ParamRange {
  int begin = 0;
  int end = 0;
  bool empty() const { return begin >= end; }
};

class ParamRegistry {
 public:
  /// Declare a parameter (before materialize()).
  ParamRef declare(const std::string& name, Shape shape, Init init);

  /// Declare one SHARD of a tensor-parallel parameter whose full shape is
  /// `full_shape`; the stored tensor has `shard_shape(full_shape, spec)`.
  /// Initialisation draws the FULL tensor (Xavier fans and RNG stream come
  /// from the full spec) and keeps only this shard's slice, so shards of a
  /// logical parameter reassemble bitwise into the unsharded init.
  /// `init_stream` pins the RNG stream; -1 uses this declaration's own
  /// index — right for the rank-0/device registry, whose declarations match
  /// the unsharded model one-to-one. Peer registries pass the rank-0
  /// sibling's stream (9000 + its declaration index) explicitly.
  ParamRef declare_sharded(const std::string& name, Shape full_shape, Init init,
                           const ShardSpec& spec, int64_t init_stream = -1);

  /// Create storage. `contiguous` selects workspace linking (LightSeq2) vs
  /// per-tensor buffers (baselines). Initialisation uses `rng` streams
  /// derived from declaration order, so it is identical either way.
  void materialize(DType dtype, bool contiguous, const Rng& rng,
                   BufferAllocator* alloc = nullptr);
  bool materialized() const { return materialized_; }
  bool contiguous() const { return contiguous_; }
  DType dtype() const { return dtype_; }

  Tensor value(ParamRef ref) const;
  Tensor grad(ParamRef ref) const;
  const std::string& name(ParamRef ref) const;
  Shape shape(ParamRef ref) const;
  /// Shard metadata ({.count = 1} for plain declarations).
  const ShardSpec& shard_spec(ParamRef ref) const;
  /// The logical (pre-sharding) shape; equals shape() when unsharded.
  const Shape& full_shape(ParamRef ref) const;

  int size() const { return static_cast<int>(specs_.size()); }
  int64_t total_elements() const;

  /// Range of every param declared since `begin` (= a size() captured before
  /// constructing a component) — the idiom models use to record each
  /// component's params for grad-ready reporting:
  ///   const int mark = params.size();
  ///   ... declare the component's params ...
  ///   range = params.range_since(mark);
  ParamRange range_since(int begin) const { return {begin, size()}; }

  /// Flat views over ALL parameters / gradients (workspace mode only) — the
  /// tensors the fused trainer updates in one launch.
  Tensor flat_values() const;
  Tensor flat_grads() const;

  /// Byte span [first, second) of one parameter's gradient inside the flat
  /// gradient buffer, including its trailing alignment padding: consecutive
  /// params' spans tile the buffer exactly. In per-tensor mode the spans are
  /// cumulative unpadded sizes over a *conceptual* flat buffer (no views
  /// exist, but bucket sizing still works).
  std::pair<size_t, size_t> grad_byte_span(int index) const;
  /// Total bytes of the (real or conceptual) flat gradient buffer.
  size_t flat_grad_bytes() const;
  /// View of the gradient bytes [begin, end) — one bucket's communication
  /// payload. Workspace mode only.
  Tensor grad_byte_view(size_t begin, size_t end) const;
  /// View of the parameter VALUE bytes [begin, end). The value workspace has
  /// the same slot layout as the gradient workspace, so a gradient byte range
  /// addresses exactly the corresponding parameters' values — what a
  /// range-granular trainer updates. Workspace mode only.
  Tensor value_byte_view(size_t begin, size_t end) const;
  /// Declaration indices of every parameter whose gradient byte span
  /// intersects [begin, end) — the tensor-intersection fallback per-tensor
  /// trainers use to honour a byte-range update request. Works in both
  /// layout modes (per-tensor registries use the conceptual spans).
  ParamRange params_in_byte_range(size_t begin, size_t end) const;

  /// Grad-ready hook (overlapped data-parallel sync): models fire this as
  /// each layer's backward completes, meaning the gradients of params
  /// [range.begin, range.end) are FINAL (no further accumulation). The
  /// bucketer (src/dist/bucket.h) listens and launches each size-capped
  /// bucket's all-reduce as soon as all of its params are ready.
  using GradReadyFn = std::function<void(const ParamRange&)>;
  void set_grad_ready_callback(GradReadyFn fn) { grad_ready_ = std::move(fn); }
  void clear_grad_ready_callback() { grad_ready_ = nullptr; }
  bool has_grad_ready_callback() const { return static_cast<bool>(grad_ready_); }
  /// No-op when no callback is installed, so models call it unconditionally.
  void notify_grad_ready(const ParamRange& range) const;

  /// Zero every gradient buffer (bookkeeping only; systems charge their own
  /// zeroing kernels).
  void zero_grads() const;

  /// Iterate (name, value, grad) — per-tensor trainers and checkpointing.
  void for_each(const std::function<void(const std::string&, Tensor, Tensor)>& fn) const;

 private:
  struct Spec {
    std::string name;
    Shape shape;       ///< stored (shard) shape
    Init init;
    Shape full_shape;  ///< logical shape (== shape when unsharded)
    ShardSpec shard;
    int64_t init_stream = -1;  ///< >= 0 pins the RNG stream (peer shards)
  };

  void init_tensor(const Tensor& t, const Spec& spec, const Rng& rng, uint64_t stream) const;

  std::vector<Spec> specs_;
  std::vector<size_t> grad_offsets_;  // n+1 cumulative gradient byte offsets
  GradReadyFn grad_ready_;
  std::vector<Tensor> values_;  // per-tensor mode
  std::vector<Tensor> grads_;
  mem::Workspace value_ws_;  // workspace mode
  mem::Workspace grad_ws_;
  bool materialized_ = false;
  bool contiguous_ = false;
  DType dtype_ = DType::kF32;
};

}  // namespace ls2::layers
