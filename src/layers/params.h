// Parameter registry.
//
// Layers declare named parameters during construction; the registry then
// materialises them either as one contiguous workspace (LightSeq2's
// "symbolic tensor linking": every parameter/gradient is a view into a
// single buffer, enabling the one-launch trainer of §IV-C) or as individual
// tensors (the baseline frameworks). Initialisation is policy-independent
// so different systems start from identical weights.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "memory/workspace.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ls2::layers {

enum class Init {
  kZero,
  kXavier,   ///< uniform(-a, a), a = sqrt(6/(fan_in+fan_out)) for matrices
  kNormal,   ///< N(0, 0.02) — embedding tables
  kOne,      ///< LayerNorm gain
};

/// Opaque handle to a registered parameter.
struct ParamRef {
  int index = -1;
  bool valid() const { return index >= 0; }
};

class ParamRegistry {
 public:
  /// Declare a parameter (before materialize()).
  ParamRef declare(const std::string& name, Shape shape, Init init);

  /// Create storage. `contiguous` selects workspace linking (LightSeq2) vs
  /// per-tensor buffers (baselines). Initialisation uses `rng` streams
  /// derived from declaration order, so it is identical either way.
  void materialize(DType dtype, bool contiguous, const Rng& rng,
                   BufferAllocator* alloc = nullptr);
  bool materialized() const { return materialized_; }
  bool contiguous() const { return contiguous_; }
  DType dtype() const { return dtype_; }

  Tensor value(ParamRef ref) const;
  Tensor grad(ParamRef ref) const;
  const std::string& name(ParamRef ref) const;
  Shape shape(ParamRef ref) const;

  int size() const { return static_cast<int>(specs_.size()); }
  int64_t total_elements() const;

  /// Flat views over ALL parameters / gradients (workspace mode only) — the
  /// tensors the fused trainer updates in one launch.
  Tensor flat_values() const;
  Tensor flat_grads() const;

  /// Zero every gradient buffer (bookkeeping only; systems charge their own
  /// zeroing kernels).
  void zero_grads() const;

  /// Iterate (name, value, grad) — per-tensor trainers and checkpointing.
  void for_each(const std::function<void(const std::string&, Tensor, Tensor)>& fn) const;

 private:
  struct Spec {
    std::string name;
    Shape shape;
    Init init;
  };

  void init_tensor(const Tensor& t, const Spec& spec, const Rng& rng, uint64_t stream) const;

  std::vector<Spec> specs_;
  std::vector<Tensor> values_;  // per-tensor mode
  std::vector<Tensor> grads_;
  mem::Workspace value_ws_;  // workspace mode
  mem::Workspace grad_ws_;
  bool materialized_ = false;
  bool contiguous_ = false;
  DType dtype_ = DType::kF32;
};

}  // namespace ls2::layers
