#include "layers/decoder_layer.h"

namespace ls2::layers {

TransformerDecoderLayer::TransformerDecoderLayer(ParamRegistry& params,
                                                 const std::string& prefix,
                                                 TransformerLayerConfig cfg)
    : self_attn_(params, prefix + ".self_attn", cfg.attention(/*causal=*/true)),
      cross_attn_(params, prefix + ".cross_attn", cfg.attention(/*causal=*/false)),
      ffn_(params, prefix + ".ffn", cfg.ffn()) {}

Tensor TransformerDecoderLayer::forward(LayerContext& ctx, const Tensor& x, const Tensor& k,
                                        const Tensor& v, const Tensor* src_lens,
                                        const Tensor* tgt_lens) {
  LS2_CHECK(ctx.policy.supports_decoder)
      << system_name(ctx.policy.system) << " does not support decoder layers";
  Tensor h = self_attn_.forward(ctx, x, tgt_lens);
  h = cross_attn_.forward(ctx, h, k, v, src_lens);
  return ffn_.forward(ctx, h);
}

Tensor TransformerDecoderLayer::prefill(LayerContext& ctx, const Tensor& x,
                                        const Tensor* tgt_lens, const Tensor& cross_k,
                                        const Tensor& cross_v, const Tensor* src_lens,
                                        Tensor* k_out, Tensor* v_out) {
  LS2_CHECK(ctx.policy.supports_decoder)
      << system_name(ctx.policy.system) << " does not support decoder layers";
  Tensor h = self_attn_.prefill(ctx, x, tgt_lens, k_out, v_out);
  h = cross_attn_.infer_forward(ctx, h, cross_k, cross_v, src_lens);
  return ffn_.infer_forward(ctx, h);
}

Tensor TransformerDecoderLayer::decode_step(LayerContext& ctx, const Tensor& x,
                                            const Tensor& k_pool, const Tensor& v_pool,
                                            const Tensor& block_table,
                                            const Tensor& positions,
                                            const Tensor& attend_lens, const Tensor& cross_k,
                                            const Tensor& cross_v, const Tensor* src_lens) {
  Tensor h = self_attn_.decode_step(ctx, x, k_pool, v_pool, block_table, positions,
                                    attend_lens);
  h = cross_attn_.infer_forward(ctx, h, cross_k, cross_v, src_lens);
  return ffn_.infer_forward(ctx, h);
}

Tensor TransformerDecoderLayer::backward(LayerContext& ctx, const Tensor& dy,
                                         const Tensor& dk, const Tensor& dv) {
  Tensor dh = ffn_.backward(ctx, dy);
  dh = cross_attn_.backward(ctx, dh, dk, dv);
  return self_attn_.backward(ctx, dh);
}

void TransformerDecoderLayer::release() {
  self_attn_.release();
  cross_attn_.release();
  ffn_.release();
}

}  // namespace ls2::layers
