// Token + position embedding layer (§IV-A.2):
//   y = Dropout(sqrt(H) * E[token] + P[position]).
// The token table is a trainable parameter (often tied with the output
// projection); the positional table is sinusoidal and fixed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "layers/layer_context.h"
#include "layers/params.h"
#include "layers/tp.h"

namespace ls2::layers {

struct EmbeddingConfig {
  int64_t vocab = 32000;
  int64_t hidden = 512;
  int64_t max_len = 1024;
  float dropout = 0.1f;
  int32_t pad_id = 0;
  /// Vocab-shards the token table (Megatron's tied-embedding discipline:
  /// each rank owns vocab/tp rows; the lookup's partial rows sum over one
  /// forward TP all-reduce — exact, every row has a single owner — and the
  /// scatter-add backward stays local). Requires vocab % tp.size == 0 (pad
  /// the vocab, as Megatron does).
  TpDecl tp;
};

class EmbeddingLayer {
 public:
  /// `tied_table` shares another embedding's token table (e.g. source and
  /// target embeddings of a shared-vocabulary translation model).
  EmbeddingLayer(ParamRegistry& params, const std::string& prefix, EmbeddingConfig cfg,
                 TpParam tied_table = {});

  /// Lazily builds the sinusoidal table on first use (host init, not a
  /// device kernel).
  Tensor forward(LayerContext& ctx, const Tensor& ids);
  void backward(LayerContext& ctx, const Tensor& dy);
  void release();

  /// Serving prefill: the forward lookup at dropout p = 0, nothing saved.
  Tensor prefill(LayerContext& ctx, const Tensor& ids);
  /// Serving decode: one token per slot (ids [S, 1]) at per-slot positions
  /// (i32 [S] — each sequence's next index), no dropout.
  Tensor decode_step(LayerContext& ctx, const Tensor& ids, const Tensor& positions);

  /// The token table parameter — shared with the output projection when
  /// embeddings are tied.
  const TpParam& table() const { return table_; }
  const EmbeddingConfig& config() const { return cfg_; }

 private:
  /// Build pos_ for the table's dtype if not already present.
  void ensure_positions(DType dtype);

  EmbeddingConfig cfg_;
  ParamRegistry* params_;
  TpParam table_;
  Tensor pos_;  // sinusoidal, fixed

  struct Saved {
    Tensor ids, mask;
  };
  std::optional<Saved> saved_;
  /// Per-microbatch scatter inputs held back under pipeline parallelism —
  /// flushed in microbatch order on the step's last backward (see
  /// backward() for why the table's addition chain requires this).
  struct Deferred {
    Tensor dy, ids, mask;
  };
  std::vector<Deferred> deferred_;
};

}  // namespace ls2::layers
