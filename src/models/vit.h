// Vision Transformer (ViT) for image classification (Table II row 2).
//
// Input arrives as pre-extracted patch vectors [B, P, C·ps²] (the host data
// pipeline performs resize + im2col, as real loaders do on CPU workers);
// the model projects patches to the hidden size, prepends a learned [CLS]
// token, adds learned positional embeddings, applies dropout, then a GELU
// pre-LN encoder stack and a classification head on [CLS].
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dist/tensor_parallel.h"
#include "layers/encoder_layer.h"
#include "layers/params.h"
#include "layers/pp.h"

namespace ls2::models {

struct VitConfig {
  int64_t image = 224;
  int64_t patch = 32;
  int64_t channels = 3;
  int64_t hidden = 768;
  int64_t heads = 12;
  int64_t ffn_dim = 3072;
  int64_t layers = 12;
  int64_t num_classes = 10;
  float dropout = 0.1f;
  /// Tensor parallelism (DESIGN §7): shards the encoder blocks; patch
  /// projection, embeddings and the classifier head stay replicated.
  dist::TpConfig tp;

  static VitConfig b32();  ///< ViT-B/32
  static VitConfig l32();  ///< ViT-L/32
  int64_t patches() const { return (image / patch) * (image / patch); }
  int64_t patch_dim() const { return channels * patch * patch; }
  int64_t seq_len() const { return patches() + 1; }  // +[CLS]
  int64_t parameter_count() const;
};

struct ImageBatch {
  Tensor patches;  ///< [B, P, C·ps²] float
  Tensor labels;   ///< [B] i32
};

struct ClsResultVit {
  float loss = 0;
  int64_t correct = 0;
  int64_t total = 0;
};

class Vit {
 public:
  Vit(VitConfig cfg, layers::System system, DType dtype, uint64_t seed,
      BufferAllocator* param_alloc = nullptr);

  ClsResultVit forward(layers::LayerContext& ctx, const ImageBatch& batch);
  void backward(layers::LayerContext& ctx);
  void release();

  layers::ParamRegistry& params() { return params_; }
  const VitConfig& config() const { return cfg_; }

  /// Partition across `pp` pipeline stages (DESIGN.md §9): patch/CLS/pos
  /// embedding with the first blocks on stage 0, final LayerNorm + head
  /// with the last blocks on stage pp-1.
  const layers::PpPlan& pp_configure(int pp);
  const layers::PpPlan& pp_plan() const { return pp_plan_; }

  /// TP epilogue (no-op when TP is off): peer-shard update after the rank-0
  /// trainer step — see core::train_step.
  void tp_finish_step(const optim::Optimizer& trainer) {
    if (tp_) tp_->finish_step(trainer);
  }
  layers::ParamRegistry* tp_peers() { return tp_ ? &tp_->peers() : nullptr; }

 private:
  VitConfig cfg_;
  layers::ParamRegistry params_;
  std::unique_ptr<dist::TpRuntime> tp_;
  layers::ParamRef patch_w_, patch_b_, cls_token_, pos_embed_;
  std::vector<std::unique_ptr<layers::TransformerEncoderLayer>> blocks_;
  layers::ParamRef ln_gamma_, ln_beta_, head_w_, head_b_;

  // Declaration ranges for the gradient bucketer (src/dist/bucket.h).
  layers::ParamRange embed_range_, ln_range_, head_range_;
  std::vector<layers::ParamRange> block_ranges_;
  layers::PpPlan pp_plan_;
  std::vector<int> block_stage_;  ///< stage of each block (all 0 without PP)

  struct Saved {
    Tensor patches_in, proj;  // [B,P,pd] input and [B,P,H] projection
    Tensor embed_mask;        // u8 dropout mask over [B, P+1, H]
    Tensor stack_out, out, mean, rstd;
    Tensor cls, logits, stats, labels;
    int64_t B = 0;
  };
  std::optional<Saved> saved_;
};

}  // namespace ls2::models
