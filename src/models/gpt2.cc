#include "models/gpt2.h"

#include <algorithm>

#include "kernels/layernorm.h"
#include "kernels/transform.h"

namespace ls2::models {

Gpt2Config Gpt2Config::base() { return Gpt2Config{}; }

Gpt2Config Gpt2Config::large() {
  Gpt2Config c;
  c.hidden = 1280;
  c.heads = 20;
  c.ffn_dim = 5120;
  c.layers = 36;
  return c;
}

int64_t Gpt2Config::parameter_count() const {
  const int64_t h = hidden, f = ffn_dim;
  const int64_t block = 3 * h * h + 3 * h + h * h + h + 4 * h + 2 * h * f + f + h;
  return layers * block + vocab * h + 2 * h;
}

Gpt2::Gpt2(Gpt2Config cfg, layers::System system, DType dtype, uint64_t seed,
           BufferAllocator* param_alloc)
    : cfg_(cfg) {
  if (cfg.tp.enabled()) {
    LS2_CHECK(system == layers::System::kLightSeq2)
        << "tensor parallelism is implemented for the LightSeq2 system";
    if (cfg.tp.simulate_peers) tp_ = std::make_unique<dist::TpRuntime>(cfg.tp.size);
  }
  const layers::TpDecl tp_decl{cfg.tp.enabled() ? cfg.tp.size : 1,
                               tp_ ? &tp_->peers() : nullptr};

  layers::EmbeddingConfig ecfg;
  ecfg.vocab = cfg.vocab;
  ecfg.hidden = cfg.hidden;
  ecfg.max_len = cfg.max_len;
  ecfg.dropout = cfg.dropout;
  ecfg.pad_id = cfg.pad_id;
  ecfg.tp = tp_decl;
  int mark = params_.size();
  embed_ = std::make_unique<layers::EmbeddingLayer>(params_, "gpt2.embed", ecfg);
  embed_range_ = params_.range_since(mark);

  layers::TransformerLayerConfig lcfg;
  lcfg.hidden = cfg.hidden;
  lcfg.heads = cfg.heads;
  lcfg.ffn_dim = cfg.ffn_dim;
  lcfg.dropout = cfg.dropout;
  lcfg.attn_dropout = cfg.dropout;
  lcfg.act_dropout = cfg.dropout;
  lcfg.activation = layers::Activation::kGelu;
  lcfg.causal = true;  // decoder-only: causal self-attention
  lcfg.tp = tp_decl;
  for (int64_t i = 0; i < cfg.layers; ++i) {
    mark = params_.size();
    blocks_.push_back(std::make_unique<layers::TransformerEncoderLayer>(
        params_, "gpt2.blocks." + std::to_string(i), lcfg));
    block_ranges_.push_back(params_.range_since(mark));
  }
  mark = params_.size();
  ln_gamma_ = params_.declare("gpt2.ln_f.gamma", Shape{cfg.hidden}, layers::Init::kOne);
  ln_beta_ = params_.declare("gpt2.ln_f.beta", Shape{cfg.hidden}, layers::Init::kZero);
  ln_range_ = params_.range_since(mark);

  layers::CriterionConfig ccfg;
  ccfg.vocab = cfg.vocab;
  ccfg.hidden = cfg.hidden;
  ccfg.label_smoothing = 0.0f;  // plain LM cross entropy
  ccfg.pad_id = cfg.pad_id;
  ccfg.tp = tp_decl;
  criterion_ = std::make_unique<layers::CriterionLayer>(params_, "gpt2.lm_head", ccfg,
                                                        embed_->table());

  params_.materialize(dtype, system == layers::System::kLightSeq2, Rng(seed), param_alloc);
  if (tp_) tp_->materialize(dtype, seed);
}

const layers::PpPlan& Gpt2::pp_configure(int pp) {
  LS2_CHECK(pp >= 1 && pp <= cfg_.layers)
      << "pp " << pp << " needs at least one block per stage (layers=" << cfg_.layers << ")";
  pp_plan_ = layers::PpPlan{};
  pp_plan_.stages = pp;
  pp_plan_.stage_params.assign(static_cast<size_t>(pp), {});
  pp_plan_.stage_params[0].push_back(embed_range_);
  block_stage_.assign(static_cast<size_t>(cfg_.layers), 0);
  for (int64_t i = 0; i < cfg_.layers; ++i) {
    const int s = layers::block_stage(i, cfg_.layers, pp);
    block_stage_[static_cast<size_t>(i)] = s;
    pp_plan_.stage_params[static_cast<size_t>(s)].push_back(
        block_ranges_[static_cast<size_t>(i)]);
  }
  pp_plan_.stage_params[static_cast<size_t>(pp - 1)].push_back(ln_range_);
  // The LM head is tied to the token table on stage 0: the last stage's
  // criterion backward writes it, so its gradient rides one extra hop home.
  if (pp > 1) {
    const layers::ParamRef table = embed_->table().rank0();
    const auto [lo, hi] = params_.grad_byte_span(table.index);
    pp_plan_.tied_table_bytes = static_cast<int64_t>(hi - lo);
    pp_plan_.tied_param = table;
  }
  return pp_plan_;
}

layers::CriterionResult Gpt2::forward(layers::LayerContext& ctx, const LmBatch& batch) {
  // Peer mirror of the zeroed-at-step-start contract; under microbatched
  // execution peers accumulate across microbatches like the device grads.
  if (tp_ && ctx.kern.microbatch == 0) tp_->zero_grads();
  const int64_t B = batch.ids.shape()[0], L = batch.ids.shape()[1];
  ctx.pp_enter(0, /*forward=*/true, 0);
  Tensor h = embed_->forward(ctx, batch.ids);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (!block_stage_.empty() && i > 0 && block_stage_[i] != block_stage_[i - 1]) {
      ctx.pp_enter(block_stage_[i], true, static_cast<int64_t>(h.bytes()));
    }
    h = blocks_[i]->forward(ctx, h, /*key_lens=*/nullptr);
  }
  Tensor out = ctx.alloc({B, L, cfg_.hidden}, params_.dtype());
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, h, params_.value(ln_gamma_),
                     params_.value(ln_beta_), out, mean, rstd);
  layers::CriterionResult res = criterion_->forward(ctx, out, batch.targets);
  saved_ = Saved{h, out, mean, rstd, B, L};
  return res;
}

void Gpt2::backward(layers::LayerContext& ctx) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int last_stage = pp_plan_.stages - 1;
  ctx.pp_enter(last_stage, /*forward=*/false, 0);
  Tensor d_out = criterion_->backward(ctx);
  Tensor dh = ctx.alloc({s.B, s.L, cfg_.hidden}, params_.dtype());
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, d_out, s.stack_out,
                     params_.value(ln_gamma_), s.mean, s.rstd, dh, params_.grad(ln_gamma_),
                     params_.grad(ln_beta_));
  params_.notify_grad_ready(ln_range_);
  int stage = last_stage;
  for (int64_t i = cfg_.layers - 1; i >= 0; --i) {
    if (!block_stage_.empty() && block_stage_[static_cast<size_t>(i)] != stage) {
      stage = block_stage_[static_cast<size_t>(i)];
      ctx.pp_enter(stage, false, static_cast<int64_t>(dh.bytes()));
    }
    dh = blocks_[static_cast<size_t>(i)]->backward(ctx, dh);
    params_.notify_grad_ready(block_ranges_[static_cast<size_t>(i)]);
  }
  embed_->backward(ctx, dh);
  params_.notify_grad_ready(embed_range_);  // tied LM-head table now final
  release();
}

infer::KvCacheConfig Gpt2::kv_cache_config(int64_t slots, int64_t max_len) const {
  infer::KvCacheConfig kcfg;
  kcfg.layers = cfg_.layers;
  kcfg.heads = cfg_.heads;
  kcfg.head_dim = cfg_.hidden / cfg_.heads;
  kcfg.slots = slots;
  kcfg.seq_tokens = std::min<int64_t>(max_len, cfg_.max_len);
  kcfg.page_tokens = std::min<int64_t>(infer::kDefaultPageTokens, kcfg.seq_tokens);
  kcfg.dtype = params_.dtype();
  return kcfg;
}

Tensor Gpt2::prefill(layers::LayerContext& ctx, const Tensor& ids, infer::KvCache* cache,
                     const std::vector<infer::SequenceHandle>& seqs,
                     const Tensor* prompt_lens) {
  LS2_CHECK(ctx.tp_size() == 1 && !cfg_.tp.enabled())
      << "serving runs unsharded (TP is a training feature)";
  const int64_t B = ids.shape()[0], L = ids.shape()[-1];
  Tensor lanes, wbegin, wend;
  if (cache) {
    LS2_CHECK_EQ(static_cast<int64_t>(seqs.size()), B);
    // Heap: host-written metadata.
    lanes = Tensor::empty({B}, DType::kI32);
    wbegin = Tensor::empty({B}, DType::kI32);
    wend = Tensor::empty({B}, DType::kI32);
    int32_t* lp = lanes.data<int32_t>();
    int32_t* bp = wbegin.data<int32_t>();
    int32_t* ep = wend.data<int32_t>();
    for (int64_t b = 0; b < B; ++b) {
      const infer::SequenceHandle h = seqs[static_cast<size_t>(b)];
      lp[b] = static_cast<int32_t>(cache->lane(h));
      bp[b] = cache->write_begin(h);
      // Padding rows past the allocated length are dropped: decode appends
      // claim those positions into pages of their own later.
      ep[b] = static_cast<int32_t>(std::min<int64_t>(L, cache->len(h)));
    }
  }
  Tensor h = embed_->prefill(ctx, ids);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    Tensor k_new, v_new;
    h = blocks_[i]->prefill(ctx, h, prompt_lens, cache ? &k_new : nullptr,
                            cache ? &v_new : nullptr);
    if (cache) {
      kern::kv_cache_store_paged(ctx.kern, ctx.policy.transform, k_new, v_new,
                                 cache->k_pool(static_cast<int64_t>(i)),
                                 cache->v_pool(static_cast<int64_t>(i)),
                                 cache->block_table(), lanes, wbegin, wend);
    }
  }
  Tensor out = ctx.alloc({B, L, cfg_.hidden}, params_.dtype());
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, h, params_.value(ln_gamma_),
                     params_.value(ln_beta_), out, mean, rstd);
  return criterion_->infer_logits(ctx, out).view({B, L, cfg_.vocab});
}

Tensor Gpt2::decode_step(layers::LayerContext& ctx, const Tensor& ids,
                         infer::KvCache& cache) {
  const int64_t S = cache.config().slots;
  LS2_CHECK_EQ(ids.shape()[0], S) << "decode runs the full slot batch";
  Tensor h = embed_->decode_step(ctx, ids, cache.positions());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    h = blocks_[i]->decode_step(ctx, h, cache.k_pool(static_cast<int64_t>(i)),
                                cache.v_pool(static_cast<int64_t>(i)), cache.block_table(),
                                cache.positions(), cache.attend_lens());
  }
  Tensor out = ctx.alloc({S, 1, cfg_.hidden}, params_.dtype());
  Tensor mean = ctx.alloc({S}, DType::kF32);
  Tensor rstd = ctx.alloc({S}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, h, params_.value(ln_gamma_),
                     params_.value(ln_beta_), out, mean, rstd);
  return criterion_->infer_logits(ctx, out);  // [S, vocab]
}

void Gpt2::release() {
  saved_.reset();
  embed_->release();
  for (auto& b : blocks_) b->release();
  criterion_->release();
}

}  // namespace ls2::models
