// GPT-2: decoder-only language model — embedding, causal pre-LN Transformer
// stack with GELU FFNs, tied LM head (Table II row 4).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dist/tensor_parallel.h"
#include "infer/kv_cache.h"
#include "layers/criterion_layer.h"
#include "layers/embedding_layer.h"
#include "layers/encoder_layer.h"
#include "layers/pp.h"

namespace ls2::models {

struct Gpt2Config {
  int64_t vocab = 50257;
  int64_t hidden = 768;
  int64_t heads = 12;
  int64_t ffn_dim = 3072;
  int64_t layers = 12;
  int64_t max_len = 1024;
  float dropout = 0.1f;
  int32_t pad_id = 0;
  /// Tensor parallelism (DESIGN §7). Requires kLightSeq2 and heads/ffn_dim/
  /// vocab divisible by tp.size — GPT-2's 50257 vocab needs Megatron-style
  /// padding (e.g. 50264) before sharding.
  dist::TpConfig tp;

  static Gpt2Config base();   ///< 117M parameters
  static Gpt2Config large();  ///< 762M parameters
  int64_t parameter_count() const;
};

struct LmBatch {
  Tensor ids;      ///< [B, L] i32 input tokens
  Tensor targets;  ///< [B, L] i32 next tokens (pad_id where ignored)
};

class Gpt2 {
 public:
  Gpt2(Gpt2Config cfg, layers::System system, DType dtype, uint64_t seed,
       BufferAllocator* param_alloc = nullptr);

  layers::CriterionResult forward(layers::LayerContext& ctx, const LmBatch& batch);
  void backward(layers::LayerContext& ctx);
  void release();

  // --- serving (inference-only: no dropout, nothing saved) ---

  /// Paged-cache geometry for `slots` concurrent decode lanes of up to
  /// `max_len` tokens each (prompt + generated), at the default page size.
  /// Callers tune page_tokens/total_pages/prefix_sharing on the returned
  /// config before constructing the KvCache.
  infer::KvCacheConfig kv_cache_config(int64_t slots, int64_t max_len) const;

  /// Prefill: run prompts ids [B, Lp] (right-padded; `prompt_lens` i32 [B]
  /// masks the padding, nullptr for unpadded) through the full causal stack
  /// and return logits [B, Lp, vocab]. With `cache`, row b's K/V are
  /// scattered through `seqs[b]`'s block table into the paged pools —
  /// rows below write_begin(seqs[b]) already live in shared prefix pages
  /// and are skipped; rows at or past len(seqs[b]) are padding and are
  /// dropped (decode appends claim those positions later). With
  /// cache == nullptr this doubles as the full re-forward reference of the
  /// parity tests.
  Tensor prefill(layers::LayerContext& ctx, const Tensor& ids, infer::KvCache* cache,
                 const std::vector<infer::SequenceHandle>& seqs,
                 const Tensor* prompt_lens = nullptr);

  /// One incremental decode step over ALL decode lanes: ids [S, 1] (the next
  /// token per lane, pad for free lanes), returns logits [S, vocab]. Static
  /// shape every step — the graph-capturable serving region. The caller
  /// brackets it with KvCache::begin_decode / commit_decode, after
  /// KvCache::extend on every live sequence.
  Tensor decode_step(layers::LayerContext& ctx, const Tensor& ids, infer::KvCache& cache);

  layers::ParamRegistry& params() { return params_; }
  const Gpt2Config& config() const { return cfg_; }

  /// Partition the stack across `pp` pipeline stages (DESIGN.md §9): the
  /// embedding with the first blocks on stage 0, the final LayerNorm and
  /// the tied LM head with the last blocks on stage pp-1. forward/backward
  /// then mark every stage boundary via LayerContext::pp_enter.
  const layers::PpPlan& pp_configure(int pp);
  const layers::PpPlan& pp_plan() const { return pp_plan_; }

  /// TP epilogue (no-op when TP is off): peer-shard update after the rank-0
  /// trainer step — see core::train_step.
  void tp_finish_step(const optim::Optimizer& trainer) {
    if (tp_) tp_->finish_step(trainer);
  }
  layers::ParamRegistry* tp_peers() { return tp_ ? &tp_->peers() : nullptr; }

 private:
  Gpt2Config cfg_;
  layers::ParamRegistry params_;
  std::unique_ptr<dist::TpRuntime> tp_;
  std::unique_ptr<layers::EmbeddingLayer> embed_;
  std::vector<std::unique_ptr<layers::TransformerEncoderLayer>> blocks_;
  layers::ParamRef ln_gamma_, ln_beta_;
  std::unique_ptr<layers::CriterionLayer> criterion_;

  // Declaration ranges for the gradient bucketer (src/dist/bucket.h). The
  // LM head is tied to the token table, so embed_range_ — fired after the
  // embedding backward, the table's last accumulation — covers it.
  layers::ParamRange embed_range_, ln_range_;
  std::vector<layers::ParamRange> block_ranges_;
  layers::PpPlan pp_plan_;
  std::vector<int> block_stage_;  ///< stage of each block (all 0 without PP)

  struct Saved {
    Tensor stack_out, out, mean, rstd;
    int64_t B = 0, L = 0;
  };
  std::optional<Saved> saved_;
};

}  // namespace ls2::models
