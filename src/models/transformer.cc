#include "models/transformer.h"

#include <algorithm>

#include "gemm/gemm_device.h"
#include "kernels/elementwise.h"
#include "kernels/layernorm.h"
#include "kernels/transform.h"
#include "layers/linear.h"

namespace ls2::models {

using layers::LayerContext;

TransformerConfig TransformerConfig::base(int64_t e, int64_t d) {
  TransformerConfig c;
  c.hidden = 512;
  c.heads = 8;
  c.ffn_dim = 2048;
  c.encoder_layers = e;
  c.decoder_layers = d;
  return c;
}

TransformerConfig TransformerConfig::big(int64_t e, int64_t d) {
  TransformerConfig c;
  c.hidden = 1024;
  c.heads = 16;
  c.ffn_dim = 4096;
  c.encoder_layers = e;
  c.decoder_layers = d;
  return c;
}

layers::TransformerLayerConfig TransformerConfig::layer_config() const {
  layers::TransformerLayerConfig l;
  l.hidden = hidden;
  l.heads = heads;
  l.ffn_dim = ffn_dim;
  l.dropout = dropout;
  l.attn_dropout = attn_dropout;
  l.act_dropout = act_dropout;
  return l;
}

int64_t TransformerConfig::parameter_count() const {
  const int64_t h = hidden, f = ffn_dim;
  // Per encoder layer: QKV (3h*h + 3h) + out (h*h + h) + 2 LN (4h) +
  // FFN (h*f + f + f*h + h) + FFN LN is included in the 2 LN above.
  const int64_t enc_layer = 3 * h * h + 3 * h + h * h + h + 4 * h + 2 * h * f + f + h;
  // Decoder adds cross-attn Q (h*h+h) + out (h*h+h) + LN (2h); the cross
  // K/V projection lives at stack level: 2h*h + 2h per layer.
  const int64_t dec_layer = enc_layer + 2 * h * h + 2 * h + 2 * h + 2 * h * h + 2 * h;
  int64_t total = encoder_layers * enc_layer + decoder_layers * dec_layer;
  total += vocab * h;       // shared token table
  total += 4 * h;           // final encoder+decoder LN
  if (!tied_embeddings) total += 2 * vocab * h;
  return total;
}

Transformer::Transformer(TransformerConfig cfg, layers::System system, DType dtype,
                         uint64_t seed, BufferAllocator* param_alloc)
    : cfg_(cfg) {
  if (cfg.tp.enabled()) {
    LS2_CHECK(system == layers::System::kLightSeq2)
        << "tensor parallelism is implemented for the LightSeq2 system";
    if (cfg.tp.simulate_peers) tp_ = std::make_unique<dist::TpRuntime>(cfg.tp.size);
  }
  const layers::TpDecl tp_decl{cfg.tp.enabled() ? cfg.tp.size : 1,
                               tp_ ? &tp_->peers() : nullptr};

  layers::EmbeddingConfig ecfg;
  ecfg.vocab = cfg.vocab;
  ecfg.hidden = cfg.hidden;
  ecfg.max_len = cfg.max_len;
  ecfg.dropout = cfg.dropout;
  ecfg.pad_id = cfg.pad_id;
  ecfg.tp = tp_decl;

  // Each component's declaration range is recorded for the gradient
  // bucketer; backward reports a range grad-ready once its last
  // accumulation has run.
  int mark = params_.size();
  src_embed_ = std::make_unique<layers::EmbeddingLayer>(params_, "encoder.embed", ecfg);
  src_range_ = params_.range_since(mark);
  mark = params_.size();
  tgt_embed_ = std::make_unique<layers::EmbeddingLayer>(
      params_, "decoder.embed", ecfg,
      cfg.tied_embeddings ? src_embed_->table() : layers::TpParam{});
  tgt_range_ = params_.range_since(mark);

  layers::TransformerLayerConfig lcfg = cfg.layer_config();
  lcfg.tp = tp_decl;
  for (int64_t i = 0; i < cfg.encoder_layers; ++i) {
    mark = params_.size();
    encoder_.push_back(std::make_unique<layers::TransformerEncoderLayer>(
        params_, "encoder.layers." + std::to_string(i), lcfg));
    enc_ranges_.push_back(params_.range_since(mark));
  }
  mark = params_.size();
  enc_ln_gamma_ = params_.declare("encoder.ln.gamma", Shape{cfg.hidden}, layers::Init::kOne);
  enc_ln_beta_ = params_.declare("encoder.ln.beta", Shape{cfg.hidden}, layers::Init::kZero);
  enc_ln_range_ = params_.range_since(mark);

  // Layer-batched cross-attention projection: ALL decoder layers' K/V
  // weights concatenated (Fig. 5b). Layer i owns rows [2iH, 2(i+1)H).
  // Under TP the packed [K0; V0; K1; V1; ...] rows are 2*layers groups,
  // each sharded by head slice — "shard by heads" for every layer's K and V
  // in the one concatenated weight.
  mark = params_.size();
  cross_kv_weight_ = layers::TpParam::declare(
      params_, tp_decl, "decoder.cross_kv.weight",
      Shape{2 * cfg.decoder_layers * cfg.hidden, cfg.hidden}, layers::Init::kXavier,
      /*dim=*/0, /*groups=*/2 * cfg.decoder_layers);
  cross_kv_bias_ = layers::TpParam::declare(
      params_, tp_decl, "decoder.cross_kv.bias", Shape{2 * cfg.decoder_layers * cfg.hidden},
      layers::Init::kZero, /*dim=*/0, /*groups=*/2 * cfg.decoder_layers);
  cross_kv_range_ = params_.range_since(mark);
  for (int64_t i = 0; i < cfg.decoder_layers; ++i) {
    mark = params_.size();
    decoder_.push_back(std::make_unique<layers::TransformerDecoderLayer>(
        params_, "decoder.layers." + std::to_string(i), lcfg));
    dec_ranges_.push_back(params_.range_since(mark));
  }
  mark = params_.size();
  dec_ln_gamma_ = params_.declare("decoder.ln.gamma", Shape{cfg.hidden}, layers::Init::kOne);
  dec_ln_beta_ = params_.declare("decoder.ln.beta", Shape{cfg.hidden}, layers::Init::kZero);
  dec_ln_range_ = params_.range_since(mark);

  layers::CriterionConfig ccfg;
  ccfg.vocab = cfg.vocab;
  ccfg.hidden = cfg.hidden;
  ccfg.label_smoothing = cfg.label_smoothing;
  ccfg.pad_id = cfg.pad_id;
  ccfg.tp = tp_decl;
  mark = params_.size();
  criterion_ = std::make_unique<layers::CriterionLayer>(
      params_, "criterion", ccfg,
      cfg.tied_embeddings ? src_embed_->table() : layers::TpParam{});
  criterion_range_ = params_.range_since(mark);

  params_.materialize(dtype, /*contiguous=*/system == layers::System::kLightSeq2, Rng(seed),
                      param_alloc);
  if (tp_) tp_->materialize(dtype, seed);
}

std::vector<Tensor> Transformer::project_cross_kv(LayerContext& ctx, const Tensor& enc_out) {
  const int64_t B = enc_out.shape()[0], Ls = enc_out.shape()[1], H = cfg_.hidden;
  const int64_t N = cfg_.heads, D = H / N, n = cfg_.decoder_layers;
  const DType dt = enc_out.dtype();
  const Tensor w = cross_kv_weight_.value(ctx);
  const Tensor b = cross_kv_bias_.value(ctx);

  // Head-sharded under TP (column-parallel: no forward comm; the per-head
  // cross attention consumes each rank's own head slice).
  std::vector<Tensor> kv;
  kv.reserve(static_cast<size_t>(2 * n));
  for (int64_t i = 0; i < 2 * n; ++i) kv.push_back(ctx.alloc_shard({B, N, Ls, D}, dt));

  if (ctx.policy.layer_batched_cross_attn) {
    // ONE GEMM for all layers' keys and values, one fused bias+split.
    Tensor kv_gemm = ctx.alloc_shard({B, Ls, 2 * n * H}, dt);
    layers::tp_linear_fw(ctx, enc_out, w, kv_gemm, "decoder.cross_kv",
                         layers::TpSplit::kColumn);
    {
      layers::TpChargeScale tp_scale(ctx);
      kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, kv_gemm, b, kv);
    }
    return kv;
  }
  LS2_CHECK(ctx.tp_size() == 1)
      << "per-layer cross-K/V projection has no TP path (TP implies kLightSeq2)";
  // Per-layer: two GEMMs (K and V) + bias/reshape per decoder layer (Fig. 5a).
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t g = 0; g < 2; ++g) {
      Tensor wi = w.slice((2 * i + g) * H, (2 * i + g + 1) * H);
      Tensor bi = b.slice((2 * i + g) * H, (2 * i + g + 1) * H);
      Tensor gemm_out = ctx.alloc({B, Ls, H}, dt);
      layers::linear_fw(ctx, enc_out, wi, gemm_out,
                        "decoder.cross_kv." + std::to_string(i));
      kern::bias_split_transpose_fw(ctx.kern, ctx.policy.transform, gemm_out, bi,
                                    {kv[static_cast<size_t>(2 * i + g)]});
    }
  }
  return kv;
}

Tensor Transformer::cross_kv_backward(LayerContext& ctx, const std::vector<Tensor>& dkv) {
  LS2_CHECK(saved_.has_value());
  const Saved& s = *saved_;
  const int64_t B = s.B, Ls = s.Ls, H = cfg_.hidden, n = cfg_.decoder_layers;
  const DType dt = dkv[0].dtype();
  const Tensor w = cross_kv_weight_.value(ctx);
  Tensor d_enc = ctx.alloc({B, Ls, H}, dt);

  if (ctx.policy.layer_batched_cross_attn) {
    Tensor dkv_gemm = ctx.alloc_shard({B, Ls, 2 * n * H}, dt);
    {
      layers::TpChargeScale tp_scale(ctx);
      kern::split_transpose_bw(ctx.kern, ctx.policy.transform, dkv, dkv_gemm);
      auto db = cross_kv_bias_.grad(ctx);
      kern::bias_grad(ctx.kern, dkv_gemm, db.tensor());
    }
    // Column-parallel backward: the d_enc partial sum is the projection's
    // TP all-reduce, overlapped with the dW GEMM inside tp_linear_bw.
    auto dw = cross_kv_weight_.grad(ctx);
    layers::tp_linear_bw(ctx, dkv_gemm, s.enc_out, w, d_enc, dw.tensor(),
                         "decoder.cross_kv", layers::TpSplit::kColumn);
    return d_enc;
  }
  LS2_CHECK(ctx.tp_size() == 1)
      << "per-layer cross-K/V projection has no TP path (TP implies kLightSeq2)";
  // Per-layer path accumulates into d_enc with one extra add per GEMM.
  bool first = true;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t g = 0; g < 2; ++g) {
      Tensor dgemm = ctx.alloc({B, Ls, H}, dt);
      kern::split_transpose_bw(ctx.kern, ctx.policy.transform,
                               {dkv[static_cast<size_t>(2 * i + g)]}, dgemm);
      Tensor bi_grad = params_.grad(cross_kv_bias_.rank0()).slice((2 * i + g) * H,
                                                          (2 * i + g + 1) * H);
      kern::bias_grad(ctx.kern, dgemm, bi_grad);
      Tensor wi = w.slice((2 * i + g) * H, (2 * i + g + 1) * H);
      Tensor dwi = params_.grad(cross_kv_weight_.rank0()).slice((2 * i + g) * H,
                                                        (2 * i + g + 1) * H);
      if (first) {
        layers::linear_bw(ctx, dgemm, s.enc_out, wi, d_enc, dwi, "decoder.cross_kv");
        first = false;
      } else {
        Tensor d_tmp = ctx.alloc({B, Ls, H}, dt);
        layers::linear_bw(ctx, dgemm, s.enc_out, wi, d_tmp, dwi, "decoder.cross_kv");
        kern::baseline::add(ctx.kern, d_tmp, d_enc, d_enc);
      }
    }
  }
  return d_enc;
}

infer::KvCacheConfig Transformer::kv_cache_config(int64_t slots, int64_t max_len,
                                                  int64_t cross_len) const {
  infer::KvCacheConfig kcfg;
  kcfg.layers = cfg_.decoder_layers;
  kcfg.heads = cfg_.heads;
  kcfg.head_dim = cfg_.hidden / cfg_.heads;
  kcfg.slots = slots;
  kcfg.seq_tokens = std::min<int64_t>(max_len, cfg_.max_len);
  kcfg.page_tokens = std::min<int64_t>(infer::kDefaultPageTokens, kcfg.seq_tokens);
  kcfg.cross_len = cross_len;
  kcfg.dtype = params_.dtype();
  return kcfg;
}

void Transformer::encode(LayerContext& ctx, const Tensor& src_ids, const Tensor& src_lens,
                         infer::KvCache& cache,
                         const std::vector<infer::SequenceHandle>& seqs) {
  LS2_CHECK(ctx.tp_size() == 1 && !cfg_.tp.enabled())
      << "serving runs unsharded (TP is a training feature)";
  const int64_t B = src_ids.shape()[0], Ls = src_ids.shape()[1], H = cfg_.hidden;
  LS2_CHECK_EQ(B, static_cast<int64_t>(seqs.size()));
  LS2_CHECK_LE(Ls, cache.config().cross_len);
  const DType dt = params_.dtype();

  Tensor h = src_embed_->prefill(ctx, src_ids);
  for (auto& layer : encoder_) h = layer->prefill(ctx, h, &src_lens);
  Tensor enc_out = ctx.alloc({B, Ls, H}, dt);
  Tensor mean = ctx.alloc({B * Ls}, DType::kF32);
  Tensor rstd = ctx.alloc({B * Ls}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, h, params_.value(enc_ln_gamma_),
                     params_.value(enc_ln_beta_), enc_out, mean, rstd);

  // Layer-batched cross K/V (Fig. 5b), computed once per request and
  // installed in the cache for every future decode step.
  std::vector<Tensor> kv = project_cross_kv(ctx, enc_out);
  Tensor slot_ids = Tensor::empty({B}, DType::kI32);  // heap: host metadata
  int32_t* sp = slot_ids.data<int32_t>();
  for (int64_t b = 0; b < B; ++b)
    sp[b] = static_cast<int32_t>(cache.lane(seqs[static_cast<size_t>(b)]));
  const int32_t* lens = src_lens.data<int32_t>();
  for (int64_t i = 0; i < cfg_.decoder_layers; ++i) {
    kern::kv_cache_store(ctx.kern, ctx.policy.transform, kv[static_cast<size_t>(2 * i)],
                         kv[static_cast<size_t>(2 * i + 1)], cache.cross_k(i),
                         cache.cross_v(i), slot_ids);
  }
  for (int64_t b = 0; b < B; ++b)
    cache.set_src_len(seqs[static_cast<size_t>(b)], lens[b]);
}

Tensor Transformer::prefill(LayerContext& ctx, const Tensor& tgt_in, infer::KvCache& cache,
                            const std::vector<infer::SequenceHandle>& seqs,
                            const Tensor* tgt_lens) {
  const int64_t B = tgt_in.shape()[0], Lp = tgt_in.shape()[1], H = cfg_.hidden;
  LS2_CHECK_EQ(B, static_cast<int64_t>(seqs.size()));
  const DType dt = params_.dtype();

  // Heap: host-written metadata.
  Tensor lanes = Tensor::empty({B}, DType::kI32);
  Tensor wbegin = Tensor::empty({B}, DType::kI32);
  Tensor wend = Tensor::empty({B}, DType::kI32);
  {
    int32_t* lp = lanes.data<int32_t>();
    int32_t* bp = wbegin.data<int32_t>();
    int32_t* ep = wend.data<int32_t>();
    for (int64_t b = 0; b < B; ++b) {
      const infer::SequenceHandle h = seqs[static_cast<size_t>(b)];
      lp[b] = static_cast<int32_t>(cache.lane(h));
      bp[b] = cache.write_begin(h);
      ep[b] = static_cast<int32_t>(std::min<int64_t>(Lp, cache.len(h)));
    }
  }
  Tensor h = tgt_embed_->prefill(ctx, tgt_in);
  for (size_t i = 0; i < decoder_.size(); ++i) {
    Tensor k_new, v_new;
    h = decoder_[i]->prefill(ctx, h, tgt_lens, cache.cross_k(static_cast<int64_t>(i)),
                             cache.cross_v(static_cast<int64_t>(i)), &cache.src_lens(),
                             &k_new, &v_new);
    kern::kv_cache_store_paged(ctx.kern, ctx.policy.transform, k_new, v_new,
                               cache.k_pool(static_cast<int64_t>(i)),
                               cache.v_pool(static_cast<int64_t>(i)), cache.block_table(),
                               lanes, wbegin, wend);
  }
  Tensor out = ctx.alloc({B, Lp, H}, dt);
  Tensor mean = ctx.alloc({B * Lp}, DType::kF32);
  Tensor rstd = ctx.alloc({B * Lp}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, h, params_.value(dec_ln_gamma_),
                     params_.value(dec_ln_beta_), out, mean, rstd);
  return criterion_->infer_logits(ctx, out).view({B, Lp, cfg_.vocab});
}

Tensor Transformer::decode_step(LayerContext& ctx, const Tensor& ids,
                                infer::KvCache& cache) {
  const int64_t S = cache.config().slots, H = cfg_.hidden;
  LS2_CHECK_EQ(ids.shape()[0], S) << "decode runs the full slot batch";
  Tensor h = tgt_embed_->decode_step(ctx, ids, cache.positions());
  for (size_t i = 0; i < decoder_.size(); ++i) {
    h = decoder_[i]->decode_step(ctx, h, cache.k_pool(static_cast<int64_t>(i)),
                                 cache.v_pool(static_cast<int64_t>(i)), cache.block_table(),
                                 cache.positions(), cache.attend_lens(),
                                 cache.cross_k(static_cast<int64_t>(i)),
                                 cache.cross_v(static_cast<int64_t>(i)), &cache.src_lens());
  }
  Tensor out = ctx.alloc({S, 1, H}, params_.dtype());
  Tensor mean = ctx.alloc({S}, DType::kF32);
  Tensor rstd = ctx.alloc({S}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, h, params_.value(dec_ln_gamma_),
                     params_.value(dec_ln_beta_), out, mean, rstd);
  return criterion_->infer_logits(ctx, out);  // [S, vocab]
}

const layers::PpPlan& Transformer::pp_configure(int pp) {
  LS2_CHECK(pp >= 1) << "pp " << pp;
  const int64_t enc = cfg_.encoder_layers, dec = cfg_.decoder_layers;
  // Stage budget split proportional to depth, at least one stage per side.
  int pe = pp == 1 ? 1
                   : std::clamp(static_cast<int>((pp * enc + (enc + dec) / 2) / (enc + dec)),
                                1, pp - 1);
  const int pd = pp == 1 ? 1 : pp - pe;
  LS2_CHECK(enc >= pe && dec >= pd)
      << "pp " << pp << " (encoder " << pe << " + decoder " << pd
      << " stages) needs at least one layer per stage (" << enc << "+" << dec << " layers)";
  pp_encoder_stages_ = pe;
  pp_plan_ = layers::PpPlan{};
  pp_plan_.stages = pp;
  pp_plan_.stage_params.assign(static_cast<size_t>(pp), {});
  auto stage_of = [pp](int s) { return std::min(s, pp - 1); };
  pp_plan_.stage_params[0].push_back(src_range_);
  enc_stage_.assign(static_cast<size_t>(enc), 0);
  dec_stage_.assign(static_cast<size_t>(dec), 0);
  // Declaration order is src_embed, tgt_embed, enc layers, enc_ln,
  // cross_kv, dec layers, dec_ln, criterion — each range lands on exactly
  // one stage (tgt_range_/criterion_range_ are empty when tied).
  pp_plan_.stage_params[static_cast<size_t>(stage_of(pe))].push_back(tgt_range_);
  for (int64_t i = 0; i < enc; ++i) {
    const int s = layers::block_stage(i, enc, pe);
    enc_stage_[static_cast<size_t>(i)] = s;
    pp_plan_.stage_params[static_cast<size_t>(s)].push_back(
        enc_ranges_[static_cast<size_t>(i)]);
  }
  pp_plan_.stage_params[static_cast<size_t>(pe - 1)].push_back(enc_ln_range_);
  // The layer-batched cross-K/V projection consumes enc_out where it is
  // produced: the last encoder stage.
  pp_plan_.stage_params[static_cast<size_t>(pe - 1)].push_back(cross_kv_range_);
  for (int64_t i = 0; i < dec; ++i) {
    const int s = pp == 1 ? 0 : pe + layers::block_stage(i, dec, pd);
    dec_stage_[static_cast<size_t>(i)] = s;
    pp_plan_.stage_params[static_cast<size_t>(s)].push_back(
        dec_ranges_[static_cast<size_t>(i)]);
  }
  pp_plan_.stage_params[static_cast<size_t>(pp - 1)].push_back(dec_ln_range_);
  pp_plan_.stage_params[static_cast<size_t>(pp - 1)].push_back(criterion_range_);
  // The tied token table is declared with the source embedding on stage 0
  // but written last by the criterion backward on stage pp-1 — that
  // gradient rides one extra hop home before stage 0's bucket can launch.
  if (pp > 1 && cfg_.tied_embeddings) {
    const layers::ParamRef table = src_embed_->table().rank0();
    const auto [lo, hi] = params_.grad_byte_span(table.index);
    pp_plan_.tied_table_bytes = static_cast<int64_t>(hi - lo);
    pp_plan_.tied_param = table;
  }
  return pp_plan_;
}

layers::CriterionResult Transformer::forward(LayerContext& ctx, const MtBatch& batch) {
  // Peer-shard grads mirror rank 0's zeroed-at-step-start contract (host
  // bookkeeping — rank 0's zero_grad launch is the charged one). Under
  // microbatched execution peers accumulate across microbatches.
  if (tp_ && ctx.kern.microbatch == 0) tp_->zero_grads();
  const int64_t B = batch.src_ids.shape()[0];
  const int64_t Ls = batch.src_ids.shape()[1];
  const int64_t Lt = batch.tgt_in.shape()[1];
  const DType dt = params_.dtype();

  // Encoder.
  ctx.pp_enter(0, /*forward=*/true, 0);
  Tensor h = src_embed_->forward(ctx, batch.src_ids);
  for (size_t i = 0; i < encoder_.size(); ++i) {
    if (!enc_stage_.empty() && i > 0 && enc_stage_[i] != enc_stage_[i - 1]) {
      ctx.pp_enter(enc_stage_[i], true, static_cast<int64_t>(h.bytes()));
    }
    h = encoder_[i]->forward(ctx, h, &batch.src_lens);
  }
  Tensor enc_stack_out = h;
  Tensor enc_out = ctx.alloc({B, Ls, cfg_.hidden}, dt);
  Tensor enc_mean = ctx.alloc({B * Ls}, DType::kF32);
  Tensor enc_rstd = ctx.alloc({B * Ls}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, enc_stack_out,
                     params_.value(enc_ln_gamma_), params_.value(enc_ln_beta_), enc_out,
                     enc_mean, enc_rstd);

  // Cross-attention K/V for every decoder layer.
  std::vector<Tensor> kv = project_cross_kv(ctx, enc_out);

  // Decoder. Crossing into the first decoder stage carries every layer's
  // cross K/V (the target embedding reads host token ids, not enc state);
  // later boundaries carry the hidden state plus the K/V still needed by
  // downstream layers.
  if (pp_plan_.stages > 1) {
    int64_t kv_bytes = 0;
    for (const Tensor& t : kv) kv_bytes += static_cast<int64_t>(t.bytes());
    ctx.pp_enter(pp_encoder_stages_, true, kv_bytes);
  }
  Tensor d = tgt_embed_->forward(ctx, batch.tgt_in);
  for (size_t i = 0; i < decoder_.size(); ++i) {
    if (!dec_stage_.empty() && i > 0 && dec_stage_[i] != dec_stage_[i - 1]) {
      int64_t payload = static_cast<int64_t>(d.bytes());
      for (size_t l = i; l < decoder_.size(); ++l) {
        payload += static_cast<int64_t>(kv[2 * l].bytes() + kv[2 * l + 1].bytes());
      }
      ctx.pp_enter(dec_stage_[i], true, payload);
    }
    d = decoder_[i]->forward(ctx, d, kv[2 * i], kv[2 * i + 1], &batch.src_lens,
                             &batch.tgt_lens);
  }
  Tensor dec_stack_out = d;
  Tensor dec_out = ctx.alloc({B, Lt, cfg_.hidden}, dt);
  Tensor dec_mean = ctx.alloc({B * Lt}, DType::kF32);
  Tensor dec_rstd = ctx.alloc({B * Lt}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, dec_stack_out,
                     params_.value(dec_ln_gamma_), params_.value(dec_ln_beta_), dec_out,
                     dec_mean, dec_rstd);

  layers::CriterionResult result = criterion_->forward(ctx, dec_out, batch.tgt_out);
  saved_ = Saved{batch.src_lens, batch.tgt_lens, enc_stack_out, enc_out,     enc_mean,
                 enc_rstd,       dec_stack_out,  dec_out,       dec_mean,    dec_rstd,
                 std::move(kv),  B,              Ls,            Lt};
  return result;
}

void Transformer::backward(LayerContext& ctx) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const DType dt = params_.dtype();
  const int64_t H = cfg_.hidden;
  const int64_t N = cfg_.heads, D = H / N;

  ctx.pp_enter(pp_plan_.stages - 1, /*forward=*/false, 0);
  Tensor d_dec_out = criterion_->backward(ctx);
  // With tied embeddings the criterion wrote into the shared token table,
  // which keeps accumulating until the source embedding backward — so only
  // an untied criterion's own projection is final here.
  params_.notify_grad_ready(criterion_range_);

  // Final decoder LayerNorm.
  Tensor d_dec = ctx.alloc({s.B, s.Lt, H}, dt);
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, d_dec_out, s.dec_stack_out,
                     params_.value(dec_ln_gamma_), s.dec_mean, s.dec_rstd, d_dec,
                     params_.grad(dec_ln_gamma_), params_.grad(dec_ln_beta_));
  params_.notify_grad_ready(dec_ln_range_);

  // Decoder layers (reverse), accumulating cross K/V grads. Zeroing the
  // accumulators is real device work: one fused launch under LightSeq2, one
  // per tensor for the baselines.
  std::vector<Tensor> dkv;
  for (int64_t i = 0; i < 2 * cfg_.decoder_layers; ++i) {
    dkv.push_back(ctx.alloc_shard({s.B, N, s.Ls, D}, dt));
  }
  {
    layers::TpChargeScale tp_scale(ctx);  // zeroing covers the head shard
    const int zero_launches =
        ctx.policy.fused_elementwise ? 1 : static_cast<int>(dkv.size());
    const int64_t each = static_cast<int64_t>(dkv.size()) *
                         static_cast<int64_t>(dkv[0].bytes()) / zero_launches;
    for (int i = 0; i < zero_launches; ++i) {
      simgpu::KernelDesc d;
      d.name = ctx.policy.fused_elementwise ? "ls2.zero_dkv" : "torch.zero";
      d.bytes_written = each;
      d.mem_efficiency = ctx.policy.fused_elementwise ? 0.9 : 0.7;
      ctx.kern.dev.launch(d, i == 0 ? std::function<void()>([&] {
        for (Tensor& t : dkv) t.zero_();
      })
                                    : std::function<void()>(nullptr));
    }
  }
  for (int64_t i = cfg_.decoder_layers - 1; i >= 0; --i) {
    if (!dec_stage_.empty() && i + 1 < cfg_.decoder_layers &&
        dec_stage_[static_cast<size_t>(i)] != dec_stage_[static_cast<size_t>(i + 1)]) {
      // d plus the cross-K/V grads already produced by later-stage layers,
      // all bound for the projection backward on stage pe-1.
      int64_t payload = static_cast<int64_t>(d_dec.bytes());
      for (int64_t l = i + 1; l < cfg_.decoder_layers; ++l) {
        payload += static_cast<int64_t>(dkv[static_cast<size_t>(2 * l)].bytes() +
                                        dkv[static_cast<size_t>(2 * l + 1)].bytes());
      }
      ctx.pp_enter(dec_stage_[static_cast<size_t>(i)], false, payload);
    }
    d_dec = decoder_[static_cast<size_t>(i)]->backward(
        ctx, d_dec, dkv[static_cast<size_t>(2 * i)], dkv[static_cast<size_t>(2 * i + 1)]);
    params_.notify_grad_ready(dec_ranges_[static_cast<size_t>(i)]);
  }
  tgt_embed_->backward(ctx, d_dec);
  params_.notify_grad_ready(tgt_range_);  // empty when the table is tied

  // Cross K/V projection backward -> gradient into the encoder output
  // (computed after the 0-th decoder layer finishes, as in §IV-A.4).
  if (pp_plan_.stages > 1) {
    int64_t dkv_bytes = 0;
    for (const Tensor& t : dkv) dkv_bytes += static_cast<int64_t>(t.bytes());
    ctx.pp_enter(pp_encoder_stages_ - 1, false, dkv_bytes);
  }
  Tensor d_enc_out = cross_kv_backward(ctx, dkv);
  dkv.clear();
  params_.notify_grad_ready(cross_kv_range_);

  // Final encoder LayerNorm.
  Tensor d_enc = ctx.alloc({s.B, s.Ls, H}, dt);
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, d_enc_out, s.enc_stack_out,
                     params_.value(enc_ln_gamma_), s.enc_mean, s.enc_rstd, d_enc,
                     params_.grad(enc_ln_gamma_), params_.grad(enc_ln_beta_));
  params_.notify_grad_ready(enc_ln_range_);

  for (int64_t i = cfg_.encoder_layers - 1; i >= 0; --i) {
    if (!enc_stage_.empty() && i + 1 < cfg_.encoder_layers &&
        enc_stage_[static_cast<size_t>(i)] != enc_stage_[static_cast<size_t>(i + 1)]) {
      ctx.pp_enter(enc_stage_[static_cast<size_t>(i)], false,
                   static_cast<int64_t>(d_enc.bytes()));
    }
    d_enc = encoder_[static_cast<size_t>(i)]->backward(ctx, d_enc);
    params_.notify_grad_ready(enc_ranges_[static_cast<size_t>(i)]);
  }
  src_embed_->backward(ctx, d_enc);
  params_.notify_grad_ready(src_range_);  // shared token table now final
  release();
}

void Transformer::release() {
  saved_.reset();
  src_embed_->release();
  tgt_embed_->release();
  for (auto& l : encoder_) l->release();
  for (auto& l : decoder_) l->release();
  criterion_->release();
}

}  // namespace ls2::models
