#include "models/bert.h"

#include "kernels/criterion.h"
#include "kernels/elementwise.h"
#include "kernels/layernorm.h"
#include "layers/linear.h"

namespace ls2::models {

namespace {

// Gather/scatter of the [CLS] row (position 0 of each sequence) — one small
// strided-copy kernel each way.
void gather_cls(layers::LayerContext& ctx, const Tensor& h, const Tensor& cls) {
  const int64_t B = h.shape()[0], L = h.shape()[1], H = h.shape()[2];
  simgpu::KernelDesc d;
  d.name = "bert.gather_cls";
  d.bytes_read = static_cast<int64_t>(cls.bytes());
  d.bytes_written = static_cast<int64_t>(cls.bytes());
  d.mem_efficiency = 0.6;
  ctx.kern.dev.launch(d, [&, B, L, H] {
    LS2_DISPATCH_FLOAT(h.dtype(), T, {
      const T* hp = h.data<T>();
      T* cp = cls.data<T>();
      for (int64_t b = 0; b < B; ++b)
        for (int64_t j = 0; j < H; ++j) cp[b * H + j] = hp[b * L * H + j];
    });
  });
}

void scatter_cls(layers::LayerContext& ctx, const Tensor& dcls, const Tensor& dh) {
  const int64_t B = dh.shape()[0], L = dh.shape()[1], H = dh.shape()[2];
  simgpu::KernelDesc d;
  d.name = "bert.scatter_cls";
  d.bytes_read = static_cast<int64_t>(dcls.bytes());
  d.bytes_written = static_cast<int64_t>(dh.bytes());
  d.mem_efficiency = 0.6;
  ctx.kern.dev.launch(d, [&, B, L, H] {
    LS2_DISPATCH_FLOAT(dh.dtype(), T, {
      const T* cp = dcls.data<T>();
      T* hp = dh.data<T>();
      std::memset(dh.raw(), 0, dh.bytes());
      for (int64_t b = 0; b < B; ++b)
        for (int64_t j = 0; j < H; ++j) hp[b * L * H + j] = cp[b * H + j];
    });
  });
}

}  // namespace

BertConfig BertConfig::base() { return BertConfig{}; }

BertConfig BertConfig::large() {
  BertConfig c;
  c.hidden = 1024;
  c.heads = 16;
  c.ffn_dim = 4096;
  c.layers = 24;
  return c;
}

int64_t BertConfig::parameter_count() const {
  const int64_t h = hidden, f = ffn_dim;
  const int64_t block = 3 * h * h + 3 * h + h * h + h + 4 * h + 2 * h * f + f + h;
  return layers * block + vocab * h + 2 * h + num_classes * h + num_classes;
}

Bert::Bert(BertConfig cfg, layers::System system, DType dtype, uint64_t seed,
           BufferAllocator* param_alloc)
    : cfg_(cfg) {
  if (cfg.tp.enabled()) {
    LS2_CHECK(system == layers::System::kLightSeq2)
        << "tensor parallelism is implemented for the LightSeq2 system";
    if (cfg.tp.simulate_peers) tp_ = std::make_unique<dist::TpRuntime>(cfg.tp.size);
  }
  const layers::TpDecl tp_decl{cfg.tp.enabled() ? cfg.tp.size : 1,
                               tp_ ? &tp_->peers() : nullptr};

  layers::EmbeddingConfig ecfg;
  ecfg.vocab = cfg.vocab;
  ecfg.hidden = cfg.hidden;
  ecfg.max_len = cfg.max_len;
  ecfg.dropout = cfg.dropout;
  ecfg.pad_id = cfg.pad_id;
  ecfg.tp = tp_decl;
  int mark = params_.size();
  embed_ = std::make_unique<layers::EmbeddingLayer>(params_, "bert.embed", ecfg);
  embed_range_ = params_.range_since(mark);

  layers::TransformerLayerConfig lcfg;
  lcfg.hidden = cfg.hidden;
  lcfg.heads = cfg.heads;
  lcfg.ffn_dim = cfg.ffn_dim;
  lcfg.dropout = cfg.dropout;
  lcfg.attn_dropout = cfg.dropout;
  lcfg.act_dropout = cfg.dropout;
  lcfg.activation = layers::Activation::kGelu;
  lcfg.tp = tp_decl;  // the two-way classifier head stays replicated
  for (int64_t i = 0; i < cfg.layers; ++i) {
    mark = params_.size();
    blocks_.push_back(std::make_unique<layers::TransformerEncoderLayer>(
        params_, "bert.blocks." + std::to_string(i), lcfg));
    block_ranges_.push_back(params_.range_since(mark));
  }
  mark = params_.size();
  ln_gamma_ = params_.declare("bert.ln_f.gamma", Shape{cfg.hidden}, layers::Init::kOne);
  ln_beta_ = params_.declare("bert.ln_f.beta", Shape{cfg.hidden}, layers::Init::kZero);
  ln_range_ = params_.range_since(mark);
  mark = params_.size();
  cls_w_ = params_.declare("bert.classifier.weight", Shape{cfg.num_classes, cfg.hidden},
                           layers::Init::kXavier);
  cls_b_ = params_.declare("bert.classifier.bias", Shape{cfg.num_classes},
                           layers::Init::kZero);
  head_range_ = params_.range_since(mark);

  params_.materialize(dtype, system == layers::System::kLightSeq2, Rng(seed), param_alloc);
  if (tp_) tp_->materialize(dtype, seed);
}

const layers::PpPlan& Bert::pp_configure(int pp) {
  LS2_CHECK(pp >= 1 && pp <= cfg_.layers)
      << "pp " << pp << " needs at least one block per stage (layers=" << cfg_.layers << ")";
  pp_plan_ = layers::PpPlan{};
  pp_plan_.stages = pp;
  pp_plan_.stage_params.assign(static_cast<size_t>(pp), {});
  pp_plan_.stage_params[0].push_back(embed_range_);
  block_stage_.assign(static_cast<size_t>(cfg_.layers), 0);
  for (int64_t i = 0; i < cfg_.layers; ++i) {
    const int s = layers::block_stage(i, cfg_.layers, pp);
    block_stage_[static_cast<size_t>(i)] = s;
    pp_plan_.stage_params[static_cast<size_t>(s)].push_back(
        block_ranges_[static_cast<size_t>(i)]);
  }
  pp_plan_.stage_params[static_cast<size_t>(pp - 1)].push_back(ln_range_);
  pp_plan_.stage_params[static_cast<size_t>(pp - 1)].push_back(head_range_);
  return pp_plan_;
}

ClsResult Bert::forward(layers::LayerContext& ctx, const ClsBatch& batch) {
  // Peer mirror of the zeroed-at-step-start contract; under microbatched
  // execution peers accumulate across microbatches like the device grads.
  if (tp_ && ctx.kern.microbatch == 0) tp_->zero_grads();
  const int64_t B = batch.ids.shape()[0], L = batch.ids.shape()[1];
  const DType dt = params_.dtype();
  const int64_t padded = layers::pad_length(ctx.policy, L);
  LS2_CHECK(padded == L || ctx.policy.seq_multiple > 1);

  ctx.pp_enter(0, /*forward=*/true, 0);
  Tensor h = embed_->forward(ctx, batch.ids);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (!block_stage_.empty() && i > 0 && block_stage_[i] != block_stage_[i - 1]) {
      ctx.pp_enter(block_stage_[i], true, static_cast<int64_t>(h.bytes()));
    }
    h = blocks_[i]->forward(ctx, h, &batch.lens);
  }
  Tensor out = ctx.alloc({B, L, cfg_.hidden}, dt);
  Tensor mean = ctx.alloc({B * L}, DType::kF32);
  Tensor rstd = ctx.alloc({B * L}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, h, params_.value(ln_gamma_),
                     params_.value(ln_beta_), out, mean, rstd);

  Tensor cls = ctx.alloc({B, cfg_.hidden}, dt);
  gather_cls(ctx, out, cls);

  Tensor logits_nb = ctx.alloc({B, cfg_.num_classes}, dt);
  layers::linear_fw(ctx, cls, params_.value(cls_w_), logits_nb, "bert.classifier");
  Tensor logits = ctx.alloc({B, cfg_.num_classes}, dt);
  kern::baseline::add_bias(ctx.kern, logits_nb, params_.value(cls_b_), logits);

  Tensor loss = ctx.alloc({B}, DType::kF32);
  Tensor stats = ctx.alloc({B, 2}, DType::kF32);
  kern::ls_cross_entropy_fw(ctx.kern, ctx.policy.criterion, logits, batch.labels, loss,
                            stats, /*alpha=*/0.0f, /*ignore_index=*/-1);

  // Under microbatched execution (pipeline parallelism) the carries
  // continue the double loss sum and the correct count across slices, and
  // the mean divides by the GLOBAL batch size — bitwise the full-batch run.
  const int64_t denom = ctx.pp_denominator > 0 ? ctx.pp_denominator : B;
  ClsResult res;
  res.total = denom;
  if (ctx.device().mode() == simgpu::ExecMode::kExecute) {
    double sum = ctx.pp_loss_carry ? *ctx.pp_loss_carry : 0.0;
    for (float v : loss.to_vector()) sum += v;
    if (ctx.pp_loss_carry) *ctx.pp_loss_carry = sum;
    res.loss = static_cast<float>(sum / static_cast<double>(denom));
    double correct = ctx.pp_metric_carry ? *ctx.pp_metric_carry : 0.0;
    const auto lg = logits.to_vector();
    const auto lb = batch.labels.to_vector();
    for (int64_t b = 0; b < B; ++b) {
      int best = 0;
      for (int64_t c = 1; c < cfg_.num_classes; ++c) {
        if (lg[b * cfg_.num_classes + c] > lg[b * cfg_.num_classes + best])
          best = static_cast<int>(c);
      }
      if (best == static_cast<int>(lb[static_cast<size_t>(b)])) correct += 1.0;
    }
    if (ctx.pp_metric_carry) *ctx.pp_metric_carry = correct;
    res.correct = static_cast<int64_t>(correct);
  }
  saved_ = Saved{h, out, mean, rstd, cls, logits, stats, batch.labels, B, L};
  return res;
}

void Bert::backward(layers::LayerContext& ctx) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const DType dt = params_.dtype();

  const int last_stage = pp_plan_.stages - 1;
  ctx.pp_enter(last_stage, /*forward=*/false, 0);
  // Mean-over-batch gradient: the denominator is the GLOBAL batch size
  // under microbatched execution, this slice's otherwise.
  const int64_t denom = ctx.pp_denominator > 0 ? ctx.pp_denominator : s.B;
  Tensor dlogits = ctx.alloc({s.B, cfg_.num_classes}, dt);
  kern::ls_cross_entropy_bw(ctx.kern, ctx.policy.criterion, s.logits, s.labels, s.stats,
                            dlogits, 0.0f,
                            ctx.loss_scale / static_cast<float>(denom), -1);
  kern::bias_grad(ctx.kern, dlogits, params_.grad(cls_b_));

  Tensor dcls = ctx.alloc({s.B, cfg_.hidden}, dt);
  layers::linear_bw(ctx, dlogits, s.cls, params_.value(cls_w_), dcls,
                    params_.grad(cls_w_), "bert.classifier");
  params_.notify_grad_ready(head_range_);

  Tensor d_out = ctx.alloc({s.B, s.L, cfg_.hidden}, dt);
  scatter_cls(ctx, dcls, d_out);

  Tensor dh = ctx.alloc({s.B, s.L, cfg_.hidden}, dt);
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, d_out, s.stack_out,
                     params_.value(ln_gamma_), s.mean, s.rstd, dh, params_.grad(ln_gamma_),
                     params_.grad(ln_beta_));
  params_.notify_grad_ready(ln_range_);
  int stage = last_stage;
  for (int64_t i = cfg_.layers - 1; i >= 0; --i) {
    if (!block_stage_.empty() && block_stage_[static_cast<size_t>(i)] != stage) {
      stage = block_stage_[static_cast<size_t>(i)];
      ctx.pp_enter(stage, false, static_cast<int64_t>(dh.bytes()));
    }
    dh = blocks_[static_cast<size_t>(i)]->backward(ctx, dh);
    params_.notify_grad_ready(block_ranges_[static_cast<size_t>(i)]);
  }
  embed_->backward(ctx, dh);
  params_.notify_grad_ready(embed_range_);
  release();
}

void Bert::release() {
  saved_.reset();
  embed_->release();
  for (auto& b : blocks_) b->release();
}

}  // namespace ls2::models
