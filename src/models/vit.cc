#include "models/vit.h"

#include "common/parallel.h"
#include "kernels/criterion.h"
#include "kernels/elementwise.h"
#include "kernels/layernorm.h"
#include "layers/linear.h"

namespace ls2::models {

namespace {

// y[B, P+1, H] = Dropout(concat(cls+pos0, proj+b+pos[1..])) — fused for
// LightSeq2, four framework launches otherwise. The math runs once.
template <typename T>
void vit_embed_body(const Tensor& proj, const Tensor& bias, const Tensor& cls_token,
                    const Tensor& pos, const Tensor& y, const Tensor& mask, float p,
                    const Rng& rng, uint64_t stream, uint64_t index_offset) {
  const int64_t B = proj.shape()[0], P = proj.shape()[1], H = proj.shape()[2];
  const int64_t S = P + 1;
  const T* pp = proj.data<T>();
  const T* bp = bias.data<T>();
  const T* cp = cls_token.data<T>();
  const T* ep = pos.data<T>();
  T* yp = y.data<T>();
  uint8_t* mp = mask.data<uint8_t>();
  const float keep_scale = 1.0f / (1.0f - p);
  parallel_for(0, B * S, [&](int64_t bs) {
    const int64_t b = bs / S, s = bs % S;
    T* yrow = yp + bs * H;
    uint8_t* mrow = mp + bs * H;
    for (int64_t j = 0; j < H; ++j) {
      float v;
      if (s == 0) {
        v = static_cast<float>(cp[j]) + static_cast<float>(ep[j]);
      } else {
        v = static_cast<float>(pp[(b * P + s - 1) * H + j]) + static_cast<float>(bp[j]) +
            static_cast<float>(ep[s * H + j]);
      }
      const uint8_t keep =
          rng.uniform(stream, index_offset + static_cast<uint64_t>(bs * H + j)) >= p ? 1 : 0;
      mrow[j] = keep;
      yrow[j] = T(keep ? v * keep_scale : 0.0f);
    }
  });
}

template <typename T>
void vit_embed_bw_body(const Tensor& dy, const Tensor& mask, float p, const Tensor& dproj,
                       const Tensor& dbias, const Tensor& dcls, const Tensor& dpos) {
  const int64_t B = dproj.shape()[0], P = dproj.shape()[1], H = dproj.shape()[2];
  const int64_t S = P + 1;
  const T* dyp = dy.data<T>();
  const uint8_t* mp = mask.data<uint8_t>();
  T* dpp = dproj.data<T>();
  T* dbp = dbias.data<T>();
  T* dcp = dcls.data<T>();
  T* dep = dpos.data<T>();
  const float keep_scale = 1.0f / (1.0f - p);
  // Param grads accumulate in FP32 FROM the destination, ascending batch
  // rows: microbatch slices (pipeline parallelism) continue the exact
  // chain the full batch runs, so the result is bitwise identical. dproj
  // is an activation grad — each microbatch writes only its own rows.
  parallel_for_chunks(0, H, 32, [&](int64_t j_lo, int64_t j_hi) {
    for (int64_t j = j_lo; j < j_hi; ++j) {
      float db = static_cast<float>(dbp[j]), dc = static_cast<float>(dcp[j]);
      std::vector<float> dpos_acc(static_cast<size_t>(S));
      for (int64_t s = 0; s < S; ++s)
        dpos_acc[static_cast<size_t>(s)] = static_cast<float>(dep[s * H + j]);
      for (int64_t b = 0; b < B; ++b) {
        for (int64_t s = 0; s < S; ++s) {
          const int64_t idx = (b * S + s) * H + j;
          const float g = mp[idx] ? static_cast<float>(dyp[idx]) * keep_scale : 0.0f;
          dpos_acc[static_cast<size_t>(s)] += g;
          if (s == 0) {
            dc += g;
          } else {
            db += g;
            dpp[(b * P + s - 1) * H + j] = T(g);
          }
        }
      }
      dbp[j] = T(db);
      dcp[j] = T(dc);
      for (int64_t s = 0; s < S; ++s)
        dep[s * H + j] = T(dpos_acc[static_cast<size_t>(s)]);
    }
  });
}

}  // namespace

VitConfig VitConfig::b32() { return VitConfig{}; }

VitConfig VitConfig::l32() {
  VitConfig c;
  c.hidden = 1024;
  c.heads = 16;
  c.ffn_dim = 4096;
  c.layers = 24;
  return c;
}

int64_t VitConfig::parameter_count() const {
  const int64_t h = hidden, f = ffn_dim;
  const int64_t block = 3 * h * h + 3 * h + h * h + h + 4 * h + 2 * h * f + f + h;
  return layers * block + patch_dim() * h + h + h + seq_len() * h + 2 * h +
         num_classes * h + num_classes;
}

Vit::Vit(VitConfig cfg, layers::System system, DType dtype, uint64_t seed,
         BufferAllocator* param_alloc)
    : cfg_(cfg) {
  if (cfg.tp.enabled()) {
    LS2_CHECK(system == layers::System::kLightSeq2)
        << "tensor parallelism is implemented for the LightSeq2 system";
    if (cfg.tp.simulate_peers) tp_ = std::make_unique<dist::TpRuntime>(cfg.tp.size);
  }
  const layers::TpDecl tp_decl{cfg.tp.enabled() ? cfg.tp.size : 1,
                               tp_ ? &tp_->peers() : nullptr};

  int mark = params_.size();
  patch_w_ = params_.declare("vit.patch_proj.weight", Shape{cfg.hidden, cfg.patch_dim()},
                             layers::Init::kXavier);
  patch_b_ = params_.declare("vit.patch_proj.bias", Shape{cfg.hidden}, layers::Init::kZero);
  cls_token_ = params_.declare("vit.cls_token", Shape{cfg.hidden}, layers::Init::kNormal);
  pos_embed_ = params_.declare("vit.pos_embed", Shape{cfg.seq_len(), cfg.hidden},
                               layers::Init::kNormal);
  embed_range_ = params_.range_since(mark);

  layers::TransformerLayerConfig lcfg;
  lcfg.hidden = cfg.hidden;
  lcfg.heads = cfg.heads;
  lcfg.ffn_dim = cfg.ffn_dim;
  lcfg.dropout = cfg.dropout;
  lcfg.attn_dropout = cfg.dropout;
  lcfg.act_dropout = cfg.dropout;
  lcfg.activation = layers::Activation::kGelu;
  // Blocks shard; the patch projection, [CLS]/positional embeddings and the
  // small classification head stay replicated.
  lcfg.tp = tp_decl;
  for (int64_t i = 0; i < cfg.layers; ++i) {
    mark = params_.size();
    blocks_.push_back(std::make_unique<layers::TransformerEncoderLayer>(
        params_, "vit.blocks." + std::to_string(i), lcfg));
    block_ranges_.push_back(params_.range_since(mark));
  }
  mark = params_.size();
  ln_gamma_ = params_.declare("vit.ln_f.gamma", Shape{cfg.hidden}, layers::Init::kOne);
  ln_beta_ = params_.declare("vit.ln_f.beta", Shape{cfg.hidden}, layers::Init::kZero);
  ln_range_ = params_.range_since(mark);
  mark = params_.size();
  head_w_ = params_.declare("vit.head.weight", Shape{cfg.num_classes, cfg.hidden},
                            layers::Init::kXavier);
  head_b_ = params_.declare("vit.head.bias", Shape{cfg.num_classes}, layers::Init::kZero);
  head_range_ = params_.range_since(mark);

  params_.materialize(dtype, system == layers::System::kLightSeq2, Rng(seed), param_alloc);
  if (tp_) tp_->materialize(dtype, seed);
}

const layers::PpPlan& Vit::pp_configure(int pp) {
  LS2_CHECK(pp >= 1 && pp <= cfg_.layers)
      << "pp " << pp << " needs at least one block per stage (layers=" << cfg_.layers << ")";
  pp_plan_ = layers::PpPlan{};
  pp_plan_.stages = pp;
  pp_plan_.stage_params.assign(static_cast<size_t>(pp), {});
  pp_plan_.stage_params[0].push_back(embed_range_);
  block_stage_.assign(static_cast<size_t>(cfg_.layers), 0);
  for (int64_t i = 0; i < cfg_.layers; ++i) {
    const int s = layers::block_stage(i, cfg_.layers, pp);
    block_stage_[static_cast<size_t>(i)] = s;
    pp_plan_.stage_params[static_cast<size_t>(s)].push_back(
        block_ranges_[static_cast<size_t>(i)]);
  }
  pp_plan_.stage_params[static_cast<size_t>(pp - 1)].push_back(ln_range_);
  pp_plan_.stage_params[static_cast<size_t>(pp - 1)].push_back(head_range_);
  return pp_plan_;
}

ClsResultVit Vit::forward(layers::LayerContext& ctx, const ImageBatch& batch) {
  // Peer mirror of the zeroed-at-step-start contract; under microbatched
  // execution peers accumulate across microbatches like the device grads.
  if (tp_ && ctx.kern.microbatch == 0) tp_->zero_grads();
  const int64_t B = batch.patches.shape()[0], P = cfg_.patches(), S = cfg_.seq_len();
  const DType dt = params_.dtype();
  ctx.pp_enter(0, /*forward=*/true, 0);
  LS2_CHECK_EQ(batch.patches.shape()[1], P);
  LS2_CHECK_EQ(batch.patches.shape()[2], cfg_.patch_dim());
  LS2_CHECK(batch.patches.dtype() == dt) << "patch dtype must match model dtype";

  Tensor proj = ctx.alloc({B, P, cfg_.hidden}, dt);
  layers::linear_fw(ctx, batch.patches, params_.value(patch_w_), proj, "vit.patch_proj");

  Tensor h = ctx.alloc({B, S, cfg_.hidden}, dt);
  Tensor mask = ctx.alloc({B, S, cfg_.hidden}, DType::kU8);
  const uint64_t stream = ctx.kern.next_dropout_stream();
  const int launches = ctx.policy.fused_elementwise ? 1 : 4;  // bias/concat/pos/dropout
  for (int i = 0; i < launches; ++i) {
    const bool last = i + 1 == launches;
    simgpu::KernelDesc d;
    d.name = ctx.policy.fused_elementwise ? "ls2.vit_embed_fw" : "torch.vit_embed_stage";
    d.bytes_read = static_cast<int64_t>(proj.bytes());
    d.bytes_written = static_cast<int64_t>(h.bytes()) / launches +
                      (last ? static_cast<int64_t>(mask.bytes()) : 0);
    d.mem_efficiency = ctx.policy.fused_elementwise ? 0.85 : 0.70;
    const uint64_t mb_off =
        ctx.kern.microbatch * static_cast<uint64_t>(B * S * cfg_.hidden);
    ctx.kern.dev.launch(d, last ? std::function<void()>([&, stream, mb_off] {
      LS2_DISPATCH_FLOAT(dt, T,
                         vit_embed_body<T>(proj, params_.value(patch_b_),
                                           params_.value(cls_token_),
                                           params_.value(pos_embed_), h, mask,
                                           cfg_.dropout, ctx.kern.rng, stream, mb_off));
    })
                                 : std::function<void()>(nullptr));
  }

  Tensor x = h;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (!block_stage_.empty() && i > 0 && block_stage_[i] != block_stage_[i - 1]) {
      ctx.pp_enter(block_stage_[i], true, static_cast<int64_t>(x.bytes()));
    }
    x = blocks_[i]->forward(ctx, x, /*key_lens=*/nullptr);
  }
  Tensor out = ctx.alloc({B, S, cfg_.hidden}, dt);
  Tensor mean = ctx.alloc({B * S}, DType::kF32);
  Tensor rstd = ctx.alloc({B * S}, DType::kF32);
  kern::layernorm_fw(ctx.kern, ctx.policy.layernorm, x, params_.value(ln_gamma_),
                     params_.value(ln_beta_), out, mean, rstd);

  // Classification head on [CLS].
  Tensor cls = ctx.alloc({B, cfg_.hidden}, dt);
  {
    simgpu::KernelDesc d;
    d.name = "vit.gather_cls";
    d.bytes_read = static_cast<int64_t>(cls.bytes());
    d.bytes_written = static_cast<int64_t>(cls.bytes());
    d.mem_efficiency = 0.6;
    ctx.kern.dev.launch(d, [&, B, S] {
      LS2_DISPATCH_FLOAT(dt, T, {
        const T* op = out.data<T>();
        T* cp = cls.data<T>();
        for (int64_t b = 0; b < B; ++b)
          for (int64_t j = 0; j < cfg_.hidden; ++j)
            cp[b * cfg_.hidden + j] = op[b * S * cfg_.hidden + j];
      });
    });
  }
  Tensor logits_nb = ctx.alloc({B, cfg_.num_classes}, dt);
  layers::linear_fw(ctx, cls, params_.value(head_w_), logits_nb, "vit.head");
  Tensor logits = ctx.alloc({B, cfg_.num_classes}, dt);
  kern::baseline::add_bias(ctx.kern, logits_nb, params_.value(head_b_), logits);

  Tensor loss = ctx.alloc({B}, DType::kF32);
  Tensor stats = ctx.alloc({B, 2}, DType::kF32);
  kern::ls_cross_entropy_fw(ctx.kern, ctx.policy.criterion, logits, batch.labels, loss,
                            stats, 0.0f, -1);

  // Under microbatched execution (pipeline parallelism) the carries
  // continue the double loss sum and the correct count across slices, and
  // the mean divides by the GLOBAL batch size — bitwise the full-batch run.
  const int64_t denom = ctx.pp_denominator > 0 ? ctx.pp_denominator : B;
  ClsResultVit res;
  res.total = denom;
  if (ctx.device().mode() == simgpu::ExecMode::kExecute) {
    double sum = ctx.pp_loss_carry ? *ctx.pp_loss_carry : 0.0;
    for (float v : loss.to_vector()) sum += v;
    if (ctx.pp_loss_carry) *ctx.pp_loss_carry = sum;
    res.loss = static_cast<float>(sum / static_cast<double>(denom));
    double correct = ctx.pp_metric_carry ? *ctx.pp_metric_carry : 0.0;
    const auto lg = logits.to_vector();
    const auto lb = batch.labels.to_vector();
    for (int64_t b = 0; b < B; ++b) {
      int best = 0;
      for (int64_t c = 1; c < cfg_.num_classes; ++c) {
        if (lg[b * cfg_.num_classes + c] > lg[b * cfg_.num_classes + best])
          best = static_cast<int>(c);
      }
      if (best == static_cast<int>(lb[static_cast<size_t>(b)])) correct += 1.0;
    }
    if (ctx.pp_metric_carry) *ctx.pp_metric_carry = correct;
    res.correct = static_cast<int64_t>(correct);
  }
  saved_ = Saved{batch.patches, proj, mask, x, out, mean, rstd, cls, logits, stats,
                 batch.labels, B};
  return res;
}

void Vit::backward(layers::LayerContext& ctx) {
  LS2_CHECK(saved_.has_value()) << "backward without forward";
  Saved& s = *saved_;
  const int64_t B = s.B, P = cfg_.patches(), S = cfg_.seq_len();
  const DType dt = params_.dtype();

  const int last_stage = pp_plan_.stages - 1;
  ctx.pp_enter(last_stage, /*forward=*/false, 0);
  // Mean-over-batch gradient: the denominator is the GLOBAL batch size
  // under microbatched execution, this slice's otherwise.
  const int64_t denom = ctx.pp_denominator > 0 ? ctx.pp_denominator : B;
  Tensor dlogits = ctx.alloc({B, cfg_.num_classes}, dt);
  kern::ls_cross_entropy_bw(ctx.kern, ctx.policy.criterion, s.logits, s.labels, s.stats,
                            dlogits, 0.0f, ctx.loss_scale / static_cast<float>(denom), -1);
  kern::bias_grad(ctx.kern, dlogits, params_.grad(head_b_));
  Tensor dcls = ctx.alloc({B, cfg_.hidden}, dt);
  layers::linear_bw(ctx, dlogits, s.cls, params_.value(head_w_), dcls,
                    params_.grad(head_w_), "vit.head");
  params_.notify_grad_ready(head_range_);

  Tensor d_out = ctx.alloc({B, S, cfg_.hidden}, dt);
  {
    simgpu::KernelDesc d;
    d.name = "vit.scatter_cls";
    d.bytes_read = static_cast<int64_t>(dcls.bytes());
    d.bytes_written = static_cast<int64_t>(d_out.bytes());
    d.mem_efficiency = 0.6;
    ctx.kern.dev.launch(d, [&, B, S] {
      LS2_DISPATCH_FLOAT(dt, T, {
        std::memset(d_out.raw(), 0, d_out.bytes());
        const T* cp = dcls.data<T>();
        T* op = d_out.data<T>();
        for (int64_t b = 0; b < B; ++b)
          for (int64_t j = 0; j < cfg_.hidden; ++j)
            op[b * S * cfg_.hidden + j] = cp[b * cfg_.hidden + j];
      });
    });
  }

  Tensor dh = ctx.alloc({B, S, cfg_.hidden}, dt);
  kern::layernorm_bw(ctx.kern, ctx.policy.layernorm, d_out, s.stack_out,
                     params_.value(ln_gamma_), s.mean, s.rstd, dh, params_.grad(ln_gamma_),
                     params_.grad(ln_beta_));
  params_.notify_grad_ready(ln_range_);
  int stage = last_stage;
  for (int64_t i = cfg_.layers - 1; i >= 0; --i) {
    if (!block_stage_.empty() && block_stage_[static_cast<size_t>(i)] != stage) {
      stage = block_stage_[static_cast<size_t>(i)];
      ctx.pp_enter(stage, false, static_cast<int64_t>(dh.bytes()));
    }
    dh = blocks_[static_cast<size_t>(i)]->backward(ctx, dh);
    params_.notify_grad_ready(block_ranges_[static_cast<size_t>(i)]);
  }

  // Embedding backward: dropout + split into dproj/dbias/dcls_token/dpos.
  Tensor dproj = ctx.alloc({B, P, cfg_.hidden}, dt);
  const int launches = ctx.policy.fused_elementwise ? 1 : 4;
  for (int i = 0; i < launches; ++i) {
    const bool last = i + 1 == launches;
    simgpu::KernelDesc d;
    d.name = ctx.policy.fused_elementwise ? "ls2.vit_embed_bw" : "torch.vit_embed_bw_stage";
    d.bytes_read = static_cast<int64_t>(dh.bytes()) / launches;
    d.bytes_written = static_cast<int64_t>(dproj.bytes()) / launches;
    d.mem_efficiency = ctx.policy.fused_elementwise ? 0.85 : 0.70;
    ctx.kern.dev.launch(d, last ? std::function<void()>([&] {
      LS2_DISPATCH_FLOAT(dt, T,
                         vit_embed_bw_body<T>(dh, s.embed_mask, cfg_.dropout, dproj,
                                              params_.grad(patch_b_),
                                              params_.grad(cls_token_),
                                              params_.grad(pos_embed_)));
    })
                                 : std::function<void()>(nullptr));
  }
  layers::linear_bw(ctx, dproj, s.patches_in, params_.value(patch_w_), Tensor{},
                    params_.grad(patch_w_), "vit.patch_proj");
  params_.notify_grad_ready(embed_range_);
  release();
}

void Vit::release() {
  saved_.reset();
  for (auto& b : blocks_) b->release();
}

}  // namespace ls2::models
