// Checkpoint save/load and the model translator.
//
// Parameters serialise as FP32 regardless of training dtype, so a model
// trained under any System (including the FP16 LightSeq2 workspace) can be
// reloaded under any other — the paper's "the original model and LightSeq2
// model can be easily converted to each other" (§V-B). The translator remaps
// foreign parameter names (a Fairseq-style convention is provided as the
// demo mapping) onto LightSeq2 names at load time.
#pragma once

#include <functional>
#include <string>

#include "layers/params.h"

namespace ls2::models {

/// Write every parameter (name, shape, fp32 data) to `path`.
void save_checkpoint(const layers::ParamRegistry& params, const std::string& path);

/// Load parameters by name; every registry parameter must be present with a
/// matching shape. Extra entries in the file are an error unless
/// `allow_extra` is set.
void load_checkpoint(layers::ParamRegistry& params, const std::string& path,
                     bool allow_extra = false);

/// Name remapper applied to each entry in the file before lookup.
using NameMap = std::function<std::string(const std::string&)>;

/// Load with translation: e.g. a checkpoint written with Fairseq-style names
/// feeds a LightSeq2 model.
void load_checkpoint_translated(layers::ParamRegistry& params, const std::string& path,
                                const NameMap& map, bool allow_extra = false);

/// Demo mapping used by tests/examples: Fairseq's
/// "encoder.layers.N.self_attn_layer_norm.weight" style names -> ours.
std::string fairseq_to_ls2_name(const std::string& name);

}  // namespace ls2::models
