// BERT-style encoder-only classifier for GLUE/MRPC (Table II row 3):
// embedding, pre-LN encoder stack with GELU FFNs, [CLS] pooling, two-way
// classification head.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "dist/tensor_parallel.h"
#include "layers/embedding_layer.h"
#include "layers/encoder_layer.h"
#include "layers/pp.h"

namespace ls2::models {

struct BertConfig {
  int64_t vocab = 30522;
  int64_t hidden = 768;
  int64_t heads = 12;
  int64_t ffn_dim = 3072;
  int64_t layers = 12;
  int64_t max_len = 512;
  int64_t num_classes = 2;
  float dropout = 0.1f;
  int32_t pad_id = 0;
  /// Tensor parallelism (DESIGN §7): shards blocks + the vocab table; the
  /// tiny classifier head stays replicated. Requires kLightSeq2.
  dist::TpConfig tp;

  static BertConfig base();   ///< BERT-Base: 12 layers, 768 hidden
  static BertConfig large();  ///< BERT-Large: 24 layers, 1024 hidden
  int64_t parameter_count() const;
};

struct ClsBatch {
  Tensor ids;     ///< [B, L] i32, [CLS] at position 0
  Tensor lens;    ///< [B] i32
  Tensor labels;  ///< [B] i32
};

struct ClsResult {
  float loss = 0;      ///< mean cross entropy over the batch
  int64_t correct = 0; ///< argmax accuracy numerator
  int64_t total = 0;
};

class Bert {
 public:
  Bert(BertConfig cfg, layers::System system, DType dtype, uint64_t seed,
       BufferAllocator* param_alloc = nullptr);

  ClsResult forward(layers::LayerContext& ctx, const ClsBatch& batch);
  void backward(layers::LayerContext& ctx);
  void release();

  layers::ParamRegistry& params() { return params_; }
  const BertConfig& config() const { return cfg_; }

  /// Partition across `pp` pipeline stages (DESIGN.md §9): embedding with
  /// the first blocks on stage 0, final LayerNorm + classifier head with
  /// the last blocks on stage pp-1.
  const layers::PpPlan& pp_configure(int pp);
  const layers::PpPlan& pp_plan() const { return pp_plan_; }

  /// TP epilogue (no-op when TP is off): peer-shard update after the rank-0
  /// trainer step — see core::train_step.
  void tp_finish_step(const optim::Optimizer& trainer) {
    if (tp_) tp_->finish_step(trainer);
  }
  layers::ParamRegistry* tp_peers() { return tp_ ? &tp_->peers() : nullptr; }

 private:
  BertConfig cfg_;
  layers::ParamRegistry params_;
  std::unique_ptr<dist::TpRuntime> tp_;
  std::unique_ptr<layers::EmbeddingLayer> embed_;
  std::vector<std::unique_ptr<layers::TransformerEncoderLayer>> blocks_;
  layers::ParamRef ln_gamma_, ln_beta_, cls_w_, cls_b_;

  // Declaration ranges for the gradient bucketer (src/dist/bucket.h).
  layers::ParamRange embed_range_, ln_range_, head_range_;
  std::vector<layers::ParamRange> block_ranges_;
  layers::PpPlan pp_plan_;
  std::vector<int> block_stage_;  ///< stage of each block (all 0 without PP)

  struct Saved {
    Tensor stack_out, out, mean, rstd;  // final LN
    Tensor cls, logits, stats, labels;  // pooled [CLS] and classifier head
    int64_t B = 0, L = 0;
  };
  std::optional<Saved> saved_;
};

}  // namespace ls2::models
