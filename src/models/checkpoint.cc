#include "models/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

#include "common/check.h"

namespace ls2::models {

namespace {

constexpr uint32_t kMagic = 0x4c533243;  // "LS2C"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_u32(std::FILE* f, uint32_t v) {
  LS2_CHECK_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
}
void write_i64(std::FILE* f, int64_t v) {
  LS2_CHECK_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
}
uint32_t read_u32(std::FILE* f) {
  uint32_t v = 0;
  LS2_CHECK_EQ(std::fread(&v, sizeof(v), 1, f), 1u) << "truncated checkpoint";
  return v;
}
int64_t read_i64(std::FILE* f) {
  int64_t v = 0;
  LS2_CHECK_EQ(std::fread(&v, sizeof(v), 1, f), 1u) << "truncated checkpoint";
  return v;
}

}  // namespace

void save_checkpoint(const layers::ParamRegistry& params, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  LS2_CHECK(f != nullptr) << "cannot open '" << path << "' for writing";
  write_u32(f.get(), kMagic);
  write_u32(f.get(), static_cast<uint32_t>(params.size()));
  params.for_each([&](const std::string& name, Tensor value, Tensor) {
    write_u32(f.get(), static_cast<uint32_t>(name.size()));
    LS2_CHECK_EQ(std::fwrite(name.data(), 1, name.size(), f.get()), name.size());
    const auto& dims = value.shape().dims();
    write_u32(f.get(), static_cast<uint32_t>(dims.size()));
    for (int64_t d : dims) write_i64(f.get(), d);
    const std::vector<float> data = value.to_vector();
    LS2_CHECK_EQ(std::fwrite(data.data(), sizeof(float), data.size(), f.get()), data.size());
  });
}

void load_checkpoint_translated(layers::ParamRegistry& params, const std::string& path,
                                const NameMap& map, bool allow_extra) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  LS2_CHECK(f != nullptr) << "cannot open '" << path << "'";
  LS2_CHECK_EQ(read_u32(f.get()), kMagic) << "not an LS2 checkpoint";
  const uint32_t count = read_u32(f.get());

  std::map<std::string, int> by_name;
  for (int i = 0; i < params.size(); ++i) by_name[params.name({i})] = i;
  std::vector<bool> seen(static_cast<size_t>(params.size()), false);

  for (uint32_t e = 0; e < count; ++e) {
    const uint32_t name_len = read_u32(f.get());
    std::string name(name_len, '\0');
    LS2_CHECK_EQ(std::fread(name.data(), 1, name_len, f.get()), name_len);
    const uint32_t rank = read_u32(f.get());
    std::vector<int64_t> dims(rank);
    int64_t numel = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      dims[d] = read_i64(f.get());
      numel *= dims[d];
    }
    std::vector<float> data(static_cast<size_t>(numel));
    LS2_CHECK_EQ(std::fread(data.data(), sizeof(float), data.size(), f.get()), data.size());

    const std::string mapped = map ? map(name) : name;
    auto it = by_name.find(mapped);
    if (it == by_name.end()) {
      LS2_CHECK(allow_extra) << "checkpoint entry '" << name << "' (mapped to '" << mapped
                             << "') has no matching parameter";
      continue;
    }
    layers::ParamRef ref{it->second};
    LS2_CHECK(params.shape(ref) == Shape(dims))
        << "shape mismatch for '" << mapped << "': file " << Shape(dims).str() << " vs model "
        << params.shape(ref).str();
    params.value(ref).copy_from(data);
    seen[static_cast<size_t>(it->second)] = true;
  }
  for (int i = 0; i < params.size(); ++i) {
    LS2_CHECK(seen[static_cast<size_t>(i)])
        << "parameter '" << params.name({i}) << "' missing from checkpoint";
  }
}

void load_checkpoint(layers::ParamRegistry& params, const std::string& path,
                     bool allow_extra) {
  load_checkpoint_translated(params, path, nullptr, allow_extra);
}

std::string fairseq_to_ls2_name(const std::string& name) {
  // Fairseq convention -> ours, e.g.
  //   encoder.layers.0.self_attn_layer_norm.weight -> encoder.layers.0.self_attn.ln.gamma
  //   encoder.layers.0.fc1.weight                  -> encoder.layers.0.ffn.fc1.weight
  std::string out = name;
  auto replace_all = [&](const std::string& from, const std::string& to) {
    size_t pos = 0;
    while ((pos = out.find(from, pos)) != std::string::npos) {
      out.replace(pos, from.size(), to);
      pos += to.size();
    }
  };
  replace_all("self_attn_layer_norm.weight", "self_attn.ln.gamma");
  replace_all("self_attn_layer_norm.bias", "self_attn.ln.beta");
  replace_all("encoder_attn_layer_norm.weight", "cross_attn.ln.gamma");
  replace_all("encoder_attn_layer_norm.bias", "cross_attn.ln.beta");
  replace_all("final_layer_norm.weight", "ffn.ln.gamma");
  replace_all("final_layer_norm.bias", "ffn.ln.beta");
  replace_all("encoder_attn.", "cross_attn.");
  replace_all(".fc1.", ".ffn.fc1.");
  replace_all(".fc2.", ".ffn.fc2.");
  replace_all("embed_tokens.weight", "embed.token_embedding");
  return out;
}

}  // namespace ls2::models
