// Full encoder-decoder Transformer for machine translation (Fig. 2) —
// embedding, encoder stack, decoder stack with layer-batched cross
// attention (Fig. 5b), criterion with tied output projection.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/tensor_parallel.h"
#include "infer/kv_cache.h"
#include "layers/criterion_layer.h"
#include "layers/decoder_layer.h"
#include "layers/embedding_layer.h"
#include "layers/encoder_layer.h"
#include "layers/pp.h"

namespace ls2::models {

struct TransformerConfig {
  int64_t vocab = 32768;
  int64_t hidden = 512;
  int64_t heads = 8;
  int64_t ffn_dim = 2048;
  int64_t encoder_layers = 6;
  int64_t decoder_layers = 6;
  int64_t max_len = 1024;
  float dropout = 0.1f;
  float attn_dropout = 0.1f;
  float act_dropout = 0.1f;
  float label_smoothing = 0.1f;
  int32_t pad_id = 0;
  bool tied_embeddings = true;  ///< share src/tgt tables and output projection
  /// Tensor parallelism (DESIGN §7): shards attention by heads, FFN by
  /// ffn_dim, the tied table + criterion logits by vocab, and the
  /// layer-batched cross-K/V projection by heads. Requires kLightSeq2 and
  /// heads/ffn_dim/vocab divisible by tp.size.
  dist::TpConfig tp;

  /// Transformer-Base (512d, 8 heads) with e encoder / d decoder layers.
  static TransformerConfig base(int64_t e = 6, int64_t d = 6);
  /// Transformer-Big (1024d, 16 heads).
  static TransformerConfig big(int64_t e = 6, int64_t d = 6);

  layers::TransformerLayerConfig layer_config() const;
  int64_t parameter_count() const;  ///< analytic, before materialisation
};

/// One training batch of padded token matrices.
struct MtBatch {
  Tensor src_ids;   ///< [B, Ls] i32
  Tensor tgt_in;    ///< [B, Lt] i32, shifted-right target
  Tensor tgt_out;   ///< [B, Lt] i32, gold next tokens
  Tensor src_lens;  ///< [B] i32
  Tensor tgt_lens;  ///< [B] i32
  int64_t tokens = 0;  ///< non-pad target tokens
};

class Transformer {
 public:
  Transformer(TransformerConfig cfg, layers::System system, DType dtype, uint64_t seed,
              BufferAllocator* param_alloc = nullptr);

  layers::CriterionResult forward(layers::LayerContext& ctx, const MtBatch& batch);
  void backward(layers::LayerContext& ctx);
  void release();

  // --- serving (inference-only: no dropout, nothing saved) ---
  //
  // Translation serving takes one allocated SequenceHandle per request:
  // encode() runs the source batch once and installs the per-lane cross K/V
  // — the layer-batched projection computed ONCE per request, reused by
  // every decode step — then prefill()/decode_step() grow the target side
  // against the paged self-attention cache exactly like the GPT-2 path.

  /// Cache geometry: paged decoder self K/V for `max_len` target tokens
  /// plus contiguous cross K/V for `cross_len` source tokens, per lane.
  infer::KvCacheConfig kv_cache_config(int64_t slots, int64_t max_len,
                                       int64_t cross_len) const;

  /// Encode src_ids [B, Ls] (right-padded; src_lens i32 [B]) and write every
  /// decoder layer's cross K/V into the lanes of `seqs` — also records the
  /// per-lane source lengths for the cross-attention mask.
  void encode(layers::LayerContext& ctx, const Tensor& src_ids, const Tensor& src_lens,
              infer::KvCache& cache, const std::vector<infer::SequenceHandle>& seqs);

  /// Prefill the target prefix tgt_in [B, Lp] (right-padded; tgt_lens
  /// optional) and return logits [B, Lp, vocab]. Row b's decoder self K/V
  /// go through `seqs[b]`'s block table into the paged pools; padding rows
  /// past len(seqs[b]) are dropped (decode appends claim those positions).
  Tensor prefill(layers::LayerContext& ctx, const Tensor& tgt_in, infer::KvCache& cache,
                 const std::vector<infer::SequenceHandle>& seqs,
                 const Tensor* tgt_lens = nullptr);

  /// One decode step over all slots: ids [S, 1] -> logits [S, vocab].
  Tensor decode_step(layers::LayerContext& ctx, const Tensor& ids, infer::KvCache& cache);

  layers::ParamRegistry& params() { return params_; }
  const TransformerConfig& config() const { return cfg_; }

  /// Partition across `pp` pipeline stages (DESIGN.md §9). The encoder
  /// takes the first pe = clamp(round(pp*enc/(enc+dec)), 1, pp-1) stages,
  /// the decoder the rest: source embedding on stage 0, final encoder LN +
  /// the layer-batched cross-K/V projection on stage pe-1, target
  /// embedding on stage pe, final decoder LN + tied criterion on stage
  /// pp-1. Cross K/V activations ride the stage chain with the hidden
  /// state, so boundary payloads include the K/V bytes still needed
  /// downstream.
  const layers::PpPlan& pp_configure(int pp);
  const layers::PpPlan& pp_plan() const { return pp_plan_; }

  /// TP epilogue: apply the rank-0 trainer's update to the simulated peer
  /// shards (no-op when TP is off) — called by core::train_step after the
  /// optimizer step.
  void tp_finish_step(const optim::Optimizer& trainer) {
    if (tp_) tp_->finish_step(trainer);
  }
  /// Peer-shard registry, or nullptr (TP off / peers not simulated).
  layers::ParamRegistry* tp_peers() { return tp_ ? &tp_->peers() : nullptr; }

 private:
  /// Layer-batched (one GEMM + one split) or per-layer cross-attention K/V
  /// projection of the encoder output, per policy (Fig. 5).
  std::vector<Tensor> project_cross_kv(layers::LayerContext& ctx, const Tensor& enc_out);
  /// Backward of the projection; returns d(enc_out) contribution.
  Tensor cross_kv_backward(layers::LayerContext& ctx, const std::vector<Tensor>& dkv);

  TransformerConfig cfg_;
  layers::ParamRegistry params_;
  std::unique_ptr<dist::TpRuntime> tp_;  ///< peer shards (TP numeric runs)
  std::unique_ptr<layers::EmbeddingLayer> src_embed_, tgt_embed_;
  std::vector<std::unique_ptr<layers::TransformerEncoderLayer>> encoder_;
  std::vector<std::unique_ptr<layers::TransformerDecoderLayer>> decoder_;
  layers::ParamRef enc_ln_gamma_, enc_ln_beta_, dec_ln_gamma_, dec_ln_beta_;
  layers::TpParam cross_kv_weight_, cross_kv_bias_;
  std::unique_ptr<layers::CriterionLayer> criterion_;

  // Parameter declaration ranges per component, reported grad-ready to the
  // bucketer as each backward stage completes (src/dist/bucket.h). The
  // shared token table lives in src_range_ and is final only after the
  // source embedding backward — the very last grad accumulation.
  layers::ParamRange src_range_, tgt_range_, enc_ln_range_, cross_kv_range_;
  layers::ParamRange dec_ln_range_, criterion_range_;
  std::vector<layers::ParamRange> enc_ranges_, dec_ranges_;
  layers::PpPlan pp_plan_;
  int pp_encoder_stages_ = 1;      ///< pe: stages [0, pe) run the encoder
  std::vector<int> enc_stage_, dec_stage_;  ///< stage of each layer

  struct Saved {
    Tensor src_lens, tgt_lens;
    Tensor enc_stack_out, enc_out, enc_mean, enc_rstd;  // final encoder LN
    Tensor dec_stack_out, dec_out, dec_mean, dec_rstd;  // final decoder LN
    std::vector<Tensor> kv;  // 2 per decoder layer, head layout
    int64_t B = 0, Ls = 0, Lt = 0;
  };
  std::optional<Saved> saved_;
};

}  // namespace ls2::models
