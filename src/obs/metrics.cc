#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace ls2::obs {

double exact_percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

Histogram::Histogram(HistogramConfig cfg) : cfg_(cfg) {
  LS2_CHECK(cfg_.lo > 0 && cfg_.hi > cfg_.lo && cfg_.growth > 1.0)
      << "histogram config lo=" << cfg_.lo << " hi=" << cfg_.hi
      << " growth=" << cfg_.growth;
  inv_log_growth_ = 1.0 / std::log(cfg_.growth);
  const size_t log_buckets = static_cast<size_t>(
      std::ceil(std::log(cfg_.hi / cfg_.lo) * inv_log_growth_));
  buckets_.assign(log_buckets + 2, 0);  // + underflow + overflow
}

size_t Histogram::bucket_index(double value) const {
  if (!(value >= cfg_.lo)) return 0;  // underflow (also NaN-safe)
  if (value >= cfg_.hi) return buckets_.size() - 1;
  const size_t idx =
      1 + static_cast<size_t>(std::log(value / cfg_.lo) * inv_log_growth_);
  return std::min(idx, buckets_.size() - 2);
}

double Histogram::bucket_lower(size_t i) const {
  if (i == 0) return 0.0;
  if (i >= buckets_.size() - 1) return cfg_.hi;
  return cfg_.lo * std::pow(cfg_.growth, static_cast<double>(i - 1));
}

double Histogram::bucket_upper(size_t i) const {
  if (i == 0) return cfg_.lo;
  if (i >= buckets_.size() - 1) return count_ > 0 ? std::max(max_, cfg_.hi) : cfg_.hi;
  return cfg_.lo * std::pow(cfg_.growth, static_cast<double>(i));
}

void Histogram::record(double value) {
  buckets_[bucket_index(value)] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  LS2_CHECK(buckets_.size() == other.buckets_.size() && cfg_.lo == other.cfg_.lo &&
            cfg_.growth == other.cfg_.growth)
      << "merging histograms with different bucket layouts";
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    min_ = count_ > 0 ? std::min(min_, other.min_) : other.min_;
    max_ = count_ > 0 ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Continuous rank, matching exact_percentile's convention on the sorted
  // sample: rank 0 is the minimum, rank count-1 the maximum.
  const double rank = q * static_cast<double>(count_ - 1);
  double cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets_[i]);
    // The bucket covers continuous ranks [cum, cum + in_bucket).
    if (rank < cum + in_bucket) {
      const double frac =
          in_bucket <= 1 ? 0.5 : (rank - cum + 0.5) / in_bucket;
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      const double est = lo + (hi - lo) * frac;
      return std::clamp(est, min_, max_);
    }
    cum += in_bucket;
  }
  return max_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

int64_t& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

double& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name, HistogramConfig cfg) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, Histogram(cfg)).first;
  return it->second;
}

void MetricsRegistry::set_label(const std::string& key, const std::string& value) {
  labels_[key] = value;
}

namespace {

// Shortest round-trip-exact formatting: snapshots must be byte-identical
// across identical runs AND stable to read.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter representation when it round-trips exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string prom_name(const std::string& name) {
  std::string out = "ls2_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{";
  os << "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels_) {
    os << (first ? "" : ",") << "\"" << json_escape(k) << "\":\"" << json_escape(v)
       << "\"";
    first = false;
  }
  os << "},\"counters\":{";
  first = true;
  for (const auto& [k, v] : counters_) {
    os << (first ? "" : ",") << "\"" << json_escape(k) << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    os << (first ? "" : ",") << "\"" << json_escape(k) << "\":" << fmt_double(v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << json_escape(k) << "\":{";
    os << "\"count\":" << h.count() << ",\"sum\":" << fmt_double(h.sum())
       << ",\"min\":" << fmt_double(h.min()) << ",\"max\":" << fmt_double(h.max())
       << ",\"p50\":" << fmt_double(h.quantile(0.50))
       << ",\"p90\":" << fmt_double(h.quantile(0.90))
       << ",\"p99\":" << fmt_double(h.quantile(0.99)) << ",\"buckets\":{";
    bool bfirst = true;
    for (size_t i = 0; i < h.buckets().size(); ++i) {
      if (h.buckets()[i] == 0) continue;
      os << (bfirst ? "" : ",") << "\"" << i << "\":" << h.buckets()[i];
      bfirst = false;
    }
    os << "}}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  std::string label_str;
  {
    std::ostringstream ls;
    bool first = true;
    for (const auto& [k, v] : labels_) {
      ls << (first ? "" : ",") << prom_name(k).substr(4) << "=\"" << v << "\"";
      first = false;
    }
    label_str = ls.str();
  }
  auto series = [&](const std::string& name, const std::string& extra) {
    std::string out = name;
    if (!label_str.empty() || !extra.empty()) {
      out += "{" + label_str;
      if (!label_str.empty() && !extra.empty()) out += ",";
      out += extra + "}";
    }
    return out;
  };
  for (const auto& [k, v] : counters_) {
    const std::string n = prom_name(k);
    os << "# TYPE " << n << " counter\n" << series(n, "") << " " << v << "\n";
  }
  for (const auto& [k, v] : gauges_) {
    const std::string n = prom_name(k);
    os << "# TYPE " << n << " gauge\n" << series(n, "") << " " << fmt_double(v) << "\n";
  }
  for (const auto& [k, h] : histograms_) {
    const std::string n = prom_name(k);
    os << "# TYPE " << n << " summary\n";
    for (double q : {0.5, 0.9, 0.99}) {
      os << series(n, "quantile=\"" + fmt_double(q) + "\"") << " "
         << fmt_double(h.quantile(q)) << "\n";
    }
    os << series(n + "_sum", "") << " " << fmt_double(h.sum()) << "\n";
    os << series(n + "_count", "") << " " << h.count() << "\n";
  }
  return os.str();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  labels_.clear();
}

}  // namespace ls2::obs
