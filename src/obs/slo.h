// Unified telemetry: rolling-window SLO monitors for serving (DESIGN.md §12).
//
// The serving reports used to compute latency percentiles once, at
// finish(), from the full per-request vector. An operator watching a live
// fleet needs the opposite: p50/p99 latency, tokens/sec, availability and
// shed-rate over the *recent* window, refreshed while the workload runs.
//
// SloMonitor keeps a ring of fixed-duration time slices (simulated device
// time, not host time), each holding a coarse streaming histogram plus
// served/shed/token tallies. Events are O(1): locate the slice, record.
// refresh() — called by the batcher once per decode round and by the fleet
// per completion scan — merges the live slices and publishes the rolling
// gauges into the owning MetricsRegistry under the monitor's prefix:
//
//   <prefix>.slo.p50_us / .p99_us      rolling latency quantiles
//   <prefix>.slo.tokens_per_s          decode throughput over the window
//   <prefix>.slo.availability          served / (served + shed)
//   <prefix>.slo.shed_rate             1 - availability
//   <prefix>.slo.inflight              gauge the owner sets directly
//
// Lifetime totals land in "<prefix>.served_total" / ".shed_total" /
// ".tokens_total" counters. A monitor built with a null registry still
// tracks state (accessors work) but publishes nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ls2::obs {

struct SloConfig {
  double window_us = 1e6;  ///< rolling window length (simulated us)
  int slices = 8;          ///< ring granularity; window_us / slices per slice
  /// Coarser buckets than the report histograms: the rolling window is an
  /// operator signal, not a benchmark number.
  HistogramConfig hist{1.0, 1e9, 1.05};
};

class SloMonitor {
 public:
  SloMonitor(MetricsRegistry* reg, std::string prefix, SloConfig cfg = {});

  /// A request completed at `now_us` with end-to-end latency `latency_us`,
  /// having produced `tokens` decode tokens.
  void on_served(double now_us, double latency_us, int64_t tokens);
  /// A request was shed (admission-rejected) at `now_us`.
  void on_shed(double now_us);

  /// Rotate the ring to `now_us` and publish rolling gauges. Call once per
  /// scheduling round — this is what makes the gauges "live".
  void refresh(double now_us);

  // Rolling-window accessors (valid after the last refresh()).
  double p50_us() const { return p50_us_; }
  double p99_us() const { return p99_us_; }
  double tokens_per_s() const { return tokens_per_s_; }
  double availability() const { return availability_; }
  double shed_rate() const { return shed_rate_; }
  int64_t window_served() const { return window_served_; }
  int64_t window_shed() const { return window_shed_; }

  const std::string& prefix() const { return prefix_; }

 private:
  struct Slice {
    int64_t index = -1;  ///< absolute slice number, -1 = empty
    Histogram hist;
    int64_t served = 0;
    int64_t shed = 0;
    int64_t tokens = 0;
  };

  Slice& slice_at(double now_us);

  MetricsRegistry* reg_;
  std::string prefix_;
  SloConfig cfg_;
  double slice_us_;
  std::vector<Slice> ring_;
  double origin_us_ = -1;  ///< first event time, for early-window throughput

  double p50_us_ = 0, p99_us_ = 0, tokens_per_s_ = 0;
  double availability_ = 1.0, shed_rate_ = 0;
  int64_t window_served_ = 0, window_shed_ = 0;
};

}  // namespace ls2::obs
