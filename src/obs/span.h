// Unified telemetry: nestable scoped spans (DESIGN.md §12).
//
// A SpanScope is simgpu::ScopedRange plus a Chrome-trace event: while alive
// it (optionally) owns device-range attribution exactly like ScopedRange —
// innermost wins, so swapping one for the other changes no Fig. 3 number —
// and on destruction it lands a named span on the device timeline's
// (pid, tid) lane, where the trace writer emits it as a balanced B/E pair.
// pid carries rank/replica attribution (the fleet remaps per-replica pid 0
// onto replica lanes; the 1F1B engine uses one pid per simulated rank), tid
// the stream (0 compute, 1 comm).
//
// Cost discipline: when the timeline is not recording, a SpanScope is one
// clock read and (with attribute=true) a range push/pop — the same price as
// the ScopedRange it replaces. Span nesting depth is whatever the call
// stack makes it: step → stage → bucket/microbatch → kernel-range.
#pragma once

#include <string>
#include <utility>

#include "simgpu/device.h"

namespace ls2::obs {

class SpanScope {
 public:
  /// `attribute` selects whether the span also acts as a device range
  /// (ScopedRange semantics). Pure trace envelopes — e.g. the whole-step
  /// span wrapping the stage ranges — pass false so per-range time sums
  /// (Fig. 3) keep their exact pre-span meaning.
  SpanScope(simgpu::Device& device, std::string name, int pid = 0, int tid = 0,
            bool attribute = true)
      : device_(device),
        name_(std::move(name)),
        pid_(pid),
        tid_(tid),
        attribute_(attribute),
        begin_us_(device.clock_us()) {
    if (attribute_) device_.push_range(name_);
  }

  ~SpanScope() {
    if (attribute_) device_.pop_range();
    if (device_.record_timeline()) {
      const double end = device_.clock_us();
      if (end > begin_us_)
        device_.timeline().record_span(pid_, tid_, name_, begin_us_, end);
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  simgpu::Device& device_;
  std::string name_;
  int pid_;
  int tid_;
  bool attribute_;
  double begin_us_;
};

}  // namespace ls2::obs
