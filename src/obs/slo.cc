#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace ls2::obs {

SloMonitor::SloMonitor(MetricsRegistry* reg, std::string prefix, SloConfig cfg)
    : reg_(reg), prefix_(std::move(prefix)), cfg_(cfg) {
  LS2_CHECK(cfg_.slices > 0 && cfg_.window_us > 0)
      << "slo config slices=" << cfg_.slices << " window_us=" << cfg_.window_us;
  slice_us_ = cfg_.window_us / static_cast<double>(cfg_.slices);
  ring_.reserve(static_cast<size_t>(cfg_.slices));
  for (int i = 0; i < cfg_.slices; ++i) {
    Slice s;
    s.hist = Histogram(cfg_.hist);
    ring_.push_back(std::move(s));
  }
}

SloMonitor::Slice& SloMonitor::slice_at(double now_us) {
  const int64_t index = static_cast<int64_t>(std::max(0.0, now_us) / slice_us_);
  Slice& s = ring_[static_cast<size_t>(index % cfg_.slices)];
  if (s.index != index) {
    // The ring wrapped: this slot last held a window that has since aged
    // out. Recycle it for the current slice.
    s.index = index;
    s.hist.reset();
    s.served = 0;
    s.shed = 0;
    s.tokens = 0;
  }
  return s;
}

void SloMonitor::on_served(double now_us, double latency_us, int64_t tokens) {
  if (origin_us_ < 0) origin_us_ = now_us;
  Slice& s = slice_at(now_us);
  s.hist.record(latency_us);
  s.served += 1;
  s.tokens += tokens;
  if (reg_ != nullptr) {
    reg_->counter(prefix_ + ".served_total") += 1;
    reg_->counter(prefix_ + ".tokens_total") += tokens;
    reg_->histogram(prefix_ + ".latency_us").record(latency_us);
  }
}

void SloMonitor::on_shed(double now_us) {
  if (origin_us_ < 0) origin_us_ = now_us;
  slice_at(now_us).shed += 1;
  if (reg_ != nullptr) reg_->counter(prefix_ + ".shed_total") += 1;
}

void SloMonitor::refresh(double now_us) {
  const int64_t now_index = static_cast<int64_t>(std::max(0.0, now_us) / slice_us_);
  const int64_t oldest = now_index - cfg_.slices + 1;
  Histogram merged(cfg_.hist);
  int64_t served = 0, shed = 0, tokens = 0;
  for (const Slice& s : ring_) {
    if (s.index < oldest || s.index > now_index) continue;  // aged out
    merged.merge(s.hist);
    served += s.served;
    shed += s.shed;
    tokens += s.tokens;
  }
  window_served_ = served;
  window_shed_ = shed;
  p50_us_ = merged.quantile(0.50);
  p99_us_ = merged.quantile(0.99);
  const int64_t offered = served + shed;
  availability_ = offered > 0 ? static_cast<double>(served) /
                                    static_cast<double>(offered)
                              : 1.0;
  shed_rate_ = 1.0 - availability_;
  // Early in a run the window is not yet full; rate against the elapsed
  // span instead so the gauge does not under-read at startup.
  double span_us = cfg_.window_us;
  if (origin_us_ >= 0) span_us = std::min(span_us, std::max(now_us - origin_us_, slice_us_));
  tokens_per_s_ = static_cast<double>(tokens) / (span_us / 1e6);

  if (reg_ != nullptr) {
    reg_->gauge(prefix_ + ".slo.p50_us") = p50_us_;
    reg_->gauge(prefix_ + ".slo.p99_us") = p99_us_;
    reg_->gauge(prefix_ + ".slo.tokens_per_s") = tokens_per_s_;
    reg_->gauge(prefix_ + ".slo.availability") = availability_;
    reg_->gauge(prefix_ + ".slo.shed_rate") = shed_rate_;
  }
}

}  // namespace ls2::obs
