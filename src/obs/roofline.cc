#include "obs/roofline.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ls2::obs {

void collect_device_metrics(MetricsRegistry& reg, const simgpu::Device& device,
                            const std::string& prefix) {
  const simgpu::DeviceStats& s = device.stats();
  reg.counter(prefix + ".launches") = s.launches;
  reg.counter(prefix + ".replayed_launches") = s.replayed_launches;
  reg.counter(prefix + ".graph_replays") = s.graph_replays;
  reg.counter(prefix + ".bytes_moved") = s.bytes_moved;
  reg.counter(prefix + ".comm_transfers") = s.comm_transfers;
  reg.gauge(prefix + ".flops") = s.flops;
  reg.gauge(prefix + ".busy_us") = s.busy_us;
  reg.gauge(prefix + ".overhead_us") = s.overhead_us;
  reg.gauge(prefix + ".launch_gap_us") = s.launch_gap_us;
  reg.gauge(prefix + ".alloc_stall_us") = s.alloc_stall_us;
  reg.gauge(prefix + ".graph_launch_us") = s.graph_launch_us;
  reg.gauge(prefix + ".comm_us") = s.comm_us;
  reg.gauge(prefix + ".exposed_comm_us") = s.exposed_comm_us;
  const double total = s.busy_us + s.overhead_us;
  reg.gauge(prefix + ".utilization") = total > 0 ? s.busy_us / total : 0.0;
  for (const auto& [name, ks] : device.per_kernel()) {
    const std::string base = prefix + ".kernel." + name;
    reg.counter(base + ".launches") = ks.launches;
    reg.counter(base + ".bytes") = ks.bytes;
    reg.gauge(base + ".flops") = ks.flops;
    reg.gauge(base + ".exec_us") = ks.exec_us;
    reg.gauge(base + ".time_us") = ks.time_us;
    reg.gauge(base + ".tensor_core") = ks.tensor_core ? 1.0 : 0.0;
  }
}

RooflineReport build_roofline(const MetricsRegistry& reg,
                              const simgpu::DeviceProfile& profile,
                              const std::string& prefix) {
  RooflineReport report;
  report.busy_us = 0;
  if (reg.has_gauge(prefix + ".busy_us"))
    report.busy_us = reg.gauges().at(prefix + ".busy_us");
  if (reg.has_gauge(prefix + ".exposed_comm_us"))
    report.exposed_comm_us = reg.gauges().at(prefix + ".exposed_comm_us");

  // Family discovery: every "<prefix>.kernel.<family>.exec_us" gauge is one
  // roofline row. The family name itself may contain dots, so match on the
  // fixed prefix and suffix rather than splitting.
  const std::string kprefix = prefix + ".kernel.";
  const std::string ksuffix = ".exec_us";
  for (const auto& [name, exec_us] : reg.gauges()) {
    if (name.size() <= kprefix.size() + ksuffix.size()) continue;
    if (name.compare(0, kprefix.size(), kprefix) != 0) continue;
    if (name.compare(name.size() - ksuffix.size(), ksuffix.size(), ksuffix) != 0)
      continue;
    const std::string family =
        name.substr(kprefix.size(), name.size() - kprefix.size() - ksuffix.size());
    const std::string base = kprefix + family;

    RooflineEntry e;
    e.family = family;
    e.exec_us = exec_us;
    report.kernel_us += e.exec_us;  // coverage counts even dropped rows
    if (e.exec_us <= 0) continue;
    if (reg.has_counter(base + ".launches"))
      e.launches = reg.counters().at(base + ".launches");
    if (reg.has_counter(base + ".bytes"))
      e.bytes = static_cast<double>(reg.counters().at(base + ".bytes"));
    if (reg.has_gauge(base + ".flops")) e.flops = reg.gauges().at(base + ".flops");
    if (reg.has_gauge(base + ".tensor_core"))
      e.tensor_core = reg.gauges().at(base + ".tensor_core") != 0.0;

    e.intensity = e.bytes > 0 ? e.flops / e.bytes : 0.0;
    // bytes/us -> GB/s is /1e3; flops/us -> TFLOPs is /1e6.
    e.achieved_gb_s = e.bytes / e.exec_us / 1e3;
    e.achieved_tflops = e.flops / e.exec_us / 1e6;
    e.peak_gb_s = profile.mem_bw_gb_s;
    e.peak_tflops = e.tensor_core ? profile.fp16_tflops : profile.fp32_tflops;
    e.mem_util = e.peak_gb_s > 0 ? e.achieved_gb_s / e.peak_gb_s : 0.0;
    e.compute_util = e.peak_tflops > 0 ? e.achieved_tflops / e.peak_tflops : 0.0;
    e.compute_bound = e.compute_util >= e.mem_util;
    e.utilization = std::max(e.mem_util, e.compute_util);
    e.share = report.busy_us > 0 ? e.exec_us / report.busy_us : 0.0;
    report.entries.push_back(std::move(e));
  }
  std::sort(report.entries.begin(), report.entries.end(),
            [](const RooflineEntry& a, const RooflineEntry& b) {
              if (a.exec_us != b.exec_us) return a.exec_us > b.exec_us;
              return a.family < b.family;  // deterministic tie-break
            });
  report.other_busy_us = std::max(
      0.0, report.busy_us - report.kernel_us - report.exposed_comm_us);
  return report;
}

RooflineReport build_roofline(const simgpu::Device& device) {
  MetricsRegistry scratch;
  collect_device_metrics(scratch, device, "device");
  return build_roofline(scratch, device.profile(), "device");
}

std::string format_roofline(const RooflineReport& report, size_t top_k) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %8s %12s %7s %9s %9s %7s  %s\n",
                "kernel family", "launches", "exec_us", "share%", "GB/s",
                "TFLOPs", "util%", "bound");
  os << line;
  const size_t n = std::min(top_k, report.entries.size());
  for (size_t i = 0; i < n; ++i) {
    const RooflineEntry& e = report.entries[i];
    std::snprintf(line, sizeof(line),
                  "%-28s %8lld %12.1f %6.2f%% %9.1f %9.2f %6.1f%%  %s%s\n",
                  e.family.c_str(), static_cast<long long>(e.launches), e.exec_us,
                  100.0 * e.share, e.achieved_gb_s, e.achieved_tflops,
                  100.0 * e.utilization, e.compute_bound ? "compute" : "memory",
                  e.tensor_core ? " (tc)" : "");
    os << line;
  }
  if (report.entries.size() > n) {
    double rest = 0;
    for (size_t i = n; i < report.entries.size(); ++i)
      rest += report.entries[i].exec_us;
    std::snprintf(line, sizeof(line), "%-28s %8s %12.1f\n",
                  ("... +" + std::to_string(report.entries.size() - n) +
                   " more families")
                      .c_str(),
                  "", rest);
    os << line;
  }
  std::snprintf(line, sizeof(line), "%-28s %8s %12.1f\n", "exposed comm", "",
                report.exposed_comm_us);
  os << line;
  std::snprintf(line, sizeof(line), "%-28s %8s %12.1f\n", "other busy", "",
                report.other_busy_us);
  os << line;
  std::snprintf(line, sizeof(line), "%-28s %8s %12.1f  (covered %.1f)\n",
                "device busy total", "", report.busy_us, report.covered_us());
  os << line;
  return os.str();
}

}  // namespace ls2::obs
