// Unified telemetry: roofline kernel profiler (DESIGN.md §12).
//
// Aggregates per-kernel-family bytes / flops / execution time against the
// DeviceProfile peaks and classifies each family as memory- or compute-
// bound, the standard roofline read: achieved bandwidth vs peak HBM
// bandwidth on one axis, achieved throughput vs the (tensor-core or FP32)
// FLOP peak on the other, bound by whichever side the analytical cost model
// maxed. Because kernel exec time in the simulator is exactly
// max(bytes/BW_eff, flops/TP_eff), every family's bound-side utilization is
// its achieved efficiency fraction — in (0, 1] by construction.
//
// The report is built from MetricsRegistry data alone (the scrape in
// collect_device_metrics is the only reader of simgpu state), so a
// snapshot-to-JSON of the registry is sufficient to reproduce the fig15
// breakdown offline. Coverage is exact: kernel_us + exposed_comm_us +
// other_busy_us == DeviceStats::busy_us with no double-count and no gap,
// because kernel_us sums the new KernelStats::exec_us (pure execution, no
// launch gaps) and the two remainder rows partition the busy advance()
// sites.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "simgpu/device.h"
#include "simgpu/profile.h"

namespace ls2::obs {

struct RooflineEntry {
  std::string family;  ///< kernel name (e.g. "ls2.layernorm_fw")
  int64_t launches = 0;
  double bytes = 0;
  double flops = 0;
  double exec_us = 0;         ///< pure execution time (no launch gaps)
  double intensity = 0;       ///< flops / byte
  double achieved_gb_s = 0;   ///< bytes / exec time
  double achieved_tflops = 0; ///< flops / exec time
  double peak_gb_s = 0;
  double peak_tflops = 0;     ///< tensor-core or FP32 peak per the family
  double mem_util = 0;        ///< achieved_gb_s / peak_gb_s
  double compute_util = 0;    ///< achieved_tflops / peak_tflops
  double utilization = 0;     ///< bound-side utilization, in (0, 1]
  bool compute_bound = false;
  bool tensor_core = false;
  double share = 0;  ///< exec_us / DeviceStats::busy_us
};

struct RooflineReport {
  std::vector<RooflineEntry> entries;  ///< sorted by exec_us, descending
  double kernel_us = 0;        ///< Σ family exec_us
  double exposed_comm_us = 0;  ///< comm time the compute stream waited on
  double other_busy_us = 0;    ///< busy advance() time outside both above
  double busy_us = 0;          ///< DeviceStats::busy_us at scrape time
  /// kernel_us + exposed_comm_us + other_busy_us — equals busy_us up to
  /// floating-point noise (the fig_obs coverage criterion).
  double covered_us() const { return kernel_us + exposed_comm_us + other_busy_us; }
};

/// Scrape DeviceStats and the per-kernel-family table into `reg` under
/// `prefix`: device-level gauges/counters ("<prefix>.busy_us", ...) and one
/// metric group per family ("<prefix>.kernel.<family>.{launches,bytes,
/// flops,exec_us,time_us,tensor_core}"). Idempotent per (prefix, device):
/// gauges are overwritten, counters reset to the device's cumulative value.
void collect_device_metrics(MetricsRegistry& reg, const simgpu::Device& device,
                            const std::string& prefix = "device");

/// Build the roofline report from registry data alone (no simgpu access) —
/// the metrics must have been collected under `prefix` by
/// collect_device_metrics. Families with zero execution time are dropped.
RooflineReport build_roofline(const MetricsRegistry& reg,
                              const simgpu::DeviceProfile& profile,
                              const std::string& prefix = "device");

/// Convenience: scrape into a scratch registry and build.
RooflineReport build_roofline(const simgpu::Device& device);

/// Human-readable top-K table (all coverage rows always included).
std::string format_roofline(const RooflineReport& report, size_t top_k = 10);

}  // namespace ls2::obs
