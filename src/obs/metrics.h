// Unified telemetry: the metrics registry (DESIGN.md §12).
//
// Named counters, gauges, and fixed-bucket streaming histograms with O(1)
// record and O(buckets) quantile estimation — replacing the sort-the-whole-
// vector percentile helpers that used to be duplicated across the serving
// reports. A registry snapshot is deterministic (std::map iteration order,
// fixed float formatting), which is what makes the metrics-snapshot golden
// test meaningful: two runs of a seeded workload produce byte-identical
// JSON.
//
// Layering: this header depends only on common/; the rest of obs/ (spans,
// roofline, SLO) sits on simgpu, and core/dist/infer push into (or are
// scraped into) a registry from above. Everything is null-tolerant at the
// call sites: a component handed no registry records nothing and costs one
// pointer test.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ls2::obs {

/// Exact percentile of a sample vector by sort + linear interpolation — the
/// one shared copy of the helper that used to live (identically) in
/// infer/batcher.cc and infer/fleet.cc. For large or streaming populations
/// prefer Histogram::quantile; this remains for small decision-making
/// populations (the fleet's hedge ECDF) where exactness matters more than
/// O(1) updates.
double exact_percentile(std::vector<double> v, double p);

struct HistogramConfig {
  /// Lower edge of the first log-spaced bucket; values below land in an
  /// underflow bucket whose estimate interpolates [min_seen, lo).
  double lo = 1.0;
  /// Upper edge of the last log-spaced bucket; values above land in an
  /// overflow bucket whose estimate interpolates [hi, max_seen].
  double hi = 1e9;
  /// Per-bucket geometric growth: relative quantile error is bounded by
  /// (growth - 1) before interpolation tightens it further.
  double growth = 1.02;
};

/// Fixed-bucket streaming histogram: log-spaced buckets over [lo, hi] with
/// an underflow and an overflow bucket. record() is O(1) (one log, one
/// increment); quantile() walks the bucket array once and interpolates
/// linearly inside the landing bucket, clamped to the exact observed
/// [min, max]. Deterministic: same inputs, same counts, same estimates.
class Histogram {
 public:
  explicit Histogram(HistogramConfig cfg = {});

  void record(double value);
  /// Fold another histogram (same config) into this one.
  void merge(const Histogram& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Estimated q-quantile (q in [0,1]); 0 when empty. quantile(0) == min,
  /// quantile(1) == max (exact — the clamp).
  double quantile(double q) const;

  const HistogramConfig& config() const { return cfg_; }
  const std::vector<int64_t>& buckets() const { return buckets_; }
  /// Lower value edge of bucket `i` (0 for the underflow bucket).
  double bucket_lower(size_t i) const;
  double bucket_upper(size_t i) const;

  void reset();

 private:
  size_t bucket_index(double value) const;

  HistogramConfig cfg_;
  double inv_log_growth_ = 0;
  std::vector<int64_t> buckets_;  // [underflow, log buckets..., overflow]
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named metrics, one namespace per registry. Names are dot-separated
/// ("serve.latency_us"); the Prometheus exposition sanitizes them. The
/// registry is single-threaded like the simulator itself — the discrete-
/// event loops that feed it never race.
class MetricsRegistry {
 public:
  /// Counter: monotonically increasing int64. The returned reference is
  /// stable for the registry's lifetime — cache it on hot paths.
  int64_t& counter(const std::string& name);
  /// Gauge: a settable double (current value of something).
  double& gauge(const std::string& name);
  /// Streaming histogram; the config is applied on first use only.
  Histogram& histogram(const std::string& name, HistogramConfig cfg = {});

  bool has_counter(const std::string& name) const { return counters_.count(name) > 0; }
  bool has_gauge(const std::string& name) const { return gauges_.count(name) > 0; }
  bool has_histogram(const std::string& name) const { return histograms_.count(name) > 0; }

  /// Constant labels stamped on every exposition line (rank/replica
  /// attribution: set_label("replica", "2")).
  void set_label(const std::string& key, const std::string& value);

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  const std::map<std::string, std::string>& labels() const { return labels_; }

  /// Deterministic JSON snapshot: labels, counters, gauges, and per-
  /// histogram {count,sum,min,max,p50,p90,p99,buckets} with every non-zero
  /// bucket listed — byte-identical across identical runs (the golden-test
  /// contract).
  std::string to_json() const;

  /// Prometheus text exposition (counters, gauges, histogram summaries with
  /// quantile labels). Names are prefixed "ls2_" and sanitized to
  /// [a-zA-Z0-9_]; registry labels become series labels.
  std::string to_prometheus() const;

  void clear();

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> labels_;
};

}  // namespace ls2::obs
