// Request scheduling for the serving engine: continuous batching vs the
// static-wave baseline.
//
// The engine owns one steady-state DECODE loop over a fixed set of decode
// lanes backed by the paged KV cache. Each engine step is:
//
//   [admissions]  arrived requests allocate a lane + pages (shared-prefix
//                 pages reused); each prompt runs one eager prefill (B=1)
//                 that writes its K/V and samples the first token — never
//                 captured, shapes vary per prompt;
//   [extend]      every resident sequence backs its next append row
//                 (KvCache::extend — page allocation and COW copies, all
//                 outside the captured region); when the pool runs dry the
//                 lowest-priority resident is PREEMPTED: its tokens fold
//                 into a continuation prompt re-queued at the front;
//   [decode]      ONE static-shape decode step over ALL lanes (inactive
//                 lanes attend nothing and are ignored) — the region
//                 core::Session::begin_decode_step captures once and then
//                 replays as a single graph launch;
//   [retire]      finished sequences free their lane and pages immediately.
//
// Continuous batching (FastSeq/Orca discipline) admits into any free slot
// every step, so the decode batch stays full under load; the static
// baseline admits a wave only when ALL slots are empty and pays the
// straggler tail — the gap bench/fig_serve.cc measures.
//
// Two driving modes share the same machinery:
//   * serve() — the single-replica loop: feed arrivals, step until drained.
//   * the STEPWISE API (begin / submit / step / finish, plus the router
//     hooks evacuate / cancel / take_completed / set_draining) — what an
//     infer::Fleet replica runs under: the ROUTER owns the clock-advance
//     policy and request lifecycle, the engine owns slots and decode.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/session.h"
#include "infer/generator.h"
#include "infer/kv_cache.h"
#include "models/gpt2.h"
#include "obs/slo.h"

namespace ls2::infer {

enum class BatchMode {
  kContinuous,  ///< admit into free slots every step
  kStatic,      ///< admit a wave only when the batch has fully drained
};

struct ServeConfig {
  BatchMode mode = BatchMode::kContinuous;
  SamplingConfig sampling;  ///< greedy by default
  /// >= 0: retire a sequence when it samples this token (execute mode only —
  /// model-only runs have no real logits and retire on gen_len alone).
  int32_t eos_id = -1;

  // --- graceful degradation under overload / faults (DESIGN.md §10).
  // Defaults keep every knob OFF: serve() behaves exactly as before.
  /// >0: a request still queued this long after its ENQUEUE (arrival, or the
  /// router's re-dispatch time — see Request::enqueue_us) is SHED (rejected
  /// with an error to the client) instead of waiting unboundedly — queue
  /// time is bounded, so tail latency of admitted requests is too.
  double admission_timeout_us = 0;
  /// >0: backpressure — when more than this many arrived requests are
  /// waiting for a slot, the newest arrivals are shed immediately. Bounds
  /// the queue (and therefore p99) during bursts at the cost of errors.
  int64_t max_queue = 0;
  /// >0: per-request completion deadline (from the ORIGINAL arrival, which
  /// survives router re-dispatch). A resident sequence that crosses it
  /// retires early with whatever it generated — a partial answer within the
  /// SLO rather than a complete one outside it.
  double deadline_us = 0;
  /// Retry budget for a decode step that hits a TRANSIENT allocation
  /// failure (mem::TransientAllocFailure, e.g. injected via the fault
  /// plan): the aborted step's arena state is rewound and the step rerun
  /// after an idle backoff. Exhausting the budget rethrows.
  int decode_retries = 2;
  /// Idle time charged before each retry; doubles per attempt.
  double retry_backoff_us = 200.0;
  /// Metric-name prefix for this engine's telemetry when the session has a
  /// registry (SessionConfig::metrics): "<prefix>.served_total",
  /// "<prefix>.slo.p99_us", ... The fleet sets "replica<i>.serve" so every
  /// replica's series are attributable in one shared registry.
  std::string metrics_prefix = "serve";
};

/// Per-request serving knobs, carried with the request through submit(),
/// Fleet dispatch/re-dispatch, and the fault-tolerance retry path — one
/// struct instead of per-field plumbing. Every field except gen_len is an
/// override of the ServeConfig default (sentinel = inherit).
struct RequestSpec {
  /// Tokens to generate — a cap: EOS (execute mode) or the sequence's K/V
  /// capacity (prompt + generated reaching KvCacheConfig::seq_tokens) may
  /// retire the sequence earlier.
  int64_t gen_len = 1;
  /// >0: per-request completion deadline overriding ServeConfig::deadline_us
  /// (from the ORIGINAL arrival — survives router re-dispatch).
  double deadline_us = 0;
  /// >=0: per-request stop token overriding ServeConfig::eos_id.
  int32_t eos_id = -1;
  /// Admission and preemption rank: higher admits first; lower is evicted
  /// first when the page pool runs dry. Ties break oldest-first (admission)
  /// / newest-first (eviction).
  int32_t priority = 0;
};

struct Request {
  int64_t id = 0;
  std::vector<int32_t> prompt;
  RequestSpec spec;
  double arrival_us = 0;
  /// 0: same as arrival_us. A router RE-DISPATCH (replica death, drain,
  /// transient-fault retry) sets this to the re-enqueue time while
  /// arrival_us keeps the ORIGINAL arrival — so queue-wait and latency
  /// stats are never flattered by re-admission. Policy split: the admission
  /// timeout keys off enqueue() (each dispatch gets its queue-time bound),
  /// the SLO deadline and all latency stats key off arrival_us.
  double enqueue_us = 0;
  double enqueue() const { return enqueue_us > 0 ? enqueue_us : arrival_us; }
};

struct RequestStats {
  int64_t id = 0;
  double arrival_us = 0;
  double admitted_us = 0;     ///< slot claimed + prefill issued
  double first_token_us = 0;  ///< first generated token available
  double done_us = 0;
  int64_t prompt_len = 0;
  int64_t generated = 0;
  /// The generated ids (real samples in execute mode, the deterministic
  /// stand-ins in model-only runs) — what the replay-parity test compares.
  std::vector<int32_t> tokens;
  /// Load-shed before admission (timeout or queue bound): never decoded;
  /// excluded from the latency percentiles.
  bool shed = false;
  /// Retired by ServeConfig::deadline_us with a partial generation.
  bool deadline_retired = false;
  /// Removed by the router before completing here — evacuated to another
  /// replica or hedge-cancelled. Excluded from this engine's latency stats;
  /// the fleet stitches the full story across replicas.
  bool cancelled = false;
  double latency_us() const { return done_us - arrival_us; }
  double queue_us() const { return admitted_us - arrival_us; }
};

struct ServeReport {
  std::vector<RequestStats> requests;
  int64_t prefills = 0;
  int64_t decode_steps = 0;
  int64_t replayed_steps = 0;    ///< decode steps run as one graph launch
  int64_t generated_tokens = 0;
  double makespan_us = 0;
  double tokens_per_sec = 0;     ///< generated tokens / makespan
  /// Latency stats cover SERVED requests only (shed ones got an error
  /// response, not a slow one — mixing them in would corrupt the tail).
  double p50_latency_us = 0, p99_latency_us = 0, mean_latency_us = 0;
  int64_t served = 0;            ///< requests that completed (incl. partial)
  int64_t shed_requests = 0;     ///< rejected by timeout / queue bound
  int64_t deadline_retired = 0;  ///< retired early with a partial answer
  int64_t decode_retries = 0;    ///< decode steps rerun after transient faults
  // --- paged-KV telemetry (fig_page's evidence) ---
  int64_t peak_resident = 0;       ///< max concurrently resident sequences
  int64_t peak_pages_used = 0;     ///< max pool pages live at once
  int64_t prefill_page_allocs = 0; ///< fresh pages claimed by prompt prefills
  int64_t shared_page_hits = 0;    ///< prefix pages reused instead of allocated
  int64_t cow_copies = 0;          ///< shared tail pages copied on first write
  int64_t preemptions = 0;         ///< sequences evicted (recompute) on pool exhaustion
};

class ContinuousBatcher {
 public:
  ContinuousBatcher(core::Session& session, models::Gpt2& model, KvCache& cache,
                    ServeConfig cfg = {});

  /// Serve every request to completion; requests may arrive in any order.
  ServeReport serve(std::vector<Request> requests);

  // --- stepwise API (fleet-driven; DESIGN.md §11) -------------------------

  /// Reset the engine for a router-driven run. Must precede submit()/step().
  void begin();
  /// Hand a request to this engine's queue. The router submits only ARRIVED
  /// requests (enqueue() <= this replica's clock); re-dispatches keep the
  /// original arrival_us and set enqueue_us to the hand-over time.
  void submit(Request r);
  /// One engine iteration: admissions, then — if anything is resident —
  /// one decode step with harvest/retire. Returns true when a decode step
  /// ran; false means the engine is idle and the ROUTER decides how far to
  /// advance this replica's clock. May throw simgpu::DeviceLostError (the
  /// replica died — evacuate()) or mem::TransientAllocFailure (retry budget
  /// exhausted — quarantine + evacuate()).
  bool step();
  /// Drain mode: stop admitting from the queue (residents keep decoding).
  /// The rolling-reload path: drain, wait for resident()==0, reload, rejoin.
  void set_draining(bool on) { draining_ = on; }
  bool draining() const { return draining_; }
  bool has_work() const { return !pending_.empty() || cache_->active_seqs() > 0; }
  /// Arrived requests waiting for a lane (queue pressure — the JSQ signal).
  int64_t queue_depth() const { return static_cast<int64_t>(pending_.size()); }
  int64_t resident() const { return cache_->active_seqs(); }

  /// A request pulled off this engine before completing: the request AS
  /// SUBMITTED here plus its partial stats (tokens generated so far,
  /// admission timestamps). The router re-dispatches prompt + prefix.
  struct Evacuated {
    Request req;
    RequestStats partial;
  };
  /// Pull every queued (and, unless `queued_only`, resident) request off
  /// the engine — the death / quarantine / drain hand-over. Slots are
  /// released and the evacuees marked cancelled on this engine's books.
  std::vector<Evacuated> evacuate(bool queued_only = false);
  /// Cancel one request by submitted id (the hedge loser): removed from the
  /// queue or its slot released. False when it already completed (too late).
  bool cancel(int64_t id);
  /// Drain the completion events (done or shed — not router-cancelled)
  /// recorded since the last call. The fleet's merge feed.
  std::vector<RequestStats> take_completed();
  /// Close the run and compute the report (percentiles over this engine's
  /// non-cancelled, non-shed completions).
  ServeReport finish();

  const ServeConfig& config() const { return cfg_; }

 private:
  struct SlotState {
    int64_t req = -1;        ///< index into the request vector; -1 free
    SequenceHandle handle;   ///< this lane's KV sequence
    int64_t generated = 0;
    /// st.tokens.size() at (re-)admission: tokens at or past this index were
    /// generated by THIS residency — a preemption folds them into the
    /// continuation prompt; earlier ones are already part of it.
    int64_t admitted_tokens = 0;
    int32_t next_token = 0;  ///< fed to the next decode step
  };

  /// Try to claim a lane + pages for request `r`: prefill its prompt
  /// (eager; shared prefix pages skipped) and sample the next token. False
  /// when the cache can't place it (no lane or pages) — the caller treats
  /// the batch as full.
  bool admit(size_t r);
  /// Reject request `r` (overload shed): it completes immediately with an
  /// error and no tokens.
  void shed(size_t r, double now);
  /// Admission scan with the degradation knobs: timeout sheds, lane claims,
  /// queue-bound backpressure — over the pending queue, highest priority
  /// first, oldest first within a priority.
  void run_admissions();
  /// The decode step (with transient-fault retries) + harvest/retire.
  void decode_once();
  /// Back every resident lane's next append row (KvCache::extend), evicting
  /// victims to the front of the queue when the page pool runs dry — the
  /// recompute-preemption discipline. Runs before the captured region.
  void extend_residents();
  /// Evict lane `s`: fold its generated tokens into a continuation prompt
  /// re-queued at the FRONT (or complete it with the partial answer when
  /// the continuation could no longer fit), then free its pages.
  void preempt(int64_t s, double now);
  /// Retire lane `s` as complete.
  void retire(int64_t s, bool expired);
  int32_t harvest_token(const Tensor& sampled, int64_t row, int64_t slot,
                        int64_t generated) const;

  core::Session* session_;
  models::Gpt2* model_;
  KvCache* cache_;
  ServeConfig cfg_;
  Generator gen_;
  // engine state (serve() and the stepwise API share it)
  std::vector<Request> reqs_;
  std::vector<size_t> pending_;  ///< queued request indices, enqueue order
  std::vector<SlotState> slots_;
  std::vector<RequestStats> stats_;
  std::vector<size_t> completed_new_;  ///< completions since take_completed()
  ServeReport report_;
  int64_t done_ = 0;
  bool draining_ = false;
  bool begun_ = false;
  double start_us_ = 0;
  Tensor ids_, sampled_;  ///< static decode-step input/output tensors
  /// Live SLO telemetry (DESIGN.md §12); engaged by begin() iff the session
  /// carries a MetricsRegistry. Gauges refresh every step(), not at finish.
  std::optional<obs::SloMonitor> slo_;
};

/// Poisson arrivals for benches/tests: `n` requests at `rate_per_sec`, with
/// prompt lengths uniform in [prompt_lo, prompt_hi] and generation lengths
/// uniform in [gen_lo, gen_hi] — all drawn from the counter RNG, so a
/// workload is reproducible from its seed.
std::vector<Request> poisson_requests(int64_t n, double rate_per_sec, int64_t prompt_lo,
                                      int64_t prompt_hi, int64_t gen_lo, int64_t gen_hi,
                                      int64_t vocab, uint64_t seed);

/// Arena sizing for a serving session (the capacity-scan discipline of
/// §IV-D applied to the serving step): probes one full-slot padded prefill
/// plus one decode step against a peak-tracking allocator and returns a
/// capacity for SessionConfig::arena_bytes.
size_t serve_capacity_scan(const models::Gpt2Config& cfg, DType dtype, int64_t slots,
                           int64_t max_len, int64_t max_prompt_len, uint64_t seed = 17);

}  // namespace ls2::infer
