// Token generation policy for the serving engine: greedy decoding or
// temperature / top-k sampling over a logits batch.
//
// Sampling keeps the counter-based RNG discipline of PR 3: the stream for
// each draw comes from KernelContext::next_dropout_stream(), whose per-step
// base advances outside any captured graph (core::Session::begin_decode_step
// / begin_step_rng) — so every sampled token is a pure function of
// (seed, step, slot) and a replayed decode step emits bitwise the tokens an
// eager one would.
#pragma once

#include "kernels/sampling.h"

namespace ls2::infer {

struct SamplingConfig {
  bool greedy = true;       ///< argmax decoding (ignores the fields below)
  float temperature = 1.0f; ///< softmax temperature for sampled decoding
  int64_t top_k = 0;        ///< restrict sampling to the k best logits (0: all)
};

class Generator {
 public:
  explicit Generator(SamplingConfig cfg = {}) : cfg_(cfg) {}

  const SamplingConfig& config() const { return cfg_; }

  /// Pick the next token for every row of logits [rows, vocab] into `out`
  /// (i32 [rows]). One device launch; part of the captured decode region.
  void next_tokens(kern::KernelContext& kc, kern::Impl impl, const Tensor& logits,
                   const Tensor& out) {
    if (cfg_.greedy) {
      kern::argmax_rows(kc, impl, logits, out);
    } else {
      kern::sample_topk(kc, impl, logits, out, cfg_.top_k, cfg_.temperature,
                        kc.next_dropout_stream());
    }
  }

 private:
  SamplingConfig cfg_;
};

}  // namespace ls2::infer
