// KV cache for incremental decoding (the serving half of the system; see
// DESIGN.md §"Serving").
//
// Every layer's keys/values live in pre-allocated head-layout blocks
// [slots, N, max_len, D], allocated ONCE at engine setup from the session's
// permanent pool — zero device malloc/free traffic during serving, which is
// what keeps the decode step capture-safe (the same discipline that
// certifies the training arena for step graphs). A request is admitted into
// a free slot, its prompt's K/V are written by prefill, each decode step
// appends one row per slot, and retirement just frees the slot — eviction
// is O(1) bookkeeping, the block is overwritten by the next occupant.
//
// The decode step always runs the FULL slot batch [slots, 1, H]: inactive
// slots carry attend_lens = 0 (their softmax rows are exact zeros and their
// outputs are ignored), so the step's kernel sequence and shapes are STATIC
// — the property that lets SessionConfig::graph_capture replay the
// steady-state decode loop as one graph launch.
//
// Encoder-decoder models additionally keep per-slot CROSS K/V blocks
// [slots, N, cross_len, D] (cross_len > 0): written once at encode time,
// read by every decode step — LightSeq's "compute the encoder projections
// once" serving trick.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ls2::infer {

struct KvCacheConfig {
  int64_t layers = 0;    ///< decoder blocks with a self-attention K/V pair
  int64_t heads = 0;
  int64_t head_dim = 0;
  int64_t slots = 0;     ///< max concurrently-resident sequences
  int64_t max_len = 0;   ///< per-sequence K/V capacity (prompt + generated)
  int64_t cross_len = 0; ///< >0: also hold per-slot cross K/V of this length
  DType dtype = DType::kF32;

  /// Total block bytes the cache reserves (self + cross K/V, all layers).
  size_t bytes() const;
};

class KvCache {
 public:
  /// Reserves every block up front from `alloc` (the session's permanent
  /// pool) and zero-fills them, so masked-off tail rows multiply through
  /// attention as exact zeros, never NaN-producing garbage.
  KvCache(KvCacheConfig cfg, BufferAllocator* alloc = nullptr);

  const KvCacheConfig& config() const { return cfg_; }

  // --- per-layer blocks (head layout) ---
  const Tensor& k(int64_t layer) const { return k_[static_cast<size_t>(layer)]; }
  const Tensor& v(int64_t layer) const { return v_[static_cast<size_t>(layer)]; }
  const Tensor& cross_k(int64_t layer) const { return cross_k_[static_cast<size_t>(layer)]; }
  const Tensor& cross_v(int64_t layer) const { return cross_v_[static_cast<size_t>(layer)]; }

  // --- decode-step views (i32 [slots], host-updated graph parameters) ---
  /// Append index per slot this step (= tokens already cached; 0 if free).
  const Tensor& positions() const { return positions_; }
  /// Rows the single query attends: positions + 1 for active slots, 0 for
  /// free ones (their softmax rows come out as exact zeros).
  const Tensor& attend_lens() const { return attend_lens_; }
  /// Per-slot encoder lengths (cross-attention mask; cross_len > 0 only).
  const Tensor& src_lens() const { return src_lens_; }

  // --- slot lifecycle (host bookkeeping, no kernels) ---
  /// Claim a free slot; -1 when every slot is occupied.
  int64_t acquire_slot();
  /// Retire a sequence: the slot becomes free immediately (its block is
  /// simply overwritten by the next occupant).
  void release_slot(int64_t slot);
  bool slot_active(int64_t slot) const { return active_[static_cast<size_t>(slot)]; }
  int64_t active_slots() const;
  int64_t free_slots() const { return cfg_.slots - active_slots(); }

  /// Cached length of a slot (prompt after prefill, +1 per decode commit).
  int32_t len(int64_t slot) const { return lens_[static_cast<size_t>(slot)]; }
  void set_len(int64_t slot, int32_t new_len);
  void set_src_len(int64_t slot, int32_t src_len);

  /// Refresh positions/attend_lens for the next decode step. Checks every
  /// active slot still has capacity (len < max_len).
  void begin_decode();
  /// Account the row each active slot appended during the decode step.
  void commit_decode();

  /// Free every slot and zero all lengths (blocks keep their bytes).
  void reset();

 private:
  KvCacheConfig cfg_;
  std::vector<Tensor> k_, v_, cross_k_, cross_v_;
  Tensor positions_, attend_lens_, src_lens_;  // heap i32 [slots]
  std::vector<int32_t> lens_, src_lens_host_;
  std::vector<bool> active_;
};

}  // namespace ls2::infer
