// Paged KV cache for incremental decoding (the serving half of the system;
// DESIGN.md §13).
//
// Every layer's keys/values live in a pool of fixed-size PAGES
// [total_pages, N, page_tokens, D], reserved ONCE at engine setup from the
// session's permanent pool — zero device malloc/free traffic during serving,
// which is what keeps the decode step capture-safe (the same discipline that
// certifies the training arena for step graphs). A sequence owns a BLOCK
// TABLE of page ids mapping logical token positions to pool pages, so the
// number of concurrently-resident sequences is bounded by LIVE tokens, not
// by `slots × worst-case length` — the vLLM-style fix for the serving memory
// wall (the generation-loop bottleneck FastSeq attacks).
//
// Pages are REFCOUNTED and shared copy-on-write: sequences with a common
// token prefix (system prompts, re-dispatch continuation prompts, forks)
// share the full pages covering that prefix. Sharing is bitwise-sound
// because causal self-attention makes the K/V row at position p a pure
// function of tokens [0, p] — identical prefix, identical FP32 rows. Only
// FULL pages are ever shared or registered; the partial tail page a decode
// step appends into is exclusively owned (extend() copies it first when a
// fork left it shared).
//
// Lifecycle API (replaces the retired acquire_slot/release_slot interface):
//
//   allocate(len, tokens)  claim a decode lane + pages for a `len`-token
//                          prompt; with `tokens` and prefix_sharing on, full
//                          pages of an already-registered prefix are reused
//                          (write_begin() tells prefill which rows to skip).
//   extend(h, kc)          make room for ONE appended token before a decode
//                          step: adds the next page at a page boundary,
//                          copy-on-writes a shared tail page. Host-side plus
//                          eager copy kernels — always OUTSIDE the captured
//                          decode region. false = pool exhausted (caller
//                          preempts or waits).
//   fork(h)                a new sequence sharing ALL of h's pages (+1 ref
//                          each) — the shared-prefix branch point.
//   free(h)                drop the lane and every page reference; a page
//                          returns to the pool at refcount 0.
//
// The decode step always runs the FULL lane batch [slots, 1, H]: inactive
// lanes carry attend_lens = 0 (their softmax rows are exact zeros, their
// appends land in a dedicated trash page) so the step's kernel sequence and
// shapes are STATIC — the property that lets SessionConfig::graph_capture
// replay the steady-state decode loop as one graph launch. The block table
// itself is a host-written heap i32 tensor [slots, pages_per_seq]: under
// replay it is a *graph parameter* read inside kernel bodies, exactly like
// positions/attend_lens. All page allocation and COW copies happen in
// extend(), before the captured region.
//
// Encoder-decoder models additionally keep per-lane CROSS K/V blocks
// [slots, N, cross_len, D] (cross_len > 0): written once at encode time,
// read by every decode step — bounded, write-once state that paging would
// not help, so it stays contiguous (out of paging scope).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "kernels/kernel_context.h"
#include "kernels/dropout.h"  // kern::Impl
#include "tensor/tensor.h"

namespace ls2::infer {

/// Default page size (tokens) for model-built cache configs: small enough
/// that short sequences strand little memory, large enough that the block
/// table and sharing registry stay tiny.
inline constexpr int64_t kDefaultPageTokens = 16;

struct KvCacheConfig {
  int64_t layers = 0;    ///< decoder blocks with a self-attention K/V pair
  int64_t heads = 0;
  int64_t head_dim = 0;
  int64_t slots = 0;     ///< decode lanes: the static decode batch width
  /// Per-sequence token capacity (prompt + generated) — the block table
  /// length is ceil(seq_tokens / page()).
  int64_t seq_tokens = 0;
  /// Tokens per page. 0 (or == seq_tokens): the degenerate one-page-per-
  /// sequence config — byte-identical layout to a contiguous cache, kept as
  /// the parity baseline.
  int64_t page_tokens = 0;
  /// Pool size in pages. 0: slots * pages_per_seq() — every lane can reach
  /// seq_tokens, no oversubscription. Smaller values oversubscribe: more
  /// lanes than worst-case memory, bounded by LIVE tokens (fig_page).
  int64_t total_pages = 0;
  /// Share full common-prefix pages between sequences (refcounted, COW).
  /// Requires prefill-after-allocate ordering per sequence (the batcher's
  /// admission order) so a registered page is written before the next
  /// allocate can hit it.
  bool prefix_sharing = false;
  int64_t cross_len = 0; ///< >0: also hold per-lane cross K/V of this length
  DType dtype = DType::kF32;

  int64_t page() const { return page_tokens > 0 ? page_tokens : seq_tokens; }
  int64_t pages_per_seq() const { return (seq_tokens + page() - 1) / page(); }
  int64_t pool_pages() const {
    return total_pages > 0 ? total_pages : slots * pages_per_seq();
  }
  /// Total reserved bytes (self K/V pool incl. the trash page, cross
  /// blocks, all layers).
  size_t bytes() const;
};

/// An opaque ticket for one resident sequence. Stale handles (freed, or
/// from before a reset) are detected and rejected by every accessor.
struct SequenceHandle {
  int64_t id = -1;
  bool valid() const { return id >= 0; }
};

class KvCache {
 public:
  /// Reserves the page pool (plus one trash page for inactive lanes) and
  /// the cross blocks up front from `alloc` (the session's permanent pool)
  /// and zero-fills them, so masked-off rows multiply through attention as
  /// exact zeros, never NaN-producing garbage.
  KvCache(KvCacheConfig cfg, BufferAllocator* alloc = nullptr);

  const KvCacheConfig& config() const { return cfg_; }

  // --- per-layer device state ---
  /// Self-attention page pool [pool_pages + 1, N, page, D] (the last page
  /// is the trash page inactive lanes append into).
  const Tensor& k_pool(int64_t layer) const { return k_[static_cast<size_t>(layer)]; }
  const Tensor& v_pool(int64_t layer) const { return v_[static_cast<size_t>(layer)]; }
  /// Contiguous per-lane cross K/V blocks [slots, N, cross_len, D].
  const Tensor& cross_k(int64_t layer) const { return cross_k_[static_cast<size_t>(layer)]; }
  const Tensor& cross_v(int64_t layer) const { return cross_v_[static_cast<size_t>(layer)]; }

  // --- decode-step views (host-written heap i32 — graph parameters) ---
  /// Block table [slots, pages_per_seq]: page id per (lane, logical page).
  /// Rows of free lanes (and entries past a sequence's allocation) point at
  /// the trash page.
  const Tensor& block_table() const { return block_table_; }
  /// Append index per lane this step (= tokens already cached; 0 if free).
  const Tensor& positions() const { return positions_; }
  /// Rows the single query attends: len + 1 for active lanes, 0 for free
  /// ones (their softmax rows come out as exact zeros).
  const Tensor& attend_lens() const { return attend_lens_; }
  /// Per-lane encoder lengths (cross-attention mask; cross_len > 0 only).
  const Tensor& src_lens() const { return src_lens_; }

  // --- sequence lifecycle (host bookkeeping + eager COW kernels) ---
  /// Claim a lane and pages for a `prompt_len`-token prompt about to be
  /// prefilled. With `tokens` (the prompt ids) and prefix_sharing on,
  /// registered full-prefix pages are reused instead of allocated —
  /// write_begin() then tells the prefill writer how many leading rows are
  /// already resident. Invalid handle when no lane or not enough pages.
  SequenceHandle allocate(int64_t prompt_len, const int32_t* tokens = nullptr);
  /// Make room for the token position len(h) is about to append: allocate
  /// the next page at a page boundary, or copy-on-write a tail page a fork
  /// still shares (eager kv_page_copy launches through `kc`). Idempotent
  /// per step; must precede begin_decode() for every active sequence.
  /// false: the pool is exhausted — preempt a sequence or wait.
  bool extend(SequenceHandle h, kern::KernelContext& kc, kern::Impl impl);
  /// A new sequence sharing every page of `h` copy-on-write (+1 refcount
  /// each; no bytes move). Invalid handle when no lane is free. Self-KV
  /// only: cross blocks are per-lane and are not forked.
  SequenceHandle fork(SequenceHandle h);
  /// Retire a sequence: drops every page reference (a page whose refcount
  /// reaches 0 returns to the pool and leaves the sharing registry).
  void free(SequenceHandle h);
  /// Free every sequence, clear the sharing registry, zero the stats.
  void reset();

  // --- queries ---
  bool valid(SequenceHandle h) const { return seqs_.count(h.id) > 0; }
  /// The decode lane this sequence occupies (its row in ids/logits/tables).
  int64_t lane(SequenceHandle h) const { return seq(h).lane; }
  /// Cached length (prompt after prefill, +1 per commit_decode).
  int32_t len(SequenceHandle h) const { return seq(h).len; }
  /// First row prefill must WRITE — earlier rows live in shared pages.
  int32_t write_begin(SequenceHandle h) const { return seq(h).write_begin; }
  /// Token capacity currently backed by pages (pages * page size).
  int64_t capacity(SequenceHandle h) const {
    return static_cast<int64_t>(seq(h).pages.size()) * cfg_.page();
  }
  void set_src_len(SequenceHandle h, int32_t src_len);

  int64_t active_seqs() const { return static_cast<int64_t>(seqs_.size()); }
  int64_t free_lanes() const { return cfg_.slots - active_seqs(); }
  int64_t free_pages() const { return static_cast<int64_t>(free_pages_.size()); }
  int64_t used_pages() const { return cfg_.pool_pages() - free_pages(); }
  /// Per-page reference counts (tests: refcount/COW invariants).
  const std::vector<int32_t>& page_refcounts() const { return refcount_; }

  /// Cumulative since the last reset() — the obs gauges/counters feed.
  struct Stats {
    int64_t pages_allocated = 0;   ///< fresh pages claimed from the pool
    int64_t prefill_pages = 0;     ///< fresh pages claimed by allocate()
    int64_t shared_page_hits = 0;  ///< pages reused from the prefix registry
    int64_t cow_copies = 0;        ///< tail pages copied on first write
    int64_t forks = 0;
    int64_t peak_used_pages = 0;
    int64_t peak_active_seqs = 0;
  };
  const Stats& stats() const { return stats_; }

  // --- per-step protocol ---
  /// Refresh positions/attend_lens for the next decode step. Every active
  /// sequence must still have capacity (len < seq_tokens) and must have
  /// been extend()ed so the append target page exists.
  void begin_decode();
  /// Account the row each active sequence appended during the decode step.
  void commit_decode();

 private:
  struct Sequence {
    int64_t lane = -1;
    int32_t len = 0;
    int32_t write_begin = 0;
    int32_t src_len = 0;
    std::vector<int32_t> pages;  ///< block table (host copy of the row)
  };

  const Sequence& seq(SequenceHandle h) const;
  Sequence& seq(SequenceHandle h);
  int64_t trash_page() const { return cfg_.pool_pages(); }
  int32_t pop_free_page();
  void drop_page_ref(int32_t page);
  /// Rewrite the lane's block-table tensor row from the sequence (or all
  /// trash when seq == nullptr).
  void sync_lane_row(int64_t lane, const Sequence* s);
  void note_usage_peaks();

  KvCacheConfig cfg_;
  std::vector<Tensor> k_, v_, cross_k_, cross_v_;
  Tensor block_table_;                         // heap i32 [slots, pages_per_seq]
  Tensor positions_, attend_lens_, src_lens_;  // heap i32 [slots]
  std::unordered_map<int64_t, Sequence> seqs_;
  std::vector<int64_t> lane_seq_;     ///< lane -> seq id (-1 free)
  std::vector<int32_t> free_pages_;   ///< LIFO free list
  std::vector<int32_t> refcount_;     ///< per usable page
  /// Exact token prefix (a multiple of page() long) -> the page holding its
  /// last page worth of K/V. Holds NO refcount: entries leave when their
  /// page dies (reverse map below).
  std::map<std::vector<int32_t>, int32_t> prefix_registry_;
  std::unordered_map<int32_t, std::vector<int32_t>> page_prefix_;
  int64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace ls2::infer
