// Replicated serving fleet (DESIGN.md §11): N ContinuousBatcher replicas —
// each with its own simulated device, KV cache, and arena — behind a router.
//
// The router owns the request lifecycle; replicas own slots and decode:
//
//   [dispatch]  arrivals go to a replica by policy — round-robin,
//               join-shortest-queue (queued + resident load), or HEDGED:
//               JSQ plus a duplicate dispatch to a second replica once a
//               request's first copy is outstanding past a latency
//               percentile of recent completions (the classic tail-at-scale
//               move); first copy to finish wins, the loser is cancelled.
//   [step]      discrete-event co-simulation: each iteration steps the
//               live replica with work whose device clock is furthest
//               behind, so the per-replica clocks interleave like real
//               concurrent servers and "fleet time" is their minimum.
//   [failure]   a replica whose step throws simgpu::DeviceLostError is dead:
//               its queued and resident requests are EVACUATED and
//               re-dispatched elsewhere. A resident's continuation prompt is
//               its original prompt + the tokens already generated — under
//               the (seed, step, slot) counter-RNG the re-prefill rebuilds
//               the KV bitwise (execute mode, FP32), so the regenerated
//               stream is token-exact with the unfaulted run. A replica
//               whose decode exhausts its transient-alloc retry budget is
//               QUARANTINED instead: evacuated, idled for a doubling
//               backoff, then eligible again — a flapping replica backs off
//               the rotation rather than monopolizing the queue.
//   [reload]    rolling zero-downtime reload: snapshot the parameters once
//               (core::AsyncCheckpointer::snapshot_params), then drain one
//               replica at a time — queue handed to its peers, residents
//               allowed to finish — restore the snapshot into it, and
//               rejoin. Zero requests dropped; the fleet never has fewer
//               than N-1 replicas admitting.
//
// Re-dispatch bookkeeping keeps the ORIGINAL arrival time on every hand-over
// (Request::enqueue_us carries the re-enqueue time), so queue-wait and p99
// statistics are never flattered by a failure — a re-dispatched request's
// latency includes everything since its first arrival.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/session.h"
#include "dist/failure.h"
#include "infer/batcher.h"
#include "simgpu/fault.h"

namespace ls2::infer {

enum class DispatchPolicy {
  kRoundRobin,         ///< rotate over live, admitting replicas
  kJoinShortestQueue,  ///< least queued+resident load; ties to lowest index
  kHedged,             ///< JSQ + tail-latency duplicate dispatch
};

struct FleetConfig {
  int replicas = 2;
  DispatchPolicy policy = DispatchPolicy::kJoinShortestQueue;

  /// Per-replica engine knobs (shedding, deadlines, decode retries).
  ServeConfig serve;
  /// Session template: mode/dtype/profile/heartbeat knobs, copied per
  /// replica. arena_bytes is sized by the fleet via serve_capacity_scan
  /// (continuation prompts can approach max_len, so the scan probes the
  /// worst case) unless set explicitly here.
  core::SessionConfig session;
  /// Every replica builds this model from `model_seed` — identical
  /// parameters, so any replica can continue any request.
  models::Gpt2Config model;
  uint64_t model_seed = 31;
  int64_t slots = 4;
  int64_t max_len = 144;
  /// Paged-KV overrides for every replica's cache. 0 keeps the model
  /// default page size; prefix_sharing lets a re-dispatched continuation
  /// (original prompt + generated prefix) reuse full pages that any earlier
  /// residency of the same stream already filled.
  int64_t page_tokens = 0;
  bool prefix_sharing = false;

  // --- hedging (policy == kHedged) ---
  /// Fire the duplicate when a dispatch is outstanding past this percentile
  /// of recent dispatch-to-done times.
  double hedge_percentile = 0.95;
  /// Floor for the hedge threshold (also the threshold until the ECDF has
  /// `hedge_min_completions` samples) — never hedge faster than this.
  double hedge_min_us = 2000.0;
  int64_t hedge_min_completions = 8;

  // --- router budgets ---
  /// Times one request may be re-dispatched (death, quarantine, drain,
  /// router timeout) before the router gives up and sheds it.
  int max_redispatch = 3;
  /// >0: a dispatch outstanding this long is cancelled and re-dispatched
  /// elsewhere (counts against max_redispatch). 0 = off.
  double request_timeout_us = 0;
  /// First quarantine idles the replica this long; doubles per repeat.
  double quarantine_base_us = 2000.0;

  /// >0: at this fleet time, start a rolling reload of every replica from a
  /// fresh parameter snapshot. 0 = never.
  double reload_at_us = 0;

  /// Per-replica fault plans (index = replica; missing/empty = fault-free).
  std::vector<simgpu::FaultPlan> fault_plans;

  /// Run the wall-clock dist::HeartbeatMonitor beside the simulation: live
  /// replicas beat each step, a dead one goes silent and is suspected. The
  /// watcher is real threads on real time, so the report only COUNTS
  /// suspicions — tests assert on it at the monitor level, not here.
  bool heartbeat = false;

  /// Record per-replica timelines so write_chrome_trace can merge them.
  bool record_timeline = false;
};

struct FleetReport {
  /// One entry per ORIGINAL request (router id order), stitched across every
  /// dispatch: tokens are the concatenation over re-dispatches, admitted /
  /// first-token times are the earliest, latency runs from first arrival.
  std::vector<RequestStats> requests;
  int64_t served = 0;  ///< completed (possibly after re-dispatch / partial)
  int64_t shed = 0;    ///< refused: engine shedding or router budget exhausted
  int64_t lost = 0;    ///< dropped with no completion and no shed — always 0
  // --- router events ---
  int64_t redispatches = 0;      ///< evacuation/timeout hand-overs
  int64_t deaths = 0;            ///< replicas lost to DeviceLostError
  int64_t quarantines = 0;       ///< retry-budget-exhausted backoffs
  int64_t reloads = 0;           ///< replicas rolled to the snapshot
  int64_t router_timeouts = 0;   ///< dispatches cancelled by request_timeout_us
  int64_t hedges_fired = 0;
  int64_t hedge_wins = 0;        ///< hedge copy finished first
  int64_t hedge_cancels = 0;     ///< loser copies cancelled (or too late)
  int64_t heartbeat_suspects = 0;
  // --- aggregates over all replicas ---
  int64_t decode_steps = 0;
  int64_t replayed_steps = 0;
  int64_t generated_tokens = 0;
  int64_t decode_retries = 0;
  double makespan_us = 0;      ///< max replica clock at drain
  double tokens_per_sec = 0;
  double p50_latency_us = 0, p99_latency_us = 0, mean_latency_us = 0;
  /// Per-replica engine reports (index = replica), for attribution.
  std::vector<ServeReport> replica_reports;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig cfg);
  ~Fleet();

  /// Serve every request to completion (or shed) across the fleet. One run
  /// per Fleet instance.
  FleetReport run(std::vector<Request> requests);

  /// Merge the per-replica timelines (busy/comm spans, fault/hedge instant
  /// markers) into one Chrome trace: one trace process per replica. Call
  /// after run(), with FleetConfig::record_timeline set.
  void write_chrome_trace(const std::string& path) const;

  int live_replicas() const;

 private:
  struct Replica {
    std::unique_ptr<core::Session> session;
    std::unique_ptr<models::Gpt2> model;
    std::unique_ptr<KvCache> cache;
    std::unique_ptr<ContinuousBatcher> engine;
    std::unique_ptr<simgpu::FaultInjector> injector;
    int64_t decode_steps = 0;  ///< injector arming counter (decode steps run)
    bool alive = true;
    int quarantines = 0;
    bool reloaded = false;
    ServeReport report;
  };

  /// A request as the router tracks it: the original plus everything
  /// accumulated across dispatches.
  struct Tracked {
    Request base;
    std::vector<int32_t> tokens;  ///< concatenated over dispatches
    double admitted_us = 0;       ///< earliest across dispatches
    double first_token_us = 0;
    int dispatches = 0;  ///< total submits (first + re-dispatches + hedges)
    int redispatches = 0;
    bool hedged = false;
    bool done = false, shed = false, deadline_retired = false;
    double done_us = 0;
  };

  /// One in-flight submission of a tracked request to a replica.
  struct Dispatch {
    int64_t dispatch_id = 0;
    size_t tracked = 0;  ///< index into tracked_
    int replica = 0;
    double dispatched_us = 0;
    bool hedge = false;  ///< a duplicate copy, not the primary
  };

  double fleet_now() const;
  /// Policy choice among live, admitting replicas; `avoid` (>=0) is
  /// excluded (the hedge's primary / the evacuated replica when possible).
  int pick_replica(int avoid) const;
  bool admitting(const Replica& r) const;
  void dispatch_to(size_t tracked, int replica, double now, bool hedge);
  /// Re-dispatch an evacuated/timed-out request: continuation prompt =
  /// original prompt + accumulated tokens; sheds when the budget is spent.
  void redispatch(size_t tracked, int from_replica, double now);
  void absorb_partial(Dispatch& d, const RequestStats& partial);
  void handle_completions(int replica, double now);
  void hedge_scan(double now);
  void timeout_scan(double now);
  void reload_tick(double now);
  void step_replica(int r);
  void finalize(FleetReport& out);

  FleetConfig cfg_;
  std::vector<Replica> replicas_;
  std::vector<Tracked> tracked_;
  std::vector<Dispatch> inflight_;
  std::vector<size_t> router_backlog_;  ///< tracked indices awaiting a replica
  std::vector<double> dispatch_latencies_;  ///< dispatch-to-done ECDF feed
  int64_t next_dispatch_id_ = 1;
  int rr_next_ = 0;
  int64_t completed_ = 0;
  // rolling-reload state machine
  core::CheckpointSnapshot reload_snap_;
  int reload_index_ = -1;  ///< replica currently draining; -1 = idle/done
  bool reload_started_ = false;
  std::unique_ptr<dist::HeartbeatMonitor> monitor_;
  FleetReport report_;
  bool ran_ = false;
  /// Fleet-level rolling SLO (prefix "fleet"): end-to-end latency from the
  /// ORIGINAL arrival across re-dispatches — the client's view, where the
  /// per-replica monitors see only their own slice. Engaged when the
  /// session template carries a MetricsRegistry.
  std::optional<obs::SloMonitor> slo_;
  /// The shared registry (via any replica's session), or null.
  obs::MetricsRegistry* metrics() const;
};

}  // namespace ls2::infer
