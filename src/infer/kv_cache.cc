#include "infer/kv_cache.h"

#include <algorithm>

#include "common/check.h"
#include "kernels/transform.h"

namespace ls2::infer {

size_t KvCacheConfig::bytes() const {
  const size_t e = dtype_size(dtype);
  const size_t page_bytes = static_cast<size_t>(heads * page() * head_dim) * e;
  const size_t self_pool = static_cast<size_t>(pool_pages() + 1) * page_bytes;
  const size_t cross_block =
      static_cast<size_t>(slots * heads * cross_len * head_dim) * e;
  return static_cast<size_t>(layers) * 2 * (self_pool + cross_block);
}

KvCache::KvCache(KvCacheConfig cfg, BufferAllocator* alloc) : cfg_(cfg) {
  LS2_CHECK(cfg.layers > 0 && cfg.heads > 0 && cfg.head_dim > 0);
  LS2_CHECK(cfg.slots > 0 && cfg.seq_tokens > 0);
  LS2_CHECK(cfg.page() > 0 && cfg.page() <= cfg.seq_tokens)
      << "page_tokens " << cfg.page_tokens << " exceeds seq_tokens "
      << cfg.seq_tokens;
  LS2_CHECK(cfg.pool_pages() >= cfg.pages_per_seq())
      << "pool too small for even one full sequence";
  // +1: the trash page free lanes append into during the static-batch
  // decode step.
  const Shape pool_shape{cfg.pool_pages() + 1, cfg.heads, cfg.page(),
                         cfg.head_dim};
  for (int64_t i = 0; i < cfg.layers; ++i) {
    k_.push_back(Tensor::empty(pool_shape, cfg.dtype, alloc));
    v_.push_back(Tensor::empty(pool_shape, cfg.dtype, alloc));
    k_.back().zero_();
    v_.back().zero_();
    if (cfg.cross_len > 0) {
      const Shape cross_shape{cfg.slots, cfg.heads, cfg.cross_len, cfg.head_dim};
      cross_k_.push_back(Tensor::empty(cross_shape, cfg.dtype, alloc));
      cross_v_.push_back(Tensor::empty(cross_shape, cfg.dtype, alloc));
      cross_k_.back().zero_();
      cross_v_.back().zero_();
    }
  }
  // Step views are host-written metadata (graph parameters under replay):
  // always heap-backed, even when the pools live in virtual model-only
  // memory.
  block_table_ = Tensor::zeros({cfg.slots, cfg.pages_per_seq()}, DType::kI32);
  positions_ = Tensor::zeros({cfg.slots}, DType::kI32);
  attend_lens_ = Tensor::zeros({cfg.slots}, DType::kI32);
  src_lens_ = Tensor::zeros({cfg.slots}, DType::kI32);
  lane_seq_.assign(static_cast<size_t>(cfg.slots), -1);
  refcount_.assign(static_cast<size_t>(cfg.pool_pages()), 0);
  free_pages_.reserve(static_cast<size_t>(cfg.pool_pages()));
  // LIFO popped from the back — seed in reverse so page 0 pops first
  // (deterministic layouts in tests and goldens).
  for (int32_t p = static_cast<int32_t>(cfg.pool_pages()) - 1; p >= 0; --p)
    free_pages_.push_back(p);
  for (int64_t lane = 0; lane < cfg.slots; ++lane) sync_lane_row(lane, nullptr);
}

const KvCache::Sequence& KvCache::seq(SequenceHandle h) const {
  auto it = seqs_.find(h.id);
  LS2_CHECK(it != seqs_.end()) << "stale or invalid sequence handle " << h.id;
  return it->second;
}

KvCache::Sequence& KvCache::seq(SequenceHandle h) {
  auto it = seqs_.find(h.id);
  LS2_CHECK(it != seqs_.end()) << "stale or invalid sequence handle " << h.id;
  return it->second;
}

int32_t KvCache::pop_free_page() {
  if (free_pages_.empty()) return -1;
  const int32_t p = free_pages_.back();
  free_pages_.pop_back();
  return p;
}

void KvCache::drop_page_ref(int32_t page) {
  auto& rc = refcount_[static_cast<size_t>(page)];
  LS2_CHECK(rc > 0);
  if (--rc == 0) {
    auto it = page_prefix_.find(page);
    if (it != page_prefix_.end()) {
      prefix_registry_.erase(it->second);
      page_prefix_.erase(it);
    }
    free_pages_.push_back(page);
  }
}

void KvCache::sync_lane_row(int64_t lane, const Sequence* s) {
  const int64_t pps = cfg_.pages_per_seq();
  int32_t* row = block_table_.data<int32_t>() + lane * pps;
  const int32_t trash = static_cast<int32_t>(trash_page());
  std::fill(row, row + pps, trash);
  if (s != nullptr)
    std::copy(s->pages.begin(), s->pages.end(), row);
}

void KvCache::note_usage_peaks() {
  stats_.peak_used_pages = std::max(stats_.peak_used_pages, used_pages());
  stats_.peak_active_seqs = std::max(stats_.peak_active_seqs, active_seqs());
}

SequenceHandle KvCache::allocate(int64_t prompt_len, const int32_t* tokens) {
  LS2_CHECK(prompt_len >= 1 && prompt_len <= cfg_.seq_tokens)
      << "prompt length " << prompt_len << " exceeds sequence capacity "
      << cfg_.seq_tokens;
  int64_t lane = -1;
  for (int64_t l = 0; l < cfg_.slots; ++l) {
    if (lane_seq_[static_cast<size_t>(l)] < 0) { lane = l; break; }
  }
  if (lane < 0) return {};

  const int64_t page = cfg_.page();
  const int64_t pages_needed = (prompt_len + page - 1) / page;
  const int64_t full_pages = prompt_len / page;

  // Longest registered prefix, one full page at a time. The chain stops at
  // the first unregistered depth: a live deeper page always keeps its
  // shallower prefix pages alive (sharing is prefix-contiguous), so no
  // deeper match can be reachable past a hole.
  std::vector<int32_t> shared;
  if (cfg_.prefix_sharing && tokens != nullptr) {
    std::vector<int32_t> key;
    key.reserve(static_cast<size_t>(full_pages * page));
    for (int64_t j = 0; j < full_pages; ++j) {
      key.insert(key.end(), tokens + j * page, tokens + (j + 1) * page);
      auto it = prefix_registry_.find(key);
      if (it == prefix_registry_.end()) break;
      shared.push_back(it->second);
    }
  }
  const int64_t fresh_needed = pages_needed - static_cast<int64_t>(shared.size());
  if (static_cast<int64_t>(free_pages_.size()) < fresh_needed) return {};

  // Point of no return: claim references and pages.
  Sequence s;
  s.lane = lane;
  s.len = static_cast<int32_t>(prompt_len);
  s.write_begin = static_cast<int32_t>(shared.size()) * static_cast<int32_t>(page);
  s.pages.reserve(static_cast<size_t>(pages_needed));
  for (int32_t p : shared) {
    ++refcount_[static_cast<size_t>(p)];
    s.pages.push_back(p);
  }
  stats_.shared_page_hits += static_cast<int64_t>(shared.size());
  for (int64_t j = 0; j < fresh_needed; ++j) {
    const int32_t p = pop_free_page();
    refcount_[static_cast<size_t>(p)] = 1;
    s.pages.push_back(p);
  }
  stats_.pages_allocated += fresh_needed;
  stats_.prefill_pages += fresh_needed;

  // Register the full pages THIS prefill is about to fill, so the next
  // allocate with the same prefix shares them. Valid because callers
  // prefill each sequence before the next allocate (admission ordering).
  if (cfg_.prefix_sharing && tokens != nullptr) {
    std::vector<int32_t> key(tokens, tokens + static_cast<int64_t>(shared.size()) * page);
    for (int64_t j = static_cast<int64_t>(shared.size()); j < full_pages; ++j) {
      key.insert(key.end(), tokens + j * page, tokens + (j + 1) * page);
      const int32_t p = s.pages[static_cast<size_t>(j)];
      auto [it, inserted] = prefix_registry_.emplace(key, p);
      if (inserted) page_prefix_.emplace(p, key);
    }
  }

  const int64_t id = next_id_++;
  lane_seq_[static_cast<size_t>(lane)] = id;
  sync_lane_row(lane, &s);
  seqs_.emplace(id, std::move(s));
  note_usage_peaks();
  return {id};
}

bool KvCache::extend(SequenceHandle h, kern::KernelContext& kc, kern::Impl impl) {
  Sequence& s = seq(h);
  LS2_CHECK(s.len < cfg_.seq_tokens)
      << "sequence at lane " << s.lane << " is full (" << s.len << "/"
      << cfg_.seq_tokens << ") — retire or cap generation length";
  const int64_t page = cfg_.page();
  const int64_t page_idx = s.len / page;  // page holding the next append row
  LS2_CHECK(page_idx <= static_cast<int64_t>(s.pages.size()));
  if (page_idx == static_cast<int64_t>(s.pages.size())) {
    // Page boundary: the append row starts a page the sequence doesn't own.
    const int32_t p = pop_free_page();
    if (p < 0) return false;
    refcount_[static_cast<size_t>(p)] = 1;
    s.pages.push_back(p);
    ++stats_.pages_allocated;
  } else {
    const int32_t tail = s.pages[static_cast<size_t>(page_idx)];
    if (refcount_[static_cast<size_t>(tail)] > 1) {
      // Copy-on-write: a fork (or shared prefix ending mid-page) still
      // references the tail page this step will scribble into. Copy the
      // rows written so far into a private page — eager launches, safely
      // outside any captured decode region.
      const int32_t p = pop_free_page();
      if (p < 0) return false;
      const int64_t rows = s.len % page;
      for (int64_t i = 0; i < cfg_.layers; ++i)
        kern::kv_page_copy(kc, impl, k_[static_cast<size_t>(i)],
                           v_[static_cast<size_t>(i)], tail, p, rows);
      refcount_[static_cast<size_t>(p)] = 1;
      drop_page_ref(tail);
      s.pages[static_cast<size_t>(page_idx)] = p;
      ++stats_.cow_copies;
      ++stats_.pages_allocated;
    } else {
      return true;  // private page with room — nothing to do
    }
  }
  sync_lane_row(s.lane, &s);
  note_usage_peaks();
  return true;
}

SequenceHandle KvCache::fork(SequenceHandle h) {
  LS2_CHECK(cfg_.cross_len == 0)
      << "fork() is self-attention-only: cross blocks are per-lane state";
  const Sequence& src = seq(h);
  int64_t lane = -1;
  for (int64_t l = 0; l < cfg_.slots; ++l) {
    if (lane_seq_[static_cast<size_t>(l)] < 0) { lane = l; break; }
  }
  if (lane < 0) return {};
  Sequence s;
  s.lane = lane;
  s.len = src.len;
  s.write_begin = src.len;  // the whole history is resident — nothing to prefill
  s.pages = src.pages;
  for (int32_t p : s.pages) ++refcount_[static_cast<size_t>(p)];
  ++stats_.forks;
  const int64_t id = next_id_++;
  lane_seq_[static_cast<size_t>(lane)] = id;
  sync_lane_row(lane, &s);
  seqs_.emplace(id, std::move(s));
  note_usage_peaks();
  return {id};
}

void KvCache::free(SequenceHandle h) {
  auto it = seqs_.find(h.id);
  LS2_CHECK(it != seqs_.end()) << "stale or invalid sequence handle " << h.id;
  Sequence& s = it->second;
  for (int32_t p : s.pages) drop_page_ref(p);
  lane_seq_[static_cast<size_t>(s.lane)] = -1;
  sync_lane_row(s.lane, nullptr);
  src_lens_.data<int32_t>()[s.lane] = 0;
  seqs_.erase(it);
}

void KvCache::reset() {
  seqs_.clear();
  std::fill(lane_seq_.begin(), lane_seq_.end(), -1);
  std::fill(refcount_.begin(), refcount_.end(), 0);
  free_pages_.clear();
  for (int32_t p = static_cast<int32_t>(cfg_.pool_pages()) - 1; p >= 0; --p)
    free_pages_.push_back(p);
  prefix_registry_.clear();
  page_prefix_.clear();
  for (int64_t lane = 0; lane < cfg_.slots; ++lane) sync_lane_row(lane, nullptr);
  src_lens_.zero_();  // the tensor view must track (prefill reads it directly)
  stats_ = Stats{};
}

void KvCache::set_src_len(SequenceHandle h, int32_t src_len) {
  LS2_CHECK(cfg_.cross_len > 0) << "cache has no cross blocks";
  LS2_CHECK(src_len >= 0 && src_len <= cfg_.cross_len);
  Sequence& s = seq(h);
  s.src_len = src_len;
  // The tensor view must track immediately: decoder PREFILL reads it for
  // the cross-attention mask before any begin_decode refresh runs.
  src_lens_.data<int32_t>()[s.lane] = src_len;
}

void KvCache::begin_decode() {
  int32_t* pp = positions_.data<int32_t>();
  int32_t* ap = attend_lens_.data<int32_t>();
  int32_t* sp = src_lens_.data<int32_t>();
  for (int64_t lane = 0; lane < cfg_.slots; ++lane) {
    const int64_t id = lane_seq_[static_cast<size_t>(lane)];
    if (id >= 0) {
      const Sequence& s = seqs_.at(id);
      LS2_CHECK(s.len < cfg_.seq_tokens)
          << "sequence at lane " << lane << " is full (" << s.len << "/"
          << cfg_.seq_tokens << ") — retire or cap generation length";
      LS2_CHECK(s.len / cfg_.page() < static_cast<int64_t>(s.pages.size()))
          << "append row unbacked — extend() must run before begin_decode()";
      pp[lane] = s.len;
      ap[lane] = s.len + 1;
      sp[lane] = s.src_len;
    } else {
      // Free lanes decode garbage into the trash page and attend nothing:
      // their softmax rows are exact zeros and the engine ignores their
      // output.
      pp[lane] = 0;
      ap[lane] = 0;
      sp[lane] = 0;
    }
  }
}

void KvCache::commit_decode() {
  for (int64_t id : lane_seq_) {
    if (id >= 0) ++seqs_.at(id).len;
  }
}

}  // namespace ls2::infer
