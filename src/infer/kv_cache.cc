#include "infer/kv_cache.h"

#include <algorithm>

#include "common/check.h"

namespace ls2::infer {

size_t KvCacheConfig::bytes() const {
  const size_t e = dtype_size(dtype);
  const size_t self_block =
      static_cast<size_t>(slots * heads * max_len * head_dim) * e;
  const size_t cross_block =
      static_cast<size_t>(slots * heads * cross_len * head_dim) * e;
  return static_cast<size_t>(layers) * 2 * (self_block + cross_block);
}

KvCache::KvCache(KvCacheConfig cfg, BufferAllocator* alloc) : cfg_(cfg) {
  LS2_CHECK(cfg.layers > 0 && cfg.heads > 0 && cfg.head_dim > 0);
  LS2_CHECK(cfg.slots > 0 && cfg.max_len > 0);
  const Shape self_shape{cfg.slots, cfg.heads, cfg.max_len, cfg.head_dim};
  for (int64_t i = 0; i < cfg.layers; ++i) {
    k_.push_back(Tensor::empty(self_shape, cfg.dtype, alloc));
    v_.push_back(Tensor::empty(self_shape, cfg.dtype, alloc));
    k_.back().zero_();
    v_.back().zero_();
    if (cfg.cross_len > 0) {
      const Shape cross_shape{cfg.slots, cfg.heads, cfg.cross_len, cfg.head_dim};
      cross_k_.push_back(Tensor::empty(cross_shape, cfg.dtype, alloc));
      cross_v_.push_back(Tensor::empty(cross_shape, cfg.dtype, alloc));
      cross_k_.back().zero_();
      cross_v_.back().zero_();
    }
  }
  // Step views are host-written metadata (graph parameters under replay):
  // always heap-backed, even when the blocks live in virtual model-only
  // memory.
  positions_ = Tensor::zeros({cfg.slots}, DType::kI32);
  attend_lens_ = Tensor::zeros({cfg.slots}, DType::kI32);
  src_lens_ = Tensor::zeros({cfg.slots}, DType::kI32);
  lens_.assign(static_cast<size_t>(cfg.slots), 0);
  src_lens_host_.assign(static_cast<size_t>(cfg.slots), 0);
  active_.assign(static_cast<size_t>(cfg.slots), false);
}

int64_t KvCache::acquire_slot() {
  for (int64_t s = 0; s < cfg_.slots; ++s) {
    if (!active_[static_cast<size_t>(s)]) {
      active_[static_cast<size_t>(s)] = true;
      lens_[static_cast<size_t>(s)] = 0;
      return s;
    }
  }
  return -1;
}

void KvCache::release_slot(int64_t slot) {
  LS2_CHECK(slot >= 0 && slot < cfg_.slots);
  active_[static_cast<size_t>(slot)] = false;
  lens_[static_cast<size_t>(slot)] = 0;
  src_lens_host_[static_cast<size_t>(slot)] = 0;
  src_lens_.data<int32_t>()[slot] = 0;
}

int64_t KvCache::active_slots() const {
  int64_t n = 0;
  for (bool a : active_) n += a ? 1 : 0;
  return n;
}

void KvCache::set_len(int64_t slot, int32_t new_len) {
  LS2_CHECK(slot >= 0 && slot < cfg_.slots && active_[static_cast<size_t>(slot)]);
  LS2_CHECK(new_len >= 0 && new_len <= cfg_.max_len)
      << "slot length " << new_len << " exceeds cache capacity " << cfg_.max_len;
  lens_[static_cast<size_t>(slot)] = new_len;
}

void KvCache::set_src_len(int64_t slot, int32_t src_len) {
  LS2_CHECK(cfg_.cross_len > 0) << "cache has no cross blocks";
  LS2_CHECK(slot >= 0 && slot < cfg_.slots);
  LS2_CHECK(src_len >= 0 && src_len <= cfg_.cross_len);
  src_lens_host_[static_cast<size_t>(slot)] = src_len;
  // The tensor view must track immediately: decoder PREFILL reads it for
  // the cross-attention mask before any begin_decode refresh runs.
  src_lens_.data<int32_t>()[slot] = src_len;
}

void KvCache::begin_decode() {
  int32_t* pp = positions_.data<int32_t>();
  int32_t* ap = attend_lens_.data<int32_t>();
  int32_t* sp = src_lens_.data<int32_t>();
  for (int64_t s = 0; s < cfg_.slots; ++s) {
    const size_t i = static_cast<size_t>(s);
    if (active_[i]) {
      LS2_CHECK(lens_[i] < cfg_.max_len)
          << "slot " << s << " is full (" << lens_[i] << "/" << cfg_.max_len
          << ") — retire or cap generation length";
      pp[s] = lens_[i];
      ap[s] = lens_[i] + 1;
      sp[s] = src_lens_host_[i];
    } else {
      // Free slots decode garbage into row 0 and attend nothing: their
      // softmax rows are exact zeros and the engine ignores their output.
      pp[s] = 0;
      ap[s] = 0;
      sp[s] = 0;
    }
  }
}

void KvCache::commit_decode() {
  for (int64_t s = 0; s < cfg_.slots; ++s) {
    const size_t i = static_cast<size_t>(s);
    if (active_[i]) ++lens_[i];
  }
}

void KvCache::reset() {
  std::fill(active_.begin(), active_.end(), false);
  std::fill(lens_.begin(), lens_.end(), 0);
  std::fill(src_lens_host_.begin(), src_lens_host_.end(), 0);
  src_lens_.zero_();  // the tensor view must track (prefill reads it directly)
}

}  // namespace ls2::infer
