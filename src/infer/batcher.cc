#include "infer/batcher.h"

#include <algorithm>
#include <cmath>

#include "memory/device_allocator.h"
#include "memory/measuring_allocator.h"

namespace ls2::infer {

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

/// Deterministic stand-in token for model-only runs (no real logits): keeps
/// the control flow identical across eager and replayed serving.
int32_t synth_token(int64_t slot, int64_t generated, int64_t vocab) {
  return static_cast<int32_t>(3 + (slot * 131 + generated * 7) % std::max<int64_t>(vocab - 3, 1));
}

}  // namespace

ContinuousBatcher::ContinuousBatcher(core::Session& session, models::Gpt2& model,
                                     KvCache& cache, ServeConfig cfg)
    : session_(&session), model_(&model), cache_(&cache), cfg_(cfg), gen_(cfg.sampling) {}

int32_t ContinuousBatcher::harvest_token(const Tensor& sampled, int64_t row, int64_t slot,
                                         int64_t generated) const {
  if (session_->device().mode() == simgpu::ExecMode::kExecute) {
    return sampled.data<int32_t>()[row];
  }
  return synth_token(slot, generated, model_->config().vocab);
}

void ContinuousBatcher::admit(size_t r, int64_t slot) {
  auto& ctx = session_->ctx();
  auto& dev = session_->device();
  const Request& req = reqs_[r];
  const int64_t Lp = static_cast<int64_t>(req.prompt.size());
  const int64_t V = model_->config().vocab;
  LS2_CHECK(Lp > 0 && Lp < cache_->config().max_len)
      << "prompt must fit the cache with room to generate";

  RequestStats& st = stats_[r];
  st.id = req.id;
  st.arrival_us = req.arrival_us;
  st.admitted_us = dev.clock_us();
  st.prompt_len = Lp;

  // Host-written metadata tensors stay heap-backed (real even in model-only
  // sessions); activations inside prefill come from the session arena.
  Tensor ids = Tensor::empty({1, Lp}, DType::kI32);
  std::vector<float> host(req.prompt.begin(), req.prompt.end());
  ids.copy_from(host);
  {
    simgpu::ScopedRange range(dev, "serve.prefill");
    Tensor logits = model_->prefill(ctx, ids, cache_, {slot});  // [1, Lp, V]
    cache_->set_len(slot, static_cast<int32_t>(Lp));
    Tensor last = logits.view({Lp, V}).slice(Lp - 1, Lp);  // next-token logits
    Tensor first_tok = Tensor::zeros({1}, DType::kI32);
    gen_.next_tokens(ctx.kern, ctx.policy.softmax, last, first_tok);
    const int32_t tok = harvest_token(first_tok, 0, slot, 0);
    st.tokens.push_back(tok);
    st.first_token_us = dev.clock_us();
    ++report_->prefills;
    ++report_->generated_tokens;
    slots_[static_cast<size_t>(slot)] = SlotState{static_cast<int64_t>(r), 1, tok};
  }
  const bool finished = reqs_[r].gen_len <= 1 ||
                        (cfg_.eos_id >= 0 &&
                         session_->device().mode() == simgpu::ExecMode::kExecute &&
                         slots_[static_cast<size_t>(slot)].next_token == cfg_.eos_id);
  if (finished) {
    st.done_us = dev.clock_us();
    st.generated = 1;
    cache_->release_slot(slot);
    slots_[static_cast<size_t>(slot)] = SlotState{};
    ++done_;
  }
}

void ContinuousBatcher::shed(size_t r, double now) {
  RequestStats& st = stats_[r];
  st.id = reqs_[r].id;
  st.arrival_us = reqs_[r].arrival_us;
  st.prompt_len = static_cast<int64_t>(reqs_[r].prompt.size());
  st.shed = true;
  st.done_us = now;
  ++report_->shed_requests;
  ++done_;
}

void ContinuousBatcher::run_admissions(size_t& next_req) {
  const double now = session_->device().clock_us();
  size_t arrived_end = next_req;
  while (arrived_end < reqs_.size() && reqs_[arrived_end].arrival_us <= now) ++arrived_end;

  // Oldest first: shed the timed-out, admit the rest into free slots.
  while (next_req < arrived_end) {
    if (stats_[next_req].shed) {
      ++next_req;
      continue;
    }
    if (cfg_.admission_timeout_us > 0 &&
        now - reqs_[next_req].arrival_us > cfg_.admission_timeout_us) {
      shed(next_req++, now);
      continue;
    }
    const int64_t slot = cache_->acquire_slot();
    if (slot < 0) break;  // batch full — the rest queue (or shed below)
    admit(next_req++, slot);
  }

  // Backpressure: bound the waiting line by rejecting the NEWEST arrivals —
  // the oldest waiters keep their place, so admitted-queue time stays
  // bounded instead of growing with the burst.
  if (cfg_.max_queue > 0) {
    int64_t waiting = 0;
    for (size_t i = next_req; i < arrived_end; ++i)
      if (!stats_[i].shed) ++waiting;
    for (size_t i = arrived_end; waiting > cfg_.max_queue && i > next_req;) {
      --i;
      if (!stats_[i].shed) {
        shed(i, now);
        --waiting;
      }
    }
  }
}

ServeReport ContinuousBatcher::serve(std::vector<Request> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.arrival_us < b.arrival_us; });
  auto& dev = session_->device();
  auto& ctx = session_->ctx();
  const int64_t S = cache_->config().slots;
  const bool execute = dev.mode() == simgpu::ExecMode::kExecute;

  ServeReport report;
  reqs_ = std::move(requests);
  slots_.assign(static_cast<size_t>(S), SlotState{});
  stats_.assign(reqs_.size(), RequestStats{});
  report_ = &report;
  done_ = 0;
  cache_->reset();

  Tensor ids = Tensor::zeros({S, 1}, DType::kI32);       // decode-step inputs
  Tensor sampled = Tensor::zeros({S}, DType::kI32);      // decode-step outputs
  size_t next_req = 0;
  const double start_us = dev.clock_us();

  while (done_ < static_cast<int64_t>(reqs_.size())) {
    // --- admissions (eager; never part of the captured region) ---
    const bool may_admit =
        cfg_.mode == BatchMode::kContinuous || cache_->active_slots() == 0;
    if (may_admit) run_admissions(next_req);
    if (cache_->active_slots() == 0) {
      if (done_ >= static_cast<int64_t>(reqs_.size())) break;
      LS2_CHECK(next_req < reqs_.size());
      // Nothing resident: idle until the next arrival.
      const double wait = reqs_[next_req].arrival_us - dev.clock_us();
      if (wait > 0) dev.advance(wait, /*busy=*/false, "serve.idle");
      continue;
    }

    // --- one static-shape decode step over every slot ---
    {
      int32_t* ip = ids.data<int32_t>();
      for (int64_t s = 0; s < S; ++s) {
        ip[s] = slots_[static_cast<size_t>(s)].req >= 0
                    ? slots_[static_cast<size_t>(s)].next_token
                    : model_->config().pad_id;
      }
      // A transient allocation failure (injected or real) aborts the
      // attempt — the graph guard abandons any open capture/replay, the
      // arena rewinds via end_step — and the step reruns after a doubling
      // idle backoff. KvCache state is untouched until commit_decode, so a
      // rerun is exact. The retry budget bounds how long a request can be
      // stalled by a flapping fault before the error surfaces.
      int attempts = 0;
      for (;;) {
        try {
          cache_->begin_decode();
          const core::GraphAction act = session_->begin_decode_step();
          struct GraphGuard {
            simgpu::Device& dev;
            bool active = false;
            ~GraphGuard() {
              if (active) dev.abort_graph();
            }
          } guard{dev};
          if (act == core::GraphAction::kCapture) {
            dev.begin_capture();
            guard.active = true;
          } else if (act == core::GraphAction::kReplay) {
            dev.begin_replay(*session_->step_graph());
            guard.active = true;
          }
          {
            simgpu::ScopedRange range(dev, "serve.decode");
            Tensor logits = model_->decode_step(ctx, ids, *cache_);  // [S, V]
            gen_.next_tokens(ctx.kern, ctx.policy.softmax, logits, sampled);
          }
          if (act == core::GraphAction::kCapture) {
            session_->store_graph(dev.end_capture());
            guard.active = false;
          } else if (act == core::GraphAction::kReplay) {
            dev.end_replay();
            guard.active = false;
            ++report.replayed_steps;
          }
          break;
        } catch (const mem::TransientAllocFailure&) {
          if (++attempts > cfg_.decode_retries) throw;
          ++report.decode_retries;
          session_->end_step();  // rewind the aborted attempt's arena state
          const double backoff =
              cfg_.retry_backoff_us * static_cast<double>(1 << (attempts - 1));
          if (backoff > 0) dev.advance(backoff, /*busy=*/false, "serve.retry_backoff");
        }
      }
      cache_->commit_decode();
      ++report.decode_steps;

      // --- harvest and retire ---
      for (int64_t s = 0; s < S; ++s) {
        SlotState& ss = slots_[static_cast<size_t>(s)];
        if (ss.req < 0) continue;
        const int32_t tok = harvest_token(sampled, s, s, ss.generated);
        stats_[static_cast<size_t>(ss.req)].tokens.push_back(tok);
        ++ss.generated;
        ++report.generated_tokens;
        // Retire at the request's cap, at EOS, or when the slot's K/V block
        // is full — capacity caps generation rather than crashing the step.
        const bool natural =
            ss.generated >= reqs_[static_cast<size_t>(ss.req)].gen_len ||
            (execute && cfg_.eos_id >= 0 && tok == cfg_.eos_id) ||
            cache_->len(s) >= cache_->config().max_len;
        // Deadline degradation: past the SLO, ship the partial answer now.
        const bool expired =
            !natural && cfg_.deadline_us > 0 &&
            dev.clock_us() - reqs_[static_cast<size_t>(ss.req)].arrival_us >=
                cfg_.deadline_us;
        const bool finished = natural || expired;
        if (finished) {
          RequestStats& st = stats_[static_cast<size_t>(ss.req)];
          st.done_us = dev.clock_us();
          st.generated = ss.generated;
          if (expired) {
            st.deadline_retired = true;
            ++report.deadline_retired;
          }
          cache_->release_slot(s);
          ss = SlotState{};
          ++done_;
        } else {
          ss.next_token = tok;
        }
      }
    }
    session_->end_step();  // arena rewind + per-step RNG advance
  }

  report.makespan_us = dev.clock_us() - start_us;
  report.tokens_per_sec = report.makespan_us > 0
                              ? static_cast<double>(report.generated_tokens) /
                                    (report.makespan_us * 1e-6)
                              : 0;
  std::vector<double> lat;
  lat.reserve(stats_.size());
  double sum = 0;
  for (const RequestStats& st : stats_) {
    if (st.shed) continue;  // got an error, not a latency
    lat.push_back(st.latency_us());
    sum += st.latency_us();
  }
  report.served = static_cast<int64_t>(lat.size());
  report.p50_latency_us = percentile(lat, 0.50);
  report.p99_latency_us = percentile(lat, 0.99);
  report.mean_latency_us = lat.empty() ? 0 : sum / static_cast<double>(lat.size());
  report.requests = std::move(stats_);
  report_ = nullptr;
  return report;
}

std::vector<Request> poisson_requests(int64_t n, double rate_per_sec, int64_t prompt_lo,
                                      int64_t prompt_hi, int64_t gen_lo, int64_t gen_hi,
                                      int64_t vocab, uint64_t seed) {
  LS2_CHECK(rate_per_sec > 0 && n > 0);
  LS2_CHECK(prompt_lo >= 1 && prompt_hi >= prompt_lo && gen_lo >= 1 && gen_hi >= gen_lo);
  Rng rng(seed);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<size_t>(n));
  double t_us = 0;
  const double mean_gap_us = 1e6 / rate_per_sec;
  for (int64_t i = 0; i < n; ++i) {
    // Exponential inter-arrival gaps -> Poisson process.
    const double u = std::max(1e-12, 1.0 - static_cast<double>(rng.uniform(1, static_cast<uint64_t>(i))));
    t_us += -std::log(u) * mean_gap_us;
    Request r;
    r.id = i;
    r.arrival_us = t_us;
    const int64_t plen = prompt_lo + rng.randint(2, static_cast<uint64_t>(i), prompt_hi - prompt_lo + 1);
    r.prompt.reserve(static_cast<size_t>(plen));
    for (int64_t j = 0; j < plen; ++j) {
      r.prompt.push_back(static_cast<int32_t>(
          3 + rng.randint(3, static_cast<uint64_t>(i * 1024 + j), std::max<int64_t>(vocab - 3, 1))));
    }
    r.gen_len = gen_lo + rng.randint(4, static_cast<uint64_t>(i), gen_hi - gen_lo + 1);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

size_t serve_capacity_scan(const models::Gpt2Config& cfg, DType dtype, int64_t slots,
                           int64_t max_len, int64_t max_prompt_len, uint64_t seed) {
  LS2_CHECK(max_prompt_len < max_len);
  // Probe in model-only mode: allocation is byte-identical to execute mode
  // (every tensor is created outside kernel bodies) and the math is skipped.
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  mem::CachingAllocator param_alloc(dev, mem::DeviceAllocator::Backing::kVirtual);
  mem::MeasuringAllocator probe;
  layers::LayerContext ctx(dev, &probe, layers::policy_for(layers::System::kLightSeq2),
                           seed);
  models::Gpt2 model(cfg, layers::System::kLightSeq2, dtype, seed, &param_alloc);
  KvCache cache(model.kv_cache_config(slots, max_len), &param_alloc);

  // Worst-case admission: a full-slot padded prefill at the prompt cap...
  Tensor ids = Tensor::zeros({slots, max_prompt_len}, DType::kI32);
  ids.fill_(3);
  std::vector<int64_t> slot_ids;
  for (int64_t s = 0; s < slots; ++s) slot_ids.push_back(cache.acquire_slot());
  { (void)model.prefill(ctx, ids, &cache, slot_ids); }
  for (int64_t s = 0; s < slots; ++s) cache.set_len(s, static_cast<int32_t>(max_prompt_len));
  // ...plus the steady-state decode step with its sampling launch.
  Tensor step_ids = Tensor::zeros({slots, 1}, DType::kI32);
  Tensor sampled = Tensor::zeros({slots}, DType::kI32);
  cache.begin_decode();
  {
    Tensor logits = model.decode_step(ctx, step_ids, cache);
    kern::argmax_rows(ctx.kern, kern::Impl::kLS2, logits, sampled);
  }
  const size_t peak = static_cast<size_t>(probe.peak_bytes());
  return peak + peak / 16;
}

}  // namespace ls2::infer
