#include "infer/batcher.h"

#include <algorithm>
#include <cmath>

#include "memory/device_allocator.h"
#include "memory/measuring_allocator.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ls2::infer {

namespace {

/// Deterministic stand-in token for model-only runs (no real logits): keeps
/// the control flow identical across eager and replayed serving.
int32_t synth_token(int64_t slot, int64_t generated, int64_t vocab) {
  return static_cast<int32_t>(3 + (slot * 131 + generated * 7) % std::max<int64_t>(vocab - 3, 1));
}

}  // namespace

ContinuousBatcher::ContinuousBatcher(core::Session& session, models::Gpt2& model,
                                     KvCache& cache, ServeConfig cfg)
    : session_(&session), model_(&model), cache_(&cache), cfg_(cfg), gen_(cfg.sampling) {}

int32_t ContinuousBatcher::harvest_token(const Tensor& sampled, int64_t row, int64_t slot,
                                         int64_t generated) const {
  if (session_->device().mode() == simgpu::ExecMode::kExecute) {
    return sampled.data<int32_t>()[row];
  }
  return synth_token(slot, generated, model_->config().vocab);
}

void ContinuousBatcher::begin() {
  const int64_t S = cache_->config().slots;
  reqs_.clear();
  pending_.clear();
  stats_.clear();
  completed_new_.clear();
  slots_.assign(static_cast<size_t>(S), SlotState{});
  report_ = ServeReport{};
  done_ = 0;
  draining_ = false;
  cache_->reset();
  // Host-written metadata tensors stay heap-backed (real even in model-only
  // sessions); the decode step's shapes never change, so allocate them once.
  ids_ = Tensor::zeros({S, 1}, DType::kI32);
  sampled_ = Tensor::zeros({S}, DType::kI32);
  start_us_ = session_->device().clock_us();
  slo_.reset();
  if (obs::MetricsRegistry* m = session_->metrics()) {
    slo_.emplace(m, cfg_.metrics_prefix);
  }
  begun_ = true;
}

void ContinuousBatcher::submit(Request r) {
  LS2_CHECK(begun_) << "submit() before begin()";
  const size_t idx = reqs_.size();
  reqs_.push_back(std::move(r));
  RequestStats st;
  st.id = reqs_[idx].id;
  st.arrival_us = reqs_[idx].arrival_us;
  st.prompt_len = static_cast<int64_t>(reqs_[idx].prompt.size());
  stats_.push_back(std::move(st));
  pending_.push_back(idx);
}

bool ContinuousBatcher::admit(size_t r) {
  auto& ctx = session_->ctx();
  auto& dev = session_->device();
  const Request& req = reqs_[r];
  const int64_t Lp = static_cast<int64_t>(req.prompt.size());
  const int64_t V = model_->config().vocab;
  LS2_CHECK(Lp > 0 && Lp < cache_->config().seq_tokens)
      << "prompt must fit the cache with room to generate";

  // Lane + pages (shared prefix pages reused when sharing is on). Failure
  // is backpressure, not an error: the request keeps its queue position.
  const SequenceHandle h = cache_->allocate(Lp, req.prompt.data());
  if (!h.valid()) return false;
  const int64_t lane = cache_->lane(h);

  RequestStats& st = stats_[r];
  st.id = req.id;
  st.arrival_us = req.arrival_us;
  st.admitted_us = dev.clock_us();
  st.prompt_len = Lp;
  // A preempted request re-admits with its generated tokens folded into the
  // continuation prompt: this residency's token count starts from here.
  const int64_t already = static_cast<int64_t>(st.tokens.size());

  // Host-written metadata tensors stay heap-backed (real even in model-only
  // sessions); activations inside prefill come from the session arena.
  Tensor ids = Tensor::empty({1, Lp}, DType::kI32);
  std::vector<float> host(req.prompt.begin(), req.prompt.end());
  ids.copy_from(host);
  int32_t tok = 0;
  {
    obs::SpanScope range(dev, "serve.prefill");
    Tensor logits = model_->prefill(ctx, ids, cache_, {h});  // [1, Lp, V]
    Tensor last = logits.view({Lp, V}).slice(Lp - 1, Lp);  // next-token logits
    Tensor first_tok = Tensor::zeros({1}, DType::kI32);
    gen_.next_tokens(ctx.kern, ctx.policy.softmax, last, first_tok);
    tok = harvest_token(first_tok, 0, lane, already);
    st.tokens.push_back(tok);
    if (st.first_token_us == 0) st.first_token_us = dev.clock_us();
    ++report_.prefills;
    ++report_.generated_tokens;
    slots_[static_cast<size_t>(lane)] =
        SlotState{static_cast<int64_t>(r), h, already + 1, already, tok};
  }
  const int32_t eos = req.spec.eos_id >= 0 ? req.spec.eos_id : cfg_.eos_id;
  const bool finished =
      static_cast<int64_t>(st.tokens.size()) >= req.spec.gen_len ||
      (eos >= 0 && session_->device().mode() == simgpu::ExecMode::kExecute && tok == eos);
  if (finished) {
    st.done_us = dev.clock_us();
    st.generated = static_cast<int64_t>(st.tokens.size());
    cache_->free(h);
    slots_[static_cast<size_t>(lane)] = SlotState{};
    completed_new_.push_back(r);
    ++done_;
    if (slo_) slo_->on_served(st.done_us, st.latency_us(), st.generated);
  }
  return true;
}

void ContinuousBatcher::shed(size_t r, double now) {
  RequestStats& st = stats_[r];
  st.id = reqs_[r].id;
  st.arrival_us = reqs_[r].arrival_us;
  st.prompt_len = static_cast<int64_t>(reqs_[r].prompt.size());
  st.shed = true;
  st.done_us = now;
  session_->device().mark("serve.shed");
  ++report_.shed_requests;
  completed_new_.push_back(r);
  ++done_;
  if (slo_) slo_->on_shed(now);
}

void ContinuousBatcher::run_admissions() {
  const double now = session_->device().clock_us();

  // Highest priority first, oldest first within a priority (stable over the
  // enqueue-ordered queue — preempted continuations sit at the front of
  // their class and resume before fresh arrivals).
  std::stable_sort(pending_.begin(), pending_.end(), [this](size_t a, size_t b) {
    return reqs_[a].spec.priority > reqs_[b].spec.priority;
  });

  // Shed the timed-out, admit the rest into free lanes. Once the cache
  // can't place a request the remaining waiters keep their place untouched.
  std::vector<size_t> still;
  still.reserve(pending_.size());
  bool full = false;
  for (size_t r : pending_) {
    if (stats_[r].shed || stats_[r].cancelled) continue;  // already resolved
    if (full) {
      still.push_back(r);
      continue;
    }
    if (cfg_.admission_timeout_us > 0 &&
        now - reqs_[r].enqueue() > cfg_.admission_timeout_us) {
      shed(r, now);
      continue;
    }
    if (!admit(r)) {  // no lane or pages — the rest queue (or shed below)
      full = true;
      still.push_back(r);
    }
  }
  pending_ = std::move(still);

  // Backpressure: bound the waiting line by rejecting the NEWEST arrivals —
  // the oldest waiters keep their place, so admitted-queue time stays
  // bounded instead of growing with the burst.
  if (cfg_.max_queue > 0) {
    while (static_cast<int64_t>(pending_.size()) > cfg_.max_queue) {
      shed(pending_.back(), now);
      pending_.pop_back();
    }
  }
}

void ContinuousBatcher::preempt(int64_t s, double now) {
  SlotState& ss = slots_[static_cast<size_t>(s)];
  Request& req = reqs_[static_cast<size_t>(ss.req)];
  RequestStats& st = stats_[static_cast<size_t>(ss.req)];
  // Recompute preemption: fold this residency's tokens into a continuation
  // prompt and give the pages back. Re-admission re-prefills prompt +
  // prefix — often mostly shared pages when sharing is on.
  req.prompt.insert(req.prompt.end(), st.tokens.begin() + ss.admitted_tokens,
                    st.tokens.end());
  cache_->free(ss.handle);
  session_->device().mark("serve.preempt");
  ++report_.preemptions;
  if (static_cast<int64_t>(req.prompt.size()) >= cache_->config().seq_tokens) {
    // The continuation could not be re-admitted with room to generate:
    // ship the partial answer now instead of bouncing forever.
    st.done_us = now;
    st.generated = static_cast<int64_t>(st.tokens.size());
    completed_new_.push_back(static_cast<size_t>(ss.req));
    ++done_;
    if (slo_) slo_->on_served(st.done_us, st.latency_us(), st.generated);
  } else {
    req.enqueue_us = now;  // fresh queue-time clock; arrival_us (SLO) survives
    pending_.insert(pending_.begin(), static_cast<size_t>(ss.req));
  }
  ss = SlotState{};
}

void ContinuousBatcher::extend_residents() {
  auto& ctx = session_->ctx();
  const double now = session_->device().clock_us();
  const int64_t S = cache_->config().slots;
  for (int64_t s = 0; s < S; ++s) {
    if (slots_[static_cast<size_t>(s)].req < 0) continue;
    while (!cache_->extend(slots_[static_cast<size_t>(s)].handle, ctx.kern,
                           ctx.policy.transform)) {
      // Pool dry: evict the lowest-priority resident, newest arrival on
      // ties — possibly this very lane. Each eviction frees at least one
      // lane, so the loop terminates.
      int64_t victim = -1;
      for (int64_t v = 0; v < S; ++v) {
        if (slots_[static_cast<size_t>(v)].req < 0) continue;
        if (victim < 0) {
          victim = v;
          continue;
        }
        const Request& rv = reqs_[static_cast<size_t>(slots_[static_cast<size_t>(v)].req)];
        const Request& rb =
            reqs_[static_cast<size_t>(slots_[static_cast<size_t>(victim)].req)];
        if (rv.spec.priority < rb.spec.priority ||
            (rv.spec.priority == rb.spec.priority && rv.arrival_us > rb.arrival_us)) {
          victim = v;
        }
      }
      LS2_CHECK(victim >= 0);
      preempt(victim, now);
      if (victim == s) break;  // evicted ourselves; the lane is free now
    }
  }
}

void ContinuousBatcher::retire(int64_t s, bool expired) {
  SlotState& ss = slots_[static_cast<size_t>(s)];
  RequestStats& st = stats_[static_cast<size_t>(ss.req)];
  st.done_us = session_->device().clock_us();
  st.generated = ss.generated;
  if (expired) {
    st.deadline_retired = true;
    ++report_.deadline_retired;
  }
  cache_->free(ss.handle);
  completed_new_.push_back(static_cast<size_t>(ss.req));
  ss = SlotState{};
  ++done_;
  if (slo_) slo_->on_served(st.done_us, st.latency_us(), st.generated);
}

void ContinuousBatcher::decode_once() {
  auto& dev = session_->device();
  auto& ctx = session_->ctx();
  const int64_t S = cache_->config().slots;
  const bool execute = dev.mode() == simgpu::ExecMode::kExecute;

  // Page bookkeeping (allocation, COW) happens here, before any capture.
  extend_residents();

  int32_t* ip = ids_.data<int32_t>();
  for (int64_t s = 0; s < S; ++s) {
    ip[s] = slots_[static_cast<size_t>(s)].req >= 0
                ? slots_[static_cast<size_t>(s)].next_token
                : model_->config().pad_id;
  }
  // A transient allocation failure (injected or real) aborts the
  // attempt — the graph guard abandons any open capture/replay, the
  // arena rewinds via end_step — and the step reruns after a doubling
  // idle backoff. KvCache lengths are untouched until commit_decode, so a
  // rerun is exact. The retry budget bounds how long a request can be
  // stalled by a flapping fault before the error surfaces.
  int attempts = 0;
  for (;;) {
    try {
      cache_->begin_decode();
      const core::GraphAction act = session_->begin_decode_step();
      struct GraphGuard {
        simgpu::Device& dev;
        bool active = false;
        ~GraphGuard() {
          if (active) dev.abort_graph();
        }
      } guard{dev};
      if (act == core::GraphAction::kCapture) {
        dev.begin_capture();
        guard.active = true;
      } else if (act == core::GraphAction::kReplay) {
        dev.begin_replay(*session_->step_graph());
        guard.active = true;
      }
      {
        obs::SpanScope range(dev, "serve.decode");
        Tensor logits = model_->decode_step(ctx, ids_, *cache_);  // [S, V]
        gen_.next_tokens(ctx.kern, ctx.policy.softmax, logits, sampled_);
      }
      if (act == core::GraphAction::kCapture) {
        session_->store_graph(dev.end_capture());
        guard.active = false;
      } else if (act == core::GraphAction::kReplay) {
        dev.end_replay();
        guard.active = false;
        ++report_.replayed_steps;
      }
      break;
    } catch (const mem::TransientAllocFailure&) {
      if (++attempts > cfg_.decode_retries) throw;
      ++report_.decode_retries;
      dev.mark("serve.decode_retry");
      session_->end_step();  // rewind the aborted attempt's arena state
      const double backoff =
          cfg_.retry_backoff_us * static_cast<double>(1 << (attempts - 1));
      if (backoff > 0) dev.advance(backoff, /*busy=*/false, "serve.retry_backoff");
    }
  }
  cache_->commit_decode();
  ++report_.decode_steps;

  // --- harvest and retire ---
  for (int64_t s = 0; s < S; ++s) {
    SlotState& ss = slots_[static_cast<size_t>(s)];
    if (ss.req < 0) continue;
    const Request& rq = reqs_[static_cast<size_t>(ss.req)];
    const int32_t tok = harvest_token(sampled_, s, s, ss.generated);
    stats_[static_cast<size_t>(ss.req)].tokens.push_back(tok);
    ++ss.generated;
    ++report_.generated_tokens;
    // Retire at the request's cap, at EOS, or when the sequence's token
    // budget is full — capacity caps generation rather than crashing.
    const int32_t eos = rq.spec.eos_id >= 0 ? rq.spec.eos_id : cfg_.eos_id;
    const bool natural = ss.generated >= rq.spec.gen_len ||
                         (execute && eos >= 0 && tok == eos) ||
                         cache_->len(ss.handle) >= cache_->config().seq_tokens;
    // Deadline degradation: past the SLO, ship the partial answer now. The
    // deadline runs from the ORIGINAL arrival — a re-dispatched request
    // does not get a fresh SLO budget.
    const double ddl = rq.spec.deadline_us > 0 ? rq.spec.deadline_us : cfg_.deadline_us;
    const bool expired =
        !natural && ddl > 0 && dev.clock_us() - rq.arrival_us >= ddl;
    if (natural || expired) {
      retire(s, expired);
    } else {
      ss.next_token = tok;
    }
  }
  session_->end_step();  // arena rewind + per-step RNG advance
}

bool ContinuousBatcher::step() {
  LS2_CHECK(begun_) << "step() before begin()";
  // Admissions are eager (never part of the captured region); a draining
  // replica admits nothing — its queue was evacuated, residents finish.
  const bool may_admit =
      !draining_ &&
      (cfg_.mode == BatchMode::kContinuous || cache_->active_seqs() == 0);
  if (may_admit) run_admissions();
  const bool decoded = cache_->active_seqs() > 0;
  if (decoded) decode_once();
  if (slo_) {
    // The "live" part of the SLO monitors: rolling gauges refresh once per
    // engine step, while the workload is in flight.
    slo_->refresh(session_->device().clock_us());
    obs::MetricsRegistry* m = session_->metrics();
    m->gauge(cfg_.metrics_prefix + ".queue_depth") =
        static_cast<double>(queue_depth());
    m->gauge(cfg_.metrics_prefix + ".resident") = static_cast<double>(resident());
    const KvCache::Stats& ks = cache_->stats();
    m->gauge(cfg_.metrics_prefix + ".kv.page_occupancy") =
        static_cast<double>(cache_->used_pages()) /
        static_cast<double>(cache_->config().pool_pages());
    m->gauge(cfg_.metrics_prefix + ".kv.share_ratio") =
        static_cast<double>(ks.shared_page_hits) /
        static_cast<double>(std::max<int64_t>(1, ks.shared_page_hits + ks.pages_allocated));
  }
  return decoded;
}

std::vector<ContinuousBatcher::Evacuated> ContinuousBatcher::evacuate(bool queued_only) {
  std::vector<Evacuated> out;
  for (size_t r : pending_) {
    if (stats_[r].shed || stats_[r].cancelled) continue;
    stats_[r].cancelled = true;
    ++done_;
    out.push_back({reqs_[r], stats_[r]});
  }
  pending_.clear();
  if (!queued_only) {
    const int64_t S = cache_->config().slots;
    for (int64_t s = 0; s < S; ++s) {
      SlotState& ss = slots_[static_cast<size_t>(s)];
      if (ss.req < 0) continue;
      const size_t r = static_cast<size_t>(ss.req);
      stats_[r].cancelled = true;
      stats_[r].generated = ss.generated;
      ++done_;
      out.push_back({reqs_[r], stats_[r]});
      cache_->free(ss.handle);
      ss = SlotState{};
    }
  }
  return out;
}

bool ContinuousBatcher::cancel(int64_t id) {
  const int64_t S = cache_->config().slots;
  for (int64_t s = 0; s < S; ++s) {
    SlotState& ss = slots_[static_cast<size_t>(s)];
    if (ss.req < 0 || reqs_[static_cast<size_t>(ss.req)].id != id) continue;
    RequestStats& st = stats_[static_cast<size_t>(ss.req)];
    st.cancelled = true;
    st.generated = ss.generated;
    cache_->free(ss.handle);
    ss = SlotState{};
    ++done_;
    return true;
  }
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (reqs_[*it].id != id) continue;
    stats_[*it].cancelled = true;
    ++done_;
    pending_.erase(it);
    return true;
  }
  return false;  // already completed (or never submitted): too late
}

std::vector<RequestStats> ContinuousBatcher::take_completed() {
  std::vector<RequestStats> out;
  out.reserve(completed_new_.size());
  for (size_t r : completed_new_) out.push_back(stats_[r]);
  completed_new_.clear();
  return out;
}

ServeReport ContinuousBatcher::finish() {
  auto& dev = session_->device();
  report_.makespan_us = dev.clock_us() - start_us_;
  report_.tokens_per_sec = report_.makespan_us > 0
                               ? static_cast<double>(report_.generated_tokens) /
                                     (report_.makespan_us * 1e-6)
                               : 0;
  const KvCache::Stats& ks = cache_->stats();
  report_.peak_resident = ks.peak_active_seqs;
  report_.peak_pages_used = ks.peak_used_pages;
  report_.prefill_page_allocs = ks.prefill_pages;
  report_.shared_page_hits = ks.shared_page_hits;
  report_.cow_copies = ks.cow_copies;
  // Streaming-histogram percentiles (obs::Histogram): O(1) per record and a
  // bucket walk per quantile, instead of sorting the full latency vector.
  // count/sum/min/max are exact, so the mean is too; the quantiles carry
  // the bucket-resolution error bound (< growth-1, further interpolated).
  obs::Histogram lat;
  for (const RequestStats& st : stats_) {
    if (st.shed || st.cancelled) continue;  // an error / a hand-over, not a latency
    lat.record(st.latency_us());
  }
  report_.served = lat.count();
  report_.p50_latency_us = lat.quantile(0.50);
  report_.p99_latency_us = lat.quantile(0.99);
  report_.mean_latency_us = lat.mean();
  if (obs::MetricsRegistry* m = session_->metrics()) {
    m->counter(cfg_.metrics_prefix + ".prefills") += report_.prefills;
    m->counter(cfg_.metrics_prefix + ".decode_steps") += report_.decode_steps;
    m->counter(cfg_.metrics_prefix + ".replayed_steps") += report_.replayed_steps;
    m->counter(cfg_.metrics_prefix + ".generated_tokens") += report_.generated_tokens;
    m->counter(cfg_.metrics_prefix + ".decode_retries") += report_.decode_retries;
    m->counter(cfg_.metrics_prefix + ".deadline_retired") += report_.deadline_retired;
    m->counter(cfg_.metrics_prefix + ".kv.shared_page_hits") += report_.shared_page_hits;
    m->counter(cfg_.metrics_prefix + ".kv.cow_copies") += report_.cow_copies;
    m->counter(cfg_.metrics_prefix + ".kv.preemptions") += report_.preemptions;
  }
  report_.requests = std::move(stats_);
  stats_.clear();
  begun_ = false;
  return std::move(report_);
}

ServeReport ContinuousBatcher::serve(std::vector<Request> requests) {
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.enqueue() < b.enqueue(); });
  auto& dev = session_->device();
  begin();
  reqs_ = std::move(requests);
  stats_.assign(reqs_.size(), RequestStats{});
  for (size_t i = 0; i < reqs_.size(); ++i) {
    stats_[i].id = reqs_[i].id;
    stats_[i].arrival_us = reqs_[i].arrival_us;
    stats_[i].prompt_len = static_cast<int64_t>(reqs_[i].prompt.size());
  }

  size_t next_feed = 0;
  while (done_ < static_cast<int64_t>(reqs_.size())) {
    // Feed the queue with everything that has arrived by now.
    const double now = dev.clock_us();
    while (next_feed < reqs_.size() && reqs_[next_feed].enqueue() <= now)
      pending_.push_back(next_feed++);

    if (!step() && !has_work()) {
      if (done_ >= static_cast<int64_t>(reqs_.size())) break;
      LS2_CHECK(next_feed < reqs_.size());
      // Nothing resident: idle until the next arrival.
      const double wait = reqs_[next_feed].enqueue() - dev.clock_us();
      if (wait > 0) dev.advance(wait, /*busy=*/false, "serve.idle");
    }
  }

  return finish();
}

std::vector<Request> poisson_requests(int64_t n, double rate_per_sec, int64_t prompt_lo,
                                      int64_t prompt_hi, int64_t gen_lo, int64_t gen_hi,
                                      int64_t vocab, uint64_t seed) {
  LS2_CHECK(rate_per_sec > 0 && n > 0);
  LS2_CHECK(prompt_lo >= 1 && prompt_hi >= prompt_lo && gen_lo >= 1 && gen_hi >= gen_lo);
  Rng rng(seed);
  std::vector<Request> reqs;
  reqs.reserve(static_cast<size_t>(n));
  double t_us = 0;
  const double mean_gap_us = 1e6 / rate_per_sec;
  for (int64_t i = 0; i < n; ++i) {
    // Exponential inter-arrival gaps -> Poisson process.
    const double u = std::max(1e-12, 1.0 - static_cast<double>(rng.uniform(1, static_cast<uint64_t>(i))));
    t_us += -std::log(u) * mean_gap_us;
    Request r;
    r.id = i;
    r.arrival_us = t_us;
    const int64_t plen = prompt_lo + rng.randint(2, static_cast<uint64_t>(i), prompt_hi - prompt_lo + 1);
    r.prompt.reserve(static_cast<size_t>(plen));
    for (int64_t j = 0; j < plen; ++j) {
      r.prompt.push_back(static_cast<int32_t>(
          3 + rng.randint(3, static_cast<uint64_t>(i * 1024 + j), std::max<int64_t>(vocab - 3, 1))));
    }
    r.spec.gen_len = gen_lo + rng.randint(4, static_cast<uint64_t>(i), gen_hi - gen_lo + 1);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

size_t serve_capacity_scan(const models::Gpt2Config& cfg, DType dtype, int64_t slots,
                           int64_t max_len, int64_t max_prompt_len, uint64_t seed) {
  LS2_CHECK(max_prompt_len < max_len);
  // Probe in model-only mode: allocation is byte-identical to execute mode
  // (every tensor is created outside kernel bodies) and the math is skipped.
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  mem::CachingAllocator param_alloc(dev, mem::DeviceAllocator::Backing::kVirtual);
  mem::MeasuringAllocator probe;
  layers::LayerContext ctx(dev, &probe, layers::policy_for(layers::System::kLightSeq2),
                           seed);
  models::Gpt2 model(cfg, layers::System::kLightSeq2, dtype, seed, &param_alloc);
  KvCache cache(model.kv_cache_config(slots, max_len), &param_alloc);

  // Worst-case admission: a full-lane padded prefill at the prompt cap...
  Tensor ids = Tensor::zeros({slots, max_prompt_len}, DType::kI32);
  ids.fill_(3);
  std::vector<SequenceHandle> seqs;
  for (int64_t s = 0; s < slots; ++s) {
    seqs.push_back(cache.allocate(max_prompt_len));
    LS2_CHECK(seqs.back().valid());
  }
  { (void)model.prefill(ctx, ids, &cache, seqs); }
  // ...plus the steady-state decode step with its sampling launch.
  for (const SequenceHandle& h : seqs)
    LS2_CHECK(cache.extend(h, ctx.kern, ctx.policy.transform));
  Tensor step_ids = Tensor::zeros({slots, 1}, DType::kI32);
  Tensor sampled = Tensor::zeros({slots}, DType::kI32);
  cache.begin_decode();
  {
    Tensor logits = model.decode_step(ctx, step_ids, cache);
    kern::argmax_rows(ctx.kern, kern::Impl::kLS2, logits, sampled);
  }
  const size_t peak = static_cast<size_t>(probe.peak_bytes());
  return peak + peak / 16;
}

}  // namespace ls2::infer
