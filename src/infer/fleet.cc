#include "infer/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "memory/arena_allocator.h"
#include "obs/metrics.h"

namespace ls2::infer {

Fleet::Fleet(FleetConfig cfg) : cfg_(std::move(cfg)) {
  LS2_CHECK_GE(cfg_.replicas, 1);
  LS2_CHECK(cfg_.slots >= 1 && cfg_.max_len >= 2);

  core::SessionConfig sc = cfg_.session;
  sc.record_timeline = sc.record_timeline || cfg_.record_timeline;
  if (sc.arena_bytes == 0 && sc.system == layers::System::kLightSeq2) {
    // Continuation prompts (original prompt + regenerated prefix) can
    // approach the slot capacity, so the scan probes the worst case rather
    // than the workload's nominal prompt lengths.
    sc.arena_bytes = serve_capacity_scan(cfg_.model, sc.dtype, cfg_.slots,
                                         cfg_.max_len, cfg_.max_len - 1);
  }

  replicas_.resize(static_cast<size_t>(cfg_.replicas));
  for (int i = 0; i < cfg_.replicas; ++i) {
    Replica& rep = replicas_[static_cast<size_t>(i)];
    rep.session = std::make_unique<core::Session>(sc);
    // Same seed everywhere: the replicas are interchangeable — any of them
    // can continue any request, which is what re-dispatch relies on.
    rep.model = std::make_unique<models::Gpt2>(cfg_.model, sc.system, sc.dtype,
                                               cfg_.model_seed,
                                               rep.session->param_alloc());
    KvCacheConfig kcfg = rep.model->kv_cache_config(cfg_.slots, cfg_.max_len);
    if (cfg_.page_tokens > 0)
      kcfg.page_tokens = std::min(cfg_.page_tokens, kcfg.seq_tokens);
    kcfg.prefix_sharing = cfg_.prefix_sharing;
    rep.cache = std::make_unique<KvCache>(kcfg, rep.session->param_alloc());
    // All replicas share the one registry (SessionConfig::metrics) but each
    // publishes under its own prefix, so per-replica series stay
    // attributable — the registry-level analog of the per-replica trace pid.
    ServeConfig serve = cfg_.serve;
    serve.metrics_prefix = "replica" + std::to_string(i) + ".serve";
    rep.engine = std::make_unique<ContinuousBatcher>(*rep.session, *rep.model,
                                                     *rep.cache, serve);
    if (static_cast<size_t>(i) < cfg_.fault_plans.size() &&
        !cfg_.fault_plans[static_cast<size_t>(i)].events.empty()) {
      rep.injector = std::make_unique<simgpu::FaultInjector>(
          cfg_.fault_plans[static_cast<size_t>(i)], sc.collective_timeout_us);
      rep.session->device().set_fault_injector(rep.injector.get());
    }
  }
  if (obs::MetricsRegistry* m = metrics()) slo_.emplace(m, "fleet");
}

obs::MetricsRegistry* Fleet::metrics() const {
  // Through the session accessor, not the config field, so the
  // LS2_DISABLE_METRICS compile-out covers the fleet too.
  return replicas_.empty() ? nullptr : replicas_.front().session->metrics();
}

Fleet::~Fleet() {
  for (Replica& rep : replicas_) {
    if (rep.session) rep.session->device().set_fault_injector(nullptr);
  }
}

int Fleet::live_replicas() const {
  int n = 0;
  for (const Replica& rep : replicas_)
    if (rep.alive) ++n;
  return n;
}

double Fleet::fleet_now() const {
  double now = -1;
  for (const Replica& rep : replicas_) {
    if (!rep.alive) continue;
    const double c = rep.session->device().clock_us();
    if (now < 0 || c < now) now = c;
  }
  return now < 0 ? 0 : now;
}

bool Fleet::admitting(const Replica& r) const {
  return r.alive && !r.engine->draining();
}

int Fleet::pick_replica(int avoid) const {
  const int n = cfg_.replicas;
  if (cfg_.policy == DispatchPolicy::kRoundRobin) {
    for (int k = 0; k < n; ++k) {
      const int i = (rr_next_ + k) % n;
      if (i == avoid || !admitting(replicas_[static_cast<size_t>(i)])) continue;
      // rr_next_ is advanced by the (non-const) dispatch path.
      const_cast<Fleet*>(this)->rr_next_ = (i + 1) % n;
      return i;
    }
  } else {
    // Join-shortest-queue over (queued + resident) load; ties to the lowest
    // index so the choice is deterministic.
    int best = -1;
    int64_t best_load = 0;
    for (int i = 0; i < n; ++i) {
      const Replica& rep = replicas_[static_cast<size_t>(i)];
      if (i == avoid || !admitting(rep)) continue;
      const int64_t load = rep.engine->queue_depth() + rep.engine->resident();
      if (best < 0 || load < best_load) {
        best = i;
        best_load = load;
      }
    }
    if (best >= 0) return best;
  }
  // Nothing but `avoid` left: better a suspect replica than a stuck queue.
  if (avoid >= 0 && admitting(replicas_[static_cast<size_t>(avoid)])) return avoid;
  return -1;
}

void Fleet::dispatch_to(size_t tracked, int replica, double now, bool hedge) {
  Tracked& t = tracked_[tracked];
  Request r;
  r.id = next_dispatch_id_++;
  r.prompt = t.base.prompt;
  r.prompt.insert(r.prompt.end(), t.tokens.begin(), t.tokens.end());
  r.spec = t.base.spec;  // deadline/eos/priority travel with every hand-over
  r.spec.gen_len = t.base.spec.gen_len - static_cast<int64_t>(t.tokens.size());
  LS2_CHECK(r.spec.gen_len > 0) << "a finished request must not be re-dispatched";
  r.arrival_us = t.base.arrival_us;
  // First dispatch keeps enqueue == arrival; every hand-over (re-dispatch or
  // hedge copy) stamps the hand-over time so the engine's admission timeout
  // gets a fresh budget while latency stats keep the ORIGINAL arrival.
  r.enqueue_us = (t.dispatches == 0) ? 0 : now;

  Replica& rep = replicas_[static_cast<size_t>(replica)];
  simgpu::Device& dev = rep.session->device();
  // The hand-over cannot land in the target's past: if its clock lags the
  // fleet, it was idle until now.
  if (dev.clock_us() < r.enqueue())
    dev.advance(r.enqueue() - dev.clock_us(), /*busy=*/false, "serve.idle");

  Dispatch d;
  d.dispatch_id = r.id;
  d.tracked = tracked;
  d.replica = replica;
  d.dispatched_us = std::max(now, r.enqueue());
  d.hedge = hedge;
  rep.engine->submit(std::move(r));
  ++t.dispatches;
  inflight_.push_back(d);
}

void Fleet::redispatch(size_t tracked, int from_replica, double now) {
  Tracked& t = tracked_[tracked];
  if (t.done || t.shed) return;
  // A sibling copy (hedge) still carries the request — drop this chain; the
  // survivor started from the same prefix, so nothing is lost.
  for (const Dispatch& d : inflight_)
    if (d.tracked == tracked) return;
  if (t.redispatches >= cfg_.max_redispatch) {
    // Budget spent: the router answers with an error rather than letting a
    // flapping replica bounce the request forever.
    t.shed = true;
    t.done_us = now;
    ++completed_;
    return;
  }
  ++t.redispatches;
  ++report_.redispatches;
  t.hedged = false;  // the new chain may hedge again
  const int target = pick_replica(from_replica);
  if (target < 0) {
    router_backlog_.push_back(tracked);  // retried when a replica frees up
    return;
  }
  replicas_[static_cast<size_t>(target)].session->device().mark("fleet.redispatch");
  dispatch_to(tracked, target, now, /*hedge=*/false);
}

void Fleet::absorb_partial(Dispatch& d, const RequestStats& partial) {
  Tracked& t = tracked_[d.tracked];
  if (t.admitted_us == 0 && partial.admitted_us > 0)
    t.admitted_us = partial.admitted_us;
  if (t.first_token_us == 0 && partial.first_token_us > 0)
    t.first_token_us = partial.first_token_us;
  t.tokens.insert(t.tokens.end(), partial.tokens.begin(), partial.tokens.end());
}

void Fleet::handle_completions(int replica, double now) {
  Replica& rep = replicas_[static_cast<size_t>(replica)];
  for (const RequestStats& st : rep.engine->take_completed()) {
    auto it = std::find_if(inflight_.begin(), inflight_.end(),
                           [&](const Dispatch& d) { return d.dispatch_id == st.id; });
    if (it == inflight_.end()) continue;  // cancelled before the drain
    Dispatch d = *it;
    inflight_.erase(it);
    Tracked& t = tracked_[d.tracked];
    if (t.done || t.shed) {
      // The loser of a hedge pair finished before its cancel landed.
      ++report_.hedge_cancels;
      continue;
    }
    if (st.shed) {
      bool sibling = false;
      for (const Dispatch& o : inflight_)
        if (o.tracked == d.tracked) sibling = true;
      if (sibling) continue;  // the copy may still be admitted
      t.shed = true;
      t.done_us = st.done_us;
      ++completed_;
      if (slo_) slo_->on_shed(st.done_us);
      continue;
    }
    // This copy won: its token stream is the answer.
    absorb_partial(d, st);
    t.deadline_retired = st.deadline_retired;
    t.done = true;
    t.done_us = st.done_us;
    ++completed_;
    dispatch_latencies_.push_back(st.done_us - d.dispatched_us);
    if (slo_)
      slo_->on_served(t.done_us, t.done_us - t.base.arrival_us,
                      static_cast<int64_t>(t.tokens.size()));
    if (d.hedge) ++report_.hedge_wins;
    // Cancel the losers.
    for (auto o = inflight_.begin(); o != inflight_.end();) {
      if (o->tracked != d.tracked) {
        ++o;
        continue;
      }
      Replica& orep = replicas_[static_cast<size_t>(o->replica)];
      if (orep.engine->cancel(o->dispatch_id)) {
        ++report_.hedge_cancels;
        orep.session->device().mark("fleet.hedge_cancel");
      }
      o = inflight_.erase(o);
    }
  }
  if (slo_) {
    // Live rolling gauges, refreshed per completion drain — not at finalize.
    slo_->refresh(now);
    metrics()->gauge("fleet.live_replicas") = static_cast<double>(live_replicas());
    metrics()->gauge("fleet.inflight") = static_cast<double>(inflight_.size());
  }
}

void Fleet::hedge_scan(double now) {
  if (cfg_.policy != DispatchPolicy::kHedged) return;
  double threshold = cfg_.hedge_min_us;
  // The hedge ECDF stays an EXACT percentile over the recent-completion
  // vector (obs::exact_percentile — the deduplicated helper): it is a
  // dispatch decision, and the population is small.
  if (static_cast<int64_t>(dispatch_latencies_.size()) >= cfg_.hedge_min_completions)
    threshold = std::max(cfg_.hedge_min_us,
                         obs::exact_percentile(dispatch_latencies_,
                                               cfg_.hedge_percentile));
  std::vector<std::pair<size_t, int>> fires;  // (tracked, avoid-replica)
  for (const Dispatch& d : inflight_) {
    Tracked& t = tracked_[d.tracked];
    if (t.hedged || t.done || t.shed || d.hedge) continue;
    if (now - d.dispatched_us <= threshold) continue;
    fires.emplace_back(d.tracked, d.replica);
  }
  for (auto [tracked, avoid] : fires) {
    const int target = pick_replica(avoid);
    if (target < 0 || target == avoid) continue;  // nowhere to duplicate to
    Tracked& t = tracked_[tracked];
    t.hedged = true;
    ++report_.hedges_fired;
    replicas_[static_cast<size_t>(target)].session->device().mark("fleet.hedge_fire");
    LS2_LOG(kDebug) << "hedge fired"
                    << log_kv("req", t.base.id)
                           .kv("to_replica", target)
                           .kv("threshold_us", threshold);
    dispatch_to(tracked, target, now, /*hedge=*/true);
  }
}

void Fleet::timeout_scan(double now) {
  if (cfg_.request_timeout_us <= 0) return;
  std::vector<std::pair<size_t, int>> expired;  // (tracked, replica)
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (now - it->dispatched_us <= cfg_.request_timeout_us) {
      ++it;
      continue;
    }
    Replica& rep = replicas_[static_cast<size_t>(it->replica)];
    if (!rep.engine->cancel(it->dispatch_id)) {
      // Already completed inside the engine; the drain will resolve it.
      ++it;
      continue;
    }
    ++report_.router_timeouts;
    rep.session->device().mark("fleet.timeout");
    expired.emplace_back(it->tracked, it->replica);
    it = inflight_.erase(it);
  }
  for (auto [tracked, replica] : expired) redispatch(tracked, replica, now);
}

void Fleet::reload_tick(double now) {
  if (cfg_.reload_at_us <= 0) return;
  if (!reload_started_) {
    if (now < cfg_.reload_at_us) return;
    // Snapshot once, from any live replica (they are interchangeable); the
    // same blobs roll into every replica, so the fleet converges on one
    // parameter version.
    for (Replica& rep : replicas_) {
      if (!rep.alive) continue;
      reload_snap_ = core::AsyncCheckpointer::snapshot_params(*rep.session,
                                                              rep.model->params());
      reload_started_ = true;
      break;
    }
    if (!reload_started_) return;  // no live replica to snapshot from
  }
  if (reload_index_ < 0) {
    for (int i = 0; i < cfg_.replicas; ++i) {
      Replica& rep = replicas_[static_cast<size_t>(i)];
      if (!rep.alive || rep.reloaded) continue;
      reload_index_ = i;
      rep.engine->set_draining(true);
      rep.session->device().mark("fleet.drain");
      // Hand the waiting line to the peers; residents finish where they are.
      auto evac = rep.engine->evacuate(/*queued_only=*/true);
      for (auto& ev : evac) {
        auto it = std::find_if(
            inflight_.begin(), inflight_.end(),
            [&](const Dispatch& d) { return d.dispatch_id == ev.partial.id; });
        if (it == inflight_.end()) continue;
        Dispatch d = *it;
        inflight_.erase(it);
        bool sibling = false;
        for (const Dispatch& o : inflight_)
          if (o.tracked == d.tracked) sibling = true;
        if (sibling) continue;
        absorb_partial(d, ev.partial);
        redispatch(d.tracked, i, now);
      }
      break;
    }
    if (reload_index_ < 0) return;  // every live replica reloaded: done
  }
  Replica& rep = replicas_[static_cast<size_t>(reload_index_)];
  if (!rep.alive) {  // died mid-drain; move on to the next one
    reload_index_ = -1;
    return;
  }
  if (rep.engine->resident() > 0) return;  // still draining
  simgpu::Device& dev = rep.session->device();
  // The snapshot is only usable once its host drain completed.
  if (dev.clock_us() < reload_snap_.ready_us)
    dev.advance(reload_snap_.ready_us - dev.clock_us(), /*busy=*/false,
                "fleet.reload_wait");
  core::AsyncCheckpointer::restore_params(reload_snap_, *rep.session,
                                          rep.model->params());
  rep.cache->reset();
  rep.engine->set_draining(false);
  rep.reloaded = true;
  ++report_.reloads;
  dev.mark("fleet.reload");
  LS2_LOG(kDebug) << "replica reloaded"
                  << log_kv("replica", reload_index_).kv("t_us", dev.clock_us());
  reload_index_ = -1;
}

void Fleet::step_replica(int r) {
  Replica& rep = replicas_[static_cast<size_t>(r)];
  simgpu::Device& dev = rep.session->device();
  if (rep.injector) rep.injector->arm(rep.decode_steps);
  const int64_t spikes_before = rep.injector ? rep.injector->kernel_spikes() : 0;
  try {
    const bool decoded = rep.engine->step();
    if (decoded) {
      ++rep.decode_steps;
      if (rep.injector && rep.injector->kernel_spikes() > spikes_before)
        dev.mark("fault.kernel_spike");
    } else if (rep.engine->has_work()) {
      // Defensive: an engine that reports work but cannot progress must not
      // spin the event loop at a frozen clock.
      dev.advance(1.0, /*busy=*/false, "serve.idle");
    }
    if (monitor_) monitor_->beat(r);
  } catch (const simgpu::DeviceLostError&) {
    rep.alive = false;
    ++report_.deaths;
    dev.mark("fleet.device_loss");
    LS2_LOG(kDebug) << "replica died"
                    << log_kv("replica", r).kv("t_us", dev.clock_us());
    rep.session->end_step();  // unwind the aborted step's arena state
    const double now = dev.clock_us();
    auto evac = rep.engine->evacuate(/*queued_only=*/false);
    for (auto& ev : evac) {
      auto it = std::find_if(
          inflight_.begin(), inflight_.end(),
          [&](const Dispatch& d) { return d.dispatch_id == ev.partial.id; });
      if (it == inflight_.end()) continue;
      Dispatch d = *it;
      inflight_.erase(it);
      bool sibling = false;
      for (const Dispatch& o : inflight_)
        if (o.tracked == d.tracked) sibling = true;
      if (sibling) continue;  // the hedge copy carries it from the same prefix
      absorb_partial(d, ev.partial);
      redispatch(d.tracked, r, now);
    }
  } catch (const mem::TransientAllocFailure&) {
    // Retry budget exhausted: quarantine. The replica stays alive but backs
    // off the rotation for a doubling idle window; its requests move on.
    rep.session->end_step();
    ++rep.quarantines;
    ++report_.quarantines;
    dev.mark("fleet.quarantine");
    LS2_LOG(kDebug) << "replica quarantined"
                    << log_kv("replica", r).kv("count", rep.quarantines);
    const double now = dev.clock_us();
    auto evac = rep.engine->evacuate(/*queued_only=*/false);
    for (auto& ev : evac) {
      auto it = std::find_if(
          inflight_.begin(), inflight_.end(),
          [&](const Dispatch& d) { return d.dispatch_id == ev.partial.id; });
      if (it == inflight_.end()) continue;
      Dispatch d = *it;
      inflight_.erase(it);
      bool sibling = false;
      for (const Dispatch& o : inflight_)
        if (o.tracked == d.tracked) sibling = true;
      if (sibling) continue;
      absorb_partial(d, ev.partial);
      redispatch(d.tracked, r, now);
    }
    const double backoff =
        cfg_.quarantine_base_us *
        static_cast<double>(1 << std::min(rep.quarantines - 1, 16));
    // Advancing the clock is the quarantine: min-clock stepping and JSQ both
    // steer work away until the rest of the fleet catches up.
    dev.advance(backoff, /*busy=*/false, "fleet.quarantine");
  }
}

FleetReport Fleet::run(std::vector<Request> requests) {
  LS2_CHECK(!ran_) << "a Fleet runs once";
  ran_ = true;

  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) { return a.arrival_us < b.arrival_us; });
  tracked_.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) tracked_[i].base = std::move(requests[i]);

  if (cfg_.heartbeat) {
    monitor_ = std::make_unique<dist::HeartbeatMonitor>(dist::HeartbeatConfig::from_millis(
        cfg_.replicas, cfg_.session.heartbeat_interval_ms, cfg_.session.heartbeat_timeout_ms));
    monitor_->start();
  }

  for (Replica& rep : replicas_) rep.engine->begin();

  size_t next_arrival = 0;
  int64_t guard = 0;
  const int64_t max_iter =
      1'000'000 + 4000 * static_cast<int64_t>(tracked_.size() + 1);
  while (completed_ < static_cast<int64_t>(tracked_.size())) {
    LS2_CHECK(++guard < max_iter) << "fleet event loop failed to converge";
    if (live_replicas() == 0) break;  // total outage: survivors become `lost`
    // Fleet time is the NEXT EVENT: the lagging busy replica or the next
    // arrival, whichever is earlier. Idle replicas' clocks are excluded —
    // an idle server is "caught up to" any later moment, and freezing fleet
    // time at its last busy instant would stall the hedge/timeout scans.
    double now = -1;
    for (const Replica& rep : replicas_) {
      if (!rep.alive || !rep.engine->has_work()) continue;
      const double c = rep.session->device().clock_us();
      if (now < 0 || c < now) now = c;
    }
    if (next_arrival < tracked_.size()) {
      const double ta = tracked_[next_arrival].base.arrival_us;
      if (now < 0 || ta < now) now = ta;
    }
    if (now < 0) now = fleet_now();  // fully drained: reload/backlog bookkeeping

    // Feed arrivals into the router, then drain the router backlog.
    while (next_arrival < tracked_.size() &&
           tracked_[next_arrival].base.arrival_us <= now)
      router_backlog_.push_back(next_arrival++);
    if (!router_backlog_.empty()) {
      std::vector<size_t> waiting;
      for (size_t ti : router_backlog_) {
        if (tracked_[ti].done || tracked_[ti].shed) continue;
        const int target = pick_replica(-1);
        if (target < 0) {
          waiting.push_back(ti);
          continue;
        }
        dispatch_to(ti, target, std::max(now, tracked_[ti].base.arrival_us),
                    /*hedge=*/false);
      }
      router_backlog_ = std::move(waiting);
    }

    timeout_scan(now);
    hedge_scan(now);
    reload_tick(now);

    // Step the live replica with work whose clock is furthest behind.
    int r = -1;
    double best = 0;
    for (int i = 0; i < cfg_.replicas; ++i) {
      Replica& rep = replicas_[static_cast<size_t>(i)];
      if (!rep.alive || !rep.engine->has_work()) continue;
      const double c = rep.session->device().clock_us();
      if (r < 0 || c < best) {
        r = i;
        best = c;
      }
    }
    if (r < 0) {
      // Nobody has work. Advance every live replica to the next event —
      // the next arrival, or the reload trigger.
      double target = -1;
      if (next_arrival < tracked_.size())
        target = tracked_[next_arrival].base.arrival_us;
      if (cfg_.reload_at_us > 0 && !reload_started_ &&
          (target < 0 || cfg_.reload_at_us < target))
        target = cfg_.reload_at_us;
      if (reload_index_ >= 0 || !router_backlog_.empty()) {
        // Mid-reload (or backlogged with every peer draining): nudge time
        // forward so the drain completes / a replica frees up.
        if (target < 0) target = now + 100.0;
      }
      if (target < 0) break;  // no work, no future events: drained
      for (Replica& rep : replicas_) {
        if (!rep.alive) continue;
        simgpu::Device& dev = rep.session->device();
        if (dev.clock_us() < target)
          dev.advance(target - dev.clock_us(), /*busy=*/false, "fleet.idle");
      }
      continue;
    }
    step_replica(r);
    if (replicas_[static_cast<size_t>(r)].alive)
      handle_completions(r, replicas_[static_cast<size_t>(r)].session->device().clock_us());
  }

  FleetReport out;
  finalize(out);
  return out;
}

void Fleet::finalize(FleetReport& out) {
  if (monitor_) {
    monitor_->stop();
    report_.heartbeat_suspects = monitor_->suspect_events();
  }
  for (Replica& rep : replicas_) {
    rep.report = rep.engine->finish();
    report_.decode_steps += rep.report.decode_steps;
    report_.replayed_steps += rep.report.replayed_steps;
    report_.generated_tokens += rep.report.generated_tokens;
    report_.decode_retries += rep.report.decode_retries;
    report_.makespan_us =
        std::max(report_.makespan_us, rep.session->device().clock_us());
  }
  report_.tokens_per_sec =
      report_.makespan_us > 0
          ? static_cast<double>(report_.generated_tokens) /
                (report_.makespan_us * 1e-6)
          : 0;

  // Streaming-histogram percentiles (obs::Histogram), same discipline as
  // the per-engine report; the mean stays exact via count/sum.
  obs::Histogram lat;
  report_.requests.reserve(tracked_.size());
  for (const Tracked& t : tracked_) {
    RequestStats st;
    st.id = t.base.id;
    st.arrival_us = t.base.arrival_us;
    st.admitted_us = t.admitted_us;
    st.first_token_us = t.first_token_us;
    st.done_us = t.done_us;
    st.prompt_len = static_cast<int64_t>(t.base.prompt.size());
    st.generated = static_cast<int64_t>(t.tokens.size());
    st.tokens = t.tokens;
    st.shed = t.shed;
    st.deadline_retired = t.deadline_retired;
    if (t.done && !t.shed) {
      ++report_.served;
      lat.record(st.latency_us());
    } else if (t.shed) {
      ++report_.shed;
    } else {
      ++report_.lost;
    }
    report_.requests.push_back(std::move(st));
  }
  report_.p50_latency_us = lat.quantile(0.50);
  report_.p99_latency_us = lat.quantile(0.99);
  report_.mean_latency_us = lat.mean();
  for (Replica& rep : replicas_) report_.replica_reports.push_back(rep.report);
  if (obs::MetricsRegistry* m = metrics()) {
    m->counter("fleet.redispatches") += report_.redispatches;
    m->counter("fleet.deaths") += report_.deaths;
    m->counter("fleet.quarantines") += report_.quarantines;
    m->counter("fleet.reloads") += report_.reloads;
    m->counter("fleet.router_timeouts") += report_.router_timeouts;
    m->counter("fleet.hedges_fired") += report_.hedges_fired;
    m->counter("fleet.hedge_wins") += report_.hedge_wins;
    m->counter("fleet.hedge_cancels") += report_.hedge_cancels;
    m->gauge("fleet.makespan_us") = report_.makespan_us;
    m->gauge("fleet.tokens_per_sec") = report_.tokens_per_sec;
  }
  out = report_;
}

void Fleet::write_chrome_trace(const std::string& path) const {
  simgpu::Timeline merged;
  for (int i = 0; i < cfg_.replicas; ++i) {
    const Replica& rep = replicas_[static_cast<size_t>(i)];
    const simgpu::Timeline& t = rep.session->device().timeline();
    merged.name_process(i, "replica " + std::to_string(i) +
                               (rep.alive ? "" : " (dead)"));
    for (const simgpu::BusySpan& s : t.busy_spans())
      merged.record_span(i, 0, "busy", s.begin_us, s.end_us);
    for (const simgpu::BusySpan& s : t.comm_spans())
      merged.record_span(i, 1, "comm", s.begin_us, s.end_us);
    for (const simgpu::NamedSpan& s : t.named_spans())
      merged.record_span(i, s.tid, s.name, s.begin_us, s.end_us);
    // Per-replica instants were recorded on (0,0); remap to this replica's
    // trace process so device losses / retries / hedges land on its lane.
    for (const simgpu::InstantEvent& e : t.instants())
      merged.record_instant(i, e.tid, e.name, e.t_us);
  }
  merged.write_chrome_trace(path);
}

}  // namespace ls2::infer
