#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#ifdef LS2_HAVE_OPENMP
#include <omp.h>
#endif

namespace ls2 {

int parallel_thread_count() {
#ifdef LS2_HAVE_OPENMP
  return omp_get_max_threads();
#else
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
#endif
}

namespace {
// Ranges smaller than this run serially: thread fork/join costs more than the
// loop body for tiny tensors.
constexpr int64_t kSerialCutoff = 4096;
}  // namespace

void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (n < kSerialCutoff || parallel_thread_count() == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#ifdef LS2_HAVE_OPENMP
#pragma omp parallel for schedule(static)
  for (int64_t i = begin; i < end; ++i) fn(i);
#else
  const int threads = std::min<int64_t>(parallel_thread_count(), n);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const int64_t chunk = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn] {
      for (int64_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& th : pool) th.join();
#endif
}

void parallel_for_chunks(int64_t begin, int64_t end, int64_t min_chunk,
                         const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int threads = parallel_thread_count();
  if (n <= min_chunk || threads == 1) {
    fn(begin, end);
    return;
  }
  const int64_t want = std::min<int64_t>(threads, (n + min_chunk - 1) / min_chunk);
  const int64_t chunk = (n + want - 1) / want;
#ifdef LS2_HAVE_OPENMP
#pragma omp parallel for schedule(static)
  for (int64_t t = 0; t < want; ++t) {
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  }
#else
  std::vector<std::thread> pool;
  for (int64_t t = 0; t < want; ++t) {
    const int64_t lo = begin + t * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn] { fn(lo, hi); });
  }
  for (auto& th : pool) th.join();
#endif
}

}  // namespace ls2
