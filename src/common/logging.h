// Minimal logging used by examples and benches (the library itself stays
// quiet unless asked). Severity-filtered, writes to stderr.
//
// Structured fields: chain `.kv("key", value)` onto a message and the
// fields render as trailing `key=value` pairs — greppable, and stable to
// parse. Rank/replica attribution: a thread-local identity string set via
// set_log_identity() is prefixed to every message from that thread, so
// interleaved fleet/multi-rank logs stay attributable:
//
//   set_log_identity("replica2");
//   LS2_LOG(kInfo) << "hedge fired" << log_kv("req", id).kv("p99_us", p99);
//   // -> [LS2:I] [replica2] hedge fired req=17 p99_us=5321.4
//
// A test sink (set_log_sink) captures formatted lines instead of writing
// stderr, which is how the logging tests observe output.
#pragma once

#include <sstream>
#include <string>

namespace ls2 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-local identity prefix ("rank3", "replica0") stamped on every
/// message from this thread; empty clears it.
void set_log_identity(const std::string& identity);
const std::string& log_identity();

/// Redirect formatted log lines (sans trailing newline) to `sink` instead
/// of stderr; null restores stderr. For tests.
void set_log_sink(void (*sink)(LogLevel, const std::string&));

/// Chainable key=value field list for structured log messages; stream it
/// into a LogMessage (see the header comment for the rendering).
class LogFields {
 public:
  template <typename T>
  LogFields& kv(const std::string& key, const T& value) {
    os_ << " " << key << "=" << value;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

/// Start a field list: LS2_LOG(kInfo) << "msg" << log_kv("k", v).kv(...)
template <typename T>
LogFields log_kv(const std::string& key, const T& value) {
  LogFields f;
  f.kv(key, value);
  return f;
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  LogMessage& operator<<(const LogFields& fields) {
    os_ << fields.str();
    return *this;
  }
  ~LogMessage() { log_emit(level_, os_.str()); }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail
}  // namespace ls2

#define LS2_LOG(level) ::ls2::detail::LogMessage(::ls2::LogLevel::level)
