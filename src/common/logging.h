// Minimal logging used by examples and benches (the library itself stays
// quiet unless asked). Severity-filtered, writes to stderr.
#pragma once

#include <sstream>
#include <string>

namespace ls2 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  ~LogMessage() { log_emit(level_, os_.str()); }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail
}  // namespace ls2

#define LS2_LOG(level) ::ls2::detail::LogMessage(::ls2::LogLevel::level)
