// Shared-memory data parallelism helpers.
//
// On the real system these loops are CUDA grids; in this reproduction the
// kernels execute on the host, parallelised with OpenMP when available
// (falling back to a plain serial loop). The helpers keep kernel code free of
// raw #pragma noise and give one place to control grain size.
#pragma once

#include <cstdint>
#include <functional>

namespace ls2 {

/// Number of worker threads the parallel helpers will use.
int parallel_thread_count();

/// Parallel loop over [begin, end). `fn(i)` must be safe to run concurrently
/// for distinct i. Small ranges run serially to avoid fork/join overhead.
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t)>& fn);

/// Parallel loop over chunks: fn(chunk_begin, chunk_end). Used by kernels
/// that want per-thread accumulators.
void parallel_for_chunks(int64_t begin, int64_t end, int64_t min_chunk,
                         const std::function<void(int64_t, int64_t)>& fn);

}  // namespace ls2
