// Lightweight assertion macros used throughout LightSeq2.
//
// LS2_CHECK* are always on (they guard API misuse, shape mismatches, and
// allocator invariants — errors that must never be silently ignored, in the
// spirit of the C++ Core Guidelines' "fail fast" advice). They throw
// ls2::Error rather than abort so that tests can assert on failures.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ls2 {

/// Exception type thrown by all LS2_CHECK macros.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "LS2 check failed at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Stream collector so callers can write LS2_CHECK(x) << "detail " << v;
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(file_, line_, expr_, os_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace ls2

#define LS2_CHECK(cond)                                 \
  if (cond) {                                           \
  } else                                                \
    ::ls2::detail::CheckMessage(__FILE__, __LINE__, #cond)

#define LS2_CHECK_EQ(a, b) LS2_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define LS2_CHECK_NE(a, b) LS2_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define LS2_CHECK_LT(a, b) LS2_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define LS2_CHECK_LE(a, b) LS2_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define LS2_CHECK_GT(a, b) LS2_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define LS2_CHECK_GE(a, b) LS2_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
