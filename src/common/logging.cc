#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace ls2 {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<void (*)(LogLevel, const std::string&)> g_sink{nullptr};
thread_local std::string t_identity;

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_identity(const std::string& identity) { t_identity = identity; }
const std::string& log_identity() { return t_identity; }

void set_log_sink(void (*sink)(LogLevel, const std::string&)) {
  g_sink.store(sink);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string line = "[LS2:";
  line += level_tag(level);
  line += "]";
  if (!t_identity.empty()) {
    line += " [";
    line += t_identity;
    line += "]";
  }
  line += " ";
  line += msg;
  if (auto* sink = g_sink.load()) {
    sink(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}
}  // namespace detail

}  // namespace ls2
