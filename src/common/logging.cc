#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace ls2 {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[LS2:%s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace ls2
