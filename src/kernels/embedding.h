// Embedding layer kernels (§IV-A.2).
//
// Forward:  y(w, p) = Dropout(s * E[w] + P[p]).
// LightSeq2 performs lookup, scaling, positional add and dropout in ONE
// launch; the baseline launches lookup / scale / pos-add / dropout
// separately, materialising each intermediate.
//
// Backward: grad E[w] = s * sum over every occurrence of token w of
// (mask ⊙ dy) — a sparse aggregation implemented with atomic adds on the
// device (here: conflict-free column-parallel accumulation computing the
// same sums). The positional table is sinusoidal and receives no gradient.
#pragma once

#include "kernels/dropout.h"  // Impl
#include "kernels/kernel_context.h"

namespace ls2::kern {

/// Fill `pos` [Lmax, H] with the sinusoidal position encoding.
void init_sinusoidal_positions(const Tensor& pos);

/// ids: [B, L] i32; emb: [V, H]; pos: [Lmax, H]; y: [B, L, H];
/// mask: [B, L, H] u8 dropout mask (kept for backward).
void embedding_fw(KernelContext& kc, Impl impl, const Tensor& ids, const Tensor& emb,
                  const Tensor& pos, const Tensor& y, const Tensor& mask, float scale,
                  float p, uint64_t stream, int32_t pad_id = -1);

/// Single-token decode lookup (serving): ids [S, 1] i32, positions [S] i32
/// (each slot's next position), y [S, 1, H]. Computes
/// y(s) = scale * E[ids_s] + P[positions_s] with NO dropout (inference) —
/// arithmetic matches embedding_fw at p = 0, so incremental decode is
/// bitwise-identical to the full forward. pad ids produce zero rows.
void embedding_decode_fw(KernelContext& kc, Impl impl, const Tensor& ids, const Tensor& emb,
                         const Tensor& pos, const Tensor& positions, const Tensor& y,
                         float scale, int32_t pad_id = -1);

/// Accumulate token-embedding gradients into d_emb. `zero_first` zeroes the
/// table in its own launch before scattering; pass false when the training
/// step already zeroed all gradients (required for tied embeddings, where
/// the output projection accumulated into d_emb earlier in the backward).
void embedding_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& ids,
                  const Tensor& mask, const Tensor& d_emb, float scale, float p,
                  int32_t pad_id = -1, bool zero_first = true);

}  // namespace ls2::kern
