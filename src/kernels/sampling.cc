#include "kernels/sampling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"

namespace ls2::kern {

namespace {

simgpu::KernelDesc desc(std::string name, int64_t br, int64_t bw, double flops, double eff) {
  simgpu::KernelDesc d;
  d.name = std::move(name);
  d.bytes_read = br;
  d.bytes_written = bw;
  d.flops = flops;
  d.mem_efficiency = eff;
  return d;
}

template <typename T>
void argmax_body(const Tensor& logits, const Tensor& out) {
  const Shape flat = logits.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  const T* lp = logits.data<T>();
  int32_t* op = out.data<int32_t>();
  parallel_for(0, rows, [&](int64_t r) {
    const T* row = lp + r * cols;
    int64_t best = 0;
    float best_v = static_cast<float>(row[0]);
    for (int64_t j = 1; j < cols; ++j) {
      const float v = static_cast<float>(row[j]);
      if (v > best_v) {
        best_v = v;
        best = j;
      }
    }
    op[r] = static_cast<int32_t>(best);
  });
}

template <typename T>
void sample_body(const Tensor& logits, const Tensor& out, int64_t k, float temperature,
                 const Rng& rng, uint64_t stream) {
  const Shape flat = logits.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  const T* lp = logits.data<T>();
  int32_t* op = out.data<int32_t>();
  const float inv_t = 1.0f / temperature;
  parallel_for(0, rows, [&](int64_t r) {
    const T* row = lp + r * cols;
    // Top-k threshold: the k-th largest logit (keep everything >= it).
    float threshold = -std::numeric_limits<float>::infinity();
    if (k > 0 && k < cols) {
      std::vector<float> vals(static_cast<size_t>(cols));
      for (int64_t j = 0; j < cols; ++j) vals[static_cast<size_t>(j)] = static_cast<float>(row[j]);
      std::nth_element(vals.begin(), vals.begin() + (k - 1), vals.end(),
                       std::greater<float>());
      threshold = vals[static_cast<size_t>(k - 1)];
    }
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < cols; ++j) {
      const float v = static_cast<float>(row[j]);
      if (v >= threshold) mx = std::max(mx, v);
    }
    double z = 0;
    for (int64_t j = 0; j < cols; ++j) {
      const float v = static_cast<float>(row[j]);
      if (v >= threshold) z += std::exp((v - mx) * inv_t);
    }
    // Inverse CDF in the kept set; the final kept index absorbs rounding.
    const double u = static_cast<double>(rng.uniform(stream, static_cast<uint64_t>(r))) * z;
    double acc = 0;
    int64_t chosen = -1;
    for (int64_t j = 0; j < cols; ++j) {
      const float v = static_cast<float>(row[j]);
      if (v < threshold) continue;
      acc += std::exp((v - mx) * inv_t);
      chosen = j;
      if (acc > u) break;
    }
    op[r] = static_cast<int32_t>(chosen);
  });
}

}  // namespace

void argmax_rows(KernelContext& kc, Impl impl, const Tensor& logits, const Tensor& out) {
  const Shape flat = logits.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  LS2_CHECK(out.dtype() == DType::kI32);
  LS2_CHECK_EQ(out.numel(), rows);
  const double eff = reduction_efficiency(impl == Impl::kLS2 ? 0.85 : 0.65, rows, cols, 32,
                                          kc.dev.profile().resident_threads);
  const std::string sys = impl == Impl::kLS2 ? "ls2" : impl_name(impl);
  kc.dev.launch(desc(sys + ".argmax", static_cast<int64_t>(logits.bytes()), rows * 4,
                     static_cast<double>(rows) * cols, eff),
                [&] { LS2_DISPATCH_FLOAT(logits.dtype(), T, argmax_body<T>(logits, out)); });
}

void sample_topk(KernelContext& kc, Impl impl, const Tensor& logits, const Tensor& out,
                 int64_t k, float temperature, uint64_t stream) {
  const Shape flat = logits.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  LS2_CHECK(out.dtype() == DType::kI32);
  LS2_CHECK_EQ(out.numel(), rows);
  LS2_CHECK(temperature > 0.0f) << "sampling temperature must be positive";
  const int64_t lb = static_cast<int64_t>(logits.bytes());
  const double flops = static_cast<double>(rows) * cols * 4.0;
  if (impl == Impl::kLS2) {
    const double eff =
        reduction_efficiency(0.82, rows, cols, 32, kc.dev.profile().resident_threads);
    kc.dev.launch(desc("ls2.sample_topk", lb, rows * 4, flops, eff),
                  [&, k, temperature, stream] {
                    LS2_DISPATCH_FLOAT(logits.dtype(), T,
                                       sample_body<T>(logits, out, k, temperature, kc.rng,
                                                      stream));
                  });
    return;
  }
  // Baselines run a top-k partition pass (full read, writes the kept set)
  // and a separate categorical draw; only the last launch runs the body.
  const std::string sys = impl_name(impl);
  const double eff =
      reduction_efficiency(0.60, rows, cols, 32, kc.dev.profile().resident_threads);
  kc.dev.launch(desc(sys + ".topk", lb, rows * std::max<int64_t>(k, 1) * 8, flops, eff),
                nullptr);
  kc.dev.launch(desc(sys + ".multinomial", lb, rows * 4, flops, eff),
                [&, k, temperature, stream] {
                  LS2_DISPATCH_FLOAT(logits.dtype(), T,
                                     sample_body<T>(logits, out, k, temperature, kc.rng,
                                                    stream));
                });
}

}  // namespace ls2::kern
