#include "kernels/trainer_kernels.h"

#include <cmath>

#include "common/parallel.h"

namespace ls2::kern {

const char* trainer_impl_name(TrainerImpl impl) {
  switch (impl) {
    case TrainerImpl::kTorch: return "torch";
    case TrainerImpl::kApex: return "apex";
    case TrainerImpl::kLS2: return "ls2";
  }
  return "?";
}

namespace {

double trainer_eff(TrainerImpl impl) {
  switch (impl) {
    case TrainerImpl::kTorch: return 0.75;
    case TrainerImpl::kApex: return 0.80;
    case TrainerImpl::kLS2: return 0.92;  // vectorised half2 loads/stores
  }
  return 0.7;
}

simgpu::KernelDesc desc(std::string name, int64_t br, int64_t bw, double flops, double eff) {
  simgpu::KernelDesc d;
  d.name = std::move(name);
  d.bytes_read = br;
  d.bytes_written = bw;
  d.flops = flops;
  d.mem_efficiency = eff;
  d.compute_efficiency = 0.6;
  return d;
}

template <typename T>
void adam_body(const Tensor& p, const Tensor& g, const Tensor& m, const Tensor& v,
               const AdamHyper& h, float grad_scale, const Tensor* p16_out) {
  const int64_t n = p.numel();
  T* pp = p.data<T>();
  const T* gp = g.data<T>();
  float* mp = m.data<float>();
  float* vp = v.data<float>();
  Half* p16 = p16_out ? p16_out->data<Half>() : nullptr;
  const float bc1 = 1.0f - std::pow(h.beta1, static_cast<float>(h.step));
  const float bc2 = 1.0f - std::pow(h.beta2, static_cast<float>(h.step));
  parallel_for(0, n, [&](int64_t i) {
    // Load & convert to FP32 registers (on-the-fly for T=Half).
    const float gi = static_cast<float>(gp[i]) * grad_scale;
    float pi = static_cast<float>(pp[i]);
    mp[i] = h.beta1 * mp[i] + (1.0f - h.beta1) * gi;
    vp[i] = h.beta2 * vp[i] + (1.0f - h.beta2) * gi * gi;
    const float mhat = mp[i] / bc1;
    const float vhat = vp[i] / bc2;
    pi -= h.lr * (mhat / (std::sqrt(vhat) + h.eps) + h.weight_decay * pi);
    pp[i] = T(pi);  // store & convert back
    if (p16) p16[i] = Half(pi);
  });
}

template <typename T>
void sgd_body(const Tensor& p, const Tensor& g, const Tensor& mom, const SgdHyper& h,
              float grad_scale, const Tensor* p16_out) {
  const int64_t n = p.numel();
  T* pp = p.data<T>();
  const T* gp = g.data<T>();
  float* mp = mom.data<float>();
  Half* p16 = p16_out ? p16_out->data<Half>() : nullptr;
  parallel_for(0, n, [&](int64_t i) {
    const float gi = static_cast<float>(gp[i]) * grad_scale +
                     h.weight_decay * static_cast<float>(pp[i]);
    mp[i] = h.momentum * mp[i] + gi;
    const float pi = static_cast<float>(pp[i]) - h.lr * mp[i];
    pp[i] = T(pi);
    if (p16) p16[i] = Half(pi);
  });
}

void check_update_args(const Tensor& p, const Tensor& g, const Tensor& m) {
  LS2_CHECK_EQ(p.numel(), g.numel());
  LS2_CHECK_EQ(p.numel(), m.numel());
  LS2_CHECK(p.dtype() == g.dtype()) << "param/grad dtype mismatch";
  LS2_CHECK(m.dtype() == DType::kF32) << "optimizer state must be f32";
}

}  // namespace

void adam_update(KernelContext& kc, TrainerImpl impl, const Tensor& p, const Tensor& g,
                 const Tensor& m, const Tensor& v, const AdamHyper& h, float grad_scale,
                 const Tensor* model_fp16_out) {
  check_update_args(p, g, m);
  LS2_CHECK_EQ(p.numel(), v.numel());
  int64_t br = static_cast<int64_t>(p.bytes() + g.bytes() + m.bytes() + v.bytes());
  int64_t bw = static_cast<int64_t>(p.bytes() + m.bytes() + v.bytes());
  if (model_fp16_out) bw += static_cast<int64_t>(model_fp16_out->bytes());
  kc.dev.launch(desc(std::string(trainer_impl_name(impl)) + ".adam", br, bw,
                     static_cast<double>(p.numel()) * 12.0, trainer_eff(impl)),
                [&, h, grad_scale, model_fp16_out] {
                  LS2_DISPATCH_FLOAT(p.dtype(), T,
                                     adam_body<T>(p, g, m, v, h, grad_scale,
                                                  model_fp16_out));
                });
}

void sgd_update(KernelContext& kc, TrainerImpl impl, const Tensor& p, const Tensor& g,
                const Tensor& momentum_buf, const SgdHyper& h, float grad_scale,
                const Tensor* model_fp16_out) {
  check_update_args(p, g, momentum_buf);
  int64_t br = static_cast<int64_t>(p.bytes() + g.bytes() + momentum_buf.bytes());
  int64_t bw = static_cast<int64_t>(p.bytes() + momentum_buf.bytes());
  if (model_fp16_out) bw += static_cast<int64_t>(model_fp16_out->bytes());
  kc.dev.launch(desc(std::string(trainer_impl_name(impl)) + ".sgd", br, bw,
                     static_cast<double>(p.numel()) * 5.0, trainer_eff(impl)),
                [&, h, grad_scale, model_fp16_out] {
                  LS2_DISPATCH_FLOAT(p.dtype(), T,
                                     sgd_body<T>(p, g, momentum_buf, h, grad_scale,
                                                 model_fp16_out));
                });
}

void check_overflow(KernelContext& kc, const Tensor& g, const Tensor& flag,
                    TrainerImpl impl) {
  LS2_CHECK(flag.dtype() == DType::kF32);
  kc.dev.launch(desc(std::string(trainer_impl_name(impl)) + ".check_overflow",
                     static_cast<int64_t>(g.bytes()), 4,
                     static_cast<double>(g.numel()), 0.85),
                [&] {
                  bool bad = false;
                  LS2_DISPATCH_FLOAT(g.dtype(), T, {
                    const T* gp = g.data<T>();
                    for (int64_t i = 0; i < g.numel() && !bad; ++i) {
                      const float v = static_cast<float>(gp[i]);
                      if (std::isnan(v) || std::isinf(v)) bad = true;
                    }
                  });
                  flag.data<float>()[0] = bad ? 1.0f : 0.0f;
                });
}

}  // namespace ls2::kern
