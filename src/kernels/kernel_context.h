// Shared state handed to every kernel: the simulated device, a scratch
// allocator for intermediate tensors the *baseline* implementations
// materialise (fused kernels, by design, do not), and the counter-based RNG
// for dropout.
#pragma once

#include <cstdint>

#include "simgpu/device.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ls2::kern {

struct KernelContext {
  KernelContext(simgpu::Device& device, BufferAllocator* scratch_alloc, uint64_t seed)
      : dev(device), scratch(scratch_alloc ? scratch_alloc : heap_allocator()), rng(seed) {}

  simgpu::Device& dev;
  BufferAllocator* scratch;
  Rng rng;

  /// Dropout stream id for the next dropout site: a per-step base plus a
  /// per-site counter, so every mask is a pure function of
  /// (seed, step, site) — the Philox-style (seed, offset) discipline. Each
  /// site draws a distinct mask, fused and unfused implementations draw
  /// identical masks (same site order), and a step replayed from a captured
  /// graph draws bitwise the masks its eager twin would: the step base
  /// advances OUTSIDE the graph (begin_step_rng is the per-step graph
  /// parameter), never from inside a captured kernel.
  uint64_t next_dropout_stream() { return rng_step_base + dropout_site++; }

  /// Advance the RNG to step `step_index` (0-based) and reset the site
  /// counter. core::Session::begin_step calls this once per training step;
  /// code that never calls it keeps the legacy monotone stream sequence.
  void begin_step_rng(uint64_t step_index) {
    rng_step_base = (step_index + 1) << 32;
    dropout_site = 1;
  }

  uint64_t rng_step_base = 0;
  uint64_t dropout_site = 1;

  /// Microbatch index under pipeline parallelism (core/pp_step.h), 0
  /// otherwise. RNG-drawing kernels offset their element index by
  /// `microbatch * numel` so microbatch j draws exactly the mask slice the
  /// full-batch launch would have drawn for the same global elements
  /// (batches are sliced along dim 0, so the j-th microbatch's elements ARE
  /// the contiguous index range [j*numel, (j+1)*numel) of the full tensor).
  /// The engine resets dropout_site to 1 per microbatch for the same
  /// reason: every microbatch walks the same site sequence the full batch
  /// walks once.
  uint64_t microbatch = 0;
};

/// Dispatch a template over the two floating dtypes.
#define LS2_DISPATCH_FLOAT(DTYPE, T, ...)                                \
  switch (DTYPE) {                                                       \
    case ::ls2::DType::kF32: {                                           \
      using T = float;                                                   \
      __VA_ARGS__;                                                       \
      break;                                                             \
    }                                                                    \
    case ::ls2::DType::kF16: {                                           \
      using T = ::ls2::Half;                                             \
      __VA_ARGS__;                                                       \
      break;                                                             \
    }                                                                    \
    default:                                                             \
      LS2_CHECK(false) << "kernel requires a floating dtype";            \
  }

/// Achieved-bandwidth model for row-reduction kernels (LayerNorm, Softmax,
/// criterion). `threads_per_row` is the parallelisation strategy; efficiency
/// degrades when threads outnumber row elements (idle lanes) or when too few
/// rows exist to occupy the device. `device_threads` is the device's
/// thread-residency capacity (DeviceProfile::resident_threads); the
/// four-argument form assumes a V100-class part.
double reduction_efficiency(double base, int64_t rows, int64_t cols, int threads_per_row);
double reduction_efficiency(double base, int64_t rows, int64_t cols, int threads_per_row,
                            double device_threads);

}  // namespace ls2::kern
