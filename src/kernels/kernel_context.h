// Shared state handed to every kernel: the simulated device, a scratch
// allocator for intermediate tensors the *baseline* implementations
// materialise (fused kernels, by design, do not), and the counter-based RNG
// for dropout.
#pragma once

#include <cstdint>

#include "simgpu/device.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ls2::kern {

struct KernelContext {
  KernelContext(simgpu::Device& device, BufferAllocator* scratch_alloc, uint64_t seed)
      : dev(device), scratch(scratch_alloc ? scratch_alloc : heap_allocator()), rng(seed) {}

  simgpu::Device& dev;
  BufferAllocator* scratch;
  Rng rng;

  /// Monotone dropout stream id so each dropout site draws distinct masks
  /// while remaining reproducible across fused/unfused implementations.
  uint64_t next_dropout_stream() { return dropout_stream++; }
  uint64_t dropout_stream = 1;
};

/// Dispatch a template over the two floating dtypes.
#define LS2_DISPATCH_FLOAT(DTYPE, T, ...)                                \
  switch (DTYPE) {                                                       \
    case ::ls2::DType::kF32: {                                           \
      using T = float;                                                   \
      __VA_ARGS__;                                                       \
      break;                                                             \
    }                                                                    \
    case ::ls2::DType::kF16: {                                           \
      using T = ::ls2::Half;                                             \
      __VA_ARGS__;                                                       \
      break;                                                             \
    }                                                                    \
    default:                                                             \
      LS2_CHECK(false) << "kernel requires a floating dtype";            \
  }

/// Achieved-bandwidth model for row-reduction kernels (LayerNorm, Softmax,
/// criterion). `threads_per_row` is the parallelisation strategy; efficiency
/// degrades when threads outnumber row elements (idle lanes) or when too few
/// rows exist to occupy the device.
double reduction_efficiency(double base, int64_t rows, int64_t cols, int threads_per_row);

}  // namespace ls2::kern
