#include "kernels/kernel_context.h"

#include <algorithm>
#include <cmath>

namespace ls2::kern {

double reduction_efficiency(double base, int64_t rows, int64_t cols, int threads_per_row,
                            double device_threads) {
  // Idle lanes when a row is narrower than its thread team.
  const double lane_util =
      std::min(1.0, static_cast<double>(cols) / static_cast<double>(threads_per_row));
  // Device occupancy: bigger parts need more resident threads to fill.
  const double resident = static_cast<double>(rows) * threads_per_row;
  const double occupancy = std::pow(std::min(1.0, resident / device_threads), 0.25);
  return std::clamp(base * lane_util * occupancy, 0.02, 0.95);
}

double reduction_efficiency(double base, int64_t rows, int64_t cols, int threads_per_row) {
  // V100-class residency (80 SMs x 2048 threads), the historical default.
  return reduction_efficiency(base, rows, cols, threads_per_row, 163840.0);
}

}  // namespace ls2::kern
