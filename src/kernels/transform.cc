#include "kernels/transform.h"

#include <algorithm>
#include <cstring>

#include "common/parallel.h"
#include "kernels/elementwise.h"

namespace ls2::kern {

namespace {

simgpu::KernelDesc desc(std::string name, int64_t br, int64_t bw, double eff) {
  simgpu::KernelDesc d;
  d.name = std::move(name);
  d.bytes_read = br;
  d.bytes_written = bw;
  d.flops = 0;
  d.mem_efficiency = eff;
  return d;
}

// Strided copies achieve less of peak than streaming kernels.
constexpr double kBaselineTransposeEff = 0.55;
constexpr double kFusedTransposeEff = 0.75;

template <typename T>
void split_body(const Tensor& x, const Tensor* bias, const std::vector<Tensor>& outs) {
  const int64_t B = outs[0].shape()[0], N = outs[0].shape()[1], L = outs[0].shape()[2],
                D = outs[0].shape()[3];
  const int64_t G = static_cast<int64_t>(outs.size());
  const int64_t H = N * D;
  const T* xp = x.data<T>();
  const T* bp = bias ? bias->data<T>() : nullptr;
  parallel_for(0, B * L, [&](int64_t bl) {
    const int64_t b = bl / L, l = bl % L;
    const T* xrow = xp + bl * G * H;
    for (int64_t g = 0; g < G; ++g) {
      T* op = outs[static_cast<size_t>(g)].data<T>();
      for (int64_t n = 0; n < N; ++n) {
        for (int64_t d = 0; d < D; ++d) {
          const int64_t src = g * H + n * D + d;
          float v = static_cast<float>(xrow[src]);
          if (bp) v += static_cast<float>(bp[src]);
          op[((b * N + n) * L + l) * D + d] = T(v);
        }
      }
    }
  });
}

template <typename T>
void merge_body(const std::vector<Tensor>& ins, const Tensor& dx) {
  const int64_t B = ins[0].shape()[0], N = ins[0].shape()[1], L = ins[0].shape()[2],
                D = ins[0].shape()[3];
  const int64_t G = static_cast<int64_t>(ins.size());
  const int64_t H = N * D;
  T* xp = dx.data<T>();
  parallel_for(0, B * L, [&](int64_t bl) {
    const int64_t b = bl / L, l = bl % L;
    T* xrow = xp + bl * G * H;
    for (int64_t g = 0; g < G; ++g) {
      const T* ip = ins[static_cast<size_t>(g)].data<T>();
      for (int64_t n = 0; n < N; ++n) {
        for (int64_t d = 0; d < D; ++d) {
          xrow[g * H + n * D + d] = ip[((b * N + n) * L + l) * D + d];
        }
      }
    }
  });
}

int64_t total_bytes(const std::vector<Tensor>& ts) {
  int64_t b = 0;
  for (const Tensor& t : ts) b += static_cast<int64_t>(t.bytes());
  return b;
}

void check_split_shapes(const Tensor& x, const std::vector<Tensor>& outs) {
  LS2_CHECK(!outs.empty());
  LS2_CHECK_EQ(outs[0].shape().rank(), 4);
  int64_t out_elems = 0;
  for (const Tensor& o : outs) {
    LS2_CHECK(o.shape() == outs[0].shape()) << "head tensors must agree";
    out_elems += o.numel();
  }
  LS2_CHECK_EQ(x.numel(), out_elems);
}

}  // namespace

void bias_split_transpose_fw(KernelContext& kc, Impl impl, const Tensor& x,
                             const Tensor& bias, const std::vector<Tensor>& outs) {
  check_split_shapes(x, outs);
  LS2_CHECK_EQ(bias.numel(), x.shape()[-1]);
  if (impl == Impl::kLS2) {
    kc.dev.launch(desc("ls2.bias_split_transpose",
                       static_cast<int64_t>(x.bytes() + bias.bytes()), total_bytes(outs),
                       kFusedTransposeEff),
                  [&] {
                    LS2_DISPATCH_FLOAT(x.dtype(), T, split_body<T>(x, &bias, outs));
                  });
    return;
  }
  // Baseline: a bias kernel over the full projection, then one strided
  // transpose launch per head tensor.
  baseline::add_bias(kc, x, bias, x);
  for (size_t g = 0; g < outs.size(); ++g) {
    const bool last = g + 1 == outs.size();
    kc.dev.launch(desc("torch.transpose_0213",
                       static_cast<int64_t>(outs[g].bytes()),
                       static_cast<int64_t>(outs[g].bytes()), kBaselineTransposeEff),
                  // All slices are produced by one body call on the last
                  // launch; earlier launches charge their traffic only.
                  last ? std::function<void()>([&] {
                    LS2_DISPATCH_FLOAT(x.dtype(), T, split_body<T>(x, nullptr, outs));
                  })
                       : std::function<void()>(nullptr));
  }
}

void split_transpose_bw(KernelContext& kc, Impl impl, const std::vector<Tensor>& douts,
                        const Tensor& dx) {
  check_split_shapes(dx, douts);
  if (impl == Impl::kLS2) {
    kc.dev.launch(desc("ls2.split_transpose_bw", total_bytes(douts),
                       static_cast<int64_t>(dx.bytes()), kFusedTransposeEff),
                  [&] { LS2_DISPATCH_FLOAT(dx.dtype(), T, merge_body<T>(douts, dx)); });
    return;
  }
  for (size_t g = 0; g < douts.size(); ++g) {
    const bool last = g + 1 == douts.size();
    kc.dev.launch(desc("torch.transpose_0213_bw",
                       static_cast<int64_t>(douts[g].bytes()),
                       static_cast<int64_t>(douts[g].bytes()), kBaselineTransposeEff),
                  last ? std::function<void()>([&] {
                    LS2_DISPATCH_FLOAT(dx.dtype(), T, merge_body<T>(douts, dx));
                  })
                       : std::function<void()>(nullptr));
  }
}

void merge_heads_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y) {
  LS2_CHECK_EQ(x.shape().rank(), 4);
  LS2_CHECK_EQ(x.numel(), y.numel());
  const double eff = impl == Impl::kLS2 ? kFusedTransposeEff : kBaselineTransposeEff;
  const std::string sys = impl == Impl::kLS2 ? "ls2" : "torch";
  kc.dev.launch(desc(sys + ".merge_heads", static_cast<int64_t>(x.bytes()),
                     static_cast<int64_t>(y.bytes()), eff),
                [&] { LS2_DISPATCH_FLOAT(x.dtype(), T, merge_body<T>({x}, y)); });
}

namespace {

// Scatter [B, N, Lq, D] head rows into cache slots [S, N, Lmax, D]:
// row l of batch item b lands at cache row start_b + l of slot slot_b.
// `slot_ids` maps batch row -> slot (nullptr: slot s = row s, the decode
// full-slot batch); `positions` gives the start row per batch item
// (nullptr: 0, the prefill case).
template <typename T>
void kv_scatter_body(const Tensor& src, const Tensor& cache, const Tensor* slot_ids,
                     const Tensor* positions) {
  const int64_t N = src.shape()[1], Lq = src.shape()[2], D = src.shape()[3];
  const int64_t Lmax = cache.shape()[2];
  const int32_t* sp = slot_ids ? slot_ids->data<int32_t>() : nullptr;
  const int32_t* pp = positions ? positions->data<int32_t>() : nullptr;
  const T* xp = src.data<T>();
  T* cp = cache.data<T>();
  parallel_for(0, src.shape()[0] * N, [&](int64_t bn) {
    const int64_t b = bn / N, n = bn % N;
    const int64_t slot = sp ? sp[b] : b;
    const int64_t start = pp ? pp[b] : 0;
    LS2_CHECK(slot >= 0 && slot < cache.shape()[0]) << "kv cache slot out of range";
    LS2_CHECK(start >= 0 && start + Lq <= Lmax) << "kv cache overflow: slot " << slot;
    const T* srow = xp + (bn * Lq) * D;
    T* crow = cp + ((slot * N + n) * Lmax + start) * D;
    std::memcpy(crow, srow, static_cast<size_t>(Lq * D) * sizeof(T));
  });
}

void kv_write(KernelContext& kc, Impl impl, const char* tag, const Tensor& k_new,
              const Tensor& v_new, const Tensor& k_cache, const Tensor& v_cache,
              const Tensor* slots, const Tensor* positions) {
  LS2_CHECK_EQ(k_new.shape().rank(), 4);
  LS2_CHECK(k_new.shape() == v_new.shape());
  LS2_CHECK(k_cache.shape() == v_cache.shape());
  LS2_CHECK_EQ(k_new.shape()[1], k_cache.shape()[1]);
  LS2_CHECK_EQ(k_new.shape()[3], k_cache.shape()[3]);
  const int64_t nb = static_cast<int64_t>(k_new.bytes());
  auto body = [&] {
    LS2_DISPATCH_FLOAT(k_new.dtype(), T, {
      kv_scatter_body<T>(k_new, k_cache, slots, positions);
      kv_scatter_body<T>(v_new, v_cache, slots, positions);
    });
  };
  if (impl == Impl::kLS2) {
    kc.dev.launch(desc(std::string("ls2.") + tag, 2 * nb + k_new.shape()[0] * 8, 2 * nb,
                       kFusedTransposeEff),
                  body);
    return;
  }
  // Baseline: one strided copy launch per tensor.
  kc.dev.launch(desc(std::string("torch.") + tag + "_k", nb, nb, kBaselineTransposeEff),
                nullptr);
  kc.dev.launch(desc(std::string("torch.") + tag + "_v", nb, nb, kBaselineTransposeEff),
                body);
}

}  // namespace

void kv_cache_store(KernelContext& kc, Impl impl, const Tensor& k_new, const Tensor& v_new,
                    const Tensor& k_cache, const Tensor& v_cache, const Tensor& slots) {
  LS2_CHECK(slots.dtype() == DType::kI32);
  LS2_CHECK_EQ(slots.numel(), k_new.shape()[0]);
  kv_write(kc, impl, "kv_cache_store", k_new, v_new, k_cache, v_cache, &slots,
           /*positions=*/nullptr);
}

namespace {

// Scatter [B, N, Lq, D] head rows through a block table into a paged pool
// [P, N, page, D]: logical row l of lane `lane` lands in page
// table[lane][l / page] at in-page row l % page. Prefill (`write_begin`/
// `write_end` non-null) writes a row range; decode append (`positions`
// non-null) writes the single row positions[b] with lane = b.
template <typename T>
void kv_paged_scatter_body(const Tensor& src, const Tensor& pool, const Tensor& table,
                           const int32_t* lanes, const int32_t* begins,
                           const int32_t* ends, const int32_t* positions) {
  const int64_t N = src.shape()[1], Lq = src.shape()[2], D = src.shape()[3];
  const int64_t pool_pages = pool.shape()[0], page = pool.shape()[2];
  const int64_t pps = table.shape()[1];
  const int32_t* tp = table.data<int32_t>();
  const T* xp = src.data<T>();
  T* cp = pool.data<T>();
  auto dst_row = [&](const int32_t* row, int64_t n, int64_t pos) -> T* {
    LS2_CHECK(pos >= 0 && pos < pps * page) << "kv pool: position " << pos
                                            << " beyond block table reach";
    const int64_t pg = row[pos / page];
    LS2_CHECK(pg >= 0 && pg < pool_pages) << "kv pool: page id out of range";
    return cp + ((pg * N + n) * page + pos % page) * D;
  };
  parallel_for(0, src.shape()[0] * N, [&](int64_t bn) {
    const int64_t b = bn / N, n = bn % N;
    const int64_t lane = lanes ? lanes[b] : b;
    LS2_CHECK(lane >= 0 && lane < table.shape()[0]) << "kv pool: lane out of range";
    const int32_t* row = tp + lane * pps;
    const T* srow = xp + (bn * Lq) * D;
    if (positions) {
      std::memcpy(dst_row(row, n, positions[b]), srow,
                  static_cast<size_t>(D) * sizeof(T));
      return;
    }
    const int64_t lo = begins[b], hi = ends[b];
    LS2_CHECK(lo >= 0 && lo <= hi && hi <= Lq) << "kv pool: bad write range";
    for (int64_t l = lo; l < hi; ++l) {
      std::memcpy(dst_row(row, n, l), srow + l * D,
                  static_cast<size_t>(D) * sizeof(T));
    }
  });
}

void kv_paged_write(KernelContext& kc, Impl impl, const char* tag, const Tensor& k_new,
                    const Tensor& v_new, const Tensor& k_pool, const Tensor& v_pool,
                    const Tensor& table, const Tensor* lanes, const Tensor* write_begin,
                    const Tensor* write_end, const Tensor* positions) {
  LS2_CHECK_EQ(k_new.shape().rank(), 4);
  LS2_CHECK(k_new.shape() == v_new.shape());
  LS2_CHECK(k_pool.shape() == v_pool.shape());
  LS2_CHECK_EQ(k_pool.shape().rank(), 4);
  LS2_CHECK_EQ(k_new.shape()[1], k_pool.shape()[1]);
  LS2_CHECK_EQ(k_new.shape()[3], k_pool.shape()[3]);
  LS2_CHECK(table.dtype() == DType::kI32);
  LS2_CHECK_EQ(table.shape().rank(), 2);
  const int64_t nb = static_cast<int64_t>(k_new.bytes());
  const int64_t meta = static_cast<int64_t>(table.bytes()) + k_new.shape()[0] * 12;
  auto body = [&] {
    LS2_DISPATCH_FLOAT(k_new.dtype(), T, {
      kv_paged_scatter_body<T>(k_new, k_pool, table,
                               lanes ? lanes->data<int32_t>() : nullptr,
                               write_begin ? write_begin->data<int32_t>() : nullptr,
                               write_end ? write_end->data<int32_t>() : nullptr,
                               positions ? positions->data<int32_t>() : nullptr);
      kv_paged_scatter_body<T>(v_new, v_pool, table,
                               lanes ? lanes->data<int32_t>() : nullptr,
                               write_begin ? write_begin->data<int32_t>() : nullptr,
                               write_end ? write_end->data<int32_t>() : nullptr,
                               positions ? positions->data<int32_t>() : nullptr);
    });
  };
  if (impl == Impl::kLS2) {
    kc.dev.launch(desc(std::string("ls2.") + tag, 2 * nb + meta, 2 * nb,
                       kFusedTransposeEff),
                  body);
    return;
  }
  kc.dev.launch(desc(std::string("torch.") + tag + "_k", nb + meta, nb,
                     kBaselineTransposeEff),
                nullptr);
  kc.dev.launch(desc(std::string("torch.") + tag + "_v", nb + meta, nb,
                     kBaselineTransposeEff),
                body);
}

// Materialize each lane's first lens[s] logical rows into contiguous
// scratch [S, N, Lcap, D], zero beyond the len. Copies run page-contiguous
// runs, never crossing a page boundary in one memcpy.
template <typename T>
void kv_gather_body(const Tensor& pool, const Tensor& table, const Tensor& lens,
                    const Tensor& out) {
  const int64_t N = out.shape()[1], Lcap = out.shape()[2], D = out.shape()[3];
  const int64_t pool_pages = pool.shape()[0], page = pool.shape()[2];
  const int64_t pps = table.shape()[1];
  const int32_t* tp = table.data<int32_t>();
  const int32_t* lp = lens.data<int32_t>();
  const T* cp = pool.data<T>();
  T* op = out.data<T>();
  std::memset(static_cast<void*>(op), 0, out.bytes());
  parallel_for(0, out.shape()[0] * N, [&](int64_t sn) {
    const int64_t s = sn / N, n = sn % N;
    const int64_t len = lp[s];
    LS2_CHECK(len >= 0 && len <= Lcap) << "kv gather: len " << len
                                       << " exceeds scratch capacity " << Lcap;
    const int32_t* row = tp + s * pps;
    T* orow = op + (sn * Lcap) * D;
    for (int64_t l = 0; l < len;) {
      const int64_t pg = row[l / page];
      LS2_CHECK(pg >= 0 && pg < pool_pages) << "kv gather: page id out of range";
      const int64_t in = l % page;
      const int64_t run = std::min(page - in, len - l);
      std::memcpy(orow + l * D, cp + ((pg * N + n) * page + in) * D,
                  static_cast<size_t>(run * D) * sizeof(T));
      l += run;
    }
  });
}

}  // namespace

void kv_cache_store_paged(KernelContext& kc, Impl impl, const Tensor& k_new,
                          const Tensor& v_new, const Tensor& k_pool, const Tensor& v_pool,
                          const Tensor& block_table, const Tensor& lanes,
                          const Tensor& write_begin, const Tensor& write_end) {
  LS2_CHECK(lanes.dtype() == DType::kI32 && write_begin.dtype() == DType::kI32 &&
            write_end.dtype() == DType::kI32);
  LS2_CHECK_EQ(lanes.numel(), k_new.shape()[0]);
  LS2_CHECK_EQ(write_begin.numel(), k_new.shape()[0]);
  LS2_CHECK_EQ(write_end.numel(), k_new.shape()[0]);
  kv_paged_write(kc, impl, "kv_store_paged", k_new, v_new, k_pool, v_pool, block_table,
                 &lanes, &write_begin, &write_end, /*positions=*/nullptr);
}

void kv_cache_append_paged(KernelContext& kc, Impl impl, const Tensor& k_new,
                           const Tensor& v_new, const Tensor& k_pool, const Tensor& v_pool,
                           const Tensor& block_table, const Tensor& positions) {
  LS2_CHECK(positions.dtype() == DType::kI32);
  LS2_CHECK_EQ(k_new.shape()[2], 1) << "append writes one token per lane";
  LS2_CHECK_EQ(k_new.shape()[0], block_table.shape()[0])
      << "decode appends run at full lane batch";
  LS2_CHECK_EQ(positions.numel(), k_new.shape()[0]);
  kv_paged_write(kc, impl, "kv_append_paged", k_new, v_new, k_pool, v_pool, block_table,
                 /*lanes=*/nullptr, /*write_begin=*/nullptr, /*write_end=*/nullptr,
                 &positions);
}

void kv_cache_gather(KernelContext& kc, Impl impl, const Tensor& k_pool,
                     const Tensor& v_pool, const Tensor& block_table,
                     const Tensor& attend_lens, const Tensor& k_out, const Tensor& v_out) {
  LS2_CHECK(k_pool.shape() == v_pool.shape());
  LS2_CHECK(k_out.shape() == v_out.shape());
  LS2_CHECK_EQ(k_out.shape().rank(), 4);
  LS2_CHECK_EQ(k_out.shape()[1], k_pool.shape()[1]);
  LS2_CHECK_EQ(k_out.shape()[3], k_pool.shape()[3]);
  LS2_CHECK(block_table.dtype() == DType::kI32 && attend_lens.dtype() == DType::kI32);
  LS2_CHECK_EQ(k_out.shape()[0], block_table.shape()[0]);
  LS2_CHECK_EQ(attend_lens.numel(), k_out.shape()[0]);
  // Charge at full scratch capacity: the traffic must be shape-static so a
  // replayed decode step validates against the captured graph.
  const int64_t nb = static_cast<int64_t>(k_out.bytes());
  const int64_t meta =
      static_cast<int64_t>(block_table.bytes()) + k_out.shape()[0] * 4;
  auto body = [&] {
    LS2_DISPATCH_FLOAT(k_out.dtype(), T, {
      kv_gather_body<T>(k_pool, block_table, attend_lens, k_out);
      kv_gather_body<T>(v_pool, block_table, attend_lens, v_out);
    });
  };
  if (impl == Impl::kLS2) {
    kc.dev.launch(desc("ls2.kv_gather", 2 * nb + meta, 2 * nb, kFusedTransposeEff), body);
    return;
  }
  kc.dev.launch(desc("torch.kv_gather_k", nb + meta, nb, kBaselineTransposeEff), nullptr);
  kc.dev.launch(desc("torch.kv_gather_v", nb + meta, nb, kBaselineTransposeEff), body);
}

void kv_page_copy(KernelContext& kc, Impl impl, const Tensor& k_pool, const Tensor& v_pool,
                  int64_t src_page, int64_t dst_page, int64_t rows) {
  LS2_CHECK(k_pool.shape() == v_pool.shape());
  LS2_CHECK_EQ(k_pool.shape().rank(), 4);
  const int64_t P = k_pool.shape()[0], N = k_pool.shape()[1], page = k_pool.shape()[2],
                D = k_pool.shape()[3];
  LS2_CHECK(src_page >= 0 && src_page < P && dst_page >= 0 && dst_page < P &&
            src_page != dst_page);
  LS2_CHECK(rows >= 0 && rows <= page);
  if (rows == 0) return;
  const int64_t nb = rows * N * D * static_cast<int64_t>(dtype_size(k_pool.dtype()));
  auto body = [&] {
    LS2_DISPATCH_FLOAT(k_pool.dtype(), T, {
      for (const Tensor* pool : {&k_pool, &v_pool}) {
        T* cp = pool->data<T>();
        parallel_for(0, N, [&](int64_t n) {
          std::memcpy(cp + ((dst_page * N + n) * page) * D,
                      cp + ((src_page * N + n) * page) * D,
                      static_cast<size_t>(rows * D) * sizeof(T));
        });
      }
    });
  };
  if (impl == Impl::kLS2) {
    kc.dev.launch(desc("ls2.kv_page_copy", 2 * nb, 2 * nb, kFusedTransposeEff), body);
    return;
  }
  kc.dev.launch(desc("torch.kv_page_copy_k", nb, nb, kBaselineTransposeEff), nullptr);
  kc.dev.launch(desc("torch.kv_page_copy_v", nb, nb, kBaselineTransposeEff), body);
}

void merge_heads_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& dx) {
  LS2_CHECK_EQ(dx.shape().rank(), 4);
  LS2_CHECK_EQ(dy.numel(), dx.numel());
  const double eff = impl == Impl::kLS2 ? kFusedTransposeEff : kBaselineTransposeEff;
  const std::string sys = impl == Impl::kLS2 ? "ls2" : "torch";
  kc.dev.launch(desc(sys + ".merge_heads_bw", static_cast<int64_t>(dy.bytes()),
                     static_cast<int64_t>(dx.bytes()), eff),
                [&] { LS2_DISPATCH_FLOAT(dy.dtype(), T, split_body<T>(dy, nullptr, {dx})); });
}

}  // namespace ls2::kern
