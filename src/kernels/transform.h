// Layout-change kernels around attention.
//
// Attention wants scores per head: activations [B, L, H] must become
// [B, N, L, D] (N heads of depth D = H/N) before the batched GEMMs and come
// back after. LightSeq2 fuses the projection bias into the same pass
// ("Bias adding & Reshape Q,K,V" in Fig. 4); the baseline launches a bias
// kernel plus one transpose copy per head tensor.
#pragma once

#include <vector>

#include "kernels/dropout.h"  // Impl
#include "kernels/kernel_context.h"

namespace ls2::kern {

/// x: [B, L, G*H] (projection GEMM output for G stacked heads groups, e.g.
/// G=3 for QKV), bias: [G*H]. outs: G tensors [B, N, L, D].
void bias_split_transpose_fw(KernelContext& kc, Impl impl, const Tensor& x,
                             const Tensor& bias, const std::vector<Tensor>& outs);

/// Backward of the split: douts (G x [B,N,L,D]) merge into dx [B, L, G*H].
/// (The projection-bias gradient is a separate bias_grad reduction.)
void split_transpose_bw(KernelContext& kc, Impl impl, const std::vector<Tensor>& douts,
                        const Tensor& dx);

/// [B, N, L, D] -> [B, L, H] after attention-weighted values.
void merge_heads_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y);

/// [B, L, H] -> [B, N, L, D].
void merge_heads_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& dx);

// --- KV-cache layout kernels (incremental decoding, src/infer/) ---
//
// The cache keeps each layer's keys/values in head layout [S, N, Lmax, D]
// (S pre-allocated request slots). Writes are strided row scatters; under
// kLS2 keys and values move in ONE fused launch, baselines charge one copy
// kernel per tensor.

/// Prefill write: k_new/v_new [B, N, Lq, D] land in cache slots
/// `slots` (i32 [B]) at rows [0, Lq).
void kv_cache_store(KernelContext& kc, Impl impl, const Tensor& k_new, const Tensor& v_new,
                    const Tensor& k_cache, const Tensor& v_cache, const Tensor& slots);

/// Decode append: k_new/v_new [S, N, 1, D] land in cache row
/// `positions[s]` (i32 [S]) of slot s — one token per slot per step.
void kv_cache_append(KernelContext& kc, Impl impl, const Tensor& k_new, const Tensor& v_new,
                     const Tensor& k_cache, const Tensor& v_cache, const Tensor& positions);

}  // namespace ls2::kern
