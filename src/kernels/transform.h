// Layout-change kernels around attention.
//
// Attention wants scores per head: activations [B, L, H] must become
// [B, N, L, D] (N heads of depth D = H/N) before the batched GEMMs and come
// back after. LightSeq2 fuses the projection bias into the same pass
// ("Bias adding & Reshape Q,K,V" in Fig. 4); the baseline launches a bias
// kernel plus one transpose copy per head tensor.
#pragma once

#include <vector>

#include "kernels/dropout.h"  // Impl
#include "kernels/kernel_context.h"

namespace ls2::kern {

/// x: [B, L, G*H] (projection GEMM output for G stacked heads groups, e.g.
/// G=3 for QKV), bias: [G*H]. outs: G tensors [B, N, L, D].
void bias_split_transpose_fw(KernelContext& kc, Impl impl, const Tensor& x,
                             const Tensor& bias, const std::vector<Tensor>& outs);

/// Backward of the split: douts (G x [B,N,L,D]) merge into dx [B, L, G*H].
/// (The projection-bias gradient is a separate bias_grad reduction.)
void split_transpose_bw(KernelContext& kc, Impl impl, const std::vector<Tensor>& douts,
                        const Tensor& dx);

/// [B, N, L, D] -> [B, L, H] after attention-weighted values.
void merge_heads_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y);

/// [B, L, H] -> [B, N, L, D].
void merge_heads_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& dx);

// --- KV-cache layout kernels (incremental decoding, src/infer/) ---
//
// Self-attention K/V live in a paged pool [P, N, page, D] (P fixed-size
// pages; infer::KvCache owns the page bookkeeping). A block table
// (i32 [S, pages_per_seq], S decode lanes) maps each lane's logical token
// positions to pool pages; writers and the gather below address rows as
// (table[lane][pos / page], pos % page). The table, positions and lens
// tensors are host-written heap metadata — replay-time graph parameters
// read inside kernel bodies, so the launch sequence and byte charges stay
// STATIC across decode steps (the capture contract). Under kLS2 keys and
// values move in ONE fused launch; baselines charge one copy kernel per
// tensor.
//
// Cross-attention K/V blocks stay contiguous [S, N, cross_len, D]
// (write-once at encode time) and use the plain kv_cache_store below.

/// Contiguous prefill write (CROSS blocks only): k_new/v_new [B, N, Lq, D]
/// land in cache slots `slots` (i32 [B]) at rows [0, Lq).
void kv_cache_store(KernelContext& kc, Impl impl, const Tensor& k_new, const Tensor& v_new,
                    const Tensor& k_cache, const Tensor& v_cache, const Tensor& slots);

/// Paged prefill write: rows [write_begin[b], write_end[b]) of k_new/v_new
/// [B, N, Lq, D] land in lane `lanes[b]`'s pages through `block_table`.
/// Rows below write_begin already live in shared prefix pages and must not
/// be rewritten; rows at or above write_end exceed the lane's backed
/// capacity (padded prompt tails).
void kv_cache_store_paged(KernelContext& kc, Impl impl, const Tensor& k_new,
                          const Tensor& v_new, const Tensor& k_pool, const Tensor& v_pool,
                          const Tensor& block_table, const Tensor& lanes,
                          const Tensor& write_begin, const Tensor& write_end);

/// Paged decode append: k_new/v_new [S, N, 1, D] land at logical row
/// `positions[s]` (i32 [S]) of lane s through `block_table` — one token per
/// lane per step. Free lanes' table rows point at the trash page.
void kv_cache_append_paged(KernelContext& kc, Impl impl, const Tensor& k_new,
                           const Tensor& v_new, const Tensor& k_pool, const Tensor& v_pool,
                           const Tensor& block_table, const Tensor& positions);

/// Decode gather: materialize each lane's first `attend_lens[s]` cached
/// rows into contiguous scratch k_out/v_out [S, N, Lcap, D] (zero-filled
/// beyond the len, so masked attention sees exact zeros — the bitwise-
/// parity contract). Byte charges are taken at full Lcap so replayed steps
/// validate against the captured graph regardless of current lens.
void kv_cache_gather(KernelContext& kc, Impl impl, const Tensor& k_pool,
                     const Tensor& v_pool, const Tensor& block_table,
                     const Tensor& attend_lens, const Tensor& k_out, const Tensor& v_out);

/// Copy-on-write: duplicate the first `rows` token rows of page `src_page`
/// into `dst_page` in both pools. Eager-only (page bookkeeping runs outside
/// captured decode regions).
void kv_page_copy(KernelContext& kc, Impl impl, const Tensor& k_pool, const Tensor& v_pool,
                  int64_t src_page, int64_t dst_page, int64_t rows);

}  // namespace ls2::kern
