#include "kernels/layernorm.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace ls2::kern {

namespace {

// --- achieved-bandwidth curves per implementation (see DESIGN.md §2) ---

double torch_red_eff(int64_t rows, int64_t cols) {
  return reduction_efficiency(0.52, rows, cols, 32);
}

double tf_red_eff(int64_t rows, int64_t cols) {
  // Trails PyTorch at small sizes; its tiled reductions catch up (and pass)
  // only for very large inputs — Fig. 16's crossover.
  const double e = static_cast<double>(rows) * static_cast<double>(cols);
  return reduction_efficiency(0.45 + 0.33 * (e / (e + 2.5e7)), rows, cols, 32);
}

double deepspeed_eff(int64_t rows, int64_t cols) {
  // Fixed one-block-per-row geometry: fine until the input outgrows the
  // grid, then achieved bandwidth collapses (Fig. 16: DeepSpeed falls below
  // PyTorch at large batch-token sizes / hidden dims).
  const double e = static_cast<double>(rows) * static_cast<double>(cols);
  const double penalty = std::pow(std::min(1.0, 6e6 / e), 0.55);
  return std::max(0.08, reduction_efficiency(0.85, rows, cols, 256) * penalty);
}

double ls2_red_eff(int64_t rows, int64_t cols) {
  // LightSeq2 tunes the thread team per shape (§IV-B's template search also
  // covers LayerNorm): pick the best of sub-warp..block teams.
  double best = 0;
  for (int threads : {8, 16, 32, 64, 128, 256}) {
    best = std::max(best, reduction_efficiency(0.90, rows, cols, threads));
  }
  return best;
}

struct Rows {
  int64_t rows;
  int64_t cols;
};

Rows shape_of(const Tensor& x) {
  const Shape flat = x.shape().flatten_2d();
  return {flat[0], flat[1]};
}

// Numerics shared by every implementation: one definition, so all systems
// produce bit-identical results and differ only in launch/byte accounting.
template <typename T>
void compute_stats(const Tensor& x, const Tensor& mean, const Tensor& rstd, float eps) {
  const auto [rows, cols] = shape_of(x);
  const T* xp = x.data<T>();
  float* mp = mean.data<float>();
  float* rp = rstd.data<float>();
  parallel_for(0, rows, [&](int64_t r) {
    // Single pass: accumulate E[x] and E[x^2] together (the paper's
    // rewrite); f32 accumulators guard the cancellation in E[x^2]-E[x]^2.
    double s = 0, s2 = 0;
    const T* row = xp + r * cols;
    for (int64_t j = 0; j < cols; ++j) {
      const double v = static_cast<float>(row[j]);
      s += v;
      s2 += v * v;
    }
    const double mu = s / static_cast<double>(cols);
    const double var = std::max(0.0, s2 / static_cast<double>(cols) - mu * mu);
    mp[r] = static_cast<float>(mu);
    rp[r] = static_cast<float>(1.0 / std::sqrt(var + eps));
  });
}

template <typename T>
void compute_normalize(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                       const Tensor& y, const Tensor& mean, const Tensor& rstd) {
  const auto [rows, cols] = shape_of(x);
  const T* xp = x.data<T>();
  const T* gp = gamma.data<T>();
  const T* bp = beta.data<T>();
  T* yp = y.data<T>();
  const float* mp = mean.data<float>();
  const float* rp = rstd.data<float>();
  parallel_for(0, rows, [&](int64_t r) {
    const float mu = mp[r], rs = rp[r];
    const T* xrow = xp + r * cols;
    T* yrow = yp + r * cols;
    for (int64_t j = 0; j < cols; ++j) {
      yrow[j] = T((static_cast<float>(xrow[j]) - mu) * rs * static_cast<float>(gp[j]) +
                  static_cast<float>(bp[j]));
    }
  });
}

template <typename T>
void compute_dx(const Tensor& dy, const Tensor& x, const Tensor& gamma, const Tensor& mean,
                const Tensor& rstd, const Tensor& dx, const Tensor* residual_grad) {
  const T* resp = residual_grad ? residual_grad->data<T>() : nullptr;
  const auto [rows, cols] = shape_of(x);
  const T* dyp = dy.data<T>();
  const T* xp = x.data<T>();
  const T* gp = gamma.data<T>();
  const float* mp = mean.data<float>();
  const float* rp = rstd.data<float>();
  T* dxp = dx.data<T>();
  const double m = static_cast<double>(cols);
  parallel_for(0, rows, [&](int64_t r) {
    const T* dyrow = dyp + r * cols;
    const T* xrow = xp + r * cols;
    T* dxrow = dxp + r * cols;
    const double mu = mp[r];
    const double rs = rp[r];  // 1/sigma
    // The two independent reductions of the rearranged formula.
    double s1 = 0, s2 = 0;
    for (int64_t j = 0; j < cols; ++j) {
      const double wdy = static_cast<double>(static_cast<float>(gp[j])) *
                         static_cast<float>(dyrow[j]);
      s1 += wdy;
      s2 += wdy * static_cast<float>(xrow[j]);
    }
    const double rs3 = rs * rs * rs;
    for (int64_t j = 0; j < cols; ++j) {
      const double xi = static_cast<float>(xrow[j]);
      const double sigma2 = 1.0 / (rs * rs);
      const double alpha = ((xi - mu) * mu - sigma2) * rs3 / m;
      const double beta_c = (mu - xi) * rs3 / m;
      const double wdy = static_cast<double>(static_cast<float>(gp[j])) *
                         static_cast<float>(dyrow[j]);
      double v = wdy * rs + alpha * s1 + beta_c * s2;
      if (resp) v += static_cast<float>(resp[r * cols + j]);
      dxrow[j] = T(static_cast<float>(v));
    }
  });
}

template <typename T>
void compute_param_grads(const Tensor& dy, const Tensor& x, const Tensor& mean,
                         const Tensor& rstd, const Tensor& dgamma, const Tensor& dbeta) {
  const auto [rows, cols] = shape_of(x);
  const T* dyp = dy.data<T>();
  const T* xp = x.data<T>();
  const float* mp = mean.data<float>();
  const float* rp = rstd.data<float>();
  T* dgp = dgamma.data<T>();
  T* dbp = dbeta.data<T>();
  // FP32 accumulation FROM the destination, ascending rows: microbatch
  // slices (pipeline parallelism) continue the exact chain the full batch
  // would run, so the accumulated grads are bitwise identical. Grads are
  // zeroed at step start, like the beta=1 dW GEMMs.
  parallel_for(0, cols, [&](int64_t j) {
    float dg = static_cast<float>(dgp[j]), db = static_cast<float>(dbp[j]);
    for (int64_t r = 0; r < rows; ++r) {
      const float dyv = static_cast<float>(dyp[r * cols + j]);
      const float xhat =
          (static_cast<float>(xp[r * cols + j]) - mp[r]) * rp[r];
      dg += dyv * xhat;
      db += dyv;
    }
    dgp[j] = T(dg);
    dbp[j] = T(db);
  });
}

simgpu::KernelDesc desc(std::string name, int64_t br, int64_t bw, double flops, double eff) {
  simgpu::KernelDesc d;
  d.name = std::move(name);
  d.bytes_read = br;
  d.bytes_written = bw;
  d.flops = flops;
  d.mem_efficiency = eff;
  return d;
}

void check_ln_args(const Tensor& x, const Tensor& gamma, const Tensor& beta, const Tensor& y,
                   const Tensor& mean, const Tensor& rstd) {
  const auto [rows, cols] = shape_of(x);
  LS2_CHECK_EQ(gamma.numel(), cols);
  LS2_CHECK_EQ(beta.numel(), cols);
  LS2_CHECK_EQ(y.numel(), x.numel());
  LS2_CHECK_EQ(mean.numel(), rows);
  LS2_CHECK_EQ(rstd.numel(), rows);
  LS2_CHECK(mean.dtype() == DType::kF32 && rstd.dtype() == DType::kF32)
      << "row stats must be f32";
}

}  // namespace

void layernorm_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& gamma,
                  const Tensor& beta, const Tensor& y, const Tensor& mean, const Tensor& rstd,
                  float eps) {
  check_ln_args(x, gamma, beta, y, mean, rstd);
  const auto [rows, cols] = shape_of(x);
  const int64_t xb = static_cast<int64_t>(x.bytes());
  const int64_t rowsb = rows * 4;
  const double red_flops = static_cast<double>(rows) * cols * 2.0;

  switch (impl) {
    case Impl::kTorch:
    case Impl::kTensorFlow: {
      const double eff =
          impl == Impl::kTorch ? torch_red_eff(rows, cols) : tf_red_eff(rows, cols);
      const char* sys = impl_name(impl);
      // Three dependent launches: mean, variance (re-reads x), normalise.
      kc.dev.launch(desc(std::string(sys) + ".ln_mean", xb, rowsb, red_flops, eff),
                    [&, eps] {
                      LS2_DISPATCH_FLOAT(x.dtype(), T,
                                         compute_stats<T>(x, mean, rstd, eps));
                    });
      // Variance pass: statistics were already produced by the shared body
      // above; this launch charges the extra traffic the framework pays.
      kc.dev.launch(desc(std::string(sys) + ".ln_var", xb + rowsb, rowsb, red_flops, eff),
                    nullptr);
      kc.dev.launch(
          desc(std::string(sys) + ".ln_norm",
               xb + 2 * rowsb + static_cast<int64_t>(gamma.bytes() + beta.bytes()),
               static_cast<int64_t>(y.bytes()), static_cast<double>(rows) * cols * 2.0,
               0.70),
          [&] {
            LS2_DISPATCH_FLOAT(x.dtype(), T,
                               compute_normalize<T>(x, gamma, beta, y, mean, rstd));
          });
      break;
    }
    case Impl::kDeepSpeed:
    case Impl::kLS2: {
      const double eff =
          impl == Impl::kDeepSpeed ? deepspeed_eff(rows, cols) : ls2_red_eff(rows, cols);
      const char* name = impl == Impl::kDeepSpeed ? "deepspeed.layernorm_fw"
                                                  : "ls2.layernorm_fw";
      // Single launch, single pass over x.
      kc.dev.launch(
          desc(name, xb + static_cast<int64_t>(gamma.bytes() + beta.bytes()),
               static_cast<int64_t>(y.bytes()) + 2 * rowsb, red_flops * 2.0, eff),
          [&, eps] {
            LS2_DISPATCH_FLOAT(x.dtype(), T, {
              compute_stats<T>(x, mean, rstd, eps);
              compute_normalize<T>(x, gamma, beta, y, mean, rstd);
            });
          });
      break;
    }
  }
}

void layernorm_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& x,
                  const Tensor& gamma, const Tensor& mean, const Tensor& rstd,
                  const Tensor& dx, const Tensor& dgamma, const Tensor& dbeta,
                  const Tensor* residual_grad) {
  const auto [rows, cols] = shape_of(x);
  if (residual_grad) {
    LS2_CHECK_EQ(residual_grad->numel(), x.numel());
  }
  LS2_CHECK_EQ(dy.numel(), x.numel());
  LS2_CHECK_EQ(dx.numel(), x.numel());
  LS2_CHECK_EQ(dgamma.numel(), cols);
  LS2_CHECK_EQ(dbeta.numel(), cols);
  const int64_t xb = static_cast<int64_t>(x.bytes());
  const int64_t rowsb = rows * 4;
  const double red_flops = static_cast<double>(rows) * cols * 4.0;

  switch (impl) {
    case Impl::kTorch:
    case Impl::kTensorFlow: {
      const double eff =
          impl == Impl::kTorch ? torch_red_eff(rows, cols) : tf_red_eff(rows, cols);
      const char* sys = impl_name(impl);
      // Framework decomposition: wdy temp, two *sequential* row reductions,
      // dx elementwise, then dgamma and dbeta separately. The real math runs
      // once in the dx launch; the others charge their traffic.
      kc.dev.launch(desc(std::string(sys) + ".ln_bw_wdy",
                         static_cast<int64_t>(dy.bytes() + gamma.bytes()), xb, 0, 0.70),
                    nullptr);
      kc.dev.launch(desc(std::string(sys) + ".ln_bw_sum1", xb, rowsb, red_flops / 2, eff),
                    nullptr);
      kc.dev.launch(desc(std::string(sys) + ".ln_bw_sum2", 2 * xb + 2 * rowsb, rowsb,
                         red_flops / 2, eff),
                    nullptr);
      kc.dev.launch(desc(std::string(sys) + ".ln_bw_dx", 2 * xb + 4 * rowsb,
                         static_cast<int64_t>(dx.bytes()),
                         static_cast<double>(rows) * cols * 6.0, 0.70),
                    [&, residual_grad] {
                      LS2_DISPATCH_FLOAT(x.dtype(), T,
                                         compute_dx<T>(dy, x, gamma, mean, rstd, dx,
                                                       residual_grad));
                    });
      if (residual_grad) {
        // Frameworks add the residual gradient in a separate kernel.
        kc.dev.launch(desc(std::string(sys) + ".ln_bw_residual_add",
                           2 * static_cast<int64_t>(dx.bytes()),
                           static_cast<int64_t>(dx.bytes()),
                           static_cast<double>(rows) * cols, 0.70),
                      nullptr);
      }
      kc.dev.launch(desc(std::string(sys) + ".ln_bw_dgamma", 2 * xb + 2 * rowsb,
                         static_cast<int64_t>(dgamma.bytes()), red_flops / 2,
                         reduction_efficiency(0.5, cols, rows, 32)),
                    [&] {
                      LS2_DISPATCH_FLOAT(x.dtype(), T,
                                         compute_param_grads<T>(dy, x, mean, rstd, dgamma,
                                                                dbeta));
                    });
      kc.dev.launch(desc(std::string(sys) + ".ln_bw_dbeta", xb,
                         static_cast<int64_t>(dbeta.bytes()), red_flops / 4,
                         reduction_efficiency(0.5, cols, rows, 32)),
                    nullptr);
      break;
    }
    case Impl::kDeepSpeed:
    case Impl::kLS2: {
      const double eff =
          impl == Impl::kDeepSpeed ? deepspeed_eff(rows, cols) : ls2_red_eff(rows, cols);
      const std::string sys = impl == Impl::kDeepSpeed ? "deepspeed" : "ls2";
      // dx in one launch: S1 and S2 accumulate in parallel (§IV-B); the
      // residual gradient add of Fig. 8 is fused in as well.
      kc.dev.launch(
          desc(sys + ".layernorm_bw_dx",
               static_cast<int64_t>(dy.bytes() + gamma.bytes()) + xb + 2 * rowsb +
                   (residual_grad ? static_cast<int64_t>(residual_grad->bytes()) : 0),
               static_cast<int64_t>(dx.bytes()), red_flops + 6.0 * rows * cols, eff),
          [&, residual_grad] {
            LS2_DISPATCH_FLOAT(x.dtype(), T,
                               compute_dx<T>(dy, x, gamma, mean, rstd, dx, residual_grad));
          });
      // dgamma and dbeta fused into one column-reduction launch.
      kc.dev.launch(desc(sys + ".layernorm_bw_dparam", static_cast<int64_t>(dy.bytes()) + xb +
                             2 * rowsb,
                         static_cast<int64_t>(dgamma.bytes() + dbeta.bytes()), red_flops,
                         reduction_efficiency(0.8, cols, rows, 32)),
                    [&] {
                      LS2_DISPATCH_FLOAT(x.dtype(), T,
                                         compute_param_grads<T>(dy, x, mean, rstd, dgamma,
                                                                dbeta));
                    });
      break;
    }
  }
}

}  // namespace ls2::kern
