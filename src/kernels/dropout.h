// Standalone dropout kernels.
//
// Four implementations are modeled, matching the systems compared in the
// paper's Fig. 17(a): PyTorch, TensorFlow, DeepSpeed and LightSeq2. All
// compute identical masks from the counter RNG (same math); they differ in
// achieved bandwidth: LightSeq2 uses vectorised accesses (best), DeepSpeed's
// fixed launch geometry degrades beyond ~5M elements, TensorFlow trails
// PyTorch slightly until very large sizes.
#pragma once

#include "kernels/kernel_context.h"

namespace ls2::kern {

/// Which system's kernel implementation to model (op-level benches compare
/// these; layer code uses kTorch for baselines and kLS2 for LightSeq2).
enum class Impl { kTorch, kTensorFlow, kDeepSpeed, kLS2 };

const char* impl_name(Impl impl);

/// y = dropout(x) with inverted scaling; mask (u8) records kept elements.
void dropout_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y,
                const Tensor& mask, float p, uint64_t stream);

/// dx = dy * mask / (1-p).
void dropout_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& mask,
                const Tensor& dx, float p);

}  // namespace ls2::kern
