// LayerNorm kernels (§IV-B "Dependent Reduction Rewriting").
//
// Forward: the two dependent reductions (mean, then variance-given-mean) are
// rewritten with sigma^2 = E[x^2] - E[x]^2 so both row sums accumulate in a
// single pass; LightSeq2 does the whole forward in one launch where the
// PyTorch-style baseline takes three (mean / var / normalise), re-reading x
// each time.
//
// Backward: the paper rearranges
//   dx_i = w_i dy_i / sigma + alpha_i * S1 + beta_i * S2,
//   S1 = sum_j w_j dy_j,  S2 = sum_j w_j dy_j x_j,
//   alpha_i = ((x_i-mu)mu - sigma^2)/(m sigma^3),  beta_i = (mu-x_i)/(m sigma^3)
// so S1 and S2 are *independent* reductions computed in parallel in one
// kernel, plus one fused kernel for dgamma/dbeta.
//
// Row statistics (mean, rstd=1/sigma) are always f32, regardless of the
// activation dtype — the paper notes LayerNorm is precision-sensitive and
// casts FP16 to FP32 during computation.
#pragma once

#include "kernels/dropout.h"  // Impl enum
#include "kernels/kernel_context.h"

namespace ls2::kern {

/// y = gamma * (x - mean) / sigma + beta, row-wise over the last dim.
/// `mean`/`rstd` are per-row f32 outputs kept for the backward pass.
void layernorm_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& gamma,
                  const Tensor& beta, const Tensor& y, const Tensor& mean, const Tensor& rstd,
                  float eps = 1e-5f);

/// Gradients for input and affine parameters. If `residual_grad` is given,
/// dx += residual_grad — Fig. 8's final step "din = dLayerNorm(dY) + dout",
/// fused into the dx kernel for the LightSeq2/DeepSpeed impls and charged as
/// an extra add launch for the baselines.
void layernorm_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& x,
                  const Tensor& gamma, const Tensor& mean, const Tensor& rstd,
                  const Tensor& dx, const Tensor& dgamma, const Tensor& dbeta,
                  const Tensor* residual_grad = nullptr);

}  // namespace ls2::kern
