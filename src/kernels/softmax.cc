#include "kernels/softmax.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

#include "common/parallel.h"

namespace ls2::kern {

const std::vector<SoftmaxConfig>& softmax_candidates() {
  static const std::vector<SoftmaxConfig> kCandidates = {
      {8, "subwarp8"}, {16, "subwarp16"}, {32, "warp"}, {64, "2warp"},
      {128, "4warp"},  {256, "block256"},
  };
  return kCandidates;
}

namespace {
constexpr double kV100Threads = 163840.0;  // the pre-profile-aware default

// device identity + log2-bucketed shape
using TunerKey = std::tuple<int64_t, int, int>;
std::map<TunerKey, SoftmaxConfig>& tuner_cache() {
  static std::map<TunerKey, SoftmaxConfig> cache;
  return cache;
}
std::mutex& tuner_mutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

double softmax_config_efficiency(const SoftmaxConfig& cfg, int64_t rows, int64_t cols,
                                 double device_threads) {
  // Wide rows need bigger thread teams (more reduce steps otherwise); small
  // teams on wide rows serialise, big teams on narrow rows idle.
  const double serial_penalty =
      std::min(1.0, 4.0 * cfg.threads_per_row / static_cast<double>(cols));
  const double base = 0.92 * std::max(serial_penalty, 0.35);
  return reduction_efficiency(base, rows, cols, cfg.threads_per_row, device_threads);
}

double softmax_config_efficiency(const SoftmaxConfig& cfg, int64_t rows, int64_t cols) {
  return softmax_config_efficiency(cfg, rows, cols, kV100Threads);
}

SoftmaxConfig tune_softmax(int64_t rows, int64_t cols, double device_threads) {
  const TunerKey key{
      static_cast<int64_t>(device_threads),
      rows <= 1 ? 0 : static_cast<int>(std::floor(std::log2(static_cast<double>(rows)))),
      cols <= 1 ? 0 : static_cast<int>(std::floor(std::log2(static_cast<double>(cols))))};
  std::lock_guard<std::mutex> lock(tuner_mutex());
  auto it = tuner_cache().find(key);
  if (it != tuner_cache().end()) return it->second;
  SoftmaxConfig best = softmax_candidates().front();
  double best_eff = -1;
  for (const SoftmaxConfig& c : softmax_candidates()) {
    const double eff = softmax_config_efficiency(c, rows, cols, device_threads);
    if (eff > best_eff) {
      best_eff = eff;
      best = c;
    }
  }
  tuner_cache().emplace(key, best);
  return best;
}

SoftmaxConfig tune_softmax(int64_t rows, int64_t cols) {
  return tune_softmax(rows, cols, kV100Threads);
}

void reset_softmax_tuner() {
  std::lock_guard<std::mutex> lock(tuner_mutex());
  tuner_cache().clear();
}

namespace {

simgpu::KernelDesc desc(std::string name, int64_t br, int64_t bw, double flops, double eff) {
  simgpu::KernelDesc d;
  d.name = std::move(name);
  d.bytes_read = br;
  d.bytes_written = bw;
  d.flops = flops;
  d.mem_efficiency = eff;
  return d;
}

// No defaulted device_threads: every caller must say which device it is on
// (a silent V100 default is exactly the stale-profile bug the keyed tuner
// cache exists to prevent).
double baseline_eff(Impl impl, int64_t rows, int64_t cols, double device_threads) {
  const double e = static_cast<double>(rows) * cols;
  // Framework softmax is a single generic kernel with one fixed warp-per-row
  // template; long rows force serial per-lane loops with strided accesses,
  // eroding achieved bandwidth. LightSeq2 escapes this via the shape-tuned
  // templates, so its speedup grows with sequence length (Fig. 17b).
  const double long_row = std::pow(std::min(1.0, 96.0 / static_cast<double>(cols)), 0.55);
  // Every impl sees the SAME device residency — the systems differ in launch
  // structure and achieved bandwidth, never in which GPU they run on.
  switch (impl) {
    case Impl::kTorch:
      return reduction_efficiency(0.62 * long_row, rows, cols, 32, device_threads);
    case Impl::kTensorFlow:
      return reduction_efficiency((0.54 + 0.2 * (e / (e + 2.5e7))) * long_row, rows, cols,
                                  32, device_threads);
    case Impl::kDeepSpeed: {
      // Coarse team adaptation (power-of-two up to one block), but a fixed
      // grid that degrades once the input outgrows it.
      int threads = 32;
      while (threads < cols && threads < 256) threads *= 2;
      return std::max(0.08,
                      reduction_efficiency(0.82, rows, cols, threads, device_threads) *
                          std::pow(std::min(1.0, 6e6 / e), 0.5));
    }
    case Impl::kLS2:
      return softmax_config_efficiency(tune_softmax(rows, cols, device_threads), rows,
                                       cols, device_threads);
  }
  return 0.5;
}

// Plain row softmax; runs once regardless of how many launches the chosen
// implementation charges.
template <typename T>
void softmax_body(const Tensor& x, const Tensor& y) {
  const Shape flat = x.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  const T* xp = x.data<T>();
  T* yp = y.data<T>();
  parallel_for(0, rows, [&](int64_t r) {
    const T* xrow = xp + r * cols;
    T* yrow = yp + r * cols;
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < cols; ++j) mx = std::max(mx, static_cast<float>(xrow[j]));
    double z = 0;
    for (int64_t j = 0; j < cols; ++j) z += std::exp(static_cast<float>(xrow[j]) - mx);
    const float inv_z = static_cast<float>(1.0 / z);
    for (int64_t j = 0; j < cols; ++j)
      yrow[j] = T(std::exp(static_cast<float>(xrow[j]) - mx) * inv_z);
  });
}

template <typename T>
void softmax_bw_body(const Tensor& dy, const Tensor& y, const Tensor& dx) {
  const Shape flat = y.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  const T* dyp = dy.data<T>();
  const T* yp = y.data<T>();
  T* dxp = dx.data<T>();
  parallel_for(0, rows, [&](int64_t r) {
    const T* dyrow = dyp + r * cols;
    const T* yrow = yp + r * cols;
    T* dxrow = dxp + r * cols;
    double dot = 0;
    for (int64_t j = 0; j < cols; ++j)
      dot += static_cast<double>(static_cast<float>(dyrow[j])) * static_cast<float>(yrow[j]);
    for (int64_t j = 0; j < cols; ++j)
      dxrow[j] = T(static_cast<float>(yrow[j]) *
                   (static_cast<float>(dyrow[j]) - static_cast<float>(dot)));
  });
}

// Masked softmax over [B, N, Lq, Lk].
template <typename T>
void attn_softmax_body(const Tensor& x, const Tensor& y, bool causal,
                       const Tensor* key_lens) {
  LS2_CHECK_EQ(x.shape().rank(), 4);
  const int64_t B = x.shape()[0], N = x.shape()[1], Lq = x.shape()[2], Lk = x.shape()[3];
  const T* xp = x.data<T>();
  T* yp = y.data<T>();
  const int32_t* lens = key_lens ? key_lens->data<int32_t>() : nullptr;
  if (lens) {
    LS2_CHECK_EQ(key_lens->numel(), B);
  }
  parallel_for(0, B * N * Lq, [&](int64_t r) {
    const int64_t b = r / (N * Lq);
    const int64_t q = r % Lq;
    int64_t valid = lens ? std::min<int64_t>(lens[b], Lk) : Lk;
    if (causal) valid = std::min<int64_t>(valid, q + 1);
    const T* xrow = xp + r * Lk;
    T* yrow = yp + r * Lk;
    if (valid <= 0) {
      for (int64_t j = 0; j < Lk; ++j) yrow[j] = T(0.0f);
      return;
    }
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < valid; ++j) mx = std::max(mx, static_cast<float>(xrow[j]));
    double z = 0;
    for (int64_t j = 0; j < valid; ++j) z += std::exp(static_cast<float>(xrow[j]) - mx);
    const float inv_z = static_cast<float>(1.0 / z);
    for (int64_t j = 0; j < valid; ++j)
      yrow[j] = T(std::exp(static_cast<float>(xrow[j]) - mx) * inv_z);
    for (int64_t j = valid; j < Lk; ++j) yrow[j] = T(0.0f);
  });
}

}  // namespace

void softmax_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y) {
  LS2_CHECK_EQ(x.numel(), y.numel());
  const Shape flat = x.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  const int64_t xb = static_cast<int64_t>(x.bytes());
  const double dev_threads = kc.dev.profile().resident_threads;
  const double eff = baseline_eff(impl, rows, cols, dev_threads);
  const double flops = static_cast<double>(rows) * cols * 4.0;

  if (impl == Impl::kLS2 || impl == Impl::kDeepSpeed) {
    const SoftmaxConfig cfg = tune_softmax(rows, cols, dev_threads);
    const std::string name = impl == Impl::kLS2
                                 ? std::string("ls2.softmax_fw.") + cfg.tag
                                 : "deepspeed.softmax_fw";
    kc.dev.launch(desc(name, xb, static_cast<int64_t>(y.bytes()), flops, eff), [&] {
      LS2_DISPATCH_FLOAT(x.dtype(), T, softmax_body<T>(x, y));
    });
    return;
  }
  // Frameworks run one generic softmax kernel; its fixed template simply
  // achieves less bandwidth than the tuned LightSeq2 ones.
  kc.dev.launch(desc(std::string(impl_name(impl)) + ".softmax_fw", xb,
                     static_cast<int64_t>(y.bytes()), flops, eff),
                [&] { LS2_DISPATCH_FLOAT(x.dtype(), T, softmax_body<T>(x, y)); });
}

void softmax_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& y,
                const Tensor& dx) {
  LS2_CHECK_EQ(dy.numel(), y.numel());
  LS2_CHECK_EQ(dx.numel(), y.numel());
  const Shape flat = y.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  const int64_t nb = static_cast<int64_t>(y.bytes());
  const double eff = baseline_eff(impl, rows, cols, kc.dev.profile().resident_threads);
  const double flops = static_cast<double>(rows) * cols * 3.0;

  if (impl == Impl::kLS2 || impl == Impl::kDeepSpeed) {
    const std::string sys = impl == Impl::kLS2 ? "ls2" : "deepspeed";
    kc.dev.launch(desc(sys + ".softmax_bw", 2 * nb, nb, flops, eff), [&] {
      LS2_DISPATCH_FLOAT(y.dtype(), T, softmax_bw_body<T>(dy, y, dx));
    });
    return;
  }
  kc.dev.launch(desc(std::string(impl_name(impl)) + ".softmax_bw", 2 * nb, nb, flops, eff),
                [&] { LS2_DISPATCH_FLOAT(y.dtype(), T, softmax_bw_body<T>(dy, y, dx)); });
}

void attn_softmax_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y,
                     bool causal, const Tensor* key_lens) {
  LS2_CHECK_EQ(x.shape().rank(), 4);
  LS2_CHECK_EQ(x.numel(), y.numel());
  const int64_t rows = x.shape()[0] * x.shape()[1] * x.shape()[2];
  const int64_t cols = x.shape()[3];
  const int64_t xb = static_cast<int64_t>(x.bytes());
  const double dev_threads = kc.dev.profile().resident_threads;
  const double eff = baseline_eff(impl, rows, cols, dev_threads);
  const double flops = static_cast<double>(rows) * cols * 4.0;
  const bool masked = causal || key_lens != nullptr;

  if (impl == Impl::kLS2 || impl == Impl::kDeepSpeed) {
    const SoftmaxConfig cfg = tune_softmax(rows, cols, dev_threads);
    const std::string name = impl == Impl::kLS2
                                 ? std::string("ls2.attn_softmax_fw.") + cfg.tag
                                 : "deepspeed.attn_softmax_fw";
    // Masks are applied inline from lengths; no extra pass.
    kc.dev.launch(desc(name, xb + (key_lens ? static_cast<int64_t>(key_lens->bytes()) : 0),
                       static_cast<int64_t>(y.bytes()), flops, eff),
                  [&, causal] {
                    LS2_DISPATCH_FLOAT(x.dtype(), T,
                                       attn_softmax_body<T>(x, y, causal, key_lens));
                  });
    return;
  }
  const char* sys = impl_name(impl);
  if (masked) {
    // Frameworks materialise the mask application over the whole score
    // tensor before the softmax (an extra full read+write); the mask tensor
    // itself is a broadcast [B,1,Lq,Lk] byte tensor.
    kc.dev.launch(desc(std::string(sys) + ".masked_fill", xb + rows * cols, xb, 0, 0.70),
                  nullptr);
  }
  kc.dev.launch(desc(std::string(sys) + ".softmax_fw", xb, static_cast<int64_t>(y.bytes()),
                     flops, eff),
                [&, causal] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T,
                                     attn_softmax_body<T>(x, y, causal, key_lens));
                });
}

void attn_softmax_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& y,
                     const Tensor& dx) {
  softmax_bw(kc, impl, dy, y, dx);
}

}  // namespace ls2::kern
