// Criterion layer kernels (§IV-A.3): label-smoothed cross entropy.
//
// With smoothing alpha over vocabulary V, target k and q = softmax(h):
//   L = -(1-alpha) log q_k - (alpha/V) sum_i log q_i
// and the paper derives the closed-form gradient
//   dL/dh_i = q_i - alpha/V - (1-alpha) * [i == k],
// which LightSeq2 evaluates in a single element-wise kernel (computing
// log-softmax, never materialising q). The baseline decomposition launches
// softmax / log / gather-NLL / smooth-sum forward and three kernels
// backward, materialising a [tokens, V] probability tensor both ways.
//
// Rows whose target equals `ignore_index` (padding) contribute zero loss
// and zero gradient.
#pragma once

#include "kernels/dropout.h"  // Impl
#include "kernels/kernel_context.h"

namespace ls2::kern {

/// logits: [rows, V]; targets: [rows] i32; loss: [rows] f32 per-token loss;
/// stats: [rows, 2] f32 caching (row_max, log Z) for the backward pass.
void ls_cross_entropy_fw(KernelContext& kc, Impl impl, const Tensor& logits,
                         const Tensor& targets, const Tensor& loss, const Tensor& stats,
                         float alpha, int32_t ignore_index = -1);

/// dlogits_i = grad_scale * (q_i - alpha/V - (1-alpha)[i==k]) per valid row.
void ls_cross_entropy_bw(KernelContext& kc, Impl impl, const Tensor& logits,
                         const Tensor& targets, const Tensor& stats, const Tensor& dlogits,
                         float alpha, float grad_scale, int32_t ignore_index = -1);

/// Scalar reduction helper: out[0] = sum(x) (f32). One small launch; used to
/// turn per-token losses into the batch loss. When `carry` is non-null the
/// double accumulator starts from — and is written back to — *carry, so
/// consecutive calls over microbatch slices reproduce the full-batch
/// reduction bitwise (out[0] holds the running total's float cast).
void reduce_sum(KernelContext& kc, const Tensor& x, const Tensor& out,
                double* carry = nullptr);

}  // namespace ls2::kern
