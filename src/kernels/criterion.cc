#include "kernels/criterion.h"

#include <cmath>

#include "common/parallel.h"

namespace ls2::kern {

namespace {

simgpu::KernelDesc desc(std::string name, int64_t br, int64_t bw, double flops, double eff) {
  simgpu::KernelDesc d;
  d.name = std::move(name);
  d.bytes_read = br;
  d.bytes_written = bw;
  d.flops = flops;
  d.mem_efficiency = eff;
  return d;
}

template <typename T>
void ce_fw_body(const Tensor& logits, const Tensor& targets, const Tensor& loss,
                const Tensor& stats, float alpha, int32_t ignore_index) {
  const int64_t rows = logits.shape().flatten_2d()[0];
  const int64_t V = logits.shape()[-1];
  const T* lp = logits.data<T>();
  const int32_t* tp = targets.data<int32_t>();
  float* lossp = loss.data<float>();
  float* sp = stats.data<float>();
  parallel_for(0, rows, [&](int64_t r) {
    const int32_t k = tp[r];
    if (k == ignore_index) {
      lossp[r] = 0.0f;
      sp[r * 2] = 0.0f;
      sp[r * 2 + 1] = 0.0f;
      return;
    }
    LS2_CHECK(k >= 0 && k < V) << "target " << k << " out of vocab " << V;
    const T* row = lp + r * V;
    double mx = -std::numeric_limits<double>::infinity();
    double sum_x = 0;
    for (int64_t j = 0; j < V; ++j) {
      const double v = static_cast<float>(row[j]);
      mx = std::max(mx, v);
      sum_x += v;
    }
    double z = 0;
    for (int64_t j = 0; j < V; ++j) z += std::exp(static_cast<double>(static_cast<float>(row[j])) - mx);
    const double log_z = std::log(z);
    // log q_i = x_i - mx - log_z; sum_i log q_i = sum_x - V*(mx + log_z).
    const double log_qk = static_cast<float>(row[k]) - mx - log_z;
    const double sum_log_q = sum_x - static_cast<double>(V) * (mx + log_z);
    lossp[r] = static_cast<float>(-(1.0 - alpha) * log_qk -
                                  (alpha / static_cast<double>(V)) * sum_log_q);
    sp[r * 2] = static_cast<float>(mx);
    sp[r * 2 + 1] = static_cast<float>(log_z);
  });
}

template <typename T>
void ce_bw_body(const Tensor& logits, const Tensor& targets, const Tensor& stats,
                const Tensor& dlogits, float alpha, float grad_scale, int32_t ignore_index) {
  const int64_t rows = logits.shape().flatten_2d()[0];
  const int64_t V = logits.shape()[-1];
  const T* lp = logits.data<T>();
  const int32_t* tp = targets.data<int32_t>();
  const float* sp = stats.data<float>();
  T* dp = dlogits.data<T>();
  const float off = alpha / static_cast<float>(V);
  parallel_for(0, rows, [&](int64_t r) {
    const int32_t k = tp[r];
    const T* row = lp + r * V;
    T* drow = dp + r * V;
    if (k == ignore_index) {
      for (int64_t j = 0; j < V; ++j) drow[j] = T(0.0f);
      return;
    }
    const float mx = sp[r * 2];
    const float log_z = sp[r * 2 + 1];
    for (int64_t j = 0; j < V; ++j) {
      const float q = std::exp(static_cast<float>(row[j]) - mx - log_z);
      float g = q - off;
      if (j == k) g -= (1.0f - alpha);
      drow[j] = T(g * grad_scale);
    }
  });
}

}  // namespace

void ls_cross_entropy_fw(KernelContext& kc, Impl impl, const Tensor& logits,
                         const Tensor& targets, const Tensor& loss, const Tensor& stats,
                         float alpha, int32_t ignore_index) {
  const Shape flat = logits.shape().flatten_2d();
  const int64_t rows = flat[0], V = flat[1];
  LS2_CHECK_EQ(targets.numel(), rows);
  LS2_CHECK_EQ(loss.numel(), rows);
  LS2_CHECK_EQ(stats.numel(), rows * 2);
  LS2_CHECK(loss.dtype() == DType::kF32 && stats.dtype() == DType::kF32);
  LS2_CHECK(alpha >= 0.0f && alpha < 1.0f);
  const int64_t lb = static_cast<int64_t>(logits.bytes());
  const double flops = static_cast<double>(rows) * V * 4.0;

  if (impl == Impl::kLS2) {
    // One launch; nothing V-wide is materialised.
    kc.dev.launch(desc("ls2.criterion_fw", lb + rows * 4, rows * 12, flops,
                       reduction_efficiency(0.88, rows, V, 32)),
                  [&, alpha, ignore_index] {
                    LS2_DISPATCH_FLOAT(logits.dtype(), T,
                                       ce_fw_body<T>(logits, targets, loss, stats, alpha,
                                                     ignore_index));
                  });
    return;
  }
  // Baseline: softmax (3 launches, see softmax.cc), log, gather-NLL, smooth
  // term — with a [rows, V] probability temp written and re-read.
  const double eff = reduction_efficiency(0.55, rows, V, 32);
  Tensor probs = Tensor::empty(logits.shape(), logits.dtype(), kc.scratch);
  kc.dev.launch(desc("torch.softmax_max", lb, rows * 4, flops / 4, eff), nullptr);
  kc.dev.launch(desc("torch.softmax_expsum", lb + rows * 4,
                     static_cast<int64_t>(probs.bytes()) + rows * 4, flops / 2, eff),
                nullptr);
  kc.dev.launch(desc("torch.softmax_norm", static_cast<int64_t>(probs.bytes()) + rows * 4,
                     static_cast<int64_t>(probs.bytes()), flops / 4, 0.70),
                nullptr);
  kc.dev.launch(desc("torch.log", static_cast<int64_t>(probs.bytes()),
                     static_cast<int64_t>(probs.bytes()), flops / 4, 0.70),
                nullptr);
  kc.dev.launch(desc("torch.nll_gather", static_cast<int64_t>(probs.bytes()) + rows * 4,
                     rows * 4, static_cast<double>(rows), 0.55),
                nullptr);
  kc.dev.launch(desc("torch.smooth_sum", static_cast<int64_t>(probs.bytes()), rows * 4,
                     flops / 4, eff),
                [&, alpha, ignore_index] {
                  LS2_DISPATCH_FLOAT(logits.dtype(), T,
                                     ce_fw_body<T>(logits, targets, loss, stats, alpha,
                                                   ignore_index));
                });
}

void ls_cross_entropy_bw(KernelContext& kc, Impl impl, const Tensor& logits,
                         const Tensor& targets, const Tensor& stats, const Tensor& dlogits,
                         float alpha, float grad_scale, int32_t ignore_index) {
  const Shape flat = logits.shape().flatten_2d();
  const int64_t rows = flat[0], V = flat[1];
  LS2_CHECK_EQ(dlogits.numel(), logits.numel());
  const int64_t lb = static_cast<int64_t>(logits.bytes());
  const double flops = static_cast<double>(rows) * V * 3.0;

  if (impl == Impl::kLS2) {
    // Closed-form gradient: one element-wise launch re-using cached stats.
    kc.dev.launch(desc("ls2.criterion_bw", lb + rows * 12,
                       static_cast<int64_t>(dlogits.bytes()), flops, 0.88),
                  [&, alpha, grad_scale, ignore_index] {
                    LS2_DISPATCH_FLOAT(logits.dtype(), T,
                                       ce_bw_body<T>(logits, targets, stats, dlogits, alpha,
                                                     grad_scale, ignore_index));
                  });
    return;
  }
  // Baseline: exp(log-probs), smoothing subtraction, one-hot scatter, scale.
  kc.dev.launch(desc("torch.ce_bw_exp", lb, lb, flops / 3, 0.70), nullptr);
  kc.dev.launch(desc("torch.ce_bw_smooth", lb, lb, flops / 3, 0.70), nullptr);
  kc.dev.launch(desc("torch.ce_bw_scatter", rows * 8, rows * 4, 0, 0.55), nullptr);
  kc.dev.launch(desc("torch.ce_bw_scale", lb, static_cast<int64_t>(dlogits.bytes()),
                     flops / 3, 0.70),
                [&, alpha, grad_scale, ignore_index] {
                  LS2_DISPATCH_FLOAT(logits.dtype(), T,
                                     ce_bw_body<T>(logits, targets, stats, dlogits, alpha,
                                                   grad_scale, ignore_index));
                });
}

void reduce_sum(KernelContext& kc, const Tensor& x, const Tensor& out, double* carry) {
  LS2_CHECK(x.dtype() == DType::kF32 && out.dtype() == DType::kF32);
  LS2_CHECK_GE(out.numel(), 1);
  kc.dev.launch(desc("ls2.reduce_sum", static_cast<int64_t>(x.bytes()), 4,
                     static_cast<double>(x.numel()),
                     reduction_efficiency(0.85, 1, x.numel(), 256)),
                [&, carry] {
                  const float* xp = x.data<float>();
                  // With a carry, the double accumulator continues across
                  // calls — microbatch slices (pipeline parallelism) sum in
                  // the exact order the full batch would, so the final
                  // float cast is bitwise the full-batch reduction.
                  double acc = carry ? *carry : 0.0;
                  for (int64_t i = 0; i < x.numel(); ++i) acc += xp[i];
                  if (carry) *carry = acc;
                  out.data<float>()[0] = static_cast<float>(acc);
                });
}

}  // namespace ls2::kern
