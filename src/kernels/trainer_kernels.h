// Parameter-update (trainer) kernels (§IV-C).
//
// Three modeled systems:
//  * kTorch — per-tensor updates on FP32 master copies, with separate
//    FP16->FP32 gradient-copy and FP32->FP16 parameter-copy kernels
//    (Fig. 6a). Hundreds of small launches per step.
//  * kApex — fused multi-tensor Adam/SGD over flattened FP32 masters; the
//    FP16 model copy is written by the same kernel, but the FP32 masters
//    (and the gradient up-cast) remain.
//  * kLS2 — ONE launch over the contiguous FP16 workspace: parameters and
//    gradients are loaded as FP16, converted to FP32 in registers, updated,
//    and stored back as FP16 ("on-the-fly conversion", Fig. 6b/7b). Adam
//    moments stay FP32. Half the parameter/gradient traffic, no masters.
//
// The update arithmetic is shared by all three, so tests can assert that
// strategies produce identical parameters given identical inputs.
#pragma once

#include "kernels/kernel_context.h"

namespace ls2::kern {

enum class TrainerImpl { kTorch, kApex, kLS2 };

const char* trainer_impl_name(TrainerImpl impl);

struct AdamHyper {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  int64_t step = 1;  ///< 1-based step for bias correction
};

struct SgdHyper {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

/// Adam step on (p, g) of one dtype (f32 or f16) with f32 moments.
/// `grad_scale` multiplies gradients on load (1/loss_scale un-scaling).
/// If `model_fp16_out` is non-null the kernel also stores the updated
/// parameters as FP16 there (the Apex fused path).
void adam_update(KernelContext& kc, TrainerImpl impl, const Tensor& p, const Tensor& g,
                 const Tensor& m, const Tensor& v, const AdamHyper& h, float grad_scale,
                 const Tensor* model_fp16_out = nullptr);

/// SGD with momentum, same conventions.
void sgd_update(KernelContext& kc, TrainerImpl impl, const Tensor& p, const Tensor& g,
                const Tensor& momentum_buf, const SgdHyper& h, float grad_scale,
                const Tensor* model_fp16_out = nullptr);

/// flag[0] = 1.0f if any gradient element is Inf/NaN — the mixed-precision
/// overflow check trainers run before updating (whole-model through step(),
/// per bucket through step_range). `impl` tags the launch name so per-bucket
/// checks show up per system in the kernel stats.
void check_overflow(KernelContext& kc, const Tensor& g, const Tensor& flag,
                    TrainerImpl impl = TrainerImpl::kApex);

}  // namespace ls2::kern
