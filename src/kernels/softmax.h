// Softmax kernels (§IV-B).
//
// The attention Softmax sees wildly different shapes (reduction dim from a
// few to thousands; row count from thousands to millions), so LightSeq2
// keeps several kernel templates — differing in how many threads cooperate
// on one row — and *auto-tunes*: before training it evaluates the candidate
// templates for each shape bucket and caches the winner.
//
// Numerically all implementations use the stable three-step scheme
// (subtract row max, exponentiate, normalise); the fused kernels do it in
// one launch with the row resident, while the baseline decomposition
// launches max / exp-sum / normalise (plus a masked_fill for attention
// masks) and materialises intermediates.
#pragma once

#include "kernels/dropout.h"  // Impl
#include "kernels/kernel_context.h"

namespace ls2::kern {

/// One Softmax kernel template: how many threads cooperate per row.
struct SoftmaxConfig {
  int threads_per_row = 32;
  const char* tag = "warp";
};

/// Candidate templates (sub-warp to multi-warp teams).
const std::vector<SoftmaxConfig>& softmax_candidates();

/// Pick the best template for (rows, cols) on a device with
/// `device_threads` of thread residency (DeviceProfile::resident_threads):
/// evaluates the achieved-bandwidth model for every candidate and caches the
/// winner per (device, log2-bucketed shape). This is the pre-training search
/// of §IV-B. The cache is keyed by the device identity — benches that sweep
/// profiles get per-profile winners, never another profile's stale ones.
/// The two-argument form assumes a V100-class part.
SoftmaxConfig tune_softmax(int64_t rows, int64_t cols);
SoftmaxConfig tune_softmax(int64_t rows, int64_t cols, double device_threads);

/// Drop every cached tuning decision (benches/tests that re-tune from a
/// clean slate; cheap — the next tune_softmax re-runs the search).
void reset_softmax_tuner();

/// Modeled achieved bandwidth of a template on a shape (exposed for the
/// tuner ablation bench). The three-argument form assumes a V100-class part.
double softmax_config_efficiency(const SoftmaxConfig& cfg, int64_t rows, int64_t cols);
double softmax_config_efficiency(const SoftmaxConfig& cfg, int64_t rows, int64_t cols,
                                 double device_threads);

// --- plain row softmax over the last dimension ---

/// y = softmax(x) row-wise. `impl` selects the launch structure/efficiency.
void softmax_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y);

/// dx = y * (dy - sum_j dy_j*y_j) row-wise.
void softmax_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& y,
                const Tensor& dx);

// --- attention softmax on scores [B, N, Lq, Lk] ---

/// Masked softmax over Lk. `causal` masks keys beyond the query position;
/// `key_lens` (i32 [B], optional) masks padding keys. Baseline impls charge
/// an extra masked_fill launch, fused impls apply masks inline.
void attn_softmax_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y,
                     bool causal, const Tensor* key_lens);

/// Backward of the masked softmax (masked positions have y=0 => dx=0).
void attn_softmax_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& y,
                     const Tensor& dx);

}  // namespace ls2::kern
