// Element-wise kernels.
//
// `baseline::` mirrors what PyTorch/TensorFlow execution does for a
// Transformer block: one kernel launch per primitive op, each reading and
// writing full tensors through global memory.
// `fused::` are the LightSeq2 replacements (§IV-A, Fig. 4): adjacent
// element-wise ops collapse into one launch with one read and one write —
// e.g. "bias adding & dropout & residual" is a single kernel.
//
// All kernels accept f32 or f16 tensors; f16 math is performed in f32
// registers (on-the-fly conversion).
#pragma once

#include "kernels/dropout.h"  // Impl
#include "kernels/kernel_context.h"

namespace ls2::kern {

namespace baseline {

/// y = x + bias (bias broadcast along rows).
void add_bias(KernelContext& kc, const Tensor& x, const Tensor& bias, const Tensor& y);
/// y = max(x, 0).
void relu_fw(KernelContext& kc, const Tensor& x, const Tensor& y);
/// dx = dy * (x > 0).
void relu_bw(KernelContext& kc, const Tensor& dy, const Tensor& x, const Tensor& dx);
/// y = gelu(x), tanh approximation.
void gelu_fw(KernelContext& kc, const Tensor& x, const Tensor& y);
/// dx = dy * gelu'(x).
void gelu_bw(KernelContext& kc, const Tensor& dy, const Tensor& x, const Tensor& dx);
/// y = a + b.
void add(KernelContext& kc, const Tensor& a, const Tensor& b, const Tensor& y);
/// y = x * s.
void scale(KernelContext& kc, const Tensor& x, const Tensor& y, float s);
/// Dtype-converting copy (the fp16<->fp32 "copy kernels" of Fig. 6a).
void cast(KernelContext& kc, const Tensor& x, const Tensor& y);
/// y = 0 (a real launch — zeroing gradients costs a kernel).
void zero(KernelContext& kc, const Tensor& y);

}  // namespace baseline

namespace fused {

/// y = dropout(relu(x + bias)); writes the mask for backward.
void bias_relu_dropout_fw(KernelContext& kc, const Tensor& x, const Tensor& bias,
                          const Tensor& y, const Tensor& mask, float p, uint64_t stream);
/// dx = dy * mask/(1-p) * relu'(x + bias); x is the stored GEMM output.
void bias_relu_dropout_bw(KernelContext& kc, const Tensor& dy, const Tensor& mask,
                          const Tensor& x, const Tensor& bias, const Tensor& dx, float p);

/// y = dropout(gelu(x + bias)).
void bias_gelu_dropout_fw(KernelContext& kc, const Tensor& x, const Tensor& bias,
                          const Tensor& y, const Tensor& mask, float p, uint64_t stream);
void bias_gelu_dropout_bw(KernelContext& kc, const Tensor& dy, const Tensor& mask,
                          const Tensor& x, const Tensor& bias, const Tensor& dx, float p);

/// y = residual + dropout(x + bias) — the last kernel of each sublayer.
void bias_dropout_residual_fw(KernelContext& kc, const Tensor& x, const Tensor& bias,
                              const Tensor& residual, const Tensor& y, const Tensor& mask,
                              float p, uint64_t stream);
/// dx = dy * mask/(1-p). (The residual branch's gradient is dy itself.)
void bias_dropout_residual_bw(KernelContext& kc, const Tensor& dy, const Tensor& mask,
                              const Tensor& dx, float p);

}  // namespace fused

/// dbias[j] = sum_i dx[i,j] — column reduction shared by both systems.
void bias_grad(KernelContext& kc, const Tensor& dx, const Tensor& dbias);

/// y = a + b with the kernel family the policy selects: kLS2 launches the
/// vectorised (half2/float4) LightSeq2 kernel, every other system the
/// generic baseline one. Layers doing gradient accumulation (e.g. the
/// encoder-side dk/dv of cross attention) route through this so the
/// LightSeq2 policy never silently pays baseline launches.
void add(KernelContext& kc, Impl impl, const Tensor& a, const Tensor& b,
         const Tensor& y);

}  // namespace ls2::kern
