#include "kernels/dropout.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"

namespace ls2::kern {

const char* impl_name(Impl impl) {
  switch (impl) {
    case Impl::kTorch: return "torch";
    case Impl::kTensorFlow: return "tf";
    case Impl::kDeepSpeed: return "deepspeed";
    case Impl::kLS2: return "ls2";
  }
  return "?";
}

namespace {

double dropout_efficiency(Impl impl, int64_t elements) {
  const double e = static_cast<double>(elements);
  switch (impl) {
    case Impl::kTorch:
      return 0.65;
    case Impl::kTensorFlow:
      // Slightly behind PyTorch; the gap closes at very large sizes.
      return 0.52 + 0.13 * (e / (e + 3e7));
    case Impl::kDeepSpeed:
      // Fixed grid geometry: excellent while the grid fits, degrading once
      // elements exceed ~5M (matches Fig. 17a where it falls below PyTorch).
      return std::max(0.15, 0.80 * std::pow(std::min(1.0, 5e6 / e), 0.45));
    case Impl::kLS2:
      return 0.85;
  }
  return 0.5;
}

}  // namespace

void dropout_fw(KernelContext& kc, Impl impl, const Tensor& x, const Tensor& y,
                const Tensor& mask, float p, uint64_t stream) {
  LS2_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
  LS2_CHECK_EQ(x.numel(), y.numel());
  LS2_CHECK_EQ(x.numel(), mask.numel());
  simgpu::KernelDesc d;
  d.name = std::string(impl_name(impl)) + ".dropout_fw";
  d.bytes_read = static_cast<int64_t>(x.bytes());
  d.bytes_written = static_cast<int64_t>(y.bytes() + mask.bytes());
  d.flops = static_cast<double>(x.numel()) * 3.0;  // rng + select + scale
  d.mem_efficiency = dropout_efficiency(impl, x.numel());
  // Baked at launch time so captured graph nodes replay the microbatch's
  // own mask slice under pipeline parallelism.
  kc.dev.launch(d, [&, p, stream, mb_off = kc.microbatch * static_cast<uint64_t>(x.numel())] {
    LS2_DISPATCH_FLOAT(x.dtype(), T, {
      const float keep_scale = 1.0f / (1.0f - p);
      const T* xp = x.data<T>();
      T* yp = y.data<T>();
      uint8_t* mp = mask.data<uint8_t>();
      parallel_for(0, x.numel(), [&](int64_t i) {
        const uint8_t keep =
            kc.rng.uniform(stream, mb_off + static_cast<uint64_t>(i)) >= p ? 1 : 0;
        mp[i] = keep;
        yp[i] = T(keep ? static_cast<float>(xp[i]) * keep_scale : 0.0f);
      });
    });
  });
}

void dropout_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& mask,
                const Tensor& dx, float p) {
  LS2_CHECK_EQ(dy.numel(), dx.numel());
  LS2_CHECK_EQ(dy.numel(), mask.numel());
  simgpu::KernelDesc d;
  d.name = std::string(impl_name(impl)) + ".dropout_bw";
  d.bytes_read = static_cast<int64_t>(dy.bytes() + mask.bytes());
  d.bytes_written = static_cast<int64_t>(dx.bytes());
  d.flops = static_cast<double>(dy.numel());
  d.mem_efficiency = dropout_efficiency(impl, dy.numel());
  kc.dev.launch(d, [&, p] {
    LS2_DISPATCH_FLOAT(dy.dtype(), T, {
      const float keep_scale = 1.0f / (1.0f - p);
      const T* dyp = dy.data<T>();
      const uint8_t* mp = mask.data<uint8_t>();
      T* dxp = dx.data<T>();
      parallel_for(0, dy.numel(), [&](int64_t i) {
        dxp[i] = T(mp[i] ? static_cast<float>(dyp[i]) * keep_scale : 0.0f);
      });
    });
  });
}

}  // namespace ls2::kern
