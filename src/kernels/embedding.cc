#include "kernels/embedding.h"

#include <cmath>

#include "common/parallel.h"

namespace ls2::kern {

void init_sinusoidal_positions(const Tensor& pos) {
  LS2_CHECK_EQ(pos.shape().rank(), 2);
  const int64_t lmax = pos.shape()[0], h = pos.shape()[1];
  std::vector<float> host(static_cast<size_t>(lmax * h));
  for (int64_t p = 0; p < lmax; ++p) {
    for (int64_t j = 0; j < h; ++j) {
      const double freq = std::pow(10000.0, -2.0 * static_cast<double>(j / 2) /
                                                static_cast<double>(h));
      const double angle = static_cast<double>(p) * freq;
      host[static_cast<size_t>(p * h + j)] =
          static_cast<float>((j % 2 == 0) ? std::sin(angle) : std::cos(angle));
    }
  }
  pos.copy_from(host);
}

namespace {

simgpu::KernelDesc desc(std::string name, int64_t br, int64_t bw, double flops, double eff) {
  simgpu::KernelDesc d;
  d.name = std::move(name);
  d.bytes_read = br;
  d.bytes_written = bw;
  d.flops = flops;
  d.mem_efficiency = eff;
  return d;
}

template <typename T>
void embedding_fw_body(const Tensor& ids, const Tensor& emb, const Tensor& pos,
                       const Tensor& y, const Tensor& mask, float scale, float p,
                       const Rng& rng, uint64_t stream, uint64_t index_offset,
                       int32_t pad_id) {
  const int64_t tokens = ids.numel();
  const int64_t H = emb.shape()[1];
  const int64_t L = ids.shape()[-1];
  const int32_t* idp = ids.data<int32_t>();
  const T* ep = emb.data<T>();
  const T* pp = pos.data<T>();
  T* yp = y.data<T>();
  uint8_t* mp = mask.data<uint8_t>();
  const float keep_scale = 1.0f / (1.0f - p);
  parallel_for(0, tokens, [&](int64_t t) {
    const int32_t w = idp[t];
    const int64_t l = t % L;
    T* yrow = yp + t * H;
    uint8_t* mrow = mp + t * H;
    if (w == pad_id) {
      for (int64_t j = 0; j < H; ++j) {
        yrow[j] = T(0.0f);
        mrow[j] = 0;
      }
      return;
    }
    LS2_CHECK(w >= 0 && w < emb.shape()[0]) << "token id " << w << " out of vocabulary";
    const T* erow = ep + static_cast<int64_t>(w) * H;
    const T* prow = pp + l * H;
    for (int64_t j = 0; j < H; ++j) {
      const float v = scale * static_cast<float>(erow[j]) + static_cast<float>(prow[j]);
      const uint8_t keep =
          rng.uniform(stream, index_offset + static_cast<uint64_t>(t * H + j)) >= p ? 1 : 0;
      mrow[j] = keep;
      yrow[j] = T(keep ? v * keep_scale : 0.0f);
    }
  });
}

template <typename T>
void embedding_bw_body(const Tensor& dy, const Tensor& ids, const Tensor& mask,
                       const Tensor& d_emb, float scale, float p, int32_t pad_id) {
  const int64_t tokens = ids.numel();
  const int64_t H = d_emb.shape()[1];
  const int32_t* idp = ids.data<int32_t>();
  const T* dyp = dy.data<T>();
  const uint8_t* mp = mask.data<uint8_t>();
  T* dep = d_emb.data<T>();
  const float keep_scale = 1.0f / (1.0f - p);
  // Column-parallel accumulation: each worker owns a stripe of hidden dims,
  // so the += below never races — the host-side equivalent of the paper's
  // atomicAdd aggregation.
  parallel_for_chunks(0, H, 64, [&](int64_t j_lo, int64_t j_hi) {
    for (int64_t t = 0; t < tokens; ++t) {
      const int32_t w = idp[t];
      if (w == pad_id) continue;
      const T* dyrow = dyp + t * H;
      const uint8_t* mrow = mp + t * H;
      T* drow = dep + static_cast<int64_t>(w) * H;
      for (int64_t j = j_lo; j < j_hi; ++j) {
        if (!mrow[j]) continue;
        drow[j] = T(static_cast<float>(drow[j]) +
                    scale * keep_scale * static_cast<float>(dyrow[j]));
      }
    }
  });
}

}  // namespace

void embedding_fw(KernelContext& kc, Impl impl, const Tensor& ids, const Tensor& emb,
                  const Tensor& pos, const Tensor& y, const Tensor& mask, float scale,
                  float p, uint64_t stream, int32_t pad_id) {
  LS2_CHECK(p >= 0.0f && p < 1.0f);
  LS2_CHECK_EQ(emb.shape().rank(), 2);
  const int64_t tokens = ids.numel();
  const int64_t H = emb.shape()[1];
  LS2_CHECK_EQ(y.numel(), tokens * H);
  LS2_CHECK_EQ(mask.numel(), tokens * H);
  LS2_CHECK_GE(pos.shape()[0], ids.shape()[-1]) << "sequence longer than position table";
  const int64_t act_bytes = static_cast<int64_t>(y.bytes());
  const int64_t lookup_read = tokens * (4 + H * static_cast<int64_t>(dtype_size(emb.dtype())));

  // Microbatch slice offset, baked at launch time: the j-th microbatch's
  // tokens are the global token range [j*tokens, (j+1)*tokens).
  const uint64_t mb_off = kc.microbatch * static_cast<uint64_t>(tokens * H);

  if (impl == Impl::kLS2) {
    kc.dev.launch(desc("ls2.embedding_fw", lookup_read + act_bytes /*pos rows*/,
                       act_bytes + static_cast<int64_t>(mask.bytes()),
                       static_cast<double>(tokens) * H * 4.0, 0.85),
                  [&, scale, p, stream, mb_off, pad_id] {
                    LS2_DISPATCH_FLOAT(emb.dtype(), T,
                                       embedding_fw_body<T>(ids, emb, pos, y, mask, scale, p,
                                                            kc.rng, stream, mb_off, pad_id));
                  });
    return;
  }
  // Baseline: lookup, scale, positional add, dropout — four launches, three
  // materialised intermediates.
  kc.dev.launch(desc("torch.embedding_lookup", lookup_read, act_bytes, 0, 0.70), nullptr);
  kc.dev.launch(desc("torch.embedding_scale", act_bytes, act_bytes,
                     static_cast<double>(tokens) * H, 0.70),
                nullptr);
  kc.dev.launch(desc("torch.pos_add", 2 * act_bytes, act_bytes,
                     static_cast<double>(tokens) * H, 0.70),
                nullptr);
  kc.dev.launch(desc("torch.embedding_dropout", act_bytes,
                     act_bytes + static_cast<int64_t>(mask.bytes()),
                     static_cast<double>(tokens) * H * 3.0, 0.65),
                [&, scale, p, stream, mb_off, pad_id] {
                  LS2_DISPATCH_FLOAT(emb.dtype(), T,
                                     embedding_fw_body<T>(ids, emb, pos, y, mask, scale, p,
                                                          kc.rng, stream, mb_off, pad_id));
                });
}

namespace {

template <typename T>
void embedding_decode_body(const Tensor& ids, const Tensor& emb, const Tensor& pos,
                           const Tensor& positions, const Tensor& y, float scale,
                           int32_t pad_id) {
  const int64_t S = ids.numel();
  const int64_t H = emb.shape()[1];
  const int32_t* idp = ids.data<int32_t>();
  const int32_t* posp = positions.data<int32_t>();
  const T* ep = emb.data<T>();
  const T* pp = pos.data<T>();
  T* yp = y.data<T>();
  parallel_for(0, S, [&](int64_t s) {
    const int32_t w = idp[s];
    T* yrow = yp + s * H;
    if (w == pad_id) {
      for (int64_t j = 0; j < H; ++j) yrow[j] = T(0.0f);
      return;
    }
    LS2_CHECK(w >= 0 && w < emb.shape()[0]) << "token id " << w << " out of vocabulary";
    LS2_CHECK(posp[s] >= 0 && posp[s] < pos.shape()[0])
        << "decode position " << posp[s] << " beyond position table";
    const T* erow = ep + static_cast<int64_t>(w) * H;
    const T* prow = pp + static_cast<int64_t>(posp[s]) * H;
    for (int64_t j = 0; j < H; ++j) {
      const float v = scale * static_cast<float>(erow[j]) + static_cast<float>(prow[j]);
      yrow[j] = T(v);
    }
  });
}

}  // namespace

void embedding_decode_fw(KernelContext& kc, Impl impl, const Tensor& ids, const Tensor& emb,
                         const Tensor& pos, const Tensor& positions, const Tensor& y,
                         float scale, int32_t pad_id) {
  LS2_CHECK(ids.dtype() == DType::kI32 && positions.dtype() == DType::kI32);
  const int64_t S = ids.numel();
  const int64_t H = emb.shape()[1];
  LS2_CHECK_EQ(positions.numel(), S);
  LS2_CHECK_EQ(y.numel(), S * H);
  const int64_t act_bytes = static_cast<int64_t>(y.bytes());
  const int64_t lookup_read =
      S * (8 + 2 * H * static_cast<int64_t>(dtype_size(emb.dtype())));
  auto body = [&, scale, pad_id] {
    LS2_DISPATCH_FLOAT(emb.dtype(), T, embedding_decode_body<T>(ids, emb, pos, positions, y,
                                                                scale, pad_id));
  };
  if (impl == Impl::kLS2) {
    kc.dev.launch(desc("ls2.embedding_decode", lookup_read, act_bytes,
                       static_cast<double>(S) * H * 2.0, 0.85),
                  body);
    return;
  }
  // Baseline: gather, scale, positional gather+add — three launches.
  kc.dev.launch(desc("torch.embedding_lookup", lookup_read, act_bytes, 0, 0.70), nullptr);
  kc.dev.launch(desc("torch.embedding_scale", act_bytes, act_bytes, static_cast<double>(S) * H,
                     0.70),
                nullptr);
  kc.dev.launch(desc("torch.pos_add", 2 * act_bytes, act_bytes, static_cast<double>(S) * H,
                     0.70),
                body);
}

void embedding_bw(KernelContext& kc, Impl impl, const Tensor& dy, const Tensor& ids,
                  const Tensor& mask, const Tensor& d_emb, float scale, float p,
                  int32_t pad_id, bool zero_first) {
  const int64_t tokens = ids.numel();
  const int64_t H = d_emb.shape()[1];
  LS2_CHECK_EQ(dy.numel(), tokens * H);
  const int64_t act_bytes = static_cast<int64_t>(dy.bytes());
  const int64_t table_bytes = static_cast<int64_t>(d_emb.bytes());

  if (impl == Impl::kLS2) {
    if (zero_first) {
      kc.dev.launch(desc("ls2.embedding_zero_grad", 0, table_bytes, 0, 0.85),
                    [&] { d_emb.zero_(); });
    }
    kc.dev.launch(desc("ls2.embedding_bw_scatter",
                       act_bytes + static_cast<int64_t>(mask.bytes()) + tokens * 4,
                       2 * act_bytes /* atomic rmw traffic */,
                       static_cast<double>(tokens) * H * 2.0, 0.75),
                  [&, scale, p, pad_id] {
                    LS2_DISPATCH_FLOAT(dy.dtype(), T,
                                       embedding_bw_body<T>(dy, ids, mask, d_emb, scale, p,
                                                            pad_id));
                  });
    return;
  }
  // Baseline: dropout bw, un-scale, zero table, scatter — each its own pass.
  kc.dev.launch(desc("torch.embedding_dropout_bw",
                     act_bytes + static_cast<int64_t>(mask.bytes()), act_bytes,
                     static_cast<double>(tokens) * H, 0.65),
                nullptr);
  kc.dev.launch(desc("torch.embedding_scale_bw", act_bytes, act_bytes,
                     static_cast<double>(tokens) * H, 0.70),
                nullptr);
  if (zero_first) {
    kc.dev.launch(desc("torch.embedding_zero_grad", 0, table_bytes, 0, 0.70),
                  [&] { d_emb.zero_(); });
  }
  kc.dev.launch(desc("torch.embedding_bw_scatter", act_bytes + tokens * 4, 2 * act_bytes,
                     static_cast<double>(tokens) * H, 0.55),
                [&, scale, p, pad_id] {
                  LS2_DISPATCH_FLOAT(dy.dtype(), T,
                                     embedding_bw_body<T>(dy, ids, mask, d_emb, scale, p,
                                                          pad_id));
                });
}

}  // namespace ls2::kern
