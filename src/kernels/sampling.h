// Token-selection kernels for the serving engine (src/infer/).
//
// Both kernels operate row-wise on a logits matrix [rows, vocab] and write
// one token id per row. Sampling follows the counter-based RNG discipline
// (tensor/random.h): the drawn token is a pure function of
// (seed, stream, row), so a decode step replayed from a captured graph
// samples bitwise the tokens its eager twin would — the stream advances
// OUTSIDE the graph via KernelContext::begin_step_rng, exactly like the
// dropout sites.
#pragma once

#include "kernels/dropout.h"  // Impl
#include "kernels/kernel_context.h"

namespace ls2::kern {

/// Greedy decoding: out[r] = argmax_j logits[r, j] (ties -> lowest id).
/// logits: [rows, V] f32/f16; out: [rows] i32. One reduction launch.
void argmax_rows(KernelContext& kc, Impl impl, const Tensor& logits, const Tensor& out);

/// Temperature + top-k sampling: per row, keep the k largest logits
/// (k <= 0 or k >= V keeps all), softmax them at `temperature`, and draw by
/// inverse CDF with u = rng.uniform(stream, row). Fused single launch under
/// kLS2 (filter + softmax + draw resident); baselines charge the
/// top-k partition and the categorical draw as separate launches.
void sample_topk(KernelContext& kc, Impl impl, const Tensor& logits, const Tensor& out,
                 int64_t k, float temperature, uint64_t stream);

}  // namespace ls2::kern
