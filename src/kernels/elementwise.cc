#include "kernels/elementwise.h"

#include <cmath>

#include "common/parallel.h"

namespace ls2::kern {

namespace {

// Achieved bandwidth: framework element-wise kernels are generic/strided;
// LightSeq2 kernels use vectorised (half2/float4) accesses.
constexpr double kBaselineEff = 0.70;
constexpr double kFusedEff = 0.85;

simgpu::KernelDesc ew_desc(std::string name, int64_t bytes_read, int64_t bytes_written,
                           int64_t n, double flops_per_elem, double eff) {
  simgpu::KernelDesc d;
  d.name = std::move(name);
  d.bytes_read = bytes_read;
  d.bytes_written = bytes_written;
  d.flops = static_cast<double>(n) * flops_per_elem;
  d.mem_efficiency = eff;
  d.compute_efficiency = 0.6;
  return d;
}

template <typename T>
inline float gelu_val(float x) = delete;

inline float gelu_scalar(float x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return 0.5f * x * (1.0f + std::tanh(kC * (x + 0.044715f * x * x * x)));
}

inline float gelu_grad_scalar(float x) {
  constexpr float kC = 0.7978845608028654f;
  const float x3 = x * x * x;
  const float t = std::tanh(kC * (x + 0.044715f * x3));
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * kC * (1.0f + 3.0f * 0.044715f * x * x);
}

void check_same_numel(const Tensor& a, const Tensor& b) {
  LS2_CHECK_EQ(a.numel(), b.numel());
  LS2_CHECK(a.dtype() == b.dtype()) << "dtype mismatch";
}

void add_body(const Tensor& a, const Tensor& b, const Tensor& y) {
  LS2_DISPATCH_FLOAT(a.dtype(), T, {
    const T* ap = a.data<T>();
    const T* bp = b.data<T>();
    T* yp = y.data<T>();
    parallel_for(0, a.numel(), [&](int64_t i) {
      yp[i] = T(static_cast<float>(ap[i]) + static_cast<float>(bp[i]));
    });
  });
}

}  // namespace

namespace baseline {

void add_bias(KernelContext& kc, const Tensor& x, const Tensor& bias, const Tensor& y) {
  check_same_numel(x, y);
  const Shape flat = x.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  LS2_CHECK_EQ(bias.numel(), cols);
  kc.dev.launch(
      ew_desc("torch.add_bias", x.bytes() + bias.bytes(), y.bytes(), x.numel(), 1.0,
              kBaselineEff),
      [&, rows, cols] {
        LS2_DISPATCH_FLOAT(x.dtype(), T, {
          const T* xp = x.data<T>();
          const T* bp = bias.data<T>();
          T* yp = y.data<T>();
          parallel_for(0, rows * cols, [&](int64_t i) {
            yp[i] = T(static_cast<float>(xp[i]) + static_cast<float>(bp[i % cols]));
          });
        });
      });
}

void relu_fw(KernelContext& kc, const Tensor& x, const Tensor& y) {
  check_same_numel(x, y);
  kc.dev.launch(ew_desc("torch.relu_fw", x.bytes(), y.bytes(), x.numel(), 1.0, kBaselineEff),
                [&] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    const T* xp = x.data<T>();
                    T* yp = y.data<T>();
                    parallel_for(0, x.numel(), [&](int64_t i) {
                      const float v = static_cast<float>(xp[i]);
                      yp[i] = T(v > 0.0f ? v : 0.0f);
                    });
                  });
                });
}

void relu_bw(KernelContext& kc, const Tensor& dy, const Tensor& x, const Tensor& dx) {
  check_same_numel(dy, dx);
  check_same_numel(dy, x);
  kc.dev.launch(ew_desc("torch.relu_bw", dy.bytes() + x.bytes(), dx.bytes(), x.numel(), 1.0,
                        kBaselineEff),
                [&] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    const T* dyp = dy.data<T>();
                    const T* xp = x.data<T>();
                    T* dxp = dx.data<T>();
                    parallel_for(0, x.numel(), [&](int64_t i) {
                      dxp[i] = T(static_cast<float>(xp[i]) > 0.0f
                                     ? static_cast<float>(dyp[i])
                                     : 0.0f);
                    });
                  });
                });
}

void gelu_fw(KernelContext& kc, const Tensor& x, const Tensor& y) {
  check_same_numel(x, y);
  kc.dev.launch(ew_desc("torch.gelu_fw", x.bytes(), y.bytes(), x.numel(), 10.0, kBaselineEff),
                [&] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    const T* xp = x.data<T>();
                    T* yp = y.data<T>();
                    parallel_for(0, x.numel(), [&](int64_t i) {
                      yp[i] = T(gelu_scalar(static_cast<float>(xp[i])));
                    });
                  });
                });
}

void gelu_bw(KernelContext& kc, const Tensor& dy, const Tensor& x, const Tensor& dx) {
  check_same_numel(dy, dx);
  kc.dev.launch(ew_desc("torch.gelu_bw", dy.bytes() + x.bytes(), dx.bytes(), x.numel(), 14.0,
                        kBaselineEff),
                [&] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    const T* dyp = dy.data<T>();
                    const T* xp = x.data<T>();
                    T* dxp = dx.data<T>();
                    parallel_for(0, x.numel(), [&](int64_t i) {
                      dxp[i] = T(static_cast<float>(dyp[i]) *
                                 gelu_grad_scalar(static_cast<float>(xp[i])));
                    });
                  });
                });
}

void add(KernelContext& kc, const Tensor& a, const Tensor& b, const Tensor& y) {
  check_same_numel(a, b);
  check_same_numel(a, y);
  kc.dev.launch(
      ew_desc("torch.add", a.bytes() + b.bytes(), y.bytes(), a.numel(), 1.0, kBaselineEff),
      [&] { add_body(a, b, y); });
}

void scale(KernelContext& kc, const Tensor& x, const Tensor& y, float s) {
  check_same_numel(x, y);
  kc.dev.launch(ew_desc("torch.scale", x.bytes(), y.bytes(), x.numel(), 1.0, kBaselineEff),
                [&, s] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    const T* xp = x.data<T>();
                    T* yp = y.data<T>();
                    parallel_for(0, x.numel(),
                                 [&](int64_t i) { yp[i] = T(static_cast<float>(xp[i]) * s); });
                  });
                });
}

void cast(KernelContext& kc, const Tensor& x, const Tensor& y) {
  LS2_CHECK_EQ(x.numel(), y.numel());
  kc.dev.launch(ew_desc("torch.cast", x.bytes(), y.bytes(), x.numel(), 1.0, kBaselineEff),
                [&] {
                  if (x.dtype() == DType::kF32 && y.dtype() == DType::kF16) {
                    convert_float_to_half(x.data<float>(), y.data<Half>(), x.numel());
                  } else if (x.dtype() == DType::kF16 && y.dtype() == DType::kF32) {
                    convert_half_to_float(x.data<Half>(), y.data<float>(), x.numel());
                  } else {
                    LS2_CHECK(x.dtype() == y.dtype()) << "unsupported cast";
                    y.copy_(x);
                  }
                });
}

void zero(KernelContext& kc, const Tensor& y) {
  kc.dev.launch(ew_desc("torch.zero", 0, y.bytes(), y.numel(), 0.0, kBaselineEff),
                [&] { y.zero_(); });
}

}  // namespace baseline

namespace fused {

namespace {
// Shared body for bias + activation + dropout forward.
template <typename T, typename Act>
void bias_act_dropout_body(const Tensor& x, const Tensor& bias, const Tensor& y,
                           const Tensor& mask, float p, const Rng& rng, uint64_t stream,
                           uint64_t index_offset, Act act) {
  const Shape flat = x.shape().flatten_2d();
  const int64_t cols = flat[1];
  const float keep_scale = 1.0f / (1.0f - p);
  const T* xp = x.data<T>();
  const T* bp = bias.data<T>();
  T* yp = y.data<T>();
  uint8_t* mp = mask.data<uint8_t>();
  parallel_for(0, x.numel(), [&](int64_t i) {
    const float v =
        act(static_cast<float>(xp[i]) + static_cast<float>(bp[i % cols]));
    const uint8_t keep =
        rng.uniform(stream, index_offset + static_cast<uint64_t>(i)) >= p ? 1 : 0;
    mp[i] = keep;
    yp[i] = T(keep ? v * keep_scale : 0.0f);
  });
}

template <typename T, typename ActGrad>
void bias_act_dropout_bw_body(const Tensor& dy, const Tensor& mask, const Tensor& x,
                              const Tensor& bias, const Tensor& dx, float p, ActGrad dact) {
  const Shape flat = x.shape().flatten_2d();
  const int64_t cols = flat[1];
  const float keep_scale = 1.0f / (1.0f - p);
  const T* dyp = dy.data<T>();
  const T* xp = x.data<T>();
  const T* bp = bias.data<T>();
  const uint8_t* mp = mask.data<uint8_t>();
  T* dxp = dx.data<T>();
  parallel_for(0, x.numel(), [&](int64_t i) {
    const float pre = static_cast<float>(xp[i]) + static_cast<float>(bp[i % cols]);
    const float g = mp[i] ? static_cast<float>(dyp[i]) * keep_scale : 0.0f;
    dxp[i] = T(g * dact(pre));
  });
}
}  // namespace

void bias_relu_dropout_fw(KernelContext& kc, const Tensor& x, const Tensor& bias,
                          const Tensor& y, const Tensor& mask, float p, uint64_t stream) {
  LS2_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
  // Baked by value at launch time so a captured graph node replays the
  // microbatch's own mask slice (KernelContext::microbatch).
  const uint64_t mb_off = kc.microbatch * static_cast<uint64_t>(x.numel());
  kc.dev.launch(ew_desc("ls2.bias_relu_dropout_fw", x.bytes() + bias.bytes(),
                        y.bytes() + mask.bytes(), x.numel(), 4.0, kFusedEff),
                [&, p, stream, mb_off] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    bias_act_dropout_body<T>(x, bias, y, mask, p, kc.rng, stream, mb_off,
                                             [](float v) { return v > 0.0f ? v : 0.0f; });
                  });
                });
}

void bias_relu_dropout_bw(KernelContext& kc, const Tensor& dy, const Tensor& mask,
                          const Tensor& x, const Tensor& bias, const Tensor& dx, float p) {
  kc.dev.launch(ew_desc("ls2.bias_relu_dropout_bw",
                        dy.bytes() + mask.bytes() + x.bytes() + bias.bytes(), dx.bytes(),
                        x.numel(), 4.0, kFusedEff),
                [&, p] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    bias_act_dropout_bw_body<T>(
                        dy, mask, x, bias, dx, p,
                        [](float pre) { return pre > 0.0f ? 1.0f : 0.0f; });
                  });
                });
}

void bias_gelu_dropout_fw(KernelContext& kc, const Tensor& x, const Tensor& bias,
                          const Tensor& y, const Tensor& mask, float p, uint64_t stream) {
  LS2_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
  const uint64_t mb_off = kc.microbatch * static_cast<uint64_t>(x.numel());
  kc.dev.launch(ew_desc("ls2.bias_gelu_dropout_fw", x.bytes() + bias.bytes(),
                        y.bytes() + mask.bytes(), x.numel(), 12.0, kFusedEff),
                [&, p, stream, mb_off] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    bias_act_dropout_body<T>(x, bias, y, mask, p, kc.rng, stream, mb_off,
                                             gelu_scalar);
                  });
                });
}

void bias_gelu_dropout_bw(KernelContext& kc, const Tensor& dy, const Tensor& mask,
                          const Tensor& x, const Tensor& bias, const Tensor& dx, float p) {
  kc.dev.launch(ew_desc("ls2.bias_gelu_dropout_bw",
                        dy.bytes() + mask.bytes() + x.bytes() + bias.bytes(), dx.bytes(),
                        x.numel(), 16.0, kFusedEff),
                [&, p] {
                  LS2_DISPATCH_FLOAT(x.dtype(), T, {
                    bias_act_dropout_bw_body<T>(dy, mask, x, bias, dx, p, gelu_grad_scalar);
                  });
                });
}

void bias_dropout_residual_fw(KernelContext& kc, const Tensor& x, const Tensor& bias,
                              const Tensor& residual, const Tensor& y, const Tensor& mask,
                              float p, uint64_t stream) {
  LS2_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
  LS2_CHECK_EQ(x.numel(), residual.numel());
  const Shape flat = x.shape().flatten_2d();
  const int64_t cols = flat[1];
  LS2_CHECK_EQ(bias.numel(), cols);
  kc.dev.launch(
      ew_desc("ls2.bias_dropout_residual_fw", x.bytes() + bias.bytes() + residual.bytes(),
              y.bytes() + mask.bytes(), x.numel(), 4.0, kFusedEff),
      [&, p, stream, cols, mb_off = kc.microbatch * static_cast<uint64_t>(x.numel())] {
        LS2_DISPATCH_FLOAT(x.dtype(), T, {
          const float keep_scale = 1.0f / (1.0f - p);
          const T* xp = x.data<T>();
          const T* bp = bias.data<T>();
          const T* rp = residual.data<T>();
          T* yp = y.data<T>();
          uint8_t* mp = mask.data<uint8_t>();
          parallel_for(0, x.numel(), [&](int64_t i) {
            const float v = static_cast<float>(xp[i]) + static_cast<float>(bp[i % cols]);
            const uint8_t keep =
                kc.rng.uniform(stream, mb_off + static_cast<uint64_t>(i)) >= p ? 1 : 0;
            mp[i] = keep;
            yp[i] = T(static_cast<float>(rp[i]) + (keep ? v * keep_scale : 0.0f));
          });
        });
      });
}

void bias_dropout_residual_bw(KernelContext& kc, const Tensor& dy, const Tensor& mask,
                              const Tensor& dx, float p) {
  kc.dev.launch(ew_desc("ls2.bias_dropout_residual_bw", dy.bytes() + mask.bytes(), dx.bytes(),
                        dy.numel(), 2.0, kFusedEff),
                [&, p] {
                  LS2_DISPATCH_FLOAT(dy.dtype(), T, {
                    const float keep_scale = 1.0f / (1.0f - p);
                    const T* dyp = dy.data<T>();
                    const uint8_t* mp = mask.data<uint8_t>();
                    T* dxp = dx.data<T>();
                    parallel_for(0, dy.numel(), [&](int64_t i) {
                      dxp[i] = T(mp[i] ? static_cast<float>(dyp[i]) * keep_scale : 0.0f);
                    });
                  });
                });
}

}  // namespace fused

void add(KernelContext& kc, Impl impl, const Tensor& a, const Tensor& b,
         const Tensor& y) {
  if (impl != Impl::kLS2) {
    baseline::add(kc, a, b, y);
    return;
  }
  check_same_numel(a, b);
  check_same_numel(a, y);
  kc.dev.launch(
      ew_desc("ls2.add", a.bytes() + b.bytes(), y.bytes(), a.numel(), 1.0, kFusedEff),
      [&] { add_body(a, b, y); });
}

void bias_grad(KernelContext& kc, const Tensor& dx, const Tensor& dbias) {
  const Shape flat = dx.shape().flatten_2d();
  const int64_t rows = flat[0], cols = flat[1];
  LS2_CHECK_EQ(dbias.numel(), cols);
  simgpu::KernelDesc d = ew_desc("ls2.bias_grad", dx.bytes(), dbias.bytes(), dx.numel(), 1.0,
                                 reduction_efficiency(0.85, cols, rows, 32));
  kc.dev.launch(d, [&, rows, cols] {
    LS2_DISPATCH_FLOAT(dx.dtype(), T, {
      const T* dxp = dx.data<T>();
      T* dbp = dbias.data<T>();
      // Accumulate in FP32 FROM the destination, ascending rows — the same
      // per-element chain whether the batch arrives whole or as microbatch
      // slices (pipeline parallelism): slice j continues exactly where
      // slice j-1 left off, so the final value is bitwise the full-batch
      // reduction's. Callers rely on grads being zeroed at step start.
      parallel_for(0, cols, [&](int64_t j) {
        float acc = static_cast<float>(dbp[j]);
        for (int64_t i = 0; i < rows; ++i) acc += static_cast<float>(dxp[i * cols + j]);
        dbp[j] = T(acc);
      });
    });
  });
}

}  // namespace ls2::kern
