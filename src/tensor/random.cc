#include "tensor/random.h"

#include <cmath>

namespace ls2 {

namespace {
// splitmix64 finaliser: good avalanche, cheap, stateless.
inline uint64_t mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

uint64_t Rng::bits(uint64_t stream, uint64_t index) const {
  // Two rounds decorrelate (stream, index) pairs that differ in one word.
  return mix(mix(seed_ ^ (stream * 0xd1342543de82ef95ull)) ^ index);
}

float Rng::uniform(uint64_t stream, uint64_t index) const {
  // Use the top 24 bits for a dyadic rational in [0,1).
  return static_cast<float>(bits(stream, index) >> 40) * (1.0f / 16777216.0f);
}

float Rng::normal(uint64_t stream, uint64_t index) const {
  // Box–Muller; draw two independent uniforms from disjoint sub-streams.
  const float u1 = uniform(stream * 2 + 1, index);
  const float u2 = uniform(stream * 2 + 2, index);
  const float r = std::sqrt(-2.0f * std::log(u1 + 1e-12f));
  return r * std::cos(2.0f * static_cast<float>(M_PI) * u2);
}

int64_t Rng::randint(uint64_t stream, uint64_t index, int64_t n) const {
  LS2_CHECK_GT(n, 0);
  return static_cast<int64_t>(bits(stream, index) % static_cast<uint64_t>(n));
}

void Rng::fill_uniform(const Tensor& t, uint64_t stream, float lo, float hi) const {
  const int64_t n = t.numel();
  std::vector<float> host(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    host[static_cast<size_t>(i)] = lo + (hi - lo) * uniform(stream, static_cast<uint64_t>(i));
  t.copy_from(host);
}

void Rng::fill_normal(const Tensor& t, uint64_t stream, float mean, float stddev) const {
  const int64_t n = t.numel();
  std::vector<float> host(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    host[static_cast<size_t>(i)] = mean + stddev * normal(stream, static_cast<uint64_t>(i));
  t.copy_from(host);
}

void Rng::fill_randint(const Tensor& t, uint64_t stream, int64_t lo, int64_t hi) const {
  LS2_CHECK_LT(lo, hi);
  const int64_t n = t.numel();
  std::vector<float> host(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    host[static_cast<size_t>(i)] =
        static_cast<float>(lo + randint(stream, static_cast<uint64_t>(i), hi - lo));
  t.copy_from(host);
}

}  // namespace ls2
