// Contiguous, row-major tensor over device memory.
//
// The allocator is pluggable: the simulated GPU (src/simgpu) provides
// allocators that track bytes and charge cudaMalloc/cudaFree latency, which
// is how the paper's Fig. 20/21 memory and utilisation timelines are
// produced. Tensors can also *alias* external memory without owning it —
// that is the mechanism behind "symbolic tensor linking" (§IV-C), where
// every parameter is a view into one contiguous workspace.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "common/check.h"
#include "tensor/dtype.h"
#include "tensor/half.h"
#include "tensor/shape.h"

namespace ls2 {

/// Raw-memory provider. Implementations decide *where* the bytes live and
/// what the allocation costs in simulated device time.
class BufferAllocator {
 public:
  virtual ~BufferAllocator() = default;
  virtual void* allocate(size_t bytes) = 0;
  virtual void deallocate(void* ptr, size_t bytes) = 0;
  virtual const char* name() const = 0;
  /// False for timing-only backing (virtual, never-committed pages): tensor
  /// initialisation writes are skipped so paper-scale model-only sweeps
  /// don't commit host RAM. See simgpu::ExecMode::kModelOnly.
  virtual bool backs_real_memory() const { return true; }
};

/// Process-wide default allocator (plain heap, zero simulated cost). Used by
/// tests and host-side staging buffers.
BufferAllocator* heap_allocator();

/// Shared ownership of one allocation (or a non-owning alias).
class Buffer {
 public:
  /// Owning buffer: takes `bytes` from `alloc`, returns them on destruction.
  Buffer(BufferAllocator* alloc, size_t bytes);
  /// Non-owning alias of external memory.
  Buffer(void* external, size_t bytes);
  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  void* data() const { return ptr_; }
  size_t bytes() const { return bytes_; }
  bool owning() const { return alloc_ != nullptr; }
  bool real() const { return alloc_ == nullptr || alloc_->backs_real_memory(); }

 private:
  BufferAllocator* alloc_ = nullptr;  // null => non-owning
  void* ptr_ = nullptr;
  size_t bytes_ = 0;
};

/// The tensor type used across LightSeq2. Always contiguous and row-major;
/// reshapes are free, slices are views along dim 0.
class Tensor {
 public:
  Tensor() = default;

  /// Allocate an uninitialised tensor.
  static Tensor empty(Shape shape, DType dtype, BufferAllocator* alloc = nullptr);
  /// Allocate and zero-fill.
  static Tensor zeros(Shape shape, DType dtype, BufferAllocator* alloc = nullptr);
  /// Wrap external memory without taking ownership ("symbolic link").
  static Tensor from_ptr(void* data, Shape shape, DType dtype);
  /// Copy host f32 data into a fresh tensor of the given dtype.
  static Tensor from_vector(const std::vector<float>& v, Shape shape, DType dtype,
                            BufferAllocator* alloc = nullptr);

  bool defined() const { return buf_ != nullptr; }
  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  int64_t numel() const { return shape_.numel(); }
  size_t bytes() const { return static_cast<size_t>(numel()) * dtype_size(dtype_); }

  /// Typed pointer to the first element. Checks the static type against the
  /// runtime dtype.
  template <typename T>
  T* data() const {
    check_type<T>();
    return reinterpret_cast<T*>(raw());
  }
  void* raw() const;

  /// Same storage, new shape (numel must match).
  Tensor view(Shape new_shape) const;
  /// View of rows [begin, end) along dimension 0.
  Tensor slice(int64_t begin, int64_t end) const;
  /// Reinterpreting view at a byte offset into this tensor's storage,
  /// sharing ownership (keeps the buffer alive). Used by the block-plan and
  /// workspace machinery.
  Tensor byte_view(size_t byte_offset, Shape shape, DType dtype) const;

  /// True unless the tensor lives in timing-only virtual backing. Mutating
  /// host-side initialisers below become no-ops on non-real tensors.
  bool backs_real_memory() const;

  void zero_() const;
  void fill_(float value) const;
  /// Element-count-checked copy from host f32 (converts to this dtype).
  void copy_from(const std::vector<float>& v) const;
  /// Read back as f32 (converting from f16 where needed).
  std::vector<float> to_vector() const;
  /// Raw byte copy from another tensor of identical dtype/numel.
  void copy_(const Tensor& src) const;

  /// Scalar accessors used in tests (f32/f16 only).
  float item(int64_t index = 0) const;

 private:
  template <typename T>
  void check_type() const {
    if constexpr (std::is_same_v<T, float>) {
      LS2_CHECK(dtype_ == DType::kF32) << "tensor is " << dtype_name(dtype_);
    } else if constexpr (std::is_same_v<T, Half>) {
      LS2_CHECK(dtype_ == DType::kF16) << "tensor is " << dtype_name(dtype_);
    } else if constexpr (std::is_same_v<T, int32_t>) {
      LS2_CHECK(dtype_ == DType::kI32) << "tensor is " << dtype_name(dtype_);
    } else if constexpr (std::is_same_v<T, uint8_t>) {
      LS2_CHECK(dtype_ == DType::kU8) << "tensor is " << dtype_name(dtype_);
    } else {
      static_assert(sizeof(T) == 0, "unsupported element type");
    }
  }

  std::shared_ptr<Buffer> buf_;
  size_t byte_offset_ = 0;
  Shape shape_;
  DType dtype_ = DType::kF32;
};

}  // namespace ls2
