#include "tensor/tensor.h"

#include <cstdlib>

namespace ls2 {

namespace {
class HeapAllocator final : public BufferAllocator {
 public:
  void* allocate(size_t bytes) override {
    if (bytes == 0) return nullptr;
    void* p = std::malloc(bytes);
    LS2_CHECK(p != nullptr) << "heap allocation of " << bytes << " bytes failed";
    return p;
  }
  void deallocate(void* ptr, size_t) override { std::free(ptr); }
  const char* name() const override { return "heap"; }
};
}  // namespace

BufferAllocator* heap_allocator() {
  static HeapAllocator alloc;
  return &alloc;
}

Buffer::Buffer(BufferAllocator* alloc, size_t bytes)
    : alloc_(alloc), ptr_(alloc->allocate(bytes)), bytes_(bytes) {}

Buffer::Buffer(void* external, size_t bytes) : ptr_(external), bytes_(bytes) {}

Buffer::~Buffer() {
  if (alloc_ != nullptr && ptr_ != nullptr) alloc_->deallocate(ptr_, bytes_);
}

Tensor Tensor::empty(Shape shape, DType dtype, BufferAllocator* alloc) {
  if (alloc == nullptr) alloc = heap_allocator();
  Tensor t;
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  t.buf_ = std::make_shared<Buffer>(alloc, static_cast<size_t>(t.numel()) * dtype_size(dtype));
  return t;
}

Tensor Tensor::zeros(Shape shape, DType dtype, BufferAllocator* alloc) {
  Tensor t = empty(std::move(shape), dtype, alloc);
  t.zero_();
  return t;
}

Tensor Tensor::from_ptr(void* data, Shape shape, DType dtype) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  t.buf_ = std::make_shared<Buffer>(data, static_cast<size_t>(t.numel()) * dtype_size(dtype));
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& v, Shape shape, DType dtype,
                           BufferAllocator* alloc) {
  Tensor t = empty(std::move(shape), dtype, alloc);
  t.copy_from(v);
  return t;
}

void* Tensor::raw() const {
  LS2_CHECK(defined()) << "undefined tensor";
  return static_cast<char*>(buf_->data()) + byte_offset_;
}

Tensor Tensor::view(Shape new_shape) const {
  LS2_CHECK_EQ(new_shape.numel(), numel()) << "view " << shape_.str() << " -> " << new_shape.str();
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::byte_view(size_t byte_offset, Shape shape, DType dtype) const {
  LS2_CHECK(defined());
  Tensor t;
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  LS2_CHECK_LE(byte_offset + t.bytes(), bytes()) << "byte_view out of range";
  t.buf_ = buf_;
  t.byte_offset_ = byte_offset_ + byte_offset;
  return t;
}

Tensor Tensor::slice(int64_t begin, int64_t end) const {
  LS2_CHECK_GE(shape_.rank(), 1);
  LS2_CHECK(begin >= 0 && begin <= end && end <= shape_.dim(0))
      << "slice [" << begin << "," << end << ") of " << shape_.str();
  std::vector<int64_t> dims = shape_.dims();
  int64_t row_elems = 1;
  for (size_t i = 1; i < dims.size(); ++i) row_elems *= dims[i];
  dims[0] = end - begin;
  Tensor t = *this;
  t.shape_ = Shape(dims);
  t.byte_offset_ = byte_offset_ + static_cast<size_t>(begin * row_elems) * dtype_size(dtype_);
  return t;
}

bool Tensor::backs_real_memory() const { return !defined() || buf_->real(); }

void Tensor::zero_() const {
  if (!backs_real_memory()) return;
  if (numel() > 0) std::memset(raw(), 0, bytes());
}

void Tensor::fill_(float value) const {
  if (!backs_real_memory()) return;
  const int64_t n = numel();
  switch (dtype_) {
    case DType::kF32: {
      float* p = data<float>();
      for (int64_t i = 0; i < n; ++i) p[i] = value;
      break;
    }
    case DType::kF16: {
      const Half h(value);
      Half* p = data<Half>();
      for (int64_t i = 0; i < n; ++i) p[i] = h;
      break;
    }
    case DType::kI32: {
      int32_t* p = data<int32_t>();
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<int32_t>(value);
      break;
    }
    case DType::kU8: {
      uint8_t* p = data<uint8_t>();
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(value);
      break;
    }
  }
}

void Tensor::copy_from(const std::vector<float>& v) const {
  LS2_CHECK_EQ(static_cast<int64_t>(v.size()), numel());
  if (!backs_real_memory()) return;
  const int64_t n = numel();
  switch (dtype_) {
    case DType::kF32:
      std::memcpy(raw(), v.data(), static_cast<size_t>(n) * sizeof(float));
      break;
    case DType::kF16:
      convert_float_to_half(v.data(), data<Half>(), n);
      break;
    case DType::kI32: {
      int32_t* p = data<int32_t>();
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<int32_t>(v[static_cast<size_t>(i)]);
      break;
    }
    case DType::kU8: {
      uint8_t* p = data<uint8_t>();
      for (int64_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(v[static_cast<size_t>(i)]);
      break;
    }
  }
}

std::vector<float> Tensor::to_vector() const {
  const int64_t n = numel();
  std::vector<float> out(static_cast<size_t>(n));
  switch (dtype_) {
    case DType::kF32:
      std::memcpy(out.data(), raw(), static_cast<size_t>(n) * sizeof(float));
      break;
    case DType::kF16:
      convert_half_to_float(data<Half>(), out.data(), n);
      break;
    case DType::kI32: {
      const int32_t* p = data<int32_t>();
      for (int64_t i = 0; i < n; ++i) out[static_cast<size_t>(i)] = static_cast<float>(p[i]);
      break;
    }
    case DType::kU8: {
      const uint8_t* p = data<uint8_t>();
      for (int64_t i = 0; i < n; ++i) out[static_cast<size_t>(i)] = static_cast<float>(p[i]);
      break;
    }
  }
  return out;
}

void Tensor::copy_(const Tensor& src) const {
  LS2_CHECK_EQ(numel(), src.numel());
  LS2_CHECK(dtype_ == src.dtype()) << "copy_ dtype mismatch";
  if (!backs_real_memory() || !src.backs_real_memory()) return;
  std::memcpy(raw(), src.raw(), bytes());
}

float Tensor::item(int64_t index) const {
  LS2_CHECK(index >= 0 && index < numel());
  switch (dtype_) {
    case DType::kF32: return data<float>()[index];
    case DType::kF16: return static_cast<float>(data<Half>()[index]);
    case DType::kI32: return static_cast<float>(data<int32_t>()[index]);
    case DType::kU8: return static_cast<float>(data<uint8_t>()[index]);
  }
  return 0.0f;
}

}  // namespace ls2
