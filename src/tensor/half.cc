#include "tensor/half.h"

#include <cstring>

#include "common/parallel.h"

namespace ls2 {

uint16_t float_to_half_bits(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint32_t sign = (x >> 16) & 0x8000u;
  x &= 0x7fffffffu;

  // NaN / Inf.
  if (x >= 0x7f800000u) {
    if (x > 0x7f800000u) return static_cast<uint16_t>(sign | 0x7e00u);  // qNaN
    return static_cast<uint16_t>(sign | 0x7c00u);                       // Inf
  }
  // Overflow to Inf: anything >= 2^16 * (1 - 2^-11) rounds to Inf.
  if (x >= 0x47800000u) return static_cast<uint16_t>(sign | 0x7c00u);

  // Normal range for half: exponent >= -14.
  if (x >= 0x38800000u) {
    // Rebias exponent from 127 to 15, keep 10 mantissa bits with RNE.
    const uint32_t mant = x & 0x007fffffu;
    const uint32_t exp = (x >> 23) - 112;  // 127 - 15
    uint32_t half = (exp << 10) | (mant >> 13);
    const uint32_t rem = mant & 0x1fffu;
    // Round to nearest even.
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) half += 1;
    return static_cast<uint16_t>(sign | half);
  }
  // Subnormal half range: values that round to mant * 2^-24, mant in [1,1023].
  if (x >= 0x33000000u) {
    // For f = m * 2^e (m in [1,2), e = exp-127 in [-25,-15]) the subnormal
    // mantissa is round(m * 2^(e+24)) = mant_full >> (126 - exp) with RNE.
    const int shift = 126 - static_cast<int>(x >> 23);  // 14..24
    const uint32_t mant = (x & 0x007fffffu) | 0x00800000u;  // implicit 1
    uint32_t half = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) half += 1;
    return static_cast<uint16_t>(sign | half);
  }
  // Underflow to signed zero.
  return static_cast<uint16_t>(sign);
}

float half_bits_to_float(uint16_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  const uint32_t mant = h & 0x3ffu;
  uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;  // zero
    } else {
      // Subnormal: normalise.
      int e = -1;
      uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      x = sign | ((127 - 15 - e) << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    x = sign | 0x7f800000u | (mant << 13);  // Inf / NaN
  } else {
    x = sign | ((exp + 112) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

void convert_float_to_half(const float* src, Half* dst, int64_t n) {
  parallel_for(0, n, [&](int64_t i) { dst[i].bits = float_to_half_bits(src[i]); });
}

void convert_half_to_float(const Half* src, float* dst, int64_t n) {
  parallel_for(0, n, [&](int64_t i) { dst[i] = half_bits_to_float(src[i].bits); });
}

}  // namespace ls2
