// Counter-based pseudo-random generator.
//
// CUDA training kernels use Philox so that dropout masks can be regenerated
// from (seed, offset) instead of stored. We implement the same *interface*
// discipline with a splitmix64-based counter hash: every random number is a
// pure function of (seed, stream, index), so fused and unfused kernels draw
// identical masks and every run is reproducible — a property the policy
// equivalence tests rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ls2 {

class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// Raw 64 random bits for (stream, index).
  uint64_t bits(uint64_t stream, uint64_t index) const;

  /// Uniform float in [0, 1).
  float uniform(uint64_t stream, uint64_t index) const;

  /// Standard normal via Box–Muller on two counter draws.
  float normal(uint64_t stream, uint64_t index) const;

  /// Integer in [0, n).
  int64_t randint(uint64_t stream, uint64_t index, int64_t n) const;

  // --- Tensor fills (host-side initialisation; not device kernels) ---
  void fill_uniform(const Tensor& t, uint64_t stream, float lo, float hi) const;
  void fill_normal(const Tensor& t, uint64_t stream, float mean, float stddev) const;
  void fill_randint(const Tensor& t, uint64_t stream, int64_t lo, int64_t hi) const;

 private:
  uint64_t seed_;
};

}  // namespace ls2
