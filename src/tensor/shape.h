// Tensor shape: a small vector of dimension sizes.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace ls2 {

/// Dimension sizes of a (contiguous, row-major) tensor. Rank 0 denotes a
/// scalar with one element.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) { validate(); }

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  int64_t operator[](int i) const { return dim(i); }

  /// Total number of elements (product of dims; 1 for rank 0).
  int64_t numel() const;

  /// Flatten all but the last dimension: {a,b,c} -> {a*b, c}. Rows/columns
  /// view used by every reduction kernel (LayerNorm, Softmax, criterion).
  Shape flatten_2d() const;

  const std::vector<int64_t>& dims() const { return dims_; }
  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string str() const;

 private:
  void validate() const;
  std::vector<int64_t> dims_;
};

}  // namespace ls2
