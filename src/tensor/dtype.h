// Element types supported by LightSeq2 tensors.
//
// Mixed-precision training (paper §IV-C) stores parameters, gradients and
// activations in FP16 and converts to FP32 on the fly inside kernels; Adam
// moments stay FP32; token ids are INT32 and dropout masks are UINT8.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace ls2 {

enum class DType : uint8_t {
  kF32 = 0,  ///< IEEE binary32
  kF16 = 1,  ///< IEEE binary16 (storage type; math in FP32)
  kI32 = 2,  ///< token ids / indices
  kU8 = 3,   ///< dropout masks, boolean flags
};

constexpr size_t dtype_size(DType t) {
  switch (t) {
    case DType::kF32: return 4;
    case DType::kF16: return 2;
    case DType::kI32: return 4;
    case DType::kU8: return 1;
  }
  return 0;
}

constexpr const char* dtype_name(DType t) {
  switch (t) {
    case DType::kF32: return "f32";
    case DType::kF16: return "f16";
    case DType::kI32: return "i32";
    case DType::kU8: return "u8";
  }
  return "?";
}

}  // namespace ls2
