#include "tensor/shape.h"

#include <sstream>

namespace ls2 {

int64_t Shape::dim(int i) const {
  if (i < 0) i += rank();
  LS2_CHECK(i >= 0 && i < rank()) << "dim index " << i << " out of range for " << str();
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

Shape Shape::flatten_2d() const {
  LS2_CHECK_GE(rank(), 1);
  if (rank() == 1) return Shape{1, dims_[0]};
  int64_t rows = 1;
  for (int i = 0; i + 1 < rank(); ++i) rows *= dims_[static_cast<size_t>(i)];
  return Shape{rows, dims_.back()};
}

std::string Shape::str() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ",";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

void Shape::validate() const {
  for (int64_t d : dims_) LS2_CHECK_GE(d, 0) << "negative dimension in " << str();
}

}  // namespace ls2
