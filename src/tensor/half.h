// Software IEEE 754 binary16 ("half") implementation.
//
// The paper stores parameters/gradients/activations in FP16 and converts to
// FP32 in registers for arithmetic ("on-the-fly conversion", §IV-C). We
// reproduce exactly that discipline: Half is a 16-bit storage type with
// round-to-nearest-even conversion; all arithmetic happens in float.
#pragma once

#include <cstdint>

namespace ls2 {

/// Convert binary32 -> binary16 bits with round-to-nearest-even,
/// preserving NaN/Inf and flushing values below the subnormal range to
/// signed zero the same way CUDA's __float2half does.
uint16_t float_to_half_bits(float f);

/// Convert binary16 bits -> binary32 (exact).
float half_bits_to_float(uint16_t h);

/// 16-bit floating point storage type. Implicit conversion mirrors CUDA
/// __half ergonomics; arithmetic promotes to float.
struct Half {
  uint16_t bits = 0;

  Half() = default;
  explicit Half(float f) : bits(float_to_half_bits(f)) {}
  operator float() const { return half_bits_to_float(bits); }

  static Half from_bits(uint16_t b) {
    Half h;
    h.bits = b;
    return h;
  }

  Half& operator=(float f) {
    bits = float_to_half_bits(f);
    return *this;
  }
  Half& operator+=(float f) {
    *this = static_cast<float>(*this) + f;
    return *this;
  }
};

static_assert(sizeof(Half) == 2, "Half must be 16 bits");

/// Bulk conversions (the FP16<->FP32 "copy" kernels of the baseline trainer).
void convert_float_to_half(const float* src, Half* dst, int64_t n);
void convert_half_to_float(const Half* src, float* dst, int64_t n);

/// Largest finite half value (65504); used by overflow tests and loss-scale
/// logic.
constexpr float kHalfMax = 65504.0f;

}  // namespace ls2
