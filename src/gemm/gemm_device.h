// Device-launched GEMM: runs the host GEMM (execute mode) while charging the
// simulated device for one cuBLAS launch with shape-dependent utilisation.
#pragma once

#include <string>

#include "simgpu/device.h"
#include "tensor/tensor.h"

namespace ls2::gemm {

/// Override for the launch's COST model under tensor parallelism: the body
/// still computes the full (m, n, k, batch) problem — the bitwise stand-in
/// for the sharded arithmetic, DESIGN.md §7 — but the device is charged for
/// one rank's shard-shaped GEMM, so the occupancy model sees the real
/// (smaller) shard shapes a TP rank launches.
struct GemmCharge {
  int64_t m = 0, n = 0, k = 0, batch = 1;
};

/// C = alpha * op(A) @ op(B) + beta * C on the simulated device. A/B/C must
/// share one dtype (kF32 or kF16); FP16 GEMM is charged at tensor-core
/// throughput. `tag` names the launch in per-kernel stats. `charge`
/// (optional) substitutes shard shapes into the cost model.
void device_gemm(simgpu::Device& device, bool trans_a, bool trans_b, int64_t m, int64_t n,
                 int64_t k, float alpha, const Tensor& a, const Tensor& b, float beta,
                 const Tensor& c, const std::string& tag = "cublas.gemm",
                 const GemmCharge* charge = nullptr);

/// Strided batched GEMM in a single launch (cublasGemmStridedBatched).
void device_gemm_batched(simgpu::Device& device, bool trans_a, bool trans_b, int64_t m,
                         int64_t n, int64_t k, float alpha, const Tensor& a, int64_t stride_a,
                         const Tensor& b, int64_t stride_b, float beta, const Tensor& c,
                         int64_t stride_c, int64_t batch,
                         const std::string& tag = "cublas.gemm_batched",
                         const GemmCharge* charge = nullptr);

}  // namespace ls2::gemm
