// Device-launched GEMM: runs the host GEMM (execute mode) while charging the
// simulated device for one cuBLAS launch with shape-dependent utilisation.
#pragma once

#include <string>

#include "simgpu/device.h"
#include "tensor/tensor.h"

namespace ls2::gemm {

/// C = alpha * op(A) @ op(B) + beta * C on the simulated device. A/B/C must
/// share one dtype (kF32 or kF16); FP16 GEMM is charged at tensor-core
/// throughput. `tag` names the launch in per-kernel stats.
void device_gemm(simgpu::Device& device, bool trans_a, bool trans_b, int64_t m, int64_t n,
                 int64_t k, float alpha, const Tensor& a, const Tensor& b, float beta,
                 const Tensor& c, const std::string& tag = "cublas.gemm");

/// Strided batched GEMM in a single launch (cublasGemmStridedBatched).
void device_gemm_batched(simgpu::Device& device, bool trans_a, bool trans_b, int64_t m,
                         int64_t n, int64_t k, float alpha, const Tensor& a, int64_t stride_a,
                         const Tensor& b, int64_t stride_b, float beta, const Tensor& c,
                         int64_t stride_c, int64_t batch,
                         const std::string& tag = "cublas.gemm_batched");

}  // namespace ls2::gemm
