#include "gemm/gemm_device.h"

#include "gemm/gemm.h"

namespace ls2::gemm {

namespace {

simgpu::KernelDesc make_desc(const std::string& tag, int64_t m, int64_t n, int64_t k,
                             int64_t batch, bool fp16, bool read_c) {
  const int64_t elem = fp16 ? 2 : 4;
  simgpu::KernelDesc d;
  d.name = tag;
  d.bytes_read = batch * elem * (m * k + k * n + (read_c ? m * n : 0));
  d.bytes_written = batch * elem * m * n;
  d.flops = 2.0 * static_cast<double>(batch) * static_cast<double>(m) *
            static_cast<double>(n) * static_cast<double>(k);
  d.compute_efficiency = gemm_utilization(m, n, k, batch);
  d.mem_efficiency = 0.85;
  d.tensor_core = fp16;
  return d;
}

void check_operands(const Tensor& a, const Tensor& b, const Tensor& c) {
  LS2_CHECK(a.dtype() == b.dtype() && b.dtype() == c.dtype()) << "gemm dtype mismatch";
  LS2_CHECK(a.dtype() == DType::kF32 || a.dtype() == DType::kF16)
      << "gemm requires f32 or f16";
}

}  // namespace

void device_gemm(simgpu::Device& device, bool trans_a, bool trans_b, int64_t m, int64_t n,
                 int64_t k, float alpha, const Tensor& a, const Tensor& b, float beta,
                 const Tensor& c, const std::string& tag, const GemmCharge* charge) {
  check_operands(a, b, c);
  const bool fp16 = a.dtype() == DType::kF16;
  const simgpu::KernelDesc desc =
      charge ? make_desc(tag, charge->m, charge->n, charge->k, charge->batch, fp16,
                         beta != 0.0f)
             : make_desc(tag, m, n, k, 1, fp16, beta != 0.0f);
  device.launch(desc, [=, &a, &b, &c] {
    if (fp16) {
      hgemm(trans_a, trans_b, m, n, k, alpha, a.data<Half>(), b.data<Half>(), beta,
            c.data<Half>());
    } else {
      sgemm(trans_a, trans_b, m, n, k, alpha, a.data<float>(), b.data<float>(), beta,
            c.data<float>());
    }
  });
}

void device_gemm_batched(simgpu::Device& device, bool trans_a, bool trans_b, int64_t m,
                         int64_t n, int64_t k, float alpha, const Tensor& a, int64_t stride_a,
                         const Tensor& b, int64_t stride_b, float beta, const Tensor& c,
                         int64_t stride_c, int64_t batch, const std::string& tag,
                         const GemmCharge* charge) {
  check_operands(a, b, c);
  const bool fp16 = a.dtype() == DType::kF16;
  const simgpu::KernelDesc desc =
      charge ? make_desc(tag, charge->m, charge->n, charge->k, charge->batch, fp16,
                         beta != 0.0f)
             : make_desc(tag, m, n, k, batch, fp16, beta != 0.0f);
  device.launch(desc, [=, &a, &b, &c] {
    if (fp16) {
      hgemm_strided_batched(trans_a, trans_b, m, n, k, alpha, a.data<Half>(), stride_a,
                            b.data<Half>(), stride_b, beta, c.data<Half>(), stride_c, batch);
    } else {
      sgemm_strided_batched(trans_a, trans_b, m, n, k, alpha, a.data<float>(), stride_a,
                            b.data<float>(), stride_b, beta, c.data<float>(), stride_c,
                            batch);
    }
  });
}

}  // namespace ls2::gemm
