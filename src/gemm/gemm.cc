#include "gemm/gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"

namespace ls2::gemm {

namespace {

// Block sizes tuned for L1-resident tiles of the inner kernel.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockN = 128;
constexpr int64_t kBlockK = 128;

// Core kernel: row-major C[m,n] = alpha*A[m,k]*B[k,n] + beta*C, no
// transposes (callers normalise layouts first). i-k-j loop order streams B
// rows and keeps the C row hot; blocked over all three dims.
void sgemm_nn(int64_t m, int64_t n, int64_t k, float alpha, const float* a, const float* b,
              float beta, float* c) {
  parallel_for_chunks(0, m, kBlockM, [&](int64_t m_lo, int64_t m_hi) {
    for (int64_t i = m_lo; i < m_hi; ++i) {
      float* crow = c + i * n;
      if (beta == 0.0f) {
        std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
      } else if (beta != 1.0f) {
        for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k, k0 + kBlockK);
      for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
        const int64_t n1 = std::min(n, n0 + kBlockN);
        for (int64_t i = m_lo; i < m_hi; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (int64_t p = k0; p < k1; ++p) {
            const float av = alpha * arow[p];
            if (av == 0.0f) continue;
            const float* brow = b + p * n;
            for (int64_t j = n0; j < n1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

// Transpose src[r,c] (row-major) into dst[c,r].
void transpose(const float* src, float* dst, int64_t rows, int64_t cols) {
  constexpr int64_t kTile = 32;
  for (int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const int64_t r1 = std::min(rows, r0 + kTile);
    for (int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const int64_t c1 = std::min(cols, c0 + kTile);
      for (int64_t r = r0; r < r1; ++r)
        for (int64_t c = c0; c < c1; ++c) dst[c * rows + r] = src[r * cols + c];
    }
  }
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c) {
  LS2_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0) return;

  // Normalise to the NN kernel with scratch transposes; correctness first —
  // in this reproduction GEMM throughput on the *host* is not what is being
  // measured (device GEMM time comes from the cost model).
  std::vector<float> at, bt;
  const float* an = a;
  const float* bn = b;
  if (trans_a) {
    at.resize(static_cast<size_t>(m * k));
    transpose(a, at.data(), k, m);  // a is [k,m] when transposed
    an = at.data();
  }
  if (trans_b) {
    bt.resize(static_cast<size_t>(k * n));
    transpose(b, bt.data(), n, k);  // b is [n,k] when transposed
    bn = bt.data();
  }
  sgemm_nn(m, n, k, alpha, an, bn, beta, c);
}

void sgemm_strided_batched(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                           float alpha, const float* a, int64_t stride_a, const float* b,
                           int64_t stride_b, float beta, float* c, int64_t stride_c,
                           int64_t batch) {
  for (int64_t i = 0; i < batch; ++i) {
    sgemm(trans_a, trans_b, m, n, k, alpha, a + i * stride_a, b + i * stride_b, beta,
          c + i * stride_c);
  }
}

void hgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
           const Half* a, const Half* b, float beta, Half* c) {
  const int64_t a_elems = m * k;
  const int64_t b_elems = k * n;
  const int64_t c_elems = m * n;
  std::vector<float> af(static_cast<size_t>(a_elems)), bf(static_cast<size_t>(b_elems)),
      cf(static_cast<size_t>(c_elems));
  convert_half_to_float(a, af.data(), a_elems);
  convert_half_to_float(b, bf.data(), b_elems);
  if (beta != 0.0f) convert_half_to_float(c, cf.data(), c_elems);
  sgemm(trans_a, trans_b, m, n, k, alpha, af.data(), bf.data(), beta, cf.data());
  convert_float_to_half(cf.data(), c, c_elems);
}

void hgemm_strided_batched(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                           float alpha, const Half* a, int64_t stride_a, const Half* b,
                           int64_t stride_b, float beta, Half* c, int64_t stride_c,
                           int64_t batch) {
  for (int64_t i = 0; i < batch; ++i) {
    hgemm(trans_a, trans_b, m, n, k, alpha, a + i * stride_a, b + i * stride_b, beta,
          c + i * stride_c);
  }
}

double gemm_utilization(int64_t m, int64_t n, int64_t k, int64_t batch) {
  // Saturating occupancy model: each dimension must be large enough to fill
  // tensor-core tiles and SMs; batching multiplies the independent work.
  const double mp = static_cast<double>(m) * static_cast<double>(std::max<int64_t>(batch, 1));
  const double fm = mp / (mp + 96.0);
  const double fn = static_cast<double>(n) / (static_cast<double>(n) + 96.0);
  const double fk = static_cast<double>(k) / (static_cast<double>(k) + 48.0);
  const double eff = 1.45 * fm * fn * fk;
  return std::clamp(eff, 0.05, 0.95);
}

}  // namespace ls2::gemm
