// Host GEMM — the stand-in for cuBLAS.
//
// The paper deliberately does *not* rewrite GEMM ("we focus on fusing
// non-GEMM kernels and directly use the GEMM implementations from cuBLAS").
// Accordingly every system in this reproduction — LightSeq2 and all
// baselines — calls these same routines, so GEMM time is common-mode in all
// comparisons, exactly as on real hardware.
//
// All matrices are row-major. C = alpha * op(A) @ op(B) + beta * C.
#pragma once

#include <cstdint>

#include "tensor/half.h"

namespace ls2::gemm {

/// FP32 GEMM, cache-blocked and thread-parallel.
void sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
           const float* a, const float* b, float beta, float* c);

/// Strided batched FP32 GEMM (cublasSgemmStridedBatched analogue).
void sgemm_strided_batched(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                           float alpha, const float* a, int64_t stride_a, const float* b,
                           int64_t stride_b, float beta, float* c, int64_t stride_c,
                           int64_t batch);

/// FP16-storage GEMM with FP32 accumulation (tensor-core discipline).
void hgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
           const Half* a, const Half* b, float beta, Half* c);

void hgemm_strided_batched(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                           float alpha, const Half* a, int64_t stride_a, const Half* b,
                           int64_t stride_b, float beta, Half* c, int64_t stride_c,
                           int64_t batch);

/// Shape-dependent achieved fraction of peak GEMM throughput. Small or
/// skinny matrices under-fill the device; batching restores occupancy.
/// Used by the device cost model, clamped to [0.05, 0.95].
double gemm_utilization(int64_t m, int64_t n, int64_t k, int64_t batch = 1);

}  // namespace ls2::gemm
