// Replicated serving fleet (DESIGN.md §11): what replication buys and what
// robustness costs at the router.
//
// Three claims, one JSON (bench/fig_fleet.json, validated by ci.sh):
//
//  [scale]        Throughput and p99 vs replica count. Each replica is an
//    independent ContinuousBatcher on its own simulated device; the router
//    (join-shortest-queue) spreads a Poisson stream across them. Tokens/sec
//    scales with the fleet; p99 falls as queueing pressure drops.
//  [hedge]        Tail rescue under a straggler. One of three replicas runs
//    every kernel 30x slow; join-shortest-queue keeps routing to it (queue
//    length says nothing about speed) and its requests define the p99.
//    Hedged dispatch duplicates any request outstanding past a latency
//    percentile onto a healthy replica and takes the first finisher — p99
//    drops while the median stays put.
//  [availability] Serving THROUGH failure and reload: kill one of three
//    replicas mid-decode (simgpu::FaultInjector device loss) AND roll every
//    survivor through a drain → snapshot-restore → rejoin cycle
//    (core::AsyncCheckpointer params snapshot). Every request is either
//    served or explicitly shed — none lost, availability holds at N-1.
//
// CLI knobs (all optional):
//   --requests N   stream length per section run       (default 48)
//   --rate R       Poisson arrival rate, requests/sec  (default 4000)
//   --replicas N   scale-section sweep cap             (default 4)
//   --seed S       workload seed                       (default 71)
//   --trace PATH   write a merged Chrome trace of the availability run
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "infer/fleet.h"

namespace {

using namespace ls2;
using bench::print_header;

// Big enough that decode EXEC dominates launch overhead — a kernel-spike
// straggler must actually be slow, or there is no tail to measure. Model-only
// mode makes the size free.
models::Gpt2Config fleet_model() {
  models::Gpt2Config cfg;
  cfg.vocab = 512;
  cfg.hidden = 256;
  cfg.heads = 4;
  cfg.ffn_dim = 1024;
  cfg.layers = 6;
  cfg.max_len = 256;
  return cfg;
}

infer::FleetConfig base_config(int replicas, infer::DispatchPolicy policy) {
  infer::FleetConfig fc;
  fc.replicas = replicas;
  fc.policy = policy;
  fc.model = fleet_model();
  fc.slots = 4;
  fc.max_len = 144;
  fc.session.mode = simgpu::ExecMode::kModelOnly;
  fc.session.dtype = DType::kF16;
  return fc;
}

// ---------------------------------------------------------------------------
// JSON rows (heterogeneous per section; each row is self-describing)
// ---------------------------------------------------------------------------

std::vector<std::string> g_rows;

void push_row(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  g_rows.emplace_back(buf);
}

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig_fleet.json");
  out << "{\n  \"figure\": \"fig_fleet\",\n  \"schema\": 1,\n  \"configs\": [";
  for (size_t i = 0; i < g_rows.size(); ++i)
    out << (i == 0 ? "\n    " : ",\n    ") << g_rows[i];
  out << "\n  ]\n}\n";
  std::printf("\nwrote %zu configs to bench/fig_fleet.json\n", g_rows.size());
}

// ---------------------------------------------------------------------------
// Section 1: throughput / p99 vs replica count
// ---------------------------------------------------------------------------

void bench_scale(int64_t n, double rate, int max_replicas, uint64_t seed) {
  print_header("Fleet scaling: JSQ router over N replicas (GPT-2 6L, model-only)");
  const auto reqs = infer::poisson_requests(n, rate, /*prompt*/ 4, 8, /*gen*/ 8, 20,
                                            fleet_model().vocab, seed);
  std::printf("%-9s %12s %10s %10s %10s\n", "replicas", "tokens_s", "p50_ms", "p99_ms",
              "served");
  for (int r = 1; r <= max_replicas; r *= 2) {
    infer::Fleet fleet(base_config(r, infer::DispatchPolicy::kJoinShortestQueue));
    const infer::FleetReport rep = fleet.run(reqs);
    std::printf("%-9d %12.0f %10.2f %10.2f %10lld\n", r, rep.tokens_per_sec,
                rep.p50_latency_us / 1e3, rep.p99_latency_us / 1e3,
                static_cast<long long>(rep.served));
    push_row("{\"section\": \"scale\", \"replicas\": %d, \"requests\": %lld, "
             "\"rate_per_sec\": %.0f, \"tokens_per_sec\": %.1f, "
             "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"served\": %lld, \"lost\": %lld}",
             r, static_cast<long long>(n), rate, rep.tokens_per_sec,
             rep.p50_latency_us / 1e3, rep.p99_latency_us / 1e3,
             static_cast<long long>(rep.served), static_cast<long long>(rep.lost));
  }
  std::printf("\nEach replica is its own device; the router's queue-length signal\n"
              "keeps the decode batches full, so tokens/sec tracks the fleet size.\n");
}

// ---------------------------------------------------------------------------
// Section 2: hedged dispatch vs JSQ under an injected straggler
// ---------------------------------------------------------------------------

void bench_hedge(int64_t n, double rate, uint64_t seed) {
  print_header("Hedged dispatch: tail rescue under a 30x straggler replica");
  const auto reqs = infer::poisson_requests(n, rate, 4, 8, 8, 20,
                                            fleet_model().vocab, seed);
  auto make = [&](infer::DispatchPolicy policy) {
    infer::FleetConfig fc = base_config(3, policy);
    // Floor near the healthy median: only genuinely stuck requests hedge.
    fc.hedge_min_us = 12'000.0;
    fc.fault_plans.resize(3);
    fc.fault_plans[0].kernel_spike_window(0, 2000, /*site=*/"", /*factor=*/30.0);
    return fc;
  };
  infer::Fleet jsq(make(infer::DispatchPolicy::kJoinShortestQueue));
  const infer::FleetReport r_jsq = jsq.run(reqs);
  infer::Fleet hedged(make(infer::DispatchPolicy::kHedged));
  const infer::FleetReport r_hedged = hedged.run(reqs);

  std::printf("%-8s %10s %10s %8s %8s %8s\n", "policy", "p50_ms", "p99_ms", "fired",
              "wins", "served");
  std::printf("%-8s %10.2f %10.2f %8s %8s %8lld\n", "jsq", r_jsq.p50_latency_us / 1e3,
              r_jsq.p99_latency_us / 1e3, "-", "-",
              static_cast<long long>(r_jsq.served));
  std::printf("%-8s %10.2f %10.2f %8lld %8lld %8lld\n", "hedged",
              r_hedged.p50_latency_us / 1e3, r_hedged.p99_latency_us / 1e3,
              static_cast<long long>(r_hedged.hedges_fired),
              static_cast<long long>(r_hedged.hedge_wins),
              static_cast<long long>(r_hedged.served));
  push_row("{\"section\": \"hedge\", \"requests\": %lld, \"rate_per_sec\": %.0f, "
           "\"jsq_p99_ms\": %.3f, \"hedged_p99_ms\": %.3f, "
           "\"jsq_p50_ms\": %.3f, \"hedged_p50_ms\": %.3f, "
           "\"hedges_fired\": %lld, \"hedge_wins\": %lld, \"hedge_cancels\": %lld}",
           static_cast<long long>(n), rate, r_jsq.p99_latency_us / 1e3,
           r_hedged.p99_latency_us / 1e3, r_jsq.p50_latency_us / 1e3,
           r_hedged.p50_latency_us / 1e3,
           static_cast<long long>(r_hedged.hedges_fired),
           static_cast<long long>(r_hedged.hedge_wins),
           static_cast<long long>(r_hedged.hedge_cancels));
  std::printf("\nJSQ keeps feeding the straggler (queue length says nothing about\n"
              "speed); the hedge's duplicate lands on a healthy replica and wins.\n");
}

// ---------------------------------------------------------------------------
// Section 3: availability through a replica death + rolling reload
// ---------------------------------------------------------------------------

void bench_availability(int64_t n, double rate, uint64_t seed,
                        const std::string& trace_path) {
  print_header("Availability: one replica dies mid-decode, the rest roll-reload");
  const auto reqs = infer::poisson_requests(n, rate, 4, 8, 8, 20,
                                            fleet_model().vocab, seed + 1);
  infer::FleetConfig fc = base_config(3, infer::DispatchPolicy::kJoinShortestQueue);
  fc.fault_plans.resize(3);
  // Replica 1 loses its device on its 3rd decode step; a rolling reload of
  // the survivors starts a third of the way into the arrival stream.
  fc.fault_plans[1].add(simgpu::FaultPlan::device_loss(/*step=*/2, /*rank=*/0));
  fc.reload_at_us = reqs[static_cast<size_t>(n / 3)].arrival_us;
  fc.record_timeline = !trace_path.empty();
  infer::Fleet fleet(fc);
  const infer::FleetReport rep = fleet.run(reqs);

  std::printf("%-12s %8s %8s %8s %8s %8s %10s\n", "requests", "served", "shed", "lost",
              "deaths", "reloads", "redisp");
  std::printf("%-12lld %8lld %8lld %8lld %8lld %8lld %10lld\n",
              static_cast<long long>(n), static_cast<long long>(rep.served),
              static_cast<long long>(rep.shed), static_cast<long long>(rep.lost),
              static_cast<long long>(rep.deaths), static_cast<long long>(rep.reloads),
              static_cast<long long>(rep.redispatches));
  push_row("{\"section\": \"availability\", \"requests\": %lld, \"served\": %lld, "
           "\"shed\": %lld, \"lost\": %lld, \"deaths\": %lld, \"reloads\": %lld, "
           "\"redispatches\": %lld, \"p99_ms\": %.3f}",
           static_cast<long long>(n), static_cast<long long>(rep.served),
           static_cast<long long>(rep.shed), static_cast<long long>(rep.lost),
           static_cast<long long>(rep.deaths), static_cast<long long>(rep.reloads),
           static_cast<long long>(rep.redispatches), rep.p99_latency_us / 1e3);
  if (!trace_path.empty()) {
    fleet.write_chrome_trace(trace_path);
    std::printf("wrote merged fleet trace to %s\n", trace_path.c_str());
  }
  std::printf("\nEvacuated requests re-dispatch with their ORIGINAL arrival time, so\n"
              "the p99 above is honest; served + shed == requests means none lost.\n");
}

static int bench_body(int argc, char** argv) {
  int64_t n = 48;
  double rate = 4000.0;
  int max_replicas = 4;
  uint64_t seed = 71;
  std::string trace_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* flag = argv[i];
    const char* val = argv[i + 1];
    if (std::strcmp(flag, "--requests") == 0) n = std::atoll(val);
    else if (std::strcmp(flag, "--rate") == 0) rate = std::atof(val);
    else if (std::strcmp(flag, "--replicas") == 0) max_replicas = std::atoi(val);
    else if (std::strcmp(flag, "--seed") == 0) seed = static_cast<uint64_t>(std::atoll(val));
    else if (std::strcmp(flag, "--trace") == 0) trace_path = val;
  }

  bench_scale(n, rate, max_replicas, seed);
  bench_hedge(n, rate, seed);
  bench_availability(n, rate, seed, trace_path);
  write_json();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return ls2::bench::guarded_main("fig_fleet", [&] { return bench_body(argc, argv); });
}
