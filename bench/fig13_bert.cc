// Fig. 13: BERT-Base / BERT-Large on MRPC-style classification, 8x V100 —
// samples/sec speedup vs Hugging Face (native PyTorch kernels) and
// DeepSpeed (fused encoder, x16 padding, baseline embedding/criterion).
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

double measure_bert(System system, const models::BertConfig& cfg, int64_t batch,
                    int64_t seq_len) {
  SessionConfig sc;
  sc.system = system;
  sc.profile = simgpu::v100();
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  Session session(sc);
  models::Bert model(cfg, system, DType::kF16, 23, session.param_alloc());
  optim::OptimConfig ocfg;
  auto trainer = optim::make_trainer(system, model.params(), ocfg, session.param_alloc());
  // MRPC sentences average ~50 tokens; DeepSpeed must pad to a multiple of
  // 16 (Table I), so it runs a longer padded sequence for the same data.
  const int64_t padded = layers::pad_length(layers::policy_for(system), seq_len);
  data::ClsDataset ds(cfg.vocab, 512, padded, 23);
  auto b = ds.batch(0, batch, padded);
  const dist::ClusterConfig cluster{8, 1};
  (void)core::train_step(session, model, b, *trainer, cluster);
  const double t0 = session.device().clock_us();
  (void)core::train_step(session, model, b, *trainer, cluster);
  const double step_us = session.device().clock_us() - t0;
  return static_cast<double>(batch) * cluster.total_gpus() / (step_us * 1e-6);
}

void run_panel(const char* name, const models::BertConfig& cfg) {
  const int64_t batch = 32, seq_len = 50;
  const double hf = measure_bert(System::kFairseq, cfg, batch, seq_len);
  const double dsp = measure_bert(System::kDeepSpeed, cfg, batch, seq_len);
  const double ls2 = measure_bert(System::kLightSeq2, cfg, batch, seq_len);
  std::printf("%-12s %16.1f %16.1f %16.1f %12.2fx %12.2fx\n", name, hf, dsp, ls2, dsp / hf,
              ls2 / hf);
}

}  // namespace

static int bench_body() {
  print_header("Fig. 13: BERT on MRPC-style task, 8x V100 (samples/sec, speedup vs HF)");
  std::printf("%-12s %16s %16s %16s %12s %12s\n", "model", "HuggingFace", "DeepSpeed",
              "LightSeq2", "DS/HF", "LS2/HF");
  run_panel("BERT-Base", models::BertConfig::base());
  run_panel("BERT-Large", models::BertConfig::large());
  std::printf("\nPaper reference: LightSeq2 1.44x (Base) / 1.28x (Large) over DeepSpeed,\n"
              "both well above Hugging Face; gains come from the encoder kernels plus\n"
              "the embedding/criterion/trainer DeepSpeed does not optimise.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig13_bert", bench_body); }
