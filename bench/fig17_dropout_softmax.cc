// Fig. 17: (a) standalone Dropout speedup vs element count 0.1M..100M;
// (b) attention Softmax speedup across the paper's (batch, sequence length)
// grid (batch*len ~ 8192 tokens). All vs PyTorch on V100.
#include "bench_common.h"
#include "kernels/softmax.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

double dropout_time_us(kern::Impl impl, int64_t n, simgpu::Device& dev,
                       BufferAllocator* alloc) {
  kern::KernelContext kc(dev, alloc, 0);
  Tensor x = Tensor::empty({n}, DType::kF16, alloc);
  Tensor y = Tensor::empty({n}, DType::kF16, alloc);
  Tensor m = Tensor::empty({n}, DType::kU8, alloc);
  const double t0 = dev.clock_us();
  kern::dropout_fw(kc, impl, x, y, m, 0.1f, 1);
  return dev.clock_us() - t0;
}

double softmax_time_us(kern::Impl impl, int64_t batch, int64_t len, simgpu::Device& dev,
                       BufferAllocator* alloc) {
  kern::KernelContext kc(dev, alloc, 0);
  const int64_t heads = 16;
  Tensor x = Tensor::empty({batch, heads, len, len}, DType::kF16, alloc);
  Tensor y = Tensor::empty({batch, heads, len, len}, DType::kF16, alloc);
  kern::attn_softmax_fw(kc, impl, x, y, /*causal=*/false, nullptr);  // warm-up
  const double t0 = dev.clock_us();
  for (int i = 0; i < 3; ++i) {
    kern::attn_softmax_fw(kc, impl, x, y, /*causal=*/false, nullptr);
  }
  return (dev.clock_us() - t0) / 3.0;
}

}  // namespace

static int bench_body() {
  simgpu::Device dev(simgpu::v100(), simgpu::ExecMode::kModelOnly);
  mem::CachingAllocator alloc(dev, mem::DeviceAllocator::Backing::kVirtual);

  print_header("Fig. 17(a): Dropout — speedup over PyTorch vs element count, V100");
  std::printf("%-12s %10s %10s %10s %10s\n", "elements(M)", "PyTorch", "TF", "DeepSpeed",
              "LightSeq2");
  for (double m : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    const int64_t n = static_cast<int64_t>(m * 1e6);
    const double torch_t = dropout_time_us(kern::Impl::kTorch, n, dev, &alloc);
    std::printf("%-12.1f %10.2f %9.2fx %9.2fx %9.2fx\n", m, 1.0,
                torch_t / dropout_time_us(kern::Impl::kTensorFlow, n, dev, &alloc),
                torch_t / dropout_time_us(kern::Impl::kDeepSpeed, n, dev, &alloc),
                torch_t / dropout_time_us(kern::Impl::kLS2, n, dev, &alloc));
  }

  print_header("Fig. 17(b): attention Softmax — speedup over PyTorch, V100");
  std::printf("%-16s %10s %10s %10s %10s\n", "(batch,len)", "PyTorch", "TF", "DeepSpeed",
              "LightSeq2");
  const std::pair<int64_t, int64_t> grid[] = {{256, 32}, {128, 64}, {85, 96},  {68, 128},
                                              {64, 160}, {45, 192}, {42, 224}, {32, 256},
                                              {28, 288}, {25, 320}};
  for (auto [batch, len] : grid) {
    const double torch_t = softmax_time_us(kern::Impl::kTorch, batch, len, dev, &alloc);
    std::printf("(%3lld,%3lld)%7s %10.2f %9.2fx %9.2fx %9.2fx\n",
                static_cast<long long>(batch), static_cast<long long>(len), "", 1.0,
                torch_t / softmax_time_us(kern::Impl::kTensorFlow, batch, len, dev, &alloc),
                torch_t / softmax_time_us(kern::Impl::kDeepSpeed, batch, len, dev, &alloc),
                torch_t / softmax_time_us(kern::Impl::kLS2, batch, len, dev, &alloc));
  }
  std::printf("\nPaper reference: Dropout 1.2-1.5x for LightSeq2 with DeepSpeed falling\n"
              "below PyTorch past ~5M elements; Softmax speedup GROWS with sequence\n"
              "length (shape-tuned templates), up to ~3.5x.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig17_dropout_softmax", bench_body); }
