// Fault tolerance costs (DESIGN.md §10): what robustness charges the
// timeline.
//
// Three claims, one JSON (bench/fig_fault.json, validated by ci.sh):
//
//  [checkpoint] Asynchronous checkpointing is cheap at production cadence.
//    The step blocks only on the D2D staging pass; the host drain rides the
//    comm stream. At the paper-scale cadence the run-time overhead vs a
//    checkpoint-free run must stay under 5%.
//  [recovery]   Time-to-recover vs failure rate, for BOTH policies. A seeded
//    random device-loss schedule (FaultPlan::random_device_loss) sweeps the
//    MTBF knob; rollback-replay pays respawn + replay-from-checkpoint,
//    elastic shrink re-forms the DP ring over the survivors immediately.
//  [serve]      Graceful degradation under a burst: admission timeouts +
//    queue-bound shedding hold p99 for the requests actually served.
//
// Fault-plan CLI knobs (all optional):
//   --checkpoint-every N        paper-cadence row of the checkpoint sweep
//   --failure-rate R            single-rate recovery sweep instead of the default
//   --collective-timeout-us T   detection timeout for the recovery runs
//   --steps N                   recovery-run length in steps
//   --seed S                    fault-schedule seed
#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/checkpoint.h"
#include "core/fault_tolerant.h"
#include "infer/batcher.h"
#include "simgpu/fault.h"

namespace {

using namespace ls2;
using bench::print_header;
using core::Session;
using core::SessionConfig;
using layers::System;
using simgpu::FaultPlan;

// GPT-2-flavoured training model, big enough that the checkpoint staging
// copy is a visible fraction of an every-step cadence.
models::Gpt2Config train_model() {
  models::Gpt2Config cfg;
  cfg.vocab = 4096;
  cfg.hidden = 256;
  cfg.heads = 8;
  cfg.ffn_dim = 1024;
  cfg.layers = 6;
  cfg.max_len = 128;
  return cfg;
}

/// Training world per the run_fault_tolerant contract (session first,
/// deterministic init from a fixed seed).
struct World {
  core::Session session;
  models::Gpt2 model;
  std::unique_ptr<optim::Optimizer> trainer;
  World(const SessionConfig& sc, const models::Gpt2Config& mc)
      : session(sc),
        model(mc, System::kLightSeq2, sc.dtype, /*seed=*/23, session.param_alloc()),
        trainer(std::make_unique<optim::LightSeq2Trainer>(model.params(),
                                                          optim::OptimConfig{})) {}
};

struct FtRun {
  core::FtReport report;
};

FtRun run_ft(const core::FtConfig& fc, FaultPlan plan, int64_t checkpoint_every,
             double collective_timeout_us) {
  const models::Gpt2Config mc = train_model();
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.profile = simgpu::profile_by_name("a100");
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.checkpoint_every = checkpoint_every;
  sc.collective_timeout_us = collective_timeout_us;

  data::LmDataset ds(mc.vocab, 4096, 47);
  const models::LmBatch batch = ds.batch(0, /*rows=*/4, /*len=*/48);
  auto [report, world] = core::run_fault_tolerant(
      fc, std::move(plan),
      [&](const dist::ClusterConfig&) { return std::make_unique<World>(sc, mc); },
      [&](int64_t) -> const models::LmBatch& { return batch; });
  (void)world;
  return FtRun{std::move(report)};
}

// ---------------------------------------------------------------------------
// JSON rows (heterogeneous per section; each row is self-describing)
// ---------------------------------------------------------------------------

std::vector<std::string> g_rows;

void push_row(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  g_rows.emplace_back(buf);
}

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig_fault.json");
  out << "{\n  \"figure\": \"fig_fault\",\n  \"schema\": 1,\n  \"configs\": [";
  for (size_t i = 0; i < g_rows.size(); ++i)
    out << (i == 0 ? "\n    " : ",\n    ") << g_rows[i];
  out << "\n  ]\n}\n";
  std::printf("\nwrote %zu configs to bench/fig_fault.json\n", g_rows.size());
}

// ---------------------------------------------------------------------------
// Section 1: async-checkpoint overhead vs cadence
// ---------------------------------------------------------------------------

void bench_checkpoint_overhead(int64_t paper_every) {
  print_header("Async checkpoint overhead vs cadence (GPT-2 6L, DP=2, model-only sim)");
  std::printf("%-12s %10s %12s %14s %10s %12s\n", "every", "steps", "step_us",
              "stage_us", "snaps", "overhead");

  const int64_t steps = 100;
  core::FtConfig fc;
  fc.cluster.gpus_per_node = 2;
  fc.cluster.nodes = 1;
  fc.steps = steps;

  double base_total = 0;
  for (int64_t every : std::vector<int64_t>{0, 1, 10, paper_every}) {
    const FtRun run = run_ft(fc, FaultPlan{}, every, /*timeout_us=*/5000.0);
    const core::FtReport& r = run.report;
    if (every == 0) base_total = r.total_us;
    const double overhead = base_total > 0 ? (r.total_us - base_total) / base_total : 0;
    std::printf("%-12lld %10lld %12.1f %14.1f %10lld %11.2f%%\n",
                static_cast<long long>(every), static_cast<long long>(steps),
                r.total_us / steps, r.checkpoint_stage_us,
                static_cast<long long>(r.snapshots), overhead * 100.0);
    push_row("{\"section\": \"checkpoint\", \"every\": %lld, \"steps\": %lld, "
             "\"step_us\": %.3f, \"total_us\": %.1f, \"checkpoint_stage_us\": %.1f, "
             "\"snapshots\": %lld, \"snapshot_mb\": %.2f, \"overhead_frac\": %.5f}",
             static_cast<long long>(every), static_cast<long long>(steps),
             r.total_us / steps, r.total_us, r.checkpoint_stage_us,
             static_cast<long long>(r.snapshots),
             static_cast<double>(r.snapshot_bytes) / (1024.0 * 1024.0), overhead);
  }
  std::printf("\nThe step blocks only on the D2D staging pass; the PCIe drain rides\n"
              "the comm stream. At the paper cadence (every %lld) the overhead must\n"
              "stay under 5%% — ci/check_bench_json.py enforces it.\n",
              static_cast<long long>(paper_every));
}

// ---------------------------------------------------------------------------
// Section 2: time-to-recover vs failure rate, both policies
// ---------------------------------------------------------------------------

void bench_recovery(const std::vector<double>& rates, int64_t steps,
                    double timeout_us, double respawn_us, uint64_t seed) {
  print_header("Time-to-recover vs failure rate (DP=4, checkpoint every 5)");
  std::printf("%-10s %-8s %10s %10s %14s %14s %8s\n", "policy", "rate", "failures",
              "steps", "mean_rec_ms", "max_rec_ms", "dp");

  for (const core::RecoveryPolicy policy :
       {core::RecoveryPolicy::kRollbackReplay, core::RecoveryPolicy::kElasticShrink}) {
    for (double rate : rates) {
      core::FtConfig fc;
      fc.cluster.gpus_per_node = 4;
      fc.cluster.nodes = 1;
      fc.policy = policy;
      fc.steps = steps;
      fc.respawn_delay_us = respawn_us;
      fc.max_failures = 64;
      const FaultPlan plan =
          FaultPlan::random_device_loss(seed, rate, steps, /*ranks=*/4);
      const FtRun run = run_ft(fc, plan, /*checkpoint_every=*/5, timeout_us);
      const core::FtReport& r = run.report;
      double mean_rec = 0, max_rec = 0;
      for (const core::FtFailure& ev : r.events) {
        mean_rec += ev.recover_us;
        max_rec = std::max(max_rec, ev.recover_us);
      }
      if (!r.events.empty()) mean_rec /= static_cast<double>(r.events.size());
      std::printf("%-10s %-8.3f %10d %10lld %14.2f %14.2f %8d\n",
                  core::recovery_policy_name(policy), rate, r.failures,
                  static_cast<long long>(r.steps_completed), mean_rec / 1e3,
                  max_rec / 1e3, r.final_cluster.dp_size());
      push_row("{\"section\": \"recovery\", \"policy\": \"%s\", \"failure_rate\": %.4f, "
               "\"steps\": %lld, \"failures\": %d, \"steps_completed\": %lld, "
               "\"mean_recover_us\": %.1f, \"max_recover_us\": %.1f, "
               "\"total_us\": %.1f, \"dp_size\": %d, \"dp_lost\": %d}",
               core::recovery_policy_name(policy), rate,
               static_cast<long long>(steps), r.failures,
               static_cast<long long>(r.steps_completed), mean_rec, max_rec,
               r.total_us, r.final_cluster.dp_size(), r.final_cluster.dp_lost);
    }
  }
  std::printf("\nSame seeded failure schedule for both policies: rollback pays respawn\n"
              "(%.0f ms) + replay; elastic re-forms the ring over the survivors and\n"
              "skips the wait — availability bought with DP width.\n", respawn_us / 1e3);
}

// ---------------------------------------------------------------------------
// Section 3: serving burst — load shedding bounds p99
// ---------------------------------------------------------------------------

models::Gpt2Config serve_model() {
  models::Gpt2Config cfg;
  cfg.vocab = 512;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.ffn_dim = 128;
  cfg.layers = 4;
  cfg.max_len = 256;
  return cfg;
}

infer::ServeReport run_burst(const std::vector<infer::Request>& reqs,
                             const infer::ServeConfig& degrade) {
  const models::Gpt2Config cfg = serve_model();
  const int64_t slots = 4, max_len = 144;
  bench::ServeHarness h =
      bench::make_serve_harness(cfg, simgpu::profile_by_name("a100"), slots, max_len,
                                infer::BatchMode::kContinuous, /*graph=*/false);
  infer::ServeConfig scfg = degrade;
  scfg.mode = infer::BatchMode::kContinuous;
  h.engine = std::make_unique<infer::ContinuousBatcher>(*h.session, *h.model, *h.cache,
                                                        scfg);
  return h.serve(reqs);
}

void bench_serve_burst() {
  print_header("Serving burst: load shedding bounds p99 (GPT-2 tiny, 4 slots)");
  const int64_t n = 64;
  const double rate = 20'000.0;
  const auto reqs = infer::poisson_requests(n, rate, /*prompt*/ 8, 24, /*gen*/ 16, 48,
                                            serve_model().vocab, 29);

  const infer::ServeReport open = run_burst(reqs, infer::ServeConfig{});
  infer::ServeConfig degrade;
  degrade.admission_timeout_us = open.p50_latency_us;
  degrade.max_queue = 6;
  const infer::ServeReport shed = run_burst(reqs, degrade);

  std::printf("%-10s %10s %10s %10s %10s\n", "mode", "served", "shed", "p50_ms",
              "p99_ms");
  std::printf("%-10s %10lld %10lld %10.2f %10.2f\n", "open",
              static_cast<long long>(open.served),
              static_cast<long long>(open.shed_requests), open.p50_latency_us / 1e3,
              open.p99_latency_us / 1e3);
  std::printf("%-10s %10lld %10lld %10.2f %10.2f\n", "degraded",
              static_cast<long long>(shed.served),
              static_cast<long long>(shed.shed_requests), shed.p50_latency_us / 1e3,
              shed.p99_latency_us / 1e3);
  push_row("{\"section\": \"serve\", \"requests\": %lld, \"rate_per_sec\": %.0f, "
           "\"open_p99_ms\": %.3f, \"degraded_p99_ms\": %.3f, "
           "\"shed_requests\": %lld, \"served\": %lld, \"deadline_retired\": %lld}",
           static_cast<long long>(n), rate, open.p99_latency_us / 1e3,
           shed.p99_latency_us / 1e3, static_cast<long long>(shed.shed_requests),
           static_cast<long long>(shed.served),
           static_cast<long long>(shed.deadline_retired));
  std::printf("\nAdmission timeout + queue bound trade errors for tail latency: the\n"
              "requests actually served keep a bounded p99 through the burst.\n");
}

static int bench_body(int argc, char** argv) {
  int64_t paper_every = 100;
  std::vector<double> rates = {0.05, 0.15};
  int64_t steps = 30;
  double timeout_us = 5000.0;
  double respawn_us = 50'000.0;
  uint64_t seed = 2022ull;
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* flag = argv[i];
    const char* val = argv[i + 1];
    if (std::strcmp(flag, "--checkpoint-every") == 0) paper_every = std::atoll(val);
    else if (std::strcmp(flag, "--failure-rate") == 0) rates = {std::atof(val)};
    else if (std::strcmp(flag, "--collective-timeout-us") == 0) timeout_us = std::atof(val);
    else if (std::strcmp(flag, "--steps") == 0) steps = std::atoll(val);
    else if (std::strcmp(flag, "--respawn-delay-us") == 0) respawn_us = std::atof(val);
    else if (std::strcmp(flag, "--seed") == 0) seed = static_cast<uint64_t>(std::atoll(val));
  }

  bench_checkpoint_overhead(paper_every);
  bench_recovery(rates, steps, timeout_us, respawn_us, seed);
  bench_serve_burst();
  write_json();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return ls2::bench::guarded_main("fig_fault", [&] { return bench_body(argc, argv); });
}
