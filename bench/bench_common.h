// Shared harness for the paper-figure benchmarks.
//
// Every figure bench sweeps system × workload in ExecMode::kModelOnly (the
// analytical device clock; numerics are validated separately by the test
// suite) and prints the same rows/series the paper reports. Throughput is
// words-per-second (Fairseq comparisons) or samples-per-second (Hugging Face
// comparisons), computed from the simulated device time of a steady-state
// step.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/lightseq2.h"

namespace ls2::bench {

using core::Session;
using core::SessionConfig;
using core::StepTimes;
using layers::System;

struct MtPerf {
  double words_per_sec = 0;
  double step_us = 0;
  StepTimes stages;
  bool oom = false;
  double utilization = 0;
  int64_t peak_memory = 0;
};

/// Steady-state machine-translation training step for `system` at the given
/// batch-token budget. One warm-up step (allocator population), then the
/// measured step. `cluster` scales throughput by world size and adds the
/// ring-all-reduce stage.
inline MtPerf measure_mt(System system, const models::TransformerConfig& cfg,
                         const simgpu::DeviceProfile& profile, int64_t batch_tokens,
                         dist::ClusterConfig cluster = {1, 1}, uint64_t seed = 17) {
  MtPerf perf;
  try {
    SessionConfig sc;
    sc.system = system;
    sc.profile = profile;
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    sc.seed = seed;
    Session session(sc);

    models::Transformer model(cfg, system, DType::kF16, seed, session.param_alloc());
    optim::OptimConfig ocfg;
    auto trainer = optim::make_trainer(system, model.params(), ocfg, session.param_alloc());

    const int seq_multiple = layers::policy_for(system).seq_multiple;
    data::MtDataset ds(cfg.vocab, /*size=*/192, /*min_len=*/8,
                       /*max_len=*/std::min<int64_t>(cfg.max_len - 2, 72), seed);
    auto batches = data::make_mt_batches(ds, batch_tokens, DType::kF16, seq_multiple);
    const models::MtBatch& batch = data::largest_batch(batches);

    (void)core::train_step(session, model, batch, *trainer, cluster);  // warm-up
    const double t0 = session.device().clock_us();
    auto [times, res] = core::train_step(session, model, batch, *trainer, cluster);
    perf.step_us = session.device().clock_us() - t0;
    perf.stages = times;
    perf.words_per_sec = static_cast<double>(batch.tokens) * cluster.total_gpus() /
                         (perf.step_us * 1e-6);
    perf.utilization = session.device().utilization();
    perf.peak_memory = session.permanent_bytes() + session.activations().peak_bytes();
  } catch (const mem::OutOfMemory&) {
    perf.oom = true;
  }
  return perf;
}

/// Arena sizing for arena-backed LightSeq2 Transformer runs: the shared
/// core::capacity_scan probe (§IV-D) over an FP16 model of `cfg`.
inline size_t capacity_scan(const models::TransformerConfig& cfg,
                            const models::MtBatch& batch, uint64_t seed = 17) {
  core::CapacityScanOptions opt;
  opt.seed = seed;
  return core::capacity_scan(
      [&](BufferAllocator* alloc) {
        return std::make_unique<models::Transformer>(cfg, System::kLightSeq2,
                                                     DType::kF16, seed, alloc);
      },
      batch, opt);
}

/// Serving harness: the session + model + KV cache + engine bundle every
/// serving measurement needs, arena-sized by infer::serve_capacity_scan —
/// one shared setup instead of per-bench copies, so a config tweak (or a
/// fixed latent bug) lands everywhere at once. Each call builds a FULLY
/// ISOLATED bundle: nothing is shared between two harnesses except the
/// process-wide softmax-tuner cache, which is keyed by device identity.
struct ServeHarness {
  std::unique_ptr<Session> session;
  std::unique_ptr<models::Gpt2> model;
  std::unique_ptr<infer::KvCache> cache;
  std::unique_ptr<infer::ContinuousBatcher> engine;

  infer::ServeReport serve(const std::vector<infer::Request>& reqs) {
    return engine->serve(reqs);
  }
  bool poisoned() const { return session->graph_poisoned(); }
};

/// Paged-cache overrides for make_serve_harness. Defaults reproduce the
/// model's own kv_cache_config: 16-token pages, a pool sized for every lane
/// at full length (no oversubscription), no sharing.
struct PagedKnobs {
  int64_t page_tokens = 0;  ///< 0 = model default; pass max_len for the
                            ///< degenerate one-page-per-sequence layout
  int64_t total_pages = 0;  ///< 0 = slots x pages_per_seq (never preempts)
  bool prefix_sharing = false;
};

inline ServeHarness make_serve_harness(const models::Gpt2Config& cfg,
                                       const simgpu::DeviceProfile& profile,
                                       int64_t slots, int64_t max_len,
                                       infer::BatchMode mode, bool graph,
                                       bool record_timeline = false,
                                       int64_t max_prompt_len = 32,
                                       DType dtype = DType::kF16, uint64_t seed = 17,
                                       PagedKnobs paged = {}) {
  ServeHarness h;
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.profile = profile;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = dtype;
  sc.arena_bytes = infer::serve_capacity_scan(cfg, dtype, slots, max_len, max_prompt_len);
  sc.graph_capture = graph;
  sc.record_timeline = record_timeline;
  h.session = std::make_unique<Session>(sc);
  h.model = std::make_unique<models::Gpt2>(cfg, System::kLightSeq2, dtype, seed,
                                           h.session->param_alloc());
  infer::KvCacheConfig kcfg = h.model->kv_cache_config(slots, max_len);
  if (paged.page_tokens > 0)
    kcfg.page_tokens = std::min(paged.page_tokens, kcfg.seq_tokens);
  if (paged.total_pages > 0) kcfg.total_pages = paged.total_pages;
  kcfg.prefix_sharing = paged.prefix_sharing;
  h.cache = std::make_unique<infer::KvCache>(kcfg, h.session->param_alloc());
  infer::ServeConfig scfg;
  scfg.mode = mode;
  h.engine = std::make_unique<infer::ContinuousBatcher>(*h.session, *h.model, *h.cache,
                                                        scfg);
  return h;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* fmt_speedup(double base, double value, char* buf, size_t n) {
  std::snprintf(buf, n, "%.2fx", value / base);
  return buf;
}

/// "6e6d"-style label.
inline std::string model_label(const models::TransformerConfig& cfg) {
  return std::to_string(cfg.encoder_layers) + "e" + std::to_string(cfg.decoder_layers) + "d";
}

/// Run a bench body under a failure boundary: ls2::Error (checks, arena
/// overflow, capture poison, injected faults that escape recovery) becomes a
/// clear one-line message on stderr and a nonzero exit instead of a raw
/// terminate/abort — CI distinguishes "bench found a bug" from "bench
/// crashed" by the message.
template <typename Body>
int guarded_main(const char* name, Body&& body) {
  try {
    return std::forward<Body>(body)();
  } catch (const ls2::Error& e) {
    std::fprintf(stderr, "%s: FAILED: %s\n", name, e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: FAILED (unexpected %s)\n", name, e.what());
    return 1;
  }
}

}  // namespace ls2::bench
