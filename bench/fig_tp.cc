// Tensor parallelism (DESIGN.md §7): TP in {1, 2, 4} across the model zoo
// on one 4-GPU A100 node (hybrid with DP = 4/TP data-parallel replicas).
//
// Reported per configuration:
//   * per-step time and the TP collective time (total / exposed) — the cost
//     of intra-layer sharding: one NVLink all-reduce per attention/FFN
//     sublayer in forward and backward, plus the embedding all-reduce and
//     the vocab-sharded criterion's gather;
//   * per-device memory: rank-0 parameters+grads (permanent) and the
//     activation peak — both shrink ~1/TP for the sharded portions.
//
// The capacity section is the headline: Transformer-Big's activation arena
// sized by the TP=4 capacity scan trains at TP=4 but OVERFLOWS when the
// unsharded model is run against it — intra-layer model parallelism is the
// axis that lets a model (or batch) too big for one device train at all.
//
// Machine-readable output: bench/fig_tp.json (schema-checked by
// ci/check_bench_json.py in CI).
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

dist::ClusterConfig hybrid_cluster(int tp) {
  dist::ClusterConfig c;
  c.gpus_per_node = 4;
  c.nodes = 1;
  c.tensor_parallel = tp;
  return c;
}

struct TpPerf {
  std::string model;
  int tp = 1, dp = 1;
  double step_us = 0;
  double tp_comm_us = 0, tp_exposed_us = 0;
  int64_t tp_bytes = 0;
  int64_t params_bytes = 0, act_peak_bytes = 0;
  int64_t max_live() const { return params_bytes + act_peak_bytes; }
};

/// Two steps of train_step (warm-up + measured) for a TP-sharded model in
/// kModelOnly. `make_model` receives (TpConfig, param_alloc); peers are
/// never simulated here — rank 0's shards are the honest device footprint.
template <typename MakeModel, typename Batch>
TpPerf measure_tp(const std::string& name, MakeModel make_model, const Batch& batch,
                  int tp) {
  // The sweep runs on the dynamic (heap-backed) allocator, so an OOM is
  // impossible here; if a config ever grows one, let it abort the bench
  // loudly rather than emit an all-zero row that fails the schema check
  // with a misleading message. (The capacity section below handles
  // OutOfMemory deliberately — there it IS the result.)
  TpPerf perf;
  perf.model = name;
  perf.tp = tp;
  perf.dp = 4 / tp;
  {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.profile = simgpu::a100();
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    sc.seed = 17;
    Session session(sc);
    dist::ProcessGroup pg(hybrid_cluster(tp));
    if (tp > 1) session.ctx().tp_group = &pg;

    dist::TpConfig tp_cfg;
    tp_cfg.size = tp;
    tp_cfg.simulate_peers = false;
    auto model = make_model(tp_cfg, session.param_alloc());
    optim::OptimConfig ocfg;
    auto trainer = optim::make_trainer(System::kLightSeq2, model->params(), ocfg,
                                       session.param_alloc());

    (void)core::train_step(session, *model, batch, *trainer, hybrid_cluster(tp));
    const double t0 = session.device().clock_us();
    auto [times, res] = core::train_step(session, *model, batch, *trainer,
                                         hybrid_cluster(tp));
    perf.step_us = session.device().clock_us() - t0;
    perf.tp_comm_us = times.tp_comm_us;
    perf.tp_exposed_us = times.tp_exposed_us;
    perf.tp_bytes = times.tp_bytes;
    perf.params_bytes = session.permanent_bytes();
    perf.act_peak_bytes = session.activations().peak_bytes();
  }
  return perf;
}

std::vector<TpPerf> g_rows;

struct CapacityDemo {
  size_t arena_bytes = 0;
  size_t tp1_need_bytes = 0;
  bool tp4_fits = false;
  bool tp1_overflows = false;
} g_capacity;

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig_tp.json");
  out << "{\n  \"figure\": \"fig_tp\",\n  \"schema\": 1,\n  \"configs\": [";
  char buf[512];
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const TpPerf& r = g_rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"model\": \"%s\", \"profile\": \"a100\", \"tp\": %d, \"dp\": %d, "
        "\"step_us\": %.1f, \"tp_comm_us\": %.1f, \"tp_exposed_us\": %.1f, "
        "\"tp_mb\": %.1f, \"params_mb\": %.1f, \"act_peak_mb\": %.1f, "
        "\"max_live_mb\": %.1f}",
        i == 0 ? "" : ",", r.model.c_str(), r.tp, r.dp, r.step_us, r.tp_comm_us,
        r.tp_exposed_us, r.tp_bytes / 1e6, r.params_bytes / 1e6, r.act_peak_bytes / 1e6,
        r.max_live() / 1e6);
    out << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "\n  ],\n  \"capacity\": {\"model\": \"transformer-big\", "
                "\"arena_mb\": %.1f, \"tp1_need_mb\": %.1f, \"tp4_fits\": %s, "
                "\"tp1_overflows\": %s}\n}\n",
                g_capacity.arena_bytes / 1e6, g_capacity.tp1_need_bytes / 1e6,
                g_capacity.tp4_fits ? "true" : "false",
                g_capacity.tp1_overflows ? "true" : "false");
  out << buf;
  std::printf("\nwrote %zu configs to bench/fig_tp.json\n", g_rows.size());
}

}  // namespace

static int bench_body() {
  const int64_t mt_tokens = 8192;

  print_header(
      "Tensor parallelism: TP x {1,2,4} on one 4-GPU A100 node (hybrid DP=4/TP, FP16)");
  std::printf("%-17s %3s %3s %12s %12s %12s %10s %10s %10s\n", "model", "tp", "dp",
              "step_us", "tp_comm_us", "tp_exposed", "params_MB", "act_MB", "live_MB");

  auto report = [&](const TpPerf& p) {
    g_rows.push_back(p);
    std::printf("%-17s %3d %3d %12.0f %12.0f %12.0f %10.1f %10.1f %10.1f\n",
                p.model.c_str(), p.tp, p.dp, p.step_us, p.tp_comm_us, p.tp_exposed_us,
                p.params_bytes / 1e6, p.act_peak_bytes / 1e6, p.max_live() / 1e6);
  };

  for (const char* which : {"transformer-base", "transformer-big"}) {
    const bool big = std::string(which) == "transformer-big";
    const models::TransformerConfig cfg =
        big ? models::TransformerConfig::big() : models::TransformerConfig::base();
    data::MtDataset ds(cfg.vocab, 192, 8, 70, 17);
    auto batches = data::make_mt_batches(ds, mt_tokens, DType::kF16);
    const models::MtBatch& batch = data::largest_batch(batches);
    for (int tp : {1, 2, 4}) {
      report(measure_tp(which,
                        [&](dist::TpConfig tpc, BufferAllocator* alloc) {
                          models::TransformerConfig c = cfg;
                          c.tp = tpc;
                          return std::make_unique<models::Transformer>(
                              c, System::kLightSeq2, DType::kF16, 17, alloc);
                        },
                        batch, tp));
    }
  }
  {
    models::Gpt2Config cfg = models::Gpt2Config::base();
    cfg.vocab = 50264;  // Megatron-style vocab padding: 50257 -> multiple of 8
    data::LmDataset ds(cfg.vocab, 1 << 18, 17);
    const models::LmBatch batch = ds.batch(0, 8, 512);
    for (int tp : {1, 2, 4}) {
      report(measure_tp("gpt2-base",
                        [&](dist::TpConfig tpc, BufferAllocator* alloc) {
                          models::Gpt2Config c = cfg;
                          c.tp = tpc;
                          return std::make_unique<models::Gpt2>(c, System::kLightSeq2,
                                                                DType::kF16, 17, alloc);
                        },
                        batch, tp));
    }
  }
  {
    models::BertConfig cfg = models::BertConfig::base();
    cfg.vocab = 30528;  // pad 30522 -> multiple of 64
    data::ClsDataset ds(cfg.vocab, 512, 128, 17);
    const models::ClsBatch batch = ds.batch(0, 32, 128);
    for (int tp : {1, 2, 4}) {
      report(measure_tp("bert-base",
                        [&](dist::TpConfig tpc, BufferAllocator* alloc) {
                          models::BertConfig c = cfg;
                          c.tp = tpc;
                          return std::make_unique<models::Bert>(c, System::kLightSeq2,
                                                               DType::kF16, 17, alloc);
                        },
                        batch, tp));
    }
  }
  {
    const models::VitConfig cfg = models::VitConfig::b32();
    data::ImageDataset ds(10, 256, 17);
    const models::ImageBatch batch = ds.batch(0, 32, cfg, DType::kF16);
    for (int tp : {1, 2, 4}) {
      report(measure_tp("vit-b32",
                        [&](dist::TpConfig tpc, BufferAllocator* alloc) {
                          models::VitConfig c = cfg;
                          c.tp = tpc;
                          return std::make_unique<models::Vit>(c, System::kLightSeq2,
                                                              DType::kF16, 17, alloc);
                        },
                        batch, tp));
    }
  }

  std::printf(
      "\nThe TP collectives ride the intra-node NVLink ring; forward all-reduces are\n"
      "fully exposed, backward ones partially hide under the weight-gradient GEMMs.\n"
      "Per-device parameters and activations shrink toward 1/TP for the sharded\n"
      "portions (LN rows, residual streams and the gathered logits stay replicated).\n");

  // --- The capacity headline: Transformer-Big fits at TP=4 where TP=1 OOMs.
  print_header("Capacity: Transformer-Big activation arena sized by the TP=4 scan");
  {
    const models::TransformerConfig cfg = models::TransformerConfig::big();
    data::MtDataset ds(cfg.vocab, 192, 8, 70, 17);
    auto batches = data::make_mt_batches(ds, mt_tokens, DType::kF16);
    const models::MtBatch& batch = data::largest_batch(batches);

    auto probe = [&](int tp) {
      dist::ProcessGroup pg(hybrid_cluster(tp));
      core::CapacityScanOptions opt;
      opt.seed = 17;
      opt.profile = simgpu::a100();
      opt.tp_group = tp > 1 ? &pg : nullptr;
      return core::capacity_scan(
          [&](BufferAllocator* alloc) {
            models::TransformerConfig c = cfg;
            c.tp.size = tp;
            c.tp.simulate_peers = false;
            return std::make_unique<models::Transformer>(c, System::kLightSeq2,
                                                         DType::kF16, 17, alloc);
          },
          batch, opt);
    };
    g_capacity.arena_bytes = probe(4);
    g_capacity.tp1_need_bytes = probe(1);

    auto try_step = [&](int tp) {
      SessionConfig sc;
      sc.system = System::kLightSeq2;
      sc.profile = simgpu::a100();
      sc.mode = simgpu::ExecMode::kModelOnly;
      sc.dtype = DType::kF16;
      sc.arena_bytes = g_capacity.arena_bytes;
      Session session(sc);
      dist::ProcessGroup pg(hybrid_cluster(tp));
      if (tp > 1) session.ctx().tp_group = &pg;
      models::TransformerConfig c = cfg;
      c.tp.size = tp;
      c.tp.simulate_peers = false;
      models::Transformer model(c, System::kLightSeq2, DType::kF16, 17,
                                session.param_alloc());
      optim::OptimConfig ocfg;
      auto trainer = optim::make_trainer(System::kLightSeq2, model.params(), ocfg,
                                         session.param_alloc());
      try {
        (void)core::train_step(session, model, batch, *trainer, hybrid_cluster(tp));
        return true;
      } catch (const mem::OutOfMemory&) {
        return false;
      }
    };
    g_capacity.tp4_fits = try_step(4);
    g_capacity.tp1_overflows = !try_step(1);
    std::printf("arena (TP=4 scan):   %8.1f MB\n", g_capacity.arena_bytes / 1e6);
    std::printf("TP=1 would need:     %8.1f MB\n", g_capacity.tp1_need_bytes / 1e6);
    std::printf("TP=4 in that arena:  %s\n", g_capacity.tp4_fits ? "fits" : "OOM");
    std::printf("TP=1 in that arena:  %s\n",
                g_capacity.tp1_overflows ? "OOM (as it must)" : "fits (?!)");
    LS2_CHECK(g_capacity.tp4_fits && g_capacity.tp1_overflows)
        << "the capacity demonstration regressed";
  }

  write_json();
  return 0;
}

int main() { return ls2::bench::guarded_main("fig_tp", bench_body); }
