// Serving: KV-cache incremental decoding under continuous vs static
// batching, and the decode-step graph-replay win.
//
// A GPT-2 serving engine (src/infer/) holds a fixed set of KV-cache slots
// and runs one static-shape decode step per engine tick. Two scheduling
// disciplines are compared under Poisson request arrivals:
//
//   continuous — arrived requests are admitted into any free slot every
//                step, so the decode batch stays full under load;
//   static     — a wave is admitted only when ALL slots have drained, so
//                short sequences idle their slots while the wave's longest
//                sequence finishes (the classic static-batching tail).
//
// The second section turns on SessionConfig::graph_capture: after one
// warm-up the decode step is captured and every later step replays as ONE
// graph launch. At small slot counts the decode step is launch-bound
// (~150 kernels of a few us each), so replay's effect is largest there and
// fades as the KV-cache reads grow bandwidth-bound — the serving twin of
// fig_launch_graph.
//
// Machine-readable output: bench/fig_serve.json (validated by ci.sh).
// Run with --trace to also export the busiest continuous run as a Chrome
// trace (bench/fig_serve_trace.json; open in chrome://tracing).
#include <cstring>
#include <filesystem>
#include <fstream>

#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

models::Gpt2Config serve_model() {
  models::Gpt2Config cfg = models::Gpt2Config::base();  // 117M params
  return cfg;
}

struct ServeRun {
  infer::ServeReport report;
  bool poisoned = false;
};

// One measurement point = one fully isolated bench::ServeHarness (the setup
// previously copied here, now shared in bench_common.h).
ServeRun run_serve(const simgpu::DeviceProfile& profile, int64_t slots, int64_t max_len,
                   const std::vector<infer::Request>& reqs, infer::BatchMode mode,
                   bool graph, bool trace = false) {
  ServeHarness h = make_serve_harness(serve_model(), profile, slots, max_len, mode, graph,
                                      /*record_timeline=*/trace);
  ServeRun run;
  run.report = h.serve(reqs);
  run.poisoned = h.poisoned();
  if (trace) {
    std::filesystem::create_directories("bench");
    h.session->device().timeline().write_chrome_trace("bench/fig_serve_trace.json");
    std::printf("wrote Chrome trace to bench/fig_serve_trace.json\n");
  }
  return run;
}

struct JsonRow {
  std::string section, profile;
  int64_t slots = 0;
  double rate = 0;
  int64_t requests = 0;
  infer::ServeReport a, b;  ///< batching: continuous/static; graph: replay/eager
};
std::vector<JsonRow> g_rows;

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig_serve.json");
  out << "{\n  \"figure\": \"fig_serve\",\n  \"schema\": 1,\n  \"configs\": [";
  char buf[1024];
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    const char* a_name = r.section == "batching" ? "continuous" : "replay";
    const char* b_name = r.section == "batching" ? "static" : "eager";
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"section\": \"%s\", \"profile\": \"%s\", \"slots\": %lld, "
        "\"rate_per_sec\": %.1f, \"requests\": %lld, "
        "\"%s_tokens_per_sec\": %.1f, \"%s_tokens_per_sec\": %.1f, "
        "\"tokens_per_sec_speedup\": %.3f, "
        "\"%s_p50_ms\": %.3f, \"%s_p99_ms\": %.3f, \"%s_p50_ms\": %.3f, "
        "\"%s_p99_ms\": %.3f, \"decode_steps\": %lld, \"replayed_steps\": %lld}",
        i == 0 ? "" : ",", r.section.c_str(), r.profile.c_str(),
        static_cast<long long>(r.slots), r.rate, static_cast<long long>(r.requests),
        a_name, r.a.tokens_per_sec, b_name, r.b.tokens_per_sec,
        r.a.tokens_per_sec / r.b.tokens_per_sec, a_name, r.a.p50_latency_us / 1e3,
        a_name, r.a.p99_latency_us / 1e3, b_name, r.b.p50_latency_us / 1e3, b_name,
        r.b.p99_latency_us / 1e3, static_cast<long long>(r.a.decode_steps),
        static_cast<long long>(r.a.replayed_steps));
    out << buf;
  }
  out << "\n  ]\n}\n";
  std::printf("\nwrote %zu configs to bench/fig_serve.json\n", g_rows.size());
}

}  // namespace

static int bench_body(int argc, char** argv) {
  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
  }
  const int64_t slots = 8, max_len = 192;
  const int64_t n_requests = 64;

  print_header("Serving GPT-2 base (FP16): continuous vs static batching, Poisson arrivals");
  std::printf("%-8s %-10s %10s %12s %12s %8s %10s %10s\n", "profile", "rate/s", "tok/s_cont",
              "tok/s_stat", "speedup", "p50_ms", "p99_cont", "p99_stat");
  bool traced = false;
  for (const char* prof_name : {"v100", "a100"}) {
    const simgpu::DeviceProfile profile = simgpu::profile_by_name(prof_name);
    for (double rate : {120.0, 400.0}) {
      const auto reqs = infer::poisson_requests(n_requests, rate, /*prompt*/ 8, 24,
                                                /*gen*/ 16, 128, serve_model().vocab, 29);
      // Saturated runs exercise the scheduling gap; the moderate rate shows
      // latency under head-room. Trace the first saturated continuous run.
      const bool do_trace = trace && !traced && rate > 200.0;
      traced |= do_trace;
      const ServeRun cont = run_serve(profile, slots, max_len, reqs,
                                      infer::BatchMode::kContinuous, /*graph=*/false,
                                      do_trace);
      const ServeRun stat =
          run_serve(profile, slots, max_len, reqs, infer::BatchMode::kStatic, false);
      g_rows.push_back({"batching", prof_name, slots, rate, n_requests, cont.report,
                        stat.report});
      std::printf("%-8s %-10.0f %10.0f %12.0f %11.2fx %8.1f %10.1f %10.1f\n", prof_name,
                  rate, cont.report.tokens_per_sec, stat.report.tokens_per_sec,
                  cont.report.tokens_per_sec / stat.report.tokens_per_sec,
                  cont.report.p50_latency_us / 1e3, cont.report.p99_latency_us / 1e3,
                  stat.report.p99_latency_us / 1e3);
    }
  }
  std::printf("\nContinuous batching refills a slot the step its sequence retires; the\n"
              "static wave pays the longest sequence's tail for every slot.\n");

  print_header("Decode-step graph replay: one graph launch per decode step (V100)");
  std::printf("%-8s %12s %12s %8s %14s\n", "slots", "eager_tok/s", "replay_tok/s", "speedup",
              "replayed_steps");
  for (int64_t gslots : {2, 8, 32}) {
    const auto reqs = infer::poisson_requests(32, /*rate=*/100000.0, 8, 16, 32, 96,
                                              serve_model().vocab, 31);
    const ServeRun eager = run_serve(simgpu::v100(), gslots, max_len, reqs,
                                     infer::BatchMode::kContinuous, /*graph=*/false);
    const ServeRun replay = run_serve(simgpu::v100(), gslots, max_len, reqs,
                                      infer::BatchMode::kContinuous, /*graph=*/true);
    LS2_CHECK(!replay.poisoned) << "decode capture poisoned";
    g_rows.push_back({"graph", "v100", gslots, 100000.0, 32, replay.report, eager.report});
    std::printf("%-8lld %12.0f %12.0f %7.2fx %14lld\n", static_cast<long long>(gslots),
                eager.report.tokens_per_sec, replay.report.tokens_per_sec,
                replay.report.tokens_per_sec / eager.report.tokens_per_sec,
                static_cast<long long>(replay.report.replayed_steps));
  }
  std::printf("\nSmall decode batches are launch-bound (~150 short kernels/step), so one\n"
              "graph launch recovers the dispatch gaps; big batches turn bandwidth-bound\n"
              "on the KV-cache reads and the replay win narrows — CUDA Graphs behavior.\n");

  write_json();
  return 0;
}

int main(int argc, char** argv) {
  return ls2::bench::guarded_main("fig_serve", [&] { return bench_body(argc, argv); });
}
