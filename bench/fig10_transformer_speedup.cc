// Fig. 10: end-to-end training speedup on WMT14-style machine translation.
// Six panels: {6e6d, 12e12d, 24e24d} x {V100, A100}, batch-token sizes
// 512..15000, systems Fairseq / Fairseq+Apex / LightSeq2. Speedups are
// words-per-second ratios vs Fairseq, as in the paper.
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

static int bench_body() {
  struct Panel {
    int64_t enc, dec;
    const char* profile;
    std::vector<int64_t> token_sizes;
  };
  // Batch-size ceilings follow the paper's panels (bigger models OOM first).
  const std::vector<Panel> panels = {
      {6, 6, "v100", {512, 1024, 2048, 4096, 8192, 15000}},
      {12, 12, "v100", {512, 1024, 2048, 4096}},
      {24, 24, "v100", {512, 1024, 2048}},
      {6, 6, "a100", {512, 1024, 2048, 4096, 8192, 15000}},
      {12, 12, "a100", {512, 1024, 2048, 4096, 8192}},
      {24, 24, "a100", {512, 1024, 2048, 4096}},
  };

  char panel_id = 'a';
  for (const Panel& p : panels) {
    const auto cfg = models::TransformerConfig::base(p.enc, p.dec);
    const auto profile = simgpu::profile_by_name(p.profile);
    print_header(std::string("Fig. 10(") + panel_id++ + "): Transformer " +
                 model_label(cfg) + " on " + profile.name +
                 " — speedup vs Fairseq (words/sec)");
    std::printf("%-12s %12s %14s %12s %10s %10s\n", "batch_tokens", "Fairseq(wps)",
                "FS+Apex(wps)", "LS2(wps)", "Apex/FS", "LS2/FS");
    for (int64_t tokens : p.token_sizes) {
      const MtPerf fs = measure_mt(System::kFairseq, cfg, profile, tokens);
      const MtPerf apex = measure_mt(System::kFairseqApex, cfg, profile, tokens);
      const MtPerf ls2 = measure_mt(System::kLightSeq2, cfg, profile, tokens);
      if (fs.oom || ls2.oom) {
        std::printf("%-12lld %12s %14s %12.0f %10s %10s\n",
                    static_cast<long long>(tokens), fs.oom ? "OOM" : "-",
                    apex.oom ? "OOM" : "-", ls2.words_per_sec, "-", "-");
        continue;
      }
      std::printf("%-12lld %12.0f %14.0f %12.0f %9.2fx %9.2fx\n",
                  static_cast<long long>(tokens), fs.words_per_sec, apex.words_per_sec,
                  ls2.words_per_sec, apex.words_per_sec / fs.words_per_sec,
                  ls2.words_per_sec / fs.words_per_sec);
    }
  }
  std::printf("\nPaper reference: LightSeq2 1.4-2.8x on V100, 1.5-3.5x on A100;\n"
              "speedup grows with model depth and is higher on A100.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig10_transformer_speedup", bench_body); }
