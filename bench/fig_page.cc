// Paged KV cache: concurrent residency at a fixed KV byte budget, and
// shared-prefix page reuse under a system-prompt burst.
//
// Section "capacity" pits two layouts of the SAME KV pool bytes against a
// saturating burst:
//
//   degenerate — page_tokens == max_len: one page IS a full-length slot, so
//                residency is bounded by `pool_bytes / worst-case sequence`
//                (the classic contiguous KV cache);
//   paged      — 16-token pages over the same pool, 8x the decode lanes:
//                residency is bounded by LIVE tokens, and a sequence that
//                outgrows the pool is preempted (recompute-on-readmit) and
//                finishes later, token-exact.
//
// The figure of merit is peak concurrent residents at equal kv_bytes —
// the serving memory wall moved by vLLM-style paging. Both runs capture the
// decode step as a graph: the block table is a replay-time parameter, so
// paging does not cost replayability.
//
// Section "sharing" serves a burst whose prompts share a 32-token system
// prefix (two full pages) over an oversubscribed pool, with prefix sharing
// off vs on. Sharing maps every copy of the system pages to one physical
// page (refcounted, COW on the tail), so prefill page allocations collapse
// and more residents fit the same pool.
//
// Machine-readable output: bench/fig_page.json (validated by ci.sh).
#include <filesystem>
#include <fstream>

#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

models::Gpt2Config page_model() { return models::Gpt2Config::base(); }

/// A burst (arrival t=0) of `n` requests sharing a `sys_len`-token system
/// prompt followed by a short per-request tail — the workload prefix sharing
/// is built for. Counter-RNG'd so every run is identical.
std::vector<infer::Request> system_prompt_burst(int64_t n, int64_t sys_len,
                                                int64_t tail_len, int64_t gen_min,
                                                int64_t gen_max, int64_t vocab,
                                                uint64_t seed) {
  const Rng rng(seed);
  std::vector<int32_t> sys(static_cast<size_t>(sys_len));
  for (int64_t t = 0; t < sys_len; ++t)
    sys[static_cast<size_t>(t)] =
        static_cast<int32_t>(rng.randint(1, static_cast<uint64_t>(t), vocab));
  std::vector<infer::Request> reqs;
  for (int64_t i = 0; i < n; ++i) {
    infer::Request r;
    r.id = i;
    r.prompt = sys;
    for (int64_t t = 0; t < tail_len; ++t)
      r.prompt.push_back(static_cast<int32_t>(
          rng.randint(2, static_cast<uint64_t>(i * tail_len + t), vocab)));
    r.spec.gen_len =
        gen_min + rng.randint(3, static_cast<uint64_t>(i), gen_max - gen_min + 1);
    r.arrival_us = 0;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

struct CapacityRow {
  int64_t kv_bytes = 0;
  int64_t degen_slots = 0, paged_slots = 0;
  infer::ServeReport degen, paged;
};
struct SharingRow {
  int64_t requests = 0, total_pages = 0;
  infer::ServeReport excl, shared;
};
CapacityRow g_capacity;
SharingRow g_sharing;

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig_page.json");
  const infer::ServeReport &d = g_capacity.degen, &p = g_capacity.paged;
  const infer::ServeReport &e = g_sharing.excl, &s = g_sharing.shared;
  const double hit_rate =
      static_cast<double>(s.shared_page_hits) /
      static_cast<double>(s.shared_page_hits + s.prefill_page_allocs);
  char buf[2048];
  out << "{\n  \"figure\": \"fig_page\",\n  \"schema\": 1,\n  \"configs\": [";
  std::snprintf(
      buf, sizeof(buf),
      "\n    {\"section\": \"capacity\", \"profile\": \"v100\", "
      "\"kv_bytes\": %lld, \"degen_slots\": %lld, \"paged_slots\": %lld, "
      "\"degen_peak_resident\": %lld, \"paged_peak_resident\": %lld, "
      "\"resident_ratio\": %.3f, \"degen_tokens_per_sec\": %.1f, "
      "\"paged_tokens_per_sec\": %.1f, \"served\": %lld, \"shed\": %lld, "
      "\"preemptions\": %lld, \"replayed_steps\": %lld},",
      static_cast<long long>(g_capacity.kv_bytes),
      static_cast<long long>(g_capacity.degen_slots),
      static_cast<long long>(g_capacity.paged_slots),
      static_cast<long long>(d.peak_resident), static_cast<long long>(p.peak_resident),
      static_cast<double>(p.peak_resident) / static_cast<double>(d.peak_resident),
      d.tokens_per_sec, p.tokens_per_sec, static_cast<long long>(p.served),
      static_cast<long long>(p.shed_requests), static_cast<long long>(p.preemptions),
      static_cast<long long>(p.replayed_steps));
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "\n    {\"section\": \"sharing\", \"profile\": \"v100\", "
      "\"requests\": %lld, \"total_pages\": %lld, "
      "\"excl_prefill_pages\": %lld, \"shared_prefill_pages\": %lld, "
      "\"shared_page_hits\": %lld, \"hit_rate\": %.3f, \"cow_copies\": %lld, "
      "\"excl_peak_resident\": %lld, \"shared_peak_resident\": %lld, "
      "\"excl_preemptions\": %lld, \"shared_preemptions\": %lld, "
      "\"served\": %lld, \"shed\": %lld}",
      static_cast<long long>(g_sharing.requests),
      static_cast<long long>(g_sharing.total_pages),
      static_cast<long long>(e.prefill_page_allocs),
      static_cast<long long>(s.prefill_page_allocs),
      static_cast<long long>(s.shared_page_hits), hit_rate,
      static_cast<long long>(s.cow_copies), static_cast<long long>(e.peak_resident),
      static_cast<long long>(s.peak_resident), static_cast<long long>(e.preemptions),
      static_cast<long long>(s.preemptions), static_cast<long long>(s.served),
      static_cast<long long>(s.shed_requests));
  out << buf;
  out << "\n  ]\n}\n";
  std::printf("\nwrote 2 configs to bench/fig_page.json\n");
}

}  // namespace

static int bench_body() {
  const models::Gpt2Config mc = page_model();
  const int64_t max_len = 128, page = 16;

  // --- capacity: same KV bytes, 8x the decode lanes --------------------
  // Degenerate pool: 2 slots x 128 tokens. Paged pool: the SAME 256 tokens
  // as 16 pages behind 16 lanes — residency bounded by live tokens.
  const int64_t degen_slots = 2, paged_slots = 16;
  const int64_t shared_pool_pages = degen_slots * max_len / page;
  print_header("Paged KV capacity (GPT-2 base, FP16, V100): fixed KV bytes, burst of 64");
  const auto burst = infer::poisson_requests(64, /*rate=*/1e9, /*prompt*/ 8, 16,
                                             /*gen*/ 8, 24, mc.vocab, 29);
  PagedKnobs degen_knobs;
  degen_knobs.page_tokens = max_len;  // one page per full-length sequence
  ServeHarness degen_h =
      make_serve_harness(mc, simgpu::v100(), degen_slots, max_len,
                         infer::BatchMode::kContinuous, /*graph=*/true,
                         /*record_timeline=*/false, /*max_prompt_len=*/32,
                         DType::kF16, /*seed=*/17, degen_knobs);
  PagedKnobs paged_knobs;
  paged_knobs.page_tokens = page;
  paged_knobs.total_pages = shared_pool_pages;
  ServeHarness paged_h =
      make_serve_harness(mc, simgpu::v100(), paged_slots, max_len,
                         infer::BatchMode::kContinuous, /*graph=*/true,
                         /*record_timeline=*/false, /*max_prompt_len=*/32,
                         DType::kF16, /*seed=*/17, paged_knobs);
  // Usable pool bytes (the trash page every pool carries for free-lane
  // appends is page-sized, so it differs between the two layouts).
  const auto usable_bytes = [](const infer::KvCacheConfig& c) {
    return c.pool_pages() * c.page() * c.layers * 2 * c.heads * c.head_dim *
           static_cast<int64_t>(dtype_size(c.dtype));
  };
  LS2_CHECK(usable_bytes(degen_h.cache->config()) == usable_bytes(paged_h.cache->config()))
      << "the capacity comparison must hold KV bytes fixed";
  g_capacity.kv_bytes = usable_bytes(paged_h.cache->config());
  g_capacity.degen_slots = degen_slots;
  g_capacity.paged_slots = paged_slots;
  g_capacity.degen = degen_h.serve(burst);
  g_capacity.paged = paged_h.serve(burst);
  LS2_CHECK(!degen_h.poisoned() && !paged_h.poisoned()) << "decode capture poisoned";
  LS2_CHECK(g_capacity.paged.served + g_capacity.paged.shed_requests == 64)
      << "requests lost";

  std::printf("%-12s %8s %14s %12s %12s %12s\n", "layout", "lanes", "peak_resident",
              "tok/s", "preempts", "replayed");
  std::printf("%-12s %8lld %14lld %12.0f %12lld %12lld\n", "degenerate",
              static_cast<long long>(degen_slots),
              static_cast<long long>(g_capacity.degen.peak_resident),
              g_capacity.degen.tokens_per_sec,
              static_cast<long long>(g_capacity.degen.preemptions),
              static_cast<long long>(g_capacity.degen.replayed_steps));
  std::printf("%-12s %8lld %14lld %12.0f %12lld %12lld\n", "paged",
              static_cast<long long>(paged_slots),
              static_cast<long long>(g_capacity.paged.peak_resident),
              g_capacity.paged.tokens_per_sec,
              static_cast<long long>(g_capacity.paged.preemptions),
              static_cast<long long>(g_capacity.paged.replayed_steps));
  std::printf("\nSame %lld KV bytes: paging admits %.1fx the concurrent residents because\n"
              "lanes are bounded by live tokens, not worst-case length.\n",
              static_cast<long long>(g_capacity.kv_bytes),
              static_cast<double>(g_capacity.paged.peak_resident) /
                  static_cast<double>(g_capacity.degen.peak_resident));

  // --- sharing: one physical system prompt ------------------------------
  print_header("Prefix sharing (8 lanes, 16-page pool): 24 requests, 32-token system prompt");
  const auto sys_burst = system_prompt_burst(/*n=*/24, /*sys_len=*/32, /*tail_len=*/4,
                                             /*gen_min=*/8, /*gen_max=*/16, mc.vocab, 53);
  g_sharing.requests = 24;
  g_sharing.total_pages = 16;
  for (const bool sharing : {false, true}) {
    PagedKnobs knobs;
    knobs.page_tokens = page;
    knobs.total_pages = g_sharing.total_pages;
    knobs.prefix_sharing = sharing;
    ServeHarness h = make_serve_harness(mc, simgpu::v100(), /*slots=*/8, max_len,
                                        infer::BatchMode::kContinuous, /*graph=*/false,
                                        /*record_timeline=*/false, /*max_prompt_len=*/48,
                                        DType::kF16, /*seed=*/17, knobs);
    (sharing ? g_sharing.shared : g_sharing.excl) = h.serve(sys_burst);
  }
  LS2_CHECK(g_sharing.shared.served + g_sharing.shared.shed_requests == 24)
      << "requests lost";
  std::printf("%-12s %14s %14s %12s %12s %10s\n", "prefixes", "prefill_pages",
              "page_hits", "peak_res", "preempts", "served");
  std::printf("%-12s %14lld %14lld %12lld %12lld %10lld\n", "exclusive",
              static_cast<long long>(g_sharing.excl.prefill_page_allocs),
              static_cast<long long>(g_sharing.excl.shared_page_hits),
              static_cast<long long>(g_sharing.excl.peak_resident),
              static_cast<long long>(g_sharing.excl.preemptions),
              static_cast<long long>(g_sharing.excl.served));
  std::printf("%-12s %14lld %14lld %12lld %12lld %10lld\n", "shared",
              static_cast<long long>(g_sharing.shared.prefill_page_allocs),
              static_cast<long long>(g_sharing.shared.shared_page_hits),
              static_cast<long long>(g_sharing.shared.peak_resident),
              static_cast<long long>(g_sharing.shared.preemptions),
              static_cast<long long>(g_sharing.shared.served));
  std::printf("\nEvery resident maps its two system-prompt pages to the same physical\n"
              "pages (COW isolates the tails), so prefill allocations collapse and the\n"
              "same pool holds more residents.\n");

  write_json();
  return 0;
}

int main() {
  return ls2::bench::guarded_main("fig_page", [&] { return bench_body(); });
}
