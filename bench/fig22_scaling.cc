// Fig. 22: scalability. (a) speedup over Fairseq for a 48e48d Transformer on
// 1x8 .. 5x8 A100 GPUs; (b) speedup for 24e24d..60e60d models on 5x8 A100.
// Multi-node synchronisation goes over the modeled InfiniBand ring, so the
// (identical for both systems) all-reduce time dilutes the speedup as the
// cluster or the model grows — the paper's observed trend. (c) and (d) study
// the two schedule optimisations separately: bucketed all-reduce overlapped
// with backward, and the pipelined per-bucket optimizer update (+ FP16 wire).
//
// Besides the human-readable tables, every measured configuration is
// written to bench/fig22.json (relative to the working directory, rewritten
// each run) so the perf trajectory can be tracked machine-readably across
// commits; ci.sh smoke-validates that the file parses.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

struct JsonRow {
  std::string section;
  std::string model;
  std::string system;
  int gpus = 0;
  bool pipeline = false;
  const char* wire = "f32";
  MtPerf perf;
};

std::vector<JsonRow> g_rows;

void record(const std::string& section, const std::string& model,
            const std::string& system, const dist::ClusterConfig& cluster,
            const MtPerf& perf) {
  JsonRow row;
  row.section = section;
  row.model = model;
  row.system = system;
  row.gpus = cluster.total_gpus();
  row.pipeline = cluster.overlap && cluster.pipeline_update;
  row.wire = cluster.wire_dtype == DType::kF16 ? "f16" : "f32";
  row.perf = perf;
  g_rows.push_back(row);
}

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig22.json");
  out << "{\n  \"figure\": \"fig22\",\n  \"schema\": 1,\n  \"configs\": [";
  char buf[1024];
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    const StepTimes& t = r.perf.stages;
    const double hidden_sync_pct =
        t.sync_blocking_us > 0 ? 100.0 * (1.0 - t.sync_us / t.sync_blocking_us) : 0.0;
    const double hidden_update_pct =
        t.update_us > 0 ? 100.0 * t.update_overlapped_us / t.update_us : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"section\": \"%s\", \"model\": \"%s\", \"system\": \"%s\", "
        "\"gpus\": %d, \"pipeline_update\": %s, \"wire_dtype\": \"%s\", "
        "\"words_per_sec\": %.1f, \"step_us\": %.3f, \"forward_us\": %.3f, "
        "\"backward_us\": %.3f, \"sync_exposed_us\": %.3f, "
        "\"sync_overlapped_us\": %.3f, \"sync_blocking_us\": %.3f, "
        "\"update_us\": %.3f, \"update_overlapped_us\": %.3f, "
        "\"zero_grad_us\": %.3f, \"wire_bytes\": %lld, "
        "\"hidden_sync_pct\": %.2f, \"hidden_update_pct\": %.2f}",
        i == 0 ? "" : ",", r.section.c_str(), r.model.c_str(), r.system.c_str(),
        r.gpus, r.pipeline ? "true" : "false", r.wire, r.perf.words_per_sec,
        r.perf.step_us, t.forward_us, t.backward_us, t.sync_us, t.sync_overlapped_us,
        t.sync_blocking_us, t.update_us, t.update_overlapped_us, t.zero_grad_us,
        static_cast<long long>(t.wire_bytes), hidden_sync_pct, hidden_update_pct);
    out << buf;
  }
  out << "\n  ]\n}\n";
  std::printf("\nwrote %zu configs to bench/fig22.json\n", g_rows.size());
}

}  // namespace

static int bench_body() {
  const auto profile = simgpu::a100();

  print_header("Fig. 22(a): 48e48d Transformer, batch 4096 tokens/GPU — speedup vs "
               "Fairseq on N x 8 A100");
  std::printf("%-10s %14s %14s %10s\n", "GPUs", "Fairseq(wps)", "LS2(wps)", "speedup");
  // (a)/(b) reproduce the paper's setting: both systems pay the same
  // BLOCKING all-reduce, so sync's growing share dilutes the speedup.
  // (c)/(d) below study the overlapped/pipelined paths separately.
  const auto cfg48 = models::TransformerConfig::base(48, 48);
  for (int nodes : {1, 2, 3, 4, 5}) {
    dist::ClusterConfig cluster{8, nodes};
    cluster.overlap = false;
    const MtPerf fs = measure_mt(System::kFairseq, cfg48, profile, 4096, cluster);
    const MtPerf ls = measure_mt(System::kLightSeq2, cfg48, profile, 4096, cluster);
    record("a", model_label(cfg48), "fairseq", cluster, fs);
    record("a", model_label(cfg48), "lightseq2", cluster, ls);
    std::printf("%dx8%7s %14.0f %14.0f %9.2fx\n", nodes, "", fs.words_per_sec,
                ls.words_per_sec, ls.words_per_sec / fs.words_per_sec);
  }

  print_header("Fig. 22(b): model-size sweep on 5x8 A100 — speedup vs Fairseq");
  std::printf("%-10s %12s %14s %14s %10s\n", "model", "tokens/GPU", "Fairseq(wps)",
              "LS2(wps)", "speedup");
  dist::ClusterConfig cluster{8, 5};
  cluster.overlap = false;
  for (int layers : {24, 36, 48, 60}) {
    const auto cfg = models::TransformerConfig::base(layers, layers);
    // Deeper models must train with smaller per-GPU batches (activation
    // memory), so the fixed all-reduce cost takes a growing share of the
    // step — the mechanism behind the paper's declining curve.
    const int64_t tokens = 4096 * 24 / layers;
    const MtPerf fs = measure_mt(System::kFairseq, cfg, profile, tokens, cluster);
    const MtPerf ls = measure_mt(System::kLightSeq2, cfg, profile, tokens, cluster);
    record("b", model_label(cfg), "fairseq", cluster, fs);
    record("b", model_label(cfg), "lightseq2", cluster, ls);
    std::printf("%-10s %12lld %14.0f %14.0f %9.2fx\n", model_label(cfg).c_str(),
                static_cast<long long>(tokens), fs.words_per_sec, ls.words_per_sec,
                ls.words_per_sec / fs.words_per_sec);
  }

  print_header("Fig. 22(c): sync hiding — bucketed all-reduce overlapped with backward\n"
               "(48e48d LightSeq2, exposed vs blocking sync per N x 8 A100, FP32 wire,\n"
               "serial update so the sync stage is isolated)");
  // "overlapped" = comm run concurrently with backward (includes the extra
  // per-ring latency bucketing costs); "saved" = blocking - exposed, the
  // critical-path time overlap actually removed.
  std::printf("%-10s %14s %14s %15s %10s\n", "GPUs", "blocking(ms)", "exposed(ms)",
              "overlapped(ms)", "saved%");
  for (int nodes : {1, 2, 3, 4, 5}) {
    dist::ClusterConfig overlap_on{8, nodes};
    overlap_on.pipeline_update = false;  // isolate the sync stage
    const MtPerf on = measure_mt(System::kLightSeq2, cfg48, profile, 4096, overlap_on);
    record("c", model_label(cfg48), "lightseq2", overlap_on, on);
    // StepTimes carries the blocking-equivalent ring time, so no second
    // (overlap-off) simulation is needed.
    const double blocking_ms = on.stages.sync_blocking_us * 1e-3;
    const double exposed_ms = on.stages.sync_us * 1e-3;
    std::printf("%dx8%7s %14.2f %14.2f %15.2f %9.0f%%\n", nodes, "", blocking_ms,
                exposed_ms, on.stages.sync_overlapped_us * 1e-3,
                blocking_ms > 0 ? 100.0 * (1.0 - exposed_ms / blocking_ms) : 0.0);
  }

  print_header("Fig. 22(d): pipelined per-bucket update + FP16 wire\n"
               "(Transformer-Big 6e6d FP16, batch 4096 — exposed sync+update tail on\n"
               "N x 8 A100 vs the serial-update FP32-wire baseline of (c))");
  std::printf("%-10s %13s %13s %13s %9s %9s\n", "GPUs", "base tail(ms)",
              "pipeline(ms)", "+f16 wire(ms)", "drop%", "hid.upd%");
  const auto big = models::TransformerConfig::big(6, 6);
  for (int nodes : {2, 3, 4, 5}) {
    dist::ClusterConfig base_cl{8, nodes};
    base_cl.pipeline_update = false;  // PR-1 schedule: update after full drain
    dist::ClusterConfig pipe_cl{8, nodes};
    dist::ClusterConfig wire_cl{8, nodes};
    wire_cl.wire_dtype = DType::kF16;
    const MtPerf base = measure_mt(System::kLightSeq2, big, profile, 4096, base_cl);
    const MtPerf pipe = measure_mt(System::kLightSeq2, big, profile, 4096, pipe_cl);
    const MtPerf wire = measure_mt(System::kLightSeq2, big, profile, 4096, wire_cl);
    record("d", model_label(big), "lightseq2", base_cl, base);
    record("d", model_label(big), "lightseq2", pipe_cl, pipe);
    record("d", model_label(big), "lightseq2", wire_cl, wire);
    const double base_tail = (base.stages.sync_us + base.stages.update_us) * 1e-3;
    const double pipe_tail = (pipe.stages.sync_us + pipe.stages.update_us) * 1e-3;
    const double wire_tail = (wire.stages.sync_us + wire.stages.update_us) * 1e-3;
    std::printf("%dx8%7s %13.2f %13.2f %13.2f %8.0f%% %8.0f%%\n", nodes, "",
                base_tail, pipe_tail, wire_tail,
                base_tail > 0 ? 100.0 * (1.0 - wire_tail / base_tail) : 0.0,
                wire.stages.update_us > 0
                    ? 100.0 * wire.stages.update_overlapped_us / wire.stages.update_us
                    : 0.0);
  }

  std::printf("\nPaper reference: 1.14-1.41x across 1x8..5x8 GPUs and 1.12-1.22x across\n"
              "model sizes on 5x8; speedup shrinks as synchronisation's share grows.\n"
              "With overlap, only the tail bucket (embeddings, final at backward's end)\n"
              "stays on the critical path; pipelining then retires each bucket's\n"
              "optimizer update under the remaining transfers, and the FP16 wire halves\n"
              "what is left to drain.\n");

  write_json();
  return 0;
}

int main() { return ls2::bench::guarded_main("fig22_scaling", bench_body); }
