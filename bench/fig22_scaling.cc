// Fig. 22: scalability. (a) speedup over Fairseq for a 48e48d Transformer on
// 1x8 .. 5x8 A100 GPUs; (b) speedup for 24e24d..60e60d models on 5x8 A100.
// Multi-node synchronisation goes over the modeled InfiniBand ring, so the
// (identical for both systems) all-reduce time dilutes the speedup as the
// cluster or the model grows — the paper's observed trend.
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

int main() {
  const auto profile = simgpu::a100();

  print_header("Fig. 22(a): 48e48d Transformer, batch 4096 tokens/GPU — speedup vs "
               "Fairseq on N x 8 A100");
  std::printf("%-10s %14s %14s %10s\n", "GPUs", "Fairseq(wps)", "LS2(wps)", "speedup");
  // (a)/(b) reproduce the paper's setting: both systems pay the same
  // BLOCKING all-reduce, so sync's growing share dilutes the speedup.
  // (c) below studies the overlapped path separately.
  const auto cfg48 = models::TransformerConfig::base(48, 48);
  for (int nodes : {1, 2, 3, 4, 5}) {
    dist::ClusterConfig cluster{8, nodes};
    cluster.overlap = false;
    const MtPerf fs = measure_mt(System::kFairseq, cfg48, profile, 4096, cluster);
    const MtPerf ls = measure_mt(System::kLightSeq2, cfg48, profile, 4096, cluster);
    std::printf("%dx8%7s %14.0f %14.0f %9.2fx\n", nodes, "", fs.words_per_sec,
                ls.words_per_sec, ls.words_per_sec / fs.words_per_sec);
  }

  print_header("Fig. 22(b): model-size sweep on 5x8 A100 — speedup vs Fairseq");
  std::printf("%-10s %12s %14s %14s %10s\n", "model", "tokens/GPU", "Fairseq(wps)",
              "LS2(wps)", "speedup");
  dist::ClusterConfig cluster{8, 5};
  cluster.overlap = false;
  for (int layers : {24, 36, 48, 60}) {
    const auto cfg = models::TransformerConfig::base(layers, layers);
    // Deeper models must train with smaller per-GPU batches (activation
    // memory), so the fixed all-reduce cost takes a growing share of the
    // step — the mechanism behind the paper's declining curve.
    const int64_t tokens = 4096 * 24 / layers;
    const MtPerf fs = measure_mt(System::kFairseq, cfg, profile, tokens, cluster);
    const MtPerf ls = measure_mt(System::kLightSeq2, cfg, profile, tokens, cluster);
    std::printf("%-10s %12lld %14.0f %14.0f %9.2fx\n", model_label(cfg).c_str(),
                static_cast<long long>(tokens), fs.words_per_sec, ls.words_per_sec,
                ls.words_per_sec / fs.words_per_sec);
  }
  print_header("Fig. 22(c): sync hiding — bucketed all-reduce overlapped with backward\n"
               "(48e48d LightSeq2, exposed vs blocking sync per N x 8 A100)");
  // "overlapped" = comm run concurrently with backward (includes the extra
  // per-ring latency bucketing costs); "saved" = blocking - exposed, the
  // critical-path time overlap actually removed.
  std::printf("%-10s %14s %14s %15s %10s\n", "GPUs", "blocking(ms)", "exposed(ms)",
              "overlapped(ms)", "saved%");
  for (int nodes : {1, 2, 3, 4, 5}) {
    const dist::ClusterConfig overlap_on{8, nodes};
    const MtPerf on = measure_mt(System::kLightSeq2, cfg48, profile, 4096, overlap_on);
    // StepTimes carries the blocking-equivalent ring time, so no second
    // (overlap-off) simulation is needed.
    const double blocking_ms = on.stages.sync_blocking_us * 1e-3;
    const double exposed_ms = on.stages.sync_us * 1e-3;
    std::printf("%dx8%7s %14.2f %14.2f %15.2f %9.0f%%\n", nodes, "", blocking_ms,
                exposed_ms, on.stages.sync_overlapped_us * 1e-3,
                blocking_ms > 0 ? 100.0 * (1.0 - exposed_ms / blocking_ms) : 0.0);
  }

  std::printf("\nPaper reference: 1.14-1.41x across 1x8..5x8 GPUs and 1.12-1.22x across\n"
              "model sizes on 5x8; speedup shrinks as synchronisation's share grows.\n"
              "With overlap, only the tail bucket (embeddings, final at backward's end)\n"
              "stays on the critical path; the rest hides under backward compute.\n");
  return 0;
}
