// Table I: feature comparison of accelerated-training systems, plus a live
// demonstration of the sequence-length restriction — DeepSpeed-style kernels
// require lengths padded to a multiple of 16 (wasting compute on padding),
// while LightSeq2 accepts arbitrary shapes.
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

static int bench_body() {
  print_header("Table I: accelerated Transformer TRAINING systems");
  std::printf("%-12s %-10s %-8s %-8s %-10s %-8s %-18s %-12s\n", "library", "Embedding",
              "Encoder", "Decoder", "Criterion", "Trainer", "sequence length",
              "graph step");
  std::printf("%-12s %-10s %-8s %-8s %-10s %-8s %-18s %-12s\n", "DeepSpeed", "no", "yes",
              "no", "no", "yes", "multiples of 16", "no");
  std::printf("%-12s %-10s %-8s %-8s %-10s %-8s %-18s %-12s\n", "LightSeq2", "yes", "yes",
              "yes", "yes", "yes", "arbitrary", "yes (arena)");

  // Live check: sequence length 33 (not a multiple of 16).
  print_header("Arbitrary-length check: BERT step at sequence length 33");
  models::BertConfig cfg;
  cfg.layers = 2;
  const int64_t L = 33;
  for (System sys : {System::kDeepSpeed, System::kLightSeq2}) {
    SessionConfig sc;
    sc.system = sys;
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    Session session(sc);
    const int64_t padded = layers::pad_length(layers::policy_for(sys), L);
    models::Bert model(cfg, sys, DType::kF16, 1, session.param_alloc());
    optim::OptimConfig ocfg;
    auto trainer = optim::make_trainer(sys, model.params(), ocfg, session.param_alloc());
    data::ClsDataset ds(cfg.vocab, 64, padded, 1);
    auto batch = ds.batch(0, 16, padded);
    (void)core::train_step(session, model, batch, *trainer);
    const double t0 = session.device().clock_us();
    (void)core::train_step(session, model, batch, *trainer);
    std::printf("%-12s runs length %2lld as %2lld tokens (%s), step %.2f ms\n",
                layers::system_name(sys), static_cast<long long>(L),
                static_cast<long long>(padded),
                padded == L ? "no padding" : "padded x16",
                (session.device().clock_us() - t0) / 1e3);
  }
  std::printf("\nDeepSpeed's x16 restriction pays for %lld phantom tokens per sequence\n"
              "at this length; LightSeq2 processes the exact shape.\n",
              static_cast<long long>(layers::pad_length(
                  layers::policy_for(System::kDeepSpeed), L) - L));
  // Decoder support check.
  std::printf("\nDecoder support: DeepSpeed policy %s decoder layers; LightSeq2 %s.\n",
              layers::policy_for(System::kDeepSpeed).supports_decoder ? "supports"
                                                                      : "REJECTS",
              layers::policy_for(System::kLightSeq2).supports_decoder ? "supports"
                                                                      : "REJECTS");

  // New feature row: step-graph capture (CUDA-Graphs discipline). The
  // LightSeq2 arena serves every per-step tensor from stable addresses with
  // zero device malloc/free traffic, so its train step is certified
  // capture-safe; a dynamic caching allocator stalls on device mallocs
  // mid-step, which poisons capture. Live check: capture the first step of
  // each memory strategy.
  print_header("Graph capture: arena step captures, caching-allocator step poisons");
  models::BertConfig gcfg;
  gcfg.layers = 2;
  for (bool arena : {false, true}) {
    SessionConfig sc;
    sc.system = System::kLightSeq2;
    sc.mode = simgpu::ExecMode::kModelOnly;
    sc.dtype = DType::kF16;
    sc.graph_capture = true;
    sc.graph_warmup_steps = 0;  // capture cold: exposes allocator stalls
    if (arena) sc.arena_bytes = 2ull << 30;
    Session session(sc);
    models::Bert model(gcfg, System::kLightSeq2, DType::kF16, 1, session.param_alloc());
    optim::OptimConfig ocfg;
    auto trainer = optim::make_trainer(System::kLightSeq2, model.params(), ocfg,
                                       session.param_alloc());
    data::ClsDataset ds(gcfg.vocab, 64, 48, 1);
    auto batch = ds.batch(0, 16, 48);
    (void)core::train_step(session, model, batch, *trainer);
    if (session.step_graph() != nullptr) {
      std::printf("%-18s capture OK: %lld kernels recorded as one graph\n",
                  arena ? "arena (LS2)" : "caching",
                  static_cast<long long>(session.step_graph()->kernel_launches));
    } else {
      std::printf("%-18s capture POISONED: %s\n", arena ? "arena (LS2)" : "caching",
                  session.graph_poison_reason().c_str());
    }
  }
  return 0;
}

int main() { return ls2::bench::guarded_main("table1_features", bench_body); }
