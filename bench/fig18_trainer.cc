// Fig. 18: trainer (parameter update) speedup for Adam and SGD across model
// sizes 6e6d / 12e12d / 24e24d — PyTorch vs Apex vs LightSeq2, V100.
// Also reports the §IV-C memory claim: trainer state bytes per system.
#include "bench_common.h"

using namespace ls2;
using namespace ls2::bench;

namespace {

struct TrainerPerf {
  double update_us = 0;
  int64_t state_bytes = 0;
};

TrainerPerf measure_trainer(System system, optim::Algo algo,
                            const models::TransformerConfig& cfg) {
  SessionConfig sc;
  sc.system = system;
  sc.profile = simgpu::v100();
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  Session session(sc);
  models::Transformer model(cfg, system, DType::kF16, 31, session.param_alloc());
  optim::OptimConfig ocfg;
  ocfg.algo = algo;
  auto trainer = optim::make_trainer(system, model.params(), ocfg, session.param_alloc());
  trainer->step(session.ctx().kern);  // warm-up
  const double t0 = session.device().clock_us();
  trainer->step(session.ctx().kern);
  return {session.device().clock_us() - t0, trainer->state_bytes()};
}

}  // namespace

static int bench_body() {
  for (optim::Algo algo : {optim::Algo::kAdam, optim::Algo::kSgd}) {
    const char* name = algo == optim::Algo::kAdam ? "Adam" : "SGD";
    print_header(std::string("Fig. 18: ") + name +
                 " trainer update time (ms) and speedup over Apex, V100");
    std::printf("%-10s %10s %10s %10s %12s %12s\n", "model", "PyTorch", "Apex", "LS2",
                "LS2/PyTorch", "LS2/Apex");
    for (auto [e, d] : {std::pair<int, int>{6, 6}, {12, 12}, {24, 24}}) {
      const auto cfg = models::TransformerConfig::big(e, d);
      const TrainerPerf torch = measure_trainer(System::kFairseq, algo, cfg);
      const TrainerPerf apex = measure_trainer(System::kFairseqApex, algo, cfg);
      const TrainerPerf ls2 = measure_trainer(System::kLightSeq2, algo, cfg);
      std::printf("%-10s %10.2f %10.2f %10.2f %11.2fx %11.2fx\n",
                  (std::to_string(e) + "e" + std::to_string(d) + "d").c_str(),
                  torch.update_us / 1e3, apex.update_us / 1e3, ls2.update_us / 1e3,
                  torch.update_us / ls2.update_us, apex.update_us / ls2.update_us);
      if (algo == optim::Algo::kAdam && e == 6) {
        std::printf("  trainer state: PyTorch %.2f GB, Apex %.2f GB, LightSeq2 %.2f GB "
                    "(saving %.2f GB — paper: ~2 GB on Transformer-Big)\n",
                    torch.state_bytes / 1e9, apex.state_bytes / 1e9, ls2.state_bytes / 1e9,
                    (apex.state_bytes - ls2.state_bytes) / 1e9);
      }
    }
  }
  std::printf("\nPaper reference: LightSeq2 gains a consistent 2.3x (Adam) / 2.4x (SGD)\n"
              "over Apex and ~4x over PyTorch, independent of model size.\n");
  return 0;
}

int main() { return ls2::bench::guarded_main("fig18_trainer", bench_body); }
