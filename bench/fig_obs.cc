// Telemetry figure (DESIGN.md §12): the unified observability subsystem on
// real workloads.
//
//   [snapshot]  a training run and a serving run feed one MetricsRegistry;
//               the JSON snapshot carries both (plus the device scrape) and
//               is byte-identical across two seeded runs — the golden
//               contract, demonstrated here at bench scale.
//   [roofline]  the top-K kernel-family table built from REGISTRY DATA
//               ALONE (no simgpu access after the scrape), with the
//               coverage identity: sum of family exec time + exposed comm +
//               other busy time == DeviceStats::busy_us within 1%.
//   [overhead]  the same training steps with metrics enabled vs disabled:
//               the SIMULATED step time is identical (instrumentation is
//               host-side only, it never charges device time) and the HOST
//               wall-clock cost of recording stays under 1% of a step.
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/roofline.h"

namespace ls2::bench {
namespace {

std::vector<std::string> g_rows;

void push_row(const char* fmt, ...) {
  char buf[640];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  g_rows.emplace_back(buf);
}

void write_json() {
  std::filesystem::create_directories("bench");
  std::ofstream out("bench/fig_obs.json");
  out << "{\n  \"figure\": \"fig_obs\",\n  \"schema\": 1,\n  \"configs\": [";
  for (size_t i = 0; i < g_rows.size(); ++i)
    out << (i == 0 ? "\n    " : ",\n    ") << g_rows[i];
  out << "\n  ]\n}\n";
  std::printf("\nwrote %zu configs to bench/fig_obs.json\n", g_rows.size());
}

// ---------------------------------------------------------------------------
// Shared workloads
// ---------------------------------------------------------------------------

struct TrainRun {
  double sim_us = 0;      ///< simulated device time of the measured steps
  double host_us = 0;     ///< host wall-clock of the measured steps
};

/// `steps` steady-state MT training steps (model-only, overlapped 4-GPU DP),
/// optionally feeding `reg`. The registry pointer is the ONLY difference
/// between the enabled and disabled arms of the overhead measurement.
TrainRun run_train(obs::MetricsRegistry* reg, int steps, uint64_t seed = 17) {
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.seed = seed;
  sc.metrics = reg;
  Session session(sc);
  models::TransformerConfig cfg = models::TransformerConfig::base(6, 6);
  models::Transformer model(cfg, System::kLightSeq2, DType::kF16, seed);
  optim::OptimConfig ocfg;
  optim::LightSeq2Trainer trainer(model.params(), ocfg);
  data::MtDataset ds(cfg.vocab, 64, 10, 40, seed);
  auto batches = data::make_mt_batches(ds, 4096, DType::kF16);
  const models::MtBatch& batch = data::largest_batch(batches);
  dist::ClusterConfig cluster{4, 1};
  cluster.overlap = true;

  (void)core::train_step(session, model, batch, trainer, cluster);  // warm-up
  TrainRun run;
  const double sim0 = session.device().clock_us();
  const auto host0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i)
    (void)core::train_step(session, model, batch, trainer, cluster);
  run.host_us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - host0)
                    .count();
  run.sim_us = session.device().clock_us() - sim0;
  if (reg) obs::collect_device_metrics(*reg, session.device(), "device");
  return run;
}

/// A seeded serving run feeding `reg` under the "serve" prefix; returns the
/// report for the printed summary.
infer::ServeReport run_serve(obs::MetricsRegistry& reg, uint64_t seed = 23) {
  models::Gpt2Config cfg;
  cfg.vocab = 512;
  cfg.hidden = 64;
  cfg.heads = 4;
  cfg.ffn_dim = 128;
  cfg.layers = 4;
  cfg.max_len = 128;
  const int64_t slots = 4, max_len = 96;
  SessionConfig sc;
  sc.system = System::kLightSeq2;
  sc.mode = simgpu::ExecMode::kModelOnly;
  sc.dtype = DType::kF16;
  sc.arena_bytes = infer::serve_capacity_scan(cfg, DType::kF16, slots, max_len, 16);
  sc.graph_capture = true;
  sc.metrics = &reg;
  Session s(sc);
  models::Gpt2 model(cfg, System::kLightSeq2, DType::kF16, 31, s.param_alloc());
  infer::KvCache cache(model.kv_cache_config(slots, max_len), s.param_alloc());
  infer::ContinuousBatcher engine(s, model, cache, {});
  const auto reqs = infer::poisson_requests(64, /*rate=*/8000.0, 4, 12, 8, 24,
                                            cfg.vocab, seed);
  return engine.serve(reqs);
}

// ---------------------------------------------------------------------------
// Section 1: unified snapshot (training + serving + device scrape)
// ---------------------------------------------------------------------------

void bench_snapshot() {
  print_header("Unified metrics snapshot: training + serving in one registry");
  auto snapshot = [](uint64_t seed) {
    obs::MetricsRegistry reg;
    (void)run_train(&reg, /*steps=*/3, seed);
    (void)run_serve(reg, seed + 6);
    return reg.to_json();
  };
  const std::string a = snapshot(17);
  const std::string b = snapshot(17);
  const bool identical = a == b;

  // Re-load the snapshot's quantiles for the schema sanity row. Registry
  // state is re-derived (not parsed from JSON) on a third identical run.
  obs::MetricsRegistry reg;
  (void)run_train(&reg, 3, 17);
  const infer::ServeReport serve = run_serve(reg, 23);
  const obs::Histogram& lat = reg.histograms().at("serve.latency_us");
  const obs::Histogram& step = reg.histograms().at("train.step_us");
  std::printf("snapshot bytes             %zu\n", a.size());
  std::printf("byte-identical re-run      %s\n", identical ? "yes" : "NO");
  std::printf("train.step_us p50/p99      %.1f / %.1f us over %lld steps\n",
              step.quantile(0.5), step.quantile(0.99),
              static_cast<long long>(step.count()));
  std::printf("serve.latency_us p50/p99   %.1f / %.1f us over %lld served\n",
              lat.quantile(0.5), lat.quantile(0.99),
              static_cast<long long>(lat.count()));
  std::printf("serve availability         %.3f\n",
              reg.gauges().at("serve.slo.availability"));
  push_row("{\"section\": \"snapshot\", \"snapshot_bytes\": %zu, "
           "\"identical_rerun\": %s, \"served\": %lld, "
           "\"latency_count\": %lld, \"latency_min_us\": %.3f, "
           "\"latency_p50_us\": %.3f, \"latency_p99_us\": %.3f, "
           "\"latency_max_us\": %.3f, \"step_p50_us\": %.3f, "
           "\"step_p99_us\": %.3f, \"availability\": %.4f}",
           a.size(), identical ? "true" : "false",
           static_cast<long long>(serve.served),
           static_cast<long long>(lat.count()), lat.min(), lat.quantile(0.5),
           lat.quantile(0.99), lat.max(), step.quantile(0.5),
           step.quantile(0.99), reg.gauges().at("serve.slo.availability"));
}

// ---------------------------------------------------------------------------
// Section 2: roofline from registry data alone
// ---------------------------------------------------------------------------

void bench_roofline() {
  print_header("Roofline: top kernel families vs device peaks (from the registry)");
  obs::MetricsRegistry reg;
  (void)run_train(&reg, /*steps=*/3, 17);
  // Everything below reads ONLY the registry — the device is gone.
  const obs::RooflineReport report =
      obs::build_roofline(reg, simgpu::v100(), "device");
  std::printf("%s\n", obs::format_roofline(report, 8).c_str());

  const double coverage =
      report.busy_us > 0 ? report.covered_us() / report.busy_us : 0.0;
  size_t k = 0;
  for (const obs::RooflineEntry& e : report.entries) {
    if (k++ >= 8) break;
    push_row("{\"section\": \"roofline\", \"family\": \"%s\", "
             "\"launches\": %lld, \"exec_us\": %.3f, \"share\": %.4f, "
             "\"achieved_gb_s\": %.1f, \"achieved_tflops\": %.3f, "
             "\"utilization\": %.4f, \"compute_bound\": %s, "
             "\"tensor_core\": %s}",
             e.family.c_str(), static_cast<long long>(e.launches), e.exec_us,
             e.share, e.achieved_gb_s, e.achieved_tflops, e.utilization,
             e.compute_bound ? "true" : "false",
             e.tensor_core ? "true" : "false");
  }
  push_row("{\"section\": \"roofline_coverage\", \"families\": %zu, "
           "\"kernel_us\": %.3f, \"exposed_comm_us\": %.3f, "
           "\"other_busy_us\": %.3f, \"busy_us\": %.3f, \"coverage\": %.6f}",
           report.entries.size(), report.kernel_us, report.exposed_comm_us,
           report.other_busy_us, report.busy_us, coverage);
}

// ---------------------------------------------------------------------------
// Section 3: instrumentation overhead
// ---------------------------------------------------------------------------

void bench_overhead() {
  print_header("Instrumentation overhead: metrics enabled vs disabled");
  const int steps = 20, reps = 3;
  double host_on = 1e300, host_off = 1e300;
  double sim_on = 0, sim_off = 0;
  // Min-of-reps host timing is robust to scheduler noise; the simulated
  // times are deterministic and must match EXACTLY (the instrumentation
  // never touches the device clock).
  for (int r = 0; r < reps; ++r) {
    obs::MetricsRegistry reg;
    const TrainRun on = run_train(&reg, steps);
    const TrainRun off = run_train(nullptr, steps);
    host_on = std::min(host_on, on.host_us);
    host_off = std::min(host_off, off.host_us);
    sim_on = on.sim_us;
    sim_off = off.sim_us;
  }
  const double overhead_pct =
      std::max(0.0, (host_on - host_off) / host_off * 100.0);
  const double sim_delta_us = sim_on - sim_off;
  std::printf("simulated step time        %.3f us (enabled) vs %.3f us (disabled)"
              " -> delta %.6f us\n",
              sim_on / steps, sim_off / steps, sim_delta_us);
  std::printf("host wall per step         %.1f us (enabled) vs %.1f us (disabled)\n",
              host_on / steps, host_off / steps);
  std::printf("host overhead              %.3f%% of a step (budget: < 1%%)\n",
              overhead_pct);
  push_row("{\"section\": \"overhead\", \"steps\": %d, "
           "\"sim_step_us_enabled\": %.6f, \"sim_step_us_disabled\": %.6f, "
           "\"sim_delta_us\": %.6f, \"host_step_us_enabled\": %.3f, "
           "\"host_step_us_disabled\": %.3f, \"overhead_pct\": %.4f}",
           steps, sim_on / steps, sim_off / steps, sim_delta_us,
           host_on / steps, host_off / steps, overhead_pct);
}

}  // namespace
}  // namespace ls2::bench

int main() {
  return ls2::bench::guarded_main("fig_obs", [] {
    ls2::bench::bench_snapshot();
    ls2::bench::bench_roofline();
    ls2::bench::bench_overhead();
    ls2::bench::write_json();
    return 0;
  });
}
